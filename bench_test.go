package mosquitonet_test

// One benchmark per experiment row in DESIGN.md's index, plus substrate
// micro-benchmarks. The experiment benchmarks drive the same harnesses as
// cmd/experiments; custom metrics report the *virtual-time* quantities the
// paper measures (milliseconds of disruption, packets lost per handoff),
// while ns/op measures the simulator's wall-clock cost.

import (
	"flag"
	"fmt"
	"testing"
	"time"

	mosquitonet "mosquitonet"
	"mosquitonet/internal/ip"
	"mosquitonet/internal/mip"
	"mosquitonet/internal/testbed"
)

// benchWorkers sets the shard worker-pool size for the sharded benchmarks
// (BenchmarkScaleRoaming). Deterministic outputs are identical at any
// value; only wall-clock time changes.
var benchWorkers = flag.Int("workers", 1, "worker goroutines for sharded benchmarks")

// --- E1: same-subnet address switch --------------------------------------

func BenchmarkE1AddressSwitch(b *testing.B) {
	tb := testbed.New(1)
	tb.MoveEthTo(tb.DeptNet)
	tb.MustConnectForeign(tb.Eth)
	addrs := [2]mosquitonet.Addr{
		mosquitonet.MustParseAddr("36.8.0.200"),
		mosquitonet.MustParseAddr("36.8.0.201"),
	}
	var totalWindow time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Tracer.Reset()
		done := false
		tb.MH.SwitchAddress(addrs[i%2], func(err error) {
			if err != nil {
				b.Fatal(err)
			}
			done = true
		})
		tb.Run(5 * time.Second)
		if !done {
			b.Fatal("switch never completed")
		}
		start, _ := tb.Tracer.Last("addrswitch.configure.done")
		end, _ := tb.Tracer.Last("binding.installed")
		totalWindow += end.At.Sub(start.At)
	}
	b.ReportMetric(float64(totalWindow.Microseconds())/float64(b.N)/1000, "virt-window-ms/op")
}

// --- F6: device switching -------------------------------------------------

func benchDeviceSwitch(b *testing.B, toRadio, hot bool) {
	tb := testbed.New(1)
	tb.MoveEthTo(tb.DeptNet)
	from, to := tb.Eth, tb.Strip
	if !toRadio {
		from, to = tb.Strip, tb.Eth
	}
	tb.MustConnectForeign(from)
	var blackout time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := tb.Loop.Now()
		done := false
		finish := func(err error) {
			if err != nil {
				b.Fatal(err)
			}
			done = true
		}
		if hot {
			to.Iface().Device().BringUp(func() {
				tb.MH.Prepare(to, func(err error) {
					if err != nil {
						b.Fatal(err)
					}
					tb.MH.HotSwitch(to, finish)
				})
			})
		} else {
			tb.MH.ColdSwitch(to, finish)
		}
		for !done {
			tb.Run(20 * time.Millisecond)
		}
		blackout += tb.Loop.Now().Sub(start)

		b.StopTimer() // restore outside the measured region
		restored := false
		if hot {
			from.Iface().Device().BringUp(func() {
				tb.MH.Prepare(from, func(error) {
					tb.MH.HotSwitch(from, func(error) { restored = true })
				})
			})
		} else {
			tb.MH.ColdSwitch(from, func(error) { restored = true })
		}
		for !restored {
			tb.Run(20 * time.Millisecond)
		}
		if hot {
			tb.MH.Disconnect(to)
		}
		b.StartTimer()
	}
	b.ReportMetric(float64(blackout.Milliseconds())/float64(b.N), "virt-switch-ms/op")
}

func BenchmarkF6ColdSwitchWiredToWireless(b *testing.B) { benchDeviceSwitch(b, true, false) }
func BenchmarkF6ColdSwitchWirelessToWired(b *testing.B) { benchDeviceSwitch(b, false, false) }
func BenchmarkF6HotSwitchWiredToWireless(b *testing.B)  { benchDeviceSwitch(b, true, true) }
func BenchmarkF6HotSwitchWirelessToWired(b *testing.B)  { benchDeviceSwitch(b, false, true) }

// --- F7: registration time-line -------------------------------------------

func BenchmarkF7Registration(b *testing.B) {
	tb := testbed.New(1)
	tb.MoveEthTo(tb.DeptNet)
	tb.MustConnectForeign(tb.Eth)
	addrs := [2]mosquitonet.Addr{
		mosquitonet.MustParseAddr("36.8.0.200"),
		mosquitonet.MustParseAddr("36.8.0.201"),
	}
	var total time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Tracer.Reset()
		done := false
		tb.MH.SwitchAddress(addrs[i%2], func(error) { done = true })
		tb.Run(5 * time.Second)
		if !done {
			b.Fatal("registration never completed")
		}
		start, _ := tb.Tracer.Last("addrswitch.start")
		end, _ := tb.Tracer.Last("reg.reply.received")
		total += end.At.Sub(start.At)
	}
	// The paper's Figure 7 total is 7.39 ms.
	b.ReportMetric(float64(total.Microseconds())/float64(b.N)/1000, "virt-reg-ms/op")
}

// --- T-RTT: radio round-trip ----------------------------------------------

func BenchmarkRadioRTT(b *testing.B) {
	tb := testbed.New(1)
	tb.MustConnectForeign(tb.Strip)
	var total time.Duration
	n := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.MH.Host().ICMP().Ping(testbed.RouterRadioAddr, testbed.MHRadioAddr, 40, 3*time.Second,
			func(r mosquitonet.PingResult) {
				if !r.TimedOut && !r.Unreachable {
					total += r.RTT
					n++
				}
			})
		tb.Run(3 * time.Second)
	}
	if n > 0 {
		// The paper reports 200-250 ms.
		b.ReportMetric(float64(total.Milliseconds())/float64(n), "virt-rtt-ms/op")
	}
}

// --- A1: policy comparison -------------------------------------------------

func benchPolicyRTT(b *testing.B, policy mosquitonet.Policy) {
	tb := testbed.New(1)
	tb.MoveEthTo(tb.DeptNet)
	tb.MustConnectForeign(tb.Eth)
	var srv *mosquitonet.UDPSocket
	srv, err := tb.CampusCH.UDP(mosquitonet.Unspecified, 7, func(d mosquitonet.Datagram) {
		srv.SendTo(d.From, d.FromPort, d.Payload)
	})
	if err != nil {
		b.Fatal(err)
	}
	tb.MH.Policy().SetHost(testbed.CampusCHAddr, policy)
	var total time.Duration
	n := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got := false
		var start mosquitonet.Time
		sock, err := tb.MHTS.UDP(mosquitonet.Unspecified, 0, func(mosquitonet.Datagram) {
			total += tb.Loop.Now().Sub(start)
			got = true
		})
		if err != nil {
			b.Fatal(err)
		}
		start = tb.Loop.Now()
		sock.SendTo(testbed.CampusCHAddr, 7, []byte("rtt"))
		tb.Run(2 * time.Second)
		sock.Close()
		if got {
			n++
		}
	}
	if n > 0 {
		b.ReportMetric(float64(total.Microseconds())/float64(n)/1000, "virt-rtt-ms/op")
	}
}

func BenchmarkA1TunnelPolicy(b *testing.B)   { benchPolicyRTT(b, mosquitonet.PolicyTunnel) }
func BenchmarkA1TrianglePolicy(b *testing.B) { benchPolicyRTT(b, mosquitonet.PolicyTriangle) }

// BenchmarkA1EncapDirectPolicy needs a smart correspondent, so it builds
// its own environment rather than using benchPolicyRTT.
func BenchmarkA1EncapDirectPolicy(b *testing.B) {
	tb := testbed.New(1)
	mosquitonet.MakeSmartCorrespondent(tb.CampusCH.Host())
	tb.MoveEthTo(tb.DeptNet)
	tb.MustConnectForeign(tb.Eth)
	var srv *mosquitonet.UDPSocket
	srv, err := tb.CampusCH.UDP(mosquitonet.Unspecified, 7, func(d mosquitonet.Datagram) {
		srv.SendTo(d.From, d.FromPort, d.Payload)
	})
	if err != nil {
		b.Fatal(err)
	}
	tb.MH.Policy().SetHost(testbed.CampusCHAddr, mosquitonet.PolicyEncapDirect)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sock, err := tb.MHTS.UDP(mosquitonet.Unspecified, 0, func(mosquitonet.Datagram) {})
		if err != nil {
			b.Fatal(err)
		}
		sock.SendTo(testbed.CampusCHAddr, 7, []byte("rtt"))
		tb.Run(2 * time.Second)
		sock.Close()
	}
}

// --- A2: handoff loss with and without a foreign agent ---------------------

func BenchmarkA2HandoffNoFA(b *testing.B) {
	lost := 0
	for i := 0; i < b.N; i++ {
		r, err := testbed.RunA2(int64(i)+1, 1)
		if err != nil {
			b.Fatal(err)
		}
		lost += r.WithoutFA.TotalLost()
	}
	b.ReportMetric(float64(lost)/float64(b.N), "pkts-lost/op")
}

func BenchmarkA2HandoffWithFA(b *testing.B) {
	lost := 0
	for i := 0; i < b.N; i++ {
		r, err := testbed.RunA2(int64(i)+1, 1)
		if err != nil {
			b.Fatal(err)
		}
		lost += r.WithFA.TotalLost()
	}
	b.ReportMetric(float64(lost)/float64(b.N), "pkts-lost/op")
}

// --- A3: home-agent scalability --------------------------------------------

func benchHAFleet(b *testing.B, n int) {
	for i := 0; i < b.N; i++ {
		res, err := testbed.RunA3(int64(i)+1, []int{n})
		if err != nil {
			b.Fatal(err)
		}
		row := res.Rows[0]
		if row.Registered != n {
			b.Fatalf("only %d/%d registered", row.Registered, n)
		}
		b.ReportMetric(float64(row.Latency.Mean().Microseconds())/1000, "virt-reg-ms/host")
	}
}

func BenchmarkA3HAScale(b *testing.B) {
	for _, n := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("hosts=%d", n), func(b *testing.B) { benchHAFleet(b, n) })
	}
}

// --- Scale: fleet-wide roaming (simulator hot-path baseline) ---------------

// BenchmarkScaleRoaming is the perf gate for the discrete-event core and
// the packet path: N mobile hosts roaming concurrently between two foreign
// subnets with echo traffic through the home agent. One op is one full
// fleet run, so B/op and allocs/op track the whole hot path (events,
// marshals, frame fan-out) and events/sec measures raw simulator speed.
// The same harness backs `experiments -exp scale` / BENCH_scale.json.
//
// -workers selects the shard worker-pool size (default 1, sequential).
// Results are byte-identical at any worker count; only wall-clock changes,
// so cross-worker ns/op comparisons are meaningful:
//
//	go test -bench ScaleRoaming -benchtime 3x -workers 4
func BenchmarkScaleRoaming(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("%dhosts", n), func(b *testing.B) {
			b.ReportAllocs()
			var events uint64
			for i := 0; i < b.N; i++ {
				row, _, err := testbed.RunScaleFleetWorkers(1996, n, *benchWorkers)
				if err != nil {
					b.Fatal(err)
				}
				if row.ProbesEchoed == 0 {
					b.Fatal("no echo traffic completed")
				}
				events += row.Events
			}
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(events)/secs, "events/sec")
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(events), "ns/event")
			}
		})
	}
}

// BenchmarkHARegistrationProcessing hammers one home agent with
// registrations from a single mobile host, measuring sustained
// registration turnaround.
func BenchmarkHARegistrationProcessing(b *testing.B) {
	tb := testbed.New(1)
	tb.MoveEthTo(tb.DeptNet)
	tb.MustConnectForeign(tb.Eth)
	addrs := [2]mosquitonet.Addr{
		mosquitonet.MustParseAddr("36.8.0.200"),
		mosquitonet.MustParseAddr("36.8.0.201"),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done := false
		tb.MH.SwitchAddress(addrs[i%2], func(error) { done = true })
		tb.Run(time.Second)
		if !done {
			b.Fatal("registration stalled")
		}
	}
	if got := tb.HA.Stats().Accepted; got < uint64(b.N) {
		b.Fatalf("HA accepted %d of %d", got, b.N)
	}
}

// --- Substrate micro-benchmarks --------------------------------------------

func BenchmarkPacketMarshal(b *testing.B) {
	p := &ip.Packet{
		Header: ip.Header{
			TTL: 64, Protocol: ip.ProtoUDP,
			Src: ip.MustParseAddr("36.135.0.7"), Dst: ip.MustParseAddr("36.8.0.99"),
		},
		Payload: make([]byte, 512),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.Marshal(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPacketUnmarshal(b *testing.B) {
	p := &ip.Packet{
		Header: ip.Header{
			TTL: 64, Protocol: ip.ProtoUDP,
			Src: ip.MustParseAddr("36.135.0.7"), Dst: ip.MustParseAddr("36.8.0.99"),
		},
		Payload: make([]byte, 512),
	}
	raw, _ := p.Marshal()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ip.Unmarshal(raw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncapsulateDecapsulate(b *testing.B) {
	inner := &ip.Packet{
		Header: ip.Header{
			TTL: 64, Protocol: ip.ProtoUDP,
			Src: ip.MustParseAddr("36.135.0.7"), Dst: ip.MustParseAddr("36.8.0.99"),
		},
		Payload: make([]byte, 512),
	}
	src := ip.MustParseAddr("36.8.0.100")
	dst := ip.MustParseAddr("36.135.0.1")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		outer, err := ip.Encapsulate(src, dst, 64, uint16(i), inner)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ip.Decapsulate(outer); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChecksum(b *testing.B) {
	buf := make([]byte, 1500)
	for i := range buf {
		buf[i] = byte(i)
	}
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		ip.Checksum(buf)
	}
}

func BenchmarkPolicyTableLookup(b *testing.B) {
	pt := mip.NewPolicyTable(mip.PolicyTunnel)
	for i := 0; i < 64; i++ {
		pt.Set(ip.Prefix{Addr: ip.Addr{10, byte(i), 0, 0}, Bits: 16}, mip.PolicyTriangle)
	}
	dst := ip.MustParseAddr("10.40.1.2")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pt.Lookup(dst)
	}
}

func BenchmarkSimulatedSecondOfStreaming(b *testing.B) {
	// Wall-clock cost of simulating one virtual second of a 10 ms echo
	// stream through the full tunnel path — the simulator's bulk
	// throughput metric.
	tb := testbed.New(1)
	tb.MoveEthTo(tb.DeptNet)
	tb.MustConnectForeign(tb.Eth)
	probe, err := testbed.NewEchoProbe(tb.Loop, tb.CH, tb.MHTS, testbed.MHHomeAddr, 7, 10*time.Millisecond)
	if err != nil {
		b.Fatal(err)
	}
	probe.Start()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Run(time.Second)
	}
	b.StopTimer()
	if probe.Received() == 0 {
		b.Fatal("stream dead")
	}
}

// --- A4: handoff strategies --------------------------------------------------

func benchA4Strategy(b *testing.B, pick func(*testbed.A4Result) int) {
	lost := 0
	for i := 0; i < b.N; i++ {
		r, err := testbed.RunA4(int64(i)+1, 1)
		if err != nil {
			b.Fatal(err)
		}
		lost += pick(r)
	}
	b.ReportMetric(float64(lost)/float64(b.N), "pkts-lost/op")
}

func BenchmarkA4ColdStrategy(b *testing.B) {
	benchA4Strategy(b, func(r *testbed.A4Result) int { return r.Cold.TotalLost() })
}
func BenchmarkA4HotStrategy(b *testing.B) {
	benchA4Strategy(b, func(r *testbed.A4Result) int { return r.Hot.TotalLost() })
}
func BenchmarkA4SimultaneousStrategy(b *testing.B) {
	benchA4Strategy(b, func(r *testbed.A4Result) int { return r.Simultaneous.TotalLost() })
}
