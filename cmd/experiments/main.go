// Command experiments regenerates every table and figure of the paper's
// evaluation, plus the ablations indexed in DESIGN.md, and prints them in
// the paper's own presentation (loss histograms per Figure 6, mean (std
// dev) rows per Figure 7).
//
// Alongside the human-readable output, each experiment writes a
// machine-readable export — BENCH_<exp>.json with the seed and the
// per-scenario metrics snapshots (registration latency histograms, tunnel
// encap/decap counters, per-device link statistics, ...) — and F7
// additionally writes BENCH_f7_timeline.jsonl, its registration timeline
// as one JSON event per line. The handoff observatory writes two more:
// BENCH_handoff_spans.jsonl (the run's span record) and
// BENCH_handoff_trace.json (the same spans as a Chrome trace-event file,
// loadable in chrome://tracing or https://ui.perfetto.dev). Exports are
// byte-identical across runs with the same seed.
//
// Experiments are registered in a dispatch table; -list enumerates them
// with the flags each one consumes. "-exp all" runs every entry marked
// for the batch; experiments with machine-dependent output (parallel) or
// ad-hoc inputs (scenario, sweep) run only when named explicitly.
//
// Usage:
//
//	experiments [-list] [-seed N] [-exp all|<name>] [per-experiment flags] [-json dir]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	mosquitonet "mosquitonet"
	"mosquitonet/internal/testbed"
)

// opts holds every flag value; per-experiment flags are registered by the
// table entries that own them, so -list can attribute each flag to its
// experiment.
var opts struct {
	seed    int64
	jsonDir string
	workers int

	samples     int
	a2iters     int
	a3fleets    string
	scaleFleets string
	hosts       int
	sweepN      int
	scenario    string
}

// experiment is one dispatch-table entry.
type experiment struct {
	name  string
	desc  string
	inAll bool              // runs under -exp all (requires byte-reproducible output)
	flags func(*flag.FlagSet) string // registers the entry's flags; returns their summary for -list
	run   func() error
}

// experiments is the dispatch table, in "all"-batch execution order.
var experiments = []experiment{
	{
		name: "e1", inAll: true,
		desc: "end-to-end roaming walkthrough (paper §4 narrative)",
		run: func() error {
			res, err := mosquitonet.RunE1(opts.seed)
			if err != nil {
				return err
			}
			fmt.Println(res)
			writeExport(opts.jsonDir, res.Export)
			return nil
		},
	},
	{
		name: "f6", inAll: true,
		desc: "Figure 6: packet loss during handoffs, per switch discipline",
		run: func() error {
			res, err := mosquitonet.RunF6(opts.seed)
			if err != nil {
				return err
			}
			fmt.Println(res)
			writeExport(opts.jsonDir, res.Export)
			return nil
		},
	},
	{
		name: "f7", inAll: true,
		desc: "Figure 7: registration latency, mean (std dev) per path",
		run: func() error {
			res, err := mosquitonet.RunF7(opts.seed)
			if err != nil {
				return err
			}
			fmt.Println(res)
			writeExport(opts.jsonDir, res.Export)
			writeTimeline(opts.jsonDir, "BENCH_f7_timeline.jsonl", res)
			return nil
		},
	},
	{
		name: "handoff", inAll: true,
		desc: "handoff disruption observatory (spans, flight recorder, per-window scoring)",
		run: func() error {
			res, err := mosquitonet.RunHandoff(opts.seed)
			if err != nil {
				return err
			}
			fmt.Println(res)
			writeExport(opts.jsonDir, res.Export)
			writeArtifact(opts.jsonDir, "BENCH_handoff_spans.jsonl", res.Tracer.WriteSpansJSONL)
			writeArtifact(opts.jsonDir, "BENCH_handoff_trace.json", res.Tracer.WriteChromeTrace)
			return nil
		},
	},
	{
		name: "loadedhandoff", inAll: true,
		desc: "roaming itinerary under MQTT + HTTP application load",
		run: func() error {
			res, err := mosquitonet.RunLoadedHandoff(opts.seed)
			if err != nil {
				return err
			}
			fmt.Println(res)
			writeExport(opts.jsonDir, res.Export)
			return nil
		},
	},
	{
		name: "rtt", inAll: true,
		desc: "round-trip latency per topology position",
		flags: func(fs *flag.FlagSet) string {
			if fs.Lookup("samples") == nil {
				fs.IntVar(&opts.samples, "samples", 20, "samples for RTT/A1 measurements")
			}
			return "-samples"
		},
		run: func() error {
			res, err := mosquitonet.RunRTT(opts.seed, opts.samples)
			if err != nil {
				return err
			}
			fmt.Println(res)
			writeExport(opts.jsonDir, res.Export)
			return nil
		},
	},
	{
		name: "tput", inAll: true,
		desc: "bulk TCP throughput home vs tunnelled",
		run: func() error {
			res, err := mosquitonet.RunThroughput(opts.seed, 50, 1000)
			if err != nil {
				return err
			}
			fmt.Println(res)
			writeExport(opts.jsonDir, res.Export)
			return nil
		},
	},
	{
		name: "a1", inAll: true,
		desc: "ablation: tunnelling cost decomposition",
		flags: func(fs *flag.FlagSet) string {
			if fs.Lookup("samples") == nil {
				fs.IntVar(&opts.samples, "samples", 20, "samples for RTT/A1 measurements")
			}
			return "-samples"
		},
		run: func() error {
			res, err := mosquitonet.RunA1(opts.seed, opts.samples)
			if err != nil {
				return err
			}
			fmt.Println(res)
			writeExport(opts.jsonDir, res.Export)
			return nil
		},
	},
	{
		name: "a2", inAll: true,
		desc: "ablation: collocated vs foreign-agent care-of",
		flags: func(fs *flag.FlagSet) string {
			if fs.Lookup("a2-iterations") == nil {
				fs.IntVar(&opts.a2iters, "a2-iterations", 5, "handoffs per A2/A4 variant")
			}
			return "-a2-iterations"
		},
		run: func() error {
			res, err := mosquitonet.RunA2(opts.seed, opts.a2iters)
			if err != nil {
				return err
			}
			fmt.Println(res)
			writeExport(opts.jsonDir, res.Export)
			return nil
		},
	},
	{
		name: "a4", inAll: true,
		desc: "ablation: handoff strategy comparison",
		flags: func(fs *flag.FlagSet) string {
			if fs.Lookup("a2-iterations") == nil {
				fs.IntVar(&opts.a2iters, "a2-iterations", 5, "handoffs per A2/A4 variant")
			}
			return "-a2-iterations"
		},
		run: func() error {
			res, err := mosquitonet.RunA4(opts.seed, opts.a2iters)
			if err != nil {
				return err
			}
			fmt.Println(res)
			writeExport(opts.jsonDir, res.Export)
			return nil
		},
	},
	{
		name: "a3", inAll: true,
		desc: "ablation: home-agent load vs fleet size",
		flags: func(fs *flag.FlagSet) string {
			fs.StringVar(&opts.a3fleets, "a3-fleets", "1,8,32,64", "comma-separated fleet sizes for A3")
			return "-a3-fleets"
		},
		run: func() error {
			res, err := mosquitonet.RunA3(opts.seed, parseFleets(opts.a3fleets))
			if err != nil {
				return err
			}
			fmt.Println(res)
			writeExport(opts.jsonDir, res.Export)
			return nil
		},
	},
	{
		name: "scale", inAll: true,
		desc: "roaming-fleet scale (sharded; byte-identical at any -workers)",
		flags: func(fs *flag.FlagSet) string {
			if fs.Lookup("scale-fleets") == nil {
				fs.StringVar(&opts.scaleFleets, "scale-fleets", "10,100,1000,10000,100000",
					"comma-separated fleet sizes for the scale experiment")
				fs.IntVar(&opts.hosts, "hosts", 0,
					"single fleet size for the scale/parallel experiments, overriding -scale-fleets (e.g. -exp scale -hosts 100000)")
			}
			return "-scale-fleets, -hosts, -workers"
		},
		run: func() error {
			res, err := mosquitonet.RunScaleWorkers(opts.seed, scaleSizes(), opts.workers)
			if err != nil {
				return err
			}
			fmt.Println(res)
			writeExport(opts.jsonDir, res.Export)
			return nil
		},
	},
	{
		// The parallel experiment records machine-dependent wall-clock
		// times, so it runs only when explicitly requested — never under
		// "all", which must stay byte-reproducible.
		name: "parallel", inAll: false,
		desc: "sharded-scheduler speedup measurement (wall-clock; explicit only)",
		flags: func(fs *flag.FlagSet) string {
			if fs.Lookup("scale-fleets") == nil {
				fs.StringVar(&opts.scaleFleets, "scale-fleets", "10,100,1000,10000,100000",
					"comma-separated fleet sizes for the scale experiment")
				fs.IntVar(&opts.hosts, "hosts", 0,
					"single fleet size for the scale/parallel experiments, overriding -scale-fleets (e.g. -exp scale -hosts 100000)")
			}
			return "-scale-fleets, -hosts, -workers"
		},
		run: func() error {
			w := opts.workers
			if w <= 1 {
				w = 4 // comparing workers=1 against itself would be vacuous
			}
			res, err := mosquitonet.RunParallel(opts.seed, scaleSizes(), w)
			if err != nil {
				return err
			}
			fmt.Println(res)
			writeExport(opts.jsonDir, res.Export)
			return nil
		},
	},
	{
		// Inputs are ad-hoc (any catalog scenario), so not part of "all".
		name: "scenario", inAll: false,
		desc: "run one catalog scenario through the generic probe runner",
		flags: func(fs *flag.FlagSet) string {
			fs.StringVar(&opts.scenario, "scenario", "faultdemo", "catalog scenario name for -exp scenario")
			return "-scenario"
		},
		run: func() error {
			spec, err := testbed.Scenario(opts.scenario)
			if err != nil {
				return err
			}
			res, err := mosquitonet.RunScenarioProbe(opts.seed, spec)
			if err != nil {
				return err
			}
			fmt.Println(res)
			writeExport(opts.jsonDir, res.Export)
			return nil
		},
	},
	{
		// Deterministic but sized by -n, so not part of "all"; CI pins its
		// artifact against bench/BENCH_sweep.json explicitly.
		name: "sweep", inAll: false,
		desc: "seeded randomized-scenario sweep over the sweep-base template",
		flags: func(fs *flag.FlagSet) string {
			fs.IntVar(&opts.sweepN, "n", 8, "number of generated sweep scenarios (min 8 for the pinned artifact)")
			return "-n"
		},
		run: func() error {
			res, err := mosquitonet.RunSweep(opts.seed, opts.sweepN)
			if err != nil {
				return err
			}
			fmt.Println(res)
			writeExport(opts.jsonDir, res.Export)
			return nil
		},
	},
}

func main() {
	list := flag.Bool("list", false, "list the registered experiments and their flags")
	exp := flag.String("exp", "all", "experiment to run: all, or one of the -list entries")
	flag.Int64Var(&opts.seed, "seed", 1996, "simulation seed (results are deterministic per seed)")
	flag.IntVar(&opts.workers, "workers", 1, "worker goroutines for sharded experiments (results are identical at any count)")
	flag.StringVar(&opts.jsonDir, "json", "bench", "directory for BENCH_*.json exports (empty to disable)")

	flagsOf := map[string]string{}
	for _, e := range experiments {
		if e.flags != nil {
			flagsOf[e.name] = e.flags(flag.CommandLine)
		}
	}
	flag.Parse()

	if *list {
		fmt.Println("experiments (* runs under -exp all):")
		for _, e := range experiments {
			batch := " "
			if e.inAll {
				batch = "*"
			}
			fmt.Printf("  %s %-14s %s", batch, e.name, e.desc)
			if f := flagsOf[e.name]; f != "" {
				fmt.Printf(" [%s]", f)
			}
			fmt.Println()
		}
		return
	}

	ran := false
	for _, e := range experiments {
		if *exp == e.name || (*exp == "all" && e.inAll) {
			ran = true
			exitOn(e.run())
		}
	}
	if !ran {
		names := make([]string, 0, len(experiments))
		for _, e := range experiments {
			names = append(names, e.name)
		}
		fmt.Fprintf(os.Stderr, "unknown experiment %q (want all, %s)\n", *exp, strings.Join(names, ", "))
		os.Exit(2)
	}
}

// scaleSizes resolves the scale/parallel fleet list: -hosts overrides
// -scale-fleets.
func scaleSizes() []int {
	if opts.hosts > 0 {
		return []int{opts.hosts}
	}
	return parseFleets(opts.scaleFleets)
}

// parseFleets splits a comma-separated fleet-size list.
func parseFleets(s string) []int {
	var sizes []int
	for _, f := range strings.Split(s, ",") {
		var n int
		if _, err := fmt.Sscanf(strings.TrimSpace(f), "%d", &n); err != nil || n < 1 {
			exitOn(fmt.Errorf("bad fleet size %q", f))
		}
		sizes = append(sizes, n)
	}
	return sizes
}

// writeExport serializes one experiment's export as BENCH_<name>.json.
func writeExport(dir string, e *testbed.Export) {
	if dir == "" || e == nil {
		return
	}
	exitOn(os.MkdirAll(dir, 0o755))
	path := filepath.Join(dir, "BENCH_"+e.Experiment+".json")
	f, err := os.Create(path)
	exitOn(err)
	if err := e.WriteJSON(f); err != nil {
		f.Close()
		exitOn(err)
	}
	exitOn(f.Close())
	fmt.Printf("wrote %s\n\n", path)
}

// writeArtifact serializes one extra export artifact (span JSONL, Chrome
// trace) via the given writer function.
func writeArtifact(dir, name string, write func(io.Writer) error) {
	if dir == "" {
		return
	}
	exitOn(os.MkdirAll(dir, 0o755))
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	exitOn(err)
	if err := write(f); err != nil {
		f.Close()
		exitOn(err)
	}
	exitOn(f.Close())
	fmt.Printf("wrote %s\n\n", path)
}

// writeTimeline serializes F7's registration timeline as JSONL.
func writeTimeline(dir, name string, res *testbed.F7Result) {
	if dir == "" || res.Timeline == nil {
		return
	}
	exitOn(os.MkdirAll(dir, 0o755))
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	exitOn(err)
	if err := res.Timeline.WriteJSONL(f); err != nil {
		f.Close()
		exitOn(err)
	}
	exitOn(f.Close())
	fmt.Printf("wrote %s\n\n", path)
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
