// Command experiments regenerates every table and figure of the paper's
// evaluation, plus the ablations indexed in DESIGN.md, and prints them in
// the paper's own presentation (loss histograms per Figure 6, mean (std
// dev) rows per Figure 7).
//
// Alongside the human-readable output, each experiment writes a
// machine-readable export — BENCH_<exp>.json with the seed and the
// per-scenario metrics snapshots (registration latency histograms, tunnel
// encap/decap counters, per-device link statistics, ...) — and F7
// additionally writes BENCH_f7_timeline.jsonl, its registration timeline
// as one JSON event per line. The handoff observatory writes two more:
// BENCH_handoff_spans.jsonl (the run's span record) and
// BENCH_handoff_trace.json (the same spans as a Chrome trace-event file,
// loadable in chrome://tracing or https://ui.perfetto.dev). Exports are
// byte-identical across runs with the same seed.
//
// Usage:
//
//	experiments [-seed N] [-exp all|e1|f6|f7|handoff|loadedhandoff|rtt|a1|a2|a3|scale|parallel] [-samples N] [-workers N] [-hosts N] [-json dir]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	mosquitonet "mosquitonet"
	"mosquitonet/internal/testbed"
)

func main() {
	seed := flag.Int64("seed", 1996, "simulation seed (results are deterministic per seed)")
	exp := flag.String("exp", "all", "experiment to run: all, e1, f6, f7, handoff, loadedhandoff, rtt, tput, a1, a2, a3, a4, scale, parallel")
	samples := flag.Int("samples", 20, "samples for RTT/A1 measurements")
	a2iters := flag.Int("a2-iterations", 5, "handoffs per A2 variant")
	fleets := flag.String("a3-fleets", "1,8,32,64", "comma-separated fleet sizes for A3")
	scaleFleets := flag.String("scale-fleets", "10,100,1000,10000,100000", "comma-separated fleet sizes for the scale experiment")
	hosts := flag.Int("hosts", 0, "single fleet size for the scale/parallel experiments, overriding -scale-fleets (e.g. -exp scale -hosts 100000)")
	workers := flag.Int("workers", 1, "worker goroutines for sharded experiments (results are identical at any count)")
	jsonDir := flag.String("json", "bench", "directory for BENCH_*.json exports (empty to disable)")
	flag.Parse()

	want := func(name string) bool { return *exp == "all" || *exp == name }
	ran := false

	if want("e1") {
		ran = true
		res, err := mosquitonet.RunE1(*seed)
		exitOn(err)
		fmt.Println(res)
		writeExport(*jsonDir, res.Export)
	}
	if want("f6") {
		ran = true
		res, err := mosquitonet.RunF6(*seed)
		exitOn(err)
		fmt.Println(res)
		writeExport(*jsonDir, res.Export)
	}
	if want("f7") {
		ran = true
		res, err := mosquitonet.RunF7(*seed)
		exitOn(err)
		fmt.Println(res)
		writeExport(*jsonDir, res.Export)
		writeTimeline(*jsonDir, "BENCH_f7_timeline.jsonl", res)
	}
	if want("handoff") {
		ran = true
		res, err := mosquitonet.RunHandoff(*seed)
		exitOn(err)
		fmt.Println(res)
		writeExport(*jsonDir, res.Export)
		writeArtifact(*jsonDir, "BENCH_handoff_spans.jsonl", res.Tracer.WriteSpansJSONL)
		writeArtifact(*jsonDir, "BENCH_handoff_trace.json", res.Tracer.WriteChromeTrace)
	}
	if want("loadedhandoff") {
		ran = true
		res, err := mosquitonet.RunLoadedHandoff(*seed)
		exitOn(err)
		fmt.Println(res)
		writeExport(*jsonDir, res.Export)
	}
	if want("rtt") {
		ran = true
		res, err := mosquitonet.RunRTT(*seed, *samples)
		exitOn(err)
		fmt.Println(res)
		writeExport(*jsonDir, res.Export)
	}
	if want("tput") {
		ran = true
		res, err := mosquitonet.RunThroughput(*seed, 50, 1000)
		exitOn(err)
		fmt.Println(res)
		writeExport(*jsonDir, res.Export)
	}
	if want("a1") {
		ran = true
		res, err := mosquitonet.RunA1(*seed, *samples)
		exitOn(err)
		fmt.Println(res)
		writeExport(*jsonDir, res.Export)
	}
	if want("a2") {
		ran = true
		res, err := mosquitonet.RunA2(*seed, *a2iters)
		exitOn(err)
		fmt.Println(res)
		writeExport(*jsonDir, res.Export)
	}
	if want("a4") {
		ran = true
		res, err := mosquitonet.RunA4(*seed, *a2iters)
		exitOn(err)
		fmt.Println(res)
		writeExport(*jsonDir, res.Export)
	}
	if want("a3") {
		ran = true
		var sizes []int
		for _, f := range strings.Split(*fleets, ",") {
			var n int
			if _, err := fmt.Sscanf(strings.TrimSpace(f), "%d", &n); err != nil || n < 1 {
				exitOn(fmt.Errorf("bad fleet size %q", f))
			}
			sizes = append(sizes, n)
		}
		res, err := mosquitonet.RunA3(*seed, sizes)
		exitOn(err)
		fmt.Println(res)
		writeExport(*jsonDir, res.Export)
	}
	scaleSizes := func() []int {
		if *hosts > 0 {
			return []int{*hosts}
		}
		return parseFleets(*scaleFleets)
	}
	if want("scale") {
		ran = true
		res, err := mosquitonet.RunScaleWorkers(*seed, scaleSizes(), *workers)
		exitOn(err)
		fmt.Println(res)
		writeExport(*jsonDir, res.Export)
	}
	// The parallel experiment records machine-dependent wall-clock times,
	// so it runs only when explicitly requested — never as part of "all",
	// which must stay byte-reproducible.
	if *exp == "parallel" {
		ran = true
		w := *workers
		if w <= 1 {
			w = 4 // comparing workers=1 against itself would be vacuous
		}
		res, err := mosquitonet.RunParallel(*seed, scaleSizes(), w)
		exitOn(err)
		fmt.Println(res)
		writeExport(*jsonDir, res.Export)
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (want all, e1, f6, f7, handoff, loadedhandoff, rtt, a1, a2, a3, a4, scale, parallel)\n", *exp)
		os.Exit(2)
	}
}

// parseFleets splits a comma-separated fleet-size list.
func parseFleets(s string) []int {
	var sizes []int
	for _, f := range strings.Split(s, ",") {
		var n int
		if _, err := fmt.Sscanf(strings.TrimSpace(f), "%d", &n); err != nil || n < 1 {
			exitOn(fmt.Errorf("bad fleet size %q", f))
		}
		sizes = append(sizes, n)
	}
	return sizes
}

// writeExport serializes one experiment's export as BENCH_<name>.json.
func writeExport(dir string, e *testbed.Export) {
	if dir == "" || e == nil {
		return
	}
	exitOn(os.MkdirAll(dir, 0o755))
	path := filepath.Join(dir, "BENCH_"+e.Experiment+".json")
	f, err := os.Create(path)
	exitOn(err)
	if err := e.WriteJSON(f); err != nil {
		f.Close()
		exitOn(err)
	}
	exitOn(f.Close())
	fmt.Printf("wrote %s\n\n", path)
}

// writeArtifact serializes one extra export artifact (span JSONL, Chrome
// trace) via the given writer function.
func writeArtifact(dir, name string, write func(io.Writer) error) {
	if dir == "" {
		return
	}
	exitOn(os.MkdirAll(dir, 0o755))
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	exitOn(err)
	if err := write(f); err != nil {
		f.Close()
		exitOn(err)
	}
	exitOn(f.Close())
	fmt.Printf("wrote %s\n\n", path)
}

// writeTimeline serializes F7's registration timeline as JSONL.
func writeTimeline(dir, name string, res *testbed.F7Result) {
	if dir == "" || res.Timeline == nil {
		return
	}
	exitOn(os.MkdirAll(dir, 0o755))
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	exitOn(err)
	if err := res.Timeline.WriteJSONL(f); err != nil {
		f.Close()
		exitOn(err)
	}
	exitOn(f.Close())
	fmt.Printf("wrote %s\n\n", path)
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
