// Command mnet narrates a full MosquitoNet roaming scenario through the
// paper's testbed: the mobile host starts at home, visits the department
// Ethernet, switches to the radio (cold), hot-switches back to the wire,
// and returns home — while a correspondent streams UDP to its home address
// throughout. Every protocol event (registrations, bindings, handoffs) is
// printed as it happens, which makes this the quickest way to *watch* the
// system work.
//
// Usage:
//
//	mnet [-seed N] [-trace] [-interval 250ms] [-metrics 5s] [-chains] [-spans] [-dump-json file] [-admin script]
//
// The -admin flag loads a console script (or stdin with '-') against the
// compiled world before the itinerary starts: immediate commands inspect
// or mutate state at t=0, and "at <offset> <command>" schedules
// mutations — fault injection, route edits, hook removal — mid-run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	mosquitonet "mosquitonet"
	"mosquitonet/internal/capture"
	"mosquitonet/internal/link"
	"mosquitonet/internal/pipeline"
	"mosquitonet/internal/scenario"
	"mosquitonet/internal/stack"
	"mosquitonet/internal/testbed"
	"mosquitonet/internal/trace"
)

func main() {
	seed := flag.Int64("seed", 1, "simulation seed")
	showTrace := flag.Bool("trace", false, "print every protocol trace event")
	dump := flag.Bool("dump", false, "print a tcpdump-style decode of every frame on every network")
	interval := flag.Duration("interval", 250*time.Millisecond, "correspondent stream interval")
	metricsEvery := flag.Duration("metrics", 0, "print the telemetry table every interval of virtual time (0 = only at the end)")
	chains := flag.Bool("chains", false, "print each host's pipeline hook chains (iptables -L style) once the scenario is wired up")
	spans := flag.Bool("spans", false, "record per-chain traversal spans on the MH and HA and print the span tree and kind counts at the end")
	dumpJSON := flag.String("dump-json", "", "write a JSONL capture of every frame on every network to this file")
	adminScript := flag.String("admin", "", "admin console script file ('-' for stdin): inspect/mutate routes, bindings, hooks, and faults; 'at <offset> <cmd>' schedules mid-run (see the 'help' command)")
	flag.Parse()

	tb := testbed.New(*seed)
	if *adminScript != "" {
		console := scenario.NewConsole(tb.World, os.Stdout)
		r := io.Reader(os.Stdin)
		if *adminScript != "-" {
			f, err := os.Open(*adminScript)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mnet: admin:", err)
				os.Exit(1)
			}
			defer f.Close()
			r = f
		}
		if err := console.Load(r); err != nil {
			fmt.Fprintln(os.Stderr, "mnet: admin:", err)
			os.Exit(1)
		}
	}
	if *metricsEvery > 0 {
		var tick func()
		tick = func() {
			fmt.Printf("[%v] %s\n", tb.Loop.Now(), tb.Metrics.Snapshot().Table())
			tb.Loop.Schedule(*metricsEvery, tick)
		}
		tb.Loop.Schedule(*metricsEvery, tick)
	}
	if *showTrace {
		tb.Tracer.Hook = func(e trace.Event) { fmt.Println("   ", e) }
	}
	var jsonCap *capture.Capture
	if *dump || *dumpJSON != "" {
		max := 1 // live hook only; don't buffer
		if *dumpJSON != "" {
			max = 0 // buffer everything for the JSONL file
		}
		cap := capture.New(tb.Loop, max)
		if *dump {
			cap.Hook = func(e capture.Entry) { fmt.Println("   #", e) }
		}
		for _, n := range []*link.Network{tb.HomeNet, tb.DeptNet, tb.RadioNet, tb.CampusNet, tb.SlowNet} {
			cap.Attach(n)
		}
		if *dumpJSON != "" {
			jsonCap = cap
		}
	}
	if *spans {
		tb.MH.Host().EnableChainSpans()
		tb.HA.Host().EnableChainSpans()
	}
	tb.MH.OnLinkChange = func(c mosquitonet.LinkChange) {
		where := "foreign network"
		if c.AtHome {
			where = "home network"
		}
		fmt.Printf("[%v] link change: %s via %s (%s), care-of %v\n",
			tb.Loop.Now(), where, c.Iface, c.Medium.Name, c.CareOf)
	}
	tb.MH.OnRegistered = func(careOf mosquitonet.Addr) {
		fmt.Printf("[%v] registered care-of %v at the home agent\n", tb.Loop.Now(), careOf)
	}
	tb.MH.OnDeregistered = func() {
		fmt.Printf("[%v] deregistered (back home)\n", tb.Loop.Now())
	}

	fmt.Println("== MosquitoNet roaming scenario ==")
	fmt.Printf("home %v  dept %v  radio %v  correspondent %v\n\n",
		testbed.HomePrefix, testbed.DeptPrefix, testbed.RadioPrefix, testbed.CHAddr)

	step := func(name string, f func(done func(error))) {
		fmt.Printf("-- %s\n", name)
		finished := false
		f(func(err error) {
			if err != nil {
				fmt.Fprintf(os.Stderr, "mnet: %s: %v\n", name, err)
				os.Exit(1)
			}
			finished = true
		})
		for !finished {
			tb.Run(50 * time.Millisecond)
		}
	}

	step("attach at home", func(done func(error)) {
		tb.MH.ConnectHome(tb.Eth, testbed.RouterHomeAddr, done)
	})

	if *chains {
		for _, h := range []*stack.Host{tb.MH.Host(), tb.HA.Host()} {
			fmt.Printf("-- pipeline: %s\n", h.Name())
			for s := pipeline.Stage(0); s < pipeline.NumStages; s++ {
				fmt.Print(h.Hooks(s).String())
			}
			fmt.Printf("Chain route-resolution (%d hooks)\n", h.RouteHooks().Len())
			for _, name := range h.RouteHooks().Names() {
				fmt.Printf("          %s\n", name)
			}
			fmt.Println()
		}
	}

	probe, err := testbed.NewEchoProbe(tb.Loop, tb.CH, tb.MHTS, testbed.MHHomeAddr, 7, *interval)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mnet:", err)
		os.Exit(1)
	}
	probe.Start()
	tb.Run(2 * time.Second)
	report := func(tag string) {
		sent, recv := probe.Snapshot()
		fmt.Printf("   stream: %d sent, %d echoed (%s)\n\n", sent, recv, tag)
	}
	report("at home")

	step("visit the department Ethernet (cold)", func(done func(error)) {
		tb.MoveEthTo(tb.DeptNet)
		tb.MH.ColdSwitch(tb.Eth, done)
	})
	tb.Run(3 * time.Second)
	report("on net 36.8, tunneled via the home agent")

	step("switch to the Metricom radio (cold)", func(done func(error)) {
		tb.MH.ColdSwitch(tb.Strip, done)
	})
	tb.Run(3 * time.Second)
	report("on the radio")

	step("hot switch back to the wire", func(done func(error)) {
		tb.Eth.Iface().Device().BringUp(func() {
			tb.MH.Prepare(tb.Eth, func(err error) {
				if err != nil {
					done(err)
					return
				}
				tb.MH.HotSwitch(tb.Eth, done)
			})
		})
	})
	tb.Run(3 * time.Second)
	report("back on net 36.8 (radio was kept up during the switch)")

	step("return home", func(done func(error)) {
		tb.MoveEthTo(tb.HomeNet)
		tb.MH.ColdSwitchHome(tb.Eth, testbed.RouterHomeAddr, done)
	})
	tb.Run(3 * time.Second)
	report("home again")

	probe.Pause()
	tb.Run(2 * time.Second)
	sent, recv := probe.Snapshot()
	fmt.Printf("== done: %d probes sent, %d echoed, %d lost across 4 moves ==\n", sent, recv, sent-recv)
	fmt.Printf("mobile host stats: %+v\n", tb.MH.Stats())
	fmt.Printf("home agent stats:  %+v\n", tb.HA.Stats())
	fmt.Printf("\nfinal %s", tb.Metrics.Snapshot().Table())

	if *spans {
		// The lifecycle tree, with the per-packet chain-traversal spans
		// folded into the kind-count summary below it.
		fmt.Printf("\n== span tree (pipeline/drop spans summarized below) ==\n")
		fmt.Print(tb.Tracer.SpanTree("pipeline.", "drop."))
		fmt.Printf("\n== span kinds ==\n")
		for _, kc := range tb.Tracer.SpanKindCounts() {
			fmt.Printf("  %7d  %s\n", kc.Count, kc.Kind)
		}
	}
	if jsonCap != nil {
		f, err := os.Create(*dumpJSON)
		if err == nil {
			err = jsonCap.WriteJSONL(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "mnet: dump-json:", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s (%d frames)\n", *dumpJSON, jsonCap.Len())
	}
}
