// Command mnetlint runs the repository's determinism and accounting
// analyzers (internal/analysis) over Go packages, multichecker style.
//
// Usage:
//
//	go run ./cmd/mnetlint ./...
//	go run ./cmd/mnetlint -json ./internal/mip ./internal/stack
//	go run ./cmd/mnetlint -sarif ./... > mnetlint.sarif
//	go run ./cmd/mnetlint -stale-allows ./...
//
// Exit status: 0 clean, 1 diagnostics reported, 2 operational error.
// Findings are suppressed by a `//lint:allow <analyzer> <reason>` comment
// on the same line or the line above; the reason is mandatory and
// directives missing one are themselves reported.
//
// -stale-allows inverts the audit: instead of findings it reports the
// allow directives that no longer suppress anything — escape hatches
// whose justification has rotted into noise. The analyzers still run
// (usage is observable only by running them); their findings are not
// printed in this mode.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"mosquitonet/internal/analysis"
	"mosquitonet/internal/analysis/framework"
)

type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	sarifOut := flag.Bool("sarif", false, "emit findings as SARIF 2.1.0")
	staleAllows := flag.Bool("stale-allows", false, "report //lint:allow directives that no longer suppress any diagnostic")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()

	suite := analysis.All()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader, err := framework.NewLoader(wd)
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.LoadPatterns(patterns)
	if err != nil {
		fatal(err)
	}

	findings, err := runLint(loader, pkgs, suite, *staleAllows)
	if err != nil {
		fatal(err)
	}

	switch {
	case *sarifOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(buildSARIF(suite, findings)); err != nil {
			fatal(err)
		}
	case *jsonOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fatal(err)
		}
	default:
		for _, f := range findings {
			fmt.Printf("%s:%d:%d: %s [%s]\n", f.File, f.Line, f.Col, f.Message, f.Analyzer)
		}
		if len(findings) > 0 {
			fmt.Printf("mnetlint: %d finding(s)\n", len(findings))
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// runLint executes the suite over pkgs and returns sorted findings. In
// staleAllows mode the analyzer findings are used only to mark directives
// as earning their keep; the returned findings are the directives that
// suppressed nothing (plus directives naming unknown analyzers).
func runLint(loader *framework.Loader, pkgs []*framework.Package, suite []*framework.Analyzer, staleAllows bool) ([]finding, error) {
	known := make(map[string]bool, len(suite))
	for _, a := range suite {
		known[a.Name] = true
	}
	var findings []finding
	for _, pkg := range pkgs {
		if len(pkg.Files) == 0 {
			continue
		}
		for _, broken := range pkg.BrokenDirectives() {
			pos := pkg.Fset.Position(broken.Pos)
			findings = append(findings, finding{
				File: rel(loader, pos.Filename), Line: pos.Line, Col: pos.Column,
				Analyzer: "lintdirective",
				Message:  "//lint:allow directive without a reason: write //lint:allow <analyzer> <why the invariant holds anyway>",
			})
		}
		var diagFindings []finding
		for _, a := range suite {
			diags, err := pkg.Run(a)
			if err != nil {
				return nil, err
			}
			for _, d := range diags {
				pos := pkg.Fset.Position(d.Pos)
				diagFindings = append(diagFindings, finding{
					File: rel(loader, pos.Filename), Line: pos.Line, Col: pos.Column,
					Analyzer: d.Analyzer, Message: d.Message,
				})
			}
		}
		if staleAllows {
			for _, d := range pkg.AllowDirectives() {
				switch {
				case d.Analyzer != "all" && !known[d.Analyzer]:
					findings = append(findings, finding{
						File: rel(loader, d.File), Line: d.Line, Col: 1,
						Analyzer: "staleallow",
						Message:  fmt.Sprintf("//lint:allow names unknown analyzer %q", d.Analyzer),
					})
				case !pkg.AllowUsed(d.Pos):
					findings = append(findings, finding{
						File: rel(loader, d.File), Line: d.Line, Col: 1,
						Analyzer: "staleallow",
						Message:  fmt.Sprintf("//lint:allow %s no longer suppresses any diagnostic: delete it or re-justify (reason was: %s)", d.Analyzer, d.Reason),
					})
				}
			}
		} else {
			findings = append(findings, diagFindings...)
		}
	}
	sortFindings(findings)
	return findings, nil
}

func sortFindings(findings []finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
}

// rel shortens absolute paths to module-relative for stable output.
func rel(l *framework.Loader, path string) string {
	if r, ok := strings.CutPrefix(path, l.ModRoot()+string(os.PathSeparator)); ok {
		return r
	}
	return path
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mnetlint:", err)
	os.Exit(2)
}
