// Command mnetlint runs the repository's determinism and accounting
// analyzers (internal/analysis) over Go packages, multichecker style.
//
// Usage:
//
//	go run ./cmd/mnetlint ./...
//	go run ./cmd/mnetlint -json ./internal/mip ./internal/stack
//
// Exit status: 0 clean, 1 diagnostics reported, 2 operational error.
// Findings are suppressed by a `//lint:allow <analyzer> <reason>` comment
// on the same line or the line above; the reason is mandatory and
// directives missing one are themselves reported.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"mosquitonet/internal/analysis"
	"mosquitonet/internal/analysis/framework"
)

type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()

	suite := analysis.All()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader, err := framework.NewLoader(wd)
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.LoadPatterns(patterns)
	if err != nil {
		fatal(err)
	}

	var findings []finding
	for _, pkg := range pkgs {
		if len(pkg.Files) == 0 {
			continue
		}
		for _, broken := range pkg.BrokenDirectives() {
			pos := pkg.Fset.Position(broken.Pos)
			findings = append(findings, finding{
				File: rel(loader, pos.Filename), Line: pos.Line, Col: pos.Column,
				Analyzer: "lintdirective",
				Message:  "//lint:allow directive without a reason: write //lint:allow <analyzer> <why the invariant holds anyway>",
			})
		}
		for _, a := range suite {
			diags, err := pkg.Run(a)
			if err != nil {
				fatal(err)
			}
			for _, d := range diags {
				pos := pkg.Fset.Position(d.Pos)
				findings = append(findings, finding{
					File: rel(loader, pos.Filename), Line: pos.Line, Col: pos.Column,
					Analyzer: d.Analyzer, Message: d.Message,
				})
			}
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fatal(err)
		}
	} else {
		for _, f := range findings {
			fmt.Printf("%s:%d:%d: %s [%s]\n", f.File, f.Line, f.Col, f.Message, f.Analyzer)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Printf("mnetlint: %d finding(s)\n", len(findings))
		}
		os.Exit(1)
	}
}

// rel shortens absolute paths to module-relative for stable output.
func rel(l *framework.Loader, path string) string {
	if r, ok := strings.CutPrefix(path, l.ModRoot()+string(os.PathSeparator)); ok {
		return r
	}
	return path
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mnetlint:", err)
	os.Exit(2)
}
