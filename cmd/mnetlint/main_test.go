package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mosquitonet/internal/analysis"
	"mosquitonet/internal/analysis/framework"
)

// writeModule materializes a throwaway Go module and returns its root.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range files {
		p := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// lintModule runs the full suite over a temp module.
func lintModule(t *testing.T, dir string, staleAllows bool) []finding {
	t.Helper()
	loader, err := framework.NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadPatterns([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	findings, err := runLint(loader, pkgs, analysis.All(), staleAllows)
	if err != nil {
		t.Fatal(err)
	}
	return findings
}

const testGoMod = "module lintfixture\n\ngo 1.21\n"

func TestMissingReasonDirectiveIsReported(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": testGoMod,
		"p.go": `package p

import "time"

func now() time.Time {
	//lint:allow nowallclock
	return time.Now()
}
`,
	})
	findings := lintModule(t, dir, false)
	var sawDirective, sawClock bool
	for _, f := range findings {
		if f.Analyzer == "lintdirective" && strings.Contains(f.Message, "without a reason") {
			sawDirective = true
		}
		// The reasonless directive must NOT suppress.
		if f.Analyzer == "nowallclock" {
			sawClock = true
		}
	}
	if !sawDirective {
		t.Errorf("no lintdirective finding for reasonless allow; findings: %+v", findings)
	}
	if !sawClock {
		t.Errorf("reasonless allow suppressed the diagnostic; findings: %+v", findings)
	}
}

func TestStaleAllowsAudit(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": testGoMod,
		"p.go": `package p

import "time"

func now() time.Time {
	//lint:allow nowallclock harness measures real time outside the simulation
	return time.Now()
}

func idle() {
	//lint:allow seededrand there is no randomness here at all
	_ = 1
}

func typo() {
	//lint:allow frobnicator no such analyzer exists
	_ = 2
}
`,
	})
	findings := lintModule(t, dir, true)
	var staleSeeded, unknownNamed, staleClock bool
	for _, f := range findings {
		if f.Analyzer != "staleallow" {
			t.Errorf("stale-allows mode leaked a %s finding: %+v", f.Analyzer, f)
			continue
		}
		switch {
		case strings.Contains(f.Message, "seededrand"):
			staleSeeded = true
		case strings.Contains(f.Message, "frobnicator"):
			unknownNamed = true
		case strings.Contains(f.Message, "nowallclock"):
			staleClock = true
		}
	}
	if !staleSeeded {
		t.Errorf("stale seededrand allow not reported; findings: %+v", findings)
	}
	if !unknownNamed {
		t.Errorf("unknown-analyzer allow not reported; findings: %+v", findings)
	}
	if staleClock {
		t.Errorf("the used nowallclock allow was wrongly reported stale; findings: %+v", findings)
	}
}

// TestSARIFShape pins the output against the SARIF 2.1.0 shape: schema
// URI, version, run/tool/driver nesting, rule table consistency, and
// physical locations on every result.
func TestSARIFShape(t *testing.T) {
	suite := analysis.All()
	findings := []finding{
		{File: "internal/stack/host.go", Line: 10, Col: 2, Analyzer: "dropaccounting", Message: "silent discard"},
		{File: "internal/arp/arp.go", Line: 99, Col: 1, Analyzer: "bufownership", Message: "pooled buffer may leak"},
		{File: "internal/link/link.go", Line: 7, Col: 1, Analyzer: "staleallow", Message: "stale directive"},
	}
	data, err := json.Marshal(buildSARIF(suite, findings))
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	schema, _ := doc["$schema"].(string)
	if !strings.Contains(schema, "sarif-schema-2.1.0") {
		t.Errorf("$schema = %q, want the 2.1.0 schema URI", schema)
	}
	if v, _ := doc["version"].(string); v != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", v)
	}
	runs, _ := doc["runs"].([]any)
	if len(runs) != 1 {
		t.Fatalf("runs length = %d, want 1", len(runs))
	}
	run := runs[0].(map[string]any)
	driver := run["tool"].(map[string]any)["driver"].(map[string]any)
	if driver["name"] != "mnetlint" {
		t.Errorf("driver name = %v, want mnetlint", driver["name"])
	}
	rules, _ := driver["rules"].([]any)
	if len(rules) < len(suite)+2 {
		t.Errorf("rules = %d, want at least suite (%d) plus lintdirective and staleallow", len(rules), len(suite))
	}
	ruleIDs := make([]string, len(rules))
	for i, r := range rules {
		rm := r.(map[string]any)
		ruleIDs[i] = rm["id"].(string)
		if sd, ok := rm["shortDescription"].(map[string]any); !ok || sd["text"] == "" {
			t.Errorf("rule %v lacks shortDescription.text", rm["id"])
		}
	}
	results, _ := run["results"].([]any)
	if len(results) != len(findings) {
		t.Fatalf("results = %d, want %d", len(results), len(findings))
	}
	for i, r := range results {
		rm := r.(map[string]any)
		idx := int(rm["ruleIndex"].(float64))
		if idx < 0 || idx >= len(ruleIDs) || ruleIDs[idx] != rm["ruleId"].(string) {
			t.Errorf("result %d: ruleIndex %d does not point at ruleId %v", i, idx, rm["ruleId"])
		}
		locs, _ := rm["locations"].([]any)
		if len(locs) != 1 {
			t.Fatalf("result %d: locations = %d, want 1", i, len(locs))
		}
		phys := locs[0].(map[string]any)["physicalLocation"].(map[string]any)
		if uri := phys["artifactLocation"].(map[string]any)["uri"]; uri != findings[i].File {
			t.Errorf("result %d: uri = %v, want %s", i, uri, findings[i].File)
		}
		region := phys["region"].(map[string]any)
		if int(region["startLine"].(float64)) != findings[i].Line {
			t.Errorf("result %d: startLine = %v, want %d", i, region["startLine"], findings[i].Line)
		}
	}
}

// TestCleanModule pins exit-0 behaviour: no findings on conforming code.
func TestCleanModule(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": testGoMod,
		"p.go":   "package p\n\nfunc ok() int { return 4 }\n",
	})
	if findings := lintModule(t, dir, false); len(findings) != 0 {
		t.Errorf("clean module produced findings: %+v", findings)
	}
	if findings := lintModule(t, dir, true); len(findings) != 0 {
		t.Errorf("clean module produced stale-allow findings: %+v", findings)
	}
}
