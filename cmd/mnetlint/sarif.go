package main

import "mosquitonet/internal/analysis/framework"

// SARIF 2.1.0 output, minimal but schema-shaped: one run, one driver, a
// rule per analyzer (plus the driver's own lintdirective/staleallow
// pseudo-rules), and one result per finding with a physical location.
// CI uploads this artifact so findings annotate the code view.

const sarifSchema = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// driverRules are findings mnetlint itself produces, outside any analyzer.
var driverRules = []sarifRule{
	{ID: "lintdirective", ShortDescription: sarifMessage{Text: "//lint:allow directives must carry a reason"}},
	{ID: "staleallow", ShortDescription: sarifMessage{Text: "//lint:allow directives must still suppress something"}},
}

// buildSARIF renders findings as one SARIF run.
func buildSARIF(suite []*framework.Analyzer, findings []finding) sarifLog {
	rules := make([]sarifRule, 0, len(suite)+len(driverRules))
	index := make(map[string]int)
	for _, a := range suite {
		index[a.Name] = len(rules)
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	for _, r := range driverRules {
		index[r.ID] = len(rules)
		rules = append(rules, r)
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		idx, ok := index[f.Analyzer]
		if !ok {
			// A finding from a rule outside the suite (should not happen):
			// register it so ruleIndex stays valid.
			idx = len(rules)
			index[f.Analyzer] = idx
			rules = append(rules, sarifRule{ID: f.Analyzer, ShortDescription: sarifMessage{Text: f.Analyzer}})
		}
		results = append(results, sarifResult{
			RuleID:    f.Analyzer,
			RuleIndex: idx,
			Level:     "warning",
			Message:   sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: f.File},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Col},
				},
			}},
		})
	}
	return sarifLog{
		Schema:  sarifSchema,
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: sarifDriver{Name: "mnetlint", Rules: rules}}, Results: results}},
	}
}
