// Command mnping runs ICMP echo measurements inside the simulated paper
// testbed: it parks the mobile host at home, on the visited Ethernet, or
// on the radio, and pings a chosen landmark, printing per-probe RTTs like
// the ping utility the paper's measurements were built on.
//
// Usage:
//
//	mnping [-seed N] [-from home|dept|radio] [-to ha|router|ch|campus] [-count N]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	mosquitonet "mosquitonet"
	"mosquitonet/internal/testbed"
)

func main() {
	seed := flag.Int64("seed", 1, "simulation seed")
	from := flag.String("from", "dept", "mobile host location: home, dept, radio")
	to := flag.String("to", "ch", "target: ha, ch, campus")
	count := flag.Int("count", 10, "number of echo requests")
	size := flag.Int("size", 56, "payload bytes")
	local := flag.Bool("local", false, "ping in the local role (care-of source) instead of via mobile IP")
	flag.Parse()

	tb := testbed.New(*seed)
	switch *from {
	case "home":
		tb.MustConnectHome()
	case "dept":
		tb.MoveEthTo(tb.DeptNet)
		tb.MustConnectForeign(tb.Eth)
	case "radio":
		tb.MustConnectForeign(tb.Strip)
	default:
		fmt.Fprintf(os.Stderr, "mnping: unknown location %q\n", *from)
		os.Exit(2)
	}

	var dst mosquitonet.Addr
	switch *to {
	case "ha":
		dst = testbed.RouterHomeAddr
	case "ch":
		dst = testbed.CHAddr
	case "campus":
		dst = testbed.CampusCHAddr
	default:
		fmt.Fprintf(os.Stderr, "mnping: unknown target %q\n", *to)
		os.Exit(2)
	}

	bound := mosquitonet.Unspecified
	if *local {
		bound = tb.MH.CareOf()
		if bound.IsUnspecified() {
			bound = tb.MH.HomeAddr()
		}
	}

	fmt.Printf("PING %v from %s (mh at %s, care-of %v)\n", dst, bound, *from, tb.MH.CareOf())
	received, lost := 0, 0
	var sum time.Duration
	for i := 0; i < *count; i++ {
		seq := i + 1
		tb.MH.Host().ICMP().Ping(dst, bound, *size, 3*time.Second, func(r mosquitonet.PingResult) {
			switch {
			case r.TimedOut:
				lost++
				fmt.Printf("  seq=%d timeout\n", seq)
			case r.Unreachable:
				lost++
				fmt.Printf("  seq=%d unreachable (code %d) from %v\n", seq, r.Code, r.From)
			default:
				received++
				sum += r.RTT
				fmt.Printf("  %d bytes from %v: seq=%d time=%v\n", *size, r.From, seq, r.RTT.Round(10*time.Microsecond))
			}
		})
		tb.Run(3500 * time.Millisecond)
	}
	fmt.Printf("--- %v statistics ---\n%d transmitted, %d received, %.0f%% loss",
		dst, *count, received, 100*float64(lost)/float64(*count))
	if received > 0 {
		fmt.Printf(", avg rtt %v", (sum / time.Duration(received)).Round(10*time.Microsecond))
	}
	fmt.Println()
}
