package mosquitonet

import (
	"bytes"
	"testing"
	"time"
)

// roamingArtifacts runs one full roaming scenario — attach at home, cold
// switch to a visited subnet, exchange echo traffic through the home
// agent, return home — and renders the run's observable artifacts at the
// public API surface: the trace JSONL and the metrics snapshot JSON.
func roamingArtifacts(t *testing.T, seed int64) (traceOut, metricsOut []byte) {
	t.Helper()
	w := NewWorld(seed)
	home, err := w.AddSubnet("home", "10.1.0.0/24", Ethernet())
	if err != nil {
		t.Fatal(err)
	}
	visited, err := w.AddSubnet("visited", "10.2.0.0/24", Ethernet())
	if err != nil {
		t.Fatal(err)
	}
	ha, err := home.HomeAgent(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := visited.DHCP(100, 120); err != nil {
		t.Fatal(err)
	}
	ch, err := visited.Host("corr", 50)
	if err != nil {
		t.Fatal(err)
	}

	mn, err := w.MobileHost("laptop", home, 7, ha.Addr())
	if err != nil {
		t.Fatal(err)
	}
	eth0, err := mn.WiredInterface("eth0", home)
	if err != nil {
		t.Fatal(err)
	}
	eth1, err := mn.WiredInterface("eth1", visited)
	if err != nil {
		t.Fatal(err)
	}

	mn.MH.ConnectHome(eth0, home.Gateway, func(err error) {
		if err != nil {
			t.Errorf("ConnectHome: %v", err)
		}
	})
	w.Run(5 * time.Second)

	var srv *UDPSocket
	srv, err = ch.TS.UDP(Unspecified, 7, func(d Datagram) {
		srv.SendTo(d.From, d.FromPort, d.Payload)
	})
	if err != nil {
		t.Fatal(err)
	}

	mn.MH.ColdSwitch(eth1, func(err error) {
		if err != nil {
			t.Errorf("ColdSwitch: %v", err)
		}
	})
	w.Run(15 * time.Second)

	cli, err := mn.TS.UDP(Unspecified, 0, func(Datagram) {})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		cli.SendTo(ch.Addr, 7, []byte("probe"))
		w.Run(time.Second)
	}

	// Return home: the deregistration path exercises gratuitous ARP and
	// binding teardown, all of which must replay identically too.
	mn.MH.ConnectHome(eth0, home.Gateway, func(err error) {
		if err != nil {
			t.Errorf("return home: %v", err)
		}
	})
	w.Run(10 * time.Second)

	var tr, ms bytes.Buffer
	if err := w.Tracer.WriteJSONL(&tr); err != nil {
		t.Fatal(err)
	}
	if err := w.Metrics.Snapshot().WriteJSON(&ms); err != nil {
		t.Fatal(err)
	}
	return tr.Bytes(), ms.Bytes()
}

// TestWorldDeterminism is the determinism invariant stated in DESIGN.md §5
// at its widest scope: two worlds built from the same seed must replay a
// full roaming scenario to byte-identical trace JSONL and byte-identical
// metrics snapshots. Everything mnetlint polices — wall-clock reads,
// unseeded randomness, map-order leaks — would surface here as a diff.
func TestWorldDeterminism(t *testing.T) {
	trace1, metrics1 := roamingArtifacts(t, 42)
	trace2, metrics2 := roamingArtifacts(t, 42)

	if len(trace1) == 0 {
		t.Fatal("scenario produced no trace events")
	}
	if !bytes.Equal(trace1, trace2) {
		t.Errorf("trace JSONL differs between same-seed runs:\nrun1 %d bytes, run2 %d bytes\n%s", len(trace1), len(trace2), firstDiffLine(trace1, trace2))
	}
	if !bytes.Equal(metrics1, metrics2) {
		t.Errorf("metrics snapshot differs between same-seed runs:\n%s", firstDiffLine(metrics1, metrics2))
	}

	// A different seed must still run, and (with jittered timers in play)
	// is allowed to differ — the point of seeding is choosing the run.
	trace3, _ := roamingArtifacts(t, 43)
	if len(trace3) == 0 {
		t.Fatal("second seed produced no trace events")
	}
}

// scheduleMobilityScenario builds a world whose whole mobility scenario —
// attach at home, move to a visited subnet (cold switch or warm handoff),
// probe a correspondent, return home — is pre-scheduled on the loop, so
// the world can be driven externally by a ShardSet instead of interleaved
// Run calls.
func scheduleMobilityScenario(t *testing.T, seed int64, warmHandoff bool) *World {
	t.Helper()
	w := NewWorld(seed)
	home, err := w.AddSubnet("home", "10.1.0.0/24", Ethernet())
	if err != nil {
		t.Fatal(err)
	}
	visited, err := w.AddSubnet("visited", "10.2.0.0/24", Ethernet())
	if err != nil {
		t.Fatal(err)
	}
	ha, err := home.HomeAgent(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := visited.DHCP(100, 120); err != nil {
		t.Fatal(err)
	}
	ch, err := visited.Host("corr", 50)
	if err != nil {
		t.Fatal(err)
	}
	mn, err := w.MobileHost("laptop", home, 7, ha.Addr())
	if err != nil {
		t.Fatal(err)
	}
	eth0, err := mn.WiredInterface("eth0", home)
	if err != nil {
		t.Fatal(err)
	}
	eth1, err := mn.WiredInterface("eth1", visited)
	if err != nil {
		t.Fatal(err)
	}
	var srv *UDPSocket
	srv, err = ch.TS.UDP(Unspecified, 7, func(d Datagram) {
		srv.SendTo(d.From, d.FromPort, d.Payload)
	})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := mn.TS.UDP(Unspecified, 0, func(Datagram) {})
	if err != nil {
		t.Fatal(err)
	}

	onErr := func(stage string) func(error) {
		return func(err error) {
			if err != nil {
				t.Errorf("%s: %v", stage, err)
			}
		}
	}
	mn.MH.ConnectHome(eth0, home.Gateway, onErr("ConnectHome"))
	w.Loop.Schedule(5*time.Second, func() {
		if warmHandoff {
			mn.MH.ConnectForeign(eth1, onErr("ConnectForeign"))
		} else {
			mn.MH.ColdSwitch(eth1, onErr("ColdSwitch"))
		}
	})
	for i := 0; i < 3; i++ {
		w.Loop.Schedule(20*time.Second+time.Duration(i)*time.Second, func() {
			cli.SendTo(ch.Addr, 7, []byte("probe"))
		})
	}
	w.Loop.Schedule(25*time.Second, func() {
		mn.MH.ConnectHome(eth0, home.Gateway, onErr("return home"))
	})
	return w
}

// TestCrossWorkerDeterminism asserts the shard-parallel engine's contract
// at the public API: executing the same worlds on a worker pool produces
// byte-identical traces and metrics to sequential execution. Two full
// mobility scenarios (a cold-switch roam and a warm overlapping-coverage
// handoff) run as two shards of one ShardSet; under -race this also
// exercises the claim that shards share no mutable state.
func TestCrossWorkerDeterminism(t *testing.T) {
	run := func(workers int) [][]byte {
		roam := scheduleMobilityScenario(t, 42, false)
		handoff := scheduleMobilityScenario(t, 43, true)
		ss := NewShardSet([]*Loop{roam.Loop, handoff.Loop}, 50*time.Millisecond)
		ss.SetWorkers(workers)
		ss.RunFor(35 * time.Second)
		var out [][]byte
		for _, w := range []*World{roam, handoff} {
			var tr, ms bytes.Buffer
			if err := w.Tracer.WriteJSONL(&tr); err != nil {
				t.Fatal(err)
			}
			if err := w.Metrics.Snapshot().WriteJSON(&ms); err != nil {
				t.Fatal(err)
			}
			out = append(out, tr.Bytes(), ms.Bytes())
		}
		return out
	}

	base := run(1)
	labels := []string{"roam trace", "roam metrics", "handoff trace", "handoff metrics"}
	if len(base[0]) == 0 || len(base[2]) == 0 {
		t.Fatal("scenarios produced no trace events")
	}
	for _, workers := range []int{2, 4} {
		got := run(workers)
		for i := range base {
			if !bytes.Equal(base[i], got[i]) {
				t.Errorf("workers=%d %s differs from workers=1:\n%s", workers, labels[i], firstDiffLine(base[i], got[i]))
			}
		}
	}
}

// firstDiffLine pinpoints the first differing line of two renderings for a
// readable failure message.
func firstDiffLine(a, b []byte) string {
	al := bytes.Split(a, []byte("\n"))
	bl := bytes.Split(b, []byte("\n"))
	n := len(al)
	if len(bl) < n {
		n = len(bl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(al[i], bl[i]) {
			return "line " + itoa(i+1) + ":\n run1: " + string(al[i]) + "\n run2: " + string(bl[i])
		}
	}
	return "one run is a prefix of the other"
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var d []byte
	for n > 0 {
		d = append([]byte{byte('0' + n%10)}, d...)
		n /= 10
	}
	return string(d)
}
