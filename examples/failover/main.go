// Failover: the extensions working together. A Roamer (the paper's §6
// "when to switch" future work) monitors the active link and fails over to
// the radio when the office wire dies, then upgrades back when it returns;
// a DNS name keeps resolving to the permanent home address throughout; and
// the link-change notification API tells the application what kind of
// connectivity it has at each moment.
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"log"
	"time"

	mosquitonet "mosquitonet"
)

func main() {
	w := mosquitonet.NewWorld(21)
	home, err := w.AddSubnet("home", "10.1.0.0/24", mosquitonet.Ethernet())
	check(err)
	office, err := w.AddSubnet("office", "10.2.0.0/24", mosquitonet.Ethernet())
	check(err)
	cellular, err := w.AddSubnet("cellular", "10.9.0.0/24", mosquitonet.Radio())
	check(err)

	ha, err := home.HomeAgent(2)
	check(err)
	_, err = office.DHCP(100, 120)
	check(err)

	// Name service on the home subnet.
	dnsHost, err := home.Host("dns", 53)
	check(err)

	laptop, err := w.MobileHost("laptop", home, 7, ha.Addr())
	check(err)
	_, err = mosquitonet.NewDNSServer(dnsHost.TS, mosquitonet.DNSServerConfig{
		Zone: map[string]mosquitonet.Addr{"laptop.mosquito.edu": laptop.MH.HomeAddr()},
	})
	check(err)

	eth0, err := laptop.WiredInterface("eth0", office)
	check(err)
	strip0, err := laptop.StaticInterface("strip0", cellular, 7, true)
	check(err)

	laptop.MH.OnLinkChange = func(c mosquitonet.LinkChange) {
		fmt.Printf("[%8v] link: %s (%s, %d bit/s)\n",
			w.Loop.Now().Duration().Round(time.Millisecond), c.Iface, c.Medium.Name, c.Medium.BitRate)
	}

	// A correspondent that knows the laptop only by name.
	ch, err := home.Host("colleague", 9)
	check(err)
	resolver := mosquitonet.NewDNSResolver(ch.TS, dnsHost.Addr, mosquitonet.DNSResolverConfig{})
	var laptopAddr mosquitonet.Addr
	resolver.Resolve("laptop.mosquito.edu", func(a mosquitonet.Addr, err error) {
		check(err)
		laptopAddr = a
	})

	// Attach at the office and start a steady stream from the colleague.
	done := false
	laptop.MH.ConnectForeign(eth0, func(err error) { check(err); done = true })
	w.Run(10 * time.Second)
	if !done {
		log.Fatal("could not attach at the office")
	}
	fmt.Printf("resolved laptop.mosquito.edu -> %v (the permanent home address)\n", laptopAddr)

	received := 0
	_, err = laptop.TS.UDP(mosquitonet.Unspecified, 4000, func(mosquitonet.Datagram) { received++ })
	check(err)
	src, err := ch.TS.UDP(mosquitonet.Unspecified, 0, nil)
	check(err)
	sent := 0
	var tick func()
	tick = func() {
		sent++
		src.SendTo(laptopAddr, 4000, []byte("tick"))
		w.Loop.Schedule(100*time.Millisecond, tick)
	}
	w.Loop.Schedule(0, tick)

	// The roamer watches the office wire, with the cellular radio as backup.
	roamer := mosquitonet.NewRoamer(laptop.MH, mosquitonet.RoamerConfig{
		ProbeInterval:   time.Second,
		FailThreshold:   2,
		UpgradeInterval: 5 * time.Second,
	}, []mosquitonet.Candidate{
		{Iface: eth0},
		{Iface: strip0},
	})
	roamer.OnFailover = func(from, to *mosquitonet.ManagedIface) {
		fmt.Printf("[%8v] FAILOVER %s -> %s\n", w.Loop.Now().Duration().Round(time.Millisecond), from.Name(), to.Name())
	}
	roamer.OnUpgrade = func(from, to *mosquitonet.ManagedIface) {
		fmt.Printf("[%8v] UPGRADE  %s -> %s\n", w.Loop.Now().Duration().Round(time.Millisecond), from.Name(), to.Name())
	}
	roamer.Start()
	w.Run(5 * time.Second)
	report := func(tag string) {
		fmt.Printf("           stream: %d sent, %d received (%s)\n", sent, received, tag)
	}
	report("on the office wire")

	fmt.Println("\n-- the office wire is unplugged")
	eth0.Iface().Device().Detach()
	w.Run(20 * time.Second)
	report("after automatic failover to the radio")

	fmt.Println("\n-- the office wire is plugged back in")
	eth0.Iface().Device().Attach(office.Net)
	w.Run(30 * time.Second)
	report("after automatic upgrade back to the wire")

	roamer.Stop()
	w.Run(2 * time.Second)
	fmt.Printf("\nroamer stats: %+v\n", roamer.Stats())
	fmt.Printf("lost across both automatic switches: %d of %d\n", sent-received, sent)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
