// Handoff: the paper's headline scenario — a long-lived stream (here a
// TCP-like connection, standing in for the remote login with active
// processes the paper motivates) survives hot and cold switches between a
// wired Ethernet and a Metricom-style radio, with the loss visible only as
// retransmissions.
//
//	go run ./examples/handoff
package main

import (
	"fmt"
	"log"
	"time"

	mosquitonet "mosquitonet"
	"mosquitonet/internal/testbed"
)

func main() {
	tb := testbed.New(7)

	// The mobile host starts on the visited department Ethernet.
	tb.MoveEthTo(tb.DeptNet)
	tb.MustConnectForeign(tb.Eth)

	// A "remote login" server on the correspondent host: it echoes every
	// line it receives.
	var server *mosquitonet.Conn
	_, err := tb.CH.Listen(mosquitonet.Unspecified, 513, func(c *mosquitonet.Conn) {
		server = c
		c.OnData = func(b []byte) { c.Write(b) }
	})
	check(err)

	session, err := tb.MHTS.Connect(mosquitonet.Unspecified, testbed.CHAddr, 513)
	check(err)
	received := 0
	session.OnData = func(b []byte) {
		received++
		fmt.Printf("  [%8v] echo %d: %q\n", tb.Loop.Now().Duration().Round(time.Millisecond), received, b)
	}
	tb.Run(2 * time.Second)
	la, _ := session.LocalAddr()
	fmt.Printf("session established, bound to %v (the home address)\n", la)

	say := func(msg string) {
		check(session.Write([]byte(msg)))
		tb.Run(3 * time.Second)
	}
	say("typed on the wire")

	// Cold switch to the radio: the wire goes away before the radio is up.
	fmt.Println("-- cold switch to the radio (wire unplugged first)")
	done := false
	tb.MH.ColdSwitch(tb.Strip, func(err error) { check(err); done = true })
	for !done {
		tb.Run(100 * time.Millisecond)
	}
	fmt.Printf("   now at care-of %v; connection state: %v, retransmits so far: %d\n",
		tb.MH.CareOf(), session.State(), session.Stats().Retransmits)
	say("typed over the radio")

	// Hot switch back: bring the wire up *before* leaving the radio.
	fmt.Println("-- hot switch back to the wire (radio stays up during the switch)")
	done = false
	tb.Eth.Iface().Device().BringUp(func() {
		tb.MH.Prepare(tb.Eth, func(err error) {
			check(err)
			tb.MH.HotSwitch(tb.Eth, func(err error) { check(err); done = true })
		})
	})
	for !done {
		tb.Run(100 * time.Millisecond)
	}
	fmt.Printf("   now at care-of %v\n", tb.MH.CareOf())
	say("typed on the wire again")

	session.Close()
	tb.Run(5 * time.Second)
	fmt.Printf("session closed cleanly: %v / server %v\n", session.State(), server.State())
	fmt.Printf("stream stats: %+v\n", session.Stats())
	fmt.Printf("the connection survived %d cold and %d hot switches\n",
		tb.MH.Stats().ColdSwitches, tb.MH.Stats().HotSwitches)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
