// Quickstart: build a small internetwork with the public API, attach a
// mobile host, move it to a foreign network, and show that a correspondent
// keeps reaching it at its home address the whole time.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	mosquitonet "mosquitonet"
)

func main() {
	// A world is subnets around one backbone router.
	w := mosquitonet.NewWorld(1)
	home, err := w.AddSubnet("home", "10.1.0.0/24", mosquitonet.Ethernet())
	check(err)
	cafe, err := w.AddSubnet("cafe", "10.2.0.0/24", mosquitonet.Ethernet())
	check(err)

	// The home subnet runs a home agent; the café hands out addresses by
	// DHCP, which is all MosquitoNet asks of a foreign network.
	ha, err := home.HomeAgent(2)
	check(err)
	_, err = cafe.DHCP(100, 120)
	check(err)

	// A fixed correspondent at the café, running a tiny UDP echo service.
	ch, err := cafe.Host("correspondent", 50)
	check(err)
	var srv *mosquitonet.UDPSocket
	srv, err = ch.TS.UDP(mosquitonet.Unspecified, 7, func(d mosquitonet.Datagram) {
		fmt.Printf("  correspondent: %q from %v (always the home address)\n", d.Payload, d.From)
		srv.SendTo(d.From, d.FromPort, d.Payload)
	})
	check(err)

	// The mobile host: permanent address 10.1.0.7, one interface at home,
	// one that will attach at the café.
	laptop, err := w.MobileHost("laptop", home, 7, ha.Addr())
	check(err)
	eth0, err := laptop.WiredInterface("eth0", home)
	check(err)
	eth1, err := laptop.WiredInterface("eth1", cafe)
	check(err)

	// Attach at home and say hello.
	laptop.MH.ConnectHome(eth0, home.Gateway, func(err error) { check(err) })
	w.Run(5 * time.Second)
	fmt.Printf("at home: address %v\n", laptop.MH.HomeAddr())

	replies := 0
	cli, err := laptop.TS.UDP(mosquitonet.Unspecified, 0, func(mosquitonet.Datagram) { replies++ })
	check(err)
	cli.SendTo(ch.Addr, 7, []byte("hello from home"))
	w.Run(2 * time.Second)

	// Move to the café. The cold switch tears eth0 down, brings eth1 up,
	// acquires a care-of address by DHCP, and registers it with the home
	// agent — applications notice nothing.
	laptop.MH.ColdSwitch(eth1, func(err error) { check(err) })
	w.Run(10 * time.Second)
	fmt.Printf("at the café: care-of %v, still reachable at %v\n",
		laptop.MH.CareOf(), laptop.MH.HomeAddr())

	cli.SendTo(ch.Addr, 7, []byte("hello from the café"))
	w.Run(2 * time.Second)

	fmt.Printf("echo replies received: %d of 2\n", replies)
	if b, ok := ha.Binding(laptop.MH.HomeAddr()); ok {
		fmt.Printf("home agent binding: %v -> %v\n", b.HomeAddr, b.CareOf)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
