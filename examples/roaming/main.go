// Roaming: a mobile host wanders across three foreign networks run by
// different authorities — two plain DHCP networks (all MosquitoNet asks
// for) and one that happens to operate a foreign agent — while a
// correspondent streams datagrams to its home address. The example prints
// per-leg delivery statistics and shows the previous-foreign-agent
// forwarding extension recovering in-flight packets during the final move.
//
//	go run ./examples/roaming
package main

import (
	"fmt"
	"log"
	"time"

	mosquitonet "mosquitonet"
)

func main() {
	w := mosquitonet.NewWorld(11)
	home, err := w.AddSubnet("home", "10.1.0.0/24", mosquitonet.Ethernet())
	check(err)
	hotel, err := w.AddSubnet("hotel", "10.2.0.0/24", mosquitonet.Ethernet())
	check(err)
	airport, err := w.AddSubnet("airport", "10.3.0.0/24", mosquitonet.Ethernet())
	check(err)
	// The campus network is far away and slow — and it runs a foreign
	// agent, the optional extension.
	slow := mosquitonet.Ethernet()
	slow.Name = "slow-wired"
	slow.Latency = 60 * time.Millisecond
	slow.BitRate = 512_000
	campus, err := w.AddSubnet("campus", "10.4.0.0/24", slow)
	check(err)

	ha, err := home.HomeAgent(2)
	check(err)
	_, err = hotel.DHCP(100, 120)
	check(err)
	_, err = airport.DHCP(100, 120)
	check(err)
	fa, err := campus.ForeignAgent(2)
	check(err)

	ch, err := home.Host("correspondent", 9)
	check(err)

	laptop, err := w.MobileHost("laptop", home, 7, ha.Addr())
	check(err)
	eth0, err := laptop.WiredInterface("eth0", home)
	check(err)
	wifi, err := laptop.WiredInterface("wlan0", hotel)
	check(err)

	// Correspondent streams a datagram every 50 ms to the home address.
	received := 0
	_, err = laptop.TS.UDP(mosquitonet.Unspecified, 4000, func(mosquitonet.Datagram) { received++ })
	check(err)
	src, err := ch.TS.UDP(mosquitonet.Unspecified, 0, nil)
	check(err)
	sent := 0
	var tick func()
	tick = func() {
		sent++
		src.SendTo(laptop.MH.HomeAddr(), 4000, []byte("news"))
		w.Loop.Schedule(50*time.Millisecond, tick)
	}

	leg := func(name string, move func(done func(error))) {
		before := sent - received
		finished := false
		move(func(err error) { check(err); finished = true })
		for !finished {
			w.Run(100 * time.Millisecond)
		}
		w.Run(3 * time.Second)
		fmt.Printf("%-36s care-of=%-12v registered=%-5v lost-this-leg=%d\n",
			name, laptop.MH.CareOf(), laptop.MH.Registered(), (sent-received)-before)
	}

	laptop.MH.ConnectHome(eth0, home.Gateway, func(err error) { check(err) })
	w.Run(2 * time.Second)
	w.Loop.Schedule(0, tick)
	w.Run(2 * time.Second)
	fmt.Printf("%-36s home=%v\n", "at home", laptop.MH.HomeAddr())

	leg("moved to the hotel (DHCP)", func(done func(error)) {
		laptop.MH.ColdSwitch(wifi, done)
	})

	leg("moved to the airport (DHCP)", func(done func(error)) {
		laptop.MoveInterface(wifi, airport)
		laptop.MH.ColdSwitch(wifi, done)
	})

	leg("moved to the campus (foreign agent)", func(done func(error)) {
		laptop.MoveInterface(wifi, campus)
		laptop.MH.Disconnect(wifi)
		laptop.MH.ConnectViaForeignAgent(wifi, fa.Addr(), done)
	})
	fmt.Printf("%-36s visitors=%d adverts=%d\n", "  (foreign agent state)",
		fa.Stats().VisitorsActive, fa.Stats().AdvertsSent)

	leg("back to the airport, FA forwards", func(done func(error)) {
		// Warn the FA, move, then hand it the new care-of address so it
		// forwards buffered and in-flight packets instead of losing them.
		laptop.MH.AnnounceDeparture(fa.Addr(), 30*time.Second)
		w.Run(300 * time.Millisecond)
		laptop.MoveInterface(wifi, airport)
		laptop.MH.ColdSwitch(wifi, func(err error) {
			if err == nil {
				laptop.MH.NotifyPreviousFA(fa.Addr(), laptop.MH.CareOf(), 30*time.Second)
			}
			done(err)
		})
	})
	fmt.Printf("%-36s forwarded=%d\n", "  (stragglers saved by the FA)", fa.Stats().Forwarded)

	leg("home again", func(done func(error)) {
		laptop.MoveInterface(eth0, home) // it never left, but be explicit
		laptop.MH.ColdSwitchHome(eth0, home.Gateway, done)
	})

	w.Run(2 * time.Second)
	fmt.Printf("\ntotals: %d sent, %d received, %d lost across 5 moves\n", sent, received, sent-received)
	fmt.Printf("mobile host: %+v\n", laptop.MH.Stats())
	fmt.Printf("home agent:  %+v\n", ha.Stats())
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
