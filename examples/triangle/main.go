// Triangle: the Mobile Policy Table in action (Section 3.2 of the paper).
// The mobile host visits a foreign network and talks to two correspondents
// under each sending policy — basic reverse tunneling, the triangle-route
// optimization, and encapsulated-direct to a smart correspondent — then
// hits a transit-traffic filter, detects it by probing, and falls back.
//
//	go run ./examples/triangle
package main

import (
	"fmt"
	"log"
	"time"

	mosquitonet "mosquitonet"
	"mosquitonet/internal/stack"
	"mosquitonet/internal/testbed"
)

func main() {
	tb := testbed.New(3)
	tb.MoveEthTo(tb.DeptNet)
	tb.MustConnectForeign(tb.Eth)
	fmt.Printf("mobile host visiting %v with care-of %v\n\n", testbed.DeptPrefix, tb.MH.CareOf())

	// Echo service on the campus correspondent; it is also "smart" (can
	// decapsulate IP-in-IP, like recent Linux development kernels).
	smart := mosquitonet.MakeSmartCorrespondent(tb.CampusCH.Host())
	var srv *mosquitonet.UDPSocket
	srv, err := tb.CampusCH.UDP(mosquitonet.Unspecified, 7, func(d mosquitonet.Datagram) {
		srv.SendTo(d.From, d.FromPort, d.Payload)
	})
	check(err)

	rtt := func(label string) {
		var took time.Duration
		got := false
		var start mosquitonet.Time
		sock, err := tb.MHTS.UDP(mosquitonet.Unspecified, 0, func(mosquitonet.Datagram) {
			took = tb.Loop.Now().Sub(start)
			got = true
		})
		check(err)
		defer sock.Close()
		start = tb.Loop.Now()
		sock.SendTo(testbed.CampusCHAddr, 7, []byte("x"))
		tb.Run(3 * time.Second)
		if got {
			fmt.Printf("  %-42s rtt=%v\n", label, took.Round(10*time.Microsecond))
		} else {
			fmt.Printf("  %-42s LOST\n", label)
		}
	}

	policy := tb.MH.Policy()
	fmt.Println("policies toward the campus correspondent:")
	policy.SetHost(testbed.CampusCHAddr, mosquitonet.PolicyTunnel)
	rtt("tunnel (basic protocol, via home agent)")
	policy.SetHost(testbed.CampusCHAddr, mosquitonet.PolicyTriangle)
	rtt("triangle (direct, home address as source)")
	policy.SetHost(testbed.CampusCHAddr, mosquitonet.PolicyEncapDirect)
	rtt("encap-direct (smart CH decapsulates)")
	fmt.Printf("  smart correspondent decapsulated %d packets\n\n", smart.Stats().Decapsulated)

	// Now the visited network's router starts forbidding transit traffic:
	// packets leaving 36.8 with a non-local source are dropped, which is
	// exactly what breaks the triangle route in the paper.
	fmt.Println("enabling a transit-traffic filter on the visited router…")
	tb.Router.AddFilter(func(in, out *stack.Iface, pkt *mosquitonet.Packet) stack.Verdict {
		if in.Prefix() == testbed.DeptPrefix && !testbed.DeptPrefix.Contains(pkt.Src) {
			return stack.Drop
		}
		return stack.Accept
	})
	policy.SetHost(testbed.CampusCHAddr, mosquitonet.PolicyTriangle)
	rtt("triangle through the filter")

	fmt.Println("\nprobing the correspondent (the paper's failed-ping detection)…")
	tb.MH.ProbeTriangle(testbed.CampusCHAddr, 2*time.Second, func(ok bool) {
		fmt.Printf("  probe result: triangle usable = %v\n", ok)
	})
	tb.Run(10 * time.Second)
	fmt.Printf("  policy table now caches: %v -> %v\n",
		testbed.CampusCHAddr, policy.Lookup(testbed.CampusCHAddr))
	rtt("after fallback (tunneled again)")

	fmt.Println("\nMobile Policy Table:")
	fmt.Print(policy)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
