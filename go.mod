module mosquitonet

go 1.22
