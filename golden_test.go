package mosquitonet

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// The golden files under testdata/golden were rendered from the datapath as
// it existed before the pipeline refactor (hook chains at PREROUTING /
// INPUT / FORWARD / OUTPUT / POSTROUTING). They pin the refactor's
// behavior-preservation contract: the same seeds must replay the full
// mobility scenario — attach at home, cold switch or warm handoff to a
// visited subnet, echo traffic through the home agent, return home — to
// byte-identical trace JSONL and metrics snapshots, at workers=1 and
// workers=4 alike. Regenerate with `go test -run Golden -update-golden .`
// only when a deliberate behavior change is being made, and say why in the
// commit.
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden from the current datapath")

func goldenPath(name string) string { return filepath.Join("testdata", "golden", name) }

// checkGolden compares got with the named golden file, or rewrites it under
// -update-golden.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := goldenPath(name)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run `go test -run Golden -update-golden .`): %v", path, err)
	}
	if !bytes.Equal(want, got) {
		t.Errorf("%s differs from pre-refactor golden (%d bytes vs %d):\n%s",
			name, len(want), len(got), firstDiffLine(want, got))
	}
}

// TestGoldenRoamingEquivalence replays the interleaved-Run roaming scenario
// and asserts its trace and metrics bytes match the pre-refactor golden.
func TestGoldenRoamingEquivalence(t *testing.T) {
	tr, ms := roamingArtifacts(t, 42)
	checkGolden(t, "roam_trace.jsonl", tr)
	checkGolden(t, "roam_metrics.json", ms)
}

// TestGoldenShardedEquivalence replays the pre-scheduled cold-roam and
// warm-handoff scenarios on a ShardSet at workers=1 and workers=4; every
// rendering must match the pre-refactor goldens byte for byte.
func TestGoldenShardedEquivalence(t *testing.T) {
	for _, workers := range []int{1, 4} {
		roam := scheduleMobilityScenario(t, 42, false)
		handoff := scheduleMobilityScenario(t, 43, true)
		ss := NewShardSet([]*Loop{roam.Loop, handoff.Loop}, 50*time.Millisecond)
		ss.SetWorkers(workers)
		ss.RunFor(35 * time.Second)
		for i, w := range []*World{roam, handoff} {
			name := []string{"shard_roam", "shard_handoff"}[i]
			var tr, ms bytes.Buffer
			if err := w.Tracer.WriteJSONL(&tr); err != nil {
				t.Fatal(err)
			}
			if err := w.Metrics.Snapshot().WriteJSON(&ms); err != nil {
				t.Fatal(err)
			}
			if workers == 1 && *updateGolden {
				checkGolden(t, name+"_trace.jsonl", tr.Bytes())
				checkGolden(t, name+"_metrics.json", ms.Bytes())
				continue
			}
			t.Run(fmt.Sprintf("%s/workers=%d", name, workers), func(t *testing.T) {
				checkGolden(t, name+"_trace.jsonl", tr.Bytes())
				checkGolden(t, name+"_metrics.json", ms.Bytes())
			})
		}
	}
}
