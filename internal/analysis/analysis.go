// Package analysis registers the mnetlint analyzer suite: the mechanical
// enforcement of the simulator's determinism and accounting invariants.
// See DESIGN.md §5 for the invariant each analyzer guards and the
// //lint:allow escape-hatch policy.
package analysis

import (
	"mosquitonet/internal/analysis/bufownership"
	"mosquitonet/internal/analysis/dropaccounting"
	"mosquitonet/internal/analysis/framework"
	"mosquitonet/internal/analysis/hookorder"
	"mosquitonet/internal/analysis/nosharedstate"
	"mosquitonet/internal/analysis/nowallclock"
	"mosquitonet/internal/analysis/scenariogolden"
	"mosquitonet/internal/analysis/seededrand"
	"mosquitonet/internal/analysis/sortedrange"
	"mosquitonet/internal/analysis/tracekinds"
	"mosquitonet/internal/analysis/verdictflow"
	"mosquitonet/internal/analysis/wireroundtrip"
)

// All returns the full suite in a stable order.
func All() []*framework.Analyzer {
	return []*framework.Analyzer{
		nowallclock.Analyzer,
		seededrand.Analyzer,
		nosharedstate.Analyzer,
		sortedrange.Analyzer,
		dropaccounting.Analyzer,
		wireroundtrip.Analyzer,
		hookorder.Analyzer,
		tracekinds.Analyzer,
		bufownership.Analyzer,
		verdictflow.Analyzer,
		scenariogolden.Analyzer,
	}
}
