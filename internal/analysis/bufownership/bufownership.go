// Package bufownership is a borrow-checker-style dataflow pass over the
// pooled-buffer contract of DESIGN.md §6: every buffer obtained from
// internal/bufpool is owned by exactly one party at a time, must be
// recycled (bufpool.Put) or ownership-transferred exactly once, and must
// not be touched after either; frame payloads delivered by the link layer
// are borrowed for the synchronous delivery chain only and must never be
// retained or recycled by a receiver.
//
// Unlike the suite's other analyzers this one is not an AST pattern
// matcher: it builds the framework's control-flow graph for every function
// body and runs a forward may-analysis tracking abstract buffers — one per
// creation site — through assignments, aliases (ip.Packet.MarshalInto
// returns its argument), calls, stores, closures, and defers. On top of
// the intraprocedural engine it uses cross-package facts: ownership
// contracts are declared as
//
//	//mnet:ownership takes <param>        ownership of <param>'s buffer
//	                                      transfers to this function
//	//mnet:ownership borrows <param>      documented borrow-only use
//	//mnet:ownership returns-pooled       result 0 is a pooled buffer the
//	                                      caller owns
//	//mnet:ownership returns-alias <param> result 0 aliases <param>
//
// on function declarations or func-typed struct fields/variables, and
// exported as OwnershipFacts that importing packages' passes consume —
// so internal/stack's send path is checked against the contracts declared
// in internal/arp and internal/link without any cross-package AST walk.
//
// Diagnostics:
//
//   - use of a buffer after bufpool.Put (use-after-recycle)
//   - use of a buffer after its ownership was transferred
//   - double recycle (two Puts on one path)
//   - recycle after transfer (Put on a buffer someone else now owns)
//   - leak at a terminal: a path reaches return without Put or transfer
//     (the §6 "return it to the pool at every terminal" rule)
//   - retention of a borrowed frame payload: stored into a field, global
//     or aggregate, captured by a closure, recycled, or passed to an
//     ownership-taking callee
package bufownership

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"sort"
	"strings"

	"mosquitonet/internal/analysis/framework"
)

// Analyzer implements the check.
var Analyzer = &framework.Analyzer{
	Name:      "bufownership",
	Doc:       "pooled buffers are recycled or ownership-transferred exactly once on every path; borrowed frame payloads are never retained",
	Run:       run,
	FactTypes: []framework.Fact{(*OwnershipFact)(nil)},
}

// OwnershipFact is the buffer-ownership contract of one function (or
// func-typed field/variable), seeded from //mnet:ownership annotations.
type OwnershipFact struct {
	// Takes lists parameter indices whose buffer ownership transfers to
	// the callee (for a *Frame parameter: the frame's payload).
	Takes []int
	// Borrows lists parameter indices documented as borrow-only.
	Borrows []int
	// ReturnsPooled marks result 0 as a pooled buffer the caller owns.
	ReturnsPooled bool
	// AliasReturn is the parameter index result 0 aliases, or -1.
	AliasReturn int
}

// AFact marks OwnershipFact as a framework fact.
func (*OwnershipFact) AFact() {}

func (f *OwnershipFact) String() string {
	var parts []string
	if len(f.Takes) > 0 {
		parts = append(parts, fmt.Sprintf("takes=%v", f.Takes))
	}
	if len(f.Borrows) > 0 {
		parts = append(parts, fmt.Sprintf("borrows=%v", f.Borrows))
	}
	if f.ReturnsPooled {
		parts = append(parts, "returns-pooled")
	}
	if f.AliasReturn >= 0 {
		parts = append(parts, fmt.Sprintf("alias=%d", f.AliasReturn))
	}
	return "ownership(" + strings.Join(parts, " ") + ")"
}

const directive = "//mnet:ownership"

// status is the may-set of ownership states an abstract buffer can be in
// at a program point.
type status uint8

const (
	stOwned status = 1 << iota
	stRecycled
	stTransferred
	stBorrowed
)

// bufInfo describes one abstract buffer: a creation site plus how the
// buffer entered the function.
type bufInfo struct {
	pos      token.Pos
	desc     string
	borrowed bool // borrowed frame payload: retention rules apply
	owned    bool // owned pooled buffer: leak rules apply
}

// state is the dataflow fact: which buffers each local may refer to, and
// the may-status of each buffer.
type state struct {
	vars map[types.Object][]token.Pos
	bufs map[token.Pos]status
}

func newState() state {
	return state{vars: make(map[types.Object][]token.Pos), bufs: make(map[token.Pos]status)}
}

func (s state) clone() state {
	n := state{
		vars: make(map[types.Object][]token.Pos, len(s.vars)),
		bufs: make(map[token.Pos]status, len(s.bufs)),
	}
	for k, v := range s.vars {
		cp := make([]token.Pos, len(v))
		copy(cp, v)
		n.vars[k] = cp
	}
	for k, v := range s.bufs {
		n.bufs[k] = v
	}
	return n
}

func joinStates(a, b state) state {
	out := a.clone()
	for k, v := range b.vars {
		out.vars[k] = unionPos(out.vars[k], v)
	}
	for k, v := range b.bufs {
		out.bufs[k] |= v
	}
	return out
}

func unionPos(a, b []token.Pos) []token.Pos {
	seen := make(map[token.Pos]bool, len(a)+len(b))
	var out []token.Pos
	for _, p := range a {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, p := range b {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func run(pass *framework.Pass) error {
	a := &analyzer{pass: pass}
	for _, f := range pass.Files {
		a.exportAnnotations(f)
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil && !a.isFrameMethod(fn) {
					a.analyzeFunc(fn.Type, fn.Body, a.declObj(fn.Name))
				}
			case *ast.FuncLit:
				a.analyzeFunc(fn.Type, fn.Body, nil)
			}
			return true
		})
	}
	return nil
}

type analyzer struct {
	pass *framework.Pass
}

// declObj returns the defined object for a declaration name.
func (a *analyzer) declObj(id *ast.Ident) types.Object {
	if a.pass.TypesInfo == nil {
		return nil
	}
	return a.pass.TypesInfo.Defs[id]
}

// isFrameMethod reports whether fn is a method on the Frame type itself —
// Frame's own methods manipulate their payload by design.
func (a *analyzer) isFrameMethod(fn *ast.FuncDecl) bool {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return false
	}
	return finalTypeName(fn.Recv.List[0].Type) == "Frame"
}

// ---- annotations → facts ----

// exportAnnotations walks declarations for //mnet:ownership directives and
// exports the resulting OwnershipFacts.
func (a *analyzer) exportAnnotations(f *ast.File) {
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if fact, ok := a.parseDirectives(d.Doc, d.Type.Params, d.Pos()); ok {
				if obj := a.declObj(d.Name); obj != nil {
					a.pass.ExportObjectFact(obj, fact)
				}
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch sp := spec.(type) {
				case *ast.TypeSpec:
					st, ok := sp.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, field := range st.Fields.List {
						ft, ok := field.Type.(*ast.FuncType)
						if !ok {
							continue
						}
						doc := field.Doc
						if doc == nil {
							doc = field.Comment
						}
						if fact, ok := a.parseDirectives(doc, ft.Params, field.Pos()); ok {
							for _, name := range field.Names {
								if obj := a.declObj(name); obj != nil {
									a.pass.ExportObjectFact(obj, fact)
								}
							}
						}
					}
				case *ast.ValueSpec:
					ft, ok := sp.Type.(*ast.FuncType)
					if !ok {
						continue
					}
					doc := d.Doc
					if sp.Doc != nil {
						doc = sp.Doc
					}
					if fact, ok := a.parseDirectives(doc, ft.Params, sp.Pos()); ok {
						for _, name := range sp.Names {
							if obj := a.declObj(name); obj != nil {
								a.pass.ExportObjectFact(obj, fact)
							}
						}
					}
				}
			}
		}
	}
}

// parseDirectives reads //mnet:ownership lines from a doc comment,
// resolving parameter names against params. Malformed directives are
// reported — a silently ignored contract is worse than none.
func (a *analyzer) parseDirectives(doc *ast.CommentGroup, params *ast.FieldList, at token.Pos) (*OwnershipFact, bool) {
	if doc == nil {
		return nil, false
	}
	fact := &OwnershipFact{AliasReturn: -1}
	found := false
	index := paramIndex(params)
	for _, c := range doc.List {
		rest, ok := strings.CutPrefix(c.Text, directive)
		if !ok {
			continue
		}
		fields := strings.Fields(rest)
		bad := func(why string) {
			// Report on the annotated declaration, not the comment: wants in
			// fixtures (and humans reading diagnostics) look at the decl.
			a.pass.Reportf(at, "malformed %s directive: %s", directive, why)
		}
		if len(fields) == 0 {
			bad("missing verb (takes/borrows/returns-pooled/returns-alias)")
			continue
		}
		switch fields[0] {
		case "takes", "borrows", "returns-alias":
			if len(fields) != 2 {
				bad(fields[0] + " needs exactly one parameter name")
				continue
			}
			idx, ok := index[fields[1]]
			if !ok {
				bad("no parameter named " + fields[1])
				continue
			}
			found = true
			switch fields[0] {
			case "takes":
				fact.Takes = append(fact.Takes, idx)
			case "borrows":
				fact.Borrows = append(fact.Borrows, idx)
			case "returns-alias":
				fact.AliasReturn = idx
			}
		case "returns-pooled":
			if len(fields) != 1 {
				bad("returns-pooled takes no arguments")
				continue
			}
			found = true
			fact.ReturnsPooled = true
		default:
			bad("unknown verb " + fields[0])
		}
	}
	if !found {
		return nil, false
	}
	sort.Ints(fact.Takes)
	sort.Ints(fact.Borrows)
	return fact, true
}

// paramIndex maps parameter names to their flattened index.
func paramIndex(params *ast.FieldList) map[string]int {
	out := make(map[string]int)
	if params == nil {
		return out
	}
	i := 0
	for _, field := range params.List {
		if len(field.Names) == 0 {
			i++
			continue
		}
		for _, name := range field.Names {
			out[name.Name] = i
			i++
		}
	}
	return out
}

// finalTypeName returns the last identifier of a type expression.
func finalTypeName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.StarExpr:
		return finalTypeName(t.X)
	case *ast.SelectorExpr:
		return t.Sel.Name
	case *ast.Ident:
		return t.Name
	}
	return ""
}

// ---- per-function dataflow ----

// funcAnalysis is the per-function context: the buffer registry, the frame
// parameters whose payloads are borrowed, and report dedup.
type funcAnalysis struct {
	a           *analyzer
	bufs        map[token.Pos]*bufInfo
	frameParams map[types.Object]token.Pos
	reported    map[string]bool
}

func (a *analyzer) analyzeFunc(ftyp *ast.FuncType, body *ast.BlockStmt, obj types.Object) {
	fa := &funcAnalysis{
		a:           a,
		bufs:        make(map[token.Pos]*bufInfo),
		frameParams: make(map[types.Object]token.Pos),
		reported:    make(map[string]bool),
	}
	entry := fa.entryState(ftyp, obj)
	g := framework.BuildCFG(body)
	transfer := func(s state, n ast.Node) state {
		ns := s.clone()
		fa.apply(&ns, n, false)
		return ns
	}
	eq := func(a, b state) bool { return reflect.DeepEqual(a, b) }
	in := framework.Solve(g, entry, transfer, joinStates, eq)

	// Reporting pass: replay each reachable block once from its solved
	// in-state, emitting diagnostics this time.
	for _, blk := range g.Blocks {
		s, ok := in[blk]
		if !ok {
			continue
		}
		s = s.clone()
		for _, n := range blk.Nodes {
			fa.apply(&s, n, true)
		}
	}
	// Leak check at the function's normal terminal.
	if exit, ok := in[g.Exit]; ok {
		ids := make([]token.Pos, 0, len(exit.bufs))
		for id := range exit.bufs {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			info := fa.bufs[id]
			if info != nil && info.owned && exit.bufs[id]&stOwned != 0 {
				fa.report(info.pos, "pooled buffer (%s) may leak: a path reaches a terminal without bufpool.Put or an ownership transfer", info.desc)
			}
		}
	}
}

// entryState seeds the dataflow with the function's parameter contracts:
// takes-annotated parameters arrive owned, *Frame parameters carry a
// borrowed payload.
func (fa *funcAnalysis) entryState(ftyp *ast.FuncType, obj types.Object) state {
	s := newState()
	var fact OwnershipFact
	takes := map[int]bool{}
	if obj != nil && fa.a.pass.ImportObjectFact(obj, &fact) {
		for _, i := range fact.Takes {
			takes[i] = true
		}
	}
	if ftyp.Params == nil {
		return s
	}
	i := 0
	for _, field := range ftyp.Params.List {
		names := field.Names
		if len(names) == 0 {
			i++
			continue
		}
		for _, name := range names {
			pobj := fa.a.declObj(name)
			isFrame := finalTypeName(field.Type) == "Frame"
			switch {
			case takes[i] && isFrame:
				// Ownership of the frame's payload transfers in.
				if pobj != nil {
					id := name.Pos()
					fa.bufs[id] = &bufInfo{pos: id, desc: "payload of parameter " + name.Name, owned: true}
					fa.frameParams[pobj] = id
					s.bufs[id] = stOwned
				}
			case takes[i]:
				if pobj != nil {
					id := name.Pos()
					fa.bufs[id] = &bufInfo{pos: id, desc: "parameter " + name.Name, owned: true}
					s.vars[pobj] = []token.Pos{id}
					s.bufs[id] = stOwned
				}
			case isFrame:
				if pobj != nil {
					id := name.Pos()
					fa.bufs[id] = &bufInfo{pos: id, desc: "payload of frame " + name.Name, borrowed: true}
					fa.frameParams[pobj] = id
					s.bufs[id] = stBorrowed
				}
			}
			i++
		}
	}
	return s
}

// report emits a deduplicated diagnostic (the reporting pass replays the
// transfer function, so the same defect could otherwise fire per path).
func (fa *funcAnalysis) report(pos token.Pos, format string, args ...any) {
	key := fmt.Sprintf("%d:%s", pos, fmt.Sprintf(format, args...))
	if fa.reported[key] {
		return
	}
	fa.reported[key] = true
	fa.a.pass.Reportf(pos, format, args...)
}

// apply is the combined transfer function and (when emit) checker for one
// CFG node.
func (fa *funcAnalysis) apply(s *state, n ast.Node, emit bool) {
	switch x := n.(type) {
	case *ast.AssignStmt:
		fa.assign(s, x, emit)
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var r ast.Expr
					if i < len(vs.Values) {
						r = vs.Values[i]
					}
					fa.assignOne(s, name, r, true, emit)
				}
			}
		}
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			ids := fa.bufsOf(s, r)
			if ids == nil {
				fa.walk(s, r, emit)
				continue
			}
			// Returning a buffer transfers ownership to the caller.
			fa.setStatus(s, ids, stTransferred)
		}
	case *ast.DeferStmt:
		// Argument evaluation only; the call itself sits in the defers
		// block of the CFG.
		for _, arg := range x.Call.Args {
			if fa.bufsOf(s, arg) == nil {
				fa.walk(s, arg, emit)
			}
		}
	case ast.Expr:
		fa.walk(s, x, emit)
	case ast.Stmt:
		fa.walk(s, x, emit)
	}
}

// walk applies call/closure/use effects to every expression under n.
func (fa *funcAnalysis) walk(s *state, n ast.Node, emit bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.CallExpr:
			fa.call(s, x, emit)
			return false
		case *ast.FuncLit:
			fa.closure(s, x, emit)
			return false
		case *ast.Ident:
			fa.useCheck(s, x, emit)
		}
		return true
	})
}

// useCheck flags reads of buffers that are no longer this function's to
// touch.
func (fa *funcAnalysis) useCheck(s *state, id *ast.Ident, emit bool) {
	if !emit {
		return
	}
	obj := fa.identObj(id)
	if obj == nil {
		return
	}
	ids, ok := s.vars[obj]
	if !ok {
		return
	}
	for _, b := range ids {
		st := s.bufs[b]
		if st&stRecycled != 0 {
			fa.report(id.Pos(), "use of pooled buffer %s after recycle (bufpool.Put already ran on this path)", id.Name)
		} else if st&stTransferred != 0 {
			fa.report(id.Pos(), "use of pooled buffer %s after its ownership was transferred", id.Name)
		}
	}
}

func (fa *funcAnalysis) identObj(id *ast.Ident) types.Object {
	info := fa.a.pass.TypesInfo
	if info == nil {
		return nil
	}
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// bufsOf resolves an expression to the abstract buffers it may denote:
// tracked locals, slices/parens of them, and frame payload selectors.
func (fa *funcAnalysis) bufsOf(s *state, e ast.Expr) []token.Pos {
	switch x := e.(type) {
	case *ast.Ident:
		if obj := fa.identObj(x); obj != nil {
			if ids, ok := s.vars[obj]; ok {
				return ids
			}
		}
	case *ast.SelectorExpr:
		if x.Sel.Name == "Payload" {
			if base, ok := x.X.(*ast.Ident); ok {
				if obj := fa.identObj(base); obj != nil {
					if id, ok := fa.frameParams[obj]; ok {
						return []token.Pos{id}
					}
				}
			}
		}
	case *ast.SliceExpr:
		return fa.bufsOf(s, x.X)
	case *ast.ParenExpr:
		return fa.bufsOf(s, x.X)
	}
	return nil
}

// deepBufs finds every tracked buffer anywhere under e (inside composite
// literals, unary &, call arguments), for escape analysis.
func (fa *funcAnalysis) deepBufs(s *state, e ast.Expr) []token.Pos {
	var out []token.Pos
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // closures handled by closure()
		}
		if x, ok := n.(ast.Expr); ok {
			if ids := fa.bufsOf(s, x); len(ids) > 0 {
				out = append(out, ids...)
				return false
			}
		}
		return true
	})
	return unionPos(out, nil)
}

// setStatus strong-updates single-buffer sets and weak-updates may-alias
// sets (strong updates on a may-alias would erase the other alias's path).
func (fa *funcAnalysis) setStatus(s *state, ids []token.Pos, st status) {
	if len(ids) == 1 {
		s.bufs[ids[0]] = st
		return
	}
	for _, id := range ids {
		s.bufs[id] |= st
	}
}

// call classifies one call expression and applies its ownership effects.
func (fa *funcAnalysis) call(s *state, call *ast.CallExpr, emit bool) {
	// Effects on the receiver expression (uses inside c.dev.Send's c.dev).
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		fa.walk(s, sel.X, emit)
	}
	obj := fa.calleeObj(call)

	if isBufpool(obj, "Put") {
		for _, arg := range call.Args {
			ids := fa.bufsOf(s, arg)
			if ids == nil {
				fa.walk(s, arg, emit)
				continue
			}
			if emit {
				for _, id := range ids {
					info, st := fa.bufs[id], s.bufs[id]
					switch {
					case info != nil && info.borrowed:
						fa.report(call.Pos(), "bufpool.Put of borrowed frame payload (%s): receivers do not own delivered payloads", info.desc)
					case st&stRecycled != 0:
						fa.report(call.Pos(), "double recycle: bufpool.Put may already have run for this buffer on this path")
					case st&stTransferred != 0:
						fa.report(call.Pos(), "bufpool.Put of a buffer whose ownership was already transferred")
					}
				}
			}
			fa.setStatus(s, ids, stRecycled)
		}
		return
	}

	var fact OwnershipFact
	haveFact := obj != nil && fa.a.pass.ImportObjectFact(obj, &fact)
	takes := map[int]bool{}
	if haveFact {
		for _, i := range fact.Takes {
			takes[i] = true
		}
	}
	for i, arg := range call.Args {
		if takes[i] {
			ids := fa.deepBufs(s, arg)
			if len(ids) == 0 {
				fa.walk(s, arg, emit)
				continue
			}
			if emit {
				for _, id := range ids {
					info, st := fa.bufs[id], s.bufs[id]
					switch {
					case info != nil && info.borrowed:
						fa.report(arg.Pos(), "ownership of borrowed frame payload (%s) passed to %s", info.desc, calleeName(call))
					case st&stRecycled != 0:
						fa.report(arg.Pos(), "use of pooled buffer after recycle (bufpool.Put already ran on this path)")
					case st&stTransferred != 0:
						fa.report(arg.Pos(), "ownership transferred twice: %s takes a buffer someone else already owns", calleeName(call))
					}
				}
			}
			fa.setStatus(s, ids, stTransferred)
			continue
		}
		// Borrow by default: the callee may read but not keep the buffer.
		fa.walk(s, arg, emit)
	}
}

// pooledSource reports whether the call produces a pooled buffer the
// caller owns (bufpool.Get or a returns-pooled contract), registering the
// abstract buffer.
func (fa *funcAnalysis) pooledSource(call *ast.CallExpr) (token.Pos, bool) {
	obj := fa.calleeObj(call)
	var fact OwnershipFact
	switch {
	case isBufpool(obj, "Get"):
	case obj != nil && fa.a.pass.ImportObjectFact(obj, &fact) && fact.ReturnsPooled:
	default:
		return 0, false
	}
	id := call.Pos()
	if fa.bufs[id] == nil {
		fa.bufs[id] = &bufInfo{pos: id, desc: "from " + calleeName(call), owned: true}
	}
	return id, true
}

// aliasReturn reports the buffers the call's result aliases, per a
// returns-alias contract (MarshalInto's result is its argument).
func (fa *funcAnalysis) aliasReturn(s *state, call *ast.CallExpr) ([]token.Pos, bool) {
	obj := fa.calleeObj(call)
	var fact OwnershipFact
	if obj == nil || !fa.a.pass.ImportObjectFact(obj, &fact) || fact.AliasReturn < 0 {
		return nil, false
	}
	if fact.AliasReturn >= len(call.Args) {
		return nil, false
	}
	ids := fa.bufsOf(s, call.Args[fact.AliasReturn])
	return ids, len(ids) > 0
}

// assign handles the ownership flow of one assignment statement.
func (fa *funcAnalysis) assign(s *state, as *ast.AssignStmt, emit bool) {
	// Tuple form: raw, err := pkt.MarshalInto(buf)
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		if call, ok := as.Rhs[0].(*ast.CallExpr); ok {
			fa.call(s, call, emit)
			var ids []token.Pos
			if id, ok := fa.pooledSource(call); ok {
				ids = []token.Pos{id}
				s.bufs[id] = stOwned
			} else if al, ok := fa.aliasReturn(s, call); ok {
				ids = al
			}
			fa.assignTarget(s, as.Lhs[0], as.Rhs[0], ids, emit)
			for _, l := range as.Lhs[1:] {
				fa.assignTarget(s, l, nil, nil, emit)
			}
			return
		}
		fa.walk(s, as.Rhs[0], emit)
		for _, l := range as.Lhs {
			fa.assignTarget(s, l, nil, nil, emit)
		}
		return
	}
	if len(as.Lhs) != len(as.Rhs) {
		for _, r := range as.Rhs {
			fa.walk(s, r, emit)
		}
		return
	}
	for i, r := range as.Rhs {
		fa.assignOne(s, as.Lhs[i], r, false, emit)
	}
}

// assignOne handles LHS <- RHS for one pair (decl selects ValueSpec
// semantics: a nil RHS just clears the binding).
func (fa *funcAnalysis) assignOne(s *state, l ast.Expr, r ast.Expr, decl bool, emit bool) {
	if r == nil {
		fa.assignTarget(s, l, nil, nil, emit)
		return
	}
	ids := fa.bufsOf(s, r)
	if ids == nil {
		if call, ok := r.(*ast.CallExpr); ok {
			fa.call(s, call, emit)
			if id, ok := fa.pooledSource(call); ok {
				ids = []token.Pos{id}
				s.bufs[id] = stOwned
			} else if al, ok := fa.aliasReturn(s, call); ok {
				ids = al
			}
		} else {
			fa.walk(s, r, emit)
		}
	}
	fa.assignTarget(s, l, r, ids, emit)
}

// assignTarget binds buffers to a local, or treats a store through a
// selector/index/deref as an escape: the aggregate now holds the buffer.
func (fa *funcAnalysis) assignTarget(s *state, l ast.Expr, r ast.Expr, ids []token.Pos, emit bool) {
	if id, ok := l.(*ast.Ident); ok {
		if id.Name == "_" {
			return
		}
		obj := fa.identObj(id)
		if obj == nil {
			return
		}
		if len(ids) > 0 {
			s.vars[obj] = unionPos(ids, nil)
		} else {
			delete(s.vars, obj)
		}
		return
	}
	// Store outside the frame (field, element, global): every tracked
	// buffer in the RHS escapes.
	escape := ids
	if escape == nil && r != nil {
		escape = fa.deepBufs(s, r)
	}
	if len(escape) == 0 {
		return
	}
	if emit {
		for _, id := range escape {
			if info := fa.bufs[id]; info != nil && info.borrowed {
				fa.report(r.Pos(), "borrowed frame payload (%s) retained past synchronous delivery: copy it (bufpool.Get + copy) before storing", info.desc)
			}
		}
	}
	fa.setStatus(s, escape, stTransferred)
}

// closure treats a function literal appearing in an expression: any
// tracked buffer it captures may outlive the current path, so ownership
// is considered transferred — and capturing a borrowed payload is
// retention by definition (the closure runs after delivery returns).
func (fa *funcAnalysis) closure(s *state, lit *ast.FuncLit, emit bool) {
	var captured []token.Pos
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.Ident:
			if obj := fa.identObj(x); obj != nil {
				if ids, ok := s.vars[obj]; ok {
					captured = append(captured, ids...)
				}
			}
		case *ast.SelectorExpr:
			if ids := fa.bufsOf(s, x); len(ids) > 0 {
				captured = append(captured, ids...)
				return false
			}
		}
		return true
	})
	captured = unionPos(captured, nil)
	if len(captured) == 0 {
		return
	}
	if emit {
		for _, id := range captured {
			if info := fa.bufs[id]; info != nil && info.borrowed {
				fa.report(lit.Pos(), "borrowed frame payload (%s) captured by a closure: it escapes the synchronous delivery chain", info.desc)
			}
		}
	}
	fa.setStatus(s, captured, stTransferred)
}

// calleeObj resolves the called function/field object, best effort.
func (fa *funcAnalysis) calleeObj(call *ast.CallExpr) types.Object {
	info := fa.a.pass.TypesInfo
	if info == nil {
		return nil
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			return sel.Obj()
		}
		return info.Uses[fun.Sel]
	}
	return nil
}

// calleeName renders the callee for diagnostics.
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok {
			return x.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "callee"
}

// isBufpool reports whether obj is the named function of a package whose
// final path segment is "bufpool" — the real pool or a fixture stand-in.
func isBufpool(obj types.Object, name string) bool {
	if obj == nil || obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == "bufpool" || strings.HasSuffix(path, "/bufpool")
}
