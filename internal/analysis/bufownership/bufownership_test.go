package bufownership_test

import (
	"testing"

	"mosquitonet/internal/analysis/bufownership"
	"mosquitonet/internal/analysis/framework/analysistest"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "../testdata/src/bufownership", bufownership.Analyzer)
}
