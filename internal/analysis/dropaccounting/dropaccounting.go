// Package dropaccounting enforces packet conservation: code that discards
// a packet, frame, or datagram must account for the discard.
//
// The simulator's telemetry proves encap = decap + drops only because
// every path that gives up on a packet touches a drop counter, a stats
// field with a drop-ish name, or records a trace/packet-log event. This
// analyzer finds the paths that silently leak: inside any function that
// takes a *ip.Packet, *link.Frame, or transport.Datagram, an `if` block
// that ends by returning nothing-but-zero-values (the discard idiom) and
// contains no accounting touch is flagged.
//
// Accounting is recognized as any of:
//   - a call whose selector chain mentions "drop" (d.ctr.dropMTU.Inc()),
//   - an increment/compound assignment to a field whose name says what
//     happened (DropX, Expired, Denied, Exhausted, NoSocket, Bad...),
//   - a call to a Record method (packet log or tracer) — discarding after
//     writing the event into the timeline is accounted by definition,
//   - a call whose name says the packet went onward instead (Send, SendTo,
//     reply, relay, transmit, broadcastRaw, ...) — a path that forwards or
//     answers did not drop.
//
// Paths that return a real value or a non-nil error hand the packet (or
// the responsibility for it) back to the caller and are not discards.
// False positives — a fragment parked in a reassembly buffer is retained,
// not dropped — take a `//lint:allow dropaccounting <reason>` directive,
// which doubles as documentation of why conservation still holds.
package dropaccounting

import (
	"go/ast"
	"go/token"
	"regexp"

	"mosquitonet/internal/analysis/framework"
)

// Analyzer implements the check.
var Analyzer = &framework.Analyzer{
	Name: "dropaccounting",
	Doc:  "packet/frame/datagram discard paths must touch a drop counter, a drop-ish stats field, or a Record call",
	Run:  run,
}

// packetTypeNames are the final type names that mark a parameter as
// packet-carrying, matched syntactically so the analyzer needs no
// cross-package type information.
var packetTypeNames = map[string]bool{
	"Packet":   true,
	"Frame":    true,
	"Datagram": true,
}

// accountingField matches stats-field names whose increment accounts for a
// discarded packet.
var accountingField = regexp.MustCompile(`(?i)drop|expired|denied|discard|filtered|bad|refused|rejected|lost|exhaust|nosocket|noconn|nak|stale|unreach`)

// forwardCall matches function and method names that hand the packet
// onward — transmitting, answering, or delivering it — so the path is not
// a discard at all.
var forwardCall = regexp.MustCompile(`(?i)^(send|reply|forward|relay|deliver|transmit|output|emit|broadcast|respond)`)

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var ftyp *ast.FuncType
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				ftyp, body = fn.Type, fn.Body
			case *ast.FuncLit:
				ftyp, body = fn.Type, fn.Body
			default:
				return true
			}
			if body == nil || !takesPacket(ftyp) {
				return true
			}
			checkBody(pass, ftyp, body)
			return true
		})
	}
	return nil
}

// takesPacket reports whether the function's parameters include a packet,
// frame, or datagram (possibly behind a pointer).
func takesPacket(ftyp *ast.FuncType) bool {
	if ftyp.Params == nil {
		return false
	}
	for _, field := range ftyp.Params.List {
		if packetTypeNames[finalTypeName(field.Type)] {
			return true
		}
	}
	return false
}

// finalTypeName returns the last identifier of a type expression:
// "*ip.Packet" -> "Packet", "Frame" -> "Frame".
func finalTypeName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.StarExpr:
		return finalTypeName(t.X)
	case *ast.SelectorExpr:
		return t.Sel.Name
	case *ast.Ident:
		return t.Name
	}
	return ""
}

func checkBody(pass *framework.Pass, ftyp *ast.FuncType, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		ifStmt, ok := n.(*ast.IfStmt)
		if !ok || len(ifStmt.Body.List) == 0 {
			return true
		}
		ret, ok := ifStmt.Body.List[len(ifStmt.Body.List)-1].(*ast.ReturnStmt)
		if !ok || !isDiscardReturn(ftyp, ret) {
			return true
		}
		if blockAccounts(ifStmt.Body) {
			return true
		}
		pass.Reportf(ret.Pos(), "packet discarded without accounting: this path returns without touching a drop counter, stats field, or Record call")
		return true
	})
}

// isDiscardReturn reports whether ret ends the path without handing the
// packet or an error onward: a bare return from a func with no results, or
// a return of all-zero values.
func isDiscardReturn(ftyp *ast.FuncType, ret *ast.ReturnStmt) bool {
	if len(ret.Results) == 0 {
		// Bare return discards only in a function without results; with
		// named results the values flowing out are unknowable here.
		return ftyp.Results == nil || len(ftyp.Results.List) == 0
	}
	for _, r := range ret.Results {
		if !isZeroExpr(r) {
			return false
		}
	}
	return true
}

// isZeroExpr recognizes the zero-value spellings used in discard returns.
func isZeroExpr(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name == "nil" || v.Name == "false"
	case *ast.BasicLit:
		return (v.Kind == token.INT && v.Value == "0") || (v.Kind == token.STRING && v.Value == `""`)
	case *ast.CompositeLit:
		return len(v.Elts) == 0
	}
	return false
}

// blockAccounts reports whether the block touches drop accounting.
func blockAccounts(block *ast.BlockStmt) bool {
	found := false
	ast.Inspect(block, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if callAccounts(n) {
				found = true
				return false
			}
		case *ast.IncDecStmt:
			if n.Tok == token.INC && exprMentionsAccounting(n.X) {
				found = true
				return false
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN {
				for _, lhs := range n.Lhs {
					if exprMentionsAccounting(lhs) {
						found = true
						return false
					}
				}
			}
		}
		return true
	})
	return found
}

// callAccounts reports whether a call is an accounting touch: a Record
// call, a forwarding call (the packet went onward, not down), or any
// method call whose selector chain mentions a drop-ish name
// (d.ctr.dropMTU.Inc(), stats.CountDrop(...)).
func callAccounts(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if fun.Sel.Name == "Record" || forwardCall.MatchString(fun.Sel.Name) {
			return true
		}
		return exprMentionsAccounting(fun)
	case *ast.Ident:
		return forwardCall.MatchString(fun.Name)
	}
	return false
}

// exprMentionsAccounting walks a selector chain looking for a component
// whose name reads as drop accounting.
func exprMentionsAccounting(e ast.Expr) bool {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return accountingField.MatchString(v.Name)
		case *ast.SelectorExpr:
			if accountingField.MatchString(v.Sel.Name) {
				return true
			}
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return false
		}
	}
}
