package dropaccounting_test

import (
	"testing"

	"mosquitonet/internal/analysis/dropaccounting"
	"mosquitonet/internal/analysis/framework/analysistest"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "../testdata/src/dropaccounting", dropaccounting.Analyzer)
}
