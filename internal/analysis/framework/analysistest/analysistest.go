// Package analysistest runs a framework.Analyzer over a fixture package
// and checks its diagnostics against expectations embedded in the fixture,
// mirroring golang.org/x/tools/go/analysis/analysistest.
//
// An expectation is a comment of the form
//
//	// want "substring or (regexp)"
//
// placed on the line the diagnostic is reported on. Every diagnostic must
// match a want on its line and every want must be matched by exactly one
// diagnostic. The fixture may also carry //lint:allow directives; suppressed
// diagnostics must NOT have a want — fixtures thereby double as tests of
// the escape hatch.
package analysistest

import (
	"go/ast"
	"regexp"
	"strings"
	"testing"

	"mosquitonet/internal/analysis/framework"
)

var wantRE = regexp.MustCompile(`// want "((?:[^"\\]|\\.)*)"`)

type want struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads the fixture package in dir and checks analyzer a against the
// // want expectations in its files.
func Run(t *testing.T, dir string, a *framework.Analyzer) {
	t.Helper()
	loader, err := framework.NewLoader(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatalf("analysistest: loading %s: %v", dir, err)
	}
	if len(pkg.Files) == 0 {
		t.Fatalf("analysistest: no Go files in %s", dir)
	}
	diags, err := pkg.Run(a)
	if err != nil {
		t.Fatalf("analysistest: running %s: %v", a.Name, err)
	}

	wants := collectWants(t, pkg)
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		if w := matchWant(wants, pos.Filename, pos.Line, d.Message); w == nil {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

func collectWants(t *testing.T, pkg *framework.Package) []*want {
	t.Helper()
	var wants []*want
	files := append(append([]*ast.File(nil), pkg.Files...), pkg.TestFiles...)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					if strings.Contains(c.Text, "// want ") {
						t.Errorf("malformed want comment: %s", c.Text)
					}
					continue
				}
				pat, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("bad want pattern %q: %v", m[1], err)
				}
				pos := pkg.Fset.Position(c.Pos())
				wants = append(wants, &want{file: pos.Filename, line: pos.Line, pattern: pat})
			}
		}
	}
	return wants
}

func matchWant(wants []*want, file string, line int, msg string) *want {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.pattern.MatchString(msg) {
			w.matched = true
			return w
		}
	}
	return nil
}
