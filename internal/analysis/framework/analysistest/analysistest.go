// Package analysistest runs a framework.Analyzer over a fixture package
// and checks its diagnostics against expectations embedded in the fixture,
// mirroring golang.org/x/tools/go/analysis/analysistest.
//
// An expectation is a comment of the form
//
//	// want "substring or (regexp)"
//
// placed on the line the diagnostic is reported on. Every diagnostic must
// match a want on its line and every want must be matched by exactly one
// diagnostic. The fixture may also carry //lint:allow directives; suppressed
// diagnostics must NOT have a want — fixtures thereby double as tests of
// the escape hatch.
//
// Fact-exporting analyzers can additionally assert on the facts themselves:
//
//	// want fact:"regexp"
//
// on a declaration line requires that an object declared on that line carry
// a fact whose "Name: String()" rendering matches the pattern.
package analysistest

import (
	"fmt"
	"go/ast"
	"regexp"
	"strings"
	"testing"

	"mosquitonet/internal/analysis/framework"
)

var (
	wantRE = regexp.MustCompile(`// want "((?:[^"\\]|\\.)*)"`)
	factRE = regexp.MustCompile(`// want fact:"((?:[^"\\]|\\.)*)"`)
)

type want struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads the fixture package in dir and checks analyzer a against the
// // want expectations in its files.
func Run(t *testing.T, dir string, a *framework.Analyzer) {
	t.Helper()
	loader, err := framework.NewLoader(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatalf("analysistest: loading %s: %v", dir, err)
	}
	if len(pkg.Files) == 0 {
		t.Fatalf("analysistest: no Go files in %s", dir)
	}
	diags, err := pkg.Run(a)
	if err != nil {
		t.Fatalf("analysistest: running %s: %v", a.Name, err)
	}

	wants, factWants := collectWants(t, pkg)
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		if w := matchWant(wants, pos.Filename, pos.Line, d.Message); w == nil {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
	checkFactWants(t, loader, pkg, a, factWants)
}

// checkFactWants matches "// want fact:" assertions against the facts the
// analyzer exported: each assertion's line must declare an object whose
// "Name: fact" rendering matches the pattern.
func checkFactWants(t *testing.T, loader *framework.Loader, pkg *framework.Package, a *framework.Analyzer, factWants []*want) {
	t.Helper()
	if len(factWants) == 0 {
		return
	}
	type rendered struct {
		file string
		line int
		text string
	}
	var facts []rendered
	for _, of := range loader.ObjectFacts(a.Name) {
		pos := pkg.Fset.Position(of.Obj.Pos())
		facts = append(facts, rendered{
			file: pos.Filename,
			line: pos.Line,
			text: fmt.Sprintf("%s: %v", of.Obj.Name(), of.Fact),
		})
	}
	for _, w := range factWants {
		for _, f := range facts {
			if f.file == w.file && f.line == w.line && w.pattern.MatchString(f.text) {
				w.matched = true
				break
			}
		}
		if !w.matched {
			var onLine []string
			for _, f := range facts {
				if f.file == w.file && f.line == w.line {
					onLine = append(onLine, f.text)
				}
			}
			t.Errorf("%s:%d: expected fact matching %q, got none (facts on line: %v)",
				w.file, w.line, w.pattern, onLine)
		}
	}
}

func collectWants(t *testing.T, pkg *framework.Package) (wants, factWants []*want) {
	t.Helper()
	files := append(append([]*ast.File(nil), pkg.Files...), pkg.TestFiles...)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				compile := func(pat string) *regexp.Regexp {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("bad want pattern %q: %v", pat, err)
					}
					return re
				}
				pos := pkg.Fset.Position(c.Pos())
				if m := factRE.FindStringSubmatch(c.Text); m != nil {
					factWants = append(factWants, &want{file: pos.Filename, line: pos.Line, pattern: compile(m[1])})
					continue
				}
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					if strings.Contains(c.Text, "// want ") {
						t.Errorf("malformed want comment: %s", c.Text)
					}
					continue
				}
				wants = append(wants, &want{file: pos.Filename, line: pos.Line, pattern: compile(m[1])})
			}
		}
	}
	return wants, factWants
}

func matchWant(wants []*want, file string, line int, msg string) *want {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.pattern.MatchString(msg) {
			w.matched = true
			return w
		}
	}
	return nil
}
