package framework

// This file is the dataflow half of the framework: an intraprocedural
// control-flow graph over go/ast function bodies plus a generic forward
// fixpoint solver. It deliberately stays syntactic — blocks carry ast
// nodes, not SSA values — because the analyzers built on it (bufownership,
// verdictflow) need exactly the granularity the source shows the reviewer,
// and because the repository vendors nothing: like the rest of the
// framework this is stdlib-only.
//
// Shape
//
// A Block is a maximal straight-line sequence of nodes. Its Nodes slice
// holds statements in execution order, with two twists:
//
//   - Condition expressions (if/for conditions, switch tags, range
//     operands) appear as bare ast.Expr nodes in the block that evaluates
//     them, so transfer functions see every evaluation.
//   - A defer statement appears where it executes its *arguments*
//     (ast.DeferStmt), while the deferred call itself (ast.CallExpr)
//     appears in a dedicated "defers" block that every return flows
//     through before Exit — Go's actual execution order, which matters to
//     an ownership analysis (`defer bufpool.Put(buf)` recycles at exit,
//     not at the defer site).
//
// Panics (`panic(...)` and selector calls whose terminal name is Fatal/
// Fatalf/Exit) end their block with no successors: abnormal exits are not
// terminals for leak purposes.
//
// The builder handles if/else, for (including range), switch (expression
// and type, with fallthrough), select, labeled statements, break/continue
// (labeled and bare), and goto. Blocks are numbered in creation order so
// every traversal below is deterministic.

import (
	"fmt"
	"go/ast"
	"sort"
	"strings"
)

// Block is one basic block of a CFG.
type Block struct {
	Index int
	// Kind describes why the block exists ("entry", "if.then", "for.body",
	// "defers", ...) for tests and debug output.
	Kind  string
	Nodes []ast.Node
	Succs []*Block
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	Entry *Block
	// Exit is the single synthetic terminal every normal return reaches
	// (after the defers block, when the function defers anything).
	Exit   *Block
	Blocks []*Block
}

// String renders the graph for tests: one line per block with its kind
// and successor indices.
func (g *CFG) String() string {
	var b strings.Builder
	for _, blk := range g.Blocks {
		succs := make([]string, len(blk.Succs))
		for i, s := range blk.Succs {
			succs[i] = fmt.Sprint(s.Index)
		}
		fmt.Fprintf(&b, "b%d %s [%d nodes] -> %s\n", blk.Index, blk.Kind, len(blk.Nodes), strings.Join(succs, ","))
	}
	return b.String()
}

// cfgBuilder threads the under-construction graph and the targets of
// branch statements through the recursive statement walk.
type cfgBuilder struct {
	g   *CFG
	cur *Block // nil while the walk is in dead code

	// breakTo/continueTo are the innermost loop/switch targets; the label
	// maps extend them for labeled branches.
	breakTo      *Block
	continueTo   *Block
	labelBreak   map[string]*Block
	labelCont    map[string]*Block
	gotoTargets  map[string]*Block
	pendingGotos map[string][]*Block

	defers []*ast.DeferStmt
}

// BuildCFG constructs the control-flow graph of body. A nil body (a
// declaration without one) yields a graph with only entry and exit.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		g:            &CFG{},
		labelBreak:   make(map[string]*Block),
		labelCont:    make(map[string]*Block),
		gotoTargets:  make(map[string]*Block),
		pendingGotos: make(map[string][]*Block),
	}
	entry := b.newBlock("entry")
	b.g.Entry = entry
	b.cur = entry
	if body != nil {
		b.stmtList(body.List)
	}
	// The defers block (when any defer exists) interposes between every
	// normal exit and Exit, carrying the deferred calls in reverse
	// registration order — the order Go runs them.
	exit := b.newBlock("exit")
	b.g.Exit = exit
	var pre *Block // the block terminal paths should edge to
	if len(b.defers) > 0 {
		d := b.newBlock("defers")
		for i := len(b.defers) - 1; i >= 0; i-- {
			d.Nodes = append(d.Nodes, b.defers[i].Call)
		}
		b.edge(d, exit)
		pre = d
	} else {
		pre = exit
	}
	// Fallthrough off the end of the body is an implicit return.
	if b.cur != nil {
		b.edge(b.cur, pre)
	}
	// Rewire return edges (collected against nil) now that pre exists.
	for _, blk := range b.g.Blocks {
		for i, s := range blk.Succs {
			if s == nil {
				blk.Succs[i] = pre
			}
		}
	}
	// Unresolved gotos (labels in dead code or malformed sources parsed
	// leniently): drop them rather than crash.
	for label, sources := range b.pendingGotos {
		if target, ok := b.gotoTargets[label]; ok {
			for _, s := range sources {
				b.edge(s, target)
			}
		}
	}
	return b.g
}

func (b *cfgBuilder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
}

// add appends a node to the current block, opening one if the walk is in
// dead code (so nodes after a return are still carried, just unreachable).
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock("unreachable")
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) { b.stmtLabeled(s, "") }

// stmtLabeled lowers one statement; label is non-empty when s is the body
// of a LabeledStmt, so loops and switches can register labeled
// break/continue targets.
func (b *cfgBuilder) stmtLabeled(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		condBlock := b.cur
		after := b.newBlock("if.after")
		then := b.newBlock("if.then")
		b.edge(condBlock, then)
		b.cur = then
		b.stmtList(s.Body.List)
		if b.cur != nil {
			b.edge(b.cur, after)
		}
		if s.Else != nil {
			els := b.newBlock("if.else")
			b.edge(condBlock, els)
			b.cur = els
			b.stmt(s.Else)
			if b.cur != nil {
				b.edge(b.cur, after)
			}
		} else {
			b.edge(condBlock, after)
		}
		b.cur = after

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock("for.head")
		if b.cur != nil {
			b.edge(b.cur, head)
		}
		after := b.newBlock("for.after")
		var post *Block
		if s.Post != nil {
			post = b.newBlock("for.post")
			post.Nodes = append(post.Nodes, s.Post)
			b.edge(post, head)
		}
		contTo := head
		if post != nil {
			contTo = post
		}
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
			b.edge(head, after)
		}
		body := b.newBlock("for.body")
		b.edge(head, body)
		b.withLoop(after, contTo, label, func() {
			b.cur = body
			b.stmtList(s.Body.List)
		})
		if b.cur != nil {
			b.edge(b.cur, contTo)
		}
		// A `for {}` with no cond and no break never reaches after; the
		// block simply stays unreachable.
		b.cur = after

	case *ast.RangeStmt:
		head := b.newBlock("range.head")
		if b.cur != nil {
			b.edge(b.cur, head)
		}
		head.Nodes = append(head.Nodes, s.X)
		after := b.newBlock("range.after")
		b.edge(head, after) // empty ranges skip the body
		body := b.newBlock("range.body")
		b.edge(head, body)
		b.withLoop(after, head, label, func() {
			b.cur = body
			// The per-iteration key/value bindings belong to the body.
			if s.Key != nil || s.Value != nil {
				b.add(s)
			}
			b.stmtList(s.Body.List)
		})
		if b.cur != nil {
			b.edge(b.cur, head)
		}
		b.cur = after

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchBody(s.Body, label)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.switchBody(s.Body, label)

	case *ast.SelectStmt:
		head := b.cur
		if head == nil {
			head = b.newBlock("select.head")
			b.cur = head
		}
		after := b.newBlock("select.after")
		prevBreak := b.breakTo
		b.breakTo = after
		any := false
		for _, cl := range s.Body.List {
			comm := cl.(*ast.CommClause)
			cb := b.newBlock("select.case")
			b.edge(head, cb)
			b.cur = cb
			if comm.Comm != nil {
				b.stmt(comm.Comm)
			}
			b.stmtList(comm.Body)
			if b.cur != nil {
				b.edge(b.cur, after)
				any = true
			}
		}
		b.breakTo = prevBreak
		if len(s.Body.List) == 0 {
			b.edge(head, after)
			any = true
		}
		if any {
			b.cur = after
		} else {
			b.cur = after // unreachable but keeps the walk alive
		}

	case *ast.LabeledStmt:
		// The label is simultaneously a goto target and — when the labeled
		// statement is a loop or switch — the name labeled break/continue
		// statements resolve against, which the recursive walk installs.
		target := b.newBlock("label." + s.Label.Name)
		if b.cur != nil {
			b.edge(b.cur, target)
		}
		b.cur = target
		b.gotoTargets[s.Label.Name] = target
		b.stmtLabeled(s.Stmt, s.Label.Name)

	case *ast.BranchStmt:
		b.add(s)
		switch s.Tok.String() {
		case "break":
			t := b.breakTo
			if s.Label != nil {
				t = b.labelBreak[s.Label.Name]
			}
			if t != nil && b.cur != nil {
				b.edge(b.cur, t)
			}
			b.cur = nil
		case "continue":
			t := b.continueTo
			if s.Label != nil {
				t = b.labelCont[s.Label.Name]
			}
			if t != nil && b.cur != nil {
				b.edge(b.cur, t)
			}
			b.cur = nil
		case "goto":
			if s.Label != nil && b.cur != nil {
				if t, ok := b.gotoTargets[s.Label.Name]; ok {
					b.edge(b.cur, t)
				} else {
					b.pendingGotos[s.Label.Name] = append(b.pendingGotos[s.Label.Name], b.cur)
				}
			}
			b.cur = nil
		case "fallthrough":
			// handled by switchBody's clause chaining; nothing here
		}

	case *ast.ReturnStmt:
		b.add(s)
		if b.cur != nil {
			// nil marks "edge to the (defers→)exit chain", patched once
			// the chain exists.
			b.cur.Succs = append(b.cur.Succs, nil)
		}
		b.cur = nil

	case *ast.DeferStmt:
		b.add(s)
		b.defers = append(b.defers, s)

	case *ast.ExprStmt:
		b.add(s)
		if isPanicky(s.X) {
			b.cur = nil // abnormal exit: no successors
		}

	case nil:
		// tolerated: lenient parses can produce nil statements

	default:
		// assignments, declarations, go statements, sends, incdec, empty:
		// plain straight-line nodes
		b.add(s)
	}
}

// switchBody lowers the clauses of a switch or type switch.
func (b *cfgBuilder) switchBody(body *ast.BlockStmt, label string) {
	head := b.cur
	if head == nil {
		head = b.newBlock("switch.head")
		b.cur = head
	}
	after := b.newBlock("switch.after")
	prevBreak := b.breakTo
	b.breakTo = after
	if label != "" {
		b.labelBreak[label] = after
		defer delete(b.labelBreak, label)
	}
	defer func() { b.breakTo = prevBreak }()

	clauses := make([]*ast.CaseClause, 0, len(body.List))
	for _, cl := range body.List {
		if cc, ok := cl.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		blocks[i] = b.newBlock("switch.case")
		b.edge(head, blocks[i])
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(head, after)
	}
	for i, cc := range clauses {
		b.cur = blocks[i]
		for _, e := range cc.List {
			b.add(e)
		}
		fallsThrough := false
		if n := len(cc.Body); n > 0 {
			if br, ok := cc.Body[n-1].(*ast.BranchStmt); ok && br.Tok.String() == "fallthrough" {
				fallsThrough = true
			}
		}
		b.stmtList(cc.Body)
		if fallsThrough && i+1 < len(blocks) {
			if b.cur != nil {
				b.edge(b.cur, blocks[i+1])
			}
			b.cur = nil
			continue
		}
		if b.cur != nil {
			b.edge(b.cur, after)
		}
	}
	b.cur = after
}

// withLoop runs fn with the loop's break/continue targets installed,
// registering them under the loop's label too.
func (b *cfgBuilder) withLoop(brk, cont *Block, label string, fn func()) {
	prevBreak, prevCont := b.breakTo, b.continueTo
	b.breakTo, b.continueTo = brk, cont
	if label != "" {
		b.labelBreak[label] = brk
		b.labelCont[label] = cont
	}
	fn()
	b.breakTo, b.continueTo = prevBreak, prevCont
	if label != "" {
		delete(b.labelBreak, label)
		delete(b.labelCont, label)
	}
}

// isPanicky reports whether a call expression statement never returns:
// panic(...) and terminal selector names that conventionally abort.
func isPanicky(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		switch fun.Sel.Name {
		case "Fatal", "Fatalf", "Exit", "Fatalln":
			return true
		}
	}
	return false
}

// Solve runs a forward dataflow fixpoint over g and returns each block's
// in-state. The analysis is defined by three functions:
//
//   - transfer applies one node's effect to a state (it must not mutate
//     its argument; return a new or shared value),
//   - join merges two states at a control-flow merge point,
//   - equal detects the fixpoint.
//
// entry is the state at function entry. Blocks never reached from Entry do
// not appear in the result. The worklist is processed in ascending block
// order, so iteration — and therefore any diagnostic order downstream —
// is deterministic.
func Solve[S any](g *CFG, entry S, transfer func(S, ast.Node) S, join func(S, S) S, equal func(S, S) bool) map[*Block]S {
	in := make(map[*Block]S, len(g.Blocks))
	in[g.Entry] = entry
	work := map[int]*Block{g.Entry.Index: g.Entry}
	for len(work) > 0 {
		// Lowest-index block first: deterministic and roughly topological.
		keys := make([]int, 0, len(work))
		for k := range work {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		blk := work[keys[0]]
		delete(work, keys[0])

		state := in[blk]
		for _, n := range blk.Nodes {
			state = transfer(state, n)
		}
		for _, succ := range blk.Succs {
			old, ok := in[succ]
			next := state
			if ok {
				next = join(old, state)
			}
			if !ok || !equal(old, next) {
				in[succ] = next
				work[succ.Index] = succ
			}
		}
	}
	return in
}
