package framework

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseFunc returns the body of the first function in src.
func parseFunc(t *testing.T, src string) *ast.BlockStmt {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			return fd.Body
		}
	}
	t.Fatal("no function in source")
	return nil
}

// reachesExit reports whether Exit is reachable from Entry.
func reachesExit(g *CFG) bool {
	seen := map[*Block]bool{}
	var walk func(*Block) bool
	walk = func(b *Block) bool {
		if b == g.Exit {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	return walk(g.Entry)
}

func TestCFGStraightLine(t *testing.T) {
	g := BuildCFG(parseFunc(t, `func f() { x := 1; _ = x }`))
	if len(g.Entry.Nodes) != 2 {
		t.Fatalf("entry nodes = %d, want 2\n%s", len(g.Entry.Nodes), g)
	}
	if len(g.Entry.Succs) != 1 || g.Entry.Succs[0] != g.Exit {
		t.Fatalf("entry should flow straight to exit\n%s", g)
	}
}

func TestCFGIfElseJoins(t *testing.T) {
	g := BuildCFG(parseFunc(t, `func f(b bool) int {
		if b {
			return 1
		}
		return 2
	}`))
	// The then-branch returns; the implicit else path reaches the second
	// return. Both return blocks must edge to Exit.
	intoExit := 0
	for _, blk := range g.Blocks {
		for _, s := range blk.Succs {
			if s == g.Exit {
				intoExit++
			}
		}
	}
	if intoExit != 2 {
		t.Fatalf("edges into exit = %d, want 2\n%s", intoExit, g)
	}
}

func TestCFGForLoopBackEdge(t *testing.T) {
	g := BuildCFG(parseFunc(t, `func f() {
		for i := 0; i < 3; i++ {
			_ = i
		}
	}`))
	var head *Block
	for _, blk := range g.Blocks {
		if blk.Kind == "for.head" {
			head = blk
		}
	}
	if head == nil {
		t.Fatalf("no for.head block\n%s", g)
	}
	// The post block must edge back to the head (the loop's back edge).
	back := false
	for _, blk := range g.Blocks {
		if blk.Kind == "for.post" {
			for _, s := range blk.Succs {
				if s == head {
					back = true
				}
			}
		}
	}
	if !back {
		t.Fatalf("no back edge from for.post to for.head\n%s", g)
	}
	if !reachesExit(g) {
		t.Fatalf("bounded loop must reach exit\n%s", g)
	}
}

func TestCFGInfiniteLoopNoExit(t *testing.T) {
	g := BuildCFG(parseFunc(t, `func f() { for { } }`))
	if reachesExit(g) {
		t.Fatalf("for{} without break must not reach exit\n%s", g)
	}
}

func TestCFGBreakReachesAfter(t *testing.T) {
	g := BuildCFG(parseFunc(t, `func f() {
		for {
			break
		}
		_ = 1
	}`))
	if !reachesExit(g) {
		t.Fatalf("break must make exit reachable\n%s", g)
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	g := BuildCFG(parseFunc(t, `func f() {
	outer:
		for {
			for {
				break outer
			}
		}
		_ = 1
	}`))
	if !reachesExit(g) {
		t.Fatalf("labeled break out of both loops must reach exit\n%s", g)
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	g := BuildCFG(parseFunc(t, `func f(x int) {
		switch x {
		case 1:
			fallthrough
		case 2:
			_ = x
		default:
			_ = x
		}
	}`))
	// Three case blocks; the first must edge into the second (fallthrough)
	// and not into switch.after.
	var cases []*Block
	for _, blk := range g.Blocks {
		if blk.Kind == "switch.case" {
			cases = append(cases, blk)
		}
	}
	if len(cases) != 3 {
		t.Fatalf("case blocks = %d, want 3\n%s", len(cases), g)
	}
	if len(cases[0].Succs) != 1 || cases[0].Succs[0] != cases[1] {
		t.Fatalf("fallthrough case must edge only into the next case\n%s", g)
	}
}

func TestCFGDefersRunBeforeExit(t *testing.T) {
	g := BuildCFG(parseFunc(t, `func f(b bool) {
		defer done()
		if b {
			return
		}
		other()
	}`))
	var defers *Block
	for _, blk := range g.Blocks {
		if blk.Kind == "defers" {
			defers = blk
		}
	}
	if defers == nil {
		t.Fatalf("no defers block\n%s", g)
	}
	if len(defers.Nodes) != 1 {
		t.Fatalf("defers nodes = %d, want 1 (the deferred call)", len(defers.Nodes))
	}
	if _, ok := defers.Nodes[0].(*ast.CallExpr); !ok {
		t.Fatalf("defers block node is %T, want *ast.CallExpr", defers.Nodes[0])
	}
	// Every edge into Exit must come from the defers block.
	for _, blk := range g.Blocks {
		for _, s := range blk.Succs {
			if s == g.Exit && blk != defers {
				t.Fatalf("b%d bypasses defers into exit\n%s", blk.Index, g)
			}
		}
	}
}

func TestCFGPanicIsNotATerminal(t *testing.T) {
	g := BuildCFG(parseFunc(t, `func f(b bool) {
		if b {
			panic("boom")
		}
	}`))
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok && isPanicky(es.X) {
				if len(blk.Succs) != 0 {
					t.Fatalf("panic block has successors\n%s", g)
				}
				return
			}
		}
	}
	t.Fatalf("panic statement not found in any block\n%s", g)
}

func TestCFGRangeLoop(t *testing.T) {
	g := BuildCFG(parseFunc(t, `func f(xs []int) {
		for _, x := range xs {
			_ = x
		}
	}`))
	var head *Block
	for _, blk := range g.Blocks {
		if blk.Kind == "range.head" {
			head = blk
		}
	}
	if head == nil || len(head.Succs) != 2 {
		t.Fatalf("range head must branch to after and body\n%s", g)
	}
	if !reachesExit(g) {
		t.Fatalf("range loop must reach exit\n%s", g)
	}
}

func TestCFGGoto(t *testing.T) {
	g := BuildCFG(parseFunc(t, `func f(b bool) {
		if b {
			goto out
		}
		work()
	out:
		done()
	}`))
	if !reachesExit(g) {
		t.Fatalf("goto forward must reach exit\n%s", g)
	}
	if !strings.Contains(g.String(), "label.out") {
		t.Fatalf("no label block\n%s", g)
	}
}

// TestSolveMustAccounted exercises the fixpoint solver with a small
// must-analysis: "has flag() been called on every path?" — the shape
// verdictflow uses.
func TestSolveMustAccounted(t *testing.T) {
	body := parseFunc(t, `func f(a, b bool) {
		if a {
			flag()
		} else {
			if b {
				flag()
			}
		}
		sink()
	}`)
	g := BuildCFG(body)
	transfer := func(s bool, n ast.Node) bool {
		found := s
		ast.Inspect(n, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "flag" {
					found = true
				}
			}
			return true
		})
		return found
	}
	join := func(a, b bool) bool { return a && b }
	eq := func(a, b bool) bool { return a == b }
	in := Solve(g, false, transfer, join, eq)
	// At exit, flag() was NOT called on the path a=false,b=false, so the
	// must-state is false.
	if got, ok := in[g.Exit]; !ok || got {
		t.Fatalf("exit must-state = %v (present=%v), want false", got, ok)
	}
}

// TestSolveLoopFixpoint pins termination and the may-join on a loop.
func TestSolveLoopFixpoint(t *testing.T) {
	body := parseFunc(t, `func f(n int) {
		for i := 0; i < n; i++ {
			mark()
		}
	}`)
	g := BuildCFG(body)
	transfer := func(s bool, n ast.Node) bool {
		found := s
		ast.Inspect(n, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "mark" {
					found = true
				}
			}
			return true
		})
		return found
	}
	join := func(a, b bool) bool { return a || b } // may-analysis
	eq := func(a, b bool) bool { return a == b }
	in := Solve(g, false, transfer, join, eq)
	if got := in[g.Exit]; !got {
		t.Fatalf("may-state at exit = false, want true (loop body may run)")
	}
}
