package framework

// Cross-package facts, mirroring golang.org/x/tools' analysis.Fact: an
// analyzer running on package P may attach typed facts to P's objects
// (functions, variables, struct fields); when the same analyzer later runs
// on a package importing P, it reads those facts back and reasons about
// calls across the boundary without re-analyzing P's sources.
//
// Everything is in-process — the Loader memoizes facts alongside type
// info, keyed by the types.Object identity its shared FileSet guarantees —
// so no gob encoding is needed. The price of the simpler model is that an
// analyzer with FactTypes must see its dependencies analyzed first; the
// Loader arranges exactly that (see runWithDeps in load.go).

import (
	"fmt"
	"go/types"
	"reflect"
	"sort"
)

// Fact is a typed datum an analyzer attaches to an object in one package
// and reads back from importing packages. Implementations must be pointer
// types (so ImportObjectFact can fill a caller-provided value).
type Fact interface {
	// AFact marks the type as a fact; it is never called.
	AFact()
}

// ObjectFact pairs an object with one fact attached to it.
type ObjectFact struct {
	Obj  types.Object
	Fact Fact
}

// factKey identifies one fact slot: analyzer × object × fact type.
// A nil object addresses package-level facts (keyed by pkg instead).
type factKey struct {
	analyzer string
	obj      types.Object
	pkg      *types.Package
	t        reflect.Type
}

// factStore holds every fact exported during a Loader's lifetime.
type factStore struct {
	m map[factKey]Fact
}

func newFactStore() *factStore { return &factStore{m: make(map[factKey]Fact)} }

func (s *factStore) set(k factKey, f Fact) { s.m[k] = f }

func (s *factStore) get(k factKey) (Fact, bool) {
	f, ok := s.m[k]
	return f, ok
}

// factStoreFor returns the store shared through the loader, or a
// package-local fallback for hand-constructed Packages in tests.
func (pkg *Package) factStoreFor() *factStore {
	if pkg.loader != nil {
		return pkg.loader.facts
	}
	if pkg.localFacts == nil {
		pkg.localFacts = newFactStore()
	}
	return pkg.localFacts
}

// ExportObjectFact attaches fact to obj for this pass's analyzer. The
// analyzer must declare the fact's type in its FactTypes, and fact must be
// a pointer. Exporting twice for the same (object, type) overwrites.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if obj == nil {
		panic("ExportObjectFact: nil object")
	}
	p.checkFactType(fact)
	p.pkg.factStoreFor().set(factKey{analyzer: p.Analyzer.Name, obj: obj, t: reflect.TypeOf(fact)}, fact)
}

// ImportObjectFact copies the fact of ptr's type attached to obj (by this
// analyzer, in this or any already-analyzed package) into *ptr, reporting
// whether one existed.
func (p *Pass) ImportObjectFact(obj types.Object, ptr Fact) bool {
	if obj == nil {
		return false
	}
	p.checkFactType(ptr)
	f, ok := p.pkg.factStoreFor().get(factKey{analyzer: p.Analyzer.Name, obj: obj, t: reflect.TypeOf(ptr)})
	if !ok {
		return false
	}
	reflect.ValueOf(ptr).Elem().Set(reflect.ValueOf(f).Elem())
	return true
}

// ExportPackageFact attaches fact to the package being analyzed.
func (p *Pass) ExportPackageFact(fact Fact) {
	p.checkFactType(fact)
	p.pkg.factStoreFor().set(factKey{analyzer: p.Analyzer.Name, pkg: p.Pkg, t: reflect.TypeOf(fact)}, fact)
}

// ImportPackageFact copies the package fact of ptr's type for pkg into
// *ptr, reporting whether one existed.
func (p *Pass) ImportPackageFact(pkg *types.Package, ptr Fact) bool {
	if pkg == nil {
		return false
	}
	p.checkFactType(ptr)
	f, ok := p.pkg.factStoreFor().get(factKey{analyzer: p.Analyzer.Name, pkg: pkg, t: reflect.TypeOf(ptr)})
	if !ok {
		return false
	}
	reflect.ValueOf(ptr).Elem().Set(reflect.ValueOf(f).Elem())
	return true
}

// AllObjectFacts returns every object fact this analyzer has exported so
// far (across all packages analyzed through the same loader), sorted by
// object position for deterministic iteration.
func (p *Pass) AllObjectFacts() []ObjectFact {
	store := p.pkg.factStoreFor()
	var out []ObjectFact
	for k, f := range store.m {
		if k.analyzer == p.Analyzer.Name && k.obj != nil {
			out = append(out, ObjectFact{Obj: k.obj, Fact: f})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Obj.Pos() != out[j].Obj.Pos() {
			return out[i].Obj.Pos() < out[j].Obj.Pos()
		}
		return out[i].Obj.Name() < out[j].Obj.Name()
	})
	return out
}

// ObjectFacts returns every object fact the named analyzer exported
// through this loader, sorted by object position — the hook analysistest
// uses to check a fixture's "// want fact:" assertions.
func (l *Loader) ObjectFacts(analyzer string) []ObjectFact {
	var out []ObjectFact
	for k, f := range l.facts.m {
		if k.analyzer == analyzer && k.obj != nil {
			out = append(out, ObjectFact{Obj: k.obj, Fact: f})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Obj.Pos() != out[j].Obj.Pos() {
			return out[i].Obj.Pos() < out[j].Obj.Pos()
		}
		return out[i].Obj.Name() < out[j].Obj.Name()
	})
	return out
}

// checkFactType enforces the FactTypes declaration contract: an analyzer
// may only traffic in fact types it registered, and facts must be
// pointers (so import can fill them in place).
func (p *Pass) checkFactType(fact Fact) {
	t := reflect.TypeOf(fact)
	if t == nil || t.Kind() != reflect.Pointer {
		panic(fmt.Sprintf("%s: fact %T must be a pointer type", p.Analyzer.Name, fact))
	}
	for _, ft := range p.Analyzer.FactTypes {
		if reflect.TypeOf(ft) == t {
			return
		}
	}
	panic(fmt.Sprintf("%s: fact type %T not declared in FactTypes", p.Analyzer.Name, fact))
}
