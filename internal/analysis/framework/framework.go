// Package framework is a self-contained reimplementation of the core of
// golang.org/x/tools/go/analysis, built only on the standard library's
// go/ast, go/parser, and go/types. The repository vendors no third-party
// code, so the mnetlint analyzers (see the sibling analyzer packages and
// cmd/mnetlint) run against this framework instead of x/tools; the API
// mirrors x/tools closely enough that an analyzer written here ports to a
// real multichecker by changing one import.
//
// Two deliberate extensions over x/tools:
//
//   - Pass.TestFiles carries the package's _test.go files (parsed, not
//     type-checked), because the wireroundtrip analyzer must see tests to
//     verify that every Marshal/Unmarshal pair has a round-trip test.
//
//   - Suppression: a diagnostic is discarded when the line it is reported
//     on, or the line immediately above it, carries a comment of the form
//
//     //lint:allow <analyzer> <reason>
//
//     The reason is mandatory; an allow directive without one is ignored
//     (and surfaced by the driver), so every escape hatch in the tree
//     documents why the invariant does not apply.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and allow directives.
	Name string
	// Doc states the invariant the analyzer enforces.
	Doc string
	// Run reports diagnostics for one package through the pass.
	Run func(*Pass) error
	// FactTypes lists the fact types the analyzer exports/imports (sample
	// pointer values, e.g. []Fact{(*OwnershipFact)(nil)}). A non-empty
	// list makes the loader analyze a package's module-internal imports
	// first, so facts flow from dependency to importer.
	FactTypes []Fact
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
	// Analyzer is the reporting analyzer's name, filled by Package.Run.
	Analyzer string
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's non-test sources, type-checked.
	Files []*ast.File
	// TestFiles are the package's _test.go sources, parsed but not
	// type-checked (they may belong to an external _test package).
	TestFiles []*ast.File
	// PkgPath is the package import path.
	PkgPath string
	// Pkg is the type-checked package. It is non-nil even when type
	// checking was partial; analyzers must tolerate incomplete info.
	Pkg *types.Package
	// TypesInfo holds expression types and identifier uses, best effort.
	TypesInfo *types.Info

	pkg   *Package
	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// MapType reports whether the expression's type is (or points at) a map,
// using the pass's type information. Unknown types report false, keeping
// analyzers quiet rather than noisy when inference is partial.
func (p *Pass) MapType(e ast.Expr) bool {
	if p.TypesInfo == nil {
		return false
	}
	tv, ok := p.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type.Underlying()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem().Underlying()
	}
	_, isMap := t.(*types.Map)
	return isMap
}

// PkgIdent reports whether ident names the package imported under path in
// the file containing it. Type information is consulted first; when it is
// unavailable the file's import table decides, which is exact for this
// repository's style (no shadowed package identifiers).
func (p *Pass) PkgIdent(file *ast.File, ident *ast.Ident, path string) bool {
	if p.TypesInfo != nil {
		if obj, ok := p.TypesInfo.Uses[ident]; ok {
			pn, ok := obj.(*types.PkgName)
			return ok && pn.Imported().Path() == path
		}
	}
	name, ok := importName(file, path)
	return ok && ident.Name == name
}

// importName returns the local identifier a file binds path to, if the
// file imports it (skipping blank and dot imports).
func importName(f *ast.File, path string) (string, bool) {
	for _, imp := range f.Imports {
		if strings.Trim(imp.Path.Value, `"`) != path {
			continue
		}
		if imp.Name == nil {
			if i := strings.LastIndex(path, "/"); i >= 0 {
				return path[i+1:], true
			}
			return path, true
		}
		if imp.Name.Name == "_" || imp.Name.Name == "." {
			return "", false
		}
		return imp.Name.Name, true
	}
	return "", false
}

// AllowDirective is one parsed //lint:allow comment: the escape hatch's
// position, the analyzer it silences, and the mandatory justification.
type AllowDirective struct {
	Pos      token.Pos
	File     string
	Line     int
	Analyzer string
	Reason   string
}

// BrokenDirective is an allow directive missing its mandatory reason.
type BrokenDirective struct {
	Pos token.Pos
}

const allowPrefix = "//lint:allow"

// parseAllows extracts allow directives from a file's comments.
func parseAllows(fset *token.FileSet, f *ast.File) (allows []AllowDirective, broken []BrokenDirective) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, allowPrefix) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(c.Text, allowPrefix))
			fields := strings.Fields(rest)
			if len(fields) < 2 {
				// Analyzer name without a reason (or nothing at all):
				// the directive does not suppress.
				broken = append(broken, BrokenDirective{Pos: c.Pos()})
				continue
			}
			pos := fset.Position(c.Pos())
			allows = append(allows, AllowDirective{
				Pos:      c.Pos(),
				File:     pos.Filename,
				Line:     pos.Line,
				Analyzer: fields[0],
				Reason:   strings.Join(fields[1:], " "),
			})
		}
	}
	return allows, broken
}

// Run executes the analyzer over the package and returns its diagnostics
// with suppression applied, sorted by position. When the analyzer declares
// FactTypes and the package was produced by a Loader, the analyzer first
// runs (memoized) over the package's module-internal imports so their
// exported facts are visible; results per (package, analyzer) are memoized
// on the loader, so a driver iterating packages never re-runs a pass.
func (pkg *Package) Run(a *Analyzer) ([]Diagnostic, error) {
	if pkg.loader != nil {
		return pkg.loader.runWithDeps(a, pkg)
	}
	return pkg.runLocal(a)
}

// runLocal executes the analyzer over just this package.
func (pkg *Package) runLocal(a *Analyzer) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		TestFiles: pkg.TestFiles,
		PkgPath:   pkg.PkgPath,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		pkg:       pkg,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
	}
	kept := pkg.filterSuppressed(a.Name, pass.diags)
	for i := range kept {
		kept[i].Analyzer = a.Name
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].Pos < kept[j].Pos })
	return kept, nil
}

// filterSuppressed drops diagnostics covered by an allow directive for the
// analyzer (or for "all") on the same line or the line above, recording
// which directives earned their keep so the driver's -stale-allows audit
// can report the ones that no longer suppress anything.
func (pkg *Package) filterSuppressed(analyzer string, diags []Diagnostic) []Diagnostic {
	if len(diags) == 0 {
		return nil
	}
	// filename -> line -> directives present on that line.
	byFile := make(map[string]map[int][]AllowDirective)
	for _, a := range pkg.AllowDirectives() {
		lines := byFile[a.File]
		if lines == nil {
			lines = make(map[int][]AllowDirective)
			byFile[a.File] = lines
		}
		lines[a.Line] = append(lines[a.Line], a)
	}
	var kept []Diagnostic
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		lines := byFile[pos.Filename]
		suppressed := false
		for _, line := range []int{pos.Line, pos.Line - 1} {
			for _, a := range lines[line] {
				if a.Analyzer == analyzer || a.Analyzer == "all" {
					suppressed = true
					if pkg.usedAllows == nil {
						pkg.usedAllows = make(map[token.Pos]bool)
					}
					pkg.usedAllows[a.Pos] = true
				}
			}
			if suppressed {
				break
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	return kept
}

// AllowDirectives returns every well-formed //lint:allow directive in the
// package (sources and test files), memoized, in file order.
func (pkg *Package) AllowDirectives() []AllowDirective {
	if pkg.allows == nil {
		pkg.allows = []AllowDirective{} // non-nil: memo even when empty
		for _, f := range append(append([]*ast.File(nil), pkg.Files...), pkg.TestFiles...) {
			allows, _ := parseAllows(pkg.Fset, f)
			pkg.allows = append(pkg.allows, allows...)
		}
	}
	return pkg.allows
}

// AllowUsed reports whether the directive at pos suppressed at least one
// diagnostic during the analyzer runs performed so far.
func (pkg *Package) AllowUsed(pos token.Pos) bool { return pkg.usedAllows[pos] }

// BrokenDirectives returns allow directives in the package that are
// missing their mandatory reason, for the driver to surface.
func (pkg *Package) BrokenDirectives() []BrokenDirective {
	var out []BrokenDirective
	for _, f := range append(append([]*ast.File(nil), pkg.Files...), pkg.TestFiles...) {
		_, broken := parseAllows(pkg.Fset, f)
		out = append(out, broken...)
	}
	return out
}
