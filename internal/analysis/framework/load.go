package framework

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed, and (leniently) type-checked package.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	// Files are the non-test sources; TestFiles the _test.go sources.
	Files     []*ast.File
	TestFiles []*ast.File
	Types     *types.Package
	Info      *types.Info
	// TypeErrors collects type-checker complaints. Analysis proceeds on
	// partial information, but the driver can surface these in -debug runs.
	TypeErrors []error

	loader     *Loader            // back-pointer for facts and dep-ordered runs; nil for hand-built packages
	localFacts *factStore         // fallback store when loader is nil
	allows     []AllowDirective   // memoized AllowDirectives result
	usedAllows map[token.Pos]bool // directives that suppressed ≥1 diagnostic
}

// Loader loads packages of one module, resolving module-internal imports
// from source and everything else through the compiler's importer. All
// packages share one FileSet so positions interoperate.
type Loader struct {
	Fset    *token.FileSet
	modRoot string
	modPath string
	std     types.ImporterFrom
	source  types.Importer
	loaded  map[string]*Package // by import path, non-test typecheck memo

	// facts memoizes every exported analysis fact alongside the type
	// info, so an analyzer running on an importing package sees what its
	// dependencies' passes learned.
	facts *factStore
	// byTypes maps a type-checked package back to its loaded Package, for
	// resolving pkg.Types.Imports() entries to analyzable sources.
	byTypes map[*types.Package]*Package
	// results memoizes Run outcomes per (analyzer, package) so the
	// dependency-first traversal never re-analyzes.
	results map[runKey]runResult
	running map[runKey]bool // cycle guard (impossible in well-formed Go)
}

type runKey struct {
	analyzer string
	pkgPath  string
}

type runResult struct {
	diags []Diagnostic
	err   error
}

// NewLoader creates a loader for the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	root, path, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	l := &Loader{
		Fset:    fset,
		modRoot: root,
		modPath: path,
		loaded:  make(map[string]*Package),
		facts:   newFactStore(),
		byTypes: make(map[*types.Package]*Package),
		results: make(map[runKey]runResult),
		running: make(map[runKey]bool),
	}
	if imp, ok := importer.Default().(types.ImporterFrom); ok {
		l.std = imp
	}
	l.source = importer.ForCompiler(fset, "source", nil)
	return l, nil
}

// ModRoot returns the module's root directory.
func (l *Loader) ModRoot() string { return l.modRoot }

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, path string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("framework: %s/go.mod has no module directive", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("framework: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// LoadPatterns resolves go-style package patterns ("./...", "./internal/ip",
// "dir/...") relative to the module root and loads each matching package.
func (l *Loader) LoadPatterns(patterns []string) ([]*Package, error) {
	dirSet := make(map[string]bool)
	for _, pat := range patterns {
		base, recursive := strings.CutSuffix(pat, "/...")
		if base == "." || base == "" {
			base = l.modRoot
		} else if !filepath.IsAbs(base) {
			base = filepath.Join(l.modRoot, base)
		}
		if !recursive {
			dirSet[filepath.Clean(base)] = true
			continue
		}
		err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				dirSet[p] = true
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	dirs := make([]string, 0, len(dirSet))
	for d := range dirSet {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasPrefix(e.Name(), ".") && !strings.HasPrefix(e.Name(), "_") {
			return true
		}
	}
	return false
}

// LoadDir loads the package in dir, including its test files. Directories
// outside the module's import space (testdata fixtures) are given a
// synthetic import path derived from their location.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	pkgPath := l.importPathFor(dir)
	if pkg, ok := l.loaded[pkgPath]; ok {
		return pkg, nil
	}
	return l.load(pkgPath, dir)
}

// importPathFor maps a directory inside the module to its import path; a
// testdata directory gets a synthetic path so it never collides.
func (l *Loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.modRoot, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "external/" + filepath.ToSlash(dir)
	}
	if rel == "." {
		return l.modPath
	}
	slash := filepath.ToSlash(rel)
	if strings.Contains("/"+slash+"/", "/testdata/") {
		return "fixture/" + slash
	}
	return l.modPath + "/" + slash
}

// load parses and type-checks one directory.
func (l *Loader) load(pkgPath, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{PkgPath: pkgPath, Dir: dir, Fset: l.Fset, loader: l}
	// Memoize before type-checking so recursive imports terminate; Go
	// forbids import cycles, so the partially filled entry is never
	// observed by a well-formed tree.
	l.loaded[pkgPath] = pkg
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("framework: parsing %s: %w", filepath.Join(dir, n), err)
		}
		if strings.HasSuffix(n, "_test.go") {
			pkg.TestFiles = append(pkg.TestFiles, f)
		} else {
			pkg.Files = append(pkg.Files, f)
		}
	}
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer:    &moduleImporter{l: l},
		FakeImportC: true,
		// Lenient: record every checkable expression, keep going past
		// errors. Analyzers are written to tolerate partial info.
		Error: func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Check ignores the returned error: Info is filled best effort and
	// conf.Error already captured the details.
	pkg.Types, _ = conf.Check(pkgPath, l.Fset, pkg.Files, pkg.Info)
	if pkg.Types != nil {
		l.byTypes[pkg.Types] = pkg
	}
	return pkg, nil
}

// runWithDeps executes the analyzer over pkg, first (for fact-bearing
// analyzers) over every module-internal dependency in deterministic
// import order, memoizing each (analyzer, package) outcome.
func (l *Loader) runWithDeps(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	key := runKey{analyzer: a.Name, pkgPath: pkg.PkgPath}
	if res, ok := l.results[key]; ok {
		return res.diags, res.err
	}
	if l.running[key] {
		// Import cycles cannot occur in well-formed Go; break anyway.
		return nil, nil
	}
	l.running[key] = true
	defer delete(l.running, key)

	if len(a.FactTypes) > 0 && pkg.Types != nil {
		imps := append([]*types.Package(nil), pkg.Types.Imports()...)
		sort.Slice(imps, func(i, j int) bool { return imps[i].Path() < imps[j].Path() })
		for _, imp := range imps {
			dep, ok := l.byTypes[imp]
			if !ok || len(dep.Files) == 0 {
				continue // stdlib or unloaded: no sources to analyze
			}
			if _, err := l.runWithDeps(a, dep); err != nil {
				l.results[key] = runResult{err: err}
				return nil, err
			}
		}
	}
	diags, err := pkg.runLocal(a)
	l.results[key] = runResult{diags: diags, err: err}
	return diags, err
}

// moduleImporter resolves module-internal imports from source and defers
// the rest to the gc importer (falling back to the source importer, which
// compiles the standard library from GOROOT and needs no export data).
type moduleImporter struct{ l *Loader }

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	l := m.l
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
		return m.fromSource(path, rel)
	}
	// Synthetic fixture paths (see importPathFor): testdata packages import
	// each other as "fixture/<module-relative-dir>".
	if rel, ok := strings.CutPrefix(path, "fixture/"); ok {
		return m.fromSource(path, rel)
	}
	if l.std != nil {
		if p, err := l.std.ImportFrom(path, l.modRoot, 0); err == nil {
			return p, nil
		}
	}
	return l.source.Import(path)
}

// fromSource loads the module-relative directory rel and returns its types.
func (m *moduleImporter) fromSource(path, rel string) (*types.Package, error) {
	pkg, err := m.l.LoadDir(filepath.Join(m.l.modRoot, filepath.FromSlash(rel)))
	if err != nil {
		return nil, err
	}
	if pkg.Types == nil {
		return nil, fmt.Errorf("framework: type-checking %s failed", path)
	}
	return pkg.Types, nil
}
