package framework

import (
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule materializes a throwaway module on disk and returns its root.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range files {
		p := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const loaderGoMod = "module loadertest\n\ngo 1.21\n"

// TestLoaderExternalTestPackage: _test.go files in an external package
// (package foo_test) must land in TestFiles without breaking the
// type-check of the package proper.
func TestLoaderExternalTestPackage(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": loaderGoMod,
		"a/a.go": "package a\n\nfunc Value() int { return 4 }\n",
		"a/a_test.go": `package a_test

import "testing"

func TestValue(t *testing.T) {}
`,
		"a/internal_test.go": `package a

import "testing"

func TestInternal(t *testing.T) {}
`,
	})
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg.Files) != 1 {
		t.Errorf("Files = %d, want 1", len(pkg.Files))
	}
	if len(pkg.TestFiles) != 2 {
		t.Errorf("TestFiles = %d, want 2 (external and internal test files)", len(pkg.TestFiles))
	}
	if pkg.Types == nil || len(pkg.TypeErrors) != 0 {
		t.Errorf("type check failed: Types=%v errors=%v", pkg.Types, pkg.TypeErrors)
	}
	// External test package name must not have polluted the package.
	if got := pkg.Types.Name(); got != "a" {
		t.Errorf("package name = %q, want a", got)
	}
}

// TestLoaderPartialTypeCheck: a package with type errors still yields AST,
// partial type info, and a runnable analyzer pass.
func TestLoaderPartialTypeCheck(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": loaderGoMod,
		"b/b.go": `package b

func Broken() undefinedType { return nil }

func Fine() int { return 1 }
`,
	})
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(filepath.Join(dir, "b"))
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg.TypeErrors) == 0 {
		t.Fatalf("expected type errors for undefinedType, got none")
	}
	if pkg.Types == nil || pkg.Info == nil {
		t.Fatalf("partial type info missing: Types=%v Info=%v", pkg.Types, pkg.Info)
	}
	// An analyzer pass over the broken package must still run and see the
	// healthy declarations.
	var sawFine bool
	a := &Analyzer{
		Name: "probe",
		Doc:  "test probe",
		Run: func(p *Pass) error {
			for _, f := range p.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					if fd, ok := n.(*ast.FuncDecl); ok && fd.Name.Name == "Fine" {
						if obj := p.TypesInfo.Defs[fd.Name]; obj != nil {
							sawFine = true
						}
					}
					return true
				})
			}
			return nil
		},
	}
	if _, err := pkg.Run(a); err != nil {
		t.Fatalf("analyzer over partial package: %v", err)
	}
	if !sawFine {
		t.Errorf("pass did not see type info for the healthy declaration")
	}
}

// factsProbe is the fact type used by the round-trip tests below.
type factsProbe struct{ Tag string }

func (*factsProbe) AFact() {}

// TestFactRoundTripAcrossPackages: facts exported while analyzing a
// dependency must be importable when the same analyzer later runs on an
// importing package — including transitively, and with the dependency's
// run memoized (exactly one analysis per package).
func TestFactRoundTripAcrossPackages(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":     loaderGoMod,
		"dep/dep.go": "package dep\n\nfunc Marked() {}\n",
		"mid/mid.go": `package mid

import "loadertest/dep"

func Use() { dep.Marked() }
`,
		"top/top.go": `package top

import "loadertest/mid"

func Top() { mid.Use() }
`,
	})
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	runsPerPkg := map[string]int{}
	var imported []string
	a := &Analyzer{
		Name:      "facttrip",
		Doc:       "exports a fact on every function, imports facts on callees",
		FactTypes: []Fact{(*factsProbe)(nil)},
		Run: func(p *Pass) error {
			runsPerPkg[p.PkgPath]++
			for _, f := range p.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					switch x := n.(type) {
					case *ast.FuncDecl:
						if obj := p.TypesInfo.Defs[x.Name]; obj != nil {
							p.ExportObjectFact(obj, &factsProbe{Tag: p.PkgPath + "." + x.Name.Name})
						}
					case *ast.CallExpr:
						if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
							if obj := p.TypesInfo.Uses[sel.Sel]; obj != nil {
								var got factsProbe
								if p.ImportObjectFact(obj, &got) {
									imported = append(imported, p.PkgPath+" sees "+got.Tag)
								}
							}
						}
					}
					return true
				})
			}
			return nil
		},
	}
	top, err := l.LoadDir(filepath.Join(dir, "top"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := top.Run(a); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"loadertest/mid sees loadertest/dep.Marked",
		"loadertest/top sees loadertest/mid.Use",
	}
	if strings.Join(imported, "; ") != strings.Join(want, "; ") {
		t.Errorf("imported facts = %v, want %v", imported, want)
	}
	for pkgPath, n := range runsPerPkg {
		if n != 1 {
			t.Errorf("%s analyzed %d times, want 1 (memoization)", pkgPath, n)
		}
	}
	// Running the suite again over an importing package must hit the memo,
	// not re-run.
	mid, err := l.LoadDir(filepath.Join(dir, "mid"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mid.Run(a); err != nil {
		t.Fatal(err)
	}
	if runsPerPkg["loadertest/mid"] != 1 {
		t.Errorf("mid re-analyzed on second Run; want memoized result")
	}
}

// TestPackageFactRoundTrip covers the package-level fact channel.
func TestPackageFactRoundTrip(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":     loaderGoMod,
		"dep/dep.go": "package dep\n\nfunc Marked() {}\n",
		"use/use.go": `package use

import "loadertest/dep"

func U() { dep.Marked() }
`,
	})
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	a := &Analyzer{
		Name:      "pkgfact",
		Doc:       "round-trips a package fact",
		FactTypes: []Fact{(*factsProbe)(nil)},
		Run: func(p *Pass) error {
			p.ExportPackageFact(&factsProbe{Tag: "pkg:" + p.PkgPath})
			if p.Pkg != nil {
				for _, imp := range p.Pkg.Imports() {
					var f factsProbe
					if p.ImportPackageFact(imp, &f) {
						got = append(got, f.Tag)
					}
				}
			}
			return nil
		},
	}
	use, err := l.LoadDir(filepath.Join(dir, "use"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := use.Run(a); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "pkg:loadertest/dep" {
		t.Errorf("package facts seen = %v, want [pkg:loadertest/dep]", got)
	}
}

// TestFactTypeEnforcement: trafficking in an undeclared fact type panics
// loudly instead of corrupting the store.
func TestFactTypeEnforcement(t *testing.T) {
	pkg := &Package{PkgPath: "x", Fset: token.NewFileSet()}
	pass := &Pass{
		Analyzer: &Analyzer{Name: "strict", Doc: "no fact types declared"},
		pkg:      pkg,
	}
	defer func() {
		if recover() == nil {
			t.Errorf("ExportObjectFact with undeclared fact type did not panic")
		}
	}()
	obj := types.NewVar(token.NoPos, nil, "v", types.Typ[types.Int])
	pass.ExportObjectFact(obj, &factsProbe{})
}
