// Package hookorder enforces the pipeline's determinism contract at the
// registration site.
//
// Hook chains traverse in (priority, name) order, so a registration that
// leaves Priority to the zero value is ordered by accident: it silently
// lands at priority 0 and its position relative to future hooks is
// whatever the name sort happens to produce. Likewise a registration
// missing Name cannot be deregistered or replaced, and two registrations
// on the same chain with the same (priority, name) key shadow each other
// (Register replaces by name). All three are almost always mistakes, so
// the analyzer flags them:
//
//   - a Hook composite literal passed to Register must use keyed fields;
//   - the literal must set Name and Priority explicitly (0 is fine, but
//     it must be written);
//   - two registrations on the same chain expression within one function
//     must not repeat a constant (priority, name) key.
//
// Deliberate replacement of an earlier hook is what the //lint:allow
// escape hatch is for. Registrations whose name or priority is not a
// compile-time constant (e.g. "decap:"+vifName) are exempt from the
// duplicate check — only the statically decidable collisions are flagged.
package hookorder

import (
	"go/ast"
	"go/constant"
	"go/types"

	"mosquitonet/internal/analysis/framework"
)

// Analyzer implements the check.
var Analyzer = &framework.Analyzer{
	Name: "hookorder",
	Doc:  "flag pipeline hook registrations without explicit Name/Priority, and duplicate (chain, priority, name) keys",
	Run:  run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn.Body)
		}
	}
	return nil
}

// regKey identifies one statically-known registration within a function.
type regKey struct {
	chain    string
	name     string
	priority string
}

func checkFunc(pass *framework.Pass, body *ast.BlockStmt) {
	seen := make(map[regKey]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Register" || len(call.Args) != 1 {
			return true
		}
		lit := hookLiteral(call.Args[0])
		if lit == nil {
			return true
		}

		var nameExpr, priExpr ast.Expr
		for _, elt := range lit.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				pass.Reportf(lit.Pos(), "hook registration must use keyed fields so Name and Priority are explicit")
				return true
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			switch key.Name {
			case "Name":
				nameExpr = kv.Value
			case "Priority":
				priExpr = kv.Value
			}
		}
		if nameExpr == nil {
			pass.Reportf(lit.Pos(), "hook registered without an explicit Name; unnamed hooks cannot be replaced or deregistered")
		}
		if priExpr == nil {
			pass.Reportf(lit.Pos(), "hook registered without an explicit Priority; it lands at 0 by accident — write Priority: 0 if that is the intent")
		}
		if nameExpr == nil || priExpr == nil {
			return true
		}

		name, nameOK := constString(pass, nameExpr)
		pri, priOK := constValue(pass, priExpr)
		if !nameOK || !priOK {
			return true // dynamic key: not statically decidable
		}
		k := regKey{chain: types.ExprString(sel.X), name: name, priority: pri}
		if seen[k] {
			pass.Reportf(lit.Pos(), "duplicate hook registration on this chain: (priority %s, name %q) repeats an earlier Register and replaces it", pri, name)
		}
		seen[k] = true
		return true
	})
}

// hookLiteral returns the Hook composite literal inside the Register
// argument, unwrapping an address-of. The type may be spelled as a bare
// Hook, a pipeline.Hook selector, or either form instantiated with a
// context type parameter.
func hookLiteral(arg ast.Expr) *ast.CompositeLit {
	if u, ok := arg.(*ast.UnaryExpr); ok {
		arg = u.X
	}
	lit, ok := arg.(*ast.CompositeLit)
	if !ok {
		return nil
	}
	t := lit.Type
	switch idx := t.(type) {
	case *ast.IndexExpr:
		t = idx.X
	case *ast.IndexListExpr:
		t = idx.X
	}
	switch t := t.(type) {
	case *ast.Ident:
		if t.Name == "Hook" {
			return lit
		}
	case *ast.SelectorExpr:
		if t.Sel.Name == "Hook" {
			return lit
		}
	}
	return nil
}

// constString resolves e to a compile-time string constant, via type
// information when available with a literal fallback.
func constString(pass *framework.Pass, e ast.Expr) (string, bool) {
	if v := typedConst(pass, e); v != nil && v.Kind() == constant.String {
		return constant.StringVal(v), true
	}
	return "", false
}

// constValue resolves e to any compile-time constant, rendered as its
// exact string form for use as a map key.
func constValue(pass *framework.Pass, e ast.Expr) (string, bool) {
	if v := typedConst(pass, e); v != nil {
		return v.ExactString(), true
	}
	return "", false
}

func typedConst(pass *framework.Pass, e ast.Expr) constant.Value {
	if pass.TypesInfo == nil {
		return nil
	}
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return nil
	}
	return tv.Value
}
