package hookorder_test

import (
	"testing"

	"mosquitonet/internal/analysis/framework/analysistest"
	"mosquitonet/internal/analysis/hookorder"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "../testdata/src/hookorder", hookorder.Analyzer)
}
