// Package nosharedstate forbids package-level mutable state in code that
// shard-parallel execution may run concurrently.
//
// The ShardSet scheduler (internal/sim) runs each shard's loop on its own
// worker goroutine with no locks between them; the determinism argument in
// DESIGN.md rests on shards sharing no mutable state. A package-level
// variable written from event handlers breaks that twice over: two shards
// racing on it is undefined behaviour, and even a "benign" atomic counter
// makes results depend on shard interleaving, destroying byte-identical
// replay across worker counts.
//
// The analyzer flags every package-level var that function code mutates —
// direct assignment, compound assignment or ++/--, mutation of an element
// or field reached from it, taking its address, or invoking a
// pointer-receiver method on it (which includes sync.Pool.Get and
// sync.Map.Store). The diagnostic is reported at the declaration, which is
// where a //lint:allow nosharedstate directive documents why a specific
// variable is safe (e.g. it is guarded by a mutex and intentionally
// process-wide, or its values never influence simulated behaviour).
//
// Writes from init functions and from the declaration itself are not
// mutations: initialization happens once, before any shard runs. Command
// mains, examples, and the analysis tooling itself are exempt — they are
// drivers that run before or after the simulation, not inside it.
package nosharedstate

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"mosquitonet/internal/analysis/framework"
)

// Analyzer implements the check.
var Analyzer = &framework.Analyzer{
	Name: "nosharedstate",
	Doc:  "forbid package-level mutable state reachable from shard-executed code; shards must share nothing",
	Run:  run,
}

// exemptPrefixes are import-path prefixes whose packages never execute
// inside a shard: single-threaded drivers and the lint tooling.
var exemptPrefixes = []string{
	"mosquitonet/cmd/",
	"mosquitonet/examples/",
	"mosquitonet/internal/analysis",
}

func run(pass *framework.Pass) error {
	for _, p := range exemptPrefixes {
		if strings.HasPrefix(pass.PkgPath, p) {
			return nil
		}
	}
	if pass.TypesInfo == nil {
		return nil
	}

	// Pass 1: collect the package-level vars.
	decls := map[types.Object]token.Pos{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if name.Name == "_" {
						continue
					}
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						decls[obj] = name.Pos()
					}
				}
			}
		}
	}
	if len(decls) == 0 {
		return nil
	}

	// Pass 2: find the first mutation of each var inside function bodies
	// (skipping init, which runs once before any shard exists).
	type mutation struct {
		pos  token.Pos
		verb string
	}
	mutated := map[types.Object]mutation{}
	record := func(e ast.Expr, verb string) {
		obj := rootObject(pass.TypesInfo, e)
		if obj == nil {
			return
		}
		if _, isPkgVar := decls[obj]; !isPkgVar {
			return
		}
		if _, seen := mutated[obj]; !seen {
			mutated[obj] = mutation{pos: e.Pos(), verb: verb}
		}
	}

	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Recv == nil && fd.Name.Name == "init" {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					if n.Tok == token.DEFINE {
						return true
					}
					for _, lhs := range n.Lhs {
						record(lhs, "assigned")
					}
				case *ast.IncDecStmt:
					record(n.X, "mutated with ++/--")
				case *ast.UnaryExpr:
					if n.Op == token.AND {
						record(n.X, "address-taken")
					}
				case *ast.CallExpr:
					sel, ok := n.Fun.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					if !pointerReceiverCall(pass.TypesInfo, sel) {
						return true
					}
					record(sel.X, "mutated through a pointer-receiver method")
				}
				return true
			})
		}
	}

	for obj, m := range mutated {
		pos := pass.Fset.Position(m.pos)
		pass.Reportf(decls[obj], "package-level var %s is %s at %s:%d; shards share no mutable state — move it into per-loop state or justify with //lint:allow nosharedstate",
			obj.Name(), m.verb, shortPath(pos.Filename), pos.Line)
	}
	return nil
}

// rootObject walks to the base identifier of a selector/index/deref chain
// and returns the object it names, or nil. A chain rooted in a pointer
// dereference (*p).f does not implicate the pointer variable itself: the
// pointee may be per-shard even when a pointer to it transits a global,
// and the assignment that stored the global pointer is flagged anyway.
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				return obj
			}
			return info.Defs[x]
		case *ast.SelectorExpr:
			// pkg.Var: the selection resolves directly to the var.
			if id, ok := x.X.(*ast.Ident); ok {
				if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
					return info.Uses[x.Sel]
				}
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// pointerReceiverCall reports whether sel is a method call whose receiver
// is a pointer — the only kind of call that can mutate the value it is
// invoked on.
func pointerReceiverCall(info *types.Info, sel *ast.SelectorExpr) bool {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return false
	}
	fn, ok := s.Obj().(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	_, isPtr := sig.Recv().Type().(*types.Pointer)
	return isPtr
}

// shortPath trims the path to its last two elements for readable
// diagnostics.
func shortPath(p string) string {
	parts := strings.Split(p, "/")
	if len(parts) <= 2 {
		return p
	}
	return strings.Join(parts[len(parts)-2:], "/")
}
