package nosharedstate_test

import (
	"testing"

	"mosquitonet/internal/analysis/framework/analysistest"
	"mosquitonet/internal/analysis/nosharedstate"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "../testdata/src/nosharedstate", nosharedstate.Analyzer)
}
