// Package nowallclock forbids reading the wall clock in simulator code.
//
// Every instant in this repository is virtual time (sim.Time) read from
// sim.Loop.Now; a single time.Now or time.Sleep smuggled into a protocol
// path silently breaks same-seed byte-identical replay — the property the
// paper's handoff-loss and registration-latency numbers depend on. The
// time package's types (Duration, and the arithmetic on them) remain fine;
// only the functions that consult or wait on the real clock are banned.
// Test files are exempt: wall-clock timeouts in tests do not influence
// simulated behaviour.
package nowallclock

import (
	"go/ast"

	"mosquitonet/internal/analysis/framework"
)

// forbidden are the time-package functions that read or wait on the wall
// clock.
var forbidden = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

// Analyzer implements the check.
var Analyzer = &framework.Analyzer{
	Name: "nowallclock",
	Doc:  "forbid wall-clock access (time.Now, time.Sleep, ...) in simulator code; all time is sim.Time",
	Run:  run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			x, ok := sel.X.(*ast.Ident)
			if !ok || !forbidden[sel.Sel.Name] {
				return true
			}
			if pass.PkgIdent(f, x, "time") {
				pass.Reportf(sel.Pos(), "wall clock access: time.%s is forbidden in simulator code; use the sim.Loop clock (Now/Schedule/RunFor)", sel.Sel.Name)
			}
			return true
		})
	}
	return nil
}
