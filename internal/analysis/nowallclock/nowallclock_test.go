package nowallclock_test

import (
	"testing"

	"mosquitonet/internal/analysis/framework/analysistest"
	"mosquitonet/internal/analysis/nowallclock"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "../testdata/src/nowallclock", nowallclock.Analyzer)
}
