// Package scenariogolden keeps the checked-in scenario catalog loadable.
//
// The experiment drivers compile their worlds from the JSON specs under a
// package's testdata/scenarios/ directory (internal/testbed embeds them),
// so a spec that no longer parses under the current schema is a build
// break that the compiler cannot see: it surfaces only when the embedding
// package's tests run the affected experiment. The analyzer closes that
// gap at lint time — for every package that carries a testdata/scenarios
// directory it requires each *.json file to Parse (strict decode plus
// Validate), requires base references to resolve against sibling specs in
// the same directory, and requires spec names to be unique, since the
// catalog indexes by name.
//
// Diagnostics are reported on the package clause of the package's first
// source file — the catalog is package-level data, not tied to any one
// declaration — in sorted file order so runs are deterministic.
package scenariogolden

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"mosquitonet/internal/analysis/framework"
	"mosquitonet/internal/scenario"
)

// Analyzer implements the check.
var Analyzer = &framework.Analyzer{
	Name: "scenariogolden",
	Doc:  "every testdata/scenarios/*.json must parse and validate under the current scenario schema",
	Run:  run,
}

func run(pass *framework.Pass) error {
	if len(pass.Files) == 0 {
		return nil
	}
	// The catalog is package-level data: anchor all diagnostics on the
	// package clause of the lexically first source file.
	first := pass.Files[0]
	firstName := pass.Fset.Position(first.Pos()).Filename
	for _, f := range pass.Files[1:] {
		if name := pass.Fset.Position(f.Pos()).Filename; name < firstName {
			first, firstName = f, name
		}
	}
	dir := filepath.Join(filepath.Dir(firstName), "testdata", "scenarios")
	if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
		return nil
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return err
	}
	sort.Strings(files)

	specs := map[string]*scenario.Spec{} // by spec name, for base resolution
	byName := map[string]string{}        // spec name -> file, for duplicate reports
	var withBase []string
	for _, file := range files {
		rel := filepath.Join("testdata", "scenarios", filepath.Base(file))
		data, err := os.ReadFile(file)
		if err != nil {
			pass.Reportf(first.Name.Pos(), "%s: %v", rel, err)
			continue
		}
		spec, err := scenario.Parse(data)
		if err != nil {
			pass.Reportf(first.Name.Pos(), "%s: %v", rel, err)
			continue
		}
		if prev, dup := byName[spec.Name]; dup {
			pass.Reportf(first.Name.Pos(), "%s: duplicate scenario name %q (also in %s)", rel, spec.Name, prev)
			continue
		}
		byName[spec.Name] = rel
		specs[spec.Name] = spec
		if spec.Base != "" {
			withBase = append(withBase, spec.Name)
		}
	}
	for _, name := range withBase {
		spec := specs[name]
		_, err := scenario.ResolveBase(spec, func(base string) (*scenario.Spec, error) {
			b, ok := specs[base]
			if !ok {
				return nil, fmt.Errorf("no scenario %q in the catalog", base)
			}
			return b, nil
		})
		if err != nil {
			pass.Reportf(first.Name.Pos(), "%s: %v", byName[name], err)
		}
	}
	return nil
}
