package scenariogolden_test

import (
	"testing"

	"mosquitonet/internal/analysis/framework/analysistest"
	"mosquitonet/internal/analysis/scenariogolden"
)

func TestScenariogolden(t *testing.T) {
	analysistest.Run(t, "../testdata/src/scenariogolden", scenariogolden.Analyzer)
}

func TestScenariogoldenBase(t *testing.T) {
	analysistest.Run(t, "../testdata/src/scenariogoldenbase", scenariogolden.Analyzer)
}
