// Package seededrand forbids randomness that bypasses the simulation's
// seeded source.
//
// All randomness must flow through sim.Loop.Rand (or helpers built on it,
// like Loop.Jitter): the global math/rand functions draw from a shared
// process-wide source and rand.New outside internal/sim creates a second
// stream whose interleaving with the loop's source depends on call order
// across unrelated subsystems. Either breaks same-seed reproducibility.
// Referring to the *rand.Rand and rand.Source types stays legal — that is
// how the seeded source is passed around — and test files are exempt
// (tests construct their own seeded sources deliberately).
package seededrand

import (
	"go/ast"

	"mosquitonet/internal/analysis/framework"
)

// randPaths are the package paths whose use is policed.
var randPaths = []string{"math/rand", "math/rand/v2"}

// typeNames are identifiers that denote types (not functions) in math/rand
// and math/rand/v2; referencing them never draws randomness.
var typeNames = map[string]bool{
	"Rand":     true,
	"Source":   true,
	"Source64": true,
	"Zipf":     true,
	"PCG":      true,
	"ChaCha8":  true,
}

// constructorNames may be used only by the simulation loop itself, which
// owns the one seeded source per run.
var constructorNames = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewPCG":    true,
	"NewZipf":   true,
}

// loopPackage is the only package allowed to construct a source.
const loopPackage = "mosquitonet/internal/sim"

// Analyzer implements the check.
var Analyzer = &framework.Analyzer{
	Name: "seededrand",
	Doc:  "forbid global math/rand functions and stray rand.New outside internal/sim; randomness flows through sim.Loop.Rand",
	Run:  run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			x, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			if typeNames[name] {
				return true
			}
			for _, path := range randPaths {
				if !pass.PkgIdent(f, x, path) {
					continue
				}
				if constructorNames[name] {
					if pass.PkgPath != loopPackage {
						pass.Reportf(sel.Pos(), "rand.%s outside internal/sim creates an unseeded second stream; draw from sim.Loop.Rand() instead", name)
					}
					return true
				}
				pass.Reportf(sel.Pos(), "global rand.%s bypasses the loop's seeded source; draw from sim.Loop.Rand() instead", name)
				return true
			}
			return true
		})
	}
	return nil
}
