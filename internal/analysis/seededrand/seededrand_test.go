package seededrand_test

import (
	"testing"

	"mosquitonet/internal/analysis/framework/analysistest"
	"mosquitonet/internal/analysis/seededrand"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "../testdata/src/seededrand", seededrand.Analyzer)
}
