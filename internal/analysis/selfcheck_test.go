package analysis

import (
	"os"
	"path/filepath"
	"testing"

	"mosquitonet/internal/analysis/bufownership"
	"mosquitonet/internal/analysis/framework"
	"mosquitonet/internal/analysis/verdictflow"
)

// moduleRoot walks up from the test's working directory to the go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}

// TestDatapathOwnershipSelfCheck runs the dataflow analyzers over the real
// datapath packages and requires a clean bill. This is the regression net
// for the send-path buffer contract: removing the bufpool.Put on arp's
// queue-overflow branch, or retaining a delivered frame payload in the
// stack, fails this test with a concrete use-after-recycle/leak report
// instead of an intermittent data race.
func TestDatapathOwnershipSelfCheck(t *testing.T) {
	root := moduleRoot(t)
	loader, err := framework.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadPatterns([]string{
		"./internal/arp",
		"./internal/link",
		"./internal/stack",
		"./internal/ip",
		"./internal/bufpool",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 5 {
		t.Fatalf("loaded %d packages, want 5", len(pkgs))
	}
	for _, a := range []*framework.Analyzer{bufownership.Analyzer, verdictflow.Analyzer} {
		for _, pkg := range pkgs {
			diags, err := pkg.Run(a)
			if err != nil {
				t.Fatalf("%s over %s: %v", a.Name, pkg.PkgPath, err)
			}
			for _, d := range diags {
				t.Errorf("%s: %s: %s", a.Name, pkg.Fset.Position(d.Pos), d.Message)
			}
		}
	}
}
