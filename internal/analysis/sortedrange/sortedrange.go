// Package sortedrange flags map iteration whose order can leak into
// serialized output.
//
// Go map iteration order is deliberately randomized, so a `range` over a
// map that appends to a slice or writes to a stream produces a different
// ordering every run — which is exactly how nondeterminism sneaks into
// trace JSONL, metric snapshots, and wire bytes that must be byte-identical
// across same-seed runs. Order-insensitive bodies (deleting keys, writing
// into another map, accumulating sums or counts) are fine and not flagged.
//
// The exemption is coarse on purpose: a function that sorts anywhere —
// sorted keys before the loop, or collect-then-sort after it — is trusted,
// because both idioms neutralize map order. What the analyzer hunts is the
// function that never sorts at all.
package sortedrange

import (
	"go/ast"
	"go/token"
	"strings"

	"mosquitonet/internal/analysis/framework"
)

// Analyzer implements the check.
var Analyzer = &framework.Analyzer{
	Name: "sortedrange",
	Doc:  "flag range-over-map feeding ordered output (appends, writes) in functions that never sort",
	Run:  run,
}

// emitNames are method names that write to an ordered sink: an io.Writer,
// a builder, an encoder, or an event log.
var emitNames = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Fprintf": true, "Fprintln": true, "Fprint": true,
	"Printf": true, "Println": true, "Print": true,
	"Encode": true, "Record": true, "Observe": true,
	"WriteJSON": true, "WriteJSONL": true,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if functionSorts(fn.Body) {
				continue
			}
			checkFunc(pass, fn.Body)
		}
	}
	return nil
}

// functionSorts reports whether the function body calls into sort/slices
// anywhere — before the loop (sorted keys) or after it (collect-then-sort).
func functionSorts(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		x, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		switch x.Name {
		case "sort":
			found = true
		case "slices":
			if strings.HasPrefix(sel.Sel.Name, "Sort") || sel.Sel.Name == "Sorted" {
				found = true
			}
		}
		return !found
	})
	return found
}

func checkFunc(pass *framework.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if !pass.MapType(rng.X) {
			return true
		}
		if why, pos := orderDependent(pass, rng); why != "" {
			pass.Reportf(pos, "map iteration order reaches ordered output (%s); sort the keys first, or sort the result before serializing", why)
		}
		return true
	})
}

// orderDependent reports how the loop body lets map order escape, if it
// does: appending to state declared outside the loop, or emitting to an
// ordered sink.
func orderDependent(pass *framework.Pass, rng *ast.RangeStmt) (string, token.Pos) {
	declared := localDecls(rng.Body)
	var why string
	var at token.Pos
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if why != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok {
					continue
				}
				fun, ok := call.Fun.(*ast.Ident)
				if !ok || fun.Name != "append" || i >= len(n.Lhs) {
					continue
				}
				if target, ok := rootIdent(n.Lhs[i]); ok && declared[target] {
					continue // scratch local to one iteration
				}
				why, at = "append into outer slice", n.Pos()
				return false
			}
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if ok && emitNames[sel.Sel.Name] {
				why, at = "call to "+sel.Sel.Name, n.Pos()
				return false
			}
			if fun, ok := n.Fun.(*ast.Ident); ok && emitNames[fun.Name] {
				why, at = "call to "+fun.Name, n.Pos()
				return false
			}
		}
		return true
	})
	return why, at
}

// localDecls collects names declared inside the loop body (via := or var);
// appends into those reset every iteration and cannot carry map order out.
func localDecls(body *ast.BlockStmt) map[string]bool {
	out := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						out[id.Name] = true
					}
				}
			}
		case *ast.ValueSpec:
			for _, id := range n.Names {
				out[id.Name] = true
			}
		}
		return true
	})
	return out
}

// rootIdent unwraps selectors/indexes to the base identifier of an
// assignable expression.
func rootIdent(e ast.Expr) (string, bool) {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v.Name, true
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return "", false
		}
	}
}
