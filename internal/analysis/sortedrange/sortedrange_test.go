package sortedrange_test

import (
	"testing"

	"mosquitonet/internal/analysis/framework/analysistest"
	"mosquitonet/internal/analysis/sortedrange"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "../testdata/src/sortedrange", sortedrange.Analyzer)
}
