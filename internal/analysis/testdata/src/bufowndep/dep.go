// Package bufowndep declares buffer-ownership contracts consumed across a
// package boundary by the bufownership fixture: the OwnershipFacts exported
// while this package is analyzed must flow through the loader to the
// importing package's pass.
package bufowndep

import "mosquitonet/internal/bufpool"

// Frame mirrors the link layer's frame: Payload is pool-backed and, for a
// receiver, borrowed for the synchronous delivery chain only.
type Frame struct {
	Payload []byte
}

// Consume takes ownership of payload and recycles it.
//
//mnet:ownership takes payload
func Consume(payload []byte) {
	bufpool.Put(payload)
}

// Peek borrows payload: callers keep ownership.
//
//mnet:ownership borrows payload
func Peek(payload []byte) int { return len(payload) }

// NewBuf returns a pooled buffer the caller owns.
//
//mnet:ownership returns-pooled
func NewBuf(n int) []byte { return bufpool.Get(n) }

// Fill writes into dst and returns it, mirroring ip's MarshalInto shape.
//
//mnet:ownership returns-alias dst
func Fill(dst []byte) []byte { return dst }

// FillErr is the tuple-returning variant of Fill.
//
//mnet:ownership returns-alias dst
func FillErr(dst []byte) ([]byte, error) { return dst, nil }

// Send borrows the frame for the duration of the call.
//
//mnet:ownership borrows f
func Send(f *Frame) {}

// Network mirrors link.Network's handoff hook: a func-typed struct field
// whose invocation transfers ownership of the frame's payload.
type Network struct {
	//mnet:ownership takes f
	Handoff func(f *Frame)
}
