// Package fixture exercises the bufownership analyzer: every pooled buffer
// is recycled or ownership-transferred exactly once on every path, and
// borrowed frame payloads are never retained. Each violation class has a
// flagged variant and an allowed (suppressed) variant.
package fixture

import (
	"errors"

	dep "fixture/internal/analysis/testdata/src/bufowndep"
	"mosquitonet/internal/bufpool"
)

func work(b []byte) {}

// ---- use-after-recycle ----

func useAfterRecycle(n int) {
	buf := bufpool.Get(n)
	bufpool.Put(buf)
	work(buf) // want "use of pooled buffer buf after recycle"
}

func allowedUseAfterRecycle(n int) {
	buf := bufpool.Get(n)
	bufpool.Put(buf)
	work(buf) //lint:allow bufownership fixture exercises the escape hatch
}

func useOnLivePathOnly(n int, cold bool) {
	buf := bufpool.Get(n)
	if cold {
		work(buf)
		bufpool.Put(buf)
		return
	}
	bufpool.Put(buf)
}

// ---- double recycle ----

func doubleRecycle(n int) {
	buf := bufpool.Get(n)
	bufpool.Put(buf)
	bufpool.Put(buf) // want "double recycle"
}

func allowedDoubleRecycle(n int) {
	buf := bufpool.Get(n)
	bufpool.Put(buf)
	bufpool.Put(buf) //lint:allow bufownership fixture exercises the escape hatch
}

func recycleOncePerPath(n int, early bool) {
	buf := bufpool.Get(n)
	if early {
		bufpool.Put(buf)
		return
	}
	work(buf)
	bufpool.Put(buf)
}

// ---- leak at a terminal ----

func leakOnError(n int, fail bool) error {
	buf := bufpool.Get(n) // want "may leak"
	if fail {
		return errors.New("send failed")
	}
	bufpool.Put(buf)
	return nil
}

func allowedLeak(n int) {
	buf := bufpool.Get(n) //lint:allow bufownership fixture keeps the buffer on purpose
	work(buf)
}

func deferRecycle(n int) {
	buf := bufpool.Get(n)
	defer bufpool.Put(buf)
	work(buf)
}

func recyclePerIteration(rounds int) {
	for i := 0; i < rounds; i++ {
		buf := bufpool.Get(64)
		work(buf)
		bufpool.Put(buf)
	}
}

// marshalAndSend is the stack's sendOne pattern: marshal into an owned
// buffer through an aliasing callee, recycle on the error path, transfer
// on success.
func marshalAndSend(n int) error {
	buf := bufpool.Get(n)
	raw, err := dep.FillErr(buf)
	if err != nil {
		bufpool.Put(buf)
		return err
	}
	dep.Consume(raw)
	return nil
}

// ---- cross-package ownership transfer (facts) ----

func useAfterTransfer(n int) {
	buf := bufpool.Get(n)
	dep.Consume(buf)
	work(buf) // want "after its ownership was transferred"
}

func transferTwice(n int) {
	buf := bufpool.Get(n)
	dep.Consume(buf)
	dep.Consume(buf) // want "ownership transferred twice"
}

func recycleAfterTransfer(n int) {
	buf := bufpool.Get(n)
	dep.Consume(buf)
	bufpool.Put(buf) // want "ownership was already transferred"
}

func leakFromDep(n int) {
	buf := dep.NewBuf(n) // want "may leak"
	work(buf)
}

func recycleFromDep(n int) {
	buf := dep.NewBuf(n)
	bufpool.Put(buf)
}

func aliasRecycled(n int) {
	buf := bufpool.Get(n)
	out := dep.Fill(buf)
	bufpool.Put(out)
}

// viaHandoff transfers through a func-typed struct field's contract, the
// link.Network handoff shape.
func viaHandoff(n *dep.Network, size int) {
	payload := bufpool.Get(size)
	n.Handoff(&dep.Frame{Payload: payload})
}

// sendThenRecycle: a borrowing callee does not take the buffer, so the
// caller still recycles.
func sendThenRecycle(size int) {
	payload := bufpool.Get(size)
	dep.Send(&dep.Frame{Payload: payload})
	bufpool.Put(payload)
}

func handAndTouch(n int, enqueue func(fn func())) {
	buf := bufpool.Get(n)
	enqueue(func() { bufpool.Put(buf) })
	work(buf) // want "after its ownership was transferred"
}

// ---- retained borrowed frame payloads ----

type sink struct{ stash []byte }

func (s *sink) retainPayload(f *dep.Frame) {
	s.stash = f.Payload // want "retained past synchronous delivery"
}

func (s *sink) allowedRetain(f *dep.Frame) {
	s.stash = f.Payload //lint:allow bufownership fixture retains deliberately
}

func recycleBorrowed(f *dep.Frame) {
	bufpool.Put(f.Payload) // want "bufpool.Put of borrowed frame payload"
}

func transferBorrowed(f *dep.Frame) {
	dep.Consume(f.Payload) // want "ownership of borrowed frame payload"
}

func captureBorrowed(f *dep.Frame, later func(fn func())) {
	later(func() { work(f.Payload) }) // want "captured by a closure"
}

// borrowOK is the sanctioned pattern: read the payload, copy what must
// outlive delivery into an owned buffer, keep only the copy.
func borrowOK(s *sink, f *dep.Frame) {
	n := dep.Peek(f.Payload)
	c := bufpool.Get(n)
	copy(c, f.Payload)
	s.stash = c
}

// ---- takes-frame entry: a DeliverLocal-shaped owner ----

//mnet:ownership takes f
func deliverLocal(f *dep.Frame) { // want fact:"deliverLocal: ownership\(takes=\[0\]\)"
	work(f.Payload)
	bufpool.Put(f.Payload)
}

//mnet:ownership takes f
func deliverLeak(f *dep.Frame) { // want "may leak"
	work(f.Payload)
}

// ---- malformed annotations are surfaced, not silently dropped ----

//mnet:ownership takes nosuch
func badParam(buf []byte) { // want "no parameter named nosuch"
	work(buf)
}

//mnet:ownership retains buf
func badVerb(buf []byte) { // want "unknown verb retains"
	work(buf)
}
