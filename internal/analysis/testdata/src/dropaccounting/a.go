// Package fixture exercises the dropaccounting analyzer: silent packet
// discards are flagged; counted, recorded, and error-propagating paths are
// not; retention (not a drop) uses the escape hatch.
package fixture

import "errors"

type Packet struct{ TTL int }

type Frame struct{ Len int }

type stats struct {
	DropTTL int
	Seen    int
}

type pktlog struct{}

func (pktlog) Record(args ...any) {}

type counter struct{}

func (counter) Inc() {}

type dev struct {
	stats   stats
	log     pktlog
	dropMTU counter
}

var errTTL = errors.New("ttl exceeded")

func (d *dev) silent(p *Packet) {
	if p.TTL == 0 {
		return // want "packet discarded without accounting"
	}
	d.stats.Seen++
}

func (d *dev) counted(p *Packet) {
	if p.TTL == 0 {
		d.stats.DropTTL++
		return
	}
	d.stats.Seen++
}

func (d *dev) recorded(p *Packet) {
	if p.TTL == 0 {
		d.log.Record("p", "drop", "ttl")
		return
	}
	d.stats.Seen++
}

func (d *dev) counterInc(p *Packet) {
	if p.TTL == 0 {
		d.dropMTU.Inc()
		return
	}
	d.stats.Seen++
}

// propagates hands responsibility back via a non-nil error: not a discard.
func propagates(p *Packet) error {
	if p.TTL == 0 {
		return errTTL
	}
	return nil
}

func zeroReturn(p *Packet) (*Packet, bool) {
	if p.TTL == 0 {
		return nil, false // want "packet discarded without accounting"
	}
	return p, true
}

func frameDrop(f *Frame) {
	if f.Len == 0 {
		return // want "packet discarded without accounting"
	}
}

// closures over packets are checked too.
func viaClosure() func(*Frame) {
	return func(f *Frame) {
		if f.Len > 1500 {
			return // want "packet discarded without accounting"
		}
	}
}

type sender struct{}

func (sender) SendTo(p *Packet) {}

// answered hands the packet onward (a reply, a relay): not a discard.
func (d *dev) answered(s sender, p *Packet) {
	if p.TTL == 0 {
		s.SendTo(p)
		return
	}
	d.stats.Seen++
}

// retained parks the packet in a buffer — conservation holds, so the
// directive documents why and suppresses the finding.
func retained(p *Packet, buf map[int]*Packet) {
	if p.TTL > 0 {
		buf[p.TTL] = p
		//lint:allow dropaccounting packet retained in reassembly buffer, not dropped
		return
	}
	p.TTL++
}

type reasmStats struct {
	DropOverlap int
	Held        int
}

type reasm struct {
	stats   reasmStats
	partial map[int]*Packet
}

// overlapCounted mirrors the reassembler's overlap handling: discarding
// the whole partial buffer is accounted by the DropOverlap field.
func (r *reasm) overlapCounted(p *Packet) (*Packet, bool) {
	if q, ok := r.partial[p.TTL]; ok && q.TTL != p.TTL {
		delete(r.partial, p.TTL)
		r.stats.DropOverlap++
		return nil, false
	}
	r.stats.Held++
	return p, true
}

// overlapSilent drops the buffer without touching any counter: flagged.
func (r *reasm) overlapSilent(p *Packet) (*Packet, bool) {
	if q, ok := r.partial[p.TTL]; ok && q.TTL != p.TTL {
		delete(r.partial, p.TTL)
		return nil, false // want "packet discarded without accounting"
	}
	r.stats.Held++
	return p, true
}
