// Package fixture exercises the hookorder analyzer: registrations missing
// explicit Name or Priority are flagged, as are statically-decidable
// duplicate (chain, priority, name) keys; dynamic names, distinct chains,
// and deliberate (allowed) replacement are not.
package fixture

type Verdict int

const Accept Verdict = 0

type Hook[C any] struct {
	Name     string
	Priority int
	Fn       func(C) Verdict
}

type Chain[C any] struct{}

func (*Chain[C]) Register(h Hook[C]) {}

type Ctx struct{}

const priDecap = -100

func keyedAndDistinct(ch *Chain[*Ctx]) {
	ch.Register(Hook[*Ctx]{Name: "reassemble", Priority: priDecap, Fn: nil})
	ch.Register(Hook[*Ctx]{Name: "demux", Priority: priDecap, Fn: nil})
	ch.Register(Hook[*Ctx]{Name: "reassemble", Priority: 0, Fn: nil})
}

func missingPriority(ch *Chain[*Ctx]) {
	ch.Register(Hook[*Ctx]{Name: "classify", Fn: nil}) // want "without an explicit Priority"
}

func missingName(ch *Chain[*Ctx]) {
	ch.Register(Hook[*Ctx]{Priority: 10, Fn: nil}) // want "without an explicit Name"
}

func positional(ch *Chain[*Ctx]) {
	ch.Register(Hook[*Ctx]{"ttl", 20, nil}) // want "keyed fields"
}

func duplicateKey(ch *Chain[*Ctx]) {
	ch.Register(Hook[*Ctx]{Name: "mtu", Priority: 30, Fn: nil})
	ch.Register(Hook[*Ctx]{Name: "mtu", Priority: 30, Fn: nil}) // want "duplicate hook registration"
}

func dynamicNamesExempt(ch *Chain[*Ctx], vif string) {
	ch.Register(Hook[*Ctx]{Name: "decap:" + vif, Priority: 40, Fn: nil})
	ch.Register(Hook[*Ctx]{Name: "decap:" + vif, Priority: 40, Fn: nil})
}

func distinctChains(input, output *Chain[*Ctx]) {
	input.Register(Hook[*Ctx]{Name: "trace", Priority: 50, Fn: nil})
	output.Register(Hook[*Ctx]{Name: "trace", Priority: 50, Fn: nil})
}

func allowedReplacement(ch *Chain[*Ctx]) {
	ch.Register(Hook[*Ctx]{Name: "route", Priority: 60, Fn: nil})
	//lint:allow hookorder deliberate replacement of the default route hook
	ch.Register(Hook[*Ctx]{Name: "route", Priority: 60, Fn: nil})
}
