// Package fixture exercises the nosharedstate analyzer: package-level
// vars mutated from function code are flagged at their declaration;
// constants, read-only config, init-time setup, and per-instance state
// are not.
package fixture

import "sync"

// Mutable package state in its various disguises.
var counter int                 // want "package-level var counter is mutated with \+\+/--"
var lastName string             // want "package-level var lastName is assigned"
var registry = map[string]int{} // want "package-level var registry is assigned"
var pool sync.Pool              // want "package-level var pool is mutated through a pointer-receiver method"
var escapee int                 // want "package-level var escapee is address-taken"

// Read-only package state: never flagged.
const limit = 16

var defaults = map[string]int{"mtu": 1500}

// seq is intentionally process-wide and justified, so it is suppressed.
//
//lint:allow nosharedstate debug-only sequence for log labels; values never influence simulated behaviour
var seq uint64

func bump() {
	counter++
	seq++
	lastName = "bump"
	registry["x"] = counter
}

func borrow() any {
	return pool.Get()
}

func escape() *int {
	return &escapee
}

// init-time writes are setup, not shared-state mutation.
var table map[string]bool

func init() {
	table = make(map[string]bool, limit)
}

// Reading package state and mutating locals or fields of parameters is
// always fine.
type widget struct{ n int }

func (w *widget) grow() {
	w.n++
	local := defaults["mtu"]
	local++
	_ = local
	_ = table
}
