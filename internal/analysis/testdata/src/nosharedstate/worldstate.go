// World-scoped state patterns from the per-host memory diet: the address
// intern table (mutex-guarded map whose values are pure functions of the
// key) and the arena slab allocator (allocation-only state handing out
// zeroed memory). Both are intentionally process-wide and carry reasoned
// allows; the same shapes without a directive are flagged.
package fixture

import "sync"

// The intern-table pattern, justified: every access is under the mutex
// and the cached value for a key is immutable, so population order across
// shards is unobservable.
//
//lint:allow nosharedstate guards the process-wide intern table; every access is under this mutex
var internMu sync.Mutex

//lint:allow nosharedstate cache guarded by internMu; values are pure functions of the key, so cross-shard population order cannot change any observable result
var interned = map[[4]byte]string{}

func internString(a [4]byte) string {
	internMu.Lock()
	s, ok := interned[a]
	if !ok {
		s = string(a[:])
		interned[a] = s
	}
	internMu.Unlock()
	return s
}

// The same shape without a directive: both the mutex and the map are
// shared mutable state and must be flagged.
var bareMu sync.Mutex         // want "package-level var bareMu is mutated through a pointer-receiver method"
var bareCache = map[int]int{} // want "package-level var bareCache is assigned"

func bareLookup(k int) int {
	bareMu.Lock()
	v, ok := bareCache[k]
	if !ok {
		v = k * k
		bareCache[k] = v
	}
	bareMu.Unlock()
	return v
}

// The arena-slab pattern: a chunk allocator is mutable state (Get advances
// the cursor), so a package-level slab needs a reasoned allow even though
// handing out zeroed memory is order-independent.
type slab struct {
	mu   sync.Mutex
	cur  []int
	next int
}

func (s *slab) get() *int {
	s.mu.Lock()
	if s.next == len(s.cur) {
		s.cur = make([]int, 64)
		s.next = 0
	}
	p := &s.cur[s.next]
	s.next++
	s.mu.Unlock()
	return p
}

//lint:allow nosharedstate allocation-only slab (internally mutex-guarded); get returns zeroed memory, so cross-shard allocation order is unobservable
var intSlab = &slab{}

var rogueSlab = &slab{} // want "package-level var rogueSlab is mutated through a pointer-receiver method"

func alloc() (*int, *int) {
	return intSlab.get(), rogueSlab.get()
}
