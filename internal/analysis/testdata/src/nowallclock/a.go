// Package fixture exercises the nowallclock analyzer: wall-clock reads are
// flagged, time-package types and arithmetic are not, and the
// //lint:allow escape hatch suppresses with a reason.
package fixture

import "time"

type event struct {
	at  time.Time
	gap time.Duration
}

func bad() {
	_ = time.Now()                         // want "wall clock access: time.Now is forbidden"
	time.Sleep(10 * time.Millisecond)      // want "wall clock access: time.Sleep is forbidden"
	_ = time.Since(time.Time{})            // want "wall clock access: time.Since is forbidden"
	_ = time.After(time.Second)            // want "wall clock access: time.After is forbidden"
	_ = time.NewTimer(time.Second)         // want "wall clock access: time.NewTimer is forbidden"
	time.AfterFunc(time.Second, func() {}) // want "wall clock access: time.AfterFunc is forbidden"
}

func fine(e event) time.Duration {
	// Duration arithmetic and time.Time values never consult the clock.
	d := e.gap * 2
	d += 3 * time.Millisecond
	return d.Round(time.Millisecond)
}

func suppressed() {
	//lint:allow nowallclock harness measures real elapsed time outside the simulation
	_ = time.Now()
}
