package fixture

import (
	"testing"
	"time"
)

// Test files are exempt: wall-clock timeouts here do not influence
// simulated behaviour, so nothing below is flagged.
func TestWallClockAllowedInTests(t *testing.T) {
	start := time.Now()
	if time.Since(start) < 0 {
		t.Fatal("clock went backwards")
	}
}
