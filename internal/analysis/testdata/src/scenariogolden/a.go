// Fixture for the scenariogolden analyzer. The package carries a
// testdata/scenarios/ catalog with one valid spec (good.json — silent)
// and one that fails the strict decode (bad.json — unknown field plus a
// fault on an unknown device). Diagnostics land on the package clause.
package fixture // want "bad.json"
