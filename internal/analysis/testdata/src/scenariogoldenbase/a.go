// Fixture for the scenariogolden analyzer's base-resolution check: the
// catalog holds a valid base (base.json), a child that resolves against
// it (child.json — silent), and a child whose base names no sibling spec
// (orphan.json).
package fixture // want "orphan.json"
