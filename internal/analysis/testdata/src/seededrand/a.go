// Package fixture exercises the seededrand analyzer: global math/rand
// draws and stray constructors are flagged, type references are not.
package fixture

import "math/rand"

// Type references are how the seeded source is passed around; legal.
type jitterer struct {
	rng *rand.Rand
	src rand.Source
}

func globals() int {
	n := rand.Intn(10) // want "global rand.Intn bypasses the loop's seeded source"
	f := rand.Float64() // want "global rand.Float64 bypasses the loop's seeded source"
	rand.Shuffle(n, func(i, j int) {}) // want "global rand.Shuffle bypasses the loop's seeded source"
	return n + int(f)
}

func construct() *rand.Rand {
	src := rand.NewSource(1) // want "rand.NewSource outside internal/sim creates an unseeded second stream"
	return rand.New(src)     // want "rand.New outside internal/sim creates an unseeded second stream"
}

func drawsFromSeeded(j *jitterer) int {
	// Drawing from an injected *rand.Rand is the sanctioned pattern.
	return j.rng.Intn(100)
}

func suppressed() float64 {
	//lint:allow seededrand fixture demonstrates the escape hatch
	return rand.Float64()
}
