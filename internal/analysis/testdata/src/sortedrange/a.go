// Package fixture exercises the sortedrange analyzer: map ranges that let
// iteration order reach ordered output are flagged unless the function
// sorts; order-insensitive bodies are left alone.
package fixture

import (
	"fmt"
	"sort"
	"strings"
)

func leakAppend(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "map iteration order reaches ordered output .append into outer slice."
	}
	return out
}

func leakEmit(m map[string]int, w *strings.Builder) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want "map iteration order reaches ordered output .call to Fprintf."
	}
}

// sortedKeys neutralizes map order by sorting the keys before use.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// collectThenSort neutralizes map order after the loop; also fine.
func collectThenSort(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// orderInsensitive accumulates a sum: commutative, never flagged.
func orderInsensitive(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// intoMap writes into another map: order cannot escape.
func intoMap(src, dst map[string]int) {
	for k, v := range src {
		dst[k] = v
	}
}

// scratchLocal appends into a slice scoped to one iteration; order resets
// every pass and cannot leak out.
func scratchLocal(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		tmp := []int{}
		tmp = append(tmp, vs...)
		n += len(tmp)
	}
	return n
}

// sliceRange iterates a slice, not a map: inherently ordered.
func sliceRange(xs []string, w *strings.Builder) {
	for _, x := range xs {
		w.WriteString(x)
	}
}

func suppressed(m map[string]int) []string {
	var out []string
	for k := range m {
		//lint:allow sortedrange caller sorts before comparing
		out = append(out, k)
	}
	return out
}
