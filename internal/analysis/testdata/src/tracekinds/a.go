// Fixture for the tracekinds analyzer. Self-contained: it declares its
// own Tracer with the real method shapes, a conventional wrapper pair
// (trace/startSpan), and a PacketLog whose same-named Record method must
// NOT be checked.
package fixture

type Span struct{}

type Tracer struct{}

func (t *Tracer) Record(actor, kind, format string, args ...any)    {}
func (t *Tracer) StartSpan(actor, kind string) *Span                { return &Span{} }
func (t *Tracer) StartChild(parent *Span, actor, kind string) *Span { return &Span{} }

// PacketLog.Record shares the method name but not the receiver type; its
// kind argument lives at a different index and is out of scope.
type PacketLog struct{}

func (p *PacketLog) Record(trace uint64, actor, kind, detail string) {}

const (
	kGood   = "reg.attempt"
	kUpper  = "Reg.Attempt"
	kNoDots = "regattempt"
)

type host struct{ t *Tracer }

// The wrappers themselves forward a parameter — not a constant, so the
// forwarding call is skipped; enforcement happens at the wrapper's callers.
func (h *host) trace(kind, format string, args ...any) { h.t.Record("h", kind, format, args...) }
func (h *host) startSpan(kind string) *Span            { return h.t.StartSpan("h", kind) }

func uses(t *Tracer, h *host, p *PacketLog, dynamic string) {
	t.Record("mh", kGood, "registered")
	t.Record("mh", "reg.inline", "registered") // want "inline kind literal"
	t.Record("mh", dynamic, "registered")      // non-constant: skipped

	s := t.StartSpan("mh", kGood)
	t.StartSpan("mh", "handoff.cold") // want "inline kind literal"
	t.StartChild(s, "mh", kGood)
	t.StartChild(nil, "mh", kUpper)  // want "not a lowercase dotted path"
	t.StartChild(nil, "mh", kNoDots) // want "not a lowercase dotted path"

	h.trace(kGood, "renewing")
	h.trace("reg.renew", "renewing") // want "inline kind literal"
	h.startSpan(kGood)
	h.startSpan(kNoDots) // want "not a lowercase dotted path"

	p.Record(1, "h", "ip.drop", "no route") // different receiver: not checked
}
