// Package fixture exercises the verdictflow analyzer: every path that
// returns pipeline.Drop must first touch drop accounting.
package fixture

import "mosquitonet/internal/pipeline"

type stats struct{ DropFilter uint64 }

type recorder struct{}

func (recorder) Record(args ...any) {}

// PacketContext mirrors the stack's hook context.
type PacketContext struct {
	stats *stats
	log   recorder
	drops uint64
}

// Drop mirrors the real context helper: staging the counter bump is the
// accounting.
func (c *PacketContext) Drop(reason string) pipeline.Verdict {
	c.drops++
	return pipeline.Drop
}

func silentDrop(ctx *PacketContext, bad bool) pipeline.Verdict {
	if bad {
		return pipeline.Drop // want "without drop accounting"
	}
	return pipeline.Accept
}

func allowedSilentDrop(ctx *PacketContext, bad bool) pipeline.Verdict {
	if bad {
		return pipeline.Drop //lint:allow verdictflow fixture exercises the escape hatch
	}
	return pipeline.Accept
}

func countedDrop(ctx *PacketContext, bad bool) pipeline.Verdict {
	if bad {
		ctx.stats.DropFilter++
		return pipeline.Drop
	}
	return pipeline.Accept
}

func helperDrop(ctx *PacketContext, bad bool) pipeline.Verdict {
	if bad {
		return ctx.Drop("bad checksum")
	}
	return pipeline.Accept
}

func recordedDrop(ctx *PacketContext, bad bool) pipeline.Verdict {
	if bad {
		ctx.log.Record("drop", "bad checksum")
		return pipeline.Drop
	}
	return pipeline.Accept
}

// partialPath accounts in one arm only: the must-analysis refuses to let
// the a-arm's counter excuse the b-return.
func partialPath(ctx *PacketContext, a, b bool) pipeline.Verdict {
	if a {
		ctx.stats.DropFilter++
	}
	if b {
		return pipeline.Drop // want "without drop accounting"
	}
	return pipeline.Accept
}

// loopMayNotRun: a counter bumped inside a loop body does not cover the
// zero-iteration path.
func loopMayNotRun(ctx *PacketContext, tries int) pipeline.Verdict {
	for i := 0; i < tries; i++ {
		ctx.stats.DropFilter++
	}
	return pipeline.Drop // want "without drop accounting"
}

// viaVariable: the verdict travels through a local before the return.
func viaVariable(ctx *PacketContext, bad bool) pipeline.Verdict {
	v := pipeline.Accept
	if bad {
		v = pipeline.Drop
	}
	return v // want "may be pipeline.Drop"
}

func viaVariableCounted(ctx *PacketContext, bad bool) pipeline.Verdict {
	v := pipeline.Accept
	if bad {
		ctx.stats.DropFilter++
		v = pipeline.Drop
	}
	return v
}

// deferredAccountingDoesNotCount: accounting inside a closure that may
// never run on this path is not accounting.
func deferredAccountingDoesNotCount(ctx *PacketContext, enqueue func(fn func()), bad bool) pipeline.Verdict {
	if bad {
		enqueue(func() { ctx.stats.DropFilter++ })
		return pipeline.Drop // want "without drop accounting"
	}
	return pipeline.Accept
}

// otherVerdicts: Accept and Stolen need no accounting.
func otherVerdicts(ctx *PacketContext, steal bool) pipeline.Verdict {
	if steal {
		return pipeline.Stolen
	}
	return pipeline.Accept
}
