// Package fixture exercises the wireroundtrip analyzer: a Marshal without
// its Unmarshal is flagged, a pair without a round-trip test is flagged,
// and tested pairs pass.
package fixture

import "errors"

var errShort = errors.New("short buffer")

// Orphan has no inverse at all.
type Orphan struct{ V byte }

func (o *Orphan) Marshal() []byte { // want "has no matching Unmarshal or UnmarshalOrphan"
	return []byte{o.V}
}

// Pair round-trips and its test exercises both directions.
type Pair struct{ V byte }

func (p *Pair) Marshal() []byte { return []byte{p.V} }

func UnmarshalPair(b []byte) (*Pair, error) {
	if len(b) < 1 {
		return nil, errShort
	}
	return &Pair{V: b[0]}, nil
}

// MarshalThing / UnmarshalThing: function-style pair, tested.
func MarshalThing(v byte) []byte { return []byte{v} }

func UnmarshalThing(b []byte) (byte, error) {
	if len(b) < 1 {
		return 0, errShort
	}
	return b[0], nil
}

// MarshalUntested has its inverse but no test references the pair.
func MarshalUntested(v byte) []byte { // want "MarshalUntested/UnmarshalUntested has no round-trip test"
	return []byte{v}
}

func UnmarshalUntested(b []byte) (byte, error) {
	if len(b) < 1 {
		return 0, errShort
	}
	return b[0], nil
}

// MarshalBeacon is deliberately one-way; the directive documents why.
//
//lint:allow wireroundtrip one-way beacon format, the receiver side lives in fixture hardware
func MarshalBeacon(v byte) []byte { return []byte{v} }

// marshalInternal is unexported: out of scope.
func marshalInternal(v byte) []byte { return []byte{v} }
