package fixture

import "testing"

func TestPairRoundTrip(t *testing.T) {
	p := &Pair{V: 7}
	got, err := UnmarshalPair(p.Marshal())
	if err != nil || got.V != p.V {
		t.Fatalf("round trip: got %v, %v", got, err)
	}
}

func TestThingRoundTrip(t *testing.T) {
	got, err := UnmarshalThing(MarshalThing(9))
	if err != nil || got != 9 {
		t.Fatalf("round trip: got %v, %v", got, err)
	}
}
