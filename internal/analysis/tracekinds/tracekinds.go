// Package tracekinds enforces the trace-kind naming contract.
//
// Experiment harnesses, the flight recorder, and the disruption analyzer
// all select trace events and spans by kind prefix ("reg.", "handoff.",
// "drop.noroute"), so the kind hierarchy is an API: kinds must be
// lowercase dotted paths, and they must be named package constants — an
// inline literal at the call site is invisible to a reader auditing the
// package's vocabulary and trivially drifts from its siblings.
//
// The analyzer inspects the kind argument of the tracing entry points —
// Tracer.Record, Tracer.StartSpan, Tracer.StartChild (receiver resolved
// via type information, so PacketLog.Record and friends are untouched) —
// and of the conventional per-object wrapper methods named trace and
// startSpan. A string literal in kind position is always flagged; a named
// constant is checked against ^[a-z0-9]+(\.[a-z0-9_]+)+$; a value that is
// not a compile-time constant (a parameter, a switch result) is skipped —
// its sources are themselves constants checked at their own call sites.
package tracekinds

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"

	"mosquitonet/internal/analysis/framework"
)

// Analyzer implements the check.
var Analyzer = &framework.Analyzer{
	Name: "tracekinds",
	Doc:  "trace event/span kinds must be lowercase dotted package constants, never inline literals",
	Run:  run,
}

// kindRE is the contract: at least two lowercase dotted components.
var kindRE = regexp.MustCompile(`^[a-z0-9]+(\.[a-z0-9_]+)+$`)

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			idx := kindArgIndex(pass, call)
			if idx < 0 || idx >= len(call.Args) {
				return true
			}
			checkKind(pass, call.Args[idx])
			return true
		})
	}
	return nil
}

// kindArgIndex returns the index of the call's kind argument, or -1 when
// the call is not a tracing entry point.
func kindArgIndex(pass *framework.Pass, call *ast.CallExpr) int {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return -1
	}
	switch sel.Sel.Name {
	case "Record":
		// Tracer.Record(actor, kind, format, ...); PacketLog.Record and
		// other same-named methods are excluded by the receiver type.
		if receiverIsTracer(pass, sel.X) && len(call.Args) >= 2 {
			return 1
		}
	case "StartSpan":
		if receiverIsTracer(pass, sel.X) && len(call.Args) >= 2 {
			return 1
		}
	case "StartChild":
		if receiverIsTracer(pass, sel.X) && len(call.Args) >= 3 {
			return 2
		}
	case "trace", "startSpan":
		// The conventional wrappers (MobileHost.trace, Host.startSpan, ...)
		// take the kind first. Guard against package-qualified selectors —
		// there is no function trace.trace, but be explicit anyway.
		if !isPackageQualifier(pass, sel.X) && len(call.Args) >= 1 {
			return 0
		}
	}
	return -1
}

// receiverIsTracer reports whether the expression's type is trace.Tracer
// (possibly through a pointer). Missing type information reports false:
// quiet beats noisy on partial packages.
func receiverIsTracer(pass *framework.Pass, e ast.Expr) bool {
	if pass.TypesInfo == nil {
		return false
	}
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Tracer"
}

// isPackageQualifier reports whether e is a package name (so sel is a
// qualified identifier, not a method call).
func isPackageQualifier(pass *framework.Pass, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok || pass.TypesInfo == nil {
		return false
	}
	_, isPkg := pass.TypesInfo.Uses[id].(*types.PkgName)
	return isPkg
}

// checkKind flags literal kinds and malformed constant kinds.
func checkKind(pass *framework.Pass, arg ast.Expr) {
	if lit, ok := arg.(*ast.BasicLit); ok && lit.Kind == token.STRING {
		pass.Reportf(arg.Pos(), "inline kind literal %s; trace kinds must be named package constants", lit.Value)
		return
	}
	if pass.TypesInfo == nil {
		return
	}
	tv, ok := pass.TypesInfo.Types[arg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return // not a compile-time constant: checked where it was built
	}
	if s := constant.StringVal(tv.Value); !kindRE.MatchString(s) {
		pass.Reportf(arg.Pos(), "kind constant %q is not a lowercase dotted path (want e.g. \"reg.attempt\")", s)
	}
}
