package tracekinds_test

import (
	"testing"

	"mosquitonet/internal/analysis/framework/analysistest"
	"mosquitonet/internal/analysis/tracekinds"
)

func TestTracekinds(t *testing.T) {
	analysistest.Run(t, "../testdata/src/tracekinds", tracekinds.Analyzer)
}
