// Package verdictflow proves drop accounting for pipeline hooks
// path-sensitively: in any function that takes a *PacketContext and
// returns a pipeline.Verdict, every control-flow path that returns
// pipeline.Drop must first flow through a drop-accounting touch — a
// ctx.drop/dropICMP/Drop/Reject call, an increment of a drop-ish stats
// field, or a Record call that writes the event into the timeline.
//
// This is the dataflow sibling of the dropaccounting analyzer: where
// dropaccounting pattern-matches discard-shaped if-blocks, verdictflow
// runs a must-analysis ("has this path accounted yet?") over the
// framework's CFG, so a counter bumped in only one arm of a branch does
// not excuse the other arm. The telemetry identity encap = decap + drops
// holds only if DROP verdicts and drop counters move in lockstep.
package verdictflow

import (
	"go/ast"
	"go/types"
	"reflect"
	"regexp"
	"strings"

	"mosquitonet/internal/analysis/framework"
)

// Analyzer implements the check.
var Analyzer = &framework.Analyzer{
	Name: "verdictflow",
	Doc:  "every hook path returning pipeline.Drop must flow through a drop-accounting touch",
	Run:  run,
}

// accountingField matches stats-field names whose update accounts for a
// dropped packet (shared vocabulary with the dropaccounting analyzer).
var accountingField = regexp.MustCompile(`(?i)drop|expired|denied|discard|filtered|bad|refused|rejected|lost|exhaust|stale|unreach`)

// accountingCall matches method names that stage drop bookkeeping or
// record the event: the PacketContext helpers plus Record.
var accountingCall = map[string]bool{
	"drop":     true,
	"dropICMP": true,
	"Drop":     true,
	"Reject":   true,
	"Record":   true,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var ftyp *ast.FuncType
			var body *ast.BlockStmt
			var recv *ast.FieldList
			switch fn := n.(type) {
			case *ast.FuncDecl:
				ftyp, body, recv = fn.Type, fn.Body, fn.Recv
			case *ast.FuncLit:
				ftyp, body = fn.Type, fn.Body
			default:
				return true
			}
			if body != nil && inScope(ftyp, recv) {
				check(pass, body)
			}
			return true
		})
	}
	return nil
}

// inScope reports whether the function returns a Verdict and sees a
// *PacketContext (parameter or receiver) — i.e. it is a per-packet hook
// whose DROP verdicts the observer will count.
func inScope(ftyp *ast.FuncType, recv *ast.FieldList) bool {
	if ftyp.Results == nil || len(ftyp.Results.List) == 0 {
		return false
	}
	if finalTypeName(ftyp.Results.List[0].Type) != "Verdict" {
		return false
	}
	fields := []*ast.FieldList{ftyp.Params, recv}
	for _, fl := range fields {
		if fl == nil {
			continue
		}
		for _, f := range fl.List {
			if finalTypeName(f.Type) == "PacketContext" {
				return true
			}
		}
	}
	return false
}

func finalTypeName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.StarExpr:
		return finalTypeName(t.X)
	case *ast.SelectorExpr:
		return t.Sel.Name
	case *ast.Ident:
		return t.Name
	}
	return ""
}

// vfState is the dataflow fact: accounted is a must-property (true only if
// every path to this point touched accounting); dropVars is the may-set of
// locals currently holding pipeline.Drop.
type vfState struct {
	accounted bool
	dropVars  map[types.Object]bool
}

func (s vfState) clone() vfState {
	n := vfState{accounted: s.accounted, dropVars: make(map[types.Object]bool, len(s.dropVars))}
	for k := range s.dropVars {
		n.dropVars[k] = true
	}
	return n
}

func joinVF(a, b vfState) vfState {
	out := a.clone()
	out.accounted = a.accounted && b.accounted
	for k := range b.dropVars {
		out.dropVars[k] = true
	}
	return out
}

type checker struct {
	pass *framework.Pass
}

func check(pass *framework.Pass, body *ast.BlockStmt) {
	c := &checker{pass: pass}
	g := framework.BuildCFG(body)
	transfer := func(s vfState, n ast.Node) vfState {
		ns := s.clone()
		c.apply(&ns, n)
		return ns
	}
	eq := func(a, b vfState) bool { return reflect.DeepEqual(a, b) }
	in := framework.Solve(g, vfState{dropVars: map[types.Object]bool{}}, transfer, joinVF, eq)
	for _, blk := range g.Blocks {
		s, ok := in[blk]
		if !ok {
			continue
		}
		s = s.clone()
		for _, n := range blk.Nodes {
			c.checkReturn(&s, n)
			c.apply(&s, n)
		}
	}
}

// apply is the transfer function for one CFG node.
func (c *checker) apply(s *vfState, n ast.Node) {
	switch x := n.(type) {
	case *ast.AssignStmt:
		// Accounting-field assignment (stats.DropFilter += 1, = old + 1).
		for _, l := range x.Lhs {
			if sel, ok := l.(*ast.SelectorExpr); ok && accountingField.MatchString(sel.Sel.Name) {
				s.accounted = true
			}
		}
		// Verdict variables: v = pipeline.Drop on a not-yet-accounted path
		// joins the may-unaccounted-Drop set; any other RHS — or a Drop
		// assigned after accounting — clears the binding.
		if len(x.Lhs) == len(x.Rhs) {
			for i, l := range x.Lhs {
				id, ok := l.(*ast.Ident)
				if !ok {
					continue
				}
				obj := c.identObj(id)
				if obj == nil {
					continue
				}
				if c.isDropConst(x.Rhs[i]) && !s.accounted {
					s.dropVars[obj] = true
				} else {
					delete(s.dropVars, obj)
				}
			}
		}
	case *ast.IncDecStmt:
		if sel, ok := x.X.(*ast.SelectorExpr); ok && accountingField.MatchString(sel.Sel.Name) {
			s.accounted = true
		}
	}
	// Accounting calls anywhere in the node (conditions included), not
	// descending into function literals: a deferred or stored closure's
	// accounting does not run on this path.
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
				name := sel.Sel.Name
				if accountingCall[name] || strings.Contains(strings.ToLower(name), "drop") {
					s.accounted = true
				}
			}
		}
		return true
	})
}

// checkReturn flags a DROP-returning statement reached by an unaccounted
// path.
func (c *checker) checkReturn(s *vfState, n ast.Node) {
	ret, ok := n.(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 || s.accounted {
		return
	}
	res := ret.Results[0]
	if c.isDropConst(res) {
		c.pass.Reportf(ret.Pos(), "return of pipeline.Drop without drop accounting on every path to this return")
		return
	}
	if id, ok := res.(*ast.Ident); ok {
		if obj := c.identObj(id); obj != nil && s.dropVars[obj] {
			c.pass.Reportf(ret.Pos(), "verdict %s may be pipeline.Drop here, without drop accounting on every path to this return", id.Name)
		}
	}
}

// isDropConst reports whether e is the pipeline.Drop constant, by type
// information when available and by selector shape otherwise.
func (c *checker) isDropConst(e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Drop" {
		return false
	}
	if c.pass.TypesInfo != nil {
		if obj := c.pass.TypesInfo.Uses[sel.Sel]; obj != nil {
			if _, isConst := obj.(*types.Const); isConst && obj.Pkg() != nil {
				p := obj.Pkg().Path()
				return p == "pipeline" || strings.HasSuffix(p, "/pipeline")
			}
		}
	}
	base, ok := sel.X.(*ast.Ident)
	return ok && base.Name == "pipeline"
}

func (c *checker) identObj(id *ast.Ident) types.Object {
	info := c.pass.TypesInfo
	if info == nil {
		return nil
	}
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}
