package verdictflow_test

import (
	"testing"

	"mosquitonet/internal/analysis/framework/analysistest"
	"mosquitonet/internal/analysis/verdictflow"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "../testdata/src/verdictflow", verdictflow.Analyzer)
}
