// Package wireroundtrip enforces that wire formats parse back.
//
// Every exported Marshal in a wire-format package must have a matching
// exported Unmarshal in the same package, and the package's tests must
// exercise the pair together (a round-trip or fuzz test that references
// both names). A Marshal without its inverse is a format nothing can
// validate; a pair without a round-trip test is a format free to drift.
//
// Matching rules:
//
//	func (m *Message) Marshal()   ->  Unmarshal or UnmarshalMessage
//	func MarshalUDP(...)          ->  UnmarshalUDP
//
// Packages with no exported Marshal are ignored, so the check activates
// only where a wire format lives.
package wireroundtrip

import (
	"go/ast"
	"strings"
	"unicode"

	"mosquitonet/internal/analysis/framework"
)

// Analyzer implements the check.
var Analyzer = &framework.Analyzer{
	Name: "wireroundtrip",
	Doc:  "every exported Marshal* needs a matching Unmarshal* and a round-trip test in the same package",
	Run:  run,
}

// marshalFunc is one exported marshaler found in the package.
type marshalFunc struct {
	decl *ast.FuncDecl
	name string // display name, e.g. "(*RegRequest).Marshal" or "MarshalUDP"
	// counterparts are the acceptable Unmarshal names, first match wins.
	counterparts []string
}

func run(pass *framework.Pass) error {
	var marshals []marshalFunc
	declared := make(map[string]bool)

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || !fn.Name.IsExported() {
				continue
			}
			declared[fn.Name.Name] = true
			if m, ok := classify(fn); ok {
				marshals = append(marshals, m)
			}
		}
	}
	if len(marshals) == 0 {
		return nil
	}

	// refs[name] holds the test functions referencing each identifier.
	testRefs := collectTestRefs(pass.TestFiles)

	for _, m := range marshals {
		counterpart := ""
		for _, c := range m.counterparts {
			if declared[c] {
				counterpart = c
				break
			}
		}
		if counterpart == "" {
			pass.Reportf(m.decl.Name.Pos(), "wire format %s has no matching %s in this package; formats must parse back", m.name, strings.Join(m.counterparts, " or "))
			continue
		}
		if !hasRoundTripTest(testRefs, counterpart) {
			pass.Reportf(m.decl.Name.Pos(), "wire format %s/%s has no round-trip test: no Test or Fuzz function references both %s and a Marshal", m.name, counterpart, counterpart)
		}
	}
	return nil
}

// classify recognizes exported marshalers and derives their acceptable
// counterpart names.
func classify(fn *ast.FuncDecl) (marshalFunc, bool) {
	name := fn.Name.Name
	if fn.Recv != nil && len(fn.Recv.List) == 1 {
		if name != "Marshal" {
			return marshalFunc{}, false
		}
		recv := receiverTypeName(fn.Recv.List[0].Type)
		return marshalFunc{
			decl:         fn,
			name:         "(*" + recv + ").Marshal",
			counterparts: []string{"Unmarshal", "Unmarshal" + recv},
		}, true
	}
	suffix, ok := strings.CutPrefix(name, "Marshal")
	if !ok || suffix == "" || !unicode.IsUpper(rune(suffix[0])) {
		return marshalFunc{}, false
	}
	return marshalFunc{
		decl:         fn,
		name:         name,
		counterparts: []string{"Unmarshal" + suffix},
	}, true
}

func receiverTypeName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.StarExpr:
		return receiverTypeName(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr: // generic receiver
		return receiverTypeName(t.X)
	}
	return ""
}

// testRef records which identifiers a test function touches and whether it
// calls any marshaler.
type testRef struct {
	idents     map[string]bool
	hasMarshal bool
}

// collectTestRefs indexes Test*/Fuzz* functions by the identifiers and
// method names their bodies reference.
func collectTestRefs(testFiles []*ast.File) []testRef {
	var refs []testRef
	for _, f := range testFiles {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || fn.Recv != nil {
				continue
			}
			if !strings.HasPrefix(fn.Name.Name, "Test") && !strings.HasPrefix(fn.Name.Name, "Fuzz") {
				continue
			}
			r := testRef{idents: make(map[string]bool)}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch v := n.(type) {
				case *ast.Ident:
					r.idents[v.Name] = true
					if strings.HasPrefix(v.Name, "Marshal") || v.Name == "Marshal" {
						r.hasMarshal = true
					}
				case *ast.SelectorExpr:
					r.idents[v.Sel.Name] = true
					if strings.HasPrefix(v.Sel.Name, "Marshal") {
						r.hasMarshal = true
					}
				}
				return true
			})
			refs = append(refs, r)
		}
	}
	return refs
}

// hasRoundTripTest reports whether some test references the counterpart
// and also touches a marshaler — the shape of a round-trip assertion.
func hasRoundTripTest(refs []testRef, counterpart string) bool {
	for _, r := range refs {
		if r.idents[counterpart] && r.hasMarshal {
			return true
		}
	}
	return false
}
