package wireroundtrip_test

import (
	"testing"

	"mosquitonet/internal/analysis/framework/analysistest"
	"mosquitonet/internal/analysis/wireroundtrip"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "../testdata/src/wireroundtrip", wireroundtrip.Analyzer)
}
