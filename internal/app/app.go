// Package app implements application-layer workloads over the simulator's
// transport layer: an MQTT-style publish/subscribe broker and client
// (CONNECT/SUBSCRIBE/PUBLISH over the TCP-like stream, a topic tree with
// single-level "+" and multi-level "#" wildcards, QoS 0/1 with message-ID
// acknowledgments, retained messages) and an HTTP/1.x-style keep-alive
// request/response client and server with pipelined requests.
//
// Everything is a deterministic state machine driven from the simulation
// loop — no goroutines, no wall clock — so experiments built on these
// workloads export byte-identically across same-seed runs. The load models
// in load.go turn the protocol machinery into measured traffic: open-loop
// (fixed-rate, arrivals independent of completions) and closed-loop
// (think-time after each completion) generators that stamp a sequence
// number on every message and account end-to-end latency, loss, and
// reordering into a stats.FlowTracker, which the loaded-handoff
// observatory then scores against handoff spans.
//
// The point, for mobility: these workloads exercise sustained TCP load
// across handoffs — the regime where zero-window stalls, retransmission
// storms, and latency spikes live — instead of the ping-like probes the
// paper (and PR 6) measured with.
package app

import "encoding/binary"

// frame is the app layer's shared stream framing: a 4-byte header (type,
// flags, big-endian body length) followed by the body. Both the MQTT-style
// protocol and tests use it; the HTTP-style protocol is text-framed.
const frameHeaderLen = 4

// maxFrameBody bounds one frame's body; a peer announcing more is a
// protocol error and the connection is dropped. Deliberately below the
// uint16 length field's ceiling so the check is reachable.
const maxFrameBody = 32 * 1024

// encodeFrame appends a framed message to dst and returns the result.
func encodeFrame(dst []byte, typ, flags byte, body []byte) []byte {
	dst = append(dst, typ, flags, byte(len(body)>>8), byte(len(body)))
	return append(dst, body...)
}

// frameReader incrementally decodes frames from stream chunks. Feed
// returns each complete frame via the callback; partial frames wait for
// more bytes. It reports false on a malformed frame (oversized body), at
// which point the caller should drop the connection.
type frameReader struct {
	buf []byte
}

func (r *frameReader) Feed(chunk []byte, deliver func(typ, flags byte, body []byte)) bool {
	r.buf = append(r.buf, chunk...)
	for len(r.buf) >= frameHeaderLen {
		n := int(binary.BigEndian.Uint16(r.buf[2:4]))
		if n > maxFrameBody {
			return false
		}
		if len(r.buf) < frameHeaderLen+n {
			return true
		}
		typ, flags := r.buf[0], r.buf[1]
		body := make([]byte, n)
		copy(body, r.buf[frameHeaderLen:frameHeaderLen+n])
		r.buf = r.buf[frameHeaderLen+n:]
		deliver(typ, flags, body)
	}
	return true
}

// appendString appends a length-prefixed string (uint16 length + bytes).
func appendString(dst []byte, s string) []byte {
	dst = append(dst, byte(len(s)>>8), byte(len(s)))
	return append(dst, s...)
}

// readString consumes a length-prefixed string from b.
func readString(b []byte) (s string, rest []byte, ok bool) {
	if len(b) < 2 {
		return "", nil, false
	}
	n := int(binary.BigEndian.Uint16(b))
	if len(b) < 2+n {
		return "", nil, false
	}
	return string(b[2 : 2+n]), b[2+n:], true
}
