package app

import (
	"bytes"
	"testing"

	"mosquitonet/internal/ip"
	"mosquitonet/internal/link"
	"mosquitonet/internal/sim"
	"mosquitonet/internal/stack"
	"mosquitonet/internal/transport"
)

// rig is two hosts with transport stacks on one Ethernet: a is the client
// side, b the server side.
type rig struct {
	loop  *sim.Loop
	a, b  *transport.Stack
	aAddr ip.Addr
	bAddr ip.Addr
}

func newRig(t *testing.T, seed int64) *rig {
	t.Helper()
	loop := sim.New(seed)
	n := link.NewNetwork(loop, "net", link.Ethernet())
	mk := func(name, addr string) *transport.Stack {
		h := stack.NewHost(loop, name, stack.Config{})
		d := link.NewDevice(loop, name+"-eth0", 0, 0)
		d.Attach(n)
		d.BringUp(nil)
		ifc := h.AddIface("eth0", d, ip.MustParseAddr(addr), ip.MustParsePrefix("10.0.0.0/24"), stack.IfaceOpts{})
		h.ConnectRoute(ifc)
		return transport.NewStack(h)
	}
	a := mk("a", "10.0.0.1")
	b := mk("b", "10.0.0.2")
	loop.RunFor(0)
	return &rig{
		loop: loop, a: a, b: b,
		aAddr: ip.MustParseAddr("10.0.0.1"),
		bAddr: ip.MustParseAddr("10.0.0.2"),
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var r frameReader
	var got []struct {
		typ, flags byte
		body       []byte
	}
	deliver := func(typ, flags byte, body []byte) {
		got = append(got, struct {
			typ, flags byte
			body       []byte
		}{typ, flags, body})
	}

	wire := encodeFrame(nil, 3, 0x5, []byte("hello"))
	wire = encodeFrame(wire, 4, 0, nil)
	// Feed byte by byte: partial frames must wait without corruption.
	for _, b := range wire {
		if !r.Feed([]byte{b}, deliver) {
			t.Fatal("well-formed frame rejected")
		}
	}
	if len(got) != 2 {
		t.Fatalf("frames decoded = %d, want 2", len(got))
	}
	if got[0].typ != 3 || got[0].flags != 0x5 || !bytes.Equal(got[0].body, []byte("hello")) {
		t.Fatalf("frame 0 = %+v", got[0])
	}
	if got[1].typ != 4 || len(got[1].body) != 0 {
		t.Fatalf("frame 1 = %+v", got[1])
	}
}

func TestFrameOversizedRejected(t *testing.T) {
	var r frameReader
	hdr := []byte{1, 0, 0xFF, 0xFF} // 65535 > maxFrameBody
	if r.Feed(hdr, func(byte, byte, []byte) {}) {
		t.Fatal("oversized frame accepted")
	}
}

func TestStringCodec(t *testing.T) {
	b := appendString(nil, "topic/a")
	b = append(b, 0xAA) // trailing byte survives
	s, rest, ok := readString(b)
	if !ok || s != "topic/a" || len(rest) != 1 || rest[0] != 0xAA {
		t.Fatalf("readString = %q %v %v", s, rest, ok)
	}
	if _, _, ok := readString([]byte{0, 5, 'a'}); ok {
		t.Fatal("truncated string accepted")
	}
}
