package app

import (
	"fmt"
	"strconv"
	"strings"

	"mosquitonet/internal/ip"
	"mosquitonet/internal/sim"
	"mosquitonet/internal/trace"
	"mosquitonet/internal/transport"
)

// The HTTP/1.x-style protocol: text-framed request/response over one
// keep-alive stream connection, with pipelining. A request is
//
//	<METHOD> <path> MNET/1.0\r\n
//	Content-Length: <n>\r\n
//	\r\n
//	<n body bytes>
//
// and a response is
//
//	MNET/1.0 <code>\r\n
//	Content-Length: <n>\r\n
//	\r\n
//	<n body bytes>
//
// The client may send any number of requests without waiting; the server
// answers strictly in order, so the client matches responses to requests
// FIFO — exactly HTTP/1.1 pipelining semantics.
const httpVersion = "MNET/1.0"

// maxHTTPHead bounds the header block of one message.
const maxHTTPHead = 4096

// HTTPRequest is one parsed request.
type HTTPRequest struct {
	Method string
	Path   string
	Body   []byte
}

// HTTPResponse is one response.
type HTTPResponse struct {
	Code int
	Body []byte
}

// HTTPHandler produces the response for one request. Handlers run inline
// in the simulation loop.
type HTTPHandler func(req HTTPRequest) HTTPResponse

// httpParser incrementally splits a text-framed message stream into
// (head lines, body) pairs.
type httpParser struct {
	buf []byte
}

// feed appends chunk and delivers every complete message. It returns false
// on a malformed message (oversized head, bad Content-Length), at which
// point the caller should drop the connection.
func (p *httpParser) feed(chunk []byte, deliver func(start string, body []byte)) bool {
	p.buf = append(p.buf, chunk...)
	for {
		head := strings.Index(string(p.buf), "\r\n\r\n")
		if head < 0 {
			return len(p.buf) <= maxHTTPHead
		}
		if head > maxHTTPHead {
			return false
		}
		lines := strings.Split(string(p.buf[:head]), "\r\n")
		clen := 0
		for _, l := range lines[1:] {
			if v, ok := strings.CutPrefix(l, "Content-Length:"); ok {
				n, err := strconv.Atoi(strings.TrimSpace(v))
				if err != nil || n < 0 || n > maxFrameBody {
					return false
				}
				clen = n
			}
		}
		total := head + 4 + clen
		if len(p.buf) < total {
			return true
		}
		body := make([]byte, clen)
		copy(body, p.buf[head+4:total])
		start := lines[0]
		p.buf = p.buf[total:]
		deliver(start, body)
	}
}

// appendHTTPRequest serializes one request.
func appendHTTPRequest(dst []byte, method, path string, body []byte) []byte {
	dst = append(dst, method...)
	dst = append(dst, ' ')
	dst = append(dst, path...)
	dst = append(dst, ' ')
	dst = append(dst, httpVersion...)
	dst = append(dst, "\r\nContent-Length: "...)
	dst = strconv.AppendInt(dst, int64(len(body)), 10)
	dst = append(dst, "\r\n\r\n"...)
	return append(dst, body...)
}

// appendHTTPResponse serializes one response.
func appendHTTPResponse(dst []byte, code int, body []byte) []byte {
	dst = append(dst, httpVersion...)
	dst = append(dst, ' ')
	dst = strconv.AppendInt(dst, int64(code), 10)
	dst = append(dst, "\r\nContent-Length: "...)
	dst = strconv.AppendInt(dst, int64(len(body)), 10)
	dst = append(dst, "\r\n\r\n"...)
	return append(dst, body...)
}

// HTTPServerStats counts server activity.
type HTTPServerStats struct {
	Accepted    uint64
	Requests    uint64
	Responses   uint64
	BadRequests uint64 // malformed message; connection dropped
	ConnsClosed uint64
}

// HTTPServer serves the request/response protocol on one TCP port with
// keep-alive connections.
type HTTPServer struct {
	ts      *transport.Stack
	loop    *sim.Loop
	name    string
	handler HTTPHandler

	listener *transport.Listener
	conns    []*httpServerConn
	stats    HTTPServerStats
}

type httpServerConn struct {
	srv    *HTTPServer
	conn   *transport.Conn
	parser httpParser
	closed bool
}

// NewHTTPServer starts a server on (bound, port). handler runs for every
// request, in arrival order.
func NewHTTPServer(ts *transport.Stack, bound ip.Addr, port uint16, name string, handler HTTPHandler) (*HTTPServer, error) {
	s := &HTTPServer{ts: ts, loop: ts.Host().Loop(), name: name, handler: handler}
	l, err := ts.Listen(bound, port, s.accept)
	if err != nil {
		return nil, err
	}
	s.listener = l
	return s, nil
}

// Stats returns a snapshot of the server's counters.
func (s *HTTPServer) Stats() HTTPServerStats { return s.stats }

// Close stops accepting and aborts every connection.
func (s *HTTPServer) Close() {
	s.listener.Close()
	for len(s.conns) > 0 {
		c := s.conns[0]
		c.close()
		c.conn.Abort()
	}
}

func (s *HTTPServer) accept(conn *transport.Conn) {
	sc := &httpServerConn{srv: s, conn: conn}
	s.stats.Accepted++
	s.conns = append(s.conns, sc)
	conn.OnData = func(chunk []byte) {
		if !sc.parser.feed(chunk, sc.request) {
			s.stats.BadRequests++
			sc.close()
			conn.Abort()
		}
	}
	conn.OnRemoteClose = func() { sc.close(); conn.Close() }
	conn.OnError = func(error) { sc.close() }
}

func (sc *httpServerConn) close() {
	if sc.closed {
		return
	}
	sc.closed = true
	sc.srv.stats.ConnsClosed++
	for i, other := range sc.srv.conns {
		if other == sc {
			sc.srv.conns = append(sc.srv.conns[:i], sc.srv.conns[i+1:]...)
			break
		}
	}
}

// request handles one parsed request line + body.
func (sc *httpServerConn) request(start string, body []byte) {
	if sc.closed {
		return
	}
	parts := strings.SplitN(start, " ", 3)
	if len(parts) != 3 || parts[2] != httpVersion {
		sc.srv.stats.BadRequests++
		sc.close()
		sc.conn.Abort()
		return
	}
	sc.srv.stats.Requests++
	resp := sc.srv.handler(HTTPRequest{Method: parts[0], Path: parts[1], Body: body})
	sc.srv.stats.Responses++
	sc.conn.Write(appendHTTPResponse(nil, resp.Code, resp.Body))
}

// HTTPClientStats counts client activity.
type HTTPClientStats struct {
	RequestsSent      uint64
	ResponsesReceived uint64
	Failed            uint64 // requests failed by connection death
}

// HTTPClient issues pipelined requests over one keep-alive connection.
type HTTPClient struct {
	ts     *transport.Stack
	loop   *sim.Loop
	tracer *trace.Tracer
	id     string

	conn    *transport.Conn
	parser  httpParser
	up      bool
	closed  bool
	onUp    func(error)
	pending []*httpPending // FIFO: responses arrive in request order

	// OnDisconnect, if set, fires when the connection dies.
	OnDisconnect func(error)

	stats HTTPClientStats
}

type httpPending struct {
	span *trace.Span
	done func(HTTPResponse, error)
}

// NewHTTPClient creates a client on the given transport stack.
func NewHTTPClient(ts *transport.Stack, id string) *HTTPClient {
	return &HTTPClient{
		ts:     ts,
		loop:   ts.Host().Loop(),
		tracer: trace.For(ts.Host().Loop()),
		id:     id,
	}
}

// Stats returns a snapshot of the client's counters.
func (c *HTTPClient) Stats() HTTPClientStats { return c.stats }

// Up reports whether the connection is established.
func (c *HTTPClient) Up() bool { return c.up }

// InFlight returns the number of requests awaiting a response.
func (c *HTTPClient) InFlight() int { return len(c.pending) }

// Connect dials the server. onUp (optional) fires when the connection is
// established, or with an error if it fails first. Requests may be issued
// immediately after Connect returns — they queue behind the handshake.
func (c *HTTPClient) Connect(server ip.Addr, port uint16, onUp func(error)) error {
	if c.closed {
		return ErrClosed
	}
	conn, err := c.ts.Connect(ip.Unspecified, server, port)
	if err != nil {
		return err
	}
	c.conn = conn
	c.onUp = onUp
	conn.OnEstablished = func() {
		c.up = true
		if c.onUp != nil {
			cb := c.onUp
			c.onUp = nil
			cb(nil)
		}
	}
	conn.OnData = func(chunk []byte) {
		if !c.parser.feed(chunk, c.response) {
			c.fail(fmt.Errorf("app: malformed response from %s:%d", server, port))
		}
	}
	conn.OnError = func(err error) { c.fail(err) }
	conn.OnRemoteClose = func() { c.fail(ErrClosed) }
	return nil
}

// Do issues one request. done fires with the response, or with an error if
// the connection dies first. Multiple outstanding requests pipeline.
func (c *HTTPClient) Do(method, path string, body []byte, done func(HTTPResponse, error)) error {
	if c.closed || c.conn == nil {
		return ErrNotConnected
	}
	// Root span: pipelined requests overlap and must not ambient-nest.
	sp := c.tracer.StartChild(nil, c.actor(), kSpanHTTPRequest)
	sp.SetAttr("path", path)
	c.pending = append(c.pending, &httpPending{span: sp, done: done})
	c.stats.RequestsSent++
	return c.conn.Write(appendHTTPRequest(nil, method, path, body))
}

func (c *HTTPClient) actor() string { return c.ts.Host().Name() + "/" + c.id }

// Close ends the session with an orderly stream close.
func (c *HTTPClient) Close() {
	if c.closed {
		return
	}
	c.closed = true
	c.up = false
	c.failPending(ErrClosed)
	if c.conn != nil {
		c.conn.Close()
	}
}

// fail marks the client dead and flushes every pending callback.
func (c *HTTPClient) fail(err error) {
	if c.closed {
		return
	}
	c.closed = true
	c.up = false
	if c.onUp != nil {
		cb := c.onUp
		c.onUp = nil
		cb(err)
	}
	c.failPending(err)
	if c.OnDisconnect != nil {
		c.OnDisconnect(err)
	}
}

func (c *HTTPClient) failPending(err error) {
	pending := c.pending
	c.pending = nil
	for _, p := range pending {
		c.stats.Failed++
		p.span.Fail(err)
		if p.done != nil {
			p.done(HTTPResponse{}, err)
		}
	}
}

// response handles one parsed response line + body, matched FIFO.
func (c *HTTPClient) response(start string, body []byte) {
	if len(c.pending) == 0 {
		return
	}
	parts := strings.SplitN(start, " ", 2)
	code := 0
	if len(parts) == 2 && parts[0] == httpVersion {
		code, _ = strconv.Atoi(strings.TrimSpace(parts[1]))
	}
	p := c.pending[0]
	c.pending = c.pending[1:]
	c.stats.ResponsesReceived++
	p.span.Done()
	if p.done != nil {
		p.done(HTTPResponse{Code: code, Body: body}, nil)
	}
}
