package app

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"mosquitonet/internal/ip"
)

const testHTTPPort = 8080

func startEcho(t *testing.T, r *rig) *HTTPServer {
	t.Helper()
	srv, err := NewHTTPServer(r.b, ip.Unspecified, testHTTPPort, "web", EchoHandler)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func dialHTTP(t *testing.T, r *rig, id string) *HTTPClient {
	t.Helper()
	c := NewHTTPClient(r.a, id)
	up := false
	if err := c.Connect(r.bAddr, testHTTPPort, func(err error) {
		if err != nil {
			t.Errorf("connect: %v", err)
		}
		up = true
	}); err != nil {
		t.Fatal(err)
	}
	r.loop.RunFor(5 * time.Second)
	if !up || !c.Up() {
		t.Fatal("client not up")
	}
	return c
}

func TestHTTPEcho(t *testing.T) {
	r := newRig(t, 1)
	srv := startEcho(t, r)
	c := dialHTTP(t, r, "cli")

	var resp HTTPResponse
	var rerr error
	c.Do("POST", "/echo", []byte("payload"), func(rp HTTPResponse, err error) { resp, rerr = rp, err })
	r.loop.RunFor(time.Second)
	if rerr != nil || resp.Code != 200 || string(resp.Body) != "payload" {
		t.Fatalf("resp = %+v err = %v", resp, rerr)
	}
	if ss := srv.Stats(); ss.Requests != 1 || ss.Responses != 1 {
		t.Fatalf("server stats = %+v", ss)
	}
}

func TestHTTPPipelining(t *testing.T) {
	r := newRig(t, 1)
	startEcho(t, r)
	c := dialHTTP(t, r, "cli")

	// Three requests issued back to back, before any response: the
	// responses must come back in request order.
	var order []string
	for i := 0; i < 3; i++ {
		body := []byte(fmt.Sprintf("req-%d", i))
		c.Do("POST", "/p", body, func(rp HTTPResponse, err error) {
			if err != nil {
				t.Errorf("request failed: %v", err)
				return
			}
			order = append(order, string(rp.Body))
		})
	}
	if c.InFlight() != 3 {
		t.Fatalf("in flight = %d", c.InFlight())
	}
	r.loop.RunFor(time.Second)
	if len(order) != 3 || order[0] != "req-0" || order[1] != "req-1" || order[2] != "req-2" {
		t.Fatalf("response order = %v", order)
	}
	if c.InFlight() != 0 {
		t.Fatalf("in flight after drain = %d", c.InFlight())
	}
}

func TestHTTPClientCloseFailsPending(t *testing.T) {
	r := newRig(t, 1)
	startEcho(t, r)
	c := dialHTTP(t, r, "cli")

	failed := 0
	c.Do("GET", "/x", nil, func(_ HTTPResponse, err error) {
		if err != nil {
			failed++
		}
	})
	c.Close() // before the loop runs: the response can never arrive
	if failed != 1 {
		t.Fatalf("pending failed = %d, want 1", failed)
	}
	if err := c.Do("GET", "/y", nil, nil); err != ErrNotConnected {
		t.Fatalf("Do after close = %v", err)
	}
}

func TestHTTPServerDropsMalformed(t *testing.T) {
	r := newRig(t, 1)
	srv := startEcho(t, r)
	conn, err := r.a.Connect(ip.Unspecified, r.bAddr, testHTTPPort)
	if err != nil {
		t.Fatal(err)
	}
	conn.OnEstablished = func() {
		conn.Write([]byte("POST /x MNET/1.0\r\nContent-Length: banana\r\n\r\n"))
	}
	r.loop.RunFor(5 * time.Second)
	if ss := srv.Stats(); ss.BadRequests != 1 || ss.ConnsClosed != 1 {
		t.Fatalf("server stats = %+v", ss)
	}
}

func TestHTTPParserSplitAcrossChunks(t *testing.T) {
	var p httpParser
	var starts []string
	var bodies [][]byte
	deliver := func(s string, b []byte) { starts = append(starts, s); bodies = append(bodies, b) }

	wire := appendHTTPRequest(nil, "POST", "/a", []byte("12345"))
	wire = appendHTTPRequest(wire, "GET", "/b", nil)
	for _, b := range wire {
		if !p.feed([]byte{b}, deliver) {
			t.Fatal("well-formed message rejected")
		}
	}
	if len(starts) != 2 || starts[0] != "POST /a MNET/1.0" || starts[1] != "GET /b MNET/1.0" {
		t.Fatalf("starts = %v", starts)
	}
	if !bytes.Equal(bodies[0], []byte("12345")) || len(bodies[1]) != 0 {
		t.Fatalf("bodies = %q", bodies)
	}
}

func TestHTTPParserRejectsOversizedHead(t *testing.T) {
	var p httpParser
	junk := bytes.Repeat([]byte("x"), maxHTTPHead+8)
	if p.feed(junk, func(string, []byte) {}) {
		t.Fatal("oversized head accepted")
	}
}
