package app

// Span kinds recorded by the application layer. All kinds are lowercase
// dotted constants (enforced tree-wide by the tracekinds analyzer); the
// loaded-handoff observatory selects them by the "app." prefix, so the
// hierarchy is part of the contract.
//
// Session-scoped spans stay open for the connection's life; operation
// spans (connect, publish, request) bound one exchange and close on its
// acknowledgment, so their virtual duration is the end-to-end application
// latency — including every transport-level stall a handoff causes.
const (
	// kSpanSession brackets one broker-side client session, accept to
	// close.
	kSpanSession = "app.mqtt.session"
	// kSpanConnect brackets a client's CONNECT -> CONNACK exchange.
	kSpanConnect = "app.mqtt.connect"
	// kSpanPublish brackets a QoS 1 PUBLISH -> PUBACK exchange at the
	// publishing client.
	kSpanPublish = "app.mqtt.publish"
	// kSpanSubscribe brackets a SUBSCRIBE -> SUBACK exchange.
	kSpanSubscribe = "app.mqtt.subscribe"
	// kSpanHTTPRequest brackets one request -> response exchange at the
	// requesting client (pipelined requests overlap).
	kSpanHTTPRequest = "app.http.request"
)
