package app

import (
	"encoding/binary"
	"time"

	"mosquitonet/internal/sim"
	"mosquitonet/internal/stats"
)

// Traffic models: generators that drive the protocol machinery at a
// controlled rate and account every message into a stats.FlowTracker.
//
// Two disciplines, per the classic load-generation distinction:
//
//   - Open loop: messages are emitted on a fixed schedule regardless of
//     completions, so a stalled connection accumulates backlog — exactly
//     how periodic telemetry behaves across a handoff, and the model that
//     exposes queueing collapse.
//   - Closed loop: a new request is issued only after the previous one
//     completes, plus a think time — the interactive-user model, which
//     self-throttles during a stall and measures recovery latency instead.
//
// Every message carries an 8-byte big-endian sequence number as its
// payload prefix; the tracker's Sent/Received pairing keys on it.

// seqPrefixLen is the sequence-number prefix on every load-model payload.
const seqPrefixLen = 8

// Payload builds a load-model payload of exactly size bytes (minimum the
// 8-byte sequence prefix) carrying seq.
func Payload(seq uint64, size int) []byte {
	if size < seqPrefixLen {
		size = seqPrefixLen
	}
	p := make([]byte, size)
	binary.BigEndian.PutUint64(p, seq)
	return p
}

// PayloadSeq extracts the sequence number from a load-model payload.
func PayloadSeq(p []byte) (uint64, bool) {
	if len(p) < seqPrefixLen {
		return 0, false
	}
	return binary.BigEndian.Uint64(p), true
}

// SinkHandler returns a message handler that records every arrival into
// tracker — the subscriber end of a PubFlow.
func SinkHandler(loop *sim.Loop, tracker *stats.FlowTracker) func(Message) {
	return func(m Message) {
		if seq, ok := PayloadSeq(m.Payload); ok {
			tracker.Received(seq, loop.Now())
		}
	}
}

// PubFlow is an open-loop telemetry publisher: every interval it publishes
// one sequence-stamped message to its topic, whether or not earlier
// publishes have completed.
type PubFlow struct {
	client   *Client
	tracker  *stats.FlowTracker
	topic    string
	interval time.Duration
	qos      byte
	size     int

	loop    *sim.Loop
	seq     uint64
	running bool
	timer   sim.Timer
}

// NewPubFlow creates a publisher flow; Start begins the schedule.
func NewPubFlow(client *Client, tracker *stats.FlowTracker, topic string, interval time.Duration, qos byte, size int) *PubFlow {
	return &PubFlow{
		client:   client,
		tracker:  tracker,
		topic:    topic,
		interval: interval,
		qos:      qos,
		size:     size,
		loop:     client.loop,
	}
}

// Start begins publishing, first message one interval from now.
func (p *PubFlow) Start() {
	if p.running {
		return
	}
	p.running = true
	p.timer = p.loop.Schedule(p.interval, p.tick)
}

// Stop halts the schedule; in-flight messages still complete.
func (p *PubFlow) Stop() {
	p.running = false
	p.timer.Stop()
}

// Sent returns the number of messages published so far.
func (p *PubFlow) Sent() uint64 { return p.seq }

func (p *PubFlow) tick() {
	if !p.running {
		return
	}
	// Open loop: the next tick is scheduled before this one's publish, so
	// the rate never depends on publish outcomes.
	p.timer = p.loop.Schedule(p.interval, p.tick)
	p.seq++
	seq := p.seq
	p.tracker.Sent(seq, p.loop.Now())
	// Publish errors (client not yet connected, torn down) leave the
	// sequence number sent-but-never-received — accounted as loss, which
	// is the honest reading of telemetry emitted into a dead session.
	_ = p.client.Publish(p.topic, Payload(seq, p.size), p.qos, false, nil)
}

// ReqFlow drives the request/response protocol, open- or closed-loop. The
// tracker's latency samples are request round-trip times.
type ReqFlow struct {
	client   *HTTPClient
	tracker  *stats.FlowTracker
	path     string
	interval time.Duration // emission period (open loop) or think time (closed loop)
	closed   bool
	size     int

	loop    *sim.Loop
	seq     uint64
	running bool
	timer   sim.Timer
}

// NewReqFlow creates a request flow; closedLoop selects the discipline.
func NewReqFlow(client *HTTPClient, tracker *stats.FlowTracker, path string, interval time.Duration, closedLoop bool, size int) *ReqFlow {
	return &ReqFlow{
		client:   client,
		tracker:  tracker,
		path:     path,
		interval: interval,
		closed:   closedLoop,
		size:     size,
		loop:     client.loop,
	}
}

// Start begins issuing requests, first one interval from now.
func (r *ReqFlow) Start() {
	if r.running {
		return
	}
	r.running = true
	r.timer = r.loop.Schedule(r.interval, r.tick)
}

// Stop halts the flow; in-flight requests still complete.
func (r *ReqFlow) Stop() {
	r.running = false
	r.timer.Stop()
}

// Sent returns the number of requests issued so far.
func (r *ReqFlow) Sent() uint64 { return r.seq }

func (r *ReqFlow) tick() {
	if !r.running {
		return
	}
	if !r.closed {
		// Open loop: fixed schedule, independent of completions.
		r.timer = r.loop.Schedule(r.interval, r.tick)
	}
	r.seq++
	seq := r.seq
	r.tracker.Sent(seq, r.loop.Now())
	err := r.client.Do("POST", r.path, Payload(seq, r.size), func(resp HTTPResponse, err error) {
		if err == nil {
			r.tracker.Received(seq, r.loop.Now())
		}
		// Closed loop: think, then issue the next request — whether this
		// one succeeded or died with the connection.
		if r.closed && r.running {
			r.timer = r.loop.Schedule(r.interval, r.tick)
		}
	})
	if err != nil && r.closed && r.running {
		// The request was never issued (client closed); keep the clock
		// ticking so the flow resumes if the client is replaced.
		r.timer = r.loop.Schedule(r.interval, r.tick)
	}
}

// EchoHandler is the standard server handler for ReqFlow traffic: echo the
// body back with code 200, so request and response sizes match.
func EchoHandler(req HTTPRequest) HTTPResponse {
	return HTTPResponse{Code: 200, Body: req.Body}
}
