package app

import (
	"testing"
	"time"

	"mosquitonet/internal/ip"
	"mosquitonet/internal/sim"
	"mosquitonet/internal/stats"
)

func TestPubFlowOpenLoop(t *testing.T) {
	r := newRig(t, 1)
	if _, err := NewBroker(r.b, ip.Unspecified, testBrokerPort, "broker"); err != nil {
		t.Fatal(err)
	}
	sub := connectClient(t, r, "sink")
	pub := connectClient(t, r, "telemetry")

	tracker := stats.NewFlowTracker("telemetry/0")
	sub.Subscribe("telemetry/0", 1, SinkHandler(r.loop, tracker), nil)
	r.loop.RunFor(time.Second)

	flow := NewPubFlow(pub, tracker, "telemetry/0", 100*time.Millisecond, 1, 64)
	flow.Start()
	r.loop.RunFor(2 * time.Second)
	flow.Stop()
	r.loop.RunFor(time.Second)

	sent, received, lost, _ := tracker.Totals()
	if sent < 18 || sent > 21 {
		t.Fatalf("open loop sent = %d, want ~20", sent)
	}
	if lost != 0 || received != sent {
		t.Fatalf("sent=%d received=%d lost=%d", sent, received, lost)
	}
	if flow.Sent() != uint64(sent) {
		t.Fatalf("flow.Sent=%d tracker=%d", flow.Sent(), sent)
	}
	if s := tracker.LatencySeries(); s.N() != received || s.Mean() <= 0 {
		t.Fatalf("latency series: n=%d mean=%v", s.N(), s.Mean())
	}
}

func TestReqFlowClosedLoop(t *testing.T) {
	r := newRig(t, 1)
	startEcho(t, r)
	c := dialHTTP(t, r, "cli")

	tracker := stats.NewFlowTracker("req/closed")
	flow := NewReqFlow(c, tracker, "/work", 100*time.Millisecond, true, 32)
	flow.Start()
	r.loop.RunFor(2 * time.Second)
	flow.Stop()
	r.loop.RunFor(time.Second)

	sent, received, lost, _ := tracker.Totals()
	if sent == 0 || lost != 0 || received != sent {
		t.Fatalf("sent=%d received=%d lost=%d", sent, received, lost)
	}
	// Closed loop: never more than one request outstanding, so the count is
	// bounded by interval (think) + RTT per request.
	if sent > 20 {
		t.Fatalf("closed loop overran: sent=%d", sent)
	}
}

func TestReqFlowOpenLoopBacklogs(t *testing.T) {
	r := newRig(t, 1)
	startEcho(t, r)
	c := dialHTTP(t, r, "cli")

	tracker := stats.NewFlowTracker("req/open")
	flow := NewReqFlow(c, tracker, "/work", 50*time.Millisecond, false, 32)
	flow.Start()
	r.loop.RunFor(time.Second)
	flow.Stop()
	r.loop.RunFor(time.Second)

	sent, received, lost, _ := tracker.Totals()
	if sent < 18 || sent > 21 {
		t.Fatalf("open loop sent = %d, want ~20", sent)
	}
	if lost != 0 || received != sent {
		t.Fatalf("sent=%d received=%d lost=%d", sent, received, lost)
	}
}

func TestReceivedBetween(t *testing.T) {
	f := stats.NewFlowTracker("x")
	for i := 1; i <= 5; i++ {
		at := sim.Time(i) * sim.Time(time.Second)
		f.Sent(uint64(i), at)
		f.Received(uint64(i), at.Add(10*time.Millisecond))
	}
	lo := sim.Time(2 * time.Second)
	hi := sim.Time(4*time.Second + 20*time.Millisecond)
	if n := f.ReceivedBetween(lo, hi); n != 3 {
		t.Fatalf("ReceivedBetween = %d, want 3", n)
	}
	if n := f.ReceivedBetween(sim.Time(9*time.Second), sim.Time(10*time.Second)); n != 0 {
		t.Fatalf("ReceivedBetween empty slice = %d", n)
	}
}
