package app

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"mosquitonet/internal/ip"
	"mosquitonet/internal/sim"
	"mosquitonet/internal/trace"
	"mosquitonet/internal/transport"
)

// The MQTT-style wire protocol: framed messages (see app.go) over one
// stream connection per client. The shape follows MQTT 3.1.1's control
// packets — CONNECT/CONNACK, SUBSCRIBE/SUBACK, PUBLISH/PUBACK — with the
// simulator's own fixed framing instead of MQTT's variable-length header.
// QoS 0 is fire-and-forget; QoS 1 carries a message ID and is acknowledged
// with a PUBACK by whichever side received the PUBLISH. There is no
// app-level retransmission: the stream below is reliable, so a QoS 1
// message in flight across a handoff is delivered exactly once — that
// invariant is pinned by the testbed's conformance test.
const (
	mqttConnect   = 1
	mqttConnAck   = 2
	mqttPublish   = 3
	mqttPubAck    = 4
	mqttSubscribe = 8
	mqttSubAck    = 9
)

// PUBLISH flag bits.
const (
	pubFlagRetain = 1 << 0
	pubFlagQoS1   = 1 << 1
	pubFlagDup    = 1 << 2
)

// App-layer errors.
var (
	ErrNotConnected = errors.New("app: client not connected")
	ErrBadTopic     = errors.New("app: malformed topic or filter")
	ErrClosed       = errors.New("app: closed")
)

// Message is one delivered publication.
type Message struct {
	Topic    string
	Payload  []byte
	QoS      byte
	Retained bool // delivered from the broker's retained store
	Dup      bool
}

// BrokerStats counts broker activity.
type BrokerStats struct {
	Connects           uint64 // CONNECT frames accepted
	Subscribes         uint64
	Publishes          uint64 // PUBLISH frames received from clients
	Delivered          uint64 // PUBLISH frames fanned out to subscribers
	RetainedDelivered  uint64 // retained messages replayed on subscribe
	PubAcksSent        uint64 // acks to publishing clients (QoS 1 inbound)
	PubAcksReceived    uint64 // acks from subscribers (QoS 1 outbound)
	SessionsClosed     uint64
	DropBadFrame       uint64 // malformed frame or oversized body; session dropped
	DropUnknownSession uint64 // frame before CONNECT; session dropped
}

// Broker is an MQTT-style pub/sub broker listening on one TCP port. All
// state lives in the simulation loop; a Broker must only be touched from
// loop callbacks.
type Broker struct {
	ts     *transport.Stack
	loop   *sim.Loop
	tracer *trace.Tracer
	name   string

	listener *transport.Listener
	sessions []*brokerSession // accept order; closed sessions removed in place
	tree     TopicTree[*brokerSub]
	nextSub  uint64
	stats    BrokerStats
}

// brokerSub is one subscription entry in the topic tree.
type brokerSub struct {
	sess *brokerSession
	qos  byte
}

// brokerSession is the broker-side state for one client connection.
type brokerSession struct {
	b          *Broker
	conn       *transport.Conn
	reader     frameReader
	clientID   string
	connected  bool
	closed     bool
	span       *trace.Span
	subs       []sessionSub
	nextMsgID  uint16
	pendingOut map[uint16]struct{} // QoS 1 deliveries awaiting PUBACK
}

type sessionSub struct {
	filter string
	id     uint64
}

// NewBroker starts a broker on (bound, port) of the given transport stack.
// The tracer is taken from the stack's loop association (trace.For), so
// testbeds that enabled tracing get app.* spans for free.
func NewBroker(ts *transport.Stack, bound ip.Addr, port uint16, name string) (*Broker, error) {
	b := &Broker{
		ts:     ts,
		loop:   ts.Host().Loop(),
		tracer: trace.For(ts.Host().Loop()),
		name:   name,
	}
	l, err := ts.Listen(bound, port, b.accept)
	if err != nil {
		return nil, err
	}
	b.listener = l
	return b, nil
}

// Stats returns a snapshot of the broker's counters.
func (b *Broker) Stats() BrokerStats { return b.stats }

// Sessions returns the number of live client sessions.
func (b *Broker) Sessions() int { return len(b.sessions) }

// Close stops accepting and aborts every session.
func (b *Broker) Close() {
	b.listener.Close()
	for len(b.sessions) > 0 {
		s := b.sessions[0]
		s.close()
		s.conn.Abort()
	}
}

func (b *Broker) accept(conn *transport.Conn) {
	s := &brokerSession{b: b, conn: conn, pendingOut: make(map[uint16]struct{})}
	s.span = b.tracer.StartChild(nil, b.name, kSpanSession)
	b.sessions = append(b.sessions, s)
	conn.OnData = func(chunk []byte) {
		if !s.reader.Feed(chunk, s.frame) {
			b.stats.DropBadFrame++
			s.drop("bad frame")
		}
	}
	conn.OnRemoteClose = func() { s.close() }
	conn.OnError = func(error) { s.close() }
}

// drop aborts a misbehaving session.
func (s *brokerSession) drop(reason string) {
	s.span.SetAttr("drop", reason)
	s.close()
	s.conn.Abort()
}

// close tears down session state (idempotent).
func (s *brokerSession) close() {
	if s.closed {
		return
	}
	s.closed = true
	s.b.stats.SessionsClosed++
	for _, sub := range s.subs {
		s.b.tree.Unsubscribe(sub.filter, sub.id)
	}
	for i, other := range s.b.sessions {
		if other == s {
			s.b.sessions = append(s.b.sessions[:i], s.b.sessions[i+1:]...)
			break
		}
	}
	s.span.Done()
}

// frame handles one decoded frame from the client.
func (s *brokerSession) frame(typ, flags byte, body []byte) {
	if s.closed {
		return
	}
	if !s.connected && typ != mqttConnect {
		s.b.stats.DropUnknownSession++
		s.drop("frame before connect")
		return
	}
	switch typ {
	case mqttConnect:
		id, _, ok := readString(body)
		if !ok {
			s.b.stats.DropBadFrame++
			s.drop("bad connect")
			return
		}
		s.clientID = id
		s.connected = true
		s.b.stats.Connects++
		s.span.SetAttr("client", id)
		s.conn.Write(encodeFrame(nil, mqttConnAck, 0, []byte{0}))
	case mqttSubscribe:
		if len(body) < 2 {
			s.b.stats.DropBadFrame++
			s.drop("bad subscribe")
			return
		}
		msgID := binary.BigEndian.Uint16(body)
		filter, rest, ok := readString(body[2:])
		if !ok || len(rest) != 1 || !ValidFilter(filter) {
			s.b.stats.DropBadFrame++
			s.drop("bad subscribe")
			return
		}
		qos := rest[0] & 1
		s.b.stats.Subscribes++
		s.b.nextSub++
		subID := s.b.nextSub
		s.b.tree.Subscribe(filter, subID, &brokerSub{sess: s, qos: qos})
		s.subs = append(s.subs, sessionSub{filter: filter, id: subID})
		s.conn.Write(encodeFrame(nil, mqttSubAck, 0, []byte{byte(msgID >> 8), byte(msgID), qos}))
		// Replay retained messages matching the new subscription, in
		// lexicographic topic order.
		for _, rm := range s.b.tree.Retained(filter) {
			s.b.stats.RetainedDelivered++
			s.deliver(rm.Topic, rm.Payload, qos, true)
		}
	case mqttPublish:
		topic, rest, ok := readString(body)
		if !ok || !ValidTopic(topic) {
			s.b.stats.DropBadFrame++
			s.drop("bad publish")
			return
		}
		qos := byte(0)
		var msgID uint16
		if flags&pubFlagQoS1 != 0 {
			if len(rest) < 2 {
				s.b.stats.DropBadFrame++
				s.drop("bad publish")
				return
			}
			qos = 1
			msgID = binary.BigEndian.Uint16(rest)
			rest = rest[2:]
		}
		s.b.stats.Publishes++
		if flags&pubFlagRetain != 0 {
			s.b.tree.SetRetained(topic, rest)
		}
		s.b.route(topic, rest, qos)
		if qos == 1 {
			s.b.stats.PubAcksSent++
			s.conn.Write(encodeFrame(nil, mqttPubAck, 0, []byte{byte(msgID >> 8), byte(msgID)}))
		}
	case mqttPubAck:
		if len(body) < 2 {
			s.b.stats.DropBadFrame++
			s.drop("bad puback")
			return
		}
		s.b.stats.PubAcksReceived++
		delete(s.pendingOut, binary.BigEndian.Uint16(body))
	default:
		s.b.stats.DropBadFrame++
		s.drop(fmt.Sprintf("unknown type %d", typ))
	}
}

// route fans a publication out to every matching subscription. Delivery
// QoS is the minimum of the publish QoS and the subscription's granted
// QoS, per MQTT.
func (b *Broker) route(topic string, payload []byte, qos byte) {
	for _, sub := range b.tree.Match(topic) {
		dq := qos
		if sub.qos < dq {
			dq = sub.qos
		}
		sub.sess.deliver(topic, payload, dq, false)
	}
}

// deliver sends one PUBLISH to this session's client.
func (s *brokerSession) deliver(topic string, payload []byte, qos byte, retained bool) {
	if s.closed {
		return
	}
	var flags byte
	if retained {
		flags |= pubFlagRetain
	}
	body := appendString(nil, topic)
	if qos == 1 {
		flags |= pubFlagQoS1
		s.nextMsgID++
		if s.nextMsgID == 0 {
			s.nextMsgID = 1
		}
		s.pendingOut[s.nextMsgID] = struct{}{}
		body = append(body, byte(s.nextMsgID>>8), byte(s.nextMsgID))
	}
	body = append(body, payload...)
	s.b.stats.Delivered++
	s.conn.Write(encodeFrame(nil, mqttPublish, flags, body))
}

// ClientStats counts client activity.
type ClientStats struct {
	PublishesSent    uint64
	PubAcksReceived  uint64
	MessagesReceived uint64
	PubAcksSent      uint64 // acks for QoS 1 deliveries from the broker
}

// Client is an MQTT-style client over one stream connection.
type Client struct {
	ts     *transport.Stack
	loop   *sim.Loop
	tracer *trace.Tracer
	id     string

	conn      *transport.Conn
	reader    frameReader
	connected bool
	closed    bool

	connectSpan *trace.Span
	onConnack   func(error)

	subs       []clientSub
	subAcks    []func() // SUBACK callbacks, FIFO
	pendingPub map[uint16]*clientPending
	nextMsgID  uint16

	// OnDisconnect, if set, fires when the connection dies (reset,
	// timeout, remote close).
	OnDisconnect func(error)

	stats ClientStats
}

type clientSub struct {
	filter  string
	handler func(Message)
}

type clientPending struct {
	span  *trace.Span
	onAck func()
}

// NewClient creates a client on the given transport stack. Call Connect to
// dial the broker.
func NewClient(ts *transport.Stack, id string) *Client {
	return &Client{
		ts:         ts,
		loop:       ts.Host().Loop(),
		tracer:     trace.For(ts.Host().Loop()),
		id:         id,
		pendingPub: make(map[uint16]*clientPending),
	}
}

// Stats returns a snapshot of the client's counters.
func (c *Client) Stats() ClientStats { return c.stats }

// Connected reports whether the CONNACK has been received.
func (c *Client) Connected() bool { return c.connected }

// Connect dials the broker (binding to the unspecified address, so the
// connection is subject to mobile IP on a mobile host and survives moves)
// and sends CONNECT. onConnack fires when the CONNACK arrives, or with an
// error if the connection fails first.
func (c *Client) Connect(broker ip.Addr, port uint16, onConnack func(error)) error {
	if c.closed {
		return ErrClosed
	}
	conn, err := c.ts.Connect(ip.Unspecified, broker, port)
	if err != nil {
		return err
	}
	c.conn = conn
	c.onConnack = onConnack
	c.connectSpan = c.tracer.StartChild(nil, c.actor(), kSpanConnect)
	conn.OnEstablished = func() {
		conn.Write(encodeFrame(nil, mqttConnect, 0, appendString(nil, c.id)))
	}
	conn.OnData = func(chunk []byte) {
		if !c.reader.Feed(chunk, c.frame) {
			c.fail(errors.New("app: malformed frame from broker"))
		}
	}
	conn.OnError = func(err error) { c.fail(err) }
	conn.OnRemoteClose = func() { c.fail(ErrClosed) }
	return nil
}

func (c *Client) actor() string { return c.ts.Host().Name() + "/" + c.id }

// fail marks the client dead and flushes every pending callback.
func (c *Client) fail(err error) {
	if c.closed {
		return
	}
	c.closed = true
	c.connected = false
	if c.connectSpan.Open() {
		c.connectSpan.Fail(err)
	}
	if c.onConnack != nil {
		cb := c.onConnack
		c.onConnack = nil
		cb(err)
	}
	flushPending(c.pendingPub, err)
	if c.OnDisconnect != nil {
		c.OnDisconnect(err)
	}
}

// Close ends the session with an orderly stream close.
func (c *Client) Close() {
	if c.closed {
		return
	}
	c.closed = true
	c.connected = false
	c.connectSpan.Done()
	flushPending(c.pendingPub, ErrClosed)
	if c.conn != nil {
		c.conn.Close()
	}
}

// Subscribe registers a handler for every publication matching filter and
// sends SUBSCRIBE. onAck (optional) fires on SUBACK. QoS 1 deliveries are
// acknowledged automatically.
func (c *Client) Subscribe(filter string, qos byte, handler func(Message), onAck func()) error {
	if !c.connected {
		return ErrNotConnected
	}
	if !ValidFilter(filter) {
		return ErrBadTopic
	}
	// Root span: overlapping operations must not ambient-nest.
	sp := c.tracer.StartChild(nil, c.actor(), kSpanSubscribe)
	sp.SetAttr("filter", filter)
	c.subs = append(c.subs, clientSub{filter: filter, handler: handler})
	c.subAcks = append(c.subAcks, func() {
		sp.Done()
		if onAck != nil {
			onAck()
		}
	})
	c.nextMsgID++
	body := []byte{byte(c.nextMsgID >> 8), byte(c.nextMsgID)}
	body = appendString(body, filter)
	body = append(body, qos&1)
	c.conn.Write(encodeFrame(nil, mqttSubscribe, 0, body))
	return nil
}

// Publish sends a publication. For QoS 1 the message carries a message ID
// and onAck (optional) fires when the broker's PUBACK arrives; for QoS 0
// onAck fires immediately after the frame is queued.
func (c *Client) Publish(topic string, payload []byte, qos byte, retain bool, onAck func()) error {
	if !c.connected {
		return ErrNotConnected
	}
	if !ValidTopic(topic) {
		return ErrBadTopic
	}
	var flags byte
	if retain {
		flags |= pubFlagRetain
	}
	body := appendString(nil, topic)
	if qos == 1 {
		flags |= pubFlagQoS1
		c.nextMsgID++
		if c.nextMsgID == 0 {
			c.nextMsgID = 1
		}
		sp := c.tracer.StartChild(nil, c.actor(), kSpanPublish)
		sp.SetAttr("topic", topic)
		c.pendingPub[c.nextMsgID] = &clientPending{span: sp, onAck: onAck}
		body = append(body, byte(c.nextMsgID>>8), byte(c.nextMsgID))
	}
	body = append(body, payload...)
	c.stats.PublishesSent++
	c.conn.Write(encodeFrame(nil, mqttPublish, flags, body))
	if qos != 1 && onAck != nil {
		onAck()
	}
	return nil
}

// InFlight returns the number of QoS 1 publishes awaiting PUBACK.
func (c *Client) InFlight() int { return len(c.pendingPub) }

// frame handles one decoded frame from the broker.
func (c *Client) frame(typ, flags byte, body []byte) {
	switch typ {
	case mqttConnAck:
		c.connected = true
		c.connectSpan.Done()
		if c.onConnack != nil {
			cb := c.onConnack
			c.onConnack = nil
			cb(nil)
		}
	case mqttSubAck:
		if len(c.subAcks) > 0 {
			ack := c.subAcks[0]
			c.subAcks = c.subAcks[1:]
			ack()
		}
	case mqttPublish:
		topic, rest, ok := readString(body)
		if !ok {
			return
		}
		qos := byte(0)
		if flags&pubFlagQoS1 != 0 {
			if len(rest) < 2 {
				return
			}
			qos = 1
			msgID := binary.BigEndian.Uint16(rest)
			rest = rest[2:]
			c.stats.PubAcksSent++
			c.conn.Write(encodeFrame(nil, mqttPubAck, 0, []byte{byte(msgID >> 8), byte(msgID)}))
		}
		c.stats.MessagesReceived++
		m := Message{
			Topic:    topic,
			Payload:  rest,
			QoS:      qos,
			Retained: flags&pubFlagRetain != 0,
			Dup:      flags&pubFlagDup != 0,
		}
		for _, sub := range c.subs {
			if MatchFilter(sub.filter, topic) && sub.handler != nil {
				sub.handler(m)
			}
		}
	case mqttPubAck:
		if len(body) < 2 {
			return
		}
		id := binary.BigEndian.Uint16(body)
		if p, ok := c.pendingPub[id]; ok {
			delete(c.pendingPub, id)
			c.stats.PubAcksReceived++
			p.span.Done()
			if p.onAck != nil {
				p.onAck()
			}
		}
	}
}

// flushPending fails every outstanding QoS 1 publish, in message-ID order
// so callback order is deterministic.
func flushPending(pending map[uint16]*clientPending, err error) {
	if len(pending) == 0 {
		return
	}
	ids := make([]int, 0, len(pending))
	for id := range pending {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	for _, id := range ids {
		p := pending[uint16(id)]
		delete(pending, uint16(id))
		p.span.Fail(err)
	}
}
