package app

import (
	"bytes"
	"testing"
	"time"

	"mosquitonet/internal/ip"
)

const testBrokerPort = 1883

// connectClient dials the rig's broker from stack a and runs the loop until
// the CONNACK lands.
func connectClient(t *testing.T, r *rig, id string) *Client {
	t.Helper()
	c := NewClient(r.a, id)
	var connErr error
	acked := false
	if err := c.Connect(r.bAddr, testBrokerPort, func(err error) { connErr = err; acked = true }); err != nil {
		t.Fatal(err)
	}
	r.loop.RunFor(5 * time.Second)
	if !acked || connErr != nil {
		t.Fatalf("connect: acked=%v err=%v", acked, connErr)
	}
	if !c.Connected() {
		t.Fatal("client not connected")
	}
	return c
}

func TestMQTTPubSubQoS0(t *testing.T) {
	r := newRig(t, 1)
	broker, err := NewBroker(r.b, ip.Unspecified, testBrokerPort, "broker")
	if err != nil {
		t.Fatal(err)
	}
	sub := connectClient(t, r, "sub")
	pub := connectClient(t, r, "pub")

	var got []Message
	subAcked := false
	sub.Subscribe("sensors/+/temp", 0, func(m Message) { got = append(got, m) }, func() { subAcked = true })
	r.loop.RunFor(time.Second)
	if !subAcked {
		t.Fatal("no SUBACK")
	}

	pub.Publish("sensors/mh1/temp", []byte("21.5"), 0, false, nil)
	pub.Publish("sensors/mh1/hum", []byte("60"), 0, false, nil) // no match
	r.loop.RunFor(time.Second)

	if len(got) != 1 || got[0].Topic != "sensors/mh1/temp" || string(got[0].Payload) != "21.5" {
		t.Fatalf("delivered = %+v", got)
	}
	bs := broker.Stats()
	if bs.Connects != 2 || bs.Publishes != 2 || bs.Delivered != 1 {
		t.Fatalf("broker stats = %+v", bs)
	}
	if broker.Sessions() != 2 {
		t.Fatalf("sessions = %d", broker.Sessions())
	}
}

func TestMQTTQoS1PublishAcked(t *testing.T) {
	r := newRig(t, 1)
	broker, err := NewBroker(r.b, ip.Unspecified, testBrokerPort, "broker")
	if err != nil {
		t.Fatal(err)
	}
	pub := connectClient(t, r, "pub")

	acks := 0
	pub.Publish("cmd/x", []byte("go"), 1, false, func() { acks++ })
	if pub.InFlight() != 1 {
		t.Fatalf("in flight = %d", pub.InFlight())
	}
	r.loop.RunFor(time.Second)
	if acks != 1 || pub.InFlight() != 0 {
		t.Fatalf("acks=%d inflight=%d", acks, pub.InFlight())
	}
	if bs := broker.Stats(); bs.PubAcksSent != 1 {
		t.Fatalf("broker PubAcksSent = %d", bs.PubAcksSent)
	}
	if cs := pub.Stats(); cs.PubAcksReceived != 1 {
		t.Fatalf("client PubAcksReceived = %d", cs.PubAcksReceived)
	}
}

func TestMQTTQoS1Delivery(t *testing.T) {
	r := newRig(t, 1)
	broker, err := NewBroker(r.b, ip.Unspecified, testBrokerPort, "broker")
	if err != nil {
		t.Fatal(err)
	}
	sub := connectClient(t, r, "sub")
	pub := connectClient(t, r, "pub")

	var got []Message
	sub.Subscribe("cmd/#", 1, func(m Message) { got = append(got, m) }, nil)
	r.loop.RunFor(time.Second)
	pub.Publish("cmd/mh1", []byte("switch"), 1, false, nil)
	r.loop.RunFor(time.Second)

	if len(got) != 1 || got[0].QoS != 1 {
		t.Fatalf("delivered = %+v", got)
	}
	// The subscriber auto-acks the broker's QoS 1 delivery.
	if bs := broker.Stats(); bs.PubAcksReceived != 1 {
		t.Fatalf("broker PubAcksReceived = %d", bs.PubAcksReceived)
	}
	// QoS merge: a QoS 0 subscription downgrades a QoS 1 publish.
	var lo []Message
	sub.Subscribe("low/#", 0, func(m Message) { lo = append(lo, m) }, nil)
	r.loop.RunFor(time.Second)
	pub.Publish("low/x", []byte("y"), 1, false, nil)
	r.loop.RunFor(time.Second)
	if len(lo) != 1 || lo[0].QoS != 0 {
		t.Fatalf("merged delivery = %+v", lo)
	}
}

func TestMQTTRetained(t *testing.T) {
	r := newRig(t, 1)
	if _, err := NewBroker(r.b, ip.Unspecified, testBrokerPort, "broker"); err != nil {
		t.Fatal(err)
	}
	pub := connectClient(t, r, "pub")
	pub.Publish("status/ch", []byte("up"), 0, true, nil)
	r.loop.RunFor(time.Second)

	// A subscriber arriving later still sees the retained state.
	sub := connectClient(t, r, "sub")
	var got []Message
	sub.Subscribe("status/#", 0, func(m Message) { got = append(got, m) }, nil)
	r.loop.RunFor(time.Second)
	if len(got) != 1 || !got[0].Retained || string(got[0].Payload) != "up" {
		t.Fatalf("retained delivery = %+v", got)
	}
}

func TestMQTTSessionCleanup(t *testing.T) {
	r := newRig(t, 1)
	broker, err := NewBroker(r.b, ip.Unspecified, testBrokerPort, "broker")
	if err != nil {
		t.Fatal(err)
	}
	sub := connectClient(t, r, "sub")
	pub := connectClient(t, r, "pub")
	sub.Subscribe("t/#", 0, func(Message) {}, nil)
	r.loop.RunFor(time.Second)

	sub.Close()
	r.loop.RunFor(5 * time.Second)
	if broker.Sessions() != 1 {
		t.Fatalf("sessions after close = %d", broker.Sessions())
	}
	// The closed session's subscription is gone: publish fans out to no one.
	before := broker.Stats().Delivered
	pub.Publish("t/x", []byte("y"), 0, false, nil)
	r.loop.RunFor(time.Second)
	if broker.Stats().Delivered != before {
		t.Fatal("publish delivered to a closed session")
	}
}

func TestMQTTBadFrameDropsSession(t *testing.T) {
	r := newRig(t, 1)
	broker, err := NewBroker(r.b, ip.Unspecified, testBrokerPort, "broker")
	if err != nil {
		t.Fatal(err)
	}
	// A raw TCP client that speaks garbage: oversized frame header.
	conn, err := r.a.Connect(ip.Unspecified, r.bAddr, testBrokerPort)
	if err != nil {
		t.Fatal(err)
	}
	conn.OnEstablished = func() { conn.Write([]byte{1, 0, 0xFF, 0xFF}) }
	r.loop.RunFor(5 * time.Second)
	bs := broker.Stats()
	if bs.DropBadFrame != 1 || broker.Sessions() != 0 {
		t.Fatalf("DropBadFrame=%d sessions=%d", bs.DropBadFrame, broker.Sessions())
	}
}

func TestMQTTLargePayloadSpansSegments(t *testing.T) {
	r := newRig(t, 1)
	if _, err := NewBroker(r.b, ip.Unspecified, testBrokerPort, "broker"); err != nil {
		t.Fatal(err)
	}
	sub := connectClient(t, r, "sub")
	pub := connectClient(t, r, "pub")
	var got []Message
	sub.Subscribe("bulk", 1, func(m Message) { got = append(got, m) }, nil)
	r.loop.RunFor(time.Second)

	// 5000 bytes crosses several MSS-sized segments; framing must reassemble.
	payload := bytes.Repeat([]byte{0xAB}, 5000)
	pub.Publish("bulk", payload, 1, false, nil)
	r.loop.RunFor(5 * time.Second)
	if len(got) != 1 {
		t.Fatalf("messages = %d, want 1", len(got))
	}
	if !bytes.Equal(got[0].Payload, payload) {
		t.Fatalf("payload corrupted: len=%d", len(got[0].Payload))
	}
}
