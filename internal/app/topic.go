package app

import (
	"sort"
	"strings"
)

// TopicTree is an MQTT-style topic trie mapping subscription filters to
// values of type V and exact topics to retained payloads. Filters use "/"
// separated levels with two wildcards: "+" matches exactly one level,
// "#" (final level only) matches the remainder of the topic, including
// zero levels.
//
// Matching and retained-message enumeration are deterministic: Match
// visits exact children before "+" before "#", and subscriptions in
// registration order; Retained enumerates topics in lexicographic order.
type TopicTree[V any] struct {
	root topicNode[V]
}

type topicNode[V any] struct {
	children map[string]*topicNode[V]
	subs     []topicSub[V]
	retained []byte // nil when no retained message is stored at this topic
	hasRet   bool
}

type topicSub[V any] struct {
	id  uint64
	val V
}

// SplitTopic splits a topic into its levels.
func SplitTopic(topic string) []string { return strings.Split(topic, "/") }

// ValidFilter reports whether a subscription filter is well-formed: no
// empty string, "+" only as a whole level, "#" only as the final level.
func ValidFilter(filter string) bool {
	if filter == "" {
		return false
	}
	levels := SplitTopic(filter)
	for i, l := range levels {
		if strings.ContainsAny(l, "+#") && len(l) != 1 {
			return false
		}
		if l == "#" && i != len(levels)-1 {
			return false
		}
	}
	return true
}

// ValidTopic reports whether a publish topic is well-formed: non-empty and
// wildcard-free.
func ValidTopic(topic string) bool {
	return topic != "" && !strings.ContainsAny(topic, "+#")
}

// Subscribe adds val under filter and returns a subscription id for
// Unsubscribe. Caller is responsible for filter validity.
func (t *TopicTree[V]) Subscribe(filter string, id uint64, val V) {
	n := &t.root
	for _, level := range SplitTopic(filter) {
		if n.children == nil {
			n.children = make(map[string]*topicNode[V])
		}
		c := n.children[level]
		if c == nil {
			c = &topicNode[V]{}
			n.children[level] = c
		}
		n = c
	}
	n.subs = append(n.subs, topicSub[V]{id: id, val: val})
}

// Unsubscribe removes every subscription under filter whose id matches.
func (t *TopicTree[V]) Unsubscribe(filter string, id uint64) {
	n := &t.root
	for _, level := range SplitTopic(filter) {
		c := n.children[level]
		if c == nil {
			return
		}
		n = c
	}
	kept := n.subs[:0]
	for _, s := range n.subs {
		if s.id != id {
			kept = append(kept, s)
		}
	}
	n.subs = kept
}

// Match returns the values of every subscription whose filter matches
// topic, in deterministic order (trie order: exact level, then "+", then
// "#"; registration order within a node). A subscriber registered under
// several matching filters appears once per filter — the broker's QoS
// merge is the caller's business.
func (t *TopicTree[V]) Match(topic string) []V {
	var out []V
	t.root.match(SplitTopic(topic), &out)
	return out
}

func (n *topicNode[V]) match(levels []string, out *[]V) {
	if len(levels) == 0 {
		for _, s := range n.subs {
			*out = append(*out, s.val)
		}
		// "a/b" also matches the filter "a/b/#" (zero remaining levels).
		if c := n.children["#"]; c != nil {
			for _, s := range c.subs {
				*out = append(*out, s.val)
			}
		}
		return
	}
	if c := n.children[levels[0]]; c != nil && levels[0] != "+" && levels[0] != "#" {
		c.match(levels[1:], out)
	}
	if c := n.children["+"]; c != nil {
		c.match(levels[1:], out)
	}
	if c := n.children["#"]; c != nil {
		for _, s := range c.subs {
			*out = append(*out, s.val)
		}
	}
}

// MatchFilter reports whether a single subscription filter matches a topic,
// without a tree — used for client-side dispatch of inbound publications.
func MatchFilter(filter, topic string) bool {
	fl, tl := SplitTopic(filter), SplitTopic(topic)
	for i, f := range fl {
		if f == "#" {
			return true
		}
		if i >= len(tl) {
			return false
		}
		if f != "+" && f != tl[i] {
			return false
		}
	}
	return len(fl) == len(tl)
}

// SetRetained stores payload as topic's retained message; an empty payload
// clears it, per MQTT convention.
func (t *TopicTree[V]) SetRetained(topic string, payload []byte) {
	n := &t.root
	for _, level := range SplitTopic(topic) {
		if n.children == nil {
			n.children = make(map[string]*topicNode[V])
		}
		c := n.children[level]
		if c == nil {
			c = &topicNode[V]{}
			n.children[level] = c
		}
		n = c
	}
	if len(payload) == 0 {
		n.retained, n.hasRet = nil, false
		return
	}
	n.retained = append([]byte(nil), payload...)
	n.hasRet = true
}

// RetainedMessage is one stored retained message.
type RetainedMessage struct {
	Topic   string
	Payload []byte
}

// Retained returns every retained message whose topic matches filter, in
// lexicographic topic order.
func (t *TopicTree[V]) Retained(filter string) []RetainedMessage {
	var out []RetainedMessage
	t.root.retainedMatching(SplitTopic(filter), "", &out)
	sort.Slice(out, func(i, j int) bool { return out[i].Topic < out[j].Topic })
	return out
}

func (n *topicNode[V]) retainedMatching(filter []string, prefix string, out *[]RetainedMessage) {
	if len(filter) == 0 {
		if n.hasRet {
			*out = append(*out, RetainedMessage{Topic: prefix, Payload: append([]byte(nil), n.retained...)})
		}
		return
	}
	join := func(level string) string {
		if prefix == "" {
			return level
		}
		return prefix + "/" + level
	}
	switch filter[0] {
	case "#":
		n.collectRetained(prefix, out)
	case "+":
		keys := make([]string, 0, len(n.children))
		for k := range n.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			n.children[k].retainedMatching(filter[1:], join(k), out)
		}
	default:
		if c := n.children[filter[0]]; c != nil {
			c.retainedMatching(filter[1:], join(filter[0]), out)
		}
	}
}

// collectRetained gathers every retained message in the subtree.
func (n *topicNode[V]) collectRetained(prefix string, out *[]RetainedMessage) {
	if n.hasRet {
		*out = append(*out, RetainedMessage{Topic: prefix, Payload: append([]byte(nil), n.retained...)})
	}
	keys := make([]string, 0, len(n.children))
	for k := range n.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		p := k
		if prefix != "" {
			p = prefix + "/" + k
		}
		n.children[k].collectRetained(p, out)
	}
}
