package app

import (
	"reflect"
	"testing"
)

func TestValidFilter(t *testing.T) {
	valid := []string{"a", "a/b", "+", "#", "a/+/c", "a/b/#", "+/+", "a//b"}
	invalid := []string{"", "a/#/b", "a+", "a#", "a/b+", "#/a"}
	for _, f := range valid {
		if !ValidFilter(f) {
			t.Errorf("ValidFilter(%q) = false", f)
		}
	}
	for _, f := range invalid {
		if ValidFilter(f) {
			t.Errorf("ValidFilter(%q) = true", f)
		}
	}
	if !ValidTopic("a/b/c") || ValidTopic("") || ValidTopic("a/+") || ValidTopic("a/#") {
		t.Error("ValidTopic misclassifies")
	}
}

func TestMatchFilter(t *testing.T) {
	cases := []struct {
		filter, topic string
		want          bool
	}{
		{"a/b", "a/b", true},
		{"a/b", "a/c", false},
		{"a/+", "a/b", true},
		{"a/+", "a/b/c", false},
		{"a/#", "a/b/c", true},
		{"a/#", "a", true}, // "#" matches zero remaining levels
		{"#", "x/y/z", true},
		{"+/b", "a/b", true},
		{"a/b", "a/b/c", false},
		{"a/b/c", "a/b", false},
	}
	for _, c := range cases {
		if got := MatchFilter(c.filter, c.topic); got != c.want {
			t.Errorf("MatchFilter(%q, %q) = %v, want %v", c.filter, c.topic, got, c.want)
		}
	}
}

func TestTopicTreeMatchOrder(t *testing.T) {
	var tree TopicTree[string]
	tree.Subscribe("s/temp", 1, "exact")
	tree.Subscribe("s/+", 2, "plus")
	tree.Subscribe("s/#", 3, "hash")
	tree.Subscribe("other", 4, "other")

	got := tree.Match("s/temp")
	want := []string{"exact", "plus", "hash"} // trie order: exact, "+", "#"
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Match = %v, want %v", got, want)
	}
	if got := tree.Match("s"); !reflect.DeepEqual(got, []string{"hash"}) {
		t.Fatalf("Match(s) = %v, want [hash] (# matches zero levels)", got)
	}
	if got := tree.Match("nomatch"); len(got) != 0 {
		t.Fatalf("Match(nomatch) = %v", got)
	}
}

func TestTopicTreeUnsubscribe(t *testing.T) {
	var tree TopicTree[int]
	tree.Subscribe("a/+", 1, 100)
	tree.Subscribe("a/+", 2, 200)
	tree.Unsubscribe("a/+", 1)
	if got := tree.Match("a/x"); !reflect.DeepEqual(got, []int{200}) {
		t.Fatalf("after unsubscribe: %v", got)
	}
	tree.Unsubscribe("never/registered", 9) // no-op on unknown filter
}

func TestRetained(t *testing.T) {
	var tree TopicTree[int]
	tree.SetRetained("s/b/temp", []byte("2"))
	tree.SetRetained("s/a/temp", []byte("1"))
	tree.SetRetained("s/a/hum", []byte("h"))

	got := tree.Retained("s/+/temp")
	if len(got) != 2 || got[0].Topic != "s/a/temp" || got[1].Topic != "s/b/temp" {
		t.Fatalf("Retained(s/+/temp) = %v", got)
	}
	all := tree.Retained("#")
	if len(all) != 3 || all[0].Topic != "s/a/hum" || all[1].Topic != "s/a/temp" || all[2].Topic != "s/b/temp" {
		t.Fatalf("Retained(#) not in lexicographic order: %v", all)
	}
	// Empty payload clears, per MQTT convention.
	tree.SetRetained("s/a/temp", nil)
	if got := tree.Retained("s/a/temp"); len(got) != 0 {
		t.Fatalf("cleared retained still present: %v", got)
	}
}
