// Package arena provides slab allocation for long-lived simulation
// objects. A Slab[T] hands out *T values carved from fixed-size chunks,
// so constructing a 100k-host fleet costs one heap allocation per chunk
// of hosts instead of one per host — the garbage collector then tracks
// thousands of chunks instead of millions of individual objects.
//
// Slabs never free individual objects: a chunk stays reachable while any
// object in it is alive, and is collected as a whole once all of its
// objects die. That is the right trade for topology objects (hosts,
// interfaces) which live exactly as long as their simulation.
package arena

import "sync"

// Slab allocates values of T out of chunks of the configured size. The
// zero Slab is not usable; use NewSlab. A Slab is safe for concurrent use;
// in practice topology construction is single-threaded and the mutex is
// uncontended.
type Slab[T any] struct {
	mu    sync.Mutex
	cur   []T
	next  int
	chunk int
}

// NewSlab returns a slab carving chunks of the given size (minimum 1).
func NewSlab[T any](chunk int) *Slab[T] {
	if chunk < 1 {
		chunk = 1
	}
	return &Slab[T]{chunk: chunk}
}

// Get returns a pointer to a fresh zero value of T. The slab retains no
// reference to chunks it has filled, so fully dead chunks are collected
// normally.
func (s *Slab[T]) Get() *T {
	s.mu.Lock()
	if s.next == len(s.cur) {
		s.cur = make([]T, s.chunk)
		s.next = 0
	}
	p := &s.cur[s.next]
	s.next++
	s.mu.Unlock()
	return p
}
