package arena

import "testing"

func TestSlabGetDistinct(t *testing.T) {
	s := NewSlab[int](4)
	seen := make(map[*int]bool)
	for i := 0; i < 10; i++ {
		p := s.Get()
		if *p != 0 {
			t.Fatalf("Get() returned non-zero value %d", *p)
		}
		if seen[p] {
			t.Fatalf("Get() returned the same pointer twice")
		}
		seen[p] = true
		*p = i + 1
	}
	// Writing through one pointer must not disturb the others.
	for p, ok := range seen {
		if !ok || *p == 0 {
			t.Fatalf("slab value clobbered")
		}
	}
}

func TestSlabChunkClamp(t *testing.T) {
	s := NewSlab[byte](0)
	if s.chunk != 1 {
		t.Fatalf("chunk = %d, want clamp to 1", s.chunk)
	}
	a, b := s.Get(), s.Get()
	if a == b {
		t.Fatalf("Get() returned the same pointer twice")
	}
}
