// Package arp implements the Address Resolution Protocol over the
// simulated link layer: the 28-byte Ethernet/IPv4 wire format, a per-device
// cache with expiry and retry, pending-packet queues, gratuitous ARP, and
// published (proxy) entries.
//
// Proxy and gratuitous ARP are not optional extras here: they are the
// mechanism by which a MosquitoNet home agent intercepts packets addressed
// to a mobile host that has left home. On registration the home agent
// publishes the mobile host's home address (answering ARP requests for it
// with the agent's own hardware address) and broadcasts a gratuitous ARP to
// void stale entries in neighbors' caches.
package arp

import (
	"encoding/binary"
	"errors"
	"sort"
	"time"

	"mosquitonet/internal/bufpool"
	"mosquitonet/internal/ip"
	"mosquitonet/internal/link"
	"mosquitonet/internal/sim"
)

// Op is an ARP operation code.
type Op uint16

// ARP operations.
const (
	OpRequest Op = 1
	OpReply   Op = 2
)

// MessageLen is the length of an Ethernet/IPv4 ARP message.
const MessageLen = 28

// Message is a parsed ARP message.
type Message struct {
	Op       Op
	SenderHW link.HWAddr
	SenderIP ip.Addr
	TargetHW link.HWAddr
	TargetIP ip.Addr
}

// IsGratuitous reports whether the message is a gratuitous announcement
// (sender announcing its own binding: sender IP equals target IP).
func (m *Message) IsGratuitous() bool { return m.SenderIP == m.TargetIP }

// Marshal serializes the message in the standard wire format
// (htype=1 Ethernet, ptype=0x0800 IPv4, hlen=6, plen=4).
func (m *Message) Marshal() []byte {
	b := make([]byte, MessageLen)
	binary.BigEndian.PutUint16(b[0:], 1)      // htype: Ethernet
	binary.BigEndian.PutUint16(b[2:], 0x0800) // ptype: IPv4
	b[4] = 6                                  // hlen
	b[5] = 4                                  // plen
	binary.BigEndian.PutUint16(b[6:], uint16(m.Op))
	copy(b[8:14], m.SenderHW[:])
	copy(b[14:18], m.SenderIP[:])
	copy(b[18:24], m.TargetHW[:])
	copy(b[24:28], m.TargetIP[:])
	return b
}

// Unmarshal errors.
var (
	ErrShortMessage = errors.New("arp: truncated message")
	ErrBadFormat    = errors.New("arp: unsupported hardware or protocol type")
)

// Unmarshal parses an ARP message, validating the type/length fields.
func Unmarshal(b []byte) (*Message, error) {
	if len(b) < MessageLen {
		return nil, ErrShortMessage
	}
	if binary.BigEndian.Uint16(b[0:]) != 1 || binary.BigEndian.Uint16(b[2:]) != 0x0800 ||
		b[4] != 6 || b[5] != 4 {
		return nil, ErrBadFormat
	}
	m := &Message{Op: Op(binary.BigEndian.Uint16(b[6:]))}
	copy(m.SenderHW[:], b[8:14])
	copy(m.SenderIP[:], b[14:18])
	copy(m.TargetHW[:], b[18:24])
	copy(m.TargetIP[:], b[24:28])
	return m, nil
}

// Config tunes cache behaviour. Zero values select the defaults.
type Config struct {
	EntryTTL       time.Duration // lifetime of a resolved entry (default 10m)
	RequestTimeout time.Duration // retransmit interval for requests (default 1s)
	MaxRetries     int           // requests sent before giving up (default 3)
	MaxPending     int           // packets queued per unresolved address (default 32)
}

func (c Config) withDefaults() Config {
	if c.EntryTTL == 0 {
		c.EntryTTL = 10 * time.Minute
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = time.Second
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.MaxPending == 0 {
		c.MaxPending = 32
	}
	return c
}

// Stats counts cache activity.
type Stats struct {
	RequestsSent    uint64
	RepliesSent     uint64
	ProxyReplies    uint64 // replies sent on behalf of published addresses
	ResolveFailures uint64 // addresses given up on after retries
	PacketsDropped  uint64 // queued packets dropped (failure or overflow)
	GratuitousSent  uint64
	DropMalformed   uint64 // received ARP frames that failed to parse
}

type entry struct {
	addr    ip.Addr
	hw      link.HWAddr
	expires sim.Time
}

// staticExpiry marks an entry that never ages out (AddStatic).
const staticExpiry = sim.Time(1<<62 - 1)

// queued is one packet waiting for address resolution: the marshaled IP
// payload plus its lifecycle trace ID, so the trace survives the queue.
type queued struct {
	payload []byte
	trace   uint64
}

// retryLaneGranularity buckets ARP retransmit timers: at 10ms against a
// default 1s timeout the rounding is negligible, and on a busy segment the
// many per-request timers (almost all of which are cancelled by a prompt
// reply) share heap events instead of each costing one.
const retryLaneGranularity = 10 * time.Millisecond

type pending struct {
	payloads []queued
	tries    int
	timer    sim.LaneTimer
}

// Cache is a per-device ARP resolver and responder.
type Cache struct {
	loop *sim.Loop
	dev  *link.Device
	cfg  Config

	// localAddrs reports the device's own IP addresses; the cache answers
	// requests for any of them.
	localAddrs func() []ip.Addr

	// entries is the resolution table packed into a slice sorted by
	// address and binary-searched: a fleet host's cache holds a handful
	// of neighbors and a router's a few hundred, and packing them avoids
	// a map bucket plus per-entry overhead for every neighbor on every
	// device in the fleet. published is packed the same way; pend is a
	// lazily allocated map because unresolved addresses are transient.
	entries   []entry
	pend      map[ip.Addr]*pending
	published []ip.Addr
	stats     Stats
}

// New creates a cache resolving on dev. localAddrs is consulted live on
// every request so address changes (the whole point of mobile IP) take
// effect immediately.
func New(loop *sim.Loop, dev *link.Device, cfg Config, localAddrs func() []ip.Addr) *Cache {
	return &Cache{
		loop:       loop,
		dev:        dev,
		cfg:        cfg.withDefaults(),
		localAddrs: localAddrs,
	}
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// addrOrd orders addresses numerically for the packed tables.
func addrOrd(a ip.Addr) uint32 { return binary.BigEndian.Uint32(a[:]) }

// findEntry binary-searches the packed table: the index where a is (or
// would be inserted), and whether it is present.
func (c *Cache) findEntry(a ip.Addr) (int, bool) {
	i := sort.Search(len(c.entries), func(i int) bool { return addrOrd(c.entries[i].addr) >= addrOrd(a) })
	return i, i < len(c.entries) && c.entries[i].addr == a
}

// setEntry inserts or updates the packed entry for a.
func (c *Cache) setEntry(a ip.Addr, hw link.HWAddr, expires sim.Time) {
	i, ok := c.findEntry(a)
	if ok {
		c.entries[i].hw, c.entries[i].expires = hw, expires
		return
	}
	c.entries = append(c.entries, entry{})
	copy(c.entries[i+1:], c.entries[i:])
	c.entries[i] = entry{addr: a, hw: hw, expires: expires}
}

// Lookup returns the cached hardware address for a, if fresh.
func (c *Cache) Lookup(a ip.Addr) (link.HWAddr, bool) {
	i, ok := c.findEntry(a)
	if !ok || c.loop.Now() > c.entries[i].expires {
		return link.HWAddr{}, false
	}
	return c.entries[i].hw, true
}

// AddStatic installs a non-expiring entry. The home agent uses this to
// keep a mapping for a registered mobile host in its own cache.
func (c *Cache) AddStatic(a ip.Addr, hw link.HWAddr) {
	c.setEntry(a, hw, staticExpiry)
}

// Delete removes any entry for a.
func (c *Cache) Delete(a ip.Addr) {
	if i, ok := c.findEntry(a); ok {
		c.entries = append(c.entries[:i], c.entries[i+1:]...)
	}
}

// Publish makes the cache answer requests for a with this device's own
// hardware address — proxy ARP, the home agent's interception mechanism.
func (c *Cache) Publish(a ip.Addr) {
	i := sort.Search(len(c.published), func(i int) bool { return addrOrd(c.published[i]) >= addrOrd(a) })
	if i < len(c.published) && c.published[i] == a {
		return
	}
	c.published = append(c.published, ip.Addr{})
	copy(c.published[i+1:], c.published[i:])
	c.published[i] = a
}

// Unpublish stops proxying for a.
func (c *Cache) Unpublish(a ip.Addr) {
	i := sort.Search(len(c.published), func(i int) bool { return addrOrd(c.published[i]) >= addrOrd(a) })
	if i < len(c.published) && c.published[i] == a {
		c.published = append(c.published[:i], c.published[i+1:]...)
	}
}

// Published reports whether a is currently proxied.
func (c *Cache) Published(a ip.Addr) bool {
	i := sort.Search(len(c.published), func(i int) bool { return addrOrd(c.published[i]) >= addrOrd(a) })
	return i < len(c.published) && c.published[i] == a
}

// SendIP transmits an IPv4 payload to dst, resolving its hardware address
// first if necessary. Packets to unresolved addresses are queued (up to
// MaxPending) and flushed when the reply arrives; if resolution fails after
// MaxRetries requests, they are dropped. trace is the packet's lifecycle
// trace ID (zero if untraced), carried onto the resulting frame.
//
// SendIP takes ownership of payload: once it returns, the buffer may have
// been recycled into bufpool (immediately on the resolved path, later when
// a queued packet is flushed or dropped), so callers must not retain it.
//
//mnet:ownership takes payload
func (c *Cache) SendIP(dst ip.Addr, payload []byte, trace uint64) {
	if hw, ok := c.Lookup(dst); ok {
		c.dev.Send(&link.Frame{Dst: hw, Type: link.EtherTypeIPv4, Payload: payload, Trace: trace})
		bufpool.Put(payload) // Send's transmit copy is synchronous
		return
	}
	p := c.pend[dst]
	if p == nil {
		p = &pending{}
		if c.pend == nil {
			c.pend = make(map[ip.Addr]*pending)
		}
		c.pend[dst] = p
		c.sendRequest(dst, p)
	}
	if len(p.payloads) >= c.cfg.MaxPending {
		c.stats.PacketsDropped++
		bufpool.Put(payload)
		return
	}
	p.payloads = append(p.payloads, queued{payload: payload, trace: trace})
}

// SendBroadcastIP transmits an IPv4 payload to the link broadcast address.
// Like SendIP it takes ownership of payload.
//
//mnet:ownership takes payload
func (c *Cache) SendBroadcastIP(payload []byte, trace uint64) {
	c.dev.Send(&link.Frame{Dst: link.BroadcastHW, Type: link.EtherTypeIPv4, Payload: payload, Trace: trace})
	bufpool.Put(payload)
}

func (c *Cache) sendRequest(dst ip.Addr, p *pending) {
	p.tries++
	m := &Message{
		Op:       OpRequest,
		SenderHW: c.dev.HW(),
		SenderIP: c.senderIP(),
		TargetIP: dst,
	}
	c.stats.RequestsSent++
	c.dev.Send(&link.Frame{Dst: link.BroadcastHW, Type: link.EtherTypeARP, Payload: m.Marshal()})
	p.timer = c.loop.Lane(retryLaneGranularity).Schedule(c.cfg.RequestTimeout, func() {
		cur, ok := c.pend[dst]
		if !ok || cur != p {
			return
		}
		if p.tries >= c.cfg.MaxRetries {
			c.stats.ResolveFailures++
			c.stats.PacketsDropped += uint64(len(p.payloads))
			for _, q := range p.payloads {
				bufpool.Put(q.payload)
			}
			delete(c.pend, dst)
			return
		}
		c.sendRequest(dst, p)
	})
}

// senderIP picks the address to advertise in our requests.
func (c *Cache) senderIP() ip.Addr {
	if addrs := c.localAddrs(); len(addrs) > 0 {
		return addrs[0]
	}
	return ip.Unspecified
}

// Gratuitous broadcasts a gratuitous ARP binding a to hw. The home agent
// calls this with the mobile host's home address and the agent's own
// hardware address to void stale neighbor cache entries; a returning
// mobile host calls it with its own.
func (c *Cache) Gratuitous(a ip.Addr, hw link.HWAddr) {
	m := &Message{Op: OpRequest, SenderHW: hw, SenderIP: a, TargetHW: link.HWAddr{}, TargetIP: a}
	c.stats.GratuitousSent++
	c.dev.Send(&link.Frame{Dst: link.BroadcastHW, Type: link.EtherTypeARP, Payload: m.Marshal()})
}

// HandleFrame processes a received ARP frame (requests and replies),
// updating the cache and answering requests for local or published
// addresses. Malformed messages are dropped silently, as on a real link.
func (c *Cache) HandleFrame(f *link.Frame) {
	m, err := Unmarshal(f.Payload)
	if err != nil {
		c.stats.DropMalformed++
		return
	}
	// Merge/update (RFC 826 flavored): refresh an existing mapping for the
	// sender unconditionally — this is how gratuitous ARP voids stale
	// entries — and create one if the message is addressed to us.
	isLocal := c.isLocal(m.TargetIP)
	if !m.SenderIP.IsUnspecified() {
		if _, have := c.findEntry(m.SenderIP); have || isLocal {
			c.learn(m.SenderIP, m.SenderHW)
		}
	}
	// Flush any packets waiting on the sender's address.
	if p, ok := c.pend[m.SenderIP]; ok {
		p.timer.Stop()
		delete(c.pend, m.SenderIP)
		c.learn(m.SenderIP, m.SenderHW)
		for _, q := range p.payloads {
			c.dev.Send(&link.Frame{Dst: m.SenderHW, Type: link.EtherTypeIPv4, Payload: q.payload, Trace: q.trace})
			bufpool.Put(q.payload)
		}
	}
	if m.Op != OpRequest || m.IsGratuitous() {
		//lint:allow dropaccounting frame fully consumed by the cache merge above; replies are only owed to requests
		return
	}
	switch {
	case isLocal:
		c.reply(m)
		c.stats.RepliesSent++
	case c.Published(m.TargetIP):
		c.reply(m)
		c.stats.ProxyReplies++
	}
}

func (c *Cache) isLocal(a ip.Addr) bool {
	for _, l := range c.localAddrs() {
		if l == a {
			return true
		}
	}
	return false
}

func (c *Cache) learn(a ip.Addr, hw link.HWAddr) {
	if i, ok := c.findEntry(a); ok && c.entries[i].expires == staticExpiry {
		c.entries[i].hw = hw // static entries keep their lifetime but track moves
		return
	}
	c.setEntry(a, hw, c.loop.Now().Add(c.cfg.EntryTTL))
}

func (c *Cache) reply(req *Message) {
	m := &Message{
		Op:       OpReply,
		SenderHW: c.dev.HW(),
		SenderIP: req.TargetIP,
		TargetHW: req.SenderHW,
		TargetIP: req.SenderIP,
	}
	c.dev.Send(&link.Frame{Dst: req.SenderHW, Type: link.EtherTypeARP, Payload: m.Marshal()})
}
