package arp

import (
	"testing"
	"testing/quick"
	"time"

	"mosquitonet/internal/ip"
	"mosquitonet/internal/link"
	"mosquitonet/internal/sim"
)

// host bundles a device and its ARP cache with a fixed address list.
type host struct {
	dev   *link.Device
	cache *Cache
	addrs []ip.Addr
	rxIP  [][]byte
}

func newHost(t *testing.T, loop *sim.Loop, n *link.Network, name, addr string, cfg Config) *host {
	t.Helper()
	h := &host{dev: link.NewDevice(loop, name, 0, 0)}
	if addr != "" {
		h.addrs = []ip.Addr{ip.MustParseAddr(addr)}
	}
	h.cache = New(loop, h.dev, cfg, func() []ip.Addr { return h.addrs })
	h.dev.SetReceiver(func(f *link.Frame) {
		switch f.Type {
		case link.EtherTypeARP:
			h.cache.HandleFrame(f)
		case link.EtherTypeIPv4:
			h.rxIP = append(h.rxIP, f.Payload)
		}
	})
	h.dev.Attach(n)
	h.dev.BringUp(nil)
	loop.RunFor(0)
	return h
}

func TestMessageRoundTrip(t *testing.T) {
	m := &Message{
		Op:       OpReply,
		SenderHW: link.HWAddr{1, 2, 3, 4, 5, 6},
		SenderIP: ip.MustParseAddr("10.0.0.1"),
		TargetHW: link.HWAddr{7, 8, 9, 10, 11, 12},
		TargetIP: ip.MustParseAddr("10.0.0.2"),
	}
	got, err := Unmarshal(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if *got != *m {
		t.Fatalf("round trip: %+v vs %+v", got, m)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(make([]byte, 10)); err != ErrShortMessage {
		t.Errorf("short: %v", err)
	}
	b := (&Message{Op: OpRequest}).Marshal()
	b[0] = 0xff // htype
	if _, err := Unmarshal(b); err != ErrBadFormat {
		t.Errorf("bad htype: %v", err)
	}
}

func TestPropertyMessageRoundTrip(t *testing.T) {
	f := func(op uint16, shw, thw [6]byte, sip, tip [4]byte) bool {
		m := &Message{Op: Op(op), SenderHW: shw, SenderIP: sip, TargetHW: thw, TargetIP: tip}
		got, err := Unmarshal(m.Marshal())
		return err == nil && *got == *m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestResolveAndDeliver(t *testing.T) {
	loop := sim.New(1)
	n := link.NewNetwork(loop, "net", link.Ethernet())
	a := newHost(t, loop, n, "a", "10.0.0.1", Config{})
	b := newHost(t, loop, n, "b", "10.0.0.2", Config{})

	a.cache.SendIP(ip.MustParseAddr("10.0.0.2"), []byte("payload"), 0)
	loop.RunFor(time.Second)

	if len(b.rxIP) != 1 || string(b.rxIP[0]) != "payload" {
		t.Fatalf("b received %v", b.rxIP)
	}
	if hw, ok := a.cache.Lookup(ip.MustParseAddr("10.0.0.2")); !ok || hw != b.dev.HW() {
		t.Fatal("a did not learn b's address")
	}
	// b should have learned a's mapping from the request (it was the target).
	if hw, ok := b.cache.Lookup(ip.MustParseAddr("10.0.0.1")); !ok || hw != a.dev.HW() {
		t.Fatal("b did not learn a's address from the request")
	}
}

func TestCachedSendSkipsRequest(t *testing.T) {
	loop := sim.New(1)
	n := link.NewNetwork(loop, "net", link.Ethernet())
	a := newHost(t, loop, n, "a", "10.0.0.1", Config{})
	b := newHost(t, loop, n, "b", "10.0.0.2", Config{})
	a.cache.SendIP(b.addrs[0], []byte("1"), 0)
	loop.RunFor(time.Second)
	before := a.cache.Stats().RequestsSent
	a.cache.SendIP(b.addrs[0], []byte("2"), 0)
	loop.RunFor(time.Second)
	if a.cache.Stats().RequestsSent != before {
		t.Fatal("second send issued another request")
	}
	if len(b.rxIP) != 2 {
		t.Fatalf("b received %d packets", len(b.rxIP))
	}
}

func TestQueueMultipleWhileResolving(t *testing.T) {
	loop := sim.New(1)
	n := link.NewNetwork(loop, "net", link.Ethernet())
	a := newHost(t, loop, n, "a", "10.0.0.1", Config{})
	b := newHost(t, loop, n, "b", "10.0.0.2", Config{})
	for i := 0; i < 3; i++ {
		a.cache.SendIP(b.addrs[0], []byte{byte('0' + i)}, 0)
	}
	loop.RunFor(time.Second)
	if len(b.rxIP) != 3 {
		t.Fatalf("b received %d packets, want 3", len(b.rxIP))
	}
	if a.cache.Stats().RequestsSent != 1 {
		t.Fatalf("requests sent = %d, want 1", a.cache.Stats().RequestsSent)
	}
}

func TestPendingOverflowDrops(t *testing.T) {
	loop := sim.New(1)
	n := link.NewNetwork(loop, "net", link.Ethernet())
	a := newHost(t, loop, n, "a", "10.0.0.1", Config{MaxPending: 2})
	for i := 0; i < 5; i++ {
		a.cache.SendIP(ip.MustParseAddr("10.0.0.99"), []byte{byte(i)}, 0) // no such host
	}
	if a.cache.Stats().PacketsDropped != 3 {
		t.Fatalf("dropped = %d, want 3 overflow drops", a.cache.Stats().PacketsDropped)
	}
}

func TestResolutionFailureAfterRetries(t *testing.T) {
	loop := sim.New(1)
	n := link.NewNetwork(loop, "net", link.Ethernet())
	a := newHost(t, loop, n, "a", "10.0.0.1", Config{RequestTimeout: 100 * time.Millisecond, MaxRetries: 3})
	a.cache.SendIP(ip.MustParseAddr("10.0.0.99"), []byte("lost"), 0)
	loop.RunFor(time.Second)
	st := a.cache.Stats()
	if st.RequestsSent != 3 {
		t.Fatalf("requests = %d, want 3", st.RequestsSent)
	}
	if st.ResolveFailures != 1 || st.PacketsDropped != 1 {
		t.Fatalf("failures=%d dropped=%d", st.ResolveFailures, st.PacketsDropped)
	}
	// A host that appears later must be resolvable afresh.
	b := newHost(t, loop, n, "b", "10.0.0.99", Config{})
	a.cache.SendIP(b.addrs[0], []byte("now"), 0)
	loop.RunFor(time.Second)
	if len(b.rxIP) != 1 {
		t.Fatal("later resolution failed")
	}
}

func TestEntryExpiry(t *testing.T) {
	loop := sim.New(1)
	n := link.NewNetwork(loop, "net", link.Ethernet())
	a := newHost(t, loop, n, "a", "10.0.0.1", Config{EntryTTL: time.Second})
	b := newHost(t, loop, n, "b", "10.0.0.2", Config{})
	a.cache.SendIP(b.addrs[0], []byte("x"), 0)
	loop.RunFor(500 * time.Millisecond)
	if _, ok := a.cache.Lookup(b.addrs[0]); !ok {
		t.Fatal("entry missing before TTL")
	}
	loop.RunFor(time.Second)
	if _, ok := a.cache.Lookup(b.addrs[0]); ok {
		t.Fatal("entry survived past TTL")
	}
}

func TestProxyARP(t *testing.T) {
	loop := sim.New(1)
	n := link.NewNetwork(loop, "net", link.Ethernet())
	a := newHost(t, loop, n, "a", "10.0.0.1", Config{})
	ha := newHost(t, loop, n, "ha", "10.0.0.250", Config{})
	mobile := ip.MustParseAddr("10.0.0.7") // not present on the link

	ha.cache.Publish(mobile)
	if !ha.cache.Published(mobile) {
		t.Fatal("Published() false after Publish")
	}
	a.cache.SendIP(mobile, []byte("for the mobile host"), 0)
	loop.RunFor(time.Second)

	// The proxy answered with its own hardware address, so the packet
	// lands on the home agent.
	if len(ha.rxIP) != 1 {
		t.Fatalf("proxy received %d packets", len(ha.rxIP))
	}
	if hw, ok := a.cache.Lookup(mobile); !ok || hw != ha.dev.HW() {
		t.Fatal("a's cache does not map the mobile address to the proxy")
	}
	if ha.cache.Stats().ProxyReplies != 1 {
		t.Fatalf("ProxyReplies = %d", ha.cache.Stats().ProxyReplies)
	}

	ha.cache.Unpublish(mobile)
	a.cache.Delete(mobile)
	a.cache.SendIP(mobile, []byte("after unpublish"), 0)
	loop.RunFor(2 * time.Second)
	if len(ha.rxIP) != 1 {
		t.Fatal("proxy still answering after Unpublish")
	}
}

// TestGratuitousARPVoidsStaleEntries is the paper's home-agent scenario:
// hosts on the home subnet hold an ARP entry for the mobile host; when it
// leaves and the home agent takes over, a gratuitous ARP must repoint those
// entries at the agent.
func TestGratuitousARPVoidsStaleEntries(t *testing.T) {
	loop := sim.New(1)
	n := link.NewNetwork(loop, "net", link.Ethernet())
	ch := newHost(t, loop, n, "ch", "10.0.0.1", Config{})
	mh := newHost(t, loop, n, "mh", "10.0.0.7", Config{})
	ha := newHost(t, loop, n, "ha", "10.0.0.250", Config{})

	// Correspondent talks to the mobile host directly while it is home.
	ch.cache.SendIP(mh.addrs[0], []byte("direct"), 0)
	loop.RunFor(time.Second)
	if hw, _ := ch.cache.Lookup(mh.addrs[0]); hw != mh.dev.HW() {
		t.Fatal("setup: ch should map mh to mh's hardware")
	}

	// Mobile host leaves; home agent proxies and broadcasts gratuitous ARP.
	mh.dev.BringDown()
	ha.cache.Publish(mh.addrs[0])
	ha.cache.Gratuitous(mh.addrs[0], ha.dev.HW())
	loop.RunFor(time.Second)

	if hw, ok := ch.cache.Lookup(mh.addrs[0]); !ok || hw != ha.dev.HW() {
		t.Fatalf("stale entry not voided: %v %v", hw, ok)
	}
	ch.cache.SendIP(mh.addrs[0], []byte("via proxy"), 0)
	loop.RunFor(time.Second)
	if len(ha.rxIP) != 1 {
		t.Fatal("packet did not reach the home agent after gratuitous ARP")
	}
}

func TestGratuitousDoesNotCreateEntries(t *testing.T) {
	loop := sim.New(1)
	n := link.NewNetwork(loop, "net", link.Ethernet())
	a := newHost(t, loop, n, "a", "10.0.0.1", Config{})
	b := newHost(t, loop, n, "b", "10.0.0.2", Config{})
	b.cache.Gratuitous(b.addrs[0], b.dev.HW())
	loop.RunFor(time.Second)
	// a had no entry for b, so the gratuitous ARP should not create one
	// (only update existing mappings).
	if _, ok := a.cache.Lookup(b.addrs[0]); ok {
		t.Fatal("gratuitous ARP created a fresh entry")
	}
}

func TestStaticEntry(t *testing.T) {
	loop := sim.New(1)
	n := link.NewNetwork(loop, "net", link.Ethernet())
	a := newHost(t, loop, n, "a", "10.0.0.1", Config{EntryTTL: time.Millisecond})
	hw := link.HWAddr{9, 9, 9, 9, 9, 9}
	target := ip.MustParseAddr("10.0.0.55")
	a.cache.AddStatic(target, hw)
	loop.RunFor(time.Hour)
	if got, ok := a.cache.Lookup(target); !ok || got != hw {
		t.Fatal("static entry expired")
	}
	a.cache.Delete(target)
	if _, ok := a.cache.Lookup(target); ok {
		t.Fatal("Delete did not remove static entry")
	}
}

func TestRequestForOtherHostIgnored(t *testing.T) {
	loop := sim.New(1)
	n := link.NewNetwork(loop, "net", link.Ethernet())
	a := newHost(t, loop, n, "a", "10.0.0.1", Config{})
	b := newHost(t, loop, n, "b", "10.0.0.2", Config{})
	_ = b
	c := newHost(t, loop, n, "c", "10.0.0.3", Config{})
	a.cache.SendIP(b.addrs[0], []byte("x"), 0)
	loop.RunFor(time.Second)
	if c.cache.Stats().RepliesSent != 0 {
		t.Fatal("c answered a request for b")
	}
}

func TestBroadcastIP(t *testing.T) {
	loop := sim.New(1)
	n := link.NewNetwork(loop, "net", link.Ethernet())
	a := newHost(t, loop, n, "a", "10.0.0.1", Config{})
	b := newHost(t, loop, n, "b", "10.0.0.2", Config{})
	c := newHost(t, loop, n, "c", "10.0.0.3", Config{})
	a.cache.SendBroadcastIP([]byte("dhcp discover"), 0)
	loop.RunFor(time.Second)
	if len(b.rxIP) != 1 || len(c.rxIP) != 1 {
		t.Fatalf("broadcast reached b=%d c=%d", len(b.rxIP), len(c.rxIP))
	}
	if a.cache.Stats().RequestsSent != 0 {
		t.Fatal("broadcast send triggered ARP")
	}
}

func TestMalformedFrameIgnored(t *testing.T) {
	loop := sim.New(1)
	n := link.NewNetwork(loop, "net", link.Ethernet())
	a := newHost(t, loop, n, "a", "10.0.0.1", Config{})
	a.cache.HandleFrame(&link.Frame{Type: link.EtherTypeARP, Payload: []byte{1, 2, 3}})
	if len(a.cache.entries) != 0 {
		t.Fatal("malformed frame mutated cache")
	}
}

// TestAddressTakeover models the same-subnet address switch of the paper's
// first experiment: the mobile host adopts a new address and announces it;
// traffic to the new address must reach it without waiting for cache
// timeouts.
func TestAddressTakeover(t *testing.T) {
	loop := sim.New(1)
	n := link.NewNetwork(loop, "net", link.Ethernet())
	ch := newHost(t, loop, n, "ch", "10.0.0.1", Config{})
	mh := newHost(t, loop, n, "mh", "10.0.0.7", Config{})

	newAddr := ip.MustParseAddr("10.0.0.8")
	mh.addrs = []ip.Addr{newAddr} // rebind
	ch.cache.SendIP(newAddr, []byte("to the new address"), 0)
	loop.RunFor(time.Second)
	if len(mh.rxIP) != 1 {
		t.Fatalf("mh received %d packets at its new address", len(mh.rxIP))
	}
}
