package arp

import (
	"testing"

	"mosquitonet/internal/ip"
	"mosquitonet/internal/link"
)

// FuzzUnmarshal asserts the ARP parser never panics and accepted messages
// survive a Marshal∘Unmarshal round trip unchanged.
func FuzzUnmarshal(f *testing.F) {
	req := &Message{
		Op:       OpRequest,
		SenderHW: link.HWAddr{2, 0, 0, 0, 0, 1},
		SenderIP: ip.Addr{10, 0, 0, 1},
		TargetIP: ip.Addr{10, 0, 0, 2},
	}
	f.Add(req.Marshal())
	rep := &Message{
		Op:       OpReply,
		SenderHW: link.HWAddr{2, 0, 0, 0, 0, 2},
		SenderIP: ip.Addr{10, 0, 0, 2},
		TargetHW: link.HWAddr{2, 0, 0, 0, 0, 1},
		TargetIP: ip.Addr{10, 0, 0, 1},
	}
	f.Add(rep.Marshal())
	f.Add([]byte{0, 1})
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := Unmarshal(b)
		if err != nil {
			return
		}
		m2, err := Unmarshal(m.Marshal())
		if err != nil {
			t.Fatalf("re-marshaled message failed to parse: %v", err)
		}
		if *m2 != *m {
			t.Fatalf("round trip changed message: %+v -> %+v", m, m2)
		}
	})
}
