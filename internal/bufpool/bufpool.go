// Package bufpool provides size-classed recycling of the transient byte
// buffers the packet path burns through: marshal scratch space, frame
// payload copies, fragment assembly. The simulator is single-threaded per
// loop, but pools are shared process-wide (tests run loops on several
// goroutines), so the implementation rides on sync.Pool.
//
// Buffers are pooled as pointers to fixed-size arrays, so a steady-state
// Get/Put cycle performs no allocation at all — no interface boxing, no
// slice-header heap traffic.
//
// Ownership rules (documented at each call site, summarized here):
//
//   - Get(n) returns a zero-prefixed-length buffer of len n; the caller
//     owns it until it either Puts it back or hands it to an API that
//     documents taking ownership.
//   - Put only buffers obtained from Get, and only once; the contents may
//     be reused immediately by anyone.
//   - Never Put a buffer that protocol state may retain (packet payloads
//     handed to ip.Unmarshal are copied there, so wire buffers are safe to
//     recycle after the synchronous delivery chain returns).
//
// Contents of a Get buffer are NOT zeroed; callers overwrite every byte
// they marshal (and all users here do).
package bufpool

import "sync"

// Size classes are powers of two from 64 B to 64 KiB: small control
// messages (ARP is 28 B), full Ethernet frames (1500 B + headers), and
// worst-case reassembled IP packets (65535 B).
const (
	minShift   = 6
	maxShift   = 16
	numClasses = maxShift - minShift + 1
)

//lint:allow nosharedstate sync.Pool is concurrency-safe by contract and buffer reuse never influences simulated behaviour; cross-shard frame payloads are explicitly allowed to Get on one shard and Put on another
var pools = [numClasses]sync.Pool{
	{New: func() any { return new([1 << (minShift + 0)]byte) }},
	{New: func() any { return new([1 << (minShift + 1)]byte) }},
	{New: func() any { return new([1 << (minShift + 2)]byte) }},
	{New: func() any { return new([1 << (minShift + 3)]byte) }},
	{New: func() any { return new([1 << (minShift + 4)]byte) }},
	{New: func() any { return new([1 << (minShift + 5)]byte) }},
	{New: func() any { return new([1 << (minShift + 6)]byte) }},
	{New: func() any { return new([1 << (minShift + 7)]byte) }},
	{New: func() any { return new([1 << (minShift + 8)]byte) }},
	{New: func() any { return new([1 << (minShift + 9)]byte) }},
	{New: func() any { return new([1 << (minShift + 10)]byte) }},
}

// class returns the smallest size class holding n bytes, or -1 if n
// exceeds the largest class.
func class(n int) int {
	size := 1 << minShift
	for c := 0; c < numClasses; c++ {
		if n <= size {
			return c
		}
		size <<= 1
	}
	return -1
}

// Get returns a buffer of length n backed by a pooled array. Requests
// larger than the largest size class fall back to a plain allocation
// (which Put will decline to recycle).
//
//mnet:ownership returns-pooled
func Get(n int) []byte {
	c := class(n)
	if c < 0 {
		return make([]byte, n)
	}
	switch b := pools[c].Get().(type) {
	case *[1 << (minShift + 0)]byte:
		return b[:n]
	case *[1 << (minShift + 1)]byte:
		return b[:n]
	case *[1 << (minShift + 2)]byte:
		return b[:n]
	case *[1 << (minShift + 3)]byte:
		return b[:n]
	case *[1 << (minShift + 4)]byte:
		return b[:n]
	case *[1 << (minShift + 5)]byte:
		return b[:n]
	case *[1 << (minShift + 6)]byte:
		return b[:n]
	case *[1 << (minShift + 7)]byte:
		return b[:n]
	case *[1 << (minShift + 8)]byte:
		return b[:n]
	case *[1 << (minShift + 9)]byte:
		return b[:n]
	default:
		return b.(*[1 << (minShift + 10)]byte)[:n]
	}
}

// Put recycles a buffer obtained from Get. Buffers whose capacity is not
// exactly a size class (oversize fallbacks, foreign slices) are dropped for
// the garbage collector instead. Put(nil) is a no-op.
func Put(b []byte) {
	switch cap(b) {
	case 1 << (minShift + 0):
		pools[0].Put((*[1 << (minShift + 0)]byte)(b[:cap(b)]))
	case 1 << (minShift + 1):
		pools[1].Put((*[1 << (minShift + 1)]byte)(b[:cap(b)]))
	case 1 << (minShift + 2):
		pools[2].Put((*[1 << (minShift + 2)]byte)(b[:cap(b)]))
	case 1 << (minShift + 3):
		pools[3].Put((*[1 << (minShift + 3)]byte)(b[:cap(b)]))
	case 1 << (minShift + 4):
		pools[4].Put((*[1 << (minShift + 4)]byte)(b[:cap(b)]))
	case 1 << (minShift + 5):
		pools[5].Put((*[1 << (minShift + 5)]byte)(b[:cap(b)]))
	case 1 << (minShift + 6):
		pools[6].Put((*[1 << (minShift + 6)]byte)(b[:cap(b)]))
	case 1 << (minShift + 7):
		pools[7].Put((*[1 << (minShift + 7)]byte)(b[:cap(b)]))
	case 1 << (minShift + 8):
		pools[8].Put((*[1 << (minShift + 8)]byte)(b[:cap(b)]))
	case 1 << (minShift + 9):
		pools[9].Put((*[1 << (minShift + 9)]byte)(b[:cap(b)]))
	case 1 << (minShift + 10):
		pools[10].Put((*[1 << (minShift + 10)]byte)(b[:cap(b)]))
	}
}
