package bufpool

import "testing"

func TestGetLengthAndClassCap(t *testing.T) {
	for _, n := range []int{0, 1, 28, 64, 65, 1500, 65535, 65536} {
		b := Get(n)
		if len(b) != n {
			t.Fatalf("Get(%d) len=%d", n, len(b))
		}
		if n <= 1<<maxShift && (cap(b)&(cap(b)-1)) != 0 {
			t.Fatalf("Get(%d) cap=%d not a power of two", n, cap(b))
		}
		Put(b)
	}
}

func TestOversizeFallsBack(t *testing.T) {
	b := Get(1<<maxShift + 1)
	if len(b) != 1<<maxShift+1 {
		t.Fatalf("oversize Get len=%d", len(b))
	}
	Put(b) // must not panic, silently dropped
}

func TestPutNilNoop(t *testing.T) {
	Put(nil)
}

func TestRecycleRoundTrip(t *testing.T) {
	b := Get(100)
	for i := range b {
		b[i] = 0xAB
	}
	Put(b)
	c := Get(100)
	if cap(c) != 128 {
		t.Fatalf("cap=%d, want 128", cap(c))
	}
	Put(c)
}

func TestSteadyStateGetPutDoesNotAllocate(t *testing.T) {
	// Warm each class once.
	Put(Get(1500))
	allocs := testing.AllocsPerRun(1000, func() {
		b := Get(1500)
		b[0] = 1
		Put(b)
	})
	if allocs != 0 {
		t.Fatalf("Get/Put allocated %.1f objects/op, want 0", allocs)
	}
}
