// Package capture is the simulator's tcpdump: it taps broadcast domains,
// decodes frames (ARP, IPv4, UDP — including DHCP, DNS and mobile-IP
// registration traffic — ICMP, TCP, and nested IP-in-IP), and renders
// one-line summaries. It exists for debugging topologies and for watching
// the protocol work (cmd/mnet -dump).
package capture

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"mosquitonet/internal/arp"
	"mosquitonet/internal/dhcp"
	"mosquitonet/internal/dns"
	"mosquitonet/internal/ip"
	"mosquitonet/internal/link"
	"mosquitonet/internal/mip"
	"mosquitonet/internal/sim"
)

// Entry is one captured frame.
type Entry struct {
	At      sim.Time `json:"at_ns"`
	Network string   `json:"network"`
	Line    string   `json:"line"`
}

func (e Entry) String() string {
	return fmt.Sprintf("%12v %-12s %s", e.At, e.Network, e.Line)
}

// Capture accumulates decoded frames from one or more networks.
type Capture struct {
	loop    *sim.Loop
	entries []Entry
	max     int
	// Hook, if set, observes entries as they are captured (live dumping).
	Hook func(Entry)
}

// New creates a capture buffer holding up to max entries (0 = unlimited).
func New(loop *sim.Loop, max int) *Capture {
	return &Capture{loop: loop, max: max}
}

// Attach taps a network; every transmitted frame is decoded and recorded.
func (c *Capture) Attach(n *link.Network) {
	name := n.Name()
	n.AddTap(func(_ *link.Device, f *link.Frame) {
		e := Entry{At: c.loop.Now(), Network: name, Line: FormatFrame(f)}
		if c.max == 0 || len(c.entries) < c.max {
			c.entries = append(c.entries, e)
		}
		if c.Hook != nil {
			c.Hook(e)
		}
	})
}

// Entries returns the captured entries in order.
func (c *Capture) Entries() []Entry { return append([]Entry(nil), c.entries...) }

// Len returns the number of captured entries.
func (c *Capture) Len() int { return len(c.entries) }

// Reset discards captured entries.
func (c *Capture) Reset() { c.entries = c.entries[:0] }

// Find returns entries whose line contains the substring.
func (c *Capture) Find(substr string) []Entry {
	var out []Entry
	for _, e := range c.entries {
		if strings.Contains(e.Line, substr) {
			out = append(out, e)
		}
	}
	return out
}

// WriteJSONL writes the capture as one JSON object per line, in capture
// order — the machine-readable twin of String, byte-identical across
// same-seed runs.
func (c *Capture) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range c.entries {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}

// String renders the whole capture.
func (c *Capture) String() string {
	var b strings.Builder
	for _, e := range c.entries {
		fmt.Fprintln(&b, e)
	}
	return b.String()
}

// FormatFrame decodes one frame into a tcpdump-style line.
func FormatFrame(f *link.Frame) string {
	switch f.Type {
	case link.EtherTypeARP:
		return formatARP(f.Payload)
	case link.EtherTypeIPv4:
		pkt, err := ip.Unmarshal(f.Payload)
		if err != nil {
			return fmt.Sprintf("ip [malformed: %v]", err)
		}
		return FormatPacket(pkt)
	default:
		return fmt.Sprintf("ethertype %#04x, %d bytes", uint16(f.Type), len(f.Payload))
	}
}

func formatARP(b []byte) string {
	m, err := arp.Unmarshal(b)
	if err != nil {
		return fmt.Sprintf("arp [malformed: %v]", err)
	}
	switch {
	case m.Op == arp.OpRequest && m.IsGratuitous():
		return fmt.Sprintf("arp gratuitous %v is-at %v", m.SenderIP, m.SenderHW)
	case m.Op == arp.OpRequest:
		return fmt.Sprintf("arp who-has %v tell %v", m.TargetIP, m.SenderIP)
	case m.Op == arp.OpReply:
		return fmt.Sprintf("arp reply %v is-at %v", m.SenderIP, m.SenderHW)
	default:
		return fmt.Sprintf("arp op=%d", m.Op)
	}
}

// FormatPacket decodes an IPv4 packet, recursing through IP-in-IP.
func FormatPacket(pkt *ip.Packet) string {
	if pkt.IsFragment() {
		return fmt.Sprintf("%v > %v: %v frag id=%d off=%d mf=%v len=%d",
			pkt.Src, pkt.Dst, pkt.Protocol, pkt.ID, pkt.FragOff*8, pkt.MoreFrag, pkt.Len())
	}
	switch pkt.Protocol {
	case ip.ProtoIPIP:
		inner, err := ip.Decapsulate(pkt)
		if err != nil {
			return fmt.Sprintf("%v > %v: ipip [bad inner]", pkt.Src, pkt.Dst)
		}
		return fmt.Sprintf("%v > %v: ipip { %s }", pkt.Src, pkt.Dst, FormatPacket(inner))
	case ip.ProtoICMP:
		return formatICMP(pkt)
	case ip.ProtoUDP:
		return formatUDP(pkt)
	case ip.ProtoTCP:
		return formatTCP(pkt)
	default:
		return fmt.Sprintf("%v > %v: %v, %d bytes", pkt.Src, pkt.Dst, pkt.Protocol, len(pkt.Payload))
	}
}

func formatICMP(pkt *ip.Packet) string {
	m, err := ip.UnmarshalICMP(pkt.Payload)
	if err != nil {
		return fmt.Sprintf("%v > %v: icmp [malformed]", pkt.Src, pkt.Dst)
	}
	switch m.Type {
	case ip.ICMPEchoRequest:
		return fmt.Sprintf("%v > %v: icmp echo request id=%d seq=%d", pkt.Src, pkt.Dst, m.ID, m.Seq)
	case ip.ICMPEchoReply:
		return fmt.Sprintf("%v > %v: icmp echo reply id=%d seq=%d", pkt.Src, pkt.Dst, m.ID, m.Seq)
	case ip.ICMPDestUnreach:
		return fmt.Sprintf("%v > %v: icmp unreachable code=%d", pkt.Src, pkt.Dst, m.Code)
	case ip.ICMPRedirect:
		return fmt.Sprintf("%v > %v: icmp redirect to %v", pkt.Src, pkt.Dst, m.Gateway())
	default:
		return fmt.Sprintf("%v > %v: %v code=%d", pkt.Src, pkt.Dst, m.Type, m.Code)
	}
}

func formatUDP(pkt *ip.Packet) string {
	h, payload, err := ip.UnmarshalUDP(pkt.Src, pkt.Dst, pkt.Payload)
	if err != nil {
		return fmt.Sprintf("%v > %v: udp [malformed]", pkt.Src, pkt.Dst)
	}
	head := fmt.Sprintf("%v:%d > %v:%d:", pkt.Src, h.SrcPort, pkt.Dst, h.DstPort)
	if app := formatApp(h, payload); app != "" {
		return head + " " + app
	}
	return fmt.Sprintf("%s udp %d bytes", head, len(payload))
}

// formatApp names well-known application payloads.
func formatApp(h ip.UDPHeader, payload []byte) string {
	switch {
	case h.DstPort == mip.Port || h.SrcPort == mip.Port:
		typ, err := mip.MessageType(payload)
		if err != nil {
			return ""
		}
		switch typ {
		case mip.TypeRegRequest:
			if r, err := mip.UnmarshalRegRequest(payload); err == nil {
				if r.IsDeregistration() {
					return fmt.Sprintf("mip dereg home=%v id=%d", r.HomeAddr, r.ID)
				}
				return fmt.Sprintf("mip reg-request home=%v careof=%v life=%ds id=%d", r.HomeAddr, r.CareOf, r.Lifetime, r.ID)
			}
		case mip.TypeRegReply:
			if r, err := mip.UnmarshalRegReply(payload); err == nil {
				return fmt.Sprintf("mip reg-reply %s life=%ds id=%d", mip.CodeString(r.Code), r.Lifetime, r.ID)
			}
		case mip.TypeAgentAdvert:
			if a, err := mip.UnmarshalAgentAdvert(payload); err == nil {
				return fmt.Sprintf("mip agent-advert agent=%v seq=%d", a.Agent, a.Seq)
			}
		case mip.TypePFANotify:
			if p, err := mip.UnmarshalPFANotify(payload); err == nil {
				return fmt.Sprintf("mip pfa-notify home=%v newcareof=%v", p.HomeAddr, p.NewCareOf)
			}
		}
	case h.DstPort == dhcp.ServerPort || h.DstPort == dhcp.ClientPort:
		if m, err := dhcp.Unmarshal(payload); err == nil {
			return fmt.Sprintf("dhcp %v yiaddr=%v", m.Type, m.YourAddr)
		}
	case h.DstPort == dns.Port || h.SrcPort == dns.Port:
		if m, err := dns.Unmarshal(payload); err == nil {
			return "dns " + m.String()
		}
	}
	return ""
}

func formatTCP(pkt *ip.Packet) string {
	h, payload, err := ip.UnmarshalTCP(pkt.Src, pkt.Dst, pkt.Payload)
	if err != nil {
		return fmt.Sprintf("%v > %v: tcp [malformed]", pkt.Src, pkt.Dst)
	}
	return fmt.Sprintf("%v:%d > %v:%d: tcp %s seq=%d ack=%d len=%d",
		pkt.Src, h.SrcPort, pkt.Dst, h.DstPort, h.FlagString(), h.Seq, h.Ack, len(payload))
}
