package capture

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"mosquitonet/internal/dhcp"
	"mosquitonet/internal/ip"
	"mosquitonet/internal/link"
	"mosquitonet/internal/mip"
	"mosquitonet/internal/sim"
	"mosquitonet/internal/stack"
	"mosquitonet/internal/transport"
)

// scenario: two hosts exchanging various traffic on one tapped network.
type scenario struct {
	loop *sim.Loop
	net  *link.Network
	cap  *Capture
	a, b *transport.Stack
}

func newScenario(t *testing.T) *scenario {
	t.Helper()
	loop := sim.New(1)
	n := link.NewNetwork(loop, "lab", link.Ethernet())
	c := New(loop, 0)
	c.Attach(n)
	mk := func(name, addr string) *transport.Stack {
		h := stack.NewHost(loop, name, stack.Config{})
		d := link.NewDevice(loop, name+"-eth", 0, 0)
		d.Attach(n)
		d.BringUp(nil)
		ifc := h.AddIface("eth0", d, ip.MustParseAddr(addr), ip.MustParsePrefix("10.0.0.0/24"), stack.IfaceOpts{})
		h.ConnectRoute(ifc)
		loop.RunFor(0)
		return transport.NewStack(h)
	}
	return &scenario{loop: loop, net: n, cap: c, a: mk("a", "10.0.0.1"), b: mk("b", "10.0.0.2")}
}

func TestCapturesARPAndUDP(t *testing.T) {
	s := newScenario(t)
	srv, _ := s.b.UDP(ip.Unspecified, 4000, nil)
	_ = srv
	cli, _ := s.a.UDP(ip.Unspecified, 0, nil)
	cli.SendTo(ip.MustParseAddr("10.0.0.2"), 4000, []byte("payload"))
	s.loop.RunFor(time.Second)

	if len(s.cap.Find("arp who-has 10.0.0.2")) != 1 {
		t.Fatalf("ARP request not captured:\n%s", s.cap)
	}
	if len(s.cap.Find("arp reply 10.0.0.2 is-at")) != 1 {
		t.Fatalf("ARP reply not captured:\n%s", s.cap)
	}
	if len(s.cap.Find("udp 7 bytes")) != 1 {
		t.Fatalf("UDP datagram not captured:\n%s", s.cap)
	}
}

func TestCapturesICMP(t *testing.T) {
	s := newScenario(t)
	s.a.Host().ICMP().Ping(ip.MustParseAddr("10.0.0.2"), ip.Unspecified, 8, time.Second, nil)
	s.loop.RunFor(2 * time.Second)
	if len(s.cap.Find("icmp echo request")) != 1 || len(s.cap.Find("icmp echo reply")) != 1 {
		t.Fatalf("ICMP exchange not captured:\n%s", s.cap)
	}
}

func TestCapturesTCPHandshake(t *testing.T) {
	s := newScenario(t)
	s.b.Listen(ip.Unspecified, 80, nil)
	s.a.Connect(ip.Unspecified, ip.MustParseAddr("10.0.0.2"), 80)
	s.loop.RunFor(2 * time.Second)
	if len(s.cap.Find("tcp SYN seq=")) < 1 {
		t.Fatalf("SYN not captured:\n%s", s.cap)
	}
	if len(s.cap.Find("tcp SYN|ACK")) != 1 {
		t.Fatalf("SYN|ACK not captured:\n%s", s.cap)
	}
}

func TestCapturesMobileIPAndTunnel(t *testing.T) {
	// A registration request/reply plus a tunneled packet, hand-built.
	s := newScenario(t)
	reg := &mip.RegRequest{Lifetime: 60, HomeAddr: ip.MustParseAddr("36.135.0.7"),
		HomeAgent: ip.MustParseAddr("10.0.0.2"), CareOf: ip.MustParseAddr("10.0.0.1"), ID: 42}
	cli, _ := s.a.UDP(ip.MustParseAddr("10.0.0.1"), mip.Port, nil)
	cli.SendTo(ip.MustParseAddr("10.0.0.2"), mip.Port, reg.Marshal())
	s.loop.RunFor(time.Second)
	if len(s.cap.Find("mip reg-request home=36.135.0.7 careof=10.0.0.1")) != 1 {
		t.Fatalf("registration not decoded:\n%s", s.cap)
	}

	inner := &ip.Packet{
		Header:  ip.Header{TTL: 64, Protocol: ip.ProtoUDP, Src: ip.MustParseAddr("36.8.0.99"), Dst: ip.MustParseAddr("36.135.0.7")},
		Payload: ip.MarshalUDP(ip.MustParseAddr("36.8.0.99"), ip.MustParseAddr("36.135.0.7"), ip.UDPHeader{SrcPort: 9, DstPort: 9}, []byte("x")),
	}
	outer, _ := ip.Encapsulate(ip.MustParseAddr("10.0.0.2"), ip.MustParseAddr("10.0.0.1"), 64, 1, inner)
	s.b.Host().Output(outer)
	s.loop.RunFor(time.Second)
	hits := s.cap.Find("ipip {")
	if len(hits) != 1 || !strings.Contains(hits[0].Line, "36.8.0.99:9 > 36.135.0.7:9") {
		t.Fatalf("tunnel not decoded recursively:\n%s", s.cap)
	}
}

func TestCapturesDHCP(t *testing.T) {
	s := newScenario(t)
	m := &dhcp.Message{Type: dhcp.Discover, XID: 7}
	cli, _ := s.a.UDP(ip.Unspecified, dhcp.ClientPort, nil)
	cli.SendToVia(s.a.Host().IfaceByName("eth0"), ip.Broadcast, ip.Broadcast, dhcp.ServerPort, m.Marshal())
	s.loop.RunFor(time.Second)
	if len(s.cap.Find("dhcp DISCOVER")) != 1 {
		t.Fatalf("DHCP not decoded:\n%s", s.cap)
	}
}

func TestCapturesFragments(t *testing.T) {
	loop := sim.New(1)
	m := link.Ethernet()
	m.MTU = 600
	n := link.NewNetwork(loop, "narrow", m)
	c := New(loop, 0)
	c.Attach(n)
	mk := func(name, addr string) *stack.Host {
		h := stack.NewHost(loop, name, stack.Config{})
		d := link.NewDevice(loop, name+"-eth", 0, 0)
		d.Attach(n)
		d.BringUp(nil)
		ifc := h.AddIface("eth0", d, ip.MustParseAddr(addr), ip.MustParsePrefix("10.0.0.0/24"), stack.IfaceOpts{})
		h.ConnectRoute(ifc)
		loop.RunFor(0)
		return h
	}
	h := mk("a", "10.0.0.1")
	mk("b", "10.0.0.2") // must exist so ARP resolves and fragments fly
	h.Output(&ip.Packet{
		Header:  ip.Header{Protocol: ip.ProtoUDP, Dst: ip.MustParseAddr("10.0.0.2")},
		Payload: make([]byte, 1500),
	})
	loop.RunFor(time.Second)
	if len(c.Find("frag id=")) < 3 {
		t.Fatalf("fragments not decoded:\n%s", c)
	}
}

func TestCaptureLimitsAndHook(t *testing.T) {
	s := newScenario(t)
	s.cap.Reset()
	limited := New(s.loop, 2)
	limited.Attach(s.net)
	live := 0
	limited.Hook = func(Entry) { live++ }
	cli, _ := s.a.UDP(ip.Unspecified, 0, nil)
	for i := 0; i < 5; i++ {
		cli.SendTo(ip.MustParseAddr("10.0.0.2"), 9, []byte("x"))
	}
	s.loop.RunFor(time.Second)
	if limited.Len() != 2 {
		t.Fatalf("limit not enforced: %d", limited.Len())
	}
	if live < 5 {
		t.Fatalf("hook saw %d", live)
	}
	limited.Reset()
	if limited.Len() != 0 {
		t.Fatal("Reset ineffective")
	}
}

func TestFormatMalformed(t *testing.T) {
	if !strings.Contains(FormatFrame(&link.Frame{Type: link.EtherTypeARP, Payload: []byte{1}}), "malformed") {
		t.Fatal("malformed ARP not flagged")
	}
	if !strings.Contains(FormatFrame(&link.Frame{Type: link.EtherTypeIPv4, Payload: []byte{1}}), "malformed") {
		t.Fatal("malformed IP not flagged")
	}
	if !strings.Contains(FormatFrame(&link.Frame{Type: 0x9999, Payload: []byte{1}}), "ethertype") {
		t.Fatal("unknown ethertype not flagged")
	}
}

func TestWriteJSONL(t *testing.T) {
	s := newScenario(t)
	cli, _ := s.a.UDP(ip.Unspecified, 0, nil)
	cli.SendTo(ip.MustParseAddr("10.0.0.2"), 9, []byte("x"))
	s.loop.RunFor(time.Second)
	if s.cap.Len() == 0 {
		t.Fatal("nothing captured")
	}

	var buf bytes.Buffer
	if err := s.cap.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != s.cap.Len() {
		t.Fatalf("want %d lines, got %d", s.cap.Len(), len(lines))
	}
	for i, line := range lines {
		var e struct {
			AtNS    int64  `json:"at_ns"`
			Network string `json:"network"`
			Line    string `json:"line"`
		}
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("line %d not valid JSON: %v", i, err)
		}
		if e.Network != "lab" || e.Line == "" {
			t.Fatalf("line %d incomplete: %+v", i, e)
		}
	}

	// Same capture, same bytes.
	var again bytes.Buffer
	if err := s.cap.WriteJSONL(&again); err != nil {
		t.Fatal(err)
	}
	if again.String() != buf.String() {
		t.Fatal("WriteJSONL is not stable")
	}
}
