package dhcp

import (
	"errors"
	"time"

	"mosquitonet/internal/ip"
	"mosquitonet/internal/link"
	"mosquitonet/internal/sim"
	"mosquitonet/internal/stack"
	"mosquitonet/internal/trace"
	"mosquitonet/internal/transport"
)

// kSpanAcquire bounds one DISCOVER/OFFER/REQUEST/ACK exchange in the
// loop-associated tracer's span tree; under a mobile-host handoff it nests
// inside the "handoff.dhcp" phase.
const kSpanAcquire = "dhcp.acquire"

// ClientConfig tunes the client's retry behaviour.
type ClientConfig struct {
	RetryInterval time.Duration // per-attempt timeout (default 500ms)
	MaxRetries    int           // attempts per phase (default 4)
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.RetryInterval == 0 {
		c.RetryInterval = 500 * time.Millisecond
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 4
	}
	return c
}

// Client errors.
var (
	ErrAcquireTimeout = errors.New("dhcp: no server responded")
	ErrNak            = errors.New("dhcp: server refused the request")
	ErrBusy           = errors.New("dhcp: acquisition already in progress")
)

type clientState int

const (
	stateIdle clientState = iota
	stateDiscover
	stateRequest
	stateBound
)

// Client acquires and renews a lease on one interface. Renewal traffic is
// sent from the leased (care-of) address directly on the interface — the
// mobile host's "local role"; it never goes near mobile IP routing.
type Client struct {
	loop *sim.Loop
	ts   *transport.Stack
	ifc  *stack.Iface
	hw   link.HWAddr
	cfg  ClientConfig

	sock      *transport.UDPSocket // wildcard :68, for broadcast replies
	renewSock *transport.UDPSocket // bound to the leased address

	state    clientState
	xid      uint32
	offer    *Message
	tries    int
	timer    sim.Timer
	renewT   sim.Timer
	lease    Lease
	acquired bool
	done     func(Lease, error)
	span     *trace.Span // "dhcp.acquire": one exchange, Acquire to outcome

	// OnRenewed fires after each successful renewal; OnExpired fires if
	// the lease lapses without one.
	OnRenewed func(Lease)
	OnExpired func()
}

// NewClient creates a client for the given interface. The wildcard client
// port (:68) is bound only while an acquisition is in progress, so one host
// can run clients on several interfaces — a hot-switching mobile host keeps
// the old interface's lease renewing (via its address-bound socket) while
// acquiring on the new one.
func NewClient(ts *transport.Stack, ifc *stack.Iface, cfg ClientConfig) (*Client, error) {
	return &Client{
		loop: ts.Host().Loop(),
		ts:   ts,
		ifc:  ifc,
		hw:   ifc.Device().HW(),
		cfg:  cfg.withDefaults(),
	}, nil
}

// Lease returns the current lease, if bound.
func (c *Client) Lease() (Lease, bool) { return c.lease, c.acquired }

// Acquire runs the DISCOVER/OFFER/REQUEST/ACK exchange and calls done
// exactly once with the result.
func (c *Client) Acquire(done func(Lease, error)) error {
	if c.state != stateIdle && c.state != stateBound {
		return ErrBusy
	}
	sock, err := c.ts.UDP(ip.Unspecified, ClientPort, c.input)
	if err != nil {
		return err
	}
	c.sock = sock
	c.done = done
	c.xid = c.loop.Rand().Uint32()
	c.tries = 0
	c.state = stateDiscover
	c.span = trace.For(c.loop).StartSpan(c.ts.Host().Name(), kSpanAcquire)
	c.span.SetAttr("iface", c.ifc.Name())
	c.sendDiscover()
	return nil
}

// dropWildcardSock closes the acquisition-time socket.
func (c *Client) dropWildcardSock() {
	if c.sock != nil {
		c.sock.Close()
		c.sock = nil
	}
}

// Release relinquishes the lease and stops renewal.
func (c *Client) Release() {
	if !c.acquired {
		return
	}
	m := &Message{Type: Release, XID: c.xid, ClientHW: c.hw, ClientAddr: c.lease.Addr, ServerAddr: c.lease.Server}
	if c.renewSock != nil {
		c.renewSock.SendToVia(c.ifc, c.lease.Server, c.lease.Server, ServerPort, m.Marshal())
	}
	c.dropLease()
}

// Stop abandons any exchange in progress and stops renewal without
// notifying the server (the device is going away).
func (c *Client) Stop() {
	if c.span.Open() {
		c.span.SetAttr("result", "stopped")
		c.span.Done()
	}
	c.stopTimers()
	c.state = stateIdle
	c.dropWildcardSock()
	c.dropRenewSock()
	c.acquired = false
}

// Close releases all socket bindings.
func (c *Client) Close() {
	c.Stop()
	c.dropWildcardSock()
}

func (c *Client) dropLease() {
	c.stopTimers()
	c.acquired = false
	c.state = stateIdle
	c.dropRenewSock()
}

func (c *Client) dropRenewSock() {
	if c.renewSock != nil {
		c.renewSock.Close()
		c.renewSock = nil
	}
}

func (c *Client) stopTimers() {
	c.timer.Stop()
	c.renewT.Stop()
}

func (c *Client) fail(err error) {
	c.state = stateIdle
	c.dropWildcardSock()
	c.span.Attrf("tries", "%d", c.tries)
	c.span.Fail(err)
	if c.done != nil {
		done := c.done
		c.done = nil
		done(Lease{}, err)
	}
}

func (c *Client) sendDiscover() {
	if c.sock == nil {
		return
	}
	c.tries++
	if c.tries > c.cfg.MaxRetries {
		c.fail(ErrAcquireTimeout)
		return
	}
	m := &Message{Type: Discover, XID: c.xid, ClientHW: c.hw}
	c.sock.SendToVia(c.ifc, ip.Broadcast, ip.Broadcast, ServerPort, m.Marshal())
	c.timer = c.loop.Schedule(c.cfg.RetryInterval, func() {
		if c.state == stateDiscover {
			c.sendDiscover()
		}
	})
}

func (c *Client) sendRequest() {
	if c.sock == nil {
		return
	}
	c.tries++
	if c.tries > c.cfg.MaxRetries {
		c.fail(ErrAcquireTimeout)
		return
	}
	m := &Message{
		Type:          Request,
		XID:           c.xid,
		ClientHW:      c.hw,
		RequestedAddr: c.offer.YourAddr,
		ServerAddr:    c.offer.ServerAddr,
	}
	c.sock.SendToVia(c.ifc, ip.Broadcast, ip.Broadcast, ServerPort, m.Marshal())
	c.timer = c.loop.Schedule(c.cfg.RetryInterval, func() {
		if c.state == stateRequest {
			c.sendRequest()
		}
	})
}

func (c *Client) input(d transport.Datagram) {
	m, err := Unmarshal(d.Payload)
	if err != nil || m.ClientHW != c.hw || m.XID != c.xid {
		//lint:allow dropaccounting broadcast replies addressed to other clients are filtered here, not lost
		return
	}
	switch {
	case m.Type == Offer && c.state == stateDiscover:
		c.offer = m
		c.state = stateRequest
		c.tries = 0
		c.timer.Stop()
		c.sendRequest()
	case m.Type == Ack && c.state == stateRequest:
		c.timer.Stop()
		c.bind(m)
	case m.Type == Nak:
		c.timer.Stop()
		if c.state == stateRequest {
			c.fail(ErrNak)
		} else if c.state == stateBound {
			c.dropLease()
			if c.OnExpired != nil {
				c.OnExpired()
			}
		}
	case m.Type == Ack && c.state == stateBound:
		// Renewal acknowledged.
		c.lease.Duration = time.Duration(m.LeaseSecs) * time.Second
		c.lease.Acquired = c.loop.Now()
		c.scheduleRenewal()
		if c.OnRenewed != nil {
			c.OnRenewed(c.lease)
		}
	}
}

func (c *Client) bind(m *Message) {
	c.lease = Lease{
		Addr:     m.YourAddr,
		Prefix:   ip.Prefix{Addr: m.YourAddr, Bits: int(m.PrefixBits)}.Normalize(),
		Gateway:  m.Gateway,
		Server:   m.ServerAddr,
		Duration: time.Duration(m.LeaseSecs) * time.Second,
		Acquired: c.loop.Now(),
	}
	c.acquired = true
	c.state = stateBound
	c.span.SetAttr("addr", c.lease.Addr.String())
	c.span.SetAttr("server", c.lease.Server.String())
	c.span.Done()
	// Configure the interface so unicast (renewal) traffic to the leased
	// address is ARP-answered and accepted. Callers that stage-manage
	// configuration (the mobile host charging its configuration latency)
	// may SetAddr again; it is idempotent.
	c.ifc.SetAddr(c.lease.Addr, c.lease.Prefix)
	c.dropWildcardSock()
	c.dropRenewSock()
	if rs, err := c.ts.UDP(c.lease.Addr, ClientPort, c.input); err == nil {
		c.renewSock = rs
	}
	c.scheduleRenewal()
	if c.done != nil {
		done := c.done
		c.done = nil
		done(c.lease, nil)
	}
}

// scheduleRenewal arms T1 (half the lease) for renewal and the hard expiry.
func (c *Client) scheduleRenewal() {
	c.renewT.Stop()
	c.renewT = c.loop.Schedule(c.lease.Duration/2, c.renew)
}

func (c *Client) renew() {
	if c.state != stateBound || c.renewSock == nil {
		return
	}
	m := &Message{
		Type:       Request,
		XID:        c.xid,
		ClientHW:   c.hw,
		ClientAddr: c.lease.Addr,
		ServerAddr: c.lease.Server,
	}
	c.renewSock.SendToVia(c.ifc, c.lease.Server, c.lease.Server, ServerPort, m.Marshal())
	// If no ACK arrives before expiry, the lease lapses.
	c.renewT = c.loop.Schedule(c.lease.Duration/2, func() {
		if c.state == stateBound && c.loop.Now() >= c.lease.Acquired.Add(c.lease.Duration) {
			c.dropLease()
			if c.OnExpired != nil {
				c.OnExpired()
			}
		}
	})
}
