// Package dhcp implements a compact DHCP: DISCOVER/OFFER/REQUEST/ACK over
// simulated UDP broadcast (ports 67/68), leases with lifetimes and renewal,
// and a least-recently-used allocator.
//
// In MosquitoNet, DHCP is how a mobile host obtains its temporary care-of
// address on a foreign network — the paper's one and only requirement of
// the networks it visits. The LRU allocation policy implements the paper's
// security observation that "a well-written DHCP server would avoid
// reassigning the same IP address for as long as possible", so packets
// straggling toward a departed mobile host are not delivered to a newcomer
// holding its old address.
package dhcp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"mosquitonet/internal/ip"
	"mosquitonet/internal/link"
	"mosquitonet/internal/sim"
)

// Ports.
const (
	ServerPort = 67
	ClientPort = 68
)

// MsgType is a DHCP message type.
type MsgType uint8

// DHCP message types.
const (
	Discover MsgType = 1
	Offer    MsgType = 2
	Request  MsgType = 3
	Ack      MsgType = 4
	Nak      MsgType = 5
	Release  MsgType = 6
)

func (t MsgType) String() string {
	switch t {
	case Discover:
		return "DISCOVER"
	case Offer:
		return "OFFER"
	case Request:
		return "REQUEST"
	case Ack:
		return "ACK"
	case Nak:
		return "NAK"
	case Release:
		return "RELEASE"
	default:
		return fmt.Sprintf("dhcp(%d)", uint8(t))
	}
}

// MessageLen is the fixed wire length of a message.
const MessageLen = 36

// Message is a compact DHCP message. ClientAddr (ciaddr) is the client's
// current address for renewals; YourAddr (yiaddr) is the server's offer;
// RequestedAddr echoes an offer in a REQUEST.
type Message struct {
	Type          MsgType
	XID           uint32
	ClientHW      link.HWAddr
	ClientAddr    ip.Addr
	YourAddr      ip.Addr
	ServerAddr    ip.Addr
	RequestedAddr ip.Addr
	PrefixBits    uint8
	Gateway       ip.Addr
	LeaseSecs     uint32
}

// Marshal serializes the message.
func (m *Message) Marshal() []byte {
	b := make([]byte, MessageLen)
	b[0] = byte(m.Type)
	binary.BigEndian.PutUint32(b[1:], m.XID)
	copy(b[5:11], m.ClientHW[:])
	copy(b[11:15], m.ClientAddr[:])
	copy(b[15:19], m.YourAddr[:])
	copy(b[19:23], m.ServerAddr[:])
	copy(b[23:27], m.RequestedAddr[:])
	b[27] = m.PrefixBits
	copy(b[28:32], m.Gateway[:])
	binary.BigEndian.PutUint32(b[32:], m.LeaseSecs)
	return b
}

// ErrShortMessage reports a truncated DHCP message.
var ErrShortMessage = errors.New("dhcp: truncated message")

// Unmarshal parses a message.
func Unmarshal(b []byte) (*Message, error) {
	if len(b) < MessageLen {
		return nil, ErrShortMessage
	}
	m := &Message{Type: MsgType(b[0]), XID: binary.BigEndian.Uint32(b[1:])}
	copy(m.ClientHW[:], b[5:11])
	copy(m.ClientAddr[:], b[11:15])
	copy(m.YourAddr[:], b[15:19])
	copy(m.ServerAddr[:], b[19:23])
	copy(m.RequestedAddr[:], b[23:27])
	m.PrefixBits = b[27]
	copy(m.Gateway[:], b[28:32])
	m.LeaseSecs = binary.BigEndian.Uint32(b[32:])
	return m, nil
}

// Lease is a granted address binding as seen by a client.
type Lease struct {
	Addr     ip.Addr
	Prefix   ip.Prefix
	Gateway  ip.Addr
	Server   ip.Addr
	Duration time.Duration
	Acquired sim.Time
}

func (l Lease) String() string {
	return fmt.Sprintf("%v/%d via %v (server %v, %v)", l.Addr, l.Prefix.Bits, l.Gateway, l.Server, l.Duration)
}
