package dhcp

import (
	"testing"
	"testing/quick"
	"time"

	"mosquitonet/internal/ip"
	"mosquitonet/internal/link"
	"mosquitonet/internal/sim"
	"mosquitonet/internal/stack"
	"mosquitonet/internal/transport"
)

// env is one subnet with a DHCP server and n client hosts.
type env struct {
	loop    *sim.Loop
	net     *link.Network
	server  *Server
	srvHost *stack.Host
}

func newEnv(t *testing.T, cfg ServerConfig) *env {
	t.Helper()
	loop := sim.New(1)
	n := link.NewNetwork(loop, "net", link.Ethernet())
	h := stack.NewHost(loop, "dhcp-server", stack.Config{})
	d := link.NewDevice(loop, "eth0", 0, 0)
	d.Attach(n)
	d.BringUp(nil)
	ifc := h.AddIface("eth0", d, ip.MustParseAddr("10.0.0.1"), ip.MustParsePrefix("10.0.0.0/24"), stack.IfaceOpts{})
	h.ConnectRoute(ifc)
	ts := transport.NewStack(h)
	if cfg.Pool.Bits == 0 {
		cfg.Pool = ip.MustParsePrefix("10.0.0.0/24")
	}
	if cfg.Gateway.IsUnspecified() {
		cfg.Gateway = ip.MustParseAddr("10.0.0.1")
	}
	srv, err := NewServer(ts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	loop.RunFor(0)
	return &env{loop: loop, net: n, server: srv, srvHost: h}
}

// addClient creates a host with an unconfigured interface plus a client.
func (e *env) addClient(t *testing.T, name string) (*Client, *stack.Iface) {
	t.Helper()
	h := stack.NewHost(e.loop, name, stack.Config{})
	d := link.NewDevice(e.loop, name+"-eth0", 0, 0)
	d.Attach(e.net)
	d.BringUp(nil)
	ifc := h.AddIface("eth0", d, ip.Unspecified, ip.Prefix{}, stack.IfaceOpts{})
	ts := transport.NewStack(h)
	c, err := NewClient(ts, ifc, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	e.loop.RunFor(0)
	return c, ifc
}

func TestMessageRoundTrip(t *testing.T) {
	f := func(typ uint8, xid uint32, hw [6]byte, ca, ya, sa, ra, gw [4]byte, bits uint8, secs uint32) bool {
		m := &Message{
			Type: MsgType(typ), XID: xid, ClientHW: hw,
			ClientAddr: ca, YourAddr: ya, ServerAddr: sa, RequestedAddr: ra,
			PrefixBits: bits, Gateway: gw, LeaseSecs: secs,
		}
		got, err := Unmarshal(m.Marshal())
		return err == nil && *got == *m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	if _, err := Unmarshal(make([]byte, 10)); err != ErrShortMessage {
		t.Fatalf("short: %v", err)
	}
}

func TestAcquireLease(t *testing.T) {
	e := newEnv(t, ServerConfig{})
	c, _ := e.addClient(t, "mh")
	var got Lease
	var gotErr error
	done := false
	c.Acquire(func(l Lease, err error) { got, gotErr, done = l, err, true })
	e.loop.RunFor(5 * time.Second)
	if !done || gotErr != nil {
		t.Fatalf("acquire: done=%v err=%v", done, gotErr)
	}
	if !ip.MustParsePrefix("10.0.0.0/24").Contains(got.Addr) {
		t.Fatalf("leased address %v outside pool", got.Addr)
	}
	if got.Gateway != ip.MustParseAddr("10.0.0.1") || got.Prefix.Bits != 24 {
		t.Fatalf("lease details: %v", got)
	}
	if got.Addr == ip.MustParseAddr("10.0.0.1") {
		t.Fatal("server handed out its own/gateway address")
	}
	if l, ok := c.Lease(); !ok || l.Addr != got.Addr {
		t.Fatal("Lease() disagrees")
	}
}

func TestDistinctClientsDistinctAddresses(t *testing.T) {
	e := newEnv(t, ServerConfig{})
	seen := map[ip.Addr]bool{}
	for i := 0; i < 10; i++ {
		c, _ := e.addClient(t, "mh")
		var got Lease
		c.Acquire(func(l Lease, err error) {
			if err != nil {
				t.Fatal(err)
			}
			got = l
		})
		e.loop.RunFor(5 * time.Second)
		if seen[got.Addr] {
			t.Fatalf("address %v leased twice", got.Addr)
		}
		seen[got.Addr] = true
	}
}

func TestSameClientKeepsAddress(t *testing.T) {
	e := newEnv(t, ServerConfig{})
	c, _ := e.addClient(t, "mh")
	var first, second Lease
	c.Acquire(func(l Lease, err error) { first = l })
	e.loop.RunFor(5 * time.Second)
	c.Acquire(func(l Lease, err error) { second = l })
	e.loop.RunFor(5 * time.Second)
	if first.Addr != second.Addr {
		t.Fatalf("re-acquisition changed address: %v -> %v", first.Addr, second.Addr)
	}
}

func TestAcquireTimeoutWithoutServer(t *testing.T) {
	loop := sim.New(1)
	n := link.NewNetwork(loop, "net", link.Ethernet())
	h := stack.NewHost(loop, "mh", stack.Config{})
	d := link.NewDevice(loop, "eth0", 0, 0)
	d.Attach(n)
	d.BringUp(nil)
	ifc := h.AddIface("eth0", d, ip.Unspecified, ip.Prefix{}, stack.IfaceOpts{})
	c, err := NewClient(transport.NewStack(h), ifc, ClientConfig{RetryInterval: 100 * time.Millisecond, MaxRetries: 3})
	if err != nil {
		t.Fatal(err)
	}
	loop.RunFor(0)
	var gotErr error
	c.Acquire(func(l Lease, err error) { gotErr = err })
	loop.RunFor(10 * time.Second)
	if gotErr != ErrAcquireTimeout {
		t.Fatalf("err = %v", gotErr)
	}
}

func TestRenewalExtendsLease(t *testing.T) {
	e := newEnv(t, ServerConfig{LeaseDuration: 4 * time.Second})
	c, _ := e.addClient(t, "mh")
	renewed := 0
	expired := false
	c.OnRenewed = func(Lease) { renewed++ }
	c.OnExpired = func() { expired = true }
	c.Acquire(func(l Lease, err error) {
		if err != nil {
			t.Fatal(err)
		}
	})
	e.loop.RunFor(20 * time.Second)
	if renewed < 3 {
		t.Fatalf("renewed %d times over 20s with 4s leases", renewed)
	}
	if expired {
		t.Fatal("lease expired despite renewals")
	}
	if _, ok := c.Lease(); !ok {
		t.Fatal("lease lost")
	}
}

func TestLeaseExpiresWhenServerGone(t *testing.T) {
	e := newEnv(t, ServerConfig{LeaseDuration: 2 * time.Second})
	c, _ := e.addClient(t, "mh")
	expired := false
	c.OnExpired = func() { expired = true }
	c.Acquire(func(l Lease, err error) {
		if err != nil {
			t.Fatal(err)
		}
	})
	e.loop.RunFor(time.Second)
	// Server vanishes.
	for _, ifc := range e.srvHost.Ifaces() {
		if ifc.Device() != nil {
			ifc.Device().BringDown()
		}
	}
	e.loop.RunFor(30 * time.Second)
	if !expired {
		t.Fatal("lease did not expire without renewals")
	}
	if _, ok := c.Lease(); ok {
		t.Fatal("expired lease still reported")
	}
}

// TestLRUAvoidsQuickReuse is the paper's security point: a released address
// must not be reassigned while fresh alternatives exist.
func TestLRUAvoidsQuickReuse(t *testing.T) {
	e := newEnv(t, ServerConfig{})
	first, _ := e.addClient(t, "mh1")
	var departed Lease
	first.Acquire(func(l Lease, err error) { departed = l })
	e.loop.RunFor(5 * time.Second)
	first.Release()
	e.loop.RunFor(time.Second)

	// A stream of new clients must drain the never-used pool before the
	// released address reappears.
	for i := 0; i < 5; i++ {
		c, _ := e.addClient(t, "new")
		var got Lease
		c.Acquire(func(l Lease, err error) {
			if err != nil {
				t.Fatal(err)
			}
			got = l
		})
		e.loop.RunFor(5 * time.Second)
		if got.Addr == departed.Addr {
			t.Fatalf("released address %v reused while fresh addresses remain", departed.Addr)
		}
	}
}

func TestPoolExhaustionAndNak(t *testing.T) {
	e := newEnv(t, ServerConfig{FirstHost: 2, LastHost: 3}) // 10.0.0.2, 10.0.0.3 only
	var errs, oks int
	for i := 0; i < 4; i++ {
		c, _ := e.addClient(t, "mh")
		c.Acquire(func(l Lease, err error) {
			if err != nil {
				errs++
			} else {
				oks++
			}
		})
		e.loop.RunFor(10 * time.Second)
	}
	if oks != 2 || errs != 2 {
		t.Fatalf("oks=%d errs=%d, want 2/2", oks, errs)
	}
	if e.server.Stats().Exhausted == 0 {
		t.Fatal("exhaustion not counted")
	}
}

func TestReleaseFreesAddress(t *testing.T) {
	e := newEnv(t, ServerConfig{FirstHost: 2, LastHost: 2}) // single address
	c1, _ := e.addClient(t, "mh1")
	var l1 Lease
	c1.Acquire(func(l Lease, err error) { l1 = l })
	e.loop.RunFor(5 * time.Second)
	c1.Release()
	e.loop.RunFor(time.Second)

	c2, _ := e.addClient(t, "mh2")
	var l2 Lease
	var err2 error
	c2.Acquire(func(l Lease, err error) { l2, err2 = l, err })
	e.loop.RunFor(10 * time.Second)
	if err2 != nil {
		t.Fatalf("second acquire failed: %v", err2)
	}
	if l2.Addr != l1.Addr {
		t.Fatalf("single-address pool: got %v want %v", l2.Addr, l1.Addr)
	}
}

func TestLeaseForServerView(t *testing.T) {
	e := newEnv(t, ServerConfig{})
	c, ifc := e.addClient(t, "mh")
	var got Lease
	c.Acquire(func(l Lease, err error) { got = l })
	e.loop.RunFor(5 * time.Second)
	if a, ok := e.server.LeaseFor(ifc.Device().HW()); !ok || a != got.Addr {
		t.Fatalf("server lease view: %v %v", a, ok)
	}
	if _, ok := e.server.LeaseFor(link.HWAddr{9, 9, 9, 9, 9, 9}); ok {
		t.Fatal("lease invented for unknown client")
	}
}

func TestAcquireBusy(t *testing.T) {
	e := newEnv(t, ServerConfig{})
	c, _ := e.addClient(t, "mh")
	c.Acquire(func(Lease, error) {})
	if err := c.Acquire(func(Lease, error) {}); err != ErrBusy {
		t.Fatalf("second Acquire: %v", err)
	}
}

func TestTwoClientsOnOneHost(t *testing.T) {
	// A mobile host runs a client per interface; acquiring on the second
	// interface while the first lease renews must work.
	e := newEnv(t, ServerConfig{LeaseDuration: 4 * time.Second})
	h := stack.NewHost(e.loop, "mh", stack.Config{})
	ts := transport.NewStack(h)
	mkIfc := func(name string) *stack.Iface {
		d := link.NewDevice(e.loop, name, 0, 0)
		d.Attach(e.net)
		d.BringUp(nil)
		return h.AddIface(name, d, ip.Unspecified, ip.Prefix{}, stack.IfaceOpts{})
	}
	i1, i2 := mkIfc("eth0"), mkIfc("eth1")
	c1, err := NewClient(ts, i1, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := NewClient(ts, i2, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	e.loop.RunFor(0)

	var l1, l2 Lease
	c1.Acquire(func(l Lease, err error) {
		if err != nil {
			t.Fatal(err)
		}
		l1 = l
		i1.SetAddr(l.Addr, l.Prefix)
	})
	e.loop.RunFor(5 * time.Second)
	renewed := 0
	c1.OnRenewed = func(Lease) { renewed++ }
	c2.Acquire(func(l Lease, err error) {
		if err != nil {
			t.Fatal(err)
		}
		l2 = l
	})
	e.loop.RunFor(10 * time.Second)
	if l1.Addr == l2.Addr || l1.Addr.IsUnspecified() || l2.Addr.IsUnspecified() {
		t.Fatalf("leases %v / %v", l1.Addr, l2.Addr)
	}
	if renewed == 0 {
		t.Fatal("first lease stopped renewing during second acquisition")
	}
}

func TestStopAbandonsExchange(t *testing.T) {
	e := newEnv(t, ServerConfig{})
	c, _ := e.addClient(t, "mh")
	called := false
	c.Acquire(func(Lease, error) { called = true })
	c.Stop()
	e.loop.RunFor(10 * time.Second)
	if called {
		t.Fatal("callback fired after Stop")
	}
	// Client is reusable afterwards.
	var err2 error
	ok := false
	c.Acquire(func(l Lease, err error) { err2, ok = err, true })
	e.loop.RunFor(5 * time.Second)
	if !ok || err2 != nil {
		t.Fatalf("reuse after Stop: ok=%v err=%v", ok, err2)
	}
}

func TestMsgTypeString(t *testing.T) {
	for typ, want := range map[MsgType]string{
		Discover: "DISCOVER", Offer: "OFFER", Request: "REQUEST",
		Ack: "ACK", Nak: "NAK", Release: "RELEASE", 99: "dhcp(99)",
	} {
		if typ.String() != want {
			t.Errorf("%d -> %q", typ, typ.String())
		}
	}
}
