package dhcp

import (
	"testing"

	"mosquitonet/internal/ip"
	"mosquitonet/internal/link"
)

// FuzzUnmarshal asserts the DHCP parser never panics and accepted
// messages survive a Marshal∘Unmarshal round trip unchanged.
func FuzzUnmarshal(f *testing.F) {
	offer := &Message{
		Type:       Offer,
		XID:        0xdeadbeef,
		ClientHW:   link.HWAddr{2, 0, 0, 0, 0, 9},
		YourAddr:   ip.Addr{10, 0, 0, 40},
		ServerAddr: ip.Addr{10, 0, 0, 1},
		PrefixBits: 24,
		Gateway:    ip.Addr{10, 0, 0, 1},
		LeaseSecs:  3600,
	}
	f.Add(offer.Marshal())
	f.Add((&Message{Type: Discover, XID: 1}).Marshal())
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := Unmarshal(b)
		if err != nil {
			return
		}
		m2, err := Unmarshal(m.Marshal())
		if err != nil {
			t.Fatalf("re-marshaled message failed to parse: %v", err)
		}
		if *m2 != *m {
			t.Fatalf("round trip changed message: %+v -> %+v", m, m2)
		}
	})
}
