package dhcp

import (
	"fmt"
	"time"

	"mosquitonet/internal/ip"
	"mosquitonet/internal/link"
	"mosquitonet/internal/sim"
	"mosquitonet/internal/transport"
)

// ServerConfig configures a DHCP server.
type ServerConfig struct {
	// Pool is the subnet to allocate from.
	Pool ip.Prefix
	// FirstHost and LastHost bound the allocatable host indexes within the
	// pool (1-based, per ip.Prefix.Nth). Zero values cover the whole pool.
	FirstHost, LastHost int
	// Gateway is handed to clients as their default router.
	Gateway ip.Addr
	// LeaseDuration defaults to 10 minutes.
	LeaseDuration time.Duration
	// ProcessingDelay models server think time per request.
	ProcessingDelay time.Duration
}

// ServerStats counts server activity.
type ServerStats struct {
	Discovers     uint64
	Offers        uint64
	Requests      uint64
	Acks          uint64
	Naks          uint64
	Releases      uint64
	Exhausted     uint64 // DISCOVERs dropped because the pool was empty
	DropMalformed uint64 // datagrams that failed to parse
}

type serverLease struct {
	hw      link.HWAddr
	expires sim.Time
	offered bool // offered but not yet acked
}

// Server is a DHCP server answering on UDP port 67.
type Server struct {
	loop *sim.Loop
	ts   *transport.Stack
	cfg  ServerConfig

	leases map[ip.Addr]*serverLease
	byHW   map[link.HWAddr]ip.Addr
	// lastUse records when each address was last bound, implementing the
	// avoid-quick-reuse (LRU) policy.
	lastUse map[ip.Addr]sim.Time
	sock    *transport.UDPSocket
	stats   ServerStats
}

// NewServer starts a DHCP server on ts. It binds UDP port 67.
func NewServer(ts *transport.Stack, cfg ServerConfig) (*Server, error) {
	if cfg.LeaseDuration == 0 {
		cfg.LeaseDuration = 10 * time.Minute
	}
	if cfg.FirstHost == 0 {
		cfg.FirstHost = 1
	}
	if cfg.LastHost == 0 {
		cfg.LastHost = cfg.Pool.HostCount()
	}
	s := &Server{
		loop:    ts.Host().Loop(),
		ts:      ts,
		cfg:     cfg,
		leases:  make(map[ip.Addr]*serverLease),
		byHW:    make(map[link.HWAddr]ip.Addr),
		lastUse: make(map[ip.Addr]sim.Time),
	}
	sock, err := ts.UDP(ip.Unspecified, ServerPort, s.input)
	if err != nil {
		return nil, fmt.Errorf("dhcp: binding server port: %w", err)
	}
	s.sock = sock
	return s, nil
}

// Stats returns a snapshot of the counters.
func (s *Server) Stats() ServerStats { return s.stats }

// LeaseFor returns the active lease address for a client, if any.
func (s *Server) LeaseFor(hw link.HWAddr) (ip.Addr, bool) {
	a, ok := s.byHW[hw]
	if !ok {
		return ip.Addr{}, false
	}
	l := s.leases[a]
	if l == nil || s.loop.Now() > l.expires {
		return ip.Addr{}, false
	}
	return a, true
}

func (s *Server) input(d transport.Datagram) {
	m, err := Unmarshal(d.Payload)
	if err != nil {
		s.stats.DropMalformed++
		return
	}
	handle := func() {
		switch m.Type {
		case Discover:
			s.handleDiscover(m, d)
		case Request:
			s.handleRequest(m, d)
		case Release:
			s.handleRelease(m)
		}
	}
	if s.cfg.ProcessingDelay > 0 {
		s.loop.Schedule(s.loop.Jitter(s.cfg.ProcessingDelay, s.cfg.ProcessingDelay/12), handle)
	} else {
		handle()
	}
}

func (s *Server) handleDiscover(m *Message, d transport.Datagram) {
	s.stats.Discovers++
	addr, ok := s.allocate(m.ClientHW)
	if !ok {
		s.stats.Exhausted++
		return
	}
	s.leases[addr] = &serverLease{hw: m.ClientHW, expires: s.loop.Now().Add(s.cfg.LeaseDuration), offered: true}
	s.byHW[m.ClientHW] = addr
	s.stats.Offers++
	s.reply(d, &Message{
		Type:       Offer,
		XID:        m.XID,
		ClientHW:   m.ClientHW,
		YourAddr:   addr,
		ServerAddr: s.serverAddr(),
		PrefixBits: uint8(s.cfg.Pool.Bits),
		Gateway:    s.cfg.Gateway,
		LeaseSecs:  uint32(s.cfg.LeaseDuration / time.Second),
	})
}

func (s *Server) handleRequest(m *Message, d transport.Datagram) {
	s.stats.Requests++
	want := m.RequestedAddr
	if want.IsUnspecified() {
		want = m.ClientAddr // renewal
	}
	l := s.leases[want]
	valid := l != nil && l.hw == m.ClientHW
	if !valid {
		s.stats.Naks++
		s.reply(d, &Message{Type: Nak, XID: m.XID, ClientHW: m.ClientHW, ServerAddr: s.serverAddr()})
		return
	}
	l.offered = false
	l.expires = s.loop.Now().Add(s.cfg.LeaseDuration)
	s.lastUse[want] = s.loop.Now()
	s.stats.Acks++
	s.reply(d, &Message{
		Type:       Ack,
		XID:        m.XID,
		ClientHW:   m.ClientHW,
		YourAddr:   want,
		ServerAddr: s.serverAddr(),
		PrefixBits: uint8(s.cfg.Pool.Bits),
		Gateway:    s.cfg.Gateway,
		LeaseSecs:  uint32(s.cfg.LeaseDuration / time.Second),
	})
}

func (s *Server) handleRelease(m *Message) {
	s.stats.Releases++
	if l, ok := s.leases[m.ClientAddr]; ok && l.hw == m.ClientHW {
		delete(s.leases, m.ClientAddr)
		delete(s.byHW, m.ClientHW)
		s.lastUse[m.ClientAddr] = s.loop.Now()
	}
}

// allocate picks an address for a client: its existing lease if fresh,
// otherwise the free address least recently used.
func (s *Server) allocate(hw link.HWAddr) (ip.Addr, bool) {
	if a, ok := s.byHW[hw]; ok {
		if l := s.leases[a]; l != nil && s.loop.Now() <= l.expires {
			return a, true
		}
	}
	var best ip.Addr
	bestAt := sim.Time(1<<62 - 1)
	found := false
	for n := s.cfg.FirstHost; n <= s.cfg.LastHost; n++ {
		a, err := s.cfg.Pool.Nth(n)
		if err != nil {
			break
		}
		if a == s.cfg.Gateway || a == s.serverAddr() {
			continue
		}
		if l, ok := s.leases[a]; ok && s.loop.Now() <= l.expires {
			continue // active
		}
		last, used := s.lastUse[a]
		if !used {
			return a, true // never used wins outright
		}
		if last < bestAt {
			best, bestAt, found = a, last, true
		}
	}
	return best, found
}

// serverAddr returns the server's address within the pool, used as the
// server identifier in replies.
func (s *Server) serverAddr() ip.Addr {
	for _, ifc := range s.ts.Host().Ifaces() {
		if !ifc.Addr().IsUnspecified() && s.cfg.Pool.Contains(ifc.Addr()) {
			return ifc.Addr()
		}
	}
	return ip.Addr{}
}

// reply sends a server message: broadcast on the arrival interface when the
// client has no usable address, unicast otherwise.
func (s *Server) reply(d transport.Datagram, m *Message) {
	if d.From.IsUnspecified() {
		s.sock.SendToVia(d.Iface, ip.Broadcast, ip.Broadcast, ClientPort, m.Marshal())
		return
	}
	s.sock.SendTo(d.From, ClientPort, m.Marshal())
}
