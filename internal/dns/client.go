package dns

import (
	"errors"
	"time"

	"mosquitonet/internal/ip"
	"mosquitonet/internal/sim"
	"mosquitonet/internal/transport"
)

// Resolver errors.
var (
	ErrTimeout  = errors.New("dns: no response from server")
	ErrNXDomain = errors.New("dns: no such name")
	ErrRefused  = errors.New("dns: update refused")
)

// ResolverConfig tunes retry behaviour.
type ResolverConfig struct {
	RetryInterval time.Duration // per-attempt timeout (default 1s)
	MaxRetries    int           // attempts before giving up (default 3)
}

func (c ResolverConfig) withDefaults() ResolverConfig {
	if c.RetryInterval == 0 {
		c.RetryInterval = time.Second
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	return c
}

// Resolver issues queries and updates against a server.
type Resolver struct {
	ts     *transport.Stack
	loop   *sim.Loop
	server ip.Addr
	cfg    ResolverConfig
	idSeq  uint16
}

// NewResolver creates a resolver pointed at server.
func NewResolver(ts *transport.Stack, server ip.Addr, cfg ResolverConfig) *Resolver {
	return &Resolver{ts: ts, loop: ts.Host().Loop(), server: server, cfg: cfg.withDefaults()}
}

// Resolve looks name up, invoking done exactly once with the address or an
// error (ErrNXDomain, ErrTimeout, or a marshal/socket failure).
func (r *Resolver) Resolve(name string, done func(ip.Addr, error)) {
	r.idSeq++
	q := &Message{ID: r.idSeq, Op: OpQuery, Name: name}
	r.exchange(q, OpResponse, func(resp *Message, err error) {
		switch {
		case err != nil:
			done(ip.Addr{}, err)
		case resp.Rcode == RcodeNXDomain:
			done(ip.Addr{}, ErrNXDomain)
		case resp.Rcode != RcodeOK:
			done(ip.Addr{}, ErrRefused)
		default:
			done(ip.Addr(resp.Addr), nil)
		}
	})
}

// Update binds name to addr at the server (the extended operation).
func (r *Resolver) Update(name string, addr ip.Addr, done func(error)) {
	r.idSeq++
	u := &Message{ID: r.idSeq, Op: OpUpdate, Name: name, Addr: addr}
	r.exchange(u, OpUpdateOK, func(resp *Message, err error) {
		switch {
		case err != nil:
			done(err)
		case resp.Rcode != RcodeOK:
			done(ErrRefused)
		default:
			done(nil)
		}
	})
}

// exchange sends msg and retries until a response with the expected op and
// matching ID arrives, or retries are exhausted.
func (r *Resolver) exchange(msg *Message, wantOp uint8, done func(*Message, error)) {
	raw, err := msg.Marshal()
	if err != nil {
		done(nil, err)
		return
	}
	var sock *transport.UDPSocket
	var timer sim.Timer
	finished := false
	finish := func(resp *Message, err error) {
		if finished {
			return
		}
		finished = true
		timer.Stop()
		sock.Close()
		done(resp, err)
	}
	sock, err = r.ts.UDP(ip.Unspecified, 0, func(d transport.Datagram) {
		resp, err := Unmarshal(d.Payload)
		if err != nil || resp.ID != msg.ID || resp.Op != wantOp {
			//lint:allow dropaccounting duplicate or foreign responses after retransmission are expected; real loss surfaces as ErrTimeout
			return
		}
		finish(resp, nil)
	})
	if err != nil {
		done(nil, err)
		return
	}
	tries := 0
	var attempt func()
	attempt = func() {
		if finished {
			return
		}
		tries++
		if tries > r.cfg.MaxRetries {
			finish(nil, ErrTimeout)
			return
		}
		sock.SendTo(r.server, Port, raw)
		timer = r.loop.Schedule(r.cfg.RetryInterval, attempt)
	}
	attempt()
}
