// Package dns implements a compact DNS: A-record queries and responses
// over simulated UDP port 53, a zone-serving server with dynamic updates,
// and a retrying client resolver.
//
// The paper's release notes (Section 8) mention "an extended version of
// DNS on Linux" alongside the mobile-IP code. In MosquitoNet the home
// address is permanent, so names stay valid while hosts roam — this
// package exists to demonstrate exactly that property end to end: a
// correspondent resolves a mobile host's name once and the answer remains
// correct through every move. The dynamic-update operation is the
// "extended" part, letting a home agent or administrator bind names
// programmatically.
package dns

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
)

// Port is the DNS UDP port.
const Port = 53

// Op codes.
const (
	OpQuery    = 0
	OpResponse = 1
	OpUpdate   = 2
	OpUpdateOK = 3
)

// Response codes.
const (
	RcodeOK       = 0
	RcodeNXDomain = 3
	RcodeRefused  = 5
)

// MaxNameLen bounds encoded names.
const MaxNameLen = 255

// Message is a DNS message: a query or update carries Name (and Addr for
// updates); a response echoes Name and carries Rcode and Addr.
type Message struct {
	ID    uint16
	Op    uint8
	Rcode uint8
	Name  string
	Addr  [4]byte
}

// Wire format errors.
var (
	ErrShortMessage = errors.New("dns: truncated message")
	ErrBadName      = errors.New("dns: invalid name")
)

// NormalizeName lowercases and strips a trailing dot.
func NormalizeName(name string) string {
	return strings.TrimSuffix(strings.ToLower(name), ".")
}

// ValidName reports whether a name can be encoded: non-empty dot-separated
// labels of 1-63 bytes, total under MaxNameLen.
func ValidName(name string) bool {
	name = NormalizeName(name)
	if name == "" || len(name) > MaxNameLen-2 {
		return false
	}
	for _, label := range strings.Split(name, ".") {
		if len(label) == 0 || len(label) > 63 {
			return false
		}
	}
	return true
}

// Marshal serializes the message: header, length-prefixed labels, a zero
// terminator, and the address.
func (m *Message) Marshal() ([]byte, error) {
	name := NormalizeName(m.Name)
	if !ValidName(name) {
		return nil, ErrBadName
	}
	b := make([]byte, 0, 10+len(name)+2)
	var hdr [4]byte
	binary.BigEndian.PutUint16(hdr[0:], m.ID)
	hdr[2] = m.Op
	hdr[3] = m.Rcode
	b = append(b, hdr[:]...)
	for _, label := range strings.Split(name, ".") {
		b = append(b, byte(len(label)))
		b = append(b, label...)
	}
	b = append(b, 0)
	b = append(b, m.Addr[:]...)
	return b, nil
}

// Unmarshal parses a message.
func Unmarshal(b []byte) (*Message, error) {
	if len(b) < 5 {
		return nil, ErrShortMessage
	}
	m := &Message{
		ID:    binary.BigEndian.Uint16(b[0:]),
		Op:    b[2],
		Rcode: b[3],
	}
	i := 4
	var labels []string
	for {
		if i >= len(b) {
			return nil, ErrShortMessage
		}
		n := int(b[i])
		i++
		if n == 0 {
			break
		}
		if n > 63 || i+n > len(b) {
			return nil, ErrBadName
		}
		labels = append(labels, string(b[i:i+n]))
		i += n
	}
	if len(labels) == 0 {
		return nil, ErrBadName
	}
	m.Name = strings.Join(labels, ".")
	if len(m.Name) > MaxNameLen {
		return nil, ErrBadName
	}
	if i+4 > len(b) {
		return nil, ErrShortMessage
	}
	copy(m.Addr[:], b[i:i+4])
	return m, nil
}

func (m *Message) String() string {
	return fmt.Sprintf("dns id=%d op=%d rcode=%d %s %d.%d.%d.%d",
		m.ID, m.Op, m.Rcode, m.Name, m.Addr[0], m.Addr[1], m.Addr[2], m.Addr[3])
}
