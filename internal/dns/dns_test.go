package dns

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"mosquitonet/internal/ip"
	"mosquitonet/internal/link"
	"mosquitonet/internal/sim"
	"mosquitonet/internal/stack"
	"mosquitonet/internal/transport"
)

func TestMessageRoundTrip(t *testing.T) {
	m := &Message{ID: 7, Op: OpQuery, Name: "mh.mosquito.stanford.edu"}
	raw, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *m {
		t.Fatalf("round trip: %+v vs %+v", got, m)
	}
}

func TestNameNormalization(t *testing.T) {
	m := &Message{ID: 1, Op: OpQuery, Name: "MH.Example.COM."}
	raw, _ := m.Marshal()
	got, _ := Unmarshal(raw)
	if got.Name != "mh.example.com" {
		t.Fatalf("name = %q", got.Name)
	}
}

func TestBadNames(t *testing.T) {
	for _, bad := range []string{"", ".", "a..b", strings.Repeat("x", 64) + ".com", strings.Repeat("abcdefgh.", 32) + "com"} {
		m := &Message{ID: 1, Op: OpQuery, Name: bad}
		if _, err := m.Marshal(); err == nil {
			t.Errorf("marshal accepted %q", bad)
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal([]byte{1, 2}); err != ErrShortMessage {
		t.Errorf("short: %v", err)
	}
	// Name that runs past the buffer.
	if _, err := Unmarshal([]byte{0, 1, 0, 0, 40, 'a', 'b'}); err != ErrBadName {
		t.Errorf("overrun: %v", err)
	}
	// Missing address after the terminator.
	if _, err := Unmarshal([]byte{0, 1, 0, 0, 1, 'a', 0, 1}); err != ErrShortMessage {
		t.Errorf("missing addr: %v", err)
	}
}

func TestPropertyMessageRoundTrip(t *testing.T) {
	f := func(id uint16, op, rcode uint8, l1, l2 uint8, addr [4]byte) bool {
		label := func(n uint8) string {
			return strings.Repeat("a", int(n%63)+1)
		}
		m := &Message{ID: id, Op: op, Rcode: rcode, Name: label(l1) + "." + label(l2), Addr: addr}
		raw, err := m.Marshal()
		if err != nil {
			return false
		}
		got, err := Unmarshal(raw)
		return err == nil && *got == *m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// env is a DNS server and a client host on one subnet.
type env struct {
	loop   *sim.Loop
	server *Server
	res    *Resolver
	net    *link.Network
}

func newEnv(t *testing.T, cfg ServerConfig) *env {
	t.Helper()
	loop := sim.New(1)
	n := link.NewNetwork(loop, "net", link.Ethernet())
	mk := func(name, addr string) *transport.Stack {
		h := stack.NewHost(loop, name, stack.Config{})
		d := link.NewDevice(loop, name+"-eth", 0, 0)
		d.Attach(n)
		d.BringUp(nil)
		ifc := h.AddIface("eth0", d, ip.MustParseAddr(addr), ip.MustParsePrefix("10.0.0.0/24"), stack.IfaceOpts{})
		h.ConnectRoute(ifc)
		loop.RunFor(0)
		return transport.NewStack(h)
	}
	srvTS := mk("dns", "10.0.0.53")
	srv, err := NewServer(srvTS, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cliTS := mk("client", "10.0.0.2")
	return &env{
		loop:   loop,
		server: srv,
		res:    NewResolver(cliTS, ip.MustParseAddr("10.0.0.53"), ResolverConfig{RetryInterval: 200 * time.Millisecond}),
		net:    n,
	}
}

func TestResolve(t *testing.T) {
	e := newEnv(t, ServerConfig{Zone: map[string]ip.Addr{
		"mh.mosquito.edu": ip.MustParseAddr("36.135.0.7"),
	}})
	var got ip.Addr
	var gotErr error
	e.res.Resolve("MH.Mosquito.EDU.", func(a ip.Addr, err error) { got, gotErr = a, err })
	e.loop.RunFor(2 * time.Second)
	if gotErr != nil || got != ip.MustParseAddr("36.135.0.7") {
		t.Fatalf("got %v err=%v", got, gotErr)
	}
	if e.server.Stats().Answered != 1 {
		t.Fatalf("stats: %+v", e.server.Stats())
	}
}

func TestResolveNXDomain(t *testing.T) {
	e := newEnv(t, ServerConfig{})
	var gotErr error
	e.res.Resolve("nobody.example.com", func(_ ip.Addr, err error) { gotErr = err })
	e.loop.RunFor(2 * time.Second)
	if !errors.Is(gotErr, ErrNXDomain) {
		t.Fatalf("err = %v", gotErr)
	}
}

func TestResolveTimeoutWithoutServer(t *testing.T) {
	e := newEnv(t, ServerConfig{})
	res := NewResolver(e.res.ts, ip.MustParseAddr("10.0.0.99"), ResolverConfig{RetryInterval: 100 * time.Millisecond, MaxRetries: 2})
	var gotErr error
	done := false
	res.Resolve("mh.example.com", func(_ ip.Addr, err error) { gotErr, done = err, true })
	e.loop.RunFor(5 * time.Second)
	if !done || !errors.Is(gotErr, ErrTimeout) {
		t.Fatalf("err = %v done=%v", gotErr, done)
	}
}

func TestResolveRetriesThroughLoss(t *testing.T) {
	loop := sim.New(3)
	m := link.Ethernet()
	m.LossProb = 0.4
	n := link.NewNetwork(loop, "lossy", m)
	mk := func(name, addr string) *transport.Stack {
		h := stack.NewHost(loop, name, stack.Config{})
		d := link.NewDevice(loop, name+"-eth", 0, 0)
		d.Attach(n)
		d.BringUp(nil)
		ifc := h.AddIface("eth0", d, ip.MustParseAddr(addr), ip.MustParsePrefix("10.0.0.0/24"), stack.IfaceOpts{})
		h.ConnectRoute(ifc)
		loop.RunFor(0)
		return transport.NewStack(h)
	}
	if _, err := NewServer(mk("dns", "10.0.0.53"), ServerConfig{Zone: map[string]ip.Addr{"mh.x.y": ip.MustParseAddr("1.2.3.4")}}); err != nil {
		t.Fatal(err)
	}
	res := NewResolver(mk("client", "10.0.0.2"), ip.MustParseAddr("10.0.0.53"),
		ResolverConfig{RetryInterval: 200 * time.Millisecond, MaxRetries: 10})
	okCount := 0
	for i := 0; i < 10; i++ {
		res.Resolve("mh.x.y", func(a ip.Addr, err error) {
			if err == nil && a == ip.MustParseAddr("1.2.3.4") {
				okCount++
			}
		})
		loop.RunFor(5 * time.Second)
	}
	if okCount < 8 {
		t.Fatalf("only %d/10 resolved through 40%% loss", okCount)
	}
}

func TestDynamicUpdate(t *testing.T) {
	e := newEnv(t, ServerConfig{
		AllowUpdate: func(name string, _ ip.Addr, from ip.Addr) bool {
			return from == ip.MustParseAddr("10.0.0.2") // only our client
		},
	})
	var upErr error
	e.res.Update("laptop.mosquito.edu", ip.MustParseAddr("36.135.0.7"), func(err error) { upErr = err })
	e.loop.RunFor(2 * time.Second)
	if upErr != nil {
		t.Fatal(upErr)
	}
	if a, ok := e.server.Lookup("laptop.mosquito.edu"); !ok || a != ip.MustParseAddr("36.135.0.7") {
		t.Fatalf("zone not updated: %v %v", a, ok)
	}
	var got ip.Addr
	e.res.Resolve("laptop.mosquito.edu", func(a ip.Addr, err error) { got = a })
	e.loop.RunFor(2 * time.Second)
	if got != ip.MustParseAddr("36.135.0.7") {
		t.Fatalf("resolve after update: %v", got)
	}
}

func TestUpdateRefusedByDefault(t *testing.T) {
	e := newEnv(t, ServerConfig{}) // no AllowUpdate hook
	var upErr error
	e.res.Update("x.y.z", ip.MustParseAddr("1.1.1.1"), func(err error) { upErr = err })
	e.loop.RunFor(2 * time.Second)
	if !errors.Is(upErr, ErrRefused) {
		t.Fatalf("err = %v", upErr)
	}
	if e.server.Stats().UpdatesRefused != 1 {
		t.Fatalf("stats: %+v", e.server.Stats())
	}
}

func TestSetRecordAdministrative(t *testing.T) {
	e := newEnv(t, ServerConfig{})
	e.server.SetRecord("Admin.Example.COM", ip.MustParseAddr("9.9.9.9"))
	if a, ok := e.server.Lookup("admin.example.com"); !ok || a != ip.MustParseAddr("9.9.9.9") {
		t.Fatal("SetRecord/Lookup normalization broken")
	}
}
