package dns

import (
	"bytes"
	"testing"

	"mosquitonet/internal/ip"
)

// FuzzUnmarshal asserts the DNS parser never panics, and that whenever a
// parsed message re-marshals, the result parses back to the same message
// modulo name normalization and stays byte-stable from then on.
func FuzzUnmarshal(f *testing.F) {
	q := &Message{ID: 7, Op: OpQuery, Name: "mh.mosquitonet.example"}
	raw, err := q.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw)
	r := &Message{ID: 7, Op: OpResponse, Name: "mh.mosquitonet.example", Addr: ip.Addr{10, 0, 1, 40}}
	raw, err = r.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw)
	f.Add([]byte{0, 1, 0, 0, 1, 'a', 0})
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := Unmarshal(b)
		if err != nil {
			return
		}
		// A parsed name can still sit past ValidName's stricter length
		// bound; Marshal declining such a message is fine, but when it
		// accepts, the round trip must be stable.
		b1, err := m.Marshal()
		if err != nil {
			return
		}
		m2, err := Unmarshal(b1)
		if err != nil {
			t.Fatalf("re-marshaled message failed to parse: %v", err)
		}
		if m2.ID != m.ID || m2.Op != m.Op || m2.Rcode != m.Rcode || m2.Addr != m.Addr ||
			m2.Name != NormalizeName(m.Name) {
			t.Fatalf("round trip changed message: %+v -> %+v", m, m2)
		}
		b2, err := m2.Marshal()
		if err != nil {
			t.Fatalf("second marshal failed: %v", err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("round trip unstable:\n b1=%x\n b2=%x", b1, b2)
		}
	})
}
