package dns

import (
	"time"

	"mosquitonet/internal/ip"
	"mosquitonet/internal/sim"
	"mosquitonet/internal/transport"
)

// ServerConfig configures a DNS server.
type ServerConfig struct {
	// Zone is the initial name -> address mapping.
	Zone map[string]ip.Addr
	// AllowUpdate authorizes dynamic updates (the "extended" operation);
	// nil refuses all updates.
	AllowUpdate func(name string, addr ip.Addr, from ip.Addr) bool
	// ProcessingDelay models per-query server cost.
	ProcessingDelay time.Duration
}

// ServerStats counts server activity.
type ServerStats struct {
	Queries        uint64
	Answered       uint64
	NXDomain       uint64
	Updates        uint64
	UpdatesRefused uint64
	DropMalformed  uint64 // datagrams that failed to parse
	DropBadReply   uint64 // responses discarded because they failed to marshal
}

// Server answers A queries from its zone on UDP port 53.
type Server struct {
	loop  *sim.Loop
	cfg   ServerConfig
	zone  map[string]ip.Addr
	sock  *transport.UDPSocket
	stats ServerStats
}

// NewServer starts a server on ts, binding UDP port 53.
func NewServer(ts *transport.Stack, cfg ServerConfig) (*Server, error) {
	s := &Server{loop: ts.Host().Loop(), cfg: cfg, zone: make(map[string]ip.Addr)}
	for name, addr := range cfg.Zone {
		s.zone[NormalizeName(name)] = addr
	}
	sock, err := ts.UDP(ip.Unspecified, Port, s.input)
	if err != nil {
		return nil, err
	}
	s.sock = sock
	return s, nil
}

// Stats returns a snapshot of the counters.
func (s *Server) Stats() ServerStats { return s.stats }

// Lookup returns the zone's current binding for name.
func (s *Server) Lookup(name string) (ip.Addr, bool) {
	a, ok := s.zone[NormalizeName(name)]
	return a, ok
}

// SetRecord installs or replaces a record administratively.
func (s *Server) SetRecord(name string, addr ip.Addr) {
	s.zone[NormalizeName(name)] = addr
}

func (s *Server) input(d transport.Datagram) {
	m, err := Unmarshal(d.Payload)
	if err != nil {
		s.stats.DropMalformed++
		return
	}
	respond := func() {
		switch m.Op {
		case OpQuery:
			s.stats.Queries++
			resp := &Message{ID: m.ID, Op: OpResponse, Name: m.Name}
			if addr, ok := s.zone[NormalizeName(m.Name)]; ok {
				resp.Addr = addr
				s.stats.Answered++
			} else {
				resp.Rcode = RcodeNXDomain
				s.stats.NXDomain++
			}
			s.reply(d, resp)
		case OpUpdate:
			resp := &Message{ID: m.ID, Op: OpUpdateOK, Name: m.Name, Addr: m.Addr}
			if s.cfg.AllowUpdate != nil && s.cfg.AllowUpdate(m.Name, ip.Addr(m.Addr), d.From) {
				s.zone[NormalizeName(m.Name)] = ip.Addr(m.Addr)
				s.stats.Updates++
			} else {
				resp.Rcode = RcodeRefused
				s.stats.UpdatesRefused++
			}
			s.reply(d, resp)
		}
	}
	if s.cfg.ProcessingDelay > 0 {
		s.loop.Schedule(s.loop.Jitter(s.cfg.ProcessingDelay, s.cfg.ProcessingDelay/12), respond)
	} else {
		respond()
	}
}

func (s *Server) reply(d transport.Datagram, m *Message) {
	raw, err := m.Marshal()
	if err != nil {
		s.stats.DropBadReply++
		return
	}
	s.sock.SendTo(d.From, d.FromPort, raw)
}
