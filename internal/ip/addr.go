// Package ip implements the IPv4 wire formats used throughout the
// simulator: addresses and prefixes, the IPv4 header with real Internet
// checksums, UDP, ICMP and TCP headers, and IP-in-IP encapsulation
// (protocol 4), which is the tunneling mechanism MosquitoNet's home agents
// and mobile hosts use.
//
// Packets are marshaled to and parsed from real bytes. Nothing in the
// simulator passes structured packets around by reference across a link;
// what a host receives is what was serialized, so header overheads (the
// paper's 20-byte encapsulation cost) and malformed-packet handling are
// honest.
package ip

import (
	"fmt"
	"strconv"
	"strings"
)

// Addr is an IPv4 address.
type Addr [4]byte

// Unspecified is the zero address 0.0.0.0. A socket bound to it has not
// chosen a source address, which in MosquitoNet means "subject to mobile
// IP": the stack will fill in the home address.
var Unspecified = Addr{}

// Broadcast is the limited broadcast address 255.255.255.255.
var Broadcast = Addr{255, 255, 255, 255}

// MustParseAddr parses a dotted-quad address and panics on error. It is for
// constants in tests and topology builders.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// ParseAddr parses a dotted-quad IPv4 address such as "36.135.0.10".
func ParseAddr(s string) (Addr, error) {
	var a Addr
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return a, fmt.Errorf("ip: invalid address %q", s)
	}
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 || v > 255 || (len(p) > 1 && p[0] == '0') {
			return a, fmt.Errorf("ip: invalid address %q", s)
		}
		a[i] = byte(v)
	}
	return a, nil
}

// String returns the dotted-quad form, served from the world-level
// intern table so the hot diagnostic paths don't re-format (and
// re-allocate) the same addresses per packet.
func (a Addr) String() string { return InternString(a) }

// IsUnspecified reports whether a is 0.0.0.0.
func (a Addr) IsUnspecified() bool { return a == Unspecified }

// IsBroadcast reports whether a is the limited broadcast address.
func (a Addr) IsBroadcast() bool { return a == Broadcast }

// IsMulticast reports whether a is in 224.0.0.0/4.
func (a Addr) IsMulticast() bool { return a[0] >= 224 && a[0] <= 239 }

// IsLoopback reports whether a is in 127.0.0.0/8.
func (a Addr) IsLoopback() bool { return a[0] == 127 }

// Uint32 returns the address as a big-endian 32-bit integer.
func (a Addr) Uint32() uint32 {
	return uint32(a[0])<<24 | uint32(a[1])<<16 | uint32(a[2])<<8 | uint32(a[3])
}

// AddrFromUint32 converts a big-endian 32-bit integer to an address.
func AddrFromUint32(v uint32) Addr {
	return Addr{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
}

// Less orders addresses numerically; it exists so address sets can be
// sorted deterministically in reports.
func (a Addr) Less(b Addr) bool { return a.Uint32() < b.Uint32() }

// Prefix is an IPv4 network prefix in CIDR form.
type Prefix struct {
	Addr Addr // network address; host bits are zeroed by Normalize
	Bits int  // prefix length, 0..32
}

// MustParsePrefix parses CIDR notation and panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// ParsePrefix parses CIDR notation such as "36.135.0.0/16". The address
// part is normalized: host bits are cleared.
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("ip: invalid prefix %q: missing '/'", s)
	}
	a, err := ParseAddr(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	bits, err := strconv.Atoi(s[slash+1:])
	if err != nil || bits < 0 || bits > 32 {
		return Prefix{}, fmt.Errorf("ip: invalid prefix length in %q", s)
	}
	return Prefix{Addr: a, Bits: bits}.Normalize(), nil
}

// Mask returns the netmask as a 32-bit integer.
func (p Prefix) Mask() uint32 {
	if p.Bits <= 0 {
		return 0
	}
	return ^uint32(0) << (32 - uint(p.Bits))
}

// Normalize returns p with host bits cleared from the address.
func (p Prefix) Normalize() Prefix {
	p.Addr = AddrFromUint32(p.Addr.Uint32() & p.Mask())
	return p
}

// Contains reports whether a falls inside the prefix.
func (p Prefix) Contains(a Addr) bool {
	return a.Uint32()&p.Mask() == p.Addr.Uint32()&p.Mask()
}

// BroadcastAddr returns the directed broadcast address of the prefix.
func (p Prefix) BroadcastAddr() Addr {
	return AddrFromUint32(p.Addr.Uint32()&p.Mask() | ^p.Mask())
}

// NetworkAddr returns the network address (host bits zero).
func (p Prefix) NetworkAddr() Addr { return AddrFromUint32(p.Addr.Uint32() & p.Mask()) }

// HostCount returns the number of assignable host addresses (excluding
// network and broadcast addresses for prefixes shorter than /31).
func (p Prefix) HostCount() int {
	switch {
	case p.Bits >= 32:
		return 1
	case p.Bits == 31:
		return 2
	default:
		return (1 << (32 - uint(p.Bits))) - 2
	}
}

// Nth returns the nth assignable host address within the prefix, counting
// from 1 (the address just above the network address).
func (p Prefix) Nth(n int) (Addr, error) {
	if n < 1 || n > p.HostCount() {
		return Addr{}, fmt.Errorf("ip: host index %d out of range for %v", n, p)
	}
	base := p.Addr.Uint32() & p.Mask()
	if p.Bits >= 31 {
		return AddrFromUint32(base + uint32(n-1)), nil
	}
	return AddrFromUint32(base + uint32(n)), nil
}

// String returns CIDR notation.
func (p Prefix) String() string { return fmt.Sprintf("%s/%d", p.Addr, p.Bits) }
