package ip

import (
	"testing"
	"testing/quick"
)

func TestParseAddr(t *testing.T) {
	cases := []struct {
		in   string
		want Addr
		ok   bool
	}{
		{"0.0.0.0", Addr{0, 0, 0, 0}, true},
		{"36.135.0.10", Addr{36, 135, 0, 10}, true},
		{"255.255.255.255", Addr{255, 255, 255, 255}, true},
		{"1.2.3", Addr{}, false},
		{"1.2.3.4.5", Addr{}, false},
		{"256.1.1.1", Addr{}, false},
		{"-1.1.1.1", Addr{}, false},
		{"a.b.c.d", Addr{}, false},
		{"01.2.3.4", Addr{}, false}, // leading zero rejected
		{"", Addr{}, false},
	}
	for _, c := range cases {
		got, err := ParseAddr(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParseAddr(%q) err=%v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseAddr(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestAddrStringRoundTrip(t *testing.T) {
	f := func(a Addr) bool {
		got, err := ParseAddr(a.String())
		return err == nil && got == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddrUint32RoundTrip(t *testing.T) {
	f := func(v uint32) bool { return AddrFromUint32(v).Uint32() == v }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddrPredicates(t *testing.T) {
	if !Unspecified.IsUnspecified() || MustParseAddr("1.1.1.1").IsUnspecified() {
		t.Error("IsUnspecified wrong")
	}
	if !Broadcast.IsBroadcast() || MustParseAddr("36.135.255.255").IsBroadcast() {
		t.Error("IsBroadcast wrong")
	}
	if !MustParseAddr("224.0.0.1").IsMulticast() || MustParseAddr("223.1.1.1").IsMulticast() || MustParseAddr("240.0.0.1").IsMulticast() {
		t.Error("IsMulticast wrong")
	}
	if !MustParseAddr("127.0.0.1").IsLoopback() || MustParseAddr("128.0.0.1").IsLoopback() {
		t.Error("IsLoopback wrong")
	}
	if !MustParseAddr("1.0.0.1").Less(MustParseAddr("1.0.0.2")) {
		t.Error("Less wrong")
	}
}

func TestMustParseAddrPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParseAddr did not panic on bad input")
		}
	}()
	MustParseAddr("not an address")
}

func TestParsePrefix(t *testing.T) {
	p, err := ParsePrefix("36.135.0.10/24")
	if err != nil {
		t.Fatal(err)
	}
	if p.Addr != MustParseAddr("36.135.0.0") || p.Bits != 24 {
		t.Fatalf("prefix not normalized: %v", p)
	}
	if p.String() != "36.135.0.0/24" {
		t.Fatalf("String = %q", p.String())
	}
	for _, bad := range []string{"36.135.0.0", "36.135.0.0/33", "36.135.0.0/-1", "x/24", "36.135.0.0/x"} {
		if _, err := ParsePrefix(bad); err == nil {
			t.Errorf("ParsePrefix(%q) accepted", bad)
		}
	}
}

func TestPrefixContains(t *testing.T) {
	p := MustParsePrefix("36.135.0.0/16")
	for _, in := range []string{"36.135.0.1", "36.135.255.254", "36.135.128.0"} {
		if !p.Contains(MustParseAddr(in)) {
			t.Errorf("%v should contain %s", p, in)
		}
	}
	for _, out := range []string{"36.134.0.1", "37.135.0.1", "0.0.0.0"} {
		if p.Contains(MustParseAddr(out)) {
			t.Errorf("%v should not contain %s", p, out)
		}
	}
	all := MustParsePrefix("0.0.0.0/0")
	if !all.Contains(MustParseAddr("200.1.2.3")) {
		t.Error("/0 should contain everything")
	}
	host := MustParsePrefix("10.0.0.5/32")
	if !host.Contains(MustParseAddr("10.0.0.5")) || host.Contains(MustParseAddr("10.0.0.6")) {
		t.Error("/32 containment wrong")
	}
}

func TestPrefixBroadcastNetwork(t *testing.T) {
	p := MustParsePrefix("36.135.4.0/24")
	if p.BroadcastAddr() != MustParseAddr("36.135.4.255") {
		t.Errorf("broadcast = %v", p.BroadcastAddr())
	}
	if p.NetworkAddr() != MustParseAddr("36.135.4.0") {
		t.Errorf("network = %v", p.NetworkAddr())
	}
}

func TestPrefixHostCount(t *testing.T) {
	cases := []struct {
		in   string
		want int
	}{
		{"10.0.0.0/24", 254},
		{"10.0.0.0/30", 2},
		{"10.0.0.0/31", 2},
		{"10.0.0.0/32", 1},
		{"10.0.0.0/16", 65534},
	}
	for _, c := range cases {
		if got := MustParsePrefix(c.in).HostCount(); got != c.want {
			t.Errorf("HostCount(%s) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestPrefixNth(t *testing.T) {
	p := MustParsePrefix("36.135.4.0/24")
	a, err := p.Nth(1)
	if err != nil || a != MustParseAddr("36.135.4.1") {
		t.Fatalf("Nth(1) = %v, %v", a, err)
	}
	a, err = p.Nth(254)
	if err != nil || a != MustParseAddr("36.135.4.254") {
		t.Fatalf("Nth(254) = %v, %v", a, err)
	}
	if _, err := p.Nth(0); err == nil {
		t.Error("Nth(0) accepted")
	}
	if _, err := p.Nth(255); err == nil {
		t.Error("Nth(255) accepted (would be broadcast)")
	}
}

// Property: every Nth address is contained in the prefix and is neither the
// network nor the broadcast address.
func TestPropertyNthInPrefix(t *testing.T) {
	p := MustParsePrefix("10.1.2.0/26")
	for n := 1; n <= p.HostCount(); n++ {
		a, err := p.Nth(n)
		if err != nil {
			t.Fatalf("Nth(%d): %v", n, err)
		}
		if !p.Contains(a) {
			t.Fatalf("Nth(%d)=%v not in %v", n, a, p)
		}
		if a == p.NetworkAddr() || a == p.BroadcastAddr() {
			t.Fatalf("Nth(%d)=%v is network or broadcast", n, a)
		}
	}
}

// Property: Contains is equivalent to masked-prefix equality for arbitrary
// addresses and prefix lengths.
func TestPropertyContainsMask(t *testing.T) {
	f := func(a, b Addr, bitsRaw uint8) bool {
		bits := int(bitsRaw % 33)
		p := Prefix{Addr: a, Bits: bits}.Normalize()
		want := a.Uint32()&p.Mask() == b.Uint32()&p.Mask()
		return p.Contains(b) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
