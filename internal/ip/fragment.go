package ip

import (
	"errors"
	"sort"
)

// Fragmentation support. Tunneling makes this load-bearing rather than
// decorative: encapsulation adds 20 bytes, so a full-MTU packet entering
// the home agent's tunnel no longer fits the path to the care-of address
// and must be fragmented (and reassembled by the mobile host before
// decapsulation), exactly as with real mobile IP.

// ErrFragNeeded is returned when a packet exceeds the MTU but carries the
// don't-fragment flag.
var ErrFragNeeded = errors.New("ip: fragmentation needed but DF set")

// ErrBadMTU is returned for MTUs too small to carry any payload.
var ErrBadMTU = errors.New("ip: mtu cannot hold a header and one fragment block")

// Fragment splits p into fragments whose marshaled size fits mtu. A packet
// that already fits is returned unchanged as a single element. Offsets are
// in 8-byte blocks per the IPv4 header format; p may itself be a fragment
// (its offset and more-fragments flag are preserved into the pieces).
//
// Fragment payloads alias sub-slices of p.Payload rather than copying:
// payloads are immutable once a packet is in flight, and the fragments are
// marshaled (copied onto the wire) before p is released.
func Fragment(p *Packet, mtu int) ([]*Packet, error) {
	if p.Len() <= mtu {
		return []*Packet{p}, nil
	}
	if p.DontFrag {
		return nil, ErrFragNeeded
	}
	chunk := (mtu - HeaderLen) &^ 7 // fragment payloads are 8-byte aligned
	if chunk <= 0 {
		return nil, ErrBadMTU
	}
	var frags []*Packet
	for off := 0; off < len(p.Payload); off += chunk {
		end := off + chunk
		last := false
		if end >= len(p.Payload) {
			end = len(p.Payload)
			last = true
		}
		f := &Packet{
			Header:  p.Header,
			Payload: p.Payload[off:end:end],
		}
		f.FragOff = p.FragOff + uint16(off/8)
		f.MoreFrag = !last || p.MoreFrag
		frags = append(frags, f)
	}
	return frags, nil
}

// IsFragment reports whether p is one piece of a fragmented packet.
func (p *Packet) IsFragment() bool { return p.MoreFrag || p.FragOff != 0 }

type fragKey struct {
	src, dst Addr
	proto    Protocol
	id       uint16
}

type fragBuf struct {
	pieces  []*Packet
	arrived int64 // reassembler tick when the first piece arrived
}

// ReassemblerStats counts reassembly activity.
type ReassemblerStats struct {
	Fragments   uint64 // fragments accepted
	Reassembled uint64 // packets completed
	Expired     uint64 // partial packets discarded by timeout sweeps
	DropOverlap uint64 // partial packets discarded for overlapping fragments
}

// Reassembler rebuilds original packets from fragments. It is driven by
// explicit Sweep calls (the host schedules them) rather than timers per
// packet, keeping it allocation-light.
type Reassembler struct {
	partial map[fragKey]*fragBuf
	tick    int64
	// MaxAge is how many sweeps a partial packet survives (default 2).
	MaxAge int64
	stats  ReassemblerStats
}

// NewReassembler creates an empty reassembler.
func NewReassembler() *Reassembler {
	return &Reassembler{partial: make(map[fragKey]*fragBuf), MaxAge: 2}
}

// Stats returns a snapshot of the counters.
func (r *Reassembler) Stats() ReassemblerStats { return r.stats }

// Pending returns the number of incomplete packets held.
func (r *Reassembler) Pending() int { return len(r.partial) }

// Add accepts a fragment. When it completes a packet, the reassembled
// packet is returned with ok=true. Non-fragment packets are returned
// immediately.
func (r *Reassembler) Add(p *Packet) (*Packet, bool) {
	if !p.IsFragment() {
		return p, true
	}
	r.stats.Fragments++
	key := fragKey{src: p.Src, dst: p.Dst, proto: p.Protocol, id: p.ID}
	buf, ok := r.partial[key]
	if !ok {
		buf = &fragBuf{arrived: r.tick}
		r.partial[key] = buf
	}
	// Replace duplicates (same offset) rather than stacking them. A
	// fragment that partially overlaps an existing piece at a different
	// offset can never assemble — the coverage check would see a permanent
	// hole and the buffer would sit in partial until Sweep — so the whole
	// buffer is dropped and accounted the moment the overlap appears.
	replaced := false
	for i, q := range buf.pieces {
		if q.FragOff == p.FragOff {
			buf.pieces[i] = p
			replaced = true
			break
		}
		if overlaps(q, p) {
			delete(r.partial, key)
			r.stats.DropOverlap++
			return nil, false
		}
	}
	if !replaced {
		buf.pieces = append(buf.pieces, p)
	}
	full, done := assemble(buf.pieces)
	if !done {
		//lint:allow dropaccounting fragment retained in the partial buffer awaiting the rest; Sweep accounts expiry
		return nil, false
	}
	delete(r.partial, key)
	r.stats.Reassembled++
	return full, true
}

// Sweep ages partial packets, discarding any that have been waiting for
// more than MaxAge sweeps. The host calls it periodically.
func (r *Reassembler) Sweep() {
	r.tick++
	for key, buf := range r.partial {
		if r.tick-buf.arrived > r.MaxAge {
			delete(r.partial, key)
			r.stats.Expired++
		}
	}
}

// overlaps reports whether two fragments at different offsets claim any of
// the same 8-byte blocks. Payload lengths are rounded up so a short tail
// fragment still covers its final partial block.
func overlaps(a, b *Packet) bool {
	aEnd := uint32(a.FragOff) + uint32(len(a.Payload)+7)/8
	bEnd := uint32(b.FragOff) + uint32(len(b.Payload)+7)/8
	return uint32(a.FragOff) < bEnd && uint32(b.FragOff) < aEnd
}

// assemble checks whether pieces cover a contiguous packet and builds it.
func assemble(pieces []*Packet) (*Packet, bool) {
	sort.Slice(pieces, func(i, j int) bool { return pieces[i].FragOff < pieces[j].FragOff })
	if pieces[0].FragOff != 0 {
		return nil, false
	}
	expect := uint16(0)
	for i, p := range pieces {
		if p.FragOff != expect {
			return nil, false // hole
		}
		if i < len(pieces)-1 {
			if !p.MoreFrag || len(p.Payload)%8 != 0 {
				return nil, false // malformed interior fragment
			}
		}
		expect = p.FragOff + uint16(len(p.Payload)/8)
	}
	if pieces[len(pieces)-1].MoreFrag {
		return nil, false // tail missing
	}
	full := &Packet{Header: pieces[0].Header}
	full.MoreFrag = false
	full.FragOff = 0
	for _, p := range pieces {
		full.Payload = append(full.Payload, p.Payload...)
	}
	return full, true
}
