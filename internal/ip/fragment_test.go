package ip

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func fragSample(size int) *Packet {
	p := &Packet{
		Header: Header{
			ID: 77, TTL: 64, Protocol: ProtoUDP,
			Src: MustParseAddr("36.135.0.1"), Dst: MustParseAddr("36.8.0.100"),
		},
		Payload: make([]byte, size),
	}
	for i := range p.Payload {
		p.Payload[i] = byte(i * 13)
	}
	return p
}

func TestFragmentSmallPacketUnchanged(t *testing.T) {
	p := fragSample(100)
	frags, err := Fragment(p, 1500)
	if err != nil || len(frags) != 1 || frags[0] != p {
		t.Fatalf("small packet fragmented: %d pieces, %v", len(frags), err)
	}
}

func TestFragmentSizesAndOffsets(t *testing.T) {
	p := fragSample(3000)
	frags, err := Fragment(p, 1100)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) != 3 {
		t.Fatalf("pieces = %d", len(frags))
	}
	for i, f := range frags {
		if f.Len() > 1100 {
			t.Fatalf("fragment %d size %d exceeds MTU", i, f.Len())
		}
		last := i == len(frags)-1
		if f.MoreFrag == last {
			t.Fatalf("fragment %d MF=%v", i, f.MoreFrag)
		}
		if !last && len(f.Payload)%8 != 0 {
			t.Fatalf("interior fragment %d payload %d not 8-aligned", i, len(f.Payload))
		}
		if f.ID != p.ID || f.Protocol != p.Protocol || f.Src != p.Src || f.Dst != p.Dst {
			t.Fatalf("fragment %d header fields drifted", i)
		}
	}
	if frags[1].FragOff != uint16(len(frags[0].Payload)/8) {
		t.Fatalf("second offset %d", frags[1].FragOff)
	}
}

func TestFragmentDFRejected(t *testing.T) {
	p := fragSample(3000)
	p.DontFrag = true
	if _, err := Fragment(p, 1100); err != ErrFragNeeded {
		t.Fatalf("err = %v", err)
	}
}

func TestFragmentTinyMTURejected(t *testing.T) {
	if _, err := Fragment(fragSample(100), 21); err != ErrBadMTU {
		t.Fatalf("err = %v", err)
	}
}

func TestReassembleInOrder(t *testing.T) {
	p := fragSample(3000)
	frags, _ := Fragment(p, 1100)
	r := NewReassembler()
	for i, f := range frags {
		full, done := r.Add(f)
		if i < len(frags)-1 && done {
			t.Fatal("completed early")
		}
		if i == len(frags)-1 {
			if !done {
				t.Fatal("did not complete")
			}
			if !bytes.Equal(full.Payload, p.Payload) {
				t.Fatal("payload corrupted")
			}
			if full.IsFragment() {
				t.Fatal("reassembled packet still looks like a fragment")
			}
		}
	}
	if r.Pending() != 0 {
		t.Fatalf("pending = %d", r.Pending())
	}
	if r.Stats().Reassembled != 1 {
		t.Fatalf("stats: %+v", r.Stats())
	}
}

func TestReassembleShuffled(t *testing.T) {
	p := fragSample(8000)
	frags, _ := Fragment(p, 600)
	rng := rand.New(rand.NewSource(3))
	rng.Shuffle(len(frags), func(i, j int) { frags[i], frags[j] = frags[j], frags[i] })
	r := NewReassembler()
	var full *Packet
	for _, f := range frags {
		if got, done := r.Add(f); done {
			full = got
		}
	}
	if full == nil || !bytes.Equal(full.Payload, p.Payload) {
		t.Fatal("shuffled reassembly failed")
	}
}

func TestReassembleDuplicatesHarmless(t *testing.T) {
	p := fragSample(2000)
	frags, _ := Fragment(p, 1100)
	r := NewReassembler()
	r.Add(frags[0])
	r.Add(frags[0]) // duplicate
	full, done := r.Add(frags[1])
	if !done || !bytes.Equal(full.Payload, p.Payload) {
		t.Fatal("duplicate fragment broke reassembly")
	}
}

func TestReassembleInterleavedPackets(t *testing.T) {
	a := fragSample(2400)
	b := fragSample(2400)
	b.ID = 78
	for i := range b.Payload {
		b.Payload[i] = byte(i * 7)
	}
	fa, _ := Fragment(a, 1100)
	fb, _ := Fragment(b, 1100)
	r := NewReassembler()
	var got []*Packet
	for i := range fa {
		if full, done := r.Add(fa[i]); done {
			got = append(got, full)
		}
		if full, done := r.Add(fb[i]); done {
			got = append(got, full)
		}
	}
	if len(got) != 2 {
		t.Fatalf("reassembled %d packets", len(got))
	}
	if !bytes.Equal(got[0].Payload, a.Payload) || !bytes.Equal(got[1].Payload, b.Payload) {
		t.Fatal("interleaved packets crossed")
	}
}

func TestReassemblySweepExpires(t *testing.T) {
	p := fragSample(3000)
	frags, _ := Fragment(p, 1100)
	r := NewReassembler()
	r.Add(frags[0]) // hole remains
	r.Sweep()
	r.Sweep()
	r.Sweep() // age 3 > MaxAge 2
	if r.Pending() != 0 {
		t.Fatal("partial packet survived the sweeps")
	}
	if r.Stats().Expired != 1 {
		t.Fatalf("stats: %+v", r.Stats())
	}
	// The late tail must not resurrect the packet.
	if _, done := r.Add(frags[1]); done {
		t.Fatal("expired packet completed from its tail")
	}
}

func TestReassembleMissingTailNeverCompletes(t *testing.T) {
	p := fragSample(3000)
	frags, _ := Fragment(p, 1100)
	r := NewReassembler()
	for _, f := range frags[:len(frags)-1] {
		if _, done := r.Add(f); done {
			t.Fatal("completed without the tail")
		}
	}
}

func TestFragmentsSurviveWire(t *testing.T) {
	p := fragSample(3000)
	frags, _ := Fragment(p, 1100)
	r := NewReassembler()
	var full *Packet
	for _, f := range frags {
		raw, err := f.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		rx, err := Unmarshal(raw)
		if err != nil {
			t.Fatal(err)
		}
		if got, done := r.Add(rx); done {
			full = got
		}
	}
	if full == nil || !bytes.Equal(full.Payload, p.Payload) {
		t.Fatal("wire round trip broke reassembly")
	}
}

// Property: fragment+reassemble is the identity for any payload size and
// viable MTU, regardless of arrival order.
func TestPropertyFragmentRoundTrip(t *testing.T) {
	f := func(sizeRaw uint16, mtuRaw uint16, seed int64) bool {
		size := int(sizeRaw%20000) + 1
		mtu := int(mtuRaw%1400) + 48 // >= 48: header + >= 1 block
		p := fragSample(size)
		frags, err := Fragment(p, mtu)
		if err != nil {
			return false
		}
		for _, fr := range frags {
			if fr.Len() > mtu {
				return false
			}
		}
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(len(frags), func(i, j int) { frags[i], frags[j] = frags[j], frags[i] })
		r := NewReassembler()
		var full *Packet
		for _, fr := range frags {
			if got, done := r.Add(fr); done {
				full = got
			}
		}
		return full != nil && bytes.Equal(full.Payload, p.Payload) && full.Header == p.Header
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReassembleOverlapDropsBuffer(t *testing.T) {
	p := fragSample(3000)
	frags, _ := Fragment(p, 1100)
	r := NewReassembler()
	r.Add(frags[0])

	// A rogue fragment straddling the first piece at a non-identical
	// offset can never assemble; the whole partial buffer must be dropped
	// and accounted rather than leaking until Sweep.
	rogue := &Packet{Header: frags[0].Header, Payload: make([]byte, 64)}
	rogue.FragOff = frags[0].FragOff + 1
	rogue.MoreFrag = true
	if _, done := r.Add(rogue); done {
		t.Fatal("overlapping fragment completed a packet")
	}
	if r.Pending() != 0 {
		t.Fatalf("partial buffer leaked: pending = %d", r.Pending())
	}
	if s := r.Stats(); s.DropOverlap != 1 {
		t.Fatalf("DropOverlap = %d, want 1 (stats %+v)", s.DropOverlap, s)
	}

	// The flow recovers: a clean retransmission of every piece assembles.
	var full *Packet
	for _, f := range frags {
		if got, done := r.Add(f); done {
			full = got
		}
	}
	if full == nil || !bytes.Equal(full.Payload, p.Payload) {
		t.Fatal("reassembly after overlap drop failed")
	}
}

func TestReassembleTailOverlapDrops(t *testing.T) {
	p := fragSample(3000)
	frags, _ := Fragment(p, 1100)
	r := NewReassembler()
	r.Add(frags[1])
	// A fragment one block before an existing piece whose rounded-up
	// extent reaches into it is an overlap too.
	rogue := &Packet{Header: frags[1].Header, Payload: make([]byte, 12)}
	rogue.FragOff = frags[1].FragOff - 1
	rogue.MoreFrag = true
	if _, done := r.Add(rogue); done {
		t.Fatal("overlapping tail completed a packet")
	}
	if r.Pending() != 0 || r.Stats().DropOverlap != 1 {
		t.Fatalf("pending=%d stats=%+v", r.Pending(), r.Stats())
	}
}
