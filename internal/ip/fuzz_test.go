package ip

import (
	"bytes"
	"testing"
)

// fuzzSrc/fuzzDst anchor the pseudo-header for the UDP/TCP targets; seeds
// and checks use the same pair so checksums line up.
var (
	fuzzSrc = Addr{10, 0, 0, 1}
	fuzzDst = Addr{10, 0, 0, 2}
)

// FuzzUnmarshalHeader asserts Unmarshal never panics and, when it accepts
// input, that Marshal∘Unmarshal is a fixed point from the first re-marshal
// onward.
func FuzzUnmarshalHeader(f *testing.F) {
	seed := &Packet{
		Header:  Header{TOS: 0x10, ID: 42, TTL: 64, Protocol: ProtoUDP, Src: fuzzSrc, Dst: fuzzDst},
		Payload: []byte("mosquitonet"),
	}
	raw, err := seed.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw)
	frag := &Packet{
		Header:  Header{ID: 7, MoreFrag: true, FragOff: 16, TTL: 3, Protocol: ProtoICMP, Src: fuzzSrc, Dst: fuzzDst},
		Payload: bytes.Repeat([]byte{0xab}, 24),
	}
	raw, err = frag.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw)
	f.Add([]byte{0x45})
	f.Fuzz(func(t *testing.T, b []byte) {
		p, err := Unmarshal(b)
		if err != nil {
			return
		}
		b1, err := p.Marshal()
		if err != nil {
			t.Fatalf("parsed packet failed to marshal: %v", err)
		}
		p2, err := Unmarshal(b1)
		if err != nil {
			t.Fatalf("re-marshaled packet failed to parse: %v", err)
		}
		b2, err := p2.Marshal()
		if err != nil {
			t.Fatalf("second marshal failed: %v", err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("round trip unstable:\n b1=%x\n b2=%x", b1, b2)
		}
	})
}

func FuzzUnmarshalUDP(f *testing.F) {
	f.Add(MarshalUDP(fuzzSrc, fuzzDst, UDPHeader{SrcPort: 68, DstPort: 67}, []byte("discover")))
	f.Add(MarshalUDP(fuzzSrc, fuzzDst, UDPHeader{SrcPort: 5353, DstPort: 53}, nil))
	f.Add([]byte{0, 1, 2})
	f.Fuzz(func(t *testing.T, b []byte) {
		h, payload, err := UnmarshalUDP(fuzzSrc, fuzzDst, b)
		if err != nil {
			return
		}
		b1 := MarshalUDP(fuzzSrc, fuzzDst, h, payload)
		h2, payload2, err := UnmarshalUDP(fuzzSrc, fuzzDst, b1)
		if err != nil {
			t.Fatalf("re-marshaled datagram failed to parse: %v", err)
		}
		if h2 != h || !bytes.Equal(payload2, payload) {
			t.Fatalf("round trip changed datagram: %+v/%x -> %+v/%x", h, payload, h2, payload2)
		}
	})
}

func FuzzUnmarshalTCP(f *testing.F) {
	f.Add(MarshalTCP(fuzzSrc, fuzzDst, TCPHeader{SrcPort: 1234, DstPort: 80, Seq: 99, Ack: 100, Flags: TCPSyn | TCPAck, Window: 4096}, nil))
	f.Add(MarshalTCP(fuzzSrc, fuzzDst, TCPHeader{SrcPort: 9, DstPort: 9, Flags: TCPPsh}, []byte("payload")))
	f.Fuzz(func(t *testing.T, b []byte) {
		h, payload, err := UnmarshalTCP(fuzzSrc, fuzzDst, b)
		if err != nil {
			return
		}
		b1 := MarshalTCP(fuzzSrc, fuzzDst, h, payload)
		h2, payload2, err := UnmarshalTCP(fuzzSrc, fuzzDst, b1)
		if err != nil {
			t.Fatalf("re-marshaled segment failed to parse: %v", err)
		}
		if h2 != h || !bytes.Equal(payload2, payload) {
			t.Fatalf("round trip changed segment: %+v/%x -> %+v/%x", h, payload, h2, payload2)
		}
	})
}

func FuzzUnmarshalICMP(f *testing.F) {
	f.Add(MarshalICMP(&ICMP{Type: ICMPEchoRequest, ID: 7, Seq: 1, Body: []byte("ping")}))
	f.Add(MarshalICMP(&ICMP{Type: ICMPDestUnreach, Code: 4}))
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := UnmarshalICMP(b)
		if err != nil {
			return
		}
		b1 := MarshalICMP(m)
		m2, err := UnmarshalICMP(b1)
		if err != nil {
			t.Fatalf("re-marshaled message failed to parse: %v", err)
		}
		if m2.Type != m.Type || m2.Code != m.Code || m2.ID != m.ID || m2.Seq != m.Seq || !bytes.Equal(m2.Body, m.Body) {
			t.Fatalf("round trip changed message: %+v -> %+v", m, m2)
		}
	})
}

// FuzzFragmentReassemble splits an arbitrary payload at an arbitrary MTU
// and asserts the reassembler rebuilds it byte-for-byte, in either arrival
// order.
func FuzzFragmentReassemble(f *testing.F) {
	f.Add([]byte("the quick brown fox jumps over the lazy dog"), uint8(1), false)
	f.Add(bytes.Repeat([]byte{0x5a}, 345), uint8(3), true)
	f.Add([]byte{1}, uint8(0), false)
	f.Fuzz(func(t *testing.T, payload []byte, mtuRaw uint8, reversed bool) {
		if len(payload) == 0 || len(payload) > 2048 {
			return
		}
		mtu := HeaderLen + 8*(1+int(mtuRaw%16))
		p := &Packet{
			Header:  Header{ID: 31, TTL: 64, Protocol: ProtoUDP, Src: fuzzSrc, Dst: fuzzDst},
			Payload: append([]byte(nil), payload...),
		}
		frags, err := Fragment(p, mtu)
		if err != nil {
			t.Fatalf("fragment: %v", err)
		}
		if len(frags) == 1 {
			if !bytes.Equal(frags[0].Payload, payload) {
				t.Fatal("unfragmented packet changed payload")
			}
			return
		}
		if reversed {
			for i, j := 0, len(frags)-1; i < j; i, j = i+1, j-1 {
				frags[i], frags[j] = frags[j], frags[i]
			}
		}
		r := NewReassembler()
		var full *Packet
		for i, fr := range frags {
			got, done := r.Add(fr)
			if done != (i == len(frags)-1) {
				t.Fatalf("fragment %d/%d: done=%v", i+1, len(frags), done)
			}
			if done {
				full = got
			}
		}
		if full == nil || !bytes.Equal(full.Payload, payload) {
			t.Fatalf("reassembly mismatch: got %d bytes, want %d", len(full.Payload), len(payload))
		}
	})
}
