package ip

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Protocol is an IPv4 protocol number.
type Protocol uint8

// Protocol numbers used by the simulator. ProtoIPIP (4) is the IP-in-IP
// encapsulation carrying tunneled mobile-IP traffic.
const (
	ProtoICMP Protocol = 1
	ProtoIPIP Protocol = 4
	ProtoTCP  Protocol = 6
	ProtoUDP  Protocol = 17
)

// String names the protocols this stack speaks.
func (p Protocol) String() string {
	switch p {
	case ProtoICMP:
		return "icmp"
	case ProtoIPIP:
		return "ipip"
	case ProtoTCP:
		return "tcp"
	case ProtoUDP:
		return "udp"
	default:
		return fmt.Sprintf("proto(%d)", uint8(p))
	}
}

// HeaderLen is the length of an IPv4 header without options. The simulator
// does not emit IP options, so this is also the encapsulation overhead of
// one IP-in-IP layer — the paper's "20 bytes or more".
const HeaderLen = 20

// MaxTotalLen is the largest total packet length representable.
const MaxTotalLen = 0xffff

// DefaultTTL is the initial TTL for locally originated packets.
const DefaultTTL = 64

// Header is a parsed IPv4 header. Fragmentation fields are carried so that
// headers round-trip, but the simulated media use MTUs large enough that
// the stack never fragments.
type Header struct {
	TOS      uint8
	ID       uint16
	DontFrag bool
	MoreFrag bool
	FragOff  uint16 // in 8-byte units
	TTL      uint8
	Protocol Protocol
	Src, Dst Addr
}

// Packet is an IPv4 packet: a header plus its payload. For IP-in-IP
// packets the payload is the marshaled inner packet.
type Packet struct {
	Header
	Payload []byte

	// Trace is the packet's lifecycle trace ID: simulator metadata, never
	// part of the wire format. Zero means unassigned; the stack assigns one
	// from sim.Loop.NextSerial when the packet is first injected, and every
	// layer (link frames, ARP queues, tunnel encapsulation) carries it so a
	// packet's hops can be replayed as one causal timeline.
	Trace uint64
}

// Len returns the marshaled length of the packet in bytes.
func (p *Packet) Len() int { return HeaderLen + len(p.Payload) }

// String summarizes the packet for traces.
func (p *Packet) String() string {
	return fmt.Sprintf("%s %s->%s ttl=%d len=%d", p.Protocol, p.Src, p.Dst, p.TTL, p.Len())
}

// Clone returns a deep copy of the packet.
func (p *Packet) Clone() *Packet {
	q := *p
	q.Payload = append([]byte(nil), p.Payload...)
	return &q
}

// ShallowClone returns a copy of the packet sharing the payload slice.
// Payloads are treated as immutable once a packet is in flight, so the
// forwarding path uses this to rewrite header fields (TTL) without copying
// the body; callers that mutate the payload must use Clone.
func (p *Packet) ShallowClone() *Packet {
	q := *p
	return &q
}

// Marshal errors.
var (
	ErrTooLong      = errors.New("ip: packet exceeds maximum total length")
	ErrShortPacket  = errors.New("ip: truncated packet")
	ErrBadVersion   = errors.New("ip: not an IPv4 packet")
	ErrBadChecksum  = errors.New("ip: header checksum mismatch")
	ErrBadHeaderLen = errors.New("ip: bad header length")
)

// Marshal serializes the packet with a correct header checksum.
func (p *Packet) Marshal() ([]byte, error) {
	return p.MarshalInto(nil)
}

// MarshalInto serializes the packet into dst, which must be either nil
// (allocate, equivalent to Marshal) or a buffer of exactly Len() bytes
// (e.g. from bufpool.Get). It is the allocation-free form of Marshal for
// hot paths that own scratch buffers.
//
//mnet:ownership returns-alias dst
func (p *Packet) MarshalInto(dst []byte) ([]byte, error) {
	total := HeaderLen + len(p.Payload)
	if total > MaxTotalLen {
		return nil, ErrTooLong
	}
	b := dst
	if b == nil {
		b = make([]byte, total)
	} else if len(b) != total {
		panic("ip: MarshalInto buffer length mismatch")
	}
	b[0] = 4<<4 | HeaderLen/4 // version, IHL
	b[1] = p.TOS
	binary.BigEndian.PutUint16(b[2:], uint16(total))
	binary.BigEndian.PutUint16(b[4:], p.ID)
	flagsFrag := p.FragOff & 0x1fff
	if p.DontFrag {
		flagsFrag |= 0x4000
	}
	if p.MoreFrag {
		flagsFrag |= 0x2000
	}
	binary.BigEndian.PutUint16(b[6:], flagsFrag)
	b[8] = p.TTL
	b[9] = byte(p.Protocol)
	// The checksum is computed over the header with its own field zeroed;
	// recycled buffers carry stale bytes there, so zero it explicitly.
	b[10], b[11] = 0, 0
	copy(b[12:16], p.Src[:])
	copy(b[16:20], p.Dst[:])
	binary.BigEndian.PutUint16(b[10:], Checksum(b[:HeaderLen]))
	copy(b[HeaderLen:], p.Payload)
	return b, nil
}

// Unmarshal parses and validates an IPv4 packet: version, header length,
// total length, and header checksum.
func Unmarshal(b []byte) (*Packet, error) {
	if len(b) < HeaderLen {
		return nil, ErrShortPacket
	}
	if b[0]>>4 != 4 {
		return nil, ErrBadVersion
	}
	ihl := int(b[0]&0x0f) * 4
	if ihl != HeaderLen { // options unsupported
		return nil, ErrBadHeaderLen
	}
	total := int(binary.BigEndian.Uint16(b[2:]))
	if total < ihl || total > len(b) {
		return nil, ErrShortPacket
	}
	if Checksum(b[:ihl]) != 0 {
		return nil, ErrBadChecksum
	}
	flagsFrag := binary.BigEndian.Uint16(b[6:])
	p := &Packet{
		Header: Header{
			TOS:      b[1],
			ID:       binary.BigEndian.Uint16(b[4:]),
			DontFrag: flagsFrag&0x4000 != 0,
			MoreFrag: flagsFrag&0x2000 != 0,
			FragOff:  flagsFrag & 0x1fff,
			TTL:      b[8],
			Protocol: Protocol(b[9]),
		},
	}
	copy(p.Src[:], b[12:16])
	copy(p.Dst[:], b[16:20])
	p.Payload = append([]byte(nil), b[ihl:total]...)
	return p, nil
}

// Checksum computes the Internet checksum (RFC 1071) over b. Computing it
// over a block that embeds a correct checksum yields zero.
func Checksum(b []byte) uint16 {
	var sum uint32
	for len(b) >= 2 {
		sum += uint32(binary.BigEndian.Uint16(b))
		b = b[2:]
	}
	if len(b) == 1 {
		sum += uint32(b[0]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// pseudoHeaderSum computes the partial sum of the TCP/UDP pseudo-header.
func pseudoHeaderSum(src, dst Addr, proto Protocol, length int) uint32 {
	var sum uint32
	sum += uint32(binary.BigEndian.Uint16(src[0:2]))
	sum += uint32(binary.BigEndian.Uint16(src[2:4]))
	sum += uint32(binary.BigEndian.Uint16(dst[0:2]))
	sum += uint32(binary.BigEndian.Uint16(dst[2:4]))
	sum += uint32(proto)
	sum += uint32(length)
	return sum
}

// transportChecksum computes the checksum over a pseudo-header plus
// segment, used by both UDP and TCP.
func transportChecksum(src, dst Addr, proto Protocol, seg []byte) uint16 {
	sum := pseudoHeaderSum(src, dst, proto, len(seg))
	b := seg
	for len(b) >= 2 {
		sum += uint32(binary.BigEndian.Uint16(b))
		b = b[2:]
	}
	if len(b) == 1 {
		sum += uint32(b[0]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// Encapsulate wraps inner in an outer IP-in-IP header addressed
// outerSrc -> outerDst. This is the operation the paper's VIF performs: the
// result is a normal IP packet whose payload is the marshaled inner packet.
func Encapsulate(outerSrc, outerDst Addr, ttl uint8, id uint16, inner *Packet) (*Packet, error) {
	body, err := inner.Marshal()
	if err != nil {
		return nil, err
	}
	if HeaderLen+len(body) > MaxTotalLen {
		return nil, ErrTooLong
	}
	return &Packet{
		Header: Header{
			ID:       id,
			TTL:      ttl,
			Protocol: ProtoIPIP,
			Src:      outerSrc,
			Dst:      outerDst,
		},
		Payload: body,
		Trace:   inner.Trace,
	}, nil
}

// ErrNotEncapsulated is returned by Decapsulate for non-IPIP packets.
var ErrNotEncapsulated = errors.New("ip: packet is not IP-in-IP")

// Decapsulate unwraps one layer of IP-in-IP encapsulation, validating the
// inner packet, and returns the inner packet. This is the receive half of
// the paper's fused VIF/IPIP module.
func Decapsulate(p *Packet) (*Packet, error) {
	if p.Protocol != ProtoIPIP {
		return nil, ErrNotEncapsulated
	}
	inner, err := Unmarshal(p.Payload)
	if err != nil {
		return nil, err
	}
	inner.Trace = p.Trace
	return inner, nil
}
