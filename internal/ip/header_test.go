package ip

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"
)

func samplePacket() *Packet {
	return &Packet{
		Header: Header{
			TOS:      0,
			ID:       0x1234,
			TTL:      64,
			Protocol: ProtoUDP,
			Src:      MustParseAddr("36.135.0.10"),
			Dst:      MustParseAddr("36.8.0.99"),
		},
		Payload: []byte("hello mosquitonet"),
	}
}

func TestPacketMarshalUnmarshalRoundTrip(t *testing.T) {
	p := samplePacket()
	b, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != p.Len() {
		t.Fatalf("marshaled length %d, want %d", len(b), p.Len())
	}
	q, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if q.Header != p.Header {
		t.Fatalf("header mismatch: %+v vs %+v", q.Header, p.Header)
	}
	if !bytes.Equal(q.Payload, p.Payload) {
		t.Fatal("payload mismatch")
	}
}

func TestHeaderChecksumValid(t *testing.T) {
	b, err := samplePacket().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if Checksum(b[:HeaderLen]) != 0 {
		t.Fatal("marshaled header does not checksum to zero")
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	good, _ := samplePacket().Marshal()

	for i := 0; i < HeaderLen; i++ {
		b := append([]byte(nil), good...)
		b[i] ^= 0xff
		if _, err := Unmarshal(b); err == nil {
			// flipping every bit of byte i must break version, IHL,
			// length, checksum, or another validated field
			t.Errorf("corruption at header byte %d accepted", i)
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(nil); err != ErrShortPacket {
		t.Errorf("nil: %v", err)
	}
	if _, err := Unmarshal(make([]byte, 10)); err != ErrShortPacket {
		t.Errorf("short: %v", err)
	}
	b, _ := samplePacket().Marshal()
	b6 := append([]byte(nil), b...)
	b6[0] = 6<<4 | 5
	if _, err := Unmarshal(b6); err != ErrBadVersion {
		t.Errorf("version: %v", err)
	}
	opts := append([]byte(nil), b...)
	opts[0] = 4<<4 | 6 // IHL 24: options unsupported
	if _, err := Unmarshal(opts); err != ErrBadHeaderLen {
		t.Errorf("ihl: %v", err)
	}
	trunc := append([]byte(nil), b...)
	binary.BigEndian.PutUint16(trunc[2:], uint16(len(b)+4)) // total > buffer
	if _, err := Unmarshal(trunc); err != ErrShortPacket {
		t.Errorf("total length: %v", err)
	}
	bad := append([]byte(nil), b...)
	bad[HeaderLen-1] ^= 1 // flip last header byte (dst addr) -> checksum fails
	if _, err := Unmarshal(bad); err != ErrBadChecksum {
		t.Errorf("checksum: %v", err)
	}
}

func TestUnmarshalIgnoresTrailingBytes(t *testing.T) {
	// Links may pad frames; Unmarshal must honor the total-length field.
	p := samplePacket()
	b, _ := p.Marshal()
	b = append(b, 0xde, 0xad, 0xbe, 0xef)
	q, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(q.Payload, p.Payload) {
		t.Fatalf("payload picked up padding: %q", q.Payload)
	}
}

func TestMarshalTooLong(t *testing.T) {
	p := samplePacket()
	p.Payload = make([]byte, MaxTotalLen)
	if _, err := p.Marshal(); err != ErrTooLong {
		t.Fatalf("err = %v, want ErrTooLong", err)
	}
}

func TestFragmentFieldsRoundTrip(t *testing.T) {
	p := samplePacket()
	p.DontFrag = true
	p.MoreFrag = true
	p.FragOff = 0x1abc
	b, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	q, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if !q.DontFrag || !q.MoreFrag || q.FragOff != 0x1abc {
		t.Fatalf("fragment fields lost: %+v", q.Header)
	}
}

func TestClone(t *testing.T) {
	p := samplePacket()
	q := p.Clone()
	q.Payload[0] = 'X'
	q.TTL = 1
	if p.Payload[0] == 'X' || p.TTL == 1 {
		t.Fatal("Clone shares state with original")
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 example data.
	b := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(b); got != ^uint16(0xddf2) {
		t.Fatalf("Checksum = %#x, want %#x", got, ^uint16(0xddf2))
	}
	// Odd length: trailing byte padded with zero.
	odd := []byte{0x01}
	if got := Checksum(odd); got != ^uint16(0x0100) {
		t.Fatalf("odd Checksum = %#x", got)
	}
}

func TestEncapsulateDecapsulate(t *testing.T) {
	inner := samplePacket()
	outer, err := Encapsulate(MustParseAddr("36.8.0.50"), MustParseAddr("36.135.0.1"), DefaultTTL, 7, inner)
	if err != nil {
		t.Fatal(err)
	}
	if outer.Protocol != ProtoIPIP {
		t.Fatalf("outer protocol %v", outer.Protocol)
	}
	if outer.Len() != inner.Len()+HeaderLen {
		t.Fatalf("encapsulation overhead %d bytes, want %d", outer.Len()-inner.Len(), HeaderLen)
	}
	// The outer packet must survive a real marshal/unmarshal cycle.
	wire, err := outer.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	rx, err := Unmarshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decapsulate(rx)
	if err != nil {
		t.Fatal(err)
	}
	if got.Header != inner.Header || !bytes.Equal(got.Payload, inner.Payload) {
		t.Fatal("inner packet did not survive the tunnel")
	}
}

func TestDecapsulateNonIPIP(t *testing.T) {
	if _, err := Decapsulate(samplePacket()); err != ErrNotEncapsulated {
		t.Fatalf("err = %v, want ErrNotEncapsulated", err)
	}
}

func TestDecapsulateCorruptInner(t *testing.T) {
	outer := &Packet{
		Header:  Header{TTL: 64, Protocol: ProtoIPIP, Src: MustParseAddr("1.1.1.1"), Dst: MustParseAddr("2.2.2.2")},
		Payload: []byte{1, 2, 3},
	}
	if _, err := Decapsulate(outer); err == nil {
		t.Fatal("corrupt inner packet accepted")
	}
}

func TestDoubleEncapsulation(t *testing.T) {
	inner := samplePacket()
	mid, err := Encapsulate(MustParseAddr("10.0.0.1"), MustParseAddr("10.0.0.2"), 64, 1, inner)
	if err != nil {
		t.Fatal(err)
	}
	outer, err := Encapsulate(MustParseAddr("10.0.1.1"), MustParseAddr("10.0.1.2"), 64, 2, mid)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Decapsulate(outer)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Decapsulate(a)
	if err != nil {
		t.Fatal(err)
	}
	if b.Header != inner.Header || !bytes.Equal(b.Payload, inner.Payload) {
		t.Fatal("double encapsulation did not nest")
	}
}

// Property: marshal/unmarshal round-trips arbitrary headers and payloads.
func TestPropertyPacketRoundTrip(t *testing.T) {
	f := func(tos uint8, id uint16, ttl uint8, proto uint8, src, dst Addr, payload []byte, df, mf bool, fragOff uint16) bool {
		if len(payload) > MaxTotalLen-HeaderLen {
			payload = payload[:MaxTotalLen-HeaderLen]
		}
		p := &Packet{
			Header: Header{
				TOS: tos, ID: id, TTL: ttl, Protocol: Protocol(proto),
				Src: src, Dst: dst, DontFrag: df, MoreFrag: mf, FragOff: fragOff & 0x1fff,
			},
			Payload: payload,
		}
		b, err := p.Marshal()
		if err != nil {
			return false
		}
		q, err := Unmarshal(b)
		if err != nil {
			return false
		}
		return q.Header == p.Header && bytes.Equal(q.Payload, p.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the Internet checksum detects any single-bit flip in the header.
func TestPropertySingleBitFlipDetected(t *testing.T) {
	f := func(id uint16, ttl uint8, src, dst Addr, bitRaw uint16) bool {
		p := &Packet{Header: Header{ID: id, TTL: ttl, Protocol: ProtoUDP, Src: src, Dst: dst}}
		b, err := p.Marshal()
		if err != nil {
			return false
		}
		bit := int(bitRaw) % (HeaderLen * 8)
		b[bit/8] ^= 1 << (bit % 8)
		_, err = Unmarshal(b)
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: encapsulation always costs exactly HeaderLen bytes and
// decapsulation inverts it, for any inner packet that fits.
func TestPropertyTunnelRoundTrip(t *testing.T) {
	f := func(src, dst, osrc, odst Addr, payload []byte) bool {
		if len(payload) > 1000 {
			payload = payload[:1000]
		}
		inner := &Packet{Header: Header{TTL: 64, Protocol: ProtoTCP, Src: src, Dst: dst}, Payload: payload}
		outer, err := Encapsulate(osrc, odst, 64, 0, inner)
		if err != nil {
			return false
		}
		if outer.Len() != inner.Len()+HeaderLen {
			return false
		}
		got, err := Decapsulate(outer)
		if err != nil {
			return false
		}
		return got.Header == inner.Header && bytes.Equal(got.Payload, inner.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestProtocolString(t *testing.T) {
	cases := map[Protocol]string{ProtoICMP: "icmp", ProtoIPIP: "ipip", ProtoTCP: "tcp", ProtoUDP: "udp", 99: "proto(99)"}
	for p, want := range cases {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", uint8(p), p.String(), want)
		}
	}
}
