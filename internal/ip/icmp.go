package ip

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ICMPType is an ICMP message type.
type ICMPType uint8

// ICMP types the simulator generates and consumes. Echo is the substrate
// for "ping", which the paper uses both as a measurement tool and as the
// probe for detecting routers that drop triangle-route (transit) traffic.
const (
	ICMPEchoReply      ICMPType = 0
	ICMPDestUnreach    ICMPType = 3
	ICMPEchoRequest    ICMPType = 8
	ICMPRedirect       ICMPType = 5
	ICMPTimeExceeded   ICMPType = 11
	ICMPParamProblem   ICMPType = 12
	ICMPTimestamp      ICMPType = 13
	ICMPTimestampReply ICMPType = 14
)

// Destination-unreachable codes.
const (
	CodeNetUnreach       = 0
	CodeHostUnreach      = 1
	CodeProtoUnreach     = 2
	CodePortUnreach      = 3
	CodeFragNeeded       = 4  // fragmentation needed and DF set (path-MTU discovery)
	CodeAdminProhibited  = 13 // what a transit-traffic filter returns, if polite
	CodeSrcRouteFailed   = 5
	CodeNetUnknown       = 6
	CodeHostUnknown      = 7
	CodeCommProhibited   = 11
	CodePrecedenceCutoff = 15
)

func (t ICMPType) String() string {
	switch t {
	case ICMPEchoReply:
		return "echo-reply"
	case ICMPDestUnreach:
		return "dest-unreachable"
	case ICMPEchoRequest:
		return "echo-request"
	case ICMPRedirect:
		return "redirect"
	case ICMPTimeExceeded:
		return "time-exceeded"
	default:
		return fmt.Sprintf("icmp(%d)", uint8(t))
	}
}

// ICMPHeaderLen is the length of the fixed ICMP header.
const ICMPHeaderLen = 8

// ICMP is a parsed ICMP message. The second header word is interpreted per
// type: ID/Seq for echo, gateway address for redirects, unused for
// unreachables (whose Body then carries the offending header).
type ICMP struct {
	Type ICMPType
	Code uint8
	ID   uint16 // echo: identifier; redirect: high half of gateway
	Seq  uint16 // echo: sequence;   redirect: low half of gateway
	Body []byte
}

// Gateway returns the redirect gateway address encoded in ID/Seq.
func (m *ICMP) Gateway() Addr {
	return AddrFromUint32(uint32(m.ID)<<16 | uint32(m.Seq))
}

// SetGateway encodes a redirect gateway address into ID/Seq.
func (m *ICMP) SetGateway(a Addr) {
	v := a.Uint32()
	m.ID = uint16(v >> 16)
	m.Seq = uint16(v)
}

// ICMP parse errors.
var (
	ErrShortICMP       = errors.New("ip: truncated ICMP message")
	ErrBadICMPChecksum = errors.New("ip: ICMP checksum mismatch")
)

// MarshalICMP serializes an ICMP message with a correct checksum.
func MarshalICMP(m *ICMP) []byte {
	b := make([]byte, ICMPHeaderLen+len(m.Body))
	b[0] = byte(m.Type)
	b[1] = m.Code
	binary.BigEndian.PutUint16(b[4:], m.ID)
	binary.BigEndian.PutUint16(b[6:], m.Seq)
	copy(b[ICMPHeaderLen:], m.Body)
	binary.BigEndian.PutUint16(b[2:], Checksum(b))
	return b
}

// UnmarshalICMP parses and validates an ICMP message.
func UnmarshalICMP(b []byte) (*ICMP, error) {
	if len(b) < ICMPHeaderLen {
		return nil, ErrShortICMP
	}
	if Checksum(b) != 0 {
		return nil, ErrBadICMPChecksum
	}
	return &ICMP{
		Type: ICMPType(b[0]),
		Code: b[1],
		ID:   binary.BigEndian.Uint16(b[4:]),
		Seq:  binary.BigEndian.Uint16(b[6:]),
		Body: append([]byte(nil), b[ICMPHeaderLen:]...),
	}, nil
}

// UnmarshalICMPLoose parses an ICMP message without verifying its
// checksum. ICMP error bodies quote only the first 8 bytes of the
// offending payload, so an ICMP message embedded there is truncated and
// its checksum cannot be expected to verify.
func UnmarshalICMPLoose(b []byte) (*ICMP, error) {
	if len(b) < ICMPHeaderLen {
		return nil, ErrShortICMP
	}
	return &ICMP{
		Type: ICMPType(b[0]),
		Code: b[1],
		ID:   binary.BigEndian.Uint16(b[4:]),
		Seq:  binary.BigEndian.Uint16(b[6:]),
		Body: append([]byte(nil), b[ICMPHeaderLen:]...),
	}, nil
}

// ICMPErrorBody builds the body of an ICMP error message: the offending
// packet's IP header plus the first 8 bytes of its payload (RFC 792).
func ICMPErrorBody(offender *Packet) []byte {
	raw, err := offender.Marshal()
	if err != nil {
		//lint:allow dropaccounting only the error body is elided; the offending packet was already accounted by the caller
		return nil
	}
	n := HeaderLen + 8
	if n > len(raw) {
		n = len(raw)
	}
	return append([]byte(nil), raw[:n]...)
}
