package ip

import (
	"strconv"
	"sync"
)

// World-level address intern table. Addr.String sits on the diagnostic
// path (drop reasons, packet-log detail, trace attributes) and a fleet
// formats the same few thousand addresses over and over; the table caches
// the dotted-quad form per address so repeated formatting is a map lookup
// instead of an allocation. The population is bounded by the number of
// distinct addresses a simulation ever formats.
//
// This is package-level mutable state reachable from shard code, which is
// normally forbidden (nosharedstate). It is safe here because every
// access holds internMu and the cached value for a given address is an
// immutable pure function of the key: whichever shard populates an entry
// first, every reader observes the same bytes, so no observable result
// can depend on shard scheduling.
var (
	//lint:allow nosharedstate guards the process-wide addr→string intern table; every access is under this mutex
	internMu sync.Mutex
	//lint:allow nosharedstate addr→string cache guarded by internMu; values are immutable pure functions of the key, so cross-shard population order cannot change any observable result
	interned = make(map[Addr]string)
)

// InternString returns the dotted-quad form of a from the world-level
// intern table, formatting and caching it on first use.
func InternString(a Addr) string {
	internMu.Lock()
	s, ok := interned[a]
	if !ok {
		s = strconv.Itoa(int(a[0])) + "." + strconv.Itoa(int(a[1])) + "." +
			strconv.Itoa(int(a[2])) + "." + strconv.Itoa(int(a[3]))
		interned[a] = s
	}
	internMu.Unlock()
	return s
}
