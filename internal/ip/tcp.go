package ip

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
)

// TCPHeaderLen is the length of a TCP header without options. The
// simulator's stream transport does not use TCP options.
const TCPHeaderLen = 20

// TCP flags.
const (
	TCPFin = 1 << iota
	TCPSyn
	TCPRst
	TCPPsh
	TCPAck
	TCPUrg
)

// TCPHeader is a parsed TCP header.
type TCPHeader struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	Window           uint16
}

// FlagString renders the flag set like "SYN|ACK" for traces.
func (h TCPHeader) FlagString() string {
	names := []struct {
		bit  uint8
		name string
	}{{TCPSyn, "SYN"}, {TCPAck, "ACK"}, {TCPFin, "FIN"}, {TCPRst, "RST"}, {TCPPsh, "PSH"}, {TCPUrg, "URG"}}
	var parts []string
	for _, n := range names {
		if h.Flags&n.bit != 0 {
			parts = append(parts, n.name)
		}
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, "|")
}

func (h TCPHeader) String() string {
	return fmt.Sprintf("tcp %d->%d seq=%d ack=%d %s win=%d",
		h.SrcPort, h.DstPort, h.Seq, h.Ack, h.FlagString(), h.Window)
}

// TCP parse errors.
var (
	ErrShortTCP       = errors.New("ip: truncated TCP segment")
	ErrBadTCPChecksum = errors.New("ip: TCP checksum mismatch")
	ErrBadTCPOffset   = errors.New("ip: bad TCP data offset")
)

// MarshalTCP serializes a TCP segment with a pseudo-header checksum.
func MarshalTCP(src, dst Addr, h TCPHeader, payload []byte) []byte {
	b := make([]byte, TCPHeaderLen+len(payload))
	binary.BigEndian.PutUint16(b[0:], h.SrcPort)
	binary.BigEndian.PutUint16(b[2:], h.DstPort)
	binary.BigEndian.PutUint32(b[4:], h.Seq)
	binary.BigEndian.PutUint32(b[8:], h.Ack)
	b[12] = (TCPHeaderLen / 4) << 4
	b[13] = h.Flags
	binary.BigEndian.PutUint16(b[14:], h.Window)
	copy(b[TCPHeaderLen:], payload)
	binary.BigEndian.PutUint16(b[16:], transportChecksum(src, dst, ProtoTCP, b))
	return b
}

// UnmarshalTCP parses and validates a TCP segment received between the
// given IP addresses.
func UnmarshalTCP(src, dst Addr, b []byte) (TCPHeader, []byte, error) {
	if len(b) < TCPHeaderLen {
		return TCPHeader{}, nil, ErrShortTCP
	}
	off := int(b[12]>>4) * 4
	if off < TCPHeaderLen || off > len(b) {
		return TCPHeader{}, nil, ErrBadTCPOffset
	}
	if transportChecksum(src, dst, ProtoTCP, b) != 0 {
		return TCPHeader{}, nil, ErrBadTCPChecksum
	}
	h := TCPHeader{
		SrcPort: binary.BigEndian.Uint16(b[0:]),
		DstPort: binary.BigEndian.Uint16(b[2:]),
		Seq:     binary.BigEndian.Uint32(b[4:]),
		Ack:     binary.BigEndian.Uint32(b[8:]),
		Flags:   b[13],
		Window:  binary.BigEndian.Uint16(b[14:]),
	}
	return h, append([]byte(nil), b[off:]...), nil
}

// SeqLess reports whether sequence number a precedes b in modular
// (RFC 793 serial-number) arithmetic.
func SeqLess(a, b uint32) bool { return int32(a-b) < 0 }

// SeqLEQ reports whether a precedes or equals b in modular arithmetic.
func SeqLEQ(a, b uint32) bool { return int32(a-b) <= 0 }
