package ip

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"
)

var (
	srcA = MustParseAddr("36.135.0.10")
	dstA = MustParseAddr("36.8.0.99")
)

func TestUDPRoundTrip(t *testing.T) {
	h := UDPHeader{SrcPort: 5001, DstPort: 7}
	payload := []byte("echo me")
	b := MarshalUDP(srcA, dstA, h, payload)
	if len(b) != UDPHeaderLen+len(payload) {
		t.Fatalf("len = %d", len(b))
	}
	gh, gp, err := UnmarshalUDP(srcA, dstA, b)
	if err != nil {
		t.Fatal(err)
	}
	if gh != h || !bytes.Equal(gp, payload) {
		t.Fatalf("round trip mismatch: %+v %q", gh, gp)
	}
}

func TestUDPChecksumCoversPseudoHeader(t *testing.T) {
	b := MarshalUDP(srcA, dstA, UDPHeader{SrcPort: 1, DstPort: 2}, []byte("x"))
	// Same bytes "received" at a different destination address must fail:
	// this is exactly the bug class mobile IP can introduce if a tunnel
	// rewrites addresses without fixing transport checksums.
	if _, _, err := UnmarshalUDP(srcA, MustParseAddr("36.134.0.5"), b); err != ErrBadUDPChecksum {
		t.Fatalf("err = %v, want ErrBadUDPChecksum", err)
	}
}

func TestUDPCorruptPayloadDetected(t *testing.T) {
	b := MarshalUDP(srcA, dstA, UDPHeader{SrcPort: 1, DstPort: 2}, []byte("payload"))
	b[len(b)-1] ^= 0x01
	if _, _, err := UnmarshalUDP(srcA, dstA, b); err != ErrBadUDPChecksum {
		t.Fatalf("err = %v, want ErrBadUDPChecksum", err)
	}
}

func TestUDPZeroChecksumSkipsVerification(t *testing.T) {
	b := MarshalUDP(srcA, dstA, UDPHeader{SrcPort: 1, DstPort: 2}, []byte("p"))
	binary.BigEndian.PutUint16(b[6:], 0) // sender did not compute a checksum
	if _, _, err := UnmarshalUDP(srcA, dstA, b); err != nil {
		t.Fatalf("zero checksum rejected: %v", err)
	}
}

func TestUDPErrors(t *testing.T) {
	if _, _, err := UnmarshalUDP(srcA, dstA, []byte{1, 2, 3}); err != ErrShortUDP {
		t.Errorf("short: %v", err)
	}
	b := MarshalUDP(srcA, dstA, UDPHeader{}, []byte("abc"))
	binary.BigEndian.PutUint16(b[4:], uint16(len(b)+1))
	if _, _, err := UnmarshalUDP(srcA, dstA, b); err != ErrBadUDPLength {
		t.Errorf("long length field: %v", err)
	}
	binary.BigEndian.PutUint16(b[4:], UDPHeaderLen-1)
	if _, _, err := UnmarshalUDP(srcA, dstA, b); err != ErrBadUDPLength {
		t.Errorf("short length field: %v", err)
	}
}

func TestUDPLengthFieldTrimsPadding(t *testing.T) {
	payload := []byte("data")
	b := MarshalUDP(srcA, dstA, UDPHeader{SrcPort: 9, DstPort: 10}, payload)
	b = append(b, 0, 0, 0) // link padding
	_, gp, err := UnmarshalUDP(srcA, dstA, b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gp, payload) {
		t.Fatalf("payload = %q", gp)
	}
}

func TestPropertyUDPRoundTrip(t *testing.T) {
	f := func(sp, dp uint16, src, dst Addr, payload []byte) bool {
		if len(payload) > 2000 {
			payload = payload[:2000]
		}
		b := MarshalUDP(src, dst, UDPHeader{SrcPort: sp, DstPort: dp}, payload)
		h, p, err := UnmarshalUDP(src, dst, b)
		return err == nil && h.SrcPort == sp && h.DstPort == dp && bytes.Equal(p, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestICMPEchoRoundTrip(t *testing.T) {
	m := &ICMP{Type: ICMPEchoRequest, ID: 42, Seq: 7, Body: []byte("ping")}
	b := MarshalICMP(m)
	got, err := UnmarshalICMP(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != m.Type || got.ID != 42 || got.Seq != 7 || !bytes.Equal(got.Body, m.Body) {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestICMPChecksum(t *testing.T) {
	b := MarshalICMP(&ICMP{Type: ICMPEchoReply, ID: 1, Seq: 1})
	b[0] = byte(ICMPEchoRequest) // tamper with type
	if _, err := UnmarshalICMP(b); err != ErrBadICMPChecksum {
		t.Fatalf("err = %v, want ErrBadICMPChecksum", err)
	}
	if _, err := UnmarshalICMP([]byte{8, 0}); err != ErrShortICMP {
		t.Fatalf("short: %v", err)
	}
}

func TestICMPGatewayEncoding(t *testing.T) {
	m := &ICMP{Type: ICMPRedirect, Code: 1}
	gw := MustParseAddr("36.8.0.1")
	m.SetGateway(gw)
	got, err := UnmarshalICMP(MarshalICMP(m))
	if err != nil {
		t.Fatal(err)
	}
	if got.Gateway() != gw {
		t.Fatalf("gateway = %v, want %v", got.Gateway(), gw)
	}
}

func TestICMPErrorBody(t *testing.T) {
	p := &Packet{
		Header:  Header{TTL: 64, Protocol: ProtoUDP, Src: srcA, Dst: dstA},
		Payload: []byte("0123456789abcdef"),
	}
	body := ICMPErrorBody(p)
	if len(body) != HeaderLen+8 {
		t.Fatalf("body length %d, want %d", len(body), HeaderLen+8)
	}
	// The embedded header must still parse once padded to total length
	// expectations are relaxed: verify the addresses survive.
	if !bytes.Equal(body[12:16], p.Src[:]) || !bytes.Equal(body[16:20], p.Dst[:]) {
		t.Fatal("embedded addresses wrong")
	}
	short := &Packet{Header: Header{TTL: 1, Protocol: ProtoUDP, Src: srcA, Dst: dstA}, Payload: []byte("abc")}
	if got := ICMPErrorBody(short); len(got) != HeaderLen+3 {
		t.Fatalf("short body length %d", len(got))
	}
}

func TestPropertyICMPRoundTrip(t *testing.T) {
	f := func(typ, code uint8, id, seq uint16, body []byte) bool {
		if len(body) > 1000 {
			body = body[:1000]
		}
		m := &ICMP{Type: ICMPType(typ), Code: code, ID: id, Seq: seq, Body: body}
		got, err := UnmarshalICMP(MarshalICMP(m))
		return err == nil && got.Type == m.Type && got.Code == code &&
			got.ID == id && got.Seq == seq && bytes.Equal(got.Body, body)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	h := TCPHeader{SrcPort: 2000, DstPort: 80, Seq: 0xdeadbeef, Ack: 0x01020304, Flags: TCPAck | TCPPsh, Window: 8192}
	payload := []byte("GET / HTTP/1.0\r\n")
	b := MarshalTCP(srcA, dstA, h, payload)
	gh, gp, err := UnmarshalTCP(srcA, dstA, b)
	if err != nil {
		t.Fatal(err)
	}
	if gh != h || !bytes.Equal(gp, payload) {
		t.Fatalf("round trip: %+v %q", gh, gp)
	}
}

func TestTCPChecksumCoversAddresses(t *testing.T) {
	b := MarshalTCP(srcA, dstA, TCPHeader{SrcPort: 1, DstPort: 2, Flags: TCPSyn}, nil)
	if _, _, err := UnmarshalTCP(MustParseAddr("9.9.9.9"), dstA, b); err != ErrBadTCPChecksum {
		t.Fatalf("err = %v, want ErrBadTCPChecksum", err)
	}
}

func TestTCPErrors(t *testing.T) {
	if _, _, err := UnmarshalTCP(srcA, dstA, make([]byte, 10)); err != ErrShortTCP {
		t.Errorf("short: %v", err)
	}
	b := MarshalTCP(srcA, dstA, TCPHeader{}, nil)
	b[12] = (4) << 4 // data offset 16 < 20
	if _, _, err := UnmarshalTCP(srcA, dstA, b); err != ErrBadTCPOffset {
		t.Errorf("offset: %v", err)
	}
}

func TestTCPFlagString(t *testing.T) {
	h := TCPHeader{Flags: TCPSyn | TCPAck}
	if h.FlagString() != "SYN|ACK" {
		t.Fatalf("FlagString = %q", h.FlagString())
	}
	if (TCPHeader{}).FlagString() != "-" {
		t.Fatal("empty flags")
	}
}

func TestSeqArithmetic(t *testing.T) {
	cases := []struct {
		a, b  uint32
		less  bool
		lessE bool
	}{
		{1, 2, true, true},
		{2, 1, false, false},
		{5, 5, false, true},
		{0xffffffff, 0, true, true},   // wraparound
		{0, 0xffffffff, false, false}, // wraparound reverse
		{0x7fffffff, 0x80000000, true, true},
	}
	for _, c := range cases {
		if SeqLess(c.a, c.b) != c.less {
			t.Errorf("SeqLess(%#x,%#x) = %v", c.a, c.b, !c.less)
		}
		if SeqLEQ(c.a, c.b) != c.lessE {
			t.Errorf("SeqLEQ(%#x,%#x) = %v", c.a, c.b, !c.lessE)
		}
	}
}

// Property: sequence comparison is antisymmetric for distinct points within
// half the sequence space.
func TestPropertySeqAntisymmetric(t *testing.T) {
	f := func(a uint32, deltaRaw uint32) bool {
		delta := deltaRaw%0x7fffffff + 1 // 1..2^31-1
		b := a + delta
		return SeqLess(a, b) && !SeqLess(b, a) && SeqLEQ(a, b) && !SeqLEQ(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyTCPRoundTrip(t *testing.T) {
	f := func(sp, dp uint16, seq, ack uint32, flags uint8, win uint16, src, dst Addr, payload []byte) bool {
		if len(payload) > 2000 {
			payload = payload[:2000]
		}
		h := TCPHeader{SrcPort: sp, DstPort: dp, Seq: seq, Ack: ack, Flags: flags & 0x3f, Window: win}
		gh, gp, err := UnmarshalTCP(src, dst, MarshalTCP(src, dst, h, payload))
		return err == nil && gh == h && bytes.Equal(gp, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
