package ip

import (
	"encoding/binary"
	"errors"
)

// UDPHeaderLen is the length of a UDP header.
const UDPHeaderLen = 8

// UDPHeader is a parsed UDP header.
type UDPHeader struct {
	SrcPort, DstPort uint16
}

// UDP checksum errors.
var (
	ErrShortUDP       = errors.New("ip: truncated UDP datagram")
	ErrBadUDPChecksum = errors.New("ip: UDP checksum mismatch")
	ErrBadUDPLength   = errors.New("ip: UDP length field mismatch")
)

// MarshalUDP serializes a UDP datagram, computing the checksum over the
// pseudo-header (so src and dst are the IP addresses the datagram will be
// sent between).
func MarshalUDP(src, dst Addr, h UDPHeader, payload []byte) []byte {
	b := make([]byte, UDPHeaderLen+len(payload))
	binary.BigEndian.PutUint16(b[0:], h.SrcPort)
	binary.BigEndian.PutUint16(b[2:], h.DstPort)
	binary.BigEndian.PutUint16(b[4:], uint16(len(b)))
	copy(b[UDPHeaderLen:], payload)
	ck := transportChecksum(src, dst, ProtoUDP, b)
	if ck == 0 {
		ck = 0xffff // RFC 768: transmitted as all ones if computed zero
	}
	binary.BigEndian.PutUint16(b[6:], ck)
	return b
}

// UnmarshalUDP parses and validates a UDP datagram received between the
// given IP addresses, returning the header and payload.
func UnmarshalUDP(src, dst Addr, b []byte) (UDPHeader, []byte, error) {
	if len(b) < UDPHeaderLen {
		return UDPHeader{}, nil, ErrShortUDP
	}
	length := int(binary.BigEndian.Uint16(b[4:]))
	if length < UDPHeaderLen || length > len(b) {
		return UDPHeader{}, nil, ErrBadUDPLength
	}
	b = b[:length]
	if binary.BigEndian.Uint16(b[6:]) != 0 { // checksum of zero means "not computed"
		if transportChecksum(src, dst, ProtoUDP, b) != 0 {
			return UDPHeader{}, nil, ErrBadUDPChecksum
		}
	}
	h := UDPHeader{
		SrcPort: binary.BigEndian.Uint16(b[0:]),
		DstPort: binary.BigEndian.Uint16(b[2:]),
	}
	return h, append([]byte(nil), b[UDPHeaderLen:]...), nil
}
