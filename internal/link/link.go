// Package link implements the simulated link layer: MAC-style hardware
// addresses, Ethernet-like frames, network broadcast domains with
// per-medium latency/bandwidth/loss models, and network devices with an
// up/down state machine.
//
// The paper's testbed has three media — Ethernet (a Linksys PCMCIA card),
// a Metricom packet radio in Starmode driven by the STRIP driver, and the
// serial line carrying it — and its central measurements are about what
// happens while a mobile host switches devices. The two properties that
// matter there are modeled explicitly: a device that is down (or still
// coming up) silently drops frames, and bringing a device up takes real
// time (the dominant cost of a cold switch, per the paper's Figure 6).
package link

import (
	"errors"
	"fmt"
	"time"

	"mosquitonet/internal/metrics"
	"mosquitonet/internal/sim"
	"mosquitonet/internal/trace"
)

// Carrier-transition span kinds, recorded as instants against the
// loop-associated tracer; actor is the device name.
const (
	kSpanLinkUp   = "link.up"
	kSpanLinkDown = "link.down"
)

// HWAddr is a 6-byte link-layer (MAC-style) hardware address.
type HWAddr [6]byte

// BroadcastHW is the all-ones broadcast hardware address.
var BroadcastHW = HWAddr{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// String formats the address in colon-separated hex.
func (a HWAddr) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", a[0], a[1], a[2], a[3], a[4], a[5])
}

// IsBroadcast reports whether a is the broadcast address.
func (a HWAddr) IsBroadcast() bool { return a == BroadcastHW }

// hwSeq hands out distinct hardware addresses. Uniqueness per simulation is
// all that matters; the OUI byte is arbitrary.
//
//lint:allow nosharedstate written only during topology construction, which is single-threaded and completes before any ShardSet starts its workers
var hwSeq uint32

// NextHWAddr returns a process-unique hardware address.
func NextHWAddr() HWAddr {
	hwSeq++
	return HWAddr{0x02, 0x4d, 0x4e, byte(hwSeq >> 16), byte(hwSeq >> 8), byte(hwSeq)}
}

// EtherType identifies the payload protocol of a frame.
type EtherType uint16

// EtherTypes used by the simulator.
const (
	EtherTypeIPv4 EtherType = 0x0800
	EtherTypeARP  EtherType = 0x0806
)

// Frame is a link-layer frame. On the receive side the Payload is a
// pooled buffer shared by every receiver of one transmission and valid
// only for the duration of the synchronous delivery call; receivers that
// keep payload bytes must copy them (ip.Unmarshal and arp.Unmarshal do).
type Frame struct {
	Src, Dst HWAddr
	Type     EtherType
	Payload  []byte

	// Trace is the lifecycle trace ID of the IP packet the frame carries
	// (simulator metadata, not on the wire). Zero for un-traced frames
	// such as raw ARP requests.
	Trace uint64
}

// frameOverhead approximates Ethernet framing overhead (header + FCS) for
// serialization-delay purposes.
const frameOverhead = 18

// Len returns the frame's length on the wire in bytes.
func (f *Frame) Len() int { return frameOverhead + len(f.Payload) }

// State is a device's administrative state.
type State int

// Device states. A device in StateBringingUp has been asked to come up but
// is still initializing (hardware interaction, driver setup) and drops
// traffic until the bring-up delay elapses.
const (
	StateDown State = iota
	StateBringingUp
	StateUp
)

func (s State) String() string {
	switch s {
	case StateDown:
		return "down"
	case StateBringingUp:
		return "bringing-up"
	case StateUp:
		return "up"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// DeviceStats counts a device's traffic.
type DeviceStats struct {
	Sent          uint64 // frames handed to the network
	Received      uint64 // frames delivered to the receiver callback
	DroppedDown   uint64 // frames dropped because the device was not up
	DroppedNoNet  uint64 // sends while detached from any network
	DroppedMTU    uint64 // sends exceeding the medium MTU
	DroppedFilter uint64 // received frames not addressed to us
}

// Device errors.
var (
	ErrDeviceDown  = errors.New("link: device is down")
	ErrNoNetwork   = errors.New("link: device not attached to a network")
	ErrFrameTooBig = errors.New("link: frame exceeds medium MTU")
)

// Device is a simulated network interface. IP-level state (addresses,
// routes) lives in the host stack; the device deals only in frames.
type Device struct {
	name  string
	hw    HWAddr
	loop  *sim.Loop
	net   *Network
	state State

	// bringUpDelay and bringUpJitter model the time from "ifconfig up" to
	// the interface actually passing traffic. The paper attributes most of
	// its <1.25 s cold-switch loss window to this delay.
	bringUpDelay  time.Duration
	bringUpJitter time.Duration

	recv        func(*Frame)
	onChange    []func()
	promiscuous bool
	upSince     sim.Time

	// Traffic counters live in the loop's metrics registry (detached
	// handles when telemetry is disabled); DeviceStats is a read-through
	// view assembled by Stats. Handles are never shared between devices:
	// same-named devices on different hosts aggregate at snapshot time.
	ctr    deviceCounters
	pktlog *metrics.PacketLog
}

type deviceCounters struct {
	sent, received   *metrics.Counter
	txBytes, rxBytes *metrics.Counter
	dropDown         *metrics.Counter
	dropNoNet        *metrics.Counter
	dropMTU          *metrics.Counter
	dropFilter       *metrics.Counter
}

// NewDevice creates a device named name with a fresh hardware address.
// bringUpDelay (±jitter) is the simulated initialization time.
func NewDevice(loop *sim.Loop, name string, bringUpDelay, jitter time.Duration) *Device {
	d := &Device{
		name:          name,
		hw:            NextHWAddr(),
		loop:          loop,
		bringUpDelay:  bringUpDelay,
		bringUpJitter: jitter,
		pktlog:        metrics.PacketsFor(loop),
	}
	// Counters are detached handles incremented on the data path; one
	// snapshot-time collector per device publishes them (same rows and
	// sums as registering eight handles, at an eighth of the registry
	// footprint — at fleet scale every mobile host carries two devices).
	d.ctr = deviceCounters{
		sent:       &metrics.Counter{},
		received:   &metrics.Counter{},
		txBytes:    &metrics.Counter{},
		rxBytes:    &metrics.Counter{},
		dropDown:   &metrics.Counter{},
		dropNoNet:  &metrics.Counter{},
		dropMTU:    &metrics.Counter{},
		dropFilter: &metrics.Counter{},
	}
	metrics.For(loop).Collect(func(c *metrics.Collection) {
		dev := metrics.L("dev", d.name)
		c.Counter("link.device.tx_packets", d.ctr.sent.Value(), dev)
		c.Counter("link.device.rx_packets", d.ctr.received.Value(), dev)
		c.Counter("link.device.tx_bytes", d.ctr.txBytes.Value(), dev)
		c.Counter("link.device.rx_bytes", d.ctr.rxBytes.Value(), dev)
		c.Counter("link.device.drop_down", d.ctr.dropDown.Value(), dev)
		c.Counter("link.device.drop_no_net", d.ctr.dropNoNet.Value(), dev)
		c.Counter("link.device.drop_mtu", d.ctr.dropMTU.Value(), dev)
		c.Counter("link.device.drop_filter", d.ctr.dropFilter.Value(), dev)
	})
	return d
}

// Name returns the device name, e.g. "eth0" or "strip0".
func (d *Device) Name() string { return d.name }

// HW returns the device hardware address.
func (d *Device) HW() HWAddr { return d.hw }

// State returns the administrative state.
func (d *Device) State() State { return d.state }

// IsUp reports whether the device passes traffic.
func (d *Device) IsUp() bool { return d.state == StateUp }

// Network returns the attached broadcast domain, or nil.
func (d *Device) Network() *Network { return d.net }

// Stats returns a snapshot of the device counters, assembled from the
// registry-backed handles.
func (d *Device) Stats() DeviceStats {
	return DeviceStats{
		Sent:          d.ctr.sent.Value(),
		Received:      d.ctr.received.Value(),
		DroppedDown:   d.ctr.dropDown.Value(),
		DroppedNoNet:  d.ctr.dropNoNet.Value(),
		DroppedMTU:    d.ctr.dropMTU.Value(),
		DroppedFilter: d.ctr.dropFilter.Value(),
	}
}

// SetReceiver installs the host-stack callback for delivered frames.
func (d *Device) SetReceiver(fn func(*Frame)) { d.recv = fn }

// OnChange registers a callback invoked whenever the device's
// reachability changes: bring-up completion, bring-down, attach, detach.
// The host stack uses it to invalidate cached routing decisions that
// depend on Iface.Up().
func (d *Device) OnChange(fn func()) { d.onChange = append(d.onChange, fn) }

func (d *Device) notifyChange() {
	for _, fn := range d.onChange {
		fn()
	}
}

// SetPromiscuous controls whether frames for other stations are delivered.
func (d *Device) SetPromiscuous(v bool) { d.promiscuous = v }

// Attach connects the device to a broadcast domain. Attaching does not
// bring the device up.
func (d *Device) Attach(n *Network) {
	if d.net != nil {
		d.Detach()
	}
	d.net = n
	n.add(d)
	d.notifyChange()
}

// Detach disconnects the device from its network, e.g. when carried out of
// radio coverage.
func (d *Device) Detach() {
	if d.net == nil {
		return
	}
	d.net.remove(d)
	d.net = nil
	d.notifyChange()
}

// BringUp starts the device's initialization and invokes done (if non-nil)
// once the device is up and passing traffic. Calling BringUp on a device
// that is already up invokes done immediately. The returned duration is
// the initialization time charged.
func (d *Device) BringUp(done func()) time.Duration {
	if d.state == StateUp {
		if done != nil {
			done()
		}
		return 0
	}
	delay := d.loop.Jitter(d.bringUpDelay, d.bringUpJitter)
	d.state = StateBringingUp
	d.loop.Schedule(delay, func() {
		if d.state != StateBringingUp { // brought down meanwhile
			return
		}
		d.state = StateUp
		d.upSince = d.loop.Now()
		d.markLinkChange(kSpanLinkUp)
		d.notifyChange()
		if done != nil {
			done()
		}
	})
	return delay
}

// BringDown takes the device down immediately. Pending bring-ups are
// cancelled; frames in flight toward this device will be dropped on
// arrival.
func (d *Device) BringDown() {
	if d.state == StateDown {
		return
	}
	d.state = StateDown
	d.markLinkChange(kSpanLinkDown)
	d.notifyChange()
}

// markLinkChange records an instant span for a carrier transition in the
// loop-associated tracer — the "link change" that roots every handoff's
// causal chain. No-op when the loop has no tracer (scale runs).
func (d *Device) markLinkChange(kind string) {
	t := trace.For(d.loop)
	if t == nil {
		return
	}
	sp := t.StartChild(nil, d.name, kind)
	if d.net != nil {
		sp.SetAttr("net", d.net.Name())
	}
	sp.Done()
}

// UpSince returns when the device last transitioned to up.
func (d *Device) UpSince() sim.Time { return d.upSince }

// Send transmits a frame with this device's hardware source address.
func (d *Device) Send(f *Frame) error {
	f.Src = d.hw
	if d.state != StateUp {
		d.ctr.dropDown.Inc()
		d.pktlog.Record(f.Trace, d.name, "link.drop", "device down")
		return ErrDeviceDown
	}
	if d.net == nil {
		d.ctr.dropNoNet.Inc()
		d.pktlog.Record(f.Trace, d.name, "link.drop", "no network")
		return ErrNoNetwork
	}
	if len(f.Payload) > d.net.medium.MTU {
		d.ctr.dropMTU.Inc()
		d.pktlog.Record(f.Trace, d.name, "link.drop", "exceeds MTU")
		return ErrFrameTooBig
	}
	d.ctr.sent.Inc()
	d.ctr.txBytes.Add(uint64(f.Len()))
	if d.pktlog != nil { // guard: the detail string is costly to format
		d.pktlog.Record(f.Trace, d.name, "link.tx", "dst="+f.Dst.String())
	}
	d.net.transmit(d, f)
	return nil
}

// deliver hands a frame arriving from the network to the device, applying
// the destination filter and up/down state.
func (d *Device) deliver(f *Frame) {
	if d.state != StateUp {
		d.ctr.dropDown.Inc()
		d.pktlog.Record(f.Trace, d.name, "link.drop", "device down on rx")
		return
	}
	if !d.promiscuous && !f.Dst.IsBroadcast() && f.Dst != d.hw {
		d.ctr.dropFilter.Inc()
		return
	}
	d.ctr.received.Inc()
	d.ctr.rxBytes.Add(uint64(f.Len()))
	if d.pktlog != nil { // guard: the detail string is costly to format
		d.pktlog.Record(f.Trace, d.name, "link.rx", "src="+f.Src.String())
	}
	if d.recv != nil {
		d.recv(f)
	}
}
