package link

import (
	"testing"
	"testing/quick"
	"time"

	"mosquitonet/internal/sim"
)

// upDevice creates a device on n that is already up, with instant bring-up.
func upDevice(t *testing.T, loop *sim.Loop, n *Network, name string) *Device {
	t.Helper()
	d := NewDevice(loop, name, 0, 0)
	d.Attach(n)
	d.BringUp(nil)
	loop.RunFor(0)
	if !d.IsUp() {
		t.Fatalf("device %s not up", name)
	}
	return d
}

func TestHWAddrString(t *testing.T) {
	a := HWAddr{0x02, 0x4d, 0x4e, 0x00, 0x00, 0x01}
	if a.String() != "02:4d:4e:00:00:01" {
		t.Fatalf("String = %q", a.String())
	}
	if !BroadcastHW.IsBroadcast() || a.IsBroadcast() {
		t.Fatal("IsBroadcast wrong")
	}
}

func TestNextHWAddrUnique(t *testing.T) {
	seen := map[HWAddr]bool{}
	for i := 0; i < 1000; i++ {
		a := NextHWAddr()
		if seen[a] {
			t.Fatalf("duplicate hardware address %v", a)
		}
		seen[a] = true
	}
}

func TestUnicastDelivery(t *testing.T) {
	loop := sim.New(1)
	n := NewNetwork(loop, "test", Ethernet())
	a := upDevice(t, loop, n, "a")
	b := upDevice(t, loop, n, "b")
	c := upDevice(t, loop, n, "c")

	var got []byte
	b.SetReceiver(func(f *Frame) { got = f.Payload })
	var cGot bool
	c.SetReceiver(func(f *Frame) { cGot = true })

	if err := a.Send(&Frame{Dst: b.HW(), Type: EtherTypeIPv4, Payload: []byte("hi")}); err != nil {
		t.Fatal(err)
	}
	loop.Run()
	if string(got) != "hi" {
		t.Fatalf("b received %q", got)
	}
	if cGot {
		t.Fatal("c received a unicast frame not addressed to it")
	}
	if c.Stats().DroppedFilter != 1 {
		t.Fatalf("c filter drops = %d, want 1", c.Stats().DroppedFilter)
	}
}

func TestBroadcastDelivery(t *testing.T) {
	loop := sim.New(1)
	n := NewNetwork(loop, "test", Ethernet())
	a := upDevice(t, loop, n, "a")
	b := upDevice(t, loop, n, "b")
	c := upDevice(t, loop, n, "c")

	count := 0
	b.SetReceiver(func(*Frame) { count++ })
	c.SetReceiver(func(*Frame) { count++ })
	a.Send(&Frame{Dst: BroadcastHW, Type: EtherTypeARP, Payload: []byte("who-has")})
	loop.Run()
	if count != 2 {
		t.Fatalf("broadcast reached %d devices, want 2", count)
	}
	if a.Stats().Received != 0 {
		t.Fatal("sender received its own frame")
	}
}

func TestSendSetsSourceAddress(t *testing.T) {
	loop := sim.New(1)
	n := NewNetwork(loop, "test", Ethernet())
	a := upDevice(t, loop, n, "a")
	b := upDevice(t, loop, n, "b")
	var src HWAddr
	b.SetReceiver(func(f *Frame) { src = f.Src })
	a.Send(&Frame{Src: HWAddr{9, 9, 9, 9, 9, 9}, Dst: b.HW(), Payload: []byte("x")})
	loop.Run()
	if src != a.HW() {
		t.Fatalf("frame source %v, want %v", src, a.HW())
	}
}

func TestPromiscuousReceivesAll(t *testing.T) {
	loop := sim.New(1)
	n := NewNetwork(loop, "test", Ethernet())
	a := upDevice(t, loop, n, "a")
	b := upDevice(t, loop, n, "b")
	c := upDevice(t, loop, n, "c")
	c.SetPromiscuous(true)
	got := false
	c.SetReceiver(func(*Frame) { got = true })
	a.Send(&Frame{Dst: b.HW(), Payload: []byte("x")})
	loop.Run()
	if !got {
		t.Fatal("promiscuous device missed a frame")
	}
}

func TestSendWhileDown(t *testing.T) {
	loop := sim.New(1)
	n := NewNetwork(loop, "test", Ethernet())
	d := NewDevice(loop, "d", 0, 0)
	d.Attach(n)
	if err := d.Send(&Frame{Dst: BroadcastHW}); err != ErrDeviceDown {
		t.Fatalf("err = %v, want ErrDeviceDown", err)
	}
	if d.Stats().DroppedDown != 1 {
		t.Fatal("drop not counted")
	}
}

func TestSendDetached(t *testing.T) {
	loop := sim.New(1)
	d := NewDevice(loop, "d", 0, 0)
	d.BringUp(nil)
	loop.RunFor(0)
	if err := d.Send(&Frame{Dst: BroadcastHW}); err != ErrNoNetwork {
		t.Fatalf("err = %v, want ErrNoNetwork", err)
	}
}

func TestMTUEnforced(t *testing.T) {
	loop := sim.New(1)
	n := NewNetwork(loop, "test", Ethernet())
	d := upDevice(t, loop, n, "d")
	if err := d.Send(&Frame{Dst: BroadcastHW, Payload: make([]byte, 1501)}); err != ErrFrameTooBig {
		t.Fatalf("err = %v, want ErrFrameTooBig", err)
	}
	if err := d.Send(&Frame{Dst: BroadcastHW, Payload: make([]byte, 1500)}); err != nil {
		t.Fatalf("MTU-sized frame rejected: %v", err)
	}
}

func TestBringUpDelay(t *testing.T) {
	loop := sim.New(1)
	n := NewNetwork(loop, "test", Ethernet())
	d := NewDevice(loop, "d", 500*time.Millisecond, 0)
	d.Attach(n)
	var upAt sim.Time
	delay := d.BringUp(func() { upAt = loop.Now() })
	if delay != 500*time.Millisecond {
		t.Fatalf("charged delay %v", delay)
	}
	if d.State() != StateBringingUp {
		t.Fatalf("state %v during bring-up", d.State())
	}
	loop.RunFor(499 * time.Millisecond)
	if d.IsUp() {
		t.Fatal("device up too early")
	}
	loop.RunFor(time.Millisecond)
	if !d.IsUp() || upAt != sim.Time(500*time.Millisecond) {
		t.Fatalf("device not up at 500ms (upAt=%v)", upAt)
	}
}

func TestBringUpAlreadyUp(t *testing.T) {
	loop := sim.New(1)
	d := NewDevice(loop, "d", 500*time.Millisecond, 0)
	d.BringUp(nil)
	loop.RunFor(time.Second)
	called := false
	if delay := d.BringUp(func() { called = true }); delay != 0 {
		t.Fatalf("second BringUp charged %v", delay)
	}
	if !called {
		t.Fatal("done callback not invoked for already-up device")
	}
}

func TestBringDownCancelsBringUp(t *testing.T) {
	loop := sim.New(1)
	d := NewDevice(loop, "d", 100*time.Millisecond, 0)
	called := false
	d.BringUp(func() { called = true })
	d.BringDown()
	loop.RunFor(time.Second)
	if called || d.IsUp() {
		t.Fatal("BringDown did not cancel pending bring-up")
	}
}

func TestFramesInFlightDroppedAfterBringDown(t *testing.T) {
	loop := sim.New(1)
	n := NewNetwork(loop, "test", Ethernet())
	a := upDevice(t, loop, n, "a")
	b := upDevice(t, loop, n, "b")
	got := false
	b.SetReceiver(func(*Frame) { got = true })
	a.Send(&Frame{Dst: b.HW(), Payload: []byte("x")})
	b.BringDown() // frame still in flight
	loop.Run()
	if got {
		t.Fatal("down device received a frame")
	}
	if b.Stats().DroppedDown != 1 {
		t.Fatalf("DroppedDown = %d", b.Stats().DroppedDown)
	}
}

func TestDetachStopsDelivery(t *testing.T) {
	loop := sim.New(1)
	n := NewNetwork(loop, "test", Ethernet())
	a := upDevice(t, loop, n, "a")
	b := upDevice(t, loop, n, "b")
	got := 0
	b.SetReceiver(func(*Frame) { got++ })
	a.Send(&Frame{Dst: b.HW(), Payload: []byte("1")})
	loop.Run()
	b.Detach()
	a.Send(&Frame{Dst: b.HW(), Payload: []byte("2")})
	loop.Run()
	if got != 1 {
		t.Fatalf("received %d frames, want 1", got)
	}
}

func TestReattachMovesNetworks(t *testing.T) {
	loop := sim.New(1)
	n1 := NewNetwork(loop, "n1", Ethernet())
	n2 := NewNetwork(loop, "n2", Ethernet())
	d := NewDevice(loop, "d", 0, 0)
	d.Attach(n1)
	d.Attach(n2) // implicit detach from n1
	if len(n1.Devices()) != 0 {
		t.Fatal("device still attached to old network")
	}
	if len(n2.Devices()) != 1 {
		t.Fatal("device not attached to new network")
	}
	if d.Network() != n2 {
		t.Fatal("Network() wrong")
	}
}

func TestEthernetLatency(t *testing.T) {
	loop := sim.New(1)
	n := NewNetwork(loop, "test", Ethernet())
	a := upDevice(t, loop, n, "a")
	b := upDevice(t, loop, n, "b")
	var at sim.Time
	b.SetReceiver(func(*Frame) { at = loop.Now() })
	a.Send(&Frame{Dst: b.HW(), Payload: make([]byte, 100)})
	loop.Run()
	d := at.Duration()
	if d < 100*time.Microsecond || d > 500*time.Microsecond {
		t.Fatalf("ethernet one-way delay %v outside expected envelope", d)
	}
}

// TestRadioRTTEnvelope verifies the calibrated radio medium produces the
// paper's 200-250 ms round-trip times for small packets.
func TestRadioRTTEnvelope(t *testing.T) {
	loop := sim.New(42)
	n := NewNetwork(loop, "radio", Radio())
	a := upDevice(t, loop, n, "a")
	b := upDevice(t, loop, n, "b")
	b.SetReceiver(func(f *Frame) {
		b.Send(&Frame{Dst: a.HW(), Payload: f.Payload}) // echo
	})
	for i := 0; i < 30; i++ {
		var rtt time.Duration
		start := loop.Now()
		done := false
		a.SetReceiver(func(*Frame) { rtt = loop.Now().Sub(start); done = true })
		a.Send(&Frame{Dst: b.HW(), Payload: make([]byte, 40)})
		loop.RunFor(time.Second)
		if !done {
			continue // radio loss; the medium is allowed to drop ~1%
		}
		if rtt < 190*time.Millisecond || rtt > 260*time.Millisecond {
			t.Fatalf("radio RTT %v outside the paper's 200-250ms envelope", rtt)
		}
	}
}

func TestRadioLoss(t *testing.T) {
	loop := sim.New(7)
	m := Radio()
	m.LossProb = 0.5
	n := NewNetwork(loop, "lossy", m)
	a := upDevice(t, loop, n, "a")
	b := upDevice(t, loop, n, "b")
	got := 0
	b.SetReceiver(func(*Frame) { got++ })
	const sent = 400
	for i := 0; i < sent; i++ {
		a.Send(&Frame{Dst: b.HW(), Payload: []byte("x")})
	}
	loop.Run()
	if got < sent/4 || got > sent*3/4 {
		t.Fatalf("received %d of %d at 50%% loss", got, sent)
	}
	if n.Stats().LostMedium != uint64(sent-got) {
		t.Fatalf("LostMedium = %d, want %d", n.Stats().LostMedium, sent-got)
	}
}

func TestSerializationDelay(t *testing.T) {
	m := Medium{BitRate: 8000} // 1 byte per ms
	if d := m.serializationDelay(100); d != 100*time.Millisecond {
		t.Fatalf("serialization of 100B at 8kbit = %v", d)
	}
	free := Medium{}
	if d := free.serializationDelay(1000); d != 0 {
		t.Fatalf("zero bitrate serialization = %v", d)
	}
}

func TestDeliveryPreservesPayloadIsolation(t *testing.T) {
	loop := sim.New(1)
	n := NewNetwork(loop, "test", Ethernet())
	a := upDevice(t, loop, n, "a")
	b := upDevice(t, loop, n, "b")
	var got []byte
	b.SetReceiver(func(f *Frame) { got = f.Payload })
	payload := []byte("original")
	a.Send(&Frame{Dst: b.HW(), Payload: payload})
	payload[0] = 'X' // sender mutates after send
	loop.Run()
	if string(got) != "original" {
		t.Fatalf("delivered payload %q shares memory with sender", got)
	}
}

func TestStateString(t *testing.T) {
	if StateDown.String() != "down" || StateBringingUp.String() != "bringing-up" || StateUp.String() != "up" {
		t.Fatal("State strings wrong")
	}
}

// Property: on a lossless medium every up device other than the sender
// receives each broadcast exactly once, regardless of how many frames are
// sent.
func TestPropertyBroadcastExactlyOnce(t *testing.T) {
	f := func(nDevices, nFrames uint8) bool {
		devs := int(nDevices%6) + 2
		frames := int(nFrames % 50)
		loop := sim.New(3)
		n := NewNetwork(loop, "p", Ethernet())
		counts := make([]int, devs)
		all := make([]*Device, devs)
		for i := 0; i < devs; i++ {
			i := i
			d := NewDevice(loop, "d", 0, 0)
			d.Attach(n)
			d.BringUp(nil)
			d.SetReceiver(func(*Frame) { counts[i]++ })
			all[i] = d
		}
		loop.RunFor(0)
		for k := 0; k < frames; k++ {
			all[0].Send(&Frame{Dst: BroadcastHW, Payload: []byte{byte(k)}})
		}
		loop.Run()
		if counts[0] != 0 {
			return false
		}
		for i := 1; i < devs; i++ {
			if counts[i] != frames {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
