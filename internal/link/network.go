package link

import (
	"time"

	"mosquitonet/internal/bufpool"
	"mosquitonet/internal/metrics"
	"mosquitonet/internal/sim"
)

// Medium describes the physical characteristics of a broadcast domain.
type Medium struct {
	Name string

	// Latency is the one-way propagation plus link-level processing delay,
	// varied by ±LatencyJitter per frame.
	Latency       time.Duration
	LatencyJitter time.Duration

	// BitRate is the serialization rate in bits per second; zero means
	// serialization is free. The Metricom radio's effective 30-40 Kbit/s
	// is modeled here.
	BitRate int64

	// LossProb is the probability an individual receiver misses a frame.
	// Wired media use zero; radio uses a small nonzero rate.
	LossProb float64

	// MTU is the largest frame payload in bytes.
	MTU int
}

// serializationDelay returns the time to clock a frame of n bytes onto the
// medium.
func (m Medium) serializationDelay(n int) time.Duration {
	if m.BitRate <= 0 {
		return 0
	}
	return time.Duration(int64(n) * 8 * int64(time.Second) / m.BitRate)
}

// MinLatency returns the smallest possible arrival delta the medium can
// produce: propagation latency at the low end of its jitter range.
// Serialization only adds delay, so this lower-bounds every delivery and
// is the safe conservative lookahead for a shard boundary cut across this
// medium (sim.ShardSet).
func (m Medium) MinLatency() time.Duration {
	return m.Latency - m.LatencyJitter
}

// Ethernet returns a 10 Mbit/s wired Ethernet medium, matching the paper's
// PCMCIA Ethernet: sub-millisecond latency, effectively lossless.
func Ethernet() Medium {
	return Medium{
		Name:          "ethernet",
		Latency:       150 * time.Microsecond,
		LatencyJitter: 30 * time.Microsecond,
		BitRate:       10_000_000,
		LossProb:      0,
		MTU:           1500,
	}
}

// Radio returns a Metricom Starmode packet-radio medium as characterized in
// Section 4 of the paper: round-trip times of 200-250 ms through the radio
// interface and 30-40 Kbit/s effective throughput (nominal 100 Kbit/s),
// with occasional frame loss from the radio itself.
func Radio() Medium {
	return Medium{
		Name:          "radio",
		Latency:       100 * time.Millisecond, // one-way, so RTT ~200-250ms with jitter+serialization
		LatencyJitter: 10 * time.Millisecond,
		BitRate:       35_000,
		LossProb:      0.01,
		MTU:           1100, // STRIP's radio packet limit
	}
}

// Serial returns a 115.2 Kbit/s point-to-point serial medium, the paper's
// Handbook-to-radio link.
func Serial() Medium {
	return Medium{
		Name:          "serial",
		Latency:       time.Millisecond,
		LatencyJitter: 100 * time.Microsecond,
		BitRate:       115_200,
		MTU:           1500,
	}
}

// Backbone returns a campus-backbone trunk medium: a routed 100 Mbit/s
// point-to-point span with milliseconds of propagation delay. Its
// MinLatency of 1.9ms is what makes it suitable as a shard-boundary cut —
// the lookahead it grants dwarfs the per-epoch coordination cost.
func Backbone() Medium {
	return Medium{
		Name:          "backbone",
		Latency:       2 * time.Millisecond,
		LatencyJitter: 100 * time.Microsecond,
		BitRate:       100_000_000,
		LossProb:      0,
		MTU:           1500,
	}
}

// NetworkStats counts a broadcast domain's traffic.
type NetworkStats struct {
	Transmitted uint64 // frames offered to the medium
	Delivered   uint64 // frame deliveries (one per receiving device)
	LostMedium  uint64 // deliveries dropped by the loss model
}

// Network is a broadcast domain: every attached, up device receives a copy
// of each transmitted frame addressed to it (or to broadcast), after the
// medium's serialization and propagation delays.
type Network struct {
	name    string
	loop    *sim.Loop
	medium  Medium
	devices []*Device
	stats   NetworkStats
	pktlog  *metrics.PacketLog

	// busyUntil models the shared half-duplex channel: a frame cannot
	// start clocking out before the previous one finished.
	busyUntil sim.Time
	// lastDelivery enforces FIFO delivery so latency jitter cannot reorder
	// frames within one broadcast domain, which real Ethernets and the
	// Metricom radio channel do not do either.
	lastDelivery sim.Time

	// taps observe every transmitted frame (packet capture).
	taps []func(from *Device, f *Frame)

	// handoff, when set, makes this network one end of a cross-shard
	// trunk: transmitted frames are handed to the hook (with their
	// computed arrival time) instead of being delivered locally. The far
	// end injects them via DeliverLocal on its own shard. Ownership of the
	// frame's pooled payload copy transfers to the hook.
	//
	//mnet:ownership takes f
	handoff func(f *Frame, arrival sim.Time)

	// flights recycles in-flight frame records (payload copy + receiver
	// snapshot) so steady-state transmission does not allocate per frame.
	flights []*flight
}

// flight is one frame in transit: a single shared copy of the payload and
// the snapshot of receivers that survived the loss model at transmit time.
// One heap event delivers to every receiver in attachment order — the same
// observable order per-receiver events produced, since their consecutive
// sequence numbers admitted no interleaving — and then recycles the record.
type flight struct {
	net   *Network
	frame Frame
	rx    []*Device
}

func (n *Network) newFlight(f *Frame) *flight {
	var fl *flight
	if k := len(n.flights); k > 0 {
		fl = n.flights[k-1]
		n.flights[k-1] = nil
		n.flights = n.flights[:k-1]
	} else {
		fl = &flight{net: n}
	}
	payload := bufpool.Get(len(f.Payload))
	copy(payload, f.Payload)
	fl.frame = Frame{Src: f.Src, Dst: f.Dst, Type: f.Type, Payload: payload, Trace: f.Trace}
	fl.rx = fl.rx[:0]
	return fl
}

// deliver hands the shared frame to each snapshot receiver, then recycles
// the payload copy and the flight record. Receivers must not retain the
// frame or its payload beyond the synchronous delivery chain (ip.Unmarshal
// and arp.Unmarshal both copy what they keep).
func (fl *flight) deliver() {
	n := fl.net
	for i, d := range fl.rx {
		fl.rx[i] = nil
		n.stats.Delivered++
		d.deliver(&fl.frame)
	}
	bufpool.Put(fl.frame.Payload)
	fl.frame = Frame{}
	n.flights = append(n.flights, fl)
}

// AddTap registers an observer invoked for every frame offered to the
// medium, before loss and delivery — a passive sniffer on the wire.
func (n *Network) AddTap(fn func(from *Device, f *Frame)) {
	n.taps = append(n.taps, fn)
}

// NewNetwork creates a broadcast domain over the given medium.
func NewNetwork(loop *sim.Loop, name string, m Medium) *Network {
	n := &Network{name: name, loop: loop, medium: m, pktlog: metrics.PacketsFor(loop)}
	if reg := metrics.For(loop); reg != nil {
		lbl := metrics.L("net", name)
		reg.CounterFunc("link.network.transmitted", func() uint64 { return n.stats.Transmitted }, lbl)
		reg.CounterFunc("link.network.delivered", func() uint64 { return n.stats.Delivered }, lbl)
		reg.CounterFunc("link.network.lost_medium", func() uint64 { return n.stats.LostMedium }, lbl)
	}
	return n
}

// Name returns the network name, e.g. "net-36.135".
func (n *Network) Name() string { return n.name }

// Medium returns the network's medium description.
func (n *Network) Medium() Medium { return n.medium }

// SetLossProb changes the medium's loss probability at runtime — the
// fault-injection seam for loss bursts. The loss model reads the
// probability per frame, so the change applies to the next transmission;
// frames already in flight keep the draw they were given. Returns the
// previous probability so the injector can restore it when the burst
// heals.
func (n *Network) SetLossProb(p float64) (prev float64) {
	prev = n.medium.LossProb
	n.medium.LossProb = p
	return prev
}

// Stats returns a snapshot of the network counters.
func (n *Network) Stats() NetworkStats { return n.stats }

// Devices returns the attached devices.
func (n *Network) Devices() []*Device { return append([]*Device(nil), n.devices...) }

func (n *Network) add(d *Device) { n.devices = append(n.devices, d) }

func (n *Network) remove(d *Device) {
	for i, x := range n.devices {
		if x == d {
			n.devices = append(n.devices[:i], n.devices[i+1:]...)
			return
		}
	}
}

// transmit schedules delivery of f from device from to every other attached
// device. Each receiver independently suffers the medium's loss
// probability, which matches radio behaviour (receivers miss frames
// individually, not collectively).
func (n *Network) transmit(from *Device, f *Frame) {
	n.stats.Transmitted++
	for _, tap := range n.taps {
		tap(from, f)
	}
	now := n.loop.Now()
	start := now
	if n.busyUntil > start {
		start = n.busyUntil
	}
	txEnd := start.Add(n.medium.serializationDelay(f.Len()))
	n.busyUntil = txEnd
	arrival := txEnd.Add(n.loop.Jitter(n.medium.Latency, n.medium.LatencyJitter))
	if arrival < n.lastDelivery {
		arrival = n.lastDelivery
	}
	n.lastDelivery = arrival
	if n.handoff != nil {
		// Trunk end: the medium's loss model draws once (a point-to-point
		// span has one receiver, on the far shard), then ownership of a
		// pooled payload copy transfers to the hook. All delay modeling
		// happened here on the transmit side; the far end delivers at
		// `arrival` with no further delay.
		if n.medium.LossProb > 0 && n.loop.Rand().Float64() < n.medium.LossProb {
			n.stats.LostMedium++
			if n.pktlog != nil {
				n.pktlog.Record(f.Trace, n.name, "link.lost", "medium loss on trunk")
			}
			return
		}
		payload := bufpool.Get(len(f.Payload))
		copy(payload, f.Payload)
		n.handoff(&Frame{Src: f.Src, Dst: f.Dst, Type: f.Type, Payload: payload, Trace: f.Trace}, arrival)
		return
	}
	// Loss draws stay per-receiver in attachment order, so the RNG
	// consumption sequence is identical to per-receiver scheduling. The
	// payload is copied lazily: a frame every receiver loses costs nothing.
	var fl *flight
	for _, d := range n.devices {
		if d == from {
			continue
		}
		if n.medium.LossProb > 0 && n.loop.Rand().Float64() < n.medium.LossProb {
			n.stats.LostMedium++
			if n.pktlog != nil {
				n.pktlog.Record(f.Trace, n.name, "link.lost", "medium loss toward "+d.name)
			}
			continue
		}
		if fl == nil {
			fl = n.newFlight(f)
		}
		fl.rx = append(fl.rx, d)
	}
	if fl == nil {
		//lint:allow dropaccounting every receiver lost the frame; each loss was counted in LostMedium above
		return
	}
	n.loop.At(arrival, fl.deliver)
}

// SetHandoff marks this network as the local end of a cross-shard trunk.
// Transmitted frames are passed to fn — with an owned payload copy and the
// fully modeled arrival time — instead of being delivered on this shard.
// fn runs on this shard's goroutine; it must hand the frame to the far
// shard via sim.ShardSet.Post, never touch the far shard directly.
func (n *Network) SetHandoff(fn func(f *Frame, arrival sim.Time)) {
	n.handoff = fn
}

// DeliverLocal delivers a frame received over a trunk to every attached
// device, then recycles the frame's payload. It must run on this
// network's own loop (the coordinator schedules it at the arrival time the
// transmit side computed). The frame's payload must be pool-owned by the
// caller; ownership transfers here.
//
//mnet:ownership takes f
func (n *Network) DeliverLocal(f *Frame) {
	for _, d := range n.devices {
		n.stats.Delivered++
		d.deliver(f)
	}
	bufpool.Put(f.Payload)
	f.Payload = nil
}
