package link

import (
	"testing"
	"time"

	"mosquitonet/internal/sim"
)

// buildTrunk wires two single-device stub networks on separate loops into
// a full-duplex cross-shard trunk over the given shard set.
func buildTrunk(ss *sim.ShardSet, shardA, shardB int, netA, netB *Network) {
	netA.SetHandoff(func(f *Frame, arrival sim.Time) {
		ss.Post(shardA, shardB, arrival, func() { netB.DeliverLocal(f) })
	})
	netB.SetHandoff(func(f *Frame, arrival sim.Time) {
		ss.Post(shardB, shardA, arrival, func() { netA.DeliverLocal(f) })
	})
}

func TestTrunkCrossShardDelivery(t *testing.T) {
	loopA := sim.New(sim.ShardSeed(1, 0))
	loopB := sim.New(sim.ShardSeed(1, 1))
	medium := Backbone()
	ss := sim.NewShardSet([]*sim.Loop{loopA, loopB}, medium.MinLatency())

	netA := NewNetwork(loopA, "trunk-a", medium)
	netB := NewNetwork(loopB, "trunk-b", medium)
	buildTrunk(ss, 0, 1, netA, netB)

	dA := NewDevice(loopA, "tr0", 0, 0)
	dA.Attach(netA)
	dA.BringUp(nil)
	dB := NewDevice(loopB, "tr1", 0, 0)
	dB.Attach(netB)
	dB.BringUp(nil)

	var got []string
	var gotAt []sim.Time
	dB.SetReceiver(func(f *Frame) {
		got = append(got, string(f.Payload))
		gotAt = append(gotAt, loopB.Now())
	})
	var echoed []string
	dA.SetReceiver(func(f *Frame) { echoed = append(echoed, string(f.Payload)) })

	loopA.Schedule(0, func() {
		dA.Send(&Frame{Dst: BroadcastHW, Type: EtherTypeIPv4, Payload: []byte("ping-1")})
	})
	loopA.Schedule(500*time.Microsecond, func() {
		dA.Send(&Frame{Dst: BroadcastHW, Type: EtherTypeIPv4, Payload: []byte("ping-2")})
	})
	// The far side answers from its own shard once the first ping lands.
	loopB.Schedule(3*time.Millisecond, func() {
		dB.Send(&Frame{Dst: BroadcastHW, Type: EtherTypeIPv4, Payload: []byte("pong")})
	})

	ss.RunFor(20 * time.Millisecond)

	if len(got) != 2 || got[0] != "ping-1" || got[1] != "ping-2" {
		t.Fatalf("far side received %q, want [ping-1 ping-2]", got)
	}
	if len(echoed) != 1 || echoed[0] != "pong" {
		t.Fatalf("near side received %q, want [pong]", echoed)
	}
	// The arrival delta must respect the medium's minimum latency — that
	// is the whole basis of the lookahead.
	if d := gotAt[0].Sub(sim.Time(0)); d < medium.MinLatency() {
		t.Fatalf("first ping arrived after %v, below MinLatency %v", d, medium.MinLatency())
	}
	if netA.Stats().Transmitted != 2 || netB.Stats().Delivered != 2 {
		t.Fatalf("trunk stats: a.tx=%d b.rx=%d, want 2/2", netA.Stats().Transmitted, netB.Stats().Delivered)
	}
	if ss.CrossDelivered() != 3 {
		t.Fatalf("cross-shard deliveries = %d, want 3", ss.CrossDelivered())
	}
}

func TestMediumMinLatency(t *testing.T) {
	for _, m := range []Medium{Ethernet(), Radio(), Serial(), Backbone()} {
		if m.MinLatency() <= 0 {
			t.Fatalf("%s MinLatency %v, want > 0", m.Name, m.MinLatency())
		}
		if m.MinLatency() > m.Latency {
			t.Fatalf("%s MinLatency %v exceeds Latency %v", m.Name, m.MinLatency(), m.Latency)
		}
	}
}

func TestDeviceOnChange(t *testing.T) {
	loop := sim.New(1)
	net := NewNetwork(loop, "n", Ethernet())
	d := NewDevice(loop, "eth0", time.Millisecond, 0)
	var fires int
	d.OnChange(func() { fires++ })

	d.Attach(net) // fire 1
	if fires != 1 {
		t.Fatalf("after Attach: %d fires, want 1", fires)
	}
	d.BringUp(nil)
	if fires != 1 {
		t.Fatalf("BringUp must not fire until the delay elapses; got %d", fires)
	}
	loop.RunFor(2 * time.Millisecond) // fire 2: up transition
	if fires != 2 {
		t.Fatalf("after bring-up completes: %d fires, want 2", fires)
	}
	d.BringDown() // fire 3
	d.BringDown() // no-op: already down
	if fires != 3 {
		t.Fatalf("after BringDown: %d fires, want 3", fires)
	}
	d.Detach() // fire 4
	if fires != 4 {
		t.Fatalf("after Detach: %d fires, want 4", fires)
	}
}
