package metrics

import (
	"bytes"
	"testing"
	"time"

	"mosquitonet/internal/sim"
)

func TestMergedSnapshotSumsAcrossRegistries(t *testing.T) {
	loopA, loopB := sim.New(1), sim.New(2)
	ra, rb := New(loopA), New(loopB)

	ra.Counter("stack.host.sent", L("host", "a")).Add(3)
	rb.Counter("stack.host.sent", L("host", "a")).Add(4) // same identity, other shard
	rb.Counter("stack.host.sent", L("host", "b")).Add(9) // only on shard B
	ra.Gauge("mip.ha.bindings", L("host", "ha")).Set(2)
	rb.Gauge("mip.ha.bindings", L("host", "ha")).Set(5)
	ra.Histogram("mip.mh.registration_latency").Observe(10 * time.Millisecond)
	rb.Histogram("mip.mh.registration_latency").Observe(30 * time.Millisecond)

	at := sim.Time(0).Add(8 * time.Second)
	s := MergedSnapshot(at, ra, rb)
	if s.At != int64(8*time.Second) {
		t.Fatalf("At = %d", s.At)
	}
	if m := s.Get("stack.host.sent", L("host", "a")); m == nil || *m.Counter != 7 {
		t.Fatalf("merged counter: %+v", m)
	}
	if m := s.Get("stack.host.sent", L("host", "b")); m == nil || *m.Counter != 9 {
		t.Fatalf("single-shard counter: %+v", m)
	}
	if m := s.Get("mip.ha.bindings", L("host", "ha")); m == nil || *m.Gauge != 7 {
		t.Fatalf("merged gauge: %+v", m)
	}
	if m := s.Get("mip.mh.registration_latency"); m == nil || m.Histogram.Count != 2 ||
		m.Histogram.Min != int64(10*time.Millisecond) || m.Histogram.Max != int64(30*time.Millisecond) {
		t.Fatalf("merged histogram: %+v", m.Histogram)
	}
}

func TestMergedSnapshotDeterministicOrder(t *testing.T) {
	build := func(order bool) []byte {
		loopA, loopB := sim.New(1), sim.New(2)
		ra, rb := New(loopA), New(loopB)
		ra.Counter("z.last").Inc()
		rb.Counter("a.first").Add(2)
		regs := []*Registry{ra, rb}
		if order {
			regs = []*Registry{rb, ra}
		}
		var buf bytes.Buffer
		if err := MergedSnapshot(sim.Time(0), regs...).WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(build(false), build(true)) {
		t.Fatal("merged snapshot depends on registry argument order")
	}
}

func TestMergedSnapshotKindMismatchPanics(t *testing.T) {
	loopA, loopB := sim.New(1), sim.New(2)
	ra, rb := New(loopA), New(loopB)
	ra.Counter("layer.obj.thing")
	rb.Gauge("layer.obj.thing")
	defer func() {
		if recover() == nil {
			t.Fatal("cross-registry kind mismatch must panic")
		}
	}()
	MergedSnapshot(sim.Time(0), ra, rb)
}

func TestMergedSnapshotNilRegistrySkipped(t *testing.T) {
	loop := sim.New(1)
	r := New(loop)
	r.Counter("x").Inc()
	s := MergedSnapshot(sim.Time(0), nil, r, nil)
	if m := s.Get("x"); m == nil || *m.Counter != 1 {
		t.Fatalf("nil registries must be skipped: %+v", m)
	}
}
