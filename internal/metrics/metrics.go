// Package metrics is the simulator's unified telemetry layer: a
// simulation-time-aware registry of labeled counters, gauges, and duration
// histograms, plus a snapshot API that renders a human-readable table or
// deterministic JSON.
//
// Everything is keyed to virtual time (sim.Time); no wall clock is ever
// consulted, so two runs with the same seed produce byte-identical
// snapshots — the property that turns the paper's evaluation into a
// reproducible benchmark trajectory rather than a set of one-off numbers.
//
// Metric names follow the layer.object.event convention, e.g.
// "link.device.tx_packets" or "mip.mh.registration_latency", with labels
// for the instance ("dev", "host", "vif", ...). Registering the same name
// and labels twice is allowed and yields independent handles whose values
// are summed in snapshots; this is how a fleet of mobile hosts with
// identically named devices aggregates cleanly. Registering the same name
// and labels as a different metric kind is a programming error and panics.
//
// A nil *Registry is valid everywhere: its constructors hand out detached
// handles that count normally but appear in no snapshot, so instrumented
// code never needs nil checks and costs almost nothing when telemetry is
// disabled.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"mosquitonet/internal/sim"
)

// Label is one name/value pair qualifying a metric.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing count. All methods, like those of
// the other handle types, tolerate a nil receiver, so a handle field left
// unset behaves like a detached handle rather than crashing.
type Counter struct{ v uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v++
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v += n
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is an instantaneous value that can move both ways.
type Gauge struct{ v int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v = v
}

// Add adds d (which may be negative).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v += d
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram accumulates duration samples and reports count, sum, extrema,
// and nearest-rank quantiles. Samples are retained, so quantiles are exact
// and deterministic.
type Histogram struct {
	samples []time.Duration
	sum     time.Duration
}

// Observe records one sample.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	h.samples = append(h.samples, d)
	h.sum += d
}

// N returns the sample count.
func (h *Histogram) N() int {
	if h == nil {
		return 0
	}
	return len(h.samples)
}

// Sum returns the sum of all samples.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return h.sum
}

// Quantile returns the q-th quantile (0 < q <= 1) by nearest rank, or zero
// for an empty histogram.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil || len(h.samples) == 0 {
		return 0
	}
	return quantileOf(sortedCopy(h.samples), q)
}

func sortedCopy(in []time.Duration) []time.Duration {
	out := append([]time.Duration(nil), in...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func quantileOf(sorted []time.Duration, q float64) time.Duration {
	rank := int(q*float64(len(sorted)) + 0.9999999)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// Kind discriminates the metric types.
type Kind int

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// source is one registered producer under a metric key. Exactly one field
// is set, according to the entry's kind.
type source struct {
	counter   *Counter
	counterFn func() uint64
	gauge     *Gauge
	gaugeFn   func() int64
	hist      *Histogram
}

type entry struct {
	name    string
	labels  []Label // sorted by key, then value
	kind    Kind
	sources []source
}

func (e *entry) key() string { return metricKey(e.name, e.labels) }

func metricKey(name string, labels []Label) string {
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte('|')
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

func sortLabels(labels []Label) []Label {
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key != out[j].Key {
			return out[i].Key < out[j].Key
		}
		return out[i].Value < out[j].Value
	})
	return out
}

// Registry holds a simulation's metrics, keyed to its virtual clock.
type Registry struct {
	loop       *sim.Loop
	entries    map[string]*entry
	collectors []func(*Collection)
}

// New creates a registry on the given clock and registers the loop's own
// telemetry (events dispatched, event-queue depth and high-water mark).
func New(loop *sim.Loop) *Registry {
	r := &Registry{loop: loop, entries: make(map[string]*entry)}
	r.CounterFunc("sim.loop.events_dispatched", loop.Executed)
	r.GaugeFunc("sim.loop.queue_depth", func() int64 { return int64(loop.Len()) })
	r.GaugeFunc("sim.loop.queue_high_water", func() int64 { return int64(loop.QueueHighWater()) })
	return r
}

// Loop returns the clock the registry reads snapshot timestamps from.
func (r *Registry) Loop() *sim.Loop {
	if r == nil {
		return nil
	}
	return r.loop
}

// register appends a source under (name, labels), enforcing kind
// consistency. It is the common path of all the constructors below.
func (r *Registry) register(name string, kind Kind, labels []Label, s source) {
	labels = sortLabels(labels)
	key := metricKey(name, labels)
	e, ok := r.entries[key]
	if !ok {
		e = &entry{name: name, labels: labels, kind: kind}
		r.entries[key] = e
	} else if e.kind != kind {
		panic(fmt.Sprintf("metrics: %q registered as both %v and %v", key, e.kind, kind))
	}
	e.sources = append(e.sources, s)
}

// Counter registers and returns a new counter handle. A nil registry
// returns a detached handle that counts but is never snapshotted.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	c := &Counter{}
	if r != nil {
		r.register(name, KindCounter, labels, source{counter: c})
	}
	return c
}

// CounterFunc registers a counter whose value is polled from fn at
// snapshot time — the usual way existing stats structs are exposed without
// restructuring their increment sites. No-op on a nil registry.
func (r *Registry) CounterFunc(name string, fn func() uint64, labels ...Label) {
	if r == nil {
		return
	}
	r.register(name, KindCounter, labels, source{counterFn: fn})
}

// Gauge registers and returns a new gauge handle.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	g := &Gauge{}
	if r != nil {
		r.register(name, KindGauge, labels, source{gauge: g})
	}
	return g
}

// GaugeFunc registers a gauge polled from fn at snapshot time.
func (r *Registry) GaugeFunc(name string, fn func() int64, labels ...Label) {
	if r == nil {
		return
	}
	r.register(name, KindGauge, labels, source{gaugeFn: fn})
}

// Histogram registers and returns a new histogram handle.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	h := &Histogram{}
	if r != nil {
		r.register(name, KindHistogram, labels, source{hist: h})
	}
	return h
}

// Collection gathers the rows of one snapshot while it is being built:
// the registry's persistent entries plus everything the registered
// collectors emit. Collector-emitted rows merge with registered handles
// under the same (name, labels) key exactly as a second registered source
// would — counters sum, histogram samples pool — so converting a roster
// of per-object handles to a collector never changes snapshot bytes.
type Collection struct {
	entries map[string]*entry
	keep    func(name string) bool // nil keeps every row
}

func (c *Collection) add(name string, kind Kind, labels []Label, s source) {
	if c.keep != nil && !c.keep(name) {
		return
	}
	labels = sortLabels(labels)
	key := metricKey(name, labels)
	e, ok := c.entries[key]
	if !ok {
		e = &entry{name: name, labels: labels, kind: kind}
		c.entries[key] = e
	} else if e.kind != kind {
		panic(fmt.Sprintf("metrics: %q registered as both %v and %v", key, e.kind, kind))
	}
	e.sources = append(e.sources, s)
}

// Counter emits one counter row with the given value.
func (c *Collection) Counter(name string, v uint64, labels ...Label) {
	c.add(name, KindCounter, labels, source{counter: &Counter{v: v}})
}

// Gauge emits one gauge row with the given value.
func (c *Collection) Gauge(name string, v int64, labels ...Label) {
	c.add(name, KindGauge, labels, source{gauge: &Gauge{v: v}})
}

// Histogram emits one histogram row backed by h's samples (not copied; the
// snapshot renders them immediately). A zero-valued metrics.Histogram is a
// valid detached handle, so objects converted to collectors keep observing
// into their own histogram and emit it here.
func (c *Collection) Histogram(name string, h *Histogram, labels ...Label) {
	if h == nil {
		h = &Histogram{}
	}
	c.add(name, KindHistogram, labels, source{hist: h})
}

// Collect registers fn to run at snapshot time. It is the memory-light
// alternative to registering a roster of per-object CounterFunc/Histogram
// handles: an object with dozens of metrics costs one closure in the
// registry instead of dozens of map entries, and the snapshot output is
// byte-identical. Collectors run in registration order after the
// persistent entries are merged. No-op on a nil registry.
func (r *Registry) Collect(fn func(*Collection)) {
	if r == nil || fn == nil {
		return
	}
	r.collectors = append(r.collectors, fn)
}

// HistogramSummary is a histogram's rendered state. Durations are in
// nanoseconds of virtual time.
type HistogramSummary struct {
	Count uint64 `json:"count"`
	Sum   int64  `json:"sum_ns"`
	Min   int64  `json:"min_ns"`
	Max   int64  `json:"max_ns"`
	Mean  int64  `json:"mean_ns"`
	P50   int64  `json:"p50_ns"`
	P90   int64  `json:"p90_ns"`
	P99   int64  `json:"p99_ns"`
}

// MetricSnapshot is one metric's rendered state. Exactly one of Counter,
// Gauge, Histogram is set, per Kind.
type MetricSnapshot struct {
	Name      string            `json:"name"`
	Labels    []Label           `json:"labels,omitempty"`
	Kind      string            `json:"kind"`
	Counter   *uint64           `json:"counter,omitempty"`
	Gauge     *int64            `json:"gauge,omitempty"`
	Histogram *HistogramSummary `json:"histogram,omitempty"`
}

func (m *MetricSnapshot) labelString() string {
	if len(m.Labels) == 0 {
		return ""
	}
	parts := make([]string, len(m.Labels))
	for i, l := range m.Labels {
		parts[i] = l.Key + "=" + l.Value
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Snapshot is a point-in-time rendering of a registry, ordered by metric
// name and labels so it serializes deterministically.
type Snapshot struct {
	// Name optionally scopes the snapshot (e.g. an experiment scenario).
	Name    string           `json:"name,omitempty"`
	At      int64            `json:"at_ns"`
	AtHuman string           `json:"at"`
	Metrics []MetricSnapshot `json:"metrics"`
}

// Snapshot renders the registry's current state.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return &Snapshot{}
	}
	return snapshotAt(r.loop.Now(), nil, r)
}

// mergeInto folds one registry's rows into the collection: persistent
// entries first, then whatever its collectors emit. The per-key source
// order (registration order, collectors after handles) is a function of
// construction alone, so snapshot bytes never depend on which goroutine
// ran which shard.
func (r *Registry) mergeInto(c *Collection) {
	for k, e := range r.entries {
		if c.keep != nil && !c.keep(e.name) {
			continue
		}
		m, ok := c.entries[k]
		if !ok {
			m = &entry{name: e.name, labels: e.labels, kind: e.kind}
			c.entries[k] = m
		} else if m.kind != e.kind {
			panic(fmt.Sprintf("metrics: %q registered as both %v and %v across merged registries", k, m.kind, e.kind))
		}
		m.sources = append(m.sources, e.sources...)
	}
	for _, fn := range r.collectors {
		fn(c)
	}
}

// snapshotAt renders one or more registries as a single snapshot, keeping
// only rows whose name passes keep (nil keeps all).
func snapshotAt(at sim.Time, keep func(string) bool, regs ...*Registry) *Snapshot {
	s := &Snapshot{At: int64(at.Duration()), AtHuman: at.String()}
	c := &Collection{entries: make(map[string]*entry), keep: keep}
	for _, r := range regs {
		if r == nil {
			continue
		}
		r.mergeInto(c)
	}
	keys := make([]string, 0, len(c.entries))
	for k := range c.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		s.Metrics = append(s.Metrics, renderEntry(c.entries[k]))
	}
	return s
}

// renderEntry sums an entry's sources into one MetricSnapshot row; the
// shared rendering path of Snapshot and MergedSnapshot.
func renderEntry(e *entry) MetricSnapshot {
	ms := MetricSnapshot{Name: e.name, Labels: e.labels, Kind: e.kind.String()}
	switch e.kind {
	case KindCounter:
		var total uint64
		for _, src := range e.sources {
			if src.counterFn != nil {
				total += src.counterFn()
			} else {
				total += src.counter.Value()
			}
		}
		ms.Counter = &total
	case KindGauge:
		var total int64
		for _, src := range e.sources {
			if src.gaugeFn != nil {
				total += src.gaugeFn()
			} else {
				total += src.gauge.Value()
			}
		}
		ms.Gauge = &total
	case KindHistogram:
		var all []time.Duration
		var sum time.Duration
		for _, src := range e.sources {
			all = append(all, src.hist.samples...)
			sum += src.hist.sum
		}
		hs := &HistogramSummary{Count: uint64(len(all)), Sum: int64(sum)}
		if len(all) > 0 {
			sorted := sortedCopy(all)
			hs.Min = int64(sorted[0])
			hs.Max = int64(sorted[len(sorted)-1])
			hs.Mean = int64(sum) / int64(len(all))
			hs.P50 = int64(quantileOf(sorted, 0.50))
			hs.P90 = int64(quantileOf(sorted, 0.90))
			hs.P99 = int64(quantileOf(sorted, 0.99))
		}
		ms.Histogram = hs
	}
	return ms
}

// MergedSnapshot renders several registries as one snapshot, as if every
// source had been registered in a single registry: rows with the same
// name and labels are summed (histograms pooled), and the result is
// sorted by key exactly like Snapshot. The sharded scale experiment uses
// it to merge per-shard registries deterministically — the merge depends
// only on registration content, never on which goroutine ran which shard.
// at is the virtual timestamp to stamp (the shards' common barrier time).
// Mixing kinds under one key across registries panics, as it would within
// one registry.
func MergedSnapshot(at sim.Time, regs ...*Registry) *Snapshot {
	return snapshotAt(at, nil, regs...)
}

// MergedSnapshotFiltered is MergedSnapshot with the name filter applied
// while rows are gathered rather than after: rows whose name fails keep
// are never materialized. This is what lets a 100k-host fleet export its
// handful of sim.* aggregates without first building the millions of
// per-host rows its collectors could emit.
func MergedSnapshotFiltered(at sim.Time, keep func(name string) bool, regs ...*Registry) *Snapshot {
	return snapshotAt(at, keep, regs...)
}

// Get returns the snapshot row matching name and labels, or nil. Intended
// for tests and assertions; label order is irrelevant.
func (s *Snapshot) Get(name string, labels ...Label) *MetricSnapshot {
	want := metricKey(name, sortLabels(labels))
	for i := range s.Metrics {
		if metricKey(s.Metrics[i].Name, s.Metrics[i].Labels) == want {
			return &s.Metrics[i]
		}
	}
	return nil
}

// Table renders the snapshot as an aligned human-readable table.
func (s *Snapshot) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "metrics @ %s\n", s.AtHuman)
	width := 0
	rows := make([]string, len(s.Metrics))
	for i := range s.Metrics {
		rows[i] = s.Metrics[i].Name + s.Metrics[i].labelString()
		if len(rows[i]) > width {
			width = len(rows[i])
		}
	}
	for i := range s.Metrics {
		m := &s.Metrics[i]
		fmt.Fprintf(&b, "  %-*s ", width, rows[i])
		switch {
		case m.Counter != nil:
			fmt.Fprintf(&b, "%d", *m.Counter)
		case m.Gauge != nil:
			fmt.Fprintf(&b, "%d", *m.Gauge)
		case m.Histogram != nil:
			h := m.Histogram
			fmt.Fprintf(&b, "n=%d mean=%v p50=%v p90=%v p99=%v max=%v",
				h.Count, time.Duration(h.Mean), time.Duration(h.P50),
				time.Duration(h.P90), time.Duration(h.P99), time.Duration(h.Max))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// WriteJSON writes the snapshot as indented JSON. The output is
// byte-identical across same-seed runs.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// --- per-loop association ------------------------------------------------
//
// Constructors deep in the stack (devices, hosts, tunnel endpoints) find
// their simulation's registry through the loop they are already handed,
// so enabling telemetry requires no signature changes anywhere. The maps
// are process-global and synchronized only because independent test
// binaries may exercise several loops; within one simulation everything
// is single-threaded.

var (
	//lint:allow nosharedstate sync.Map keyed by *sim.Loop: shard-time accesses are per-loop reads of disjoint entries, and Enable/Release run during single-threaded construction and teardown
	registries sync.Map // *sim.Loop -> *Registry
	//lint:allow nosharedstate sync.Map keyed by *sim.Loop: shard-time accesses are per-loop reads of disjoint entries, and Enable/Release run during single-threaded construction and teardown
	packetLogs sync.Map // *sim.Loop -> *PacketLog
)

// Enable creates (or returns) the registry associated with loop. Call it
// immediately after sim.New, before building devices and hosts, so their
// constructors find it.
func Enable(loop *sim.Loop) *Registry {
	if r, ok := registries.Load(loop); ok {
		return r.(*Registry)
	}
	r := New(loop)
	registries.Store(loop, r)
	return r
}

// For returns the registry associated with loop, or nil if telemetry was
// never enabled for it. All Registry methods accept the nil result.
func For(loop *sim.Loop) *Registry {
	if r, ok := registries.Load(loop); ok {
		return r.(*Registry)
	}
	return nil
}

// TracePackets creates (or returns) the packet-lifecycle log associated
// with loop, retaining at most limit events (default 16384 when limit<=0).
func TracePackets(loop *sim.Loop, limit int) *PacketLog {
	if l, ok := packetLogs.Load(loop); ok {
		return l.(*PacketLog)
	}
	l := NewPacketLog(loop, limit)
	packetLogs.Store(loop, l)
	return l
}

// PacketsFor returns loop's packet log, or nil. PacketLog methods accept
// the nil result.
func PacketsFor(loop *sim.Loop) *PacketLog {
	if l, ok := packetLogs.Load(loop); ok {
		return l.(*PacketLog)
	}
	return nil
}

// Release drops loop's registry and packet log from the process-global
// association, for long-running processes that build many simulations.
func Release(loop *sim.Loop) {
	registries.Delete(loop)
	packetLogs.Delete(loop)
}
