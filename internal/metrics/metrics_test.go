package metrics

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"mosquitonet/internal/sim"
)

func TestDuplicateRegistrationAggregates(t *testing.T) {
	loop := sim.New(1)
	r := New(loop)
	// Two independent owners of the same metric identity (the A3 fleet
	// case: every mobile host names its device "eth").
	a := r.Counter("link.device.tx_packets", L("dev", "eth"))
	b := r.Counter("link.device.tx_packets", L("dev", "eth"))
	if a == b {
		t.Fatal("duplicate registration must return distinct handles")
	}
	a.Add(3)
	b.Add(4)
	m := r.Snapshot().Get("link.device.tx_packets", L("dev", "eth"))
	if m == nil || m.Counter == nil {
		t.Fatal("metric missing from snapshot")
	}
	if *m.Counter != 7 {
		t.Fatalf("aggregated counter = %d, want 7", *m.Counter)
	}
}

func TestLabelOrderIrrelevant(t *testing.T) {
	loop := sim.New(1)
	r := New(loop)
	a := r.Counter("x", L("b", "2"), L("a", "1"))
	b := r.Counter("x", L("a", "1"), L("b", "2"))
	a.Inc()
	b.Inc()
	m := r.Snapshot().Get("x", L("a", "1"), L("b", "2"))
	if m == nil || *m.Counter != 2 {
		t.Fatalf("label order must not split the metric: %+v", m)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	loop := sim.New(1)
	r := New(loop)
	r.Counter("layer.obj.thing")
	defer func() {
		if recover() == nil {
			t.Fatal("registering the same key as a different kind must panic")
		}
	}()
	r.Gauge("layer.obj.thing")
}

func TestHistogramQuantiles(t *testing.T) {
	loop := sim.New(1)
	r := New(loop)
	h := r.Histogram("mip.mh.registration_latency", L("host", "mh"))
	// 1ms..100ms; nearest-rank: p50 = 50th sample, p90 = 90th, p99 = 99th.
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 50 * time.Millisecond},
		{0.90, 90 * time.Millisecond},
		{0.99, 99 * time.Millisecond},
		{1.00, 100 * time.Millisecond},
	} {
		if got := h.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	m := r.Snapshot().Get("mip.mh.registration_latency", L("host", "mh"))
	if m == nil || m.Histogram == nil {
		t.Fatal("histogram missing from snapshot")
	}
	if m.Histogram.Count != 100 || m.Histogram.P50 != int64(50*time.Millisecond) {
		t.Fatalf("snapshot summary wrong: %+v", m.Histogram)
	}
}

func TestSnapshotDeterminism(t *testing.T) {
	// Two separate same-seed simulations performing the same work must
	// serialize byte-identically.
	build := func() []byte {
		loop := sim.New(42)
		r := Enable(loop)
		defer Release(loop)
		c := r.Counter("stack.host.sent", L("host", "mh"))
		h := r.Histogram("mip.mh.registration_latency", L("host", "mh"))
		loop.Schedule(5*time.Millisecond, func() { c.Inc(); h.Observe(3 * time.Millisecond) })
		loop.RunFor(time.Second)
		var buf bytes.Buffer
		if err := r.Snapshot().WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := build(), build()
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed snapshots differ:\n%s\n---\n%s", a, b)
	}
}

func TestNilRegistryDetachedHandles(t *testing.T) {
	var r *Registry
	c := r.Counter("a.b.c")
	c.Inc()
	if c.Value() != 1 {
		t.Fatal("detached counter must still count")
	}
	g := r.Gauge("a.b.g")
	g.Set(-2)
	if g.Value() != -2 {
		t.Fatal("detached gauge must still hold values")
	}
	h := r.Histogram("a.b.h")
	h.Observe(time.Millisecond)
	if h.N() != 1 {
		t.Fatal("detached histogram must still observe")
	}
	// Func registrations and snapshots are no-ops, not crashes.
	r.CounterFunc("a.b.f", func() uint64 { return 0 })
	r.GaugeFunc("a.b.gf", func() int64 { return 0 })
	if s := r.Snapshot(); len(s.Metrics) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

func TestPerLoopAssociation(t *testing.T) {
	loop := sim.New(1)
	if For(loop) != nil {
		t.Fatal("loop must start with no registry")
	}
	r := Enable(loop)
	if Enable(loop) != r || For(loop) != r {
		t.Fatal("Enable/For must return the same registry per loop")
	}
	l := TracePackets(loop, 8)
	if PacketsFor(loop) != l {
		t.Fatal("TracePackets/PacketsFor must return the same log per loop")
	}
	Release(loop)
	if For(loop) != nil || PacketsFor(loop) != nil {
		t.Fatal("Release must detach the loop")
	}
}

func TestPacketLogRingAndTimeline(t *testing.T) {
	loop := sim.New(1)
	pl := NewPacketLog(loop, 4)
	pl.Record(0, "mh", "link.tx", "must be ignored") // untraced frames are skipped
	for i := 1; i <= 6; i++ {
		pl.Record(uint64(i), "mh", "link.tx", "")
	}
	if pl.Len() != 4 {
		t.Fatalf("ring length = %d, want 4", pl.Len())
	}
	if pl.Evicted() != 2 {
		t.Fatalf("evicted = %d, want 2", pl.Evicted())
	}
	ev := pl.Events()
	if ev[0].Pkt != 3 || ev[len(ev)-1].Pkt != 6 {
		t.Fatalf("ring must keep the newest events, got %+v", ev)
	}

	pl.Reset()
	pl.Record(7, "mh", "ip.output", "udp")
	pl.Record(8, "router", "ip.forward", "")
	pl.Record(7, "router", "ip.deliver", "udp")
	tl := pl.Timeline(7)
	if len(tl) != 2 || tl[0].Point != "ip.output" || tl[1].Point != "ip.deliver" {
		t.Fatalf("Timeline(7) = %+v", tl)
	}

	var buf bytes.Buffer
	if err := pl.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("JSONL lines = %d, want 3", len(lines))
	}
	if !strings.Contains(lines[0], `"pkt":7`) || !strings.Contains(lines[0], `"point":"ip.output"`) {
		t.Fatalf("bad JSONL line: %s", lines[0])
	}
}

func TestNextSerialMonotonic(t *testing.T) {
	loop := sim.New(1)
	if loop.NextSerial() != 1 || loop.NextSerial() != 2 {
		t.Fatal("NextSerial must count from 1")
	}
}

// The loop's queue gauges must report live events only: a Stop()ed timer
// leaves the queue immediately instead of lingering as a cancelled entry
// that inflates queue_depth and queue_high_water.
func TestQueueGaugesCountLiveEventsOnly(t *testing.T) {
	loop := sim.New(1)
	r := New(loop)
	timers := make([]sim.Timer, 50)
	for i := range timers {
		timers[i] = loop.Schedule(time.Duration(i+1)*time.Millisecond, func() {})
	}
	for _, tm := range timers {
		tm.Stop()
	}
	loop.Schedule(time.Millisecond, func() {})
	loop.Schedule(2*time.Millisecond, func() {})

	snap := r.Snapshot()
	depth := snap.Get("sim.loop.queue_depth")
	if depth == nil || depth.Gauge == nil {
		t.Fatal("queue_depth gauge missing from snapshot")
	}
	if *depth.Gauge != 2 {
		t.Fatalf("queue_depth = %d after cancelling 50 timers, want 2 live", *depth.Gauge)
	}
	hw := snap.Get("sim.loop.queue_high_water")
	if hw == nil || hw.Gauge == nil {
		t.Fatal("queue_high_water gauge missing from snapshot")
	}
	if *hw.Gauge != 50 {
		t.Fatalf("queue_high_water = %d, want 50 (the true live maximum)", *hw.Gauge)
	}
}
