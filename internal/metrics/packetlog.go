package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"mosquitonet/internal/sim"
)

// PacketEvent is one hop in a packet's lifecycle: the virtual time, the
// packet's trace ID, the node and instrumentation point that observed it,
// and an optional detail string (addresses, drop reason, ...).
type PacketEvent struct {
	At     sim.Time `json:"at_ns"`
	Pkt    uint64   `json:"pkt"`
	Node   string   `json:"node"`
	Point  string   `json:"point"`
	Detail string   `json:"detail,omitempty"`
}

// PacketLog is a bounded ring of packet-lifecycle events. Every packet
// injected into an instrumented stack is assigned a monotonic trace ID
// (sim.Loop.NextSerial), carried as metadata through IP headers, link
// frames, ARP queues, and tunnel encapsulation, so one packet's journey —
// link rx → route lookup → policy decision → VIF encap → HA decap →
// delivery or drop-with-reason — can be dumped as a single causal
// timeline. A nil *PacketLog is valid and records nothing.
type PacketLog struct {
	loop    *sim.Loop
	limit   int
	buf     []PacketEvent
	start   int // index of oldest event when the ring has wrapped
	full    bool
	dropped uint64
}

// DefaultPacketLogLimit bounds a packet log when no explicit limit is given.
const DefaultPacketLogLimit = 16384

// NewPacketLog creates a log keeping at most limit events (the oldest are
// evicted first). limit <= 0 selects DefaultPacketLogLimit.
func NewPacketLog(loop *sim.Loop, limit int) *PacketLog {
	if limit <= 0 {
		limit = DefaultPacketLogLimit
	}
	return &PacketLog{loop: loop, limit: limit}
}

// Record appends an event for packet pkt. Events for pkt 0 (an
// un-instrumented packet, e.g. a raw ARP frame) are ignored.
func (l *PacketLog) Record(pkt uint64, node, point, detail string) {
	if l == nil || pkt == 0 {
		return
	}
	ev := PacketEvent{At: l.loop.Now(), Pkt: pkt, Node: node, Point: point, Detail: detail}
	if len(l.buf) < l.limit {
		l.buf = append(l.buf, ev)
		return
	}
	l.buf[l.start] = ev
	l.start = (l.start + 1) % l.limit
	l.full = true
	l.dropped++
}

// Len returns the number of retained events.
func (l *PacketLog) Len() int {
	if l == nil {
		return 0
	}
	return len(l.buf)
}

// Evicted returns how many events were evicted from the ring.
func (l *PacketLog) Evicted() uint64 {
	if l == nil {
		return 0
	}
	return l.dropped
}

// Reset discards all retained events.
func (l *PacketLog) Reset() {
	if l == nil {
		return
	}
	l.buf = l.buf[:0]
	l.start = 0
	l.full = false
	l.dropped = 0
}

// Events returns retained events in recording order.
func (l *PacketLog) Events() []PacketEvent {
	if l == nil {
		return nil
	}
	out := make([]PacketEvent, 0, len(l.buf))
	out = append(out, l.buf[l.start:]...)
	if l.full {
		out = append(out, l.buf[:l.start]...)
	}
	return out
}

// Timeline returns the retained events for one packet, oldest first.
func (l *PacketLog) Timeline(pkt uint64) []PacketEvent {
	var out []PacketEvent
	for _, ev := range l.Events() {
		if ev.Pkt == pkt {
			out = append(out, ev)
		}
	}
	return out
}

// WriteJSONL writes retained events as one JSON object per line.
func (l *PacketLog) WriteJSONL(w io.Writer) error {
	for _, ev := range l.Events() {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		b = append(b, '\n')
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}

// FormatTimeline renders events (e.g. from Timeline) as an indented,
// human-readable causal trace.
func FormatTimeline(events []PacketEvent) string {
	var b strings.Builder
	for _, ev := range events {
		fmt.Fprintf(&b, "%12v  pkt=%d  %-14s %-18s %s\n", ev.At, ev.Pkt, ev.Node, ev.Point, ev.Detail)
	}
	return b.String()
}
