package metrics

import (
	"testing"
	"time"

	"mosquitonet/internal/sim"
)

// Quantile's contract at the edges: nil and empty histograms answer zero,
// a single sample answers itself at every q, and out-of-range q clamps to
// the extreme samples rather than indexing out of bounds.
func TestQuantileEdgeCases(t *testing.T) {
	r := New(sim.New(1))

	var nilH *Histogram
	if got := nilH.Quantile(0.99); got != 0 {
		t.Errorf("nil histogram Quantile = %v, want 0", got)
	}
	empty := r.Histogram("test.empty")
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram Quantile = %v, want 0", got)
	}

	single := r.Histogram("test.single")
	single.Observe(7 * time.Millisecond)
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := single.Quantile(q); got != 7*time.Millisecond {
			t.Errorf("single-sample Quantile(%v) = %v, want 7ms", q, got)
		}
	}

	multi := r.Histogram("test.multi")
	for _, d := range []time.Duration{30 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond} {
		multi.Observe(d)
	}
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{
		{-0.5, 10 * time.Millisecond}, // clamps to the minimum
		{0, 10 * time.Millisecond},    // q=0 is the minimum, not an out-of-range rank
		{1, 30 * time.Millisecond},    // q=1 is the maximum
		{1.5, 30 * time.Millisecond},  // clamps to the maximum
	} {
		if got := multi.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

// MergedSnapshot on colliding keys: the same (name, labels) registered in
// several registries must merge into ONE row — counters and gauges sum,
// histograms pool their samples — while different labels under the same
// name stay separate rows.
func TestMergedSnapshotCollidingKeys(t *testing.T) {
	loopA, loopB := sim.New(1), sim.New(2)
	a, b := New(loopA), New(loopB)

	a.Counter("test.hits", L("host", "x")).Add(2)
	b.Counter("test.hits", L("host", "x")).Add(5)
	b.Counter("test.hits", L("host", "y")).Add(11) // different labels: no collision

	a.Gauge("test.depth").Set(3)
	b.Gauge("test.depth").Set(4)

	ha := a.Histogram("test.lat")
	hb := b.Histogram("test.lat")
	ha.Observe(10 * time.Millisecond)
	ha.Observe(20 * time.Millisecond)
	hb.Observe(30 * time.Millisecond)

	s := MergedSnapshot(loopA.Now(), a, b)

	if m := s.Get("test.hits", L("host", "x")); m == nil || m.Counter == nil || *m.Counter != 7 {
		t.Errorf("colliding counter not summed: %+v", m)
	}
	if m := s.Get("test.hits", L("host", "y")); m == nil || m.Counter == nil || *m.Counter != 11 {
		t.Errorf("distinct-label counter disturbed: %+v", m)
	}
	if m := s.Get("test.depth"); m == nil || m.Gauge == nil || *m.Gauge != 7 {
		t.Errorf("colliding gauge not summed: %+v", m)
	}
	m := s.Get("test.lat")
	if m == nil || m.Histogram == nil {
		t.Fatal("colliding histogram missing")
	}
	h := m.Histogram
	if h.Count != 3 || h.Min != int64(10*time.Millisecond) || h.Max != int64(30*time.Millisecond) {
		t.Errorf("colliding histogram not pooled: %+v", h)
	}
	if h.P50 != int64(20*time.Millisecond) {
		t.Errorf("pooled P50 = %v, want 20ms", time.Duration(h.P50))
	}

	// One row per key: rows are sorted and unique.
	seen := make(map[string]bool)
	for _, ms := range s.Metrics {
		key := ms.Name
		for _, l := range ms.Labels {
			key += "|" + l.Key + "=" + l.Value
		}
		if seen[key] {
			t.Errorf("duplicate merged row %q", key)
		}
		seen[key] = true
	}
}
