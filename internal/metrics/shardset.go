package metrics

import (
	"strconv"

	"mosquitonet/internal/sim"
)

// RegisterShardSet exposes each shard's barrier-level counters in that
// shard's registry, labeled shard=<index>:
//
//	sim.shard.epochs_skipped    — epochs the shard sat out entirely
//	sim.shard.barrier_waits     — epochs the shard ran and waited at the barrier
//	sim.shard.events_dispatched — events executed under ShardSet control
//
// The counters are read at snapshot time via one collector per shard, so
// a fleet pays one closure per shard rather than a roster of entries.
// They are deterministic observables: the skip/wait decisions depend only
// on event timestamps, never on worker scheduling, so merged snapshots
// stay byte-identical across worker counts (TestShardStatsDeterministic
// pins this at the sim layer).
//
// regs must parallel ss.Shards(); a nil registry in the slice is skipped.
func RegisterShardSet(ss *sim.ShardSet, regs []*Registry) {
	for k := range ss.Shards() {
		if k >= len(regs) {
			break
		}
		k := k
		regs[k].Collect(func(c *Collection) {
			st := ss.ShardStats(k)
			shard := L("shard", strconv.Itoa(k))
			c.Counter("sim.shard.epochs_skipped", st.EpochsSkipped, shard)
			c.Counter("sim.shard.barrier_waits", st.BarrierWaits, shard)
			c.Counter("sim.shard.events_dispatched", st.EventsDispatched, shard)
		})
	}
}
