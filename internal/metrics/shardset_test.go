package metrics

import (
	"bytes"
	"testing"
	"time"

	"mosquitonet/internal/sim"
)

// runShardWorld drives a 3-shard world (one busy pair exchanging
// cross-shard posts, one silent shard) with per-shard registries and
// returns the merged snapshot rendered to bytes, plus the set.
func runShardWorld(t *testing.T, workers int) ([]byte, *sim.ShardSet) {
	t.Helper()
	const lookahead = 2 * time.Millisecond
	loops := []*sim.Loop{sim.New(sim.ShardSeed(9, 0)), sim.New(sim.ShardSeed(9, 1)), sim.New(sim.ShardSeed(9, 2))}
	regs := []*Registry{New(loops[0]), New(loops[1]), New(loops[2])}
	ss := sim.NewShardSet(loops, lookahead)
	ss.SetWorkers(workers)
	ss.SetGroups([][]int{{0, 1}, {2}})
	RegisterShardSet(ss, regs)

	var chatter func(k int)
	chatter = func(k int) {
		ss.Post(0, 1, loops[0].Now().Add(lookahead), func() {})
		if k < 5 {
			loops[0].Schedule(700*time.Microsecond, func() { chatter(k + 1) })
		}
	}
	loops[0].Schedule(0, func() { chatter(0) })
	ss.RunFor(20 * time.Millisecond)

	var buf bytes.Buffer
	if err := MergedSnapshot(ss.Now(), regs...).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), ss
}

// TestShardMetricsMergeDeterministic pins the satellite contract: the
// sim.shard.* rows land in the merged snapshot with shard labels, the
// silent shard reports pure skips, and the rendered bytes are identical
// across worker counts.
func TestShardMetricsMergeDeterministic(t *testing.T) {
	base, ss := runShardWorld(t, 1)
	if st := ss.ShardStats(2); st.BarrierWaits != 0 || st.EpochsSkipped != ss.Epochs() {
		t.Fatalf("silent shard stats = %+v, epochs = %d", st, ss.Epochs())
	}
	for _, workers := range []int{2, 4} {
		got, _ := runShardWorld(t, workers)
		if !bytes.Equal(base, got) {
			t.Fatalf("merged snapshot differs between workers=1 and workers=%d", workers)
		}
	}
	check, _ := runShardWorld(t, 1)
	if !bytes.Equal(base, check) {
		t.Fatalf("identical runs rendered different snapshots")
	}
}

// TestRegisterShardSetRows checks each counter row directly.
func TestRegisterShardSetRows(t *testing.T) {
	const lookahead = time.Millisecond
	loops := []*sim.Loop{sim.New(1), sim.New(2)}
	regs := []*Registry{New(loops[0]), New(loops[1])}
	ss := sim.NewShardSet(loops, lookahead)
	RegisterShardSet(ss, regs)

	loops[0].Schedule(0, func() {})
	loops[0].Schedule(500*time.Microsecond, func() {})
	ss.RunFor(10 * time.Millisecond)

	s := MergedSnapshot(ss.Now(), regs...)
	for k, want := range []sim.ShardStats{ss.ShardStats(0), ss.ShardStats(1)} {
		shard := L("shard", []string{"0", "1"}[k])
		if m := s.Get("sim.shard.epochs_skipped", shard); m == nil || *m.Counter != want.EpochsSkipped {
			t.Errorf("shard %d epochs_skipped row = %+v, want %d", k, m, want.EpochsSkipped)
		}
		if m := s.Get("sim.shard.barrier_waits", shard); m == nil || *m.Counter != want.BarrierWaits {
			t.Errorf("shard %d barrier_waits row = %+v, want %d", k, m, want.BarrierWaits)
		}
		if m := s.Get("sim.shard.events_dispatched", shard); m == nil || *m.Counter != want.EventsDispatched {
			t.Errorf("shard %d events_dispatched row = %+v, want %d", k, m, want.EventsDispatched)
		}
	}
	// Shard 1 never had work: all skips, no waits, no dispatches.
	st := ss.ShardStats(1)
	if st.BarrierWaits != 0 || st.EventsDispatched != 0 || st.EpochsSkipped != ss.Epochs() {
		t.Errorf("silent shard stats = %+v, epochs = %d", st, ss.Epochs())
	}
}
