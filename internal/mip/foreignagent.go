package mip

import (
	"errors"
	"fmt"
	"time"

	"mosquitonet/internal/ip"
	"mosquitonet/internal/sim"
	"mosquitonet/internal/stack"
	"mosquitonet/internal/trace"
	"mosquitonet/internal/transport"
	"mosquitonet/internal/tunnel"
)

// This file implements the optional foreign-agent extension the paper's
// Section 5.1 leaves open ("there is nothing that prevents us from
// implementing or using foreign agents"). It exists so the trade-off the
// paper discusses — an FA can forward straggler packets after the mobile
// host moves on, reducing handoff loss, at the cost of foreign-network
// support — can be measured rather than argued (experiment A2).
//
// In FA mode the mobile host acquires no address at all on the visited
// network: the FA's address is the care-of address, the FA relays
// registrations to the home agent, decapsulates tunneled packets, and
// delivers them on-link (the mobile host answers ARP for its home address
// on the visited link). When the mobile host departs, it can send the FA a
// previous-foreign-agent notification; the FA then re-tunnels stragglers
// to the new care-of address instead of dropping them.

// ForeignAgentConfig configures a foreign agent.
type ForeignAgentConfig struct {
	// Iface is the agent's interface on the visited network.
	Iface *stack.Iface
	// AdvertInterval is the period of agent advertisements (default 1s).
	AdvertInterval time.Duration
	// MaxLifetime clamps visitor registrations it will relay (default 5m).
	MaxLifetime time.Duration
	// ProcessingDelay models per-message relay cost.
	ProcessingDelay time.Duration
	// Tracer, if set, records relay events.
	Tracer *trace.Tracer
}

// ForeignAgentStats counts agent activity.
type ForeignAgentStats struct {
	AdvertsSent     uint64
	RequestsRelayed uint64
	RepliesRelayed  uint64
	VisitorsActive  int
	Forwarded       uint64 // straggler packets re-tunneled after departure
	DropMalformed   uint64 // control datagrams that failed to parse
	DropNotOurs     uint64 // registration requests not addressed through this agent
	DropUnmatched   uint64 // replies and notifications with no matching state
}

type visitorEntry struct {
	home      ip.Addr
	expires   sim.Time
	timer     sim.Timer
	forwardTo ip.Addr // non-zero once a PFA notification arrived
	fwdTimer  sim.Timer

	// buffering holds tunneled packets for a visitor that has announced
	// its departure but not yet registered elsewhere; they are flushed to
	// the new care-of address when it arrives.
	buffering bool
	queue     []*ip.Packet
}

// visitorQueueLimit bounds the departure buffer per visitor.
const visitorQueueLimit = 64

// ForeignAgent is the visited-network agent.
type ForeignAgent struct {
	host *stack.Host
	ts   *transport.Stack
	cfg  ForeignAgentConfig
	tun  *tunnel.Endpoint
	sock *transport.UDPSocket

	visitors map[ip.Addr]*visitorEntry // keyed by home address
	pending  map[uint64]ip.Addr        // relayed request ID -> home address
	seq      uint16
	stats    ForeignAgentStats
}

// NewForeignAgent starts a foreign agent on ts, binding UDP port 434,
// installing its decapsulating tunnel endpoint, enabling forwarding, and
// beginning periodic advertisements.
func NewForeignAgent(ts *transport.Stack, cfg ForeignAgentConfig) (*ForeignAgent, error) {
	if cfg.AdvertInterval == 0 {
		cfg.AdvertInterval = time.Second
	}
	if cfg.MaxLifetime == 0 {
		cfg.MaxLifetime = 5 * time.Minute
	}
	fa := &ForeignAgent{
		host:     ts.Host(),
		ts:       ts,
		cfg:      cfg,
		visitors: make(map[ip.Addr]*visitorEntry),
		pending:  make(map[uint64]ip.Addr),
	}
	fa.tun = tunnel.New(fa.host, "vif0",
		func() (ip.Addr, bool) { return cfg.Iface.Addr(), true },
		fa.tunnelDst)
	sock, err := ts.UDP(ip.Unspecified, Port, fa.input)
	if err != nil {
		return nil, fmt.Errorf("mip: foreign agent binding port %d: %w", Port, err)
	}
	fa.sock = sock
	fa.host.SetForwarding(true)
	fa.advertise()
	return fa, nil
}

// Addr returns the agent's address — its visitors' care-of address.
func (fa *ForeignAgent) Addr() ip.Addr { return fa.cfg.Iface.Addr() }

// Stats returns a snapshot of the counters.
func (fa *ForeignAgent) Stats() ForeignAgentStats {
	s := fa.stats
	s.VisitorsActive = len(fa.visitors)
	return s
}

// Tunnel returns the agent's tunnel endpoint (for its statistics).
func (fa *ForeignAgent) Tunnel() *tunnel.Endpoint { return fa.tun }

// HasVisitor reports whether a home address is in the visitor list.
func (fa *ForeignAgent) HasVisitor(home ip.Addr) bool {
	_, ok := fa.visitors[home]
	return ok
}

// advertise broadcasts an agent advertisement and reschedules itself.
func (fa *ForeignAgent) advertise() {
	fa.seq++
	a := &AgentAdvert{Agent: fa.Addr(), Lifetime: uint16(fa.cfg.MaxLifetime / time.Second), Seq: fa.seq}
	fa.sock.SendToVia(fa.cfg.Iface, ip.Broadcast, ip.Broadcast, Port, a.Marshal())
	fa.stats.AdvertsSent++
	fa.host.Loop().Schedule(fa.cfg.AdvertInterval, fa.advertise)
}

// tunnelDst resolves re-tunneling for departed visitors: packets for a
// home address with a forwarding binding are encapsulated to the new
// care-of address; packets for a visitor that announced departure but has
// no new binding yet are buffered.
func (fa *ForeignAgent) tunnelDst(inner *ip.Packet) (ip.Addr, bool) {
	v, ok := fa.visitors[inner.Dst]
	if !ok {
		//lint:allow dropaccounting the tunnel VIF accounts drop_no_dst when the resolver declines
		return ip.Addr{}, false
	}
	if !v.forwardTo.IsUnspecified() {
		fa.stats.Forwarded++
		return v.forwardTo, true
	}
	if v.buffering && len(v.queue) < visitorQueueLimit {
		v.queue = append(v.queue, inner.Clone())
	}
	// Conservation holds without a counter here: the packet was either
	// buffered above or the tunnel VIF accounts drop_no_dst on this path.
	return ip.Addr{}, false
}

func (fa *ForeignAgent) input(d transport.Datagram) {
	typ, err := MessageType(d.Payload)
	if err != nil {
		fa.stats.DropMalformed++
		return
	}
	handle := func() {
		switch typ {
		case TypeRegRequest:
			fa.relayRequest(d)
		case TypeRegReply:
			fa.relayReply(d)
		case TypePFANotify:
			fa.handlePFANotify(d)
		}
	}
	if fa.cfg.ProcessingDelay > 0 {
		fa.host.Loop().Schedule(fa.host.Loop().Jitter(fa.cfg.ProcessingDelay, fa.cfg.ProcessingDelay/12), handle)
	} else {
		handle()
	}
}

// relayRequest forwards a visitor's registration request to its home
// agent, clamping the lifetime to what this agent will serve.
func (fa *ForeignAgent) relayRequest(d transport.Datagram) {
	req, err := UnmarshalRegRequest(d.Payload)
	if err != nil {
		fa.stats.DropMalformed++
		return
	}
	if req.CareOf != fa.Addr() && !req.IsDeregistration() {
		fa.stats.DropNotOurs++
		return
	}
	if max := uint16(fa.cfg.MaxLifetime / time.Second); req.Lifetime > max {
		req.Lifetime = max
	}
	fa.pending[req.ID] = req.HomeAddr
	fa.stats.RequestsRelayed++
	fa.cfg.Tracer.Record(fa.host.Name(), kFARelayRequest, "home=%v id=%d", req.HomeAddr, req.ID)
	fa.sock.SendTo(req.HomeAgent, Port, req.Marshal())
}

// relayReply forwards the home agent's reply to the visitor and, on
// success, installs the visitor entry and its on-link delivery route.
func (fa *ForeignAgent) relayReply(d transport.Datagram) {
	reply, err := UnmarshalRegReply(d.Payload)
	if err != nil {
		fa.stats.DropMalformed++
		return
	}
	home, ok := fa.pending[reply.ID]
	if !ok {
		fa.stats.DropUnmatched++
		return
	}
	delete(fa.pending, reply.ID)
	if reply.Accepted() && reply.Lifetime > 0 {
		fa.installVisitor(home, time.Duration(reply.Lifetime)*time.Second)
	}
	if reply.Accepted() && reply.Lifetime == 0 {
		fa.removeVisitor(home)
	}
	fa.stats.RepliesRelayed++
	fa.cfg.Tracer.Record(fa.host.Name(), kFARelayReply, "home=%v %s", home, CodeString(reply.Code))
	fa.sock.SendTo(home, Port, reply.Marshal())
}

func (fa *ForeignAgent) installVisitor(home ip.Addr, life time.Duration) {
	if v, ok := fa.visitors[home]; ok {
		v.timer.Stop()
		v.fwdTimer.Stop()
	}
	v := &visitorEntry{home: home, expires: fa.host.Loop().Now().Add(life)}
	v.timer = fa.host.Loop().Schedule(life, func() {
		if cur, ok := fa.visitors[home]; ok && cur == v {
			fa.removeVisitor(home)
		}
	})
	fa.visitors[home] = v
	// Deliver decapsulated packets on-link: the visitor answers ARP for
	// its home address on this network. Any stale forwarding route from a
	// previous visit is replaced.
	fa.host.Routes().Delete(ip.Prefix{Addr: home, Bits: 32})
	fa.host.Routes().Add(stack.Route{Dst: ip.Prefix{Addr: home, Bits: 32}, Iface: fa.cfg.Iface})
}

func (fa *ForeignAgent) removeVisitor(home ip.Addr) {
	v, ok := fa.visitors[home]
	if !ok {
		return
	}
	v.timer.Stop()
	v.fwdTimer.Stop()
	delete(fa.visitors, home)
	fa.host.Routes().Delete(ip.Prefix{Addr: home, Bits: 32})
}

// handlePFANotify handles a departing or departed visitor. With an
// unspecified new care-of address the visitor is announcing departure:
// the agent starts buffering its packets. With a new care-of address the
// agent forwards — flushing anything buffered first — so stragglers
// tunneled here by a home agent that had not yet processed the new
// registration reach the mobile host instead of being lost.
func (fa *ForeignAgent) handlePFANotify(d transport.Datagram) {
	n, err := UnmarshalPFANotify(d.Payload)
	if err != nil {
		fa.stats.DropMalformed++
		return
	}
	v, ok := fa.visitors[n.HomeAddr]
	if !ok {
		fa.stats.DropUnmatched++
		return
	}
	// Steer the home address into the re-encapsulating VIF instead of
	// on-link delivery; tunnelDst buffers or forwards from there.
	fa.host.Routes().Delete(ip.Prefix{Addr: n.HomeAddr, Bits: 32})
	fa.host.Routes().Add(stack.Route{Dst: ip.Prefix{Addr: n.HomeAddr, Bits: 32}, Iface: fa.tun.Iface()})
	life := time.Duration(n.Lifetime) * time.Second
	v.fwdTimer.Stop()
	v.fwdTimer = fa.host.Loop().Schedule(life, func() {
		if cur, ok := fa.visitors[n.HomeAddr]; ok && cur == v {
			fa.removeVisitor(n.HomeAddr)
		}
	})
	if n.NewCareOf.IsUnspecified() {
		v.buffering = true
		fa.cfg.Tracer.Record(fa.host.Name(), kFABuffering, "home=%v", n.HomeAddr)
		return
	}
	v.forwardTo = n.NewCareOf
	v.buffering = false
	fa.cfg.Tracer.Record(fa.host.Name(), kFAForwarding, "home=%v to=%v buffered=%d", n.HomeAddr, n.NewCareOf, len(v.queue))
	queued := v.queue
	v.queue = nil
	for _, pkt := range queued {
		fa.host.Input(fa.tun.Iface(), pkt)
	}
}

// --- Mobile-host support for foreign agents -----------------------------

// ConnectViaForeignAgent brings mi up on a network served by a foreign
// agent at faAddr: the mobile host takes no local address, answers ARP for
// its home address on the visited link, uses the agent as its default
// router, and registers with the agent's address as care-of.
func (m *MobileHost) ConnectViaForeignAgent(mi *ManagedIface, faAddr ip.Addr, done func(error)) {
	m.trace(kFAStart, "iface=%s fa=%v", mi.Name(), faAddr)
	mi.ifc.Device().BringUp(func() {
		m.host.Loop().Schedule(m.jit(m.cfg.ConfigureDelay), func() {
			if arp := mi.ifc.ARP(); arp != nil {
				arp.Publish(m.cfg.HomeAddr)
			}
			mi.addr = ip.Addr{}
			mi.gateway = faAddr
			m.host.Loop().Schedule(m.jit(m.cfg.RouteChangeDelay), func() {
				m.host.Routes().Add(stack.Route{Dst: ip.Prefix{Addr: faAddr, Bits: 32}, Iface: mi.ifc, Metric: 10})
				m.host.Routes().Delete(ip.Prefix{})
				m.host.Routes().Add(stack.Route{Dst: ip.Prefix{}, Gateway: faAddr, Iface: mi.ifc})
				mi.ready = true
				m.active = mi
				m.atHome = false
				m.careOf = ip.Addr{}
				m.faAddr = faAddr
				m.host.InvalidateRoutes()
				m.notifyLink(mi)
				m.registerViaFA(faAddr, done)
			})
		})
	})
}

// registerViaFA registers with the foreign agent's address as care-of,
// sending the request to the agent for relay.
func (m *MobileHost) registerViaFA(faAddr ip.Addr, done func(error)) {
	m.cancelPending()
	m.rebindRegSock(m.cfg.HomeAddr)
	m.regID++
	req := &RegRequest{
		Lifetime:  uint16(m.cfg.Lifetime / time.Second),
		HomeAddr:  m.cfg.HomeAddr,
		HomeAgent: m.cfg.HomeAgent,
		CareOf:    faAddr,
		ID:        m.regID,
	}
	m.pending = &regAttempt{req: req, dst: faAddr, done: done, span: m.startSpan(kSpanRegAttempt)}
	m.pending.span.SetAttr("careof", faAddr.String())
	m.pending.span.SetAttr("via", "fa")
	m.sendPending()
}

// DiscoveredAgent reports a foreign agent heard advertising on a link.
type DiscoveredAgent struct {
	Agent    ip.Addr
	Lifetime time.Duration
	Seq      uint16
}

// DiscoverForeignAgent listens on mi for an agent advertisement — the
// extension's substitute for being told an agent address out of band. The
// device is brought up if necessary; cb receives the first advertisement
// heard, or ok=false at the timeout. The mobile host needs no address to
// listen: advertisements are link broadcasts.
func (m *MobileHost) DiscoverForeignAgent(mi *ManagedIface, timeout time.Duration, cb func(DiscoveredAgent, bool)) {
	mi.ifc.Device().BringUp(func() {
		var sock *transport.UDPSocket
		var timer sim.Timer
		finish := func(a DiscoveredAgent, ok bool) {
			if sock != nil {
				sock.Close()
				sock = nil
			}
			timer.Stop()
			if cb != nil {
				cb(a, ok)
			}
		}
		s, err := m.ts.UDP(ip.Unspecified, Port, func(d transport.Datagram) {
			typ, err := MessageType(d.Payload)
			if err != nil || typ != TypeAgentAdvert {
				//lint:allow dropaccounting other control traffic on the discovery socket is not for this listener
				return
			}
			adv, err := UnmarshalAgentAdvert(d.Payload)
			if err != nil {
				m.stats.DropMalformed++
				return
			}
			m.trace(kFADiscovered, "agent=%v seq=%d", adv.Agent, adv.Seq)
			finish(DiscoveredAgent{
				Agent:    adv.Agent,
				Lifetime: time.Duration(adv.Lifetime) * time.Second,
				Seq:      adv.Seq,
			}, true)
		})
		if err != nil {
			// Port 434 busy (an active registration socket with wildcard
			// binding); report failure rather than wedging.
			if cb != nil {
				cb(DiscoveredAgent{}, false)
			}
			return
		}
		sock = s
		timer = m.host.Loop().Schedule(timeout, func() { finish(DiscoveredAgent{}, false) })
	})
}

// ConnectViaDiscoveredAgent brings mi up, listens for an agent
// advertisement, and registers through whichever agent answers first. It
// fails with ErrNoAgentFound if none advertises within timeout.
func (m *MobileHost) ConnectViaDiscoveredAgent(mi *ManagedIface, timeout time.Duration, done func(error)) {
	m.DiscoverForeignAgent(mi, timeout, func(a DiscoveredAgent, ok bool) {
		if !ok {
			if done != nil {
				done(ErrNoAgentFound)
			}
			return
		}
		m.ConnectViaForeignAgent(mi, a.Agent, done)
	})
}

// ErrNoAgentFound is returned when agent discovery times out.
var ErrNoAgentFound = errors.New("mip: no foreign agent advertisement heard")

// NotifyPreviousFA asks the foreign agent the host just left to forward
// stragglers to its new care-of address for the given lifetime. It is
// called after a successful registration on the new network.
func (m *MobileHost) NotifyPreviousFA(fa ip.Addr, newCareOf ip.Addr, lifetime time.Duration) {
	n := &PFANotify{HomeAddr: m.cfg.HomeAddr, NewCareOf: newCareOf, Lifetime: uint16(lifetime / time.Second)}
	m.trace(kPFANotify, "fa=%v newCareOf=%v", fa, newCareOf)
	if m.regSock != nil {
		m.regSock.SendTo(fa, Port, n.Marshal())
	}
}

// AnnounceDeparture tells the current foreign agent the host is about to
// leave, so it buffers tunneled packets until NotifyPreviousFA supplies
// the new care-of address. This is the "sufficient warning" case the
// paper discusses for smooth switches. Call it before tearing the old
// interface down.
func (m *MobileHost) AnnounceDeparture(fa ip.Addr, lifetime time.Duration) {
	n := &PFANotify{HomeAddr: m.cfg.HomeAddr, Lifetime: uint16(lifetime / time.Second)}
	m.trace(kPFADeparting, "fa=%v", fa)
	if m.regSock != nil {
		m.regSock.SendTo(fa, Port, n.Marshal())
	}
}
