package mip

import (
	"bytes"
	"testing"

	"mosquitonet/internal/ip"
)

// The four registration-protocol parsers must never panic on arbitrary
// bytes, and every accepted message must survive Marshal∘Unmarshal with
// identical wire bytes.

func FuzzUnmarshalRegRequest(f *testing.F) {
	req := &RegRequest{
		Flags:     FlagSimultaneous,
		Lifetime:  300,
		HomeAddr:  ip.Addr{10, 0, 1, 40},
		HomeAgent: ip.Addr{10, 0, 1, 1},
		CareOf:    ip.Addr{10, 0, 2, 1},
		ID:        99,
	}
	f.Add(req.Marshal())
	f.Add((&RegRequest{}).Marshal())
	f.Add([]byte{TypeRegRequest, 0})
	f.Fuzz(func(t *testing.T, b []byte) {
		r, err := UnmarshalRegRequest(b)
		if err != nil {
			return
		}
		b1 := r.Marshal()
		r2, err := UnmarshalRegRequest(b1)
		if err != nil {
			t.Fatalf("re-marshaled request failed to parse: %v", err)
		}
		if *r2 != *r || !bytes.Equal(r2.Marshal(), b1) {
			t.Fatalf("round trip changed request: %+v -> %+v", r, r2)
		}
	})
}

func FuzzUnmarshalRegReply(f *testing.F) {
	rep := &RegReply{
		Code:      CodeAccepted,
		Lifetime:  300,
		HomeAddr:  ip.Addr{10, 0, 1, 40},
		HomeAgent: ip.Addr{10, 0, 1, 1},
		ID:        99,
	}
	f.Add(rep.Marshal())
	f.Add([]byte{TypeRegReply})
	f.Fuzz(func(t *testing.T, b []byte) {
		r, err := UnmarshalRegReply(b)
		if err != nil {
			return
		}
		b1 := r.Marshal()
		r2, err := UnmarshalRegReply(b1)
		if err != nil {
			t.Fatalf("re-marshaled reply failed to parse: %v", err)
		}
		if *r2 != *r || !bytes.Equal(r2.Marshal(), b1) {
			t.Fatalf("round trip changed reply: %+v -> %+v", r, r2)
		}
	})
}

func FuzzUnmarshalAgentAdvert(f *testing.F) {
	adv := &AgentAdvert{Agent: ip.Addr{10, 0, 2, 1}, Lifetime: 600, Seq: 17}
	f.Add(adv.Marshal())
	f.Add([]byte{TypeAgentAdvert, 1, 2})
	f.Fuzz(func(t *testing.T, b []byte) {
		a, err := UnmarshalAgentAdvert(b)
		if err != nil {
			return
		}
		b1 := a.Marshal()
		a2, err := UnmarshalAgentAdvert(b1)
		if err != nil {
			t.Fatalf("re-marshaled advertisement failed to parse: %v", err)
		}
		if *a2 != *a || !bytes.Equal(a2.Marshal(), b1) {
			t.Fatalf("round trip changed advertisement: %+v -> %+v", a, a2)
		}
	})
}

func FuzzUnmarshalPFANotify(f *testing.F) {
	n := &PFANotify{HomeAddr: ip.Addr{10, 0, 1, 40}, NewCareOf: ip.Addr{10, 0, 3, 1}, Lifetime: 30}
	f.Add(n.Marshal())
	f.Add([]byte{TypePFANotify, 9})
	f.Fuzz(func(t *testing.T, b []byte) {
		p, err := UnmarshalPFANotify(b)
		if err != nil {
			return
		}
		b1 := p.Marshal()
		p2, err := UnmarshalPFANotify(b1)
		if err != nil {
			t.Fatalf("re-marshaled notification failed to parse: %v", err)
		}
		if *p2 != *p || !bytes.Equal(p2.Marshal(), b1) {
			t.Fatalf("round trip changed notification: %+v -> %+v", p, p2)
		}
	})
}
