package mip

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"mosquitonet/internal/ip"
	"mosquitonet/internal/metrics"
	"mosquitonet/internal/sim"
	"mosquitonet/internal/stack"
	"mosquitonet/internal/trace"
	"mosquitonet/internal/transport"
	"mosquitonet/internal/tunnel"
)

// HomeAgentConfig configures a home agent.
type HomeAgentConfig struct {
	// HomeIface is the agent's interface on the home subnet; proxy ARP and
	// gratuitous ARPs for absent mobile hosts go out here.
	HomeIface *stack.Iface
	// HomePrefix is the home subnet; registrations for addresses outside
	// it are denied.
	HomePrefix ip.Prefix
	// ProcessingDelay models the agent's per-request software cost; the
	// paper measures 1.48 ms on its Pentium 90.
	ProcessingDelay time.Duration
	// MaxLifetime clamps granted registration lifetimes (default 5m).
	MaxLifetime time.Duration
	// Authorize, if set, may deny a request by returning a non-zero reply
	// code. The paper implements no authentication; this is the hook a
	// deployment would attach S/Key-style verification to.
	Authorize func(*RegRequest) uint8
	// Tracer, if set, records registration processing events.
	Tracer *trace.Tracer
}

// HomeAgentStats counts agent activity.
type HomeAgentStats struct {
	Requests        uint64
	Accepted        uint64
	Denied          uint64
	Deregistrations uint64
	Expired         uint64
	Duplicated      uint64 // packet copies emitted for simultaneous bindings
	DropMalformed   uint64 // control datagrams that failed to parse
	DropWhileDown   uint64 // control datagrams dropped while crashed
	Crashes         uint64 // injected crash/restart cycles
}

// Binding is one mobility binding: a mobile host's current location.
// Extras holds additional care-of addresses registered with the
// simultaneous-bindings flag; the agent duplicates tunneled packets to
// every address in the set.
type Binding struct {
	HomeAddr ip.Addr
	CareOf   ip.Addr
	Extras   []ip.Addr
	Expires  sim.Time
	ID       uint64 // identification of the registration that installed it
}

type haBinding struct {
	Binding
	timer sim.Timer
}

// HomeAgent implements the home-network half of the protocol: it answers
// registration requests, intercepts packets for registered-away mobile
// hosts by proxy ARP, tunnels them to care-of addresses through its
// VIF/IPIP module, and decapsulates reverse-tunneled packets for
// forwarding to correspondents.
type HomeAgent struct {
	host *stack.Host
	ts   *transport.Stack
	cfg  HomeAgentConfig
	tun  *tunnel.Endpoint
	sock *transport.UDPSocket

	bindings map[ip.Addr]*haBinding
	// bindGen counts binding-set mutations; Bindings() memoizes its
	// sorted snapshot against it so unchanged sets don't re-sort or
	// re-allocate on every call.
	bindGen     uint64
	bindSnap    []Binding
	bindSnapGen uint64
	// lastID tracks the highest identification accepted per home address.
	// Requests with stale identifications are rejected — the replay
	// protection RFC 2002's identification field exists for. (The paper
	// defers full authentication; this is the protocol-level half.)
	lastID map[ip.Addr]uint64
	stats  HomeAgentStats

	// down marks a crashed agent: registration traffic is dropped (and
	// counted) until Restart. A crash loses the soft mobility state — the
	// binding table — exactly like the daemon dying on the real router; it
	// keeps lastID, as replay protection persists across restarts.
	down bool
}

// ErrNotOnHomeSubnet is returned when the configured interface has no
// address inside the home prefix.
var ErrNotOnHomeSubnet = errors.New("mip: home agent interface not on home subnet")

// NewHomeAgent starts a home agent on ts. It binds UDP port 434, installs
// the VIF/IPIP module, and enables IP forwarding (required to relay
// decapsulated reverse-tunnel traffic onward).
func NewHomeAgent(ts *transport.Stack, cfg HomeAgentConfig) (*HomeAgent, error) {
	if cfg.HomeIface == nil || !cfg.HomePrefix.Contains(cfg.HomeIface.Addr()) {
		return nil, ErrNotOnHomeSubnet
	}
	if cfg.MaxLifetime == 0 {
		cfg.MaxLifetime = 5 * time.Minute
	}
	ha := &HomeAgent{
		host:     ts.Host(),
		ts:       ts,
		cfg:      cfg,
		bindings: make(map[ip.Addr]*haBinding),
		lastID:   make(map[ip.Addr]uint64),
	}
	ha.tun = tunnel.New(ha.host, "vif0",
		func() (ip.Addr, bool) { return cfg.HomeIface.Addr(), true },
		ha.tunnelDst)
	sock, err := ts.UDP(ip.Unspecified, Port, ha.input)
	if err != nil {
		return nil, fmt.Errorf("mip: home agent binding port %d: %w", Port, err)
	}
	ha.sock = sock
	ha.host.SetForwarding(true)
	metrics.For(ha.host.Loop()).Collect(func(c *metrics.Collection) {
		host := metrics.L("host", ha.host.Name())
		c.Counter("mip.ha.requests", ha.stats.Requests, host)
		c.Counter("mip.ha.accepted", ha.stats.Accepted, host)
		c.Counter("mip.ha.denied", ha.stats.Denied, host)
		c.Counter("mip.ha.deregistrations", ha.stats.Deregistrations, host)
		c.Counter("mip.ha.expired", ha.stats.Expired, host)
		c.Counter("mip.ha.duplicated", ha.stats.Duplicated, host)
		c.Gauge("mip.ha.bindings", int64(len(ha.bindings)), host)
	})
	return ha, nil
}

// Addr returns the agent's address on the home subnet.
func (ha *HomeAgent) Addr() ip.Addr { return ha.cfg.HomeIface.Addr() }

// Host returns the agent's IP stack, exposed for pipeline introspection
// (cmd/mnet -chains) and tests.
func (ha *HomeAgent) Host() *stack.Host { return ha.host }

// Stats returns a snapshot of the counters.
func (ha *HomeAgent) Stats() HomeAgentStats { return ha.stats }

// Tunnel returns the agent's tunnel endpoint (for its statistics).
func (ha *HomeAgent) Tunnel() *tunnel.Endpoint { return ha.tun }

// Binding returns the current binding for a home address.
func (ha *HomeAgent) Binding(home ip.Addr) (Binding, bool) {
	b, ok := ha.bindings[home]
	if !ok {
		return Binding{}, false
	}
	return b.Binding, true
}

// BindingsGen returns the binding set's mutation generation.
func (ha *HomeAgent) BindingsGen() uint64 { return ha.bindGen }

// Bindings returns all active bindings, ordered by home address so the
// result is stable across runs regardless of map iteration order. The
// snapshot is memoized on the binding generation: while the set is
// unchanged, repeated calls return the same slice without allocating or
// sorting. Callers must treat the result as read-only; mutations build a
// fresh slice, leaving earlier snapshots intact.
func (ha *HomeAgent) Bindings() []Binding {
	if ha.bindSnap == nil || ha.bindSnapGen != ha.bindGen {
		out := make([]Binding, 0, len(ha.bindings))
		for _, b := range ha.bindings {
			out = append(out, b.Binding)
		}
		sort.Slice(out, func(i, j int) bool { return out[i].HomeAddr.Less(out[j].HomeAddr) })
		ha.bindSnap = out
		ha.bindSnapGen = ha.bindGen
	}
	return ha.bindSnap
}

// tunnelDst is the VIF's destination callback: the care-of address bound
// to the inner packet's destination. With simultaneous bindings, copies
// are emitted to every extra care-of address as a side effect and the
// primary is returned for the normal path.
func (ha *HomeAgent) tunnelDst(inner *ip.Packet) (ip.Addr, bool) {
	b, ok := ha.bindings[inner.Dst]
	if !ok {
		//lint:allow dropaccounting the tunnel VIF accounts drop_no_dst when the resolver declines
		return ip.Addr{}, false
	}
	for _, extra := range b.Extras {
		outer, err := ip.Encapsulate(ha.Addr(), extra, ip.DefaultTTL, ha.host.NextID(), inner)
		if err == nil {
			ha.stats.Duplicated++
			ha.host.Output(outer)
		}
	}
	return b.CareOf, true
}

// Crash simulates the agent daemon dying: every binding is torn down (in
// home-address order, so the teardown is deterministic) and registration
// requests are dropped until Restart. Proxy ARP entries and tunnel routes
// go with the bindings, so traffic for away mobile hosts blacks out until
// they re-register with the restarted agent.
func (ha *HomeAgent) Crash() {
	if ha.down {
		return
	}
	ha.down = true
	ha.stats.Crashes++
	for _, b := range ha.Bindings() {
		ha.remove(b.HomeAddr)
	}
}

// Restart brings a crashed agent back with an empty binding table. Mobile
// hosts recover on their next registration (typically the renewal at 3/4
// lifetime).
func (ha *HomeAgent) Restart() { ha.down = false }

// Down reports whether the agent is crashed.
func (ha *HomeAgent) Down() bool { return ha.down }

// ProcessingDelay returns the agent's per-request software cost.
func (ha *HomeAgent) ProcessingDelay() time.Duration { return ha.cfg.ProcessingDelay }

// SetProcessingDelay changes the per-request software cost at runtime —
// the fault-injection seam for an overloaded agent. Returns the previous
// delay so the injector can restore it.
func (ha *HomeAgent) SetProcessingDelay(d time.Duration) (prev time.Duration) {
	prev = ha.cfg.ProcessingDelay
	ha.cfg.ProcessingDelay = d
	return prev
}

func (ha *HomeAgent) input(d transport.Datagram) {
	if ha.down {
		ha.stats.DropWhileDown++
		return
	}
	typ, err := MessageType(d.Payload)
	if err != nil || typ != TypeRegRequest {
		ha.stats.DropMalformed++
		return
	}
	req, err := UnmarshalRegRequest(d.Payload)
	if err != nil {
		ha.stats.DropMalformed++
		return
	}
	ha.stats.Requests++
	ha.cfg.Tracer.Record(ha.host.Name(), kRegRequestReceived, "home=%v careof=%v lifetime=%ds id=%d",
		req.HomeAddr, req.CareOf, req.Lifetime, req.ID)
	ha.process(req, d)
}

// process validates the request and updates the binding table immediately
// — packets start flowing to the new care-of address as soon as the
// request is accepted — while the reply goes out after the agent's
// processing delay, the 1.48 ms the paper measures between receiving a
// request and sending its reply.
func (ha *HomeAgent) process(req *RegRequest, d transport.Datagram) {
	// An explicit root: overlapping requests (a fleet re-registering) must
	// not nest under one another in the agent's ambient span context.
	sp := ha.cfg.Tracer.StartChild(nil, ha.host.Name(), kSpanRegServe)
	sp.Attrf("home", "%v", req.HomeAddr)
	sp.Attrf("id", "%d", req.ID)
	code := uint8(CodeAccepted)
	granted := req.Lifetime
	switch {
	case !ha.cfg.HomePrefix.Contains(req.HomeAddr):
		code = CodeDeniedBadHomeAddr
	case req.HomeAgent != ha.Addr():
		code = CodeDeniedBadRequest
	case !req.IsDeregistration() && req.CareOf.IsUnspecified():
		code = CodeDeniedBadRequest
	case req.ID <= ha.lastID[req.HomeAddr]:
		code = CodeDeniedBadID // stale or replayed identification
	}
	if code == CodeAccepted && ha.cfg.Authorize != nil {
		code = ha.cfg.Authorize(req)
	}
	if code == CodeAccepted {
		ha.lastID[req.HomeAddr] = req.ID
		if max := uint16(ha.cfg.MaxLifetime / time.Second); granted > max {
			granted = max
		}
		if req.IsDeregistration() || req.CareOf == req.HomeAddr {
			ha.deregister(req.HomeAddr)
			granted = 0
		} else {
			ha.register(req, granted)
		}
	} else {
		ha.stats.Denied++
	}
	sendReply := func() {
		reply := &RegReply{Code: code, Lifetime: granted, HomeAddr: req.HomeAddr, HomeAgent: ha.Addr(), ID: req.ID}
		ha.cfg.Tracer.Record(ha.host.Name(), kRegReplySent, "%s lifetime=%ds id=%d", CodeString(code), granted, req.ID)
		sp.SetAttr("code", CodeString(code))
		sp.Done()
		ha.sock.SendTo(d.From, d.FromPort, reply.Marshal())
	}
	if ha.cfg.ProcessingDelay > 0 {
		ha.host.Loop().Schedule(ha.host.Loop().Jitter(ha.cfg.ProcessingDelay, ha.cfg.ProcessingDelay/12), sendReply)
	} else {
		sendReply()
	}
}

// register installs or refreshes a mobility binding: the proxy ARP
// publication, the gratuitous ARP voiding stale neighbor entries, the
// host route steering the home address into the encapsulating VIF, and
// the lifetime timer.
func (ha *HomeAgent) register(req *RegRequest, granted uint16) {
	life := time.Duration(granted) * time.Second
	old, existed := ha.bindings[req.HomeAddr]
	if existed {
		old.timer.Stop()
	}
	b := &haBinding{Binding: Binding{
		HomeAddr: req.HomeAddr,
		CareOf:   req.CareOf,
		Expires:  ha.host.Loop().Now().Add(life),
		ID:       req.ID,
	}}
	if existed && req.Simultaneous() {
		// Retain the prior binding set alongside the new care-of address.
		for _, a := range append([]ip.Addr{old.CareOf}, old.Extras...) {
			if a != req.CareOf {
				b.Extras = append(b.Extras, a)
			}
		}
	}
	b.timer = ha.host.Loop().Schedule(life, func() {
		if cur, ok := ha.bindings[req.HomeAddr]; ok && cur == b {
			ha.stats.Expired++
			ha.cfg.Tracer.Record(ha.host.Name(), kBindingExpired, "home=%v", req.HomeAddr)
			ha.remove(req.HomeAddr)
		}
	})
	ha.bindings[req.HomeAddr] = b
	ha.bindGen++
	ha.stats.Accepted++
	if !existed {
		arp := ha.cfg.HomeIface.ARP()
		if arp != nil {
			arp.Publish(req.HomeAddr)
			arp.Gratuitous(req.HomeAddr, ha.cfg.HomeIface.Device().HW())
		}
		ha.host.Routes().Add(stack.Route{
			Dst:   ip.Prefix{Addr: req.HomeAddr, Bits: 32},
			Iface: ha.tun.Iface(),
		})
	}
	ha.cfg.Tracer.Record(ha.host.Name(), kBindingInstalled, "home=%v careof=%v", req.HomeAddr, req.CareOf)
}

// deregister handles an explicit deregistration; removing an absent
// binding succeeds (the reply is still "accepted", per the protocol).
func (ha *HomeAgent) deregister(home ip.Addr) {
	ha.stats.Deregistrations++
	ha.remove(home)
}

// remove tears down a binding's proxy state.
func (ha *HomeAgent) remove(home ip.Addr) {
	b, ok := ha.bindings[home]
	if !ok {
		return
	}
	b.timer.Stop()
	delete(ha.bindings, home)
	ha.bindGen++
	if arp := ha.cfg.HomeIface.ARP(); arp != nil {
		arp.Unpublish(home)
	}
	ha.host.Routes().Delete(ip.Prefix{Addr: home, Bits: 32})
	ha.cfg.Tracer.Record(ha.host.Name(), kBindingRemoved, "home=%v", home)
}
