package mip

// Trace kinds recorded by the mobility layer. All kinds are lowercase
// dotted constants (enforced tree-wide by the tracekinds analyzer);
// experiment harnesses select them by prefix ("reg.", "handoff."), so the
// hierarchy is part of the contract.
//
// Flat events (Tracer.Record) mark instants for the Figure 7 timeline;
// span kinds (Tracer.StartSpan) bound the same operations as intervals for
// the disruption observatory. An operation's span kind is the shared
// prefix of its start/done event kinds (e.g. span "handoff.cold" brackets
// events "handoff.cold.start" and "handoff.cold.done").
const (
	// Mobile-host lifecycle events.
	kHomeAttachStart  = "home.attach.start"
	kHomeAttachDone   = "home.attach.done"
	kBringupStart     = "handoff.bringup.start"
	kBringupDone      = "handoff.bringup.done"
	kConfigureDone    = "handoff.configure.done"
	kRouteStaged      = "handoff.route.staged"
	kRouteSwitched    = "handoff.route.switched"
	kDHCPStart        = "handoff.dhcp.start"
	kDHCPDone         = "handoff.dhcp.done"
	kAddrSwitchStart  = "addrswitch.start"
	kAddrSwitchConfig = "addrswitch.configure.done"
	kAddrSwitchRoute  = "addrswitch.route.done"
	kColdStart        = "handoff.cold.start"
	kColdDone         = "handoff.cold.done"
	kHotStart         = "handoff.hot.start"
	kHotDone          = "handoff.hot.done"
	kIfaceDown        = "iface.down"

	// Registration events (both ends).
	kRegTimeout         = "reg.timeout"
	kRegRequestSent     = "reg.request.sent"
	kRegDeregSent       = "reg.dereg.sent"
	kRegReplyReceived   = "reg.reply.received"
	kRegRenew           = "reg.renew"
	kRegRequestReceived = "reg.request.received"
	kRegReplySent       = "reg.reply.sent"
	kBindingExpired     = "binding.expired"
	kBindingInstalled   = "binding.installed"
	kBindingRemoved     = "binding.removed"

	// Policy probing.
	kProbeStart = "policy.probe.start"
	kProbeDone  = "policy.probe.done"

	// Foreign-agent extension.
	kFAStart        = "handoff.fa.start"
	kFADiscovered   = "fa.discovered"
	kFARelayRequest = "fa.relay.request"
	kFARelayReply   = "fa.relay.reply"
	kFABuffering    = "fa.buffering"
	kFAForwarding   = "fa.forwarding"
	kPFANotify      = "pfa.notify"
	kPFADeparting   = "pfa.departing"

	// Roaming daemon.
	kRoamerProbeFailed   = "roamer.probe.failed"
	kRoamerFailover      = "roamer.failover"
	kRoamerUpgradeFailed = "roamer.upgrade.failed"
	kRoamerUpgrade       = "roamer.upgrade"
)

// Span kinds. Roots ("handoff.cold", "handoff.hot", "handoff.addrswitch",
// "handoff.home", "handoff.connect") bound whole handoffs — the windows
// the disruption analyzer correlates flow probes against; the rest are
// their phase children.
const (
	kSpanHandoffCold = "handoff.cold"
	kSpanHandoffHot  = "handoff.hot"
	kSpanHomeAttach  = "handoff.home"
	kSpanConnect     = "handoff.connect"
	kSpanAddrSwitch  = "handoff.addrswitch"
	kSpanBringup     = "handoff.bringup"
	kSpanDHCP        = "handoff.dhcp"
	kSpanConfigure   = "handoff.configure"
	kSpanRoute       = "handoff.route"
	kSpanRegAttempt  = "reg.attempt"
	kSpanRegServe    = "reg.serve"
	kSpanTunnelUp    = "tunnel.established"
)
