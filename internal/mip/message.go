// Package mip implements the MosquitoNet mobile-IP protocol — the paper's
// primary contribution.
//
// The three entities are the MobileHost, the HomeAgent, and (unmodified)
// correspondent hosts. Only the first two carry mobility code. A mobile
// host away from home acquires a temporary care-of address (by DHCP or
// static assignment), registers it with its home agent over UDP, and then:
//
//   - receives: the home agent intercepts packets for the home address by
//     proxy ARP, encapsulates them (IP-in-IP) and tunnels them to the
//     care-of address, where the mobile host's own VIF/IPIP module — its
//     collocated, simplified foreign agent — decapsulates them;
//   - sends: each outgoing packet without a bound source is classified by
//     the Mobile Policy Table: reverse-tunneled through the home agent
//     (the basic protocol), sent directly with the home address as source
//     (the triangle-route optimization), encapsulated directly to a smart
//     correspondent, or sent bare in the mobile host's local role.
//
// The registration messages follow the IETF draft's (RFC 2002) layout.
// There is no authentication, matching the paper ("We do not yet implement
// any special security measures in our system").
package mip

import (
	"encoding/binary"
	"errors"
	"fmt"

	"mosquitonet/internal/ip"
)

// Port is the registration protocol's UDP port (RFC 2002).
const Port = 434

// Message types.
const (
	TypeRegRequest  = 1
	TypeRegReply    = 3
	TypeAgentAdvert = 16 // foreign-agent extension
	TypePFANotify   = 17 // previous-foreign-agent notification extension
)

// Reply codes (RFC 2002 flavored).
const (
	CodeAccepted           = 0
	CodeDeniedUnspecified  = 64
	CodeDeniedProhibited   = 65
	CodeDeniedNoResources  = 66
	CodeDeniedBadHomeAddr  = 67
	CodeDeniedLifetimeLong = 69
	CodeDeniedBadRequest   = 70
	// CodeDeniedBadID rejects stale or replayed identifications (RFC 2002
	// uses 133 for identification mismatch).
	CodeDeniedBadID = 133
)

// CodeString names a reply code for traces.
func CodeString(c uint8) string {
	switch c {
	case CodeAccepted:
		return "accepted"
	case CodeDeniedUnspecified:
		return "denied"
	case CodeDeniedProhibited:
		return "denied-prohibited"
	case CodeDeniedNoResources:
		return "denied-no-resources"
	case CodeDeniedBadHomeAddr:
		return "denied-bad-home-address"
	case CodeDeniedLifetimeLong:
		return "denied-lifetime-too-long"
	case CodeDeniedBadRequest:
		return "denied-bad-request"
	case CodeDeniedBadID:
		return "denied-identification-mismatch"
	default:
		return fmt.Sprintf("code(%d)", c)
	}
}

// Request flags.
const (
	// FlagSimultaneous ('S') asks the home agent to add this care-of
	// address alongside existing bindings instead of replacing them;
	// packets are then duplicated to every binding — the smooth-handoff
	// technique for overlapping coverage.
	FlagSimultaneous = 1 << 0
)

// RegRequest is a registration request: "my home address HomeAddr, served
// by HomeAgent, is currently reachable at CareOf for Lifetime". A zero
// Lifetime is a deregistration (the mobile host has returned home).
type RegRequest struct {
	Flags     uint8
	Lifetime  uint16 // seconds; 0 = deregister
	HomeAddr  ip.Addr
	HomeAgent ip.Addr
	CareOf    ip.Addr
	ID        uint64 // matches replies to requests; monotonic per mobile host
}

// Simultaneous reports whether the S flag is set.
func (r *RegRequest) Simultaneous() bool { return r.Flags&FlagSimultaneous != 0 }

// RegRequestLen is the request wire length.
const RegRequestLen = 24

// Marshal serializes the request.
func (r *RegRequest) Marshal() []byte {
	b := make([]byte, RegRequestLen)
	b[0] = TypeRegRequest
	b[1] = r.Flags
	binary.BigEndian.PutUint16(b[2:], r.Lifetime)
	copy(b[4:8], r.HomeAddr[:])
	copy(b[8:12], r.HomeAgent[:])
	copy(b[12:16], r.CareOf[:])
	binary.BigEndian.PutUint64(b[16:], r.ID)
	return b
}

// IsDeregistration reports whether the request clears the binding.
func (r *RegRequest) IsDeregistration() bool { return r.Lifetime == 0 }

// RegReply is the home agent's answer.
type RegReply struct {
	Code      uint8
	Lifetime  uint16 // granted lifetime (may be shorter than requested)
	HomeAddr  ip.Addr
	HomeAgent ip.Addr
	ID        uint64 // echoed from the request
}

// RegReplyLen is the reply wire length.
const RegReplyLen = 20

// Marshal serializes the reply.
func (r *RegReply) Marshal() []byte {
	b := make([]byte, RegReplyLen)
	b[0] = TypeRegReply
	b[1] = r.Code
	binary.BigEndian.PutUint16(b[2:], r.Lifetime)
	copy(b[4:8], r.HomeAddr[:])
	copy(b[8:12], r.HomeAgent[:])
	binary.BigEndian.PutUint64(b[12:], r.ID)
	return b
}

// Accepted reports whether the registration was granted.
func (r *RegReply) Accepted() bool { return r.Code == CodeAccepted }

// AgentAdvert is a foreign agent's periodic advertisement (extension).
type AgentAdvert struct {
	Agent    ip.Addr // the foreign agent's address, usable as care-of
	Lifetime uint16  // maximum registration lifetime it relays
	Seq      uint16
}

// AgentAdvertLen is the advertisement wire length.
const AgentAdvertLen = 12

// Marshal serializes the advertisement.
func (a *AgentAdvert) Marshal() []byte {
	b := make([]byte, AgentAdvertLen)
	b[0] = TypeAgentAdvert
	binary.BigEndian.PutUint16(b[2:], a.Lifetime)
	copy(b[4:8], a.Agent[:])
	binary.BigEndian.PutUint16(b[8:], a.Seq)
	return b
}

// PFANotify tells a previous foreign agent where the mobile host went, so
// it can forward straggler packets instead of dropping them (the paper's
// Section 5.1 packet-loss discussion).
type PFANotify struct {
	HomeAddr  ip.Addr
	NewCareOf ip.Addr
	Lifetime  uint16 // seconds to keep forwarding
}

// PFANotifyLen is the notification wire length.
const PFANotifyLen = 12

// Marshal serializes the notification.
func (p *PFANotify) Marshal() []byte {
	b := make([]byte, PFANotifyLen)
	b[0] = TypePFANotify
	binary.BigEndian.PutUint16(b[2:], p.Lifetime)
	copy(b[4:8], p.HomeAddr[:])
	copy(b[8:12], p.NewCareOf[:])
	return b
}

// Parse errors.
var (
	ErrShortMessage = errors.New("mip: truncated message")
	ErrBadType      = errors.New("mip: unexpected message type")
)

// MessageType peeks at a registration-protocol message's type byte.
func MessageType(b []byte) (uint8, error) {
	if len(b) < 1 {
		return 0, ErrShortMessage
	}
	return b[0], nil
}

// UnmarshalRegRequest parses a registration request.
func UnmarshalRegRequest(b []byte) (*RegRequest, error) {
	if len(b) >= 1 && b[0] != TypeRegRequest {
		return nil, ErrBadType
	}
	if len(b) < RegRequestLen {
		return nil, ErrShortMessage
	}
	r := &RegRequest{
		Flags:    b[1],
		Lifetime: binary.BigEndian.Uint16(b[2:]),
		ID:       binary.BigEndian.Uint64(b[16:]),
	}
	copy(r.HomeAddr[:], b[4:8])
	copy(r.HomeAgent[:], b[8:12])
	copy(r.CareOf[:], b[12:16])
	return r, nil
}

// UnmarshalRegReply parses a registration reply.
func UnmarshalRegReply(b []byte) (*RegReply, error) {
	if len(b) >= 1 && b[0] != TypeRegReply {
		return nil, ErrBadType
	}
	if len(b) < RegReplyLen {
		return nil, ErrShortMessage
	}
	r := &RegReply{
		Code:     b[1],
		Lifetime: binary.BigEndian.Uint16(b[2:]),
		ID:       binary.BigEndian.Uint64(b[12:]),
	}
	copy(r.HomeAddr[:], b[4:8])
	copy(r.HomeAgent[:], b[8:12])
	return r, nil
}

// UnmarshalAgentAdvert parses an agent advertisement.
func UnmarshalAgentAdvert(b []byte) (*AgentAdvert, error) {
	if len(b) >= 1 && b[0] != TypeAgentAdvert {
		return nil, ErrBadType
	}
	if len(b) < AgentAdvertLen {
		return nil, ErrShortMessage
	}
	a := &AgentAdvert{
		Lifetime: binary.BigEndian.Uint16(b[2:]),
		Seq:      binary.BigEndian.Uint16(b[8:]),
	}
	copy(a.Agent[:], b[4:8])
	return a, nil
}

// UnmarshalPFANotify parses a previous-foreign-agent notification.
func UnmarshalPFANotify(b []byte) (*PFANotify, error) {
	if len(b) >= 1 && b[0] != TypePFANotify {
		return nil, ErrBadType
	}
	if len(b) < PFANotifyLen {
		return nil, ErrShortMessage
	}
	p := &PFANotify{Lifetime: binary.BigEndian.Uint16(b[2:])}
	copy(p.HomeAddr[:], b[4:8])
	copy(p.NewCareOf[:], b[8:12])
	return p, nil
}
