package mip

import (
	"testing"
	"testing/quick"

	"mosquitonet/internal/ip"
)

func TestRegRequestRoundTrip(t *testing.T) {
	f := func(lifetime uint16, home, agent, careof [4]byte, id uint64) bool {
		r := &RegRequest{Lifetime: lifetime, HomeAddr: home, HomeAgent: agent, CareOf: careof, ID: id}
		got, err := UnmarshalRegRequest(r.Marshal())
		return err == nil && *got == *r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRegReplyRoundTrip(t *testing.T) {
	f := func(code uint8, lifetime uint16, home, agent [4]byte, id uint64) bool {
		r := &RegReply{Code: code, Lifetime: lifetime, HomeAddr: home, HomeAgent: agent, ID: id}
		got, err := UnmarshalRegReply(r.Marshal())
		return err == nil && *got == *r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAgentAdvertRoundTrip(t *testing.T) {
	a := &AgentAdvert{Agent: ip.MustParseAddr("10.2.0.2"), Lifetime: 300, Seq: 17}
	got, err := UnmarshalAgentAdvert(a.Marshal())
	if err != nil || *got != *a {
		t.Fatalf("round trip: %+v %v", got, err)
	}
}

func TestPFANotifyRoundTrip(t *testing.T) {
	p := &PFANotify{HomeAddr: ip.MustParseAddr("10.1.0.7"), NewCareOf: ip.MustParseAddr("10.3.0.100"), Lifetime: 30}
	got, err := UnmarshalPFANotify(p.Marshal())
	if err != nil || *got != *p {
		t.Fatalf("round trip: %+v %v", got, err)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := UnmarshalRegRequest(nil); err != ErrShortMessage {
		t.Errorf("request short: %v", err)
	}
	if _, err := UnmarshalRegReply(append([]byte{TypeRegReply}, 0, 0, 0)); err != ErrShortMessage {
		t.Errorf("reply short: %v", err)
	}
	if _, err := UnmarshalAgentAdvert(append([]byte{TypeAgentAdvert}, 0, 0)); err != ErrShortMessage {
		t.Errorf("advert short: %v", err)
	}
	if _, err := UnmarshalPFANotify(append([]byte{TypePFANotify}, 0, 0)); err != ErrShortMessage {
		t.Errorf("pfa short: %v", err)
	}
	req := (&RegRequest{}).Marshal()
	if _, err := UnmarshalRegReply(req); err != ErrBadType {
		t.Errorf("type confusion: %v", err)
	}
	if _, err := UnmarshalRegRequest((&RegReply{}).Marshal()); err != ErrBadType {
		t.Errorf("type confusion: %v", err)
	}
	if _, err := MessageType(nil); err != ErrShortMessage {
		t.Errorf("MessageType: %v", err)
	}
	if typ, _ := MessageType(req); typ != TypeRegRequest {
		t.Errorf("MessageType = %d", typ)
	}
}

func TestRequestSemantics(t *testing.T) {
	r := &RegRequest{Lifetime: 0}
	if !r.IsDeregistration() {
		t.Fatal("zero lifetime must be deregistration")
	}
	r.Lifetime = 60
	if r.IsDeregistration() {
		t.Fatal("nonzero lifetime is not deregistration")
	}
	ok := &RegReply{Code: CodeAccepted}
	if !ok.Accepted() {
		t.Fatal("code 0 must be accepted")
	}
	no := &RegReply{Code: CodeDeniedUnspecified}
	if no.Accepted() {
		t.Fatal("code 64 must be denied")
	}
}

func TestCodeString(t *testing.T) {
	for code, want := range map[uint8]string{
		CodeAccepted: "accepted", CodeDeniedUnspecified: "denied",
		CodeDeniedBadHomeAddr: "denied-bad-home-address", 99: "code(99)",
	} {
		if CodeString(code) != want {
			t.Errorf("CodeString(%d) = %q", code, CodeString(code))
		}
	}
}
