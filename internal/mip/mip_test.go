package mip

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"mosquitonet/internal/ip"
	"mosquitonet/internal/link"
	"mosquitonet/internal/stack"
	"mosquitonet/internal/transport"
)

func TestRegistrationLifecycle(t *testing.T) {
	w := newWorld(t, 1)
	w.goForeign()

	// The binding is installed with the DHCP-acquired care-of address.
	b, ok := w.ha.Binding(ip.MustParseAddr(wHomeAddr))
	if !ok {
		t.Fatal("no binding after registration")
	}
	if !ip.MustParsePrefix("10.2.0.0/24").Contains(b.CareOf) {
		t.Fatalf("care-of %v not on foreignA", b.CareOf)
	}
	if w.mh.CareOf() != b.CareOf {
		t.Fatalf("MH care-of %v vs binding %v", w.mh.CareOf(), b.CareOf)
	}
	if w.mh.AtHome() {
		t.Fatal("MH thinks it is at home")
	}

	// Returning home deregisters and clears the binding.
	w.goHome()
	if _, ok := w.ha.Binding(ip.MustParseAddr(wHomeAddr)); ok {
		t.Fatal("binding survived deregistration")
	}
	if !w.mh.AtHome() || w.mh.Registered() {
		t.Fatal("MH state wrong after returning home")
	}
	st := w.ha.Stats()
	if st.Accepted == 0 || st.Deregistrations != 1 {
		t.Fatalf("HA stats: %+v", st)
	}
}

func TestTrafficAtHomeIsDirect(t *testing.T) {
	w := newWorld(t, 1)
	done := false
	w.mh.ConnectHome(w.eth0, ip.MustParseAddr("10.1.0.1"), func(err error) {
		if err != nil {
			t.Fatal(err)
		}
		done = true
	})
	w.run(5 * time.Second)
	if !done {
		t.Fatal("ConnectHome never completed")
	}

	served, lastFrom := w.udpEchoServer(7)
	var echoed int
	cli, _ := w.mhTS.UDP(ip.Unspecified, 0, func(transport.Datagram) { echoed++ })
	cli.SendTo(ip.MustParseAddr(wCHAddr), 7, []byte("hi"))
	w.run(5 * time.Second)
	if *served != 1 || echoed != 1 {
		t.Fatalf("served=%d echoed=%d", *served, echoed)
	}
	if *lastFrom != ip.MustParseAddr(wHomeAddr) {
		t.Fatalf("CH saw source %v", *lastFrom)
	}
	if w.ha.Tunnel().Stats().Encapsulated != 0 {
		t.Fatal("home traffic went through the home agent tunnel")
	}
}

func TestBidirectionalTunnelTraffic(t *testing.T) {
	w := newWorld(t, 1)
	w.goForeign()

	served, lastFrom := w.udpEchoServer(7)
	var echoed int
	cli, _ := w.mhTS.UDP(ip.Unspecified, 0, func(transport.Datagram) { echoed++ })
	for i := 0; i < 5; i++ {
		cli.SendTo(ip.MustParseAddr(wCHAddr), 7, []byte("ping"))
		w.run(time.Second)
	}
	if *served != 5 || echoed != 5 {
		t.Fatalf("served=%d echoed=%d", *served, echoed)
	}
	// The correspondent host must only ever see the home address.
	if *lastFrom != ip.MustParseAddr(wHomeAddr) {
		t.Fatalf("CH saw source %v, want the home address", *lastFrom)
	}
	// Both directions traversed the tunnel.
	if w.mh.Tunnel().Stats().Encapsulated < 5 {
		t.Fatalf("MH encapsulated %d", w.mh.Tunnel().Stats().Encapsulated)
	}
	if w.mh.Tunnel().Stats().Decapsulated < 5 {
		t.Fatalf("MH decapsulated %d", w.mh.Tunnel().Stats().Decapsulated)
	}
	if w.ha.Tunnel().Stats().Encapsulated < 5 || w.ha.Tunnel().Stats().Decapsulated < 5 {
		t.Fatalf("HA tunnel stats: %+v", w.ha.Tunnel().Stats())
	}
}

// TestCorrespondentInitiatedTraffic: a CH that starts the conversation
// reaches the mobile host through proxy ARP interception and the tunnel.
func TestCorrespondentInitiatedTraffic(t *testing.T) {
	w := newWorld(t, 1)
	w.goForeign()

	var got []byte
	w.mhTS.UDP(ip.Unspecified, 2000, func(d transport.Datagram) { got = d.Payload })
	chSock, _ := w.ch.UDP(ip.Unspecified, 0, nil)
	chSock.SendTo(ip.MustParseAddr(wHomeAddr), 2000, []byte("find the mobile host"))
	w.run(5 * time.Second)
	if string(got) != "find the mobile host" {
		t.Fatalf("MH got %q", got)
	}
}

// TestStreamSurvivesMove is the paper's headline property: an established
// connection continues across a network switch without application help.
func TestStreamSurvivesMove(t *testing.T) {
	w := newWorld(t, 1)
	w.goForeign()

	var rcvdAtCH bytes.Buffer
	var srvConn *transport.Conn
	w.ch.Listen(ip.Unspecified, 5001, func(c *transport.Conn) {
		srvConn = c
		c.OnData = func(b []byte) { rcvdAtCH.Write(b) }
	})
	conn, err := w.mhTS.Connect(ip.Unspecified, ip.MustParseAddr(wCHAddr), 5001)
	if err != nil {
		t.Fatal(err)
	}
	w.run(5 * time.Second)
	if !conn.Established() {
		t.Fatal("stream not established")
	}
	la, _ := conn.LocalAddr()
	if la != ip.MustParseAddr(wHomeAddr) {
		t.Fatalf("stream bound to %v, want the home address", la)
	}

	conn.Write([]byte("before the move|"))
	w.run(5 * time.Second)

	// Move: eth1 hops from foreignA to foreignB (cold switch).
	w.eth1.Iface().Device().Detach()
	w.eth1.Iface().Device().Attach(w.forB)
	var regErr error
	moved := false
	w.mh.ColdSwitch(w.eth1, func(err error) { regErr, moved = err, true })
	w.run(15 * time.Second)
	if !moved || regErr != nil {
		t.Fatalf("move failed: %v", regErr)
	}
	if !ip.MustParsePrefix("10.3.0.0/24").Contains(w.mh.CareOf()) {
		t.Fatalf("care-of %v not on foreignB", w.mh.CareOf())
	}

	conn.Write([]byte("after the move"))
	w.run(15 * time.Second)
	if got := rcvdAtCH.String(); got != "before the move|after the move" {
		t.Fatalf("stream corrupted across move: %q", got)
	}
	// And the reverse direction still flows.
	var rcvdAtMH bytes.Buffer
	conn.OnData = func(b []byte) { rcvdAtMH.Write(b) }
	srvConn.Write([]byte("welcome to foreignB"))
	w.run(15 * time.Second)
	if rcvdAtMH.String() != "welcome to foreignB" {
		t.Fatalf("reverse direction broken: %q", rcvdAtMH.String())
	}
}

func TestTriangleRouteOptimization(t *testing.T) {
	w := newWorld(t, 1)
	w.goForeign()
	w.mh.Policy().SetHost(ip.MustParseAddr(wCHAddr), PolicyTriangle)

	served, lastFrom := w.udpEchoServer(7)
	var echoed int
	cli, _ := w.mhTS.UDP(ip.Unspecified, 0, func(transport.Datagram) { echoed++ })
	cli.SendTo(ip.MustParseAddr(wCHAddr), 7, []byte("direct"))
	w.run(5 * time.Second)

	if *served != 1 || echoed != 1 {
		t.Fatalf("served=%d echoed=%d", *served, echoed)
	}
	if *lastFrom != ip.MustParseAddr(wHomeAddr) {
		t.Fatalf("triangle packet source %v", *lastFrom)
	}
	// Outbound bypassed the tunnel; inbound still used it.
	if enc := w.mh.Tunnel().Stats().Encapsulated; enc != 0 {
		t.Fatalf("triangle route encapsulated %d packets", enc)
	}
	if dec := w.mh.Tunnel().Stats().Decapsulated; dec != 1 {
		t.Fatalf("reply did not come through the tunnel (dec=%d)", dec)
	}
}

func TestTransitFilterBreaksTriangleAndProbeFallsBack(t *testing.T) {
	w := newWorld(t, 1)
	// Ingress filter on the router: drop packets from foreignA whose
	// source is not local to it — the paper's transit-traffic rule.
	forAPrefix := ip.MustParsePrefix("10.2.0.0/24")
	w.router.AddFilter(func(in, out *stack.Iface, pkt *ip.Packet) stack.Verdict {
		if in.Prefix() == forAPrefix && !forAPrefix.Contains(pkt.Src) {
			return stack.Drop
		}
		return stack.Accept
	})
	w.goForeign()
	w.mh.Policy().SetHost(ip.MustParseAddr(wCHAddr), PolicyTriangle)

	served, _ := w.udpEchoServer(7)
	cli, _ := w.mhTS.UDP(ip.Unspecified, 0, nil)
	cli.SendTo(ip.MustParseAddr(wCHAddr), 7, []byte("blocked"))
	w.run(5 * time.Second)
	if *served != 0 {
		t.Fatal("transit filter did not block the triangle route")
	}

	// Probe: detects the failure and reverts the policy to tunneling.
	var probeOK *bool
	w.mh.ProbeTriangle(ip.MustParseAddr(wCHAddr), 2*time.Second, func(ok bool) { probeOK = &ok })
	w.run(10 * time.Second)
	if probeOK == nil || *probeOK {
		t.Fatalf("probe should have failed (got %v)", probeOK)
	}
	if w.mh.Policy().Lookup(ip.MustParseAddr(wCHAddr)) != PolicyTunnel {
		t.Fatal("policy not reverted to tunnel")
	}
	cli.SendTo(ip.MustParseAddr(wCHAddr), 7, []byte("tunneled"))
	w.run(5 * time.Second)
	if *served != 1 {
		t.Fatal("tunnel fallback did not deliver")
	}
}

func TestProbeTriangleSucceedsWithoutFilter(t *testing.T) {
	w := newWorld(t, 1)
	w.goForeign()
	var probeOK *bool
	w.mh.ProbeTriangle(ip.MustParseAddr(wCHAddr), 2*time.Second, func(ok bool) { probeOK = &ok })
	w.run(10 * time.Second)
	if probeOK == nil || !*probeOK {
		t.Fatal("probe should succeed on an unfiltered path")
	}
	if w.mh.Policy().Lookup(ip.MustParseAddr(wCHAddr)) != PolicyTriangle {
		t.Fatal("successful probe did not cache the triangle policy")
	}
}

func TestEncapDirectToSmartCorrespondent(t *testing.T) {
	w := newWorld(t, 1)
	smart := MakeSmartCorrespondent(w.ch.Host())
	w.goForeign()
	w.mh.Policy().SetHost(ip.MustParseAddr(wCHAddr), PolicyEncapDirect)

	served, lastFrom := w.udpEchoServer(7)
	cli, _ := w.mhTS.UDP(ip.Unspecified, 0, nil)
	cli.SendTo(ip.MustParseAddr(wCHAddr), 7, []byte("encapsulated direct"))
	w.run(5 * time.Second)

	if *served != 1 {
		t.Fatal("smart CH did not receive the packet")
	}
	if *lastFrom != ip.MustParseAddr(wHomeAddr) {
		t.Fatalf("inner source %v", *lastFrom)
	}
	if smart.Stats().Decapsulated != 1 {
		t.Fatalf("smart CH decapsulated %d", smart.Stats().Decapsulated)
	}
	// The home agent's tunnel carried only the reply (CH->home->tunnel).
	if w.ha.Tunnel().Stats().Decapsulated != 0 {
		t.Fatal("outbound packet went through the home agent")
	}
}

// TestEncapDirectSurvivesTransitFilter: the variant optimization the paper
// describes for filtered networks — outer source is the local care-of, so
// the filter passes it.
func TestEncapDirectSurvivesTransitFilter(t *testing.T) {
	w := newWorld(t, 1)
	MakeSmartCorrespondent(w.ch.Host())
	forAPrefix := ip.MustParsePrefix("10.2.0.0/24")
	w.router.AddFilter(func(in, out *stack.Iface, pkt *ip.Packet) stack.Verdict {
		if in.Prefix() == forAPrefix && !forAPrefix.Contains(pkt.Src) {
			return stack.Drop
		}
		return stack.Accept
	})
	w.goForeign()
	w.mh.Policy().SetHost(ip.MustParseAddr(wCHAddr), PolicyEncapDirect)

	served, _ := w.udpEchoServer(7)
	cli, _ := w.mhTS.UDP(ip.Unspecified, 0, nil)
	cli.SendTo(ip.MustParseAddr(wCHAddr), 7, []byte("through the filter"))
	w.run(5 * time.Second)
	if *served != 1 {
		t.Fatal("encap-direct packet blocked by transit filter")
	}
}

func TestLocalRoleWhileAway(t *testing.T) {
	w := newWorld(t, 1)
	w.goForeign()
	careOf := w.mh.CareOf()

	// A host on the foreign network pings the care-of address.
	probe, _ := mkHost(w.loop, w.forA, "netmgmt", "10.2.0.3/24", "10.2.0.1")
	var res stack.PingResult
	done := false
	probe.Host().ICMP().Ping(careOf, ip.Unspecified, 8, 2*time.Second, func(r stack.PingResult) {
		res, done = r, true
	})
	w.run(5 * time.Second)
	if !done || res.TimedOut {
		t.Fatal("MH did not answer a foreign-network management ping")
	}
	if res.From != careOf {
		t.Fatalf("ping answered from %v, want the care-of address", res.From)
	}

	// A socket bound to the care-of address is outside mobile IP: its
	// traffic goes direct with the care-of source.
	var fromSeen ip.Addr
	probeSock, _ := probe.UDP(ip.Unspecified, 9999, func(d transport.Datagram) { fromSeen = d.From })
	_ = probeSock
	local, err := w.mhTS.UDP(careOf, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	local.SendTo(ip.MustParseAddr("10.2.0.3"), 9999, []byte("local role"))
	w.run(2 * time.Second)
	if fromSeen != careOf {
		t.Fatalf("local-role source %v, want %v", fromSeen, careOf)
	}
	if w.mh.Tunnel().Stats().Encapsulated != 0 {
		t.Fatal("local-role packet was tunneled")
	}
}

func TestMultipleMobileHosts(t *testing.T) {
	w := newWorld(t, 1)
	// Three more mobile hosts, all home on 10.1.0.0/24, visiting foreignA.
	var mhs []*MobileHost
	for i := 0; i < 3; i++ {
		h := stack.NewHost(w.loop, "mh2", stack.Config{})
		ts := transport.NewStack(h)
		home := ip.Addr{10, 1, 0, byte(20 + i)}
		m := NewMobileHost(ts, MobileHostConfig{
			HomeAddr:   home,
			HomePrefix: ip.MustParsePrefix("10.1.0.0/24"),
			HomeAgent:  ip.MustParseAddr(wHAAddr),
			Lifetime:   time.Minute,
		})
		dev := link.NewDevice(w.loop, "mh2-eth0", 0, 0)
		dev.Attach(w.forA)
		mi, err := m.AddInterface("eth0", dev, false, nil)
		if err != nil {
			t.Fatal(err)
		}
		m.ConnectForeign(mi, nil)
		mhs = append(mhs, m)
	}
	w.run(20 * time.Second)
	for i, m := range mhs {
		if !m.Registered() {
			t.Fatalf("mobile host %d not registered", i)
		}
	}
	if got := len(w.ha.Bindings()); got != 3 {
		t.Fatalf("HA has %d bindings, want 3", got)
	}
	// Care-of addresses must be distinct (DHCP) and each host reachable.
	seen := map[ip.Addr]bool{}
	for _, b := range w.ha.Bindings() {
		if seen[b.CareOf] {
			t.Fatalf("care-of %v assigned twice", b.CareOf)
		}
		seen[b.CareOf] = true
	}
}

func TestBindingExpiryWithoutRenewal(t *testing.T) {
	w := newWorld(t, 1)
	w.goForeign()
	home := ip.MustParseAddr(wHomeAddr)
	if _, ok := w.ha.Binding(home); !ok {
		t.Fatal("no binding")
	}
	// Kill the mobile host's connectivity so renewals stop.
	w.mh.Disconnect(w.eth1)
	w.run(3 * time.Minute) // lifetime 60s
	if _, ok := w.ha.Binding(home); ok {
		t.Fatal("binding never expired")
	}
	if w.ha.Stats().Expired == 0 {
		t.Fatal("expiry not counted")
	}
	if w.ha.Tunnel().Iface().ARP() != nil {
		t.Fatal("unexpected arp on vif")
	}
}

func TestRenewalKeepsBindingAlive(t *testing.T) {
	w := newWorld(t, 1)
	w.goForeign()
	w.run(5 * time.Minute) // several lifetimes
	if _, ok := w.ha.Binding(ip.MustParseAddr(wHomeAddr)); !ok {
		t.Fatal("binding lost despite renewals")
	}
	if w.mh.Stats().Renewals < 3 {
		t.Fatalf("renewals = %d", w.mh.Stats().Renewals)
	}
}

func TestRegistrationDenied(t *testing.T) {
	w := newWorld(t, 1)
	w.ha.cfg.Authorize = func(*RegRequest) uint8 { return CodeDeniedProhibited }
	var regErr error
	done := false
	w.mh.ConnectForeign(w.eth1, func(err error) { regErr, done = err, true })
	w.run(10 * time.Second)
	if !done || !errors.Is(regErr, ErrRegistrationDenied) {
		t.Fatalf("err = %v", regErr)
	}
	if w.mh.Registered() {
		t.Fatal("MH believes it is registered after denial")
	}
	if w.ha.Stats().Denied == 0 {
		t.Fatal("denial not counted")
	}
}

func TestRegistrationTimeoutWhenHAUnreachable(t *testing.T) {
	w := newWorld(t, 1)
	// Take the home agent off the network entirely.
	for _, ifc := range w.ha.host.Ifaces() {
		if ifc.Device() != nil {
			ifc.Device().BringDown()
		}
	}
	var regErr error
	done := false
	w.mh.ConnectForeign(w.eth1, func(err error) { regErr, done = err, true })
	w.run(time.Minute)
	if !done || !errors.Is(regErr, ErrRegistrationTimeout) {
		t.Fatalf("err = %v done=%v", regErr, done)
	}
	if w.mh.Stats().RegTimeouts != 1 {
		t.Fatal("timeout not counted")
	}
}

func TestRegistrationRetryRecovers(t *testing.T) {
	w := newWorld(t, 1)
	// The home agent drops off the net briefly; the first request is lost
	// but a retransmission lands.
	dev := w.ha.cfg.HomeIface.Device()
	dev.BringDown()
	w.loop.Schedule(2500*time.Millisecond, func() { dev.BringUp(nil) })
	var regErr error
	done := false
	w.mh.ConnectForeign(w.eth1, func(err error) { regErr, done = err, true })
	w.run(time.Minute)
	if !done || regErr != nil {
		t.Fatalf("registration did not recover: %v", regErr)
	}
}

func TestHotSwitchNoLoss(t *testing.T) {
	w := newWorld(t, 1)
	w.goForeign()

	// Continuous stream from the CH to the MH.
	received := 0
	w.mhTS.UDP(ip.Unspecified, 3000, func(transport.Datagram) { received++ })
	chSock, _ := w.ch.UDP(ip.Unspecified, 0, nil)
	stop := false
	var tick func()
	tick = func() {
		if stop {
			return
		}
		chSock.SendTo(ip.MustParseAddr(wHomeAddr), 3000, []byte("x"))
		w.loop.Schedule(50*time.Millisecond, tick)
	}
	w.loop.Schedule(0, tick)
	w.run(time.Second)

	// Prepare a second interface on foreignB, then hot switch.
	eth2dev := link.NewDevice(w.loop, "mh-eth2", 0, 0)
	eth2dev.Attach(w.forB)
	eth2, err := w.mh.AddInterface("eth2", eth2dev, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	eth2dev.BringUp(nil)
	prepared := false
	w.mh.Prepare(eth2, func(err error) {
		if err != nil {
			t.Fatal(err)
		}
		prepared = true
	})
	w.run(5 * time.Second)
	if !prepared {
		t.Fatal("Prepare never finished")
	}
	switched := false
	w.mh.HotSwitch(eth2, func(err error) {
		if err != nil {
			t.Fatal(err)
		}
		switched = true
	})
	w.run(5 * time.Second)
	if !switched {
		t.Fatal("HotSwitch never finished")
	}
	if !ip.MustParsePrefix("10.3.0.0/24").Contains(w.mh.CareOf()) {
		t.Fatalf("care-of after hot switch: %v", w.mh.CareOf())
	}
	w.run(time.Second)
	stop = true
	w.run(time.Second)

	// ~7s of 50ms traffic: allow a couple of in-flight losses around the
	// binding change, no more (hot switching "usually no packet loss").
	sent := int(chSock.Sent)
	if received < sent-2 {
		t.Fatalf("hot switch lost %d of %d packets", sent-received, sent)
	}
	if w.mh.Stats().HotSwitches != 1 {
		t.Fatal("hot switch not counted")
	}
}

func TestSwitchAddressSameSubnet(t *testing.T) {
	w := newWorld(t, 1)
	w.goForeign()
	oldCareOf := w.mh.CareOf()
	newAddr := ip.MustParseAddr("10.2.0.200") // outside the DHCP pool

	done := false
	w.mh.SwitchAddress(newAddr, func(err error) {
		if err != nil {
			t.Fatal(err)
		}
		done = true
	})
	w.run(5 * time.Second)
	if !done {
		t.Fatal("SwitchAddress never completed")
	}
	if w.mh.CareOf() != newAddr {
		t.Fatalf("care-of %v, want %v", w.mh.CareOf(), newAddr)
	}
	b, _ := w.ha.Binding(ip.MustParseAddr(wHomeAddr))
	if b.CareOf != newAddr {
		t.Fatalf("binding care-of %v", b.CareOf)
	}
	// Traffic still flows after the switch.
	served, _ := w.udpEchoServer(7)
	cli, _ := w.mhTS.UDP(ip.Unspecified, 0, nil)
	cli.SendTo(ip.MustParseAddr(wCHAddr), 7, []byte("post-switch"))
	w.run(5 * time.Second)
	if *served != 1 {
		t.Fatal("traffic broken after address switch")
	}
	if oldCareOf == newAddr {
		t.Fatal("test misconfigured: same address")
	}
	if w.mh.Stats().AddressSwitches != 1 {
		t.Fatal("address switch not counted")
	}
}

func TestHomeNeighborUsesProxyAfterDeparture(t *testing.T) {
	w := newWorld(t, 1)
	// Neighbor on the home subnet.
	nb, _ := mkHost(w.loop, w.homeNet, "neighbor", "10.1.0.9/24", "10.1.0.1")

	// MH starts at home and talks to the neighbor directly.
	homeDone := false
	w.mh.ConnectHome(w.eth0, ip.MustParseAddr("10.1.0.1"), func(error) { homeDone = true })
	w.run(5 * time.Second)
	if !homeDone {
		t.Fatal("ConnectHome never completed")
	}
	got := 0
	nb.UDP(ip.Unspecified, 7, func(transport.Datagram) { got++ })
	mhSock, _ := w.mhTS.UDP(ip.Unspecified, 0, nil)
	mhSock.SendTo(ip.MustParseAddr("10.1.0.9"), 7, []byte("direct"))
	w.run(2 * time.Second)
	if got != 1 {
		t.Fatal("at-home direct delivery failed")
	}

	// MH leaves for foreignA (cold switch off the home interface).
	moved := false
	w.mh.ColdSwitch(w.eth1, func(err error) {
		if err != nil {
			t.Fatal(err)
		}
		moved = true
	})
	w.run(15 * time.Second)
	if !moved {
		t.Fatal("move never completed")
	}

	// The neighbor (stale ARP voided by the HA's gratuitous ARP) sends to
	// the home address; the proxy intercepts and the tunnel delivers.
	atMH := 0
	w.mhTS.UDP(ip.Unspecified, 4000, func(transport.Datagram) { atMH++ })
	nbSock, _ := nb.UDP(ip.Unspecified, 0, nil)
	nbSock.SendTo(ip.MustParseAddr(wHomeAddr), 4000, []byte("via proxy"))
	w.run(5 * time.Second)
	if atMH != 1 {
		t.Fatal("neighbor's packet did not reach the departed MH")
	}
}

func TestOnCallbacks(t *testing.T) {
	w := newWorld(t, 1)
	var changes []LinkChange
	var regAddrs []ip.Addr
	dereg := 0
	w.mh.OnLinkChange = func(c LinkChange) { changes = append(changes, c) }
	w.mh.OnRegistered = func(a ip.Addr) { regAddrs = append(regAddrs, a) }
	w.mh.OnDeregistered = func() { dereg++ }

	w.goForeign()
	if len(changes) == 0 || changes[len(changes)-1].AtHome {
		t.Fatalf("link change not reported: %+v", changes)
	}
	if changes[len(changes)-1].Medium.Name != "ethernet" {
		t.Fatalf("medium not reported: %+v", changes[len(changes)-1])
	}
	if len(regAddrs) != 1 || regAddrs[0] != w.mh.CareOf() {
		t.Fatalf("OnRegistered: %v", regAddrs)
	}
	w.goHome()
	if dereg != 1 {
		t.Fatalf("OnDeregistered fired %d times", dereg)
	}
	if !changes[len(changes)-1].AtHome {
		t.Fatal("home link change not reported")
	}
}

func TestForeignAgentMode(t *testing.T) {
	w := newWorld(t, 1)
	// Foreign agent on foreignA.
	faTS, faIfc := mkHost(w.loop, w.forA, "fa", "10.2.0.4/24", "10.2.0.1")
	fa, err := NewForeignAgent(faTS, ForeignAgentConfig{Iface: faIfc, Tracer: w.tr})
	if err != nil {
		t.Fatal(err)
	}
	var regErr error
	done := false
	w.mh.ConnectViaForeignAgent(w.eth1, fa.Addr(), func(err error) { regErr, done = err, true })
	w.run(10 * time.Second)
	if !done || regErr != nil {
		t.Fatalf("FA registration: done=%v err=%v", done, regErr)
	}
	if !fa.HasVisitor(ip.MustParseAddr(wHomeAddr)) {
		t.Fatal("visitor list empty")
	}
	b, ok := w.ha.Binding(ip.MustParseAddr(wHomeAddr))
	if !ok || b.CareOf != fa.Addr() {
		t.Fatalf("binding care-of %v, want the FA address", b.CareOf)
	}

	// Traffic: CH -> home address -> HA tunnel -> FA decap -> on-link MH.
	served, lastFrom := w.udpEchoServer(7)
	cli, _ := w.mhTS.UDP(ip.Unspecified, 0, nil)
	cli.SendTo(ip.MustParseAddr(wCHAddr), 7, []byte("through the FA"))
	w.run(5 * time.Second)
	if *served != 1 {
		t.Fatal("MH->CH traffic failed in FA mode")
	}
	if *lastFrom != ip.MustParseAddr(wHomeAddr) {
		t.Fatalf("CH saw %v", *lastFrom)
	}
	if fa.Tunnel().Stats().Decapsulated == 0 {
		t.Fatal("FA never decapsulated")
	}
	st := fa.Stats()
	if st.RequestsRelayed == 0 || st.RepliesRelayed == 0 {
		t.Fatalf("relay stats: %+v", st)
	}
	if st.AdvertsSent == 0 {
		t.Fatal("no advertisements sent")
	}
}

func TestPreviousFAForwarding(t *testing.T) {
	w := newWorld(t, 1)
	faTS, faIfc := mkHost(w.loop, w.forA, "fa", "10.2.0.4/24", "10.2.0.1")
	fa, err := NewForeignAgent(faTS, ForeignAgentConfig{Iface: faIfc, Tracer: w.tr})
	if err != nil {
		t.Fatal(err)
	}
	done := false
	w.mh.ConnectViaForeignAgent(w.eth1, fa.Addr(), func(err error) {
		if err != nil {
			t.Fatal(err)
		}
		done = true
	})
	w.run(10 * time.Second)
	if !done {
		t.Fatal("FA attach failed")
	}

	// Move to foreignB with a collocated care-of address.
	w.eth1.Iface().Device().Detach()
	w.eth1.Iface().Device().Attach(w.forB)
	moved := false
	w.mh.ColdSwitch(w.eth1, func(err error) {
		if err != nil {
			t.Fatal(err)
		}
		moved = true
	})
	w.run(15 * time.Second)
	if !moved {
		t.Fatal("move failed")
	}
	w.mh.NotifyPreviousFA(fa.Addr(), w.mh.CareOf(), 30*time.Second)
	w.run(time.Second)

	// A straggler tunneled to the old FA (as if the HA had not yet seen
	// the new registration) must be re-tunneled to the new care-of.
	atMH := 0
	w.mhTS.UDP(ip.Unspecified, 4000, func(transport.Datagram) { atMH++ })
	inner := &ip.Packet{
		Header:  ip.Header{TTL: 62, Protocol: ip.ProtoUDP, Src: ip.MustParseAddr(wCHAddr), Dst: ip.MustParseAddr(wHomeAddr)},
		Payload: ip.MarshalUDP(ip.MustParseAddr(wCHAddr), ip.MustParseAddr(wHomeAddr), ip.UDPHeader{SrcPort: 9, DstPort: 4000}, []byte("straggler")),
	}
	outer, err := ip.Encapsulate(ip.MustParseAddr(wHAAddr), fa.Addr(), 64, 1, inner)
	if err != nil {
		t.Fatal(err)
	}
	w.ha.host.Output(outer)
	w.run(5 * time.Second)
	if atMH != 1 {
		t.Fatalf("straggler was not forwarded to the new care-of address\nFA stats: %+v\nFA tunnel: %+v\ntrace:\n%s",
			fa.Stats(), fa.Tunnel().Stats(), w.tr.String())
	}
	if fa.Stats().Forwarded == 0 {
		t.Fatal("FA forwarding not counted")
	}
}

func TestDoubleVisitToSameNetworkReusesAddress(t *testing.T) {
	w := newWorld(t, 1)
	w.goForeign()
	first := w.mh.CareOf()
	w.goHome()
	w.eth1.Iface().Device().Attach(w.forA)
	w.goForeign()
	if w.mh.CareOf() != first {
		t.Fatalf("DHCP address changed for the same client: %v -> %v", first, w.mh.CareOf())
	}
}

func TestActivateNotReady(t *testing.T) {
	w := newWorld(t, 1)
	var gotErr error
	done := false
	w.mh.Activate(w.eth1, func(err error) { gotErr, done = err, true })
	w.run(time.Second)
	if !done || !errors.Is(gotErr, ErrIfaceNotReady) {
		t.Fatalf("err = %v", gotErr)
	}
	var swErr error
	w.mh.SwitchAddress(ip.MustParseAddr("10.2.0.200"), func(err error) { swErr = err })
	w.run(time.Second)
	if !errors.Is(swErr, ErrNoActiveIface) {
		t.Fatalf("SwitchAddress err = %v", swErr)
	}
}

// TestTunnelFragmentationAtMTU exercises the interaction the paper's
// 20-byte encapsulation overhead creates: a near-MTU datagram to the home
// address no longer fits once the home agent wraps it, so the tunnel path
// fragments and the mobile host reassembles before decapsulating.
func TestTunnelFragmentationAtMTU(t *testing.T) {
	w := newWorld(t, 1)
	w.goForeign()

	var got []byte
	w.mhTS.UDP(ip.Unspecified, 4000, func(d transport.Datagram) { got = d.Payload })
	chSock, _ := w.ch.UDP(ip.Unspecified, 0, nil)

	payload := make([]byte, 1460) // inner packet 1488B; encapsulated 1508B > 1500 MTU
	for i := range payload {
		payload[i] = byte(i * 11)
	}
	chSock.SendTo(ip.MustParseAddr(wHomeAddr), 4000, payload)
	w.run(5 * time.Second)

	if !bytes.Equal(got, payload) {
		t.Fatalf("near-MTU datagram lost or corrupted through the tunnel (got %d bytes)", len(got))
	}
	if w.ha.host.Stats().FragmentsSent < 2 {
		t.Fatalf("home agent did not fragment: %+v", w.ha.host.Stats())
	}
	if w.mh.Host().Reassembler().Stats().Reassembled != 1 {
		t.Fatalf("mobile host did not reassemble: %+v", w.mh.Host().Reassembler().Stats())
	}
	// The reverse direction: the MH's reply is also encapsulated and must
	// fragment on the way back to the home agent.
	mhSock, _ := w.mhTS.UDP(ip.Unspecified, 0, nil)
	atCH := 0
	w.ch.UDP(ip.Unspecified, 5000, func(d transport.Datagram) {
		if len(d.Payload) == len(payload) {
			atCH++
		}
	})
	mhSock.SendTo(ip.MustParseAddr(wCHAddr), 5000, payload)
	w.run(5 * time.Second)
	if atCH != 1 {
		t.Fatal("reverse-tunnel near-MTU datagram lost")
	}
}

func TestAgentDiscovery(t *testing.T) {
	w := newWorld(t, 1)
	faTS, faIfc := mkHost(w.loop, w.forA, "fa", "10.2.0.4/24", "10.2.0.1")
	fa, err := NewForeignAgent(faTS, ForeignAgentConfig{Iface: faIfc, AdvertInterval: 500 * time.Millisecond, Tracer: w.tr})
	if err != nil {
		t.Fatal(err)
	}
	var found DiscoveredAgent
	ok := false
	done := false
	w.mh.DiscoverForeignAgent(w.eth1, 5*time.Second, func(a DiscoveredAgent, got bool) {
		found, ok, done = a, got, true
	})
	w.run(10 * time.Second)
	if !done || !ok {
		t.Fatalf("discovery failed: done=%v ok=%v", done, ok)
	}
	if found.Agent != fa.Addr() {
		t.Fatalf("discovered %v, want %v", found.Agent, fa.Addr())
	}
	if found.Lifetime <= 0 {
		t.Fatalf("advertised lifetime %v", found.Lifetime)
	}
}

func TestAgentDiscoveryTimeout(t *testing.T) {
	w := newWorld(t, 1) // no FA anywhere
	ok := true
	done := false
	w.mh.DiscoverForeignAgent(w.eth1, time.Second, func(_ DiscoveredAgent, got bool) {
		ok, done = got, true
	})
	w.run(5 * time.Second)
	if !done || ok {
		t.Fatalf("expected timeout: done=%v ok=%v", done, ok)
	}
}

func TestConnectViaDiscoveredAgent(t *testing.T) {
	w := newWorld(t, 1)
	faTS, faIfc := mkHost(w.loop, w.forA, "fa", "10.2.0.4/24", "10.2.0.1")
	fa, err := NewForeignAgent(faTS, ForeignAgentConfig{Iface: faIfc, AdvertInterval: 300 * time.Millisecond, Tracer: w.tr})
	if err != nil {
		t.Fatal(err)
	}
	var regErr error
	done := false
	w.mh.ConnectViaDiscoveredAgent(w.eth1, 5*time.Second, func(err error) { regErr, done = err, true })
	w.run(15 * time.Second)
	if !done || regErr != nil {
		t.Fatalf("done=%v err=%v", done, regErr)
	}
	if b, ok := w.ha.Binding(ip.MustParseAddr(wHomeAddr)); !ok || b.CareOf != fa.Addr() {
		t.Fatalf("binding: %+v ok=%v", b, ok)
	}
	if !fa.HasVisitor(ip.MustParseAddr(wHomeAddr)) {
		t.Fatal("no visitor entry")
	}
}

func TestConnectViaDiscoveredAgentNoAgent(t *testing.T) {
	w := newWorld(t, 1)
	var regErr error
	done := false
	w.mh.ConnectViaDiscoveredAgent(w.eth1, time.Second, func(err error) { regErr, done = err, true })
	w.run(10 * time.Second)
	if !done || !errors.Is(regErr, ErrNoAgentFound) {
		t.Fatalf("done=%v err=%v", done, regErr)
	}
}

// TestReplayedRegistrationRejected verifies the identification check: a
// replayed (or stale) registration request must be denied and must not
// disturb the current binding.
func TestReplayedRegistrationRejected(t *testing.T) {
	w := newWorld(t, 1)
	w.goForeign()
	current, _ := w.ha.Binding(ip.MustParseAddr(wHomeAddr))

	// An attacker replays an old-looking request redirecting the home
	// address to an address it controls.
	attacker, _ := mkHost(w.loop, w.forA, "attacker", "10.2.0.66/24", "10.2.0.1")
	sock, err := attacker.UDP(ip.Unspecified, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	replay := &RegRequest{
		Lifetime:  60,
		HomeAddr:  ip.MustParseAddr(wHomeAddr),
		HomeAgent: ip.MustParseAddr(wHAAddr),
		CareOf:    ip.MustParseAddr("10.2.0.66"),
		ID:        current.ID - 1, // stale identification
	}
	sock.SendTo(ip.MustParseAddr(wHAAddr), Port, replay.Marshal())
	w.run(5 * time.Second)

	after, ok := w.ha.Binding(ip.MustParseAddr(wHomeAddr))
	if !ok || after.CareOf != current.CareOf {
		t.Fatalf("replay moved the binding: %+v", after)
	}
	if w.ha.Stats().Denied == 0 {
		t.Fatal("replay was not denied")
	}

	// Exact duplicate of the current registration is also rejected.
	dup := replay
	dup.ID = current.ID
	dup.CareOf = current.CareOf
	sock.SendTo(ip.MustParseAddr(wHAAddr), Port, dup.Marshal())
	w.run(5 * time.Second)
	if w.ha.Stats().Denied < 2 {
		t.Fatal("duplicate identification accepted")
	}
}

// TestMulticastLocalRole: a mobile host joins a multicast group via the
// foreign network (Section 5.2); group traffic flows in the local role and
// never touches the tunnel.
func TestMulticastLocalRole(t *testing.T) {
	w := newWorld(t, 1)
	w.goForeign()

	group := ip.MustParseAddr("224.0.1.7")
	if err := w.mh.Host().JoinGroup(group); err != nil {
		t.Fatal(err)
	}
	got := 0
	w.mhTS.UDP(ip.Unspecified, 6000, func(transport.Datagram) { got++ })

	// A host on the visited net multicasts.
	sender, _ := mkHost(w.loop, w.forA, "mcast-src", "10.2.0.9/24", "10.2.0.1")
	sender.Host().Routes().Add(stack.Route{Dst: ip.MustParsePrefix("224.0.0.0/4"), Iface: sender.Host().IfaceByName("eth0")})
	sock, _ := sender.UDP(ip.Unspecified, 0, nil)
	sock.SendTo(group, 6000, []byte("group news"))
	w.run(2 * time.Second)
	if got != 1 {
		t.Fatal("group traffic did not reach the mobile host")
	}

	// And the mobile host can send to the group without tunneling.
	w.mh.Host().Routes().Add(stack.Route{Dst: ip.MustParsePrefix("224.0.0.0/4"), Iface: w.eth1.Iface(), Metric: 5})
	atSender := 0
	sender.UDP(ip.Unspecified, 6001, func(transport.Datagram) { atSender++ })
	sender.Host().JoinGroup(group)
	mhSock, _ := w.mhTS.UDP(ip.Unspecified, 0, nil)
	before := w.mh.Tunnel().Stats().Encapsulated
	mhSock.SendTo(group, 6001, []byte("from the mh"))
	w.run(2 * time.Second)
	if atSender != 1 {
		t.Fatal("mobile host's group traffic not delivered")
	}
	if w.mh.Tunnel().Stats().Encapsulated != before {
		t.Fatal("group traffic was tunneled")
	}
}

// TestSimultaneousBindings exercises the S-flag extension: with two
// interfaces up and both care-of addresses registered, the home agent
// duplicates traffic to both, and the stream survives the abrupt death of
// either interface with no re-registration at all.
func TestSimultaneousBindings(t *testing.T) {
	w := newWorld(t, 1)
	w.goForeign() // eth1 on foreignA, primary binding

	// Prepare a second interface on foreignB (up, addressed, routed).
	eth2dev := link.NewDevice(w.loop, "mh-eth2", 0, 0)
	eth2dev.Attach(w.forB)
	eth2, err := w.mh.AddInterface("eth2", eth2dev, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	eth2dev.BringUp(nil)
	prepared := false
	w.mh.Prepare(eth2, func(err error) {
		if err != nil {
			t.Fatal(err)
		}
		prepared = true
	})
	w.run(10 * time.Second)
	if !prepared {
		t.Fatal("Prepare failed")
	}

	simDone := false
	w.mh.AddSimultaneousBinding(eth2.Addr(), func(err error) {
		if err != nil {
			t.Fatal(err)
		}
		simDone = true
	})
	w.run(5 * time.Second)
	if !simDone {
		t.Fatal("simultaneous binding never confirmed")
	}
	b, _ := w.ha.Binding(ip.MustParseAddr(wHomeAddr))
	if len(b.Extras) != 1 {
		t.Fatalf("extras = %v", b.Extras)
	}

	// Traffic is duplicated: one datagram arrives twice (once per path).
	got := 0
	w.mhTS.UDP(ip.Unspecified, 4000, func(transport.Datagram) { got++ })
	chSock, _ := w.ch.UDP(ip.Unspecified, 0, nil)
	chSock.SendTo(ip.MustParseAddr(wHomeAddr), 4000, []byte("both paths"))
	w.run(3 * time.Second)
	if got != 2 {
		t.Fatalf("delivered %d copies, want 2", got)
	}
	if w.ha.Stats().Duplicated != 1 {
		t.Fatalf("HA duplicated %d", w.ha.Stats().Duplicated)
	}

	// The primary path dies abruptly; traffic keeps flowing via the other
	// binding with no re-registration.
	regsBefore := w.mh.Stats().Registrations
	w.eth1.Iface().Device().BringDown()
	chSock.SendTo(ip.MustParseAddr(wHomeAddr), 4000, []byte("one path left"))
	w.run(3 * time.Second)
	if got != 3 {
		t.Fatalf("delivery after path death: got=%d want 3", got)
	}
	if w.mh.Stats().Registrations != regsBefore {
		t.Fatal("an unexpected re-registration happened")
	}

	// A plain (non-S) registration collapses the set back to one binding.
	collapse := false
	w.mh.SwitchAddress(ip.MustParseAddr("10.2.0.200"), func(err error) { collapse = true })
	w.run(10 * time.Second)
	_ = collapse // eth1 is down; the switch may time out, which is fine here
}

// TestSimultaneousBindingRetained verifies that a plain registration drops
// extras while an S-flag one retains them.
func TestSimultaneousBindingCollapse(t *testing.T) {
	w := newWorld(t, 1)
	w.goForeign()
	careOf := w.mh.CareOf()

	// Fake second binding via the API against a second configured address
	// on the same interface is not possible; use foreignB instead.
	eth2dev := link.NewDevice(w.loop, "mh-eth2", 0, 0)
	eth2dev.Attach(w.forB)
	eth2, _ := w.mh.AddInterface("eth2", eth2dev, false, nil)
	eth2dev.BringUp(nil)
	w.mh.Prepare(eth2, nil)
	w.run(10 * time.Second)
	w.mh.AddSimultaneousBinding(eth2.Addr(), nil)
	w.run(5 * time.Second)
	b, _ := w.ha.Binding(ip.MustParseAddr(wHomeAddr))
	if len(b.Extras) != 1 || b.CareOf != eth2.Addr() {
		t.Fatalf("binding after S registration: %+v", b)
	}

	// Plain re-registration of the original care-of: extras are dropped.
	w.mh.SwitchAddress(careOf, nil) // same-subnet switch back to the DHCP address
	w.run(10 * time.Second)
	b, _ = w.ha.Binding(ip.MustParseAddr(wHomeAddr))
	if len(b.Extras) != 0 || b.CareOf != careOf {
		t.Fatalf("binding after plain registration: %+v", b)
	}
}

func TestPolicyDirectLocalRoleSending(t *testing.T) {
	w := newWorld(t, 1)
	w.goForeign()
	w.mh.Policy().SetHost(ip.MustParseAddr(wCHAddr), PolicyDirect)

	var from ip.Addr
	w.ch.UDP(ip.Unspecified, 7, func(d transport.Datagram) { from = d.From })
	cli, _ := w.mhTS.UDP(ip.Unspecified, 0, nil)
	cli.SendTo(ip.MustParseAddr(wCHAddr), 7, []byte("bare"))
	w.run(3 * time.Second)
	// Direct policy: care-of source, no encapsulation, no mobility.
	if from != w.mh.CareOf() {
		t.Fatalf("direct-policy source %v, want care-of %v", from, w.mh.CareOf())
	}
	if w.mh.Tunnel().Stats().Encapsulated != 0 {
		t.Fatal("direct policy used the tunnel")
	}
}

func TestHomeAgentDenialCodes(t *testing.T) {
	w := newWorld(t, 1)
	sender, _ := mkHost(w.loop, w.forA, "rogue", "10.2.0.77/24", "10.2.0.1")
	var replies []*RegReply
	replySock, err := sender.UDP(ip.Unspecified, 4343, func(d transport.Datagram) {
		if r, err := UnmarshalRegReply(d.Payload); err == nil {
			replies = append(replies, r)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	send := func(req *RegRequest) {
		replySock.SendTo(ip.MustParseAddr(wHAAddr), Port, req.Marshal())
		w.run(3 * time.Second)
	}

	// Home address outside the home prefix.
	send(&RegRequest{Lifetime: 60, HomeAddr: ip.MustParseAddr("99.9.9.9"),
		HomeAgent: ip.MustParseAddr(wHAAddr), CareOf: ip.MustParseAddr("10.2.0.77"), ID: 1})
	// Wrong home agent address.
	send(&RegRequest{Lifetime: 60, HomeAddr: ip.MustParseAddr(wHomeAddr),
		HomeAgent: ip.MustParseAddr("10.4.0.2"), CareOf: ip.MustParseAddr("10.2.0.77"), ID: 2})
	// Missing care-of address.
	send(&RegRequest{Lifetime: 60, HomeAddr: ip.MustParseAddr(wHomeAddr),
		HomeAgent: ip.MustParseAddr(wHAAddr), ID: 3})

	if len(replies) != 3 {
		t.Fatalf("got %d replies", len(replies))
	}
	want := []uint8{CodeDeniedBadHomeAddr, CodeDeniedBadRequest, CodeDeniedBadRequest}
	for i, r := range replies {
		if r.Code != want[i] {
			t.Errorf("reply %d: code %d (%s), want %d", i, r.Code, CodeString(r.Code), want[i])
		}
		if r.Accepted() {
			t.Errorf("reply %d accepted", i)
		}
	}
	if got := len(w.ha.Bindings()); got != 0 {
		t.Fatalf("denied requests installed %d bindings", got)
	}
}

func TestManagedIfaceAccessors(t *testing.T) {
	w := newWorld(t, 1)
	if w.eth1.Name() != "eth1" || w.eth1.Ready() {
		t.Fatal("accessors wrong before connect")
	}
	w.goForeign()
	if !w.eth1.Ready() || w.eth1.Addr().IsUnspecified() || w.eth1.Gateway() != ip.MustParseAddr("10.2.0.1") {
		t.Fatalf("accessors wrong after connect: %v %v", w.eth1.Addr(), w.eth1.Gateway())
	}
	if w.eth1.Iface() == nil {
		t.Fatal("Iface nil")
	}
	ifaces := w.mh.Interfaces()
	if len(ifaces) != 2 {
		t.Fatalf("Interfaces() = %d", len(ifaces))
	}
	if w.mh.Transport() != w.mhTS || w.mh.HomeAddr() != ip.MustParseAddr(wHomeAddr) {
		t.Fatal("MobileHost accessors wrong")
	}
}

func TestForeignAgentIgnoresWrongCareOf(t *testing.T) {
	w := newWorld(t, 1)
	faTS, faIfc := mkHost(w.loop, w.forA, "fa", "10.2.0.4/24", "10.2.0.1")
	fa, err := NewForeignAgent(faTS, ForeignAgentConfig{Iface: faIfc, Tracer: w.tr})
	if err != nil {
		t.Fatal(err)
	}
	// A request whose care-of is not this agent must not be relayed.
	sender, _ := mkHost(w.loop, w.forA, "mh2", "10.2.0.9/24", "10.2.0.1")
	sock, _ := sender.UDP(ip.Unspecified, 0, nil)
	req := &RegRequest{Lifetime: 60, HomeAddr: ip.MustParseAddr(wHomeAddr),
		HomeAgent: ip.MustParseAddr(wHAAddr), CareOf: ip.MustParseAddr("10.2.0.99"), ID: 5}
	sock.SendTo(fa.Addr(), Port, req.Marshal())
	w.run(3 * time.Second)
	if fa.Stats().RequestsRelayed != 0 {
		t.Fatal("FA relayed a request for a different care-of address")
	}
	if _, ok := w.ha.Binding(ip.MustParseAddr(wHomeAddr)); ok {
		t.Fatal("binding installed")
	}
}

// TestRetryAfterLostReplySucceeds is the regression test for a protocol
// bug: when the registration *reply* is lost, the retransmission must not
// be rejected as a replay. Each transmission carries a fresh
// identification (as in RFC 2002).
func TestRetryAfterLostReplySucceeds(t *testing.T) {
	w := newWorld(t, 1)
	// Drop exactly the first registration reply crossing the router.
	dropped := 0
	w.router.AddFilter(func(in, out *stack.Iface, pkt *ip.Packet) stack.Verdict {
		if pkt.Protocol != ip.ProtoUDP || dropped > 0 {
			return stack.Accept
		}
		_, payload, err := ip.UnmarshalUDP(pkt.Src, pkt.Dst, pkt.Payload)
		if err != nil || len(payload) == 0 || payload[0] != TypeRegReply {
			return stack.Accept
		}
		dropped++
		return stack.Drop
	})

	var regErr error
	done := false
	w.mh.ConnectForeign(w.eth1, func(err error) { regErr, done = err, true })
	w.run(30 * time.Second)
	if dropped != 1 {
		t.Fatalf("filter dropped %d replies", dropped)
	}
	if !done || regErr != nil {
		t.Fatalf("registration did not survive a lost reply: done=%v err=%v", done, regErr)
	}
	if _, ok := w.ha.Binding(ip.MustParseAddr(wHomeAddr)); !ok {
		t.Fatal("no binding")
	}
	// The retry consumed a fresh identification; the accepted one at the
	// HA must match the mobile host's latest.
	if w.ha.Stats().Denied != 0 {
		t.Fatalf("retransmission was denied: %+v", w.ha.Stats())
	}
}

func TestRegistrationRetryExhaustionLeavesCleanState(t *testing.T) {
	w := newWorld(t, 1)
	haDevs := w.ha.host.Ifaces()
	for _, ifc := range haDevs {
		if ifc.Device() != nil {
			ifc.Device().BringDown()
		}
	}
	var regErr error
	done := false
	w.mh.ConnectForeign(w.eth1, func(err error) { regErr, done = err, true })
	w.run(time.Minute)
	if !done || !errors.Is(regErr, ErrRegistrationTimeout) {
		t.Fatalf("err = %v done=%v", regErr, done)
	}

	// Every transmission was one of the RegMaxRetries attempts; after the
	// exhaustion surfaced, no leaked retry timer may keep sending.
	sent := w.mh.Stats().RegRequestsSent
	if int(sent) != w.mh.cfg.RegMaxRetries {
		t.Fatalf("RegRequestsSent = %d, want RegMaxRetries = %d", sent, w.mh.cfg.RegMaxRetries)
	}
	w.run(time.Minute)
	if got := w.mh.Stats().RegRequestsSent; got != sent {
		t.Fatalf("leaked retry timer: RegRequestsSent grew %d -> %d after exhaustion", sent, got)
	}

	// A later attach must start a fresh attempt and succeed cleanly once
	// the home agent is reachable again.
	for _, ifc := range haDevs {
		if ifc.Device() != nil {
			ifc.Device().BringUp(nil)
		}
	}
	var retryErr error
	retried := false
	w.mh.ConnectForeign(w.eth1, func(err error) { retryErr, retried = err, true })
	w.run(time.Minute)
	if !retried || retryErr != nil {
		t.Fatalf("re-attach after exhaustion: err=%v done=%v", retryErr, retried)
	}
	if !w.mh.Registered() {
		t.Fatal("MH not registered after re-attach")
	}
	if w.mh.Stats().RegTimeouts != 1 {
		t.Fatalf("RegTimeouts = %d, want exactly the original exhaustion", w.mh.Stats().RegTimeouts)
	}
}
