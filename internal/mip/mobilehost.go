package mip

import (
	"errors"
	"fmt"
	"time"

	"mosquitonet/internal/dhcp"
	"mosquitonet/internal/ip"
	"mosquitonet/internal/link"
	"mosquitonet/internal/metrics"
	"mosquitonet/internal/pipeline"
	"mosquitonet/internal/sim"
	"mosquitonet/internal/stack"
	"mosquitonet/internal/trace"
	"mosquitonet/internal/transport"
	"mosquitonet/internal/tunnel"
)

// MobileHostConfig configures a mobile host.
type MobileHostConfig struct {
	HomeAddr   ip.Addr
	HomePrefix ip.Prefix
	HomeAgent  ip.Addr

	// Lifetime is the registration lifetime requested (default 60s); the
	// host re-registers at three quarters of the granted lifetime.
	Lifetime time.Duration
	// RegRetryInterval and RegMaxRetries govern registration
	// retransmission (defaults 1s, 5).
	RegRetryInterval time.Duration
	RegMaxRetries    int

	// ConfigureDelay is the cost of configuring an interface address and
	// RouteChangeDelay the cost of a routing table update — the
	// "pre-registration" steps of the paper's Figure 7 time-line.
	ConfigureDelay   time.Duration
	RouteChangeDelay time.Duration

	// Tracer, if set, records handoff and registration events.
	Tracer *trace.Tracer
}

func (c MobileHostConfig) withDefaults() MobileHostConfig {
	if c.Lifetime == 0 {
		c.Lifetime = 60 * time.Second
	}
	if c.RegRetryInterval == 0 {
		c.RegRetryInterval = time.Second
	}
	if c.RegMaxRetries == 0 {
		c.RegMaxRetries = 5
	}
	return c
}

// MobileHostStats counts mobility events.
type MobileHostStats struct {
	Registrations   uint64 // accepted registrations (including renewals)
	Renewals        uint64
	Deregistrations uint64
	RegTimeouts     uint64
	RegRequestsSent uint64 // registration requests transmitted (incl. retries)
	RegRetransmits  uint64 // transmissions beyond the first per attempt
	ColdSwitches    uint64
	HotSwitches     uint64
	AddressSwitches uint64
	RegDenied       uint64 // registration replies carrying a denial code
	DropMalformed   uint64 // control datagrams that failed to parse
	DropStaleReply  uint64 // replies for a request no longer pending
}

// LinkChange describes a connectivity change, delivered to OnLinkChange.
// This implements the paper's Section 6 future-work item: informing
// upper layers when bandwidth, latency, and path characteristics change so
// they can adapt.
type LinkChange struct {
	Iface  string
	Medium link.Medium // characteristics of the new link
	CareOf ip.Addr
	AtHome bool
}

// StaticConfig configures an interface without DHCP.
type StaticConfig struct {
	Addr    ip.Addr
	Prefix  ip.Prefix
	Gateway ip.Addr
}

// ManagedIface is an interface under the mobile host's control.
type ManagedIface struct {
	m      *MobileHost
	ifc    *stack.Iface
	static *StaticConfig
	dhcpc  *dhcp.Client

	gateway ip.Addr
	addr    ip.Addr
	prefix  ip.Prefix
	ready   bool // up, addressed, and routed
}

// Name returns the interface name.
func (mi *ManagedIface) Name() string { return mi.ifc.Name() }

// Iface returns the underlying stack interface.
func (mi *ManagedIface) Iface() *stack.Iface { return mi.ifc }

// Addr returns the interface's current address.
func (mi *ManagedIface) Addr() ip.Addr { return mi.addr }

// Gateway returns the interface's current default gateway.
func (mi *ManagedIface) Gateway() ip.Addr { return mi.gateway }

// Ready reports whether the interface is up, addressed, and routed.
func (mi *ManagedIface) Ready() bool { return mi.ready }

// Mobility errors.
var (
	ErrRegistrationTimeout = errors.New("mip: registration timed out")
	ErrRegistrationDenied  = errors.New("mip: registration denied")
	ErrIfaceNotReady       = errors.New("mip: interface not ready")
	ErrNoActiveIface       = errors.New("mip: no active interface")
	ErrBusy                = errors.New("mip: operation already in progress")
)

// MobileHost is the mobile side of the protocol. It owns the host's
// "mobile-policy" route-resolution hook (the paper's modified
// ip_rt_route()), the Mobile Policy Table, the encapsulating VIF, and the
// managed physical interfaces it switches between.
type MobileHost struct {
	host *stack.Host
	ts   *transport.Stack
	cfg  MobileHostConfig

	policy    *PolicyTable
	tunHA     *tunnel.Endpoint // vif0: tunnel to/from the home agent
	tunDirect *tunnel.Endpoint // vif1: encapsulated-direct to smart correspondents

	ifaces []*ManagedIface
	active *ManagedIface

	atHome     bool
	careOf     ip.Addr
	faAddr     ip.Addr // non-zero in foreign-agent mode
	registered bool

	regSock  *transport.UDPSocket
	regID    uint64
	regTimer sim.Timer
	reregT   sim.Timer
	pending  *regAttempt

	// OnLinkChange, OnRegistered and OnDeregistered notify interested
	// upper layers; all are optional.
	OnLinkChange   func(LinkChange)
	OnRegistered   func(careOf ip.Addr)
	OnDeregistered func()

	stats MobileHostStats

	// regLatency observes the time from an attempt's first transmission
	// to its accepted reply — the paper's Figure 7 headline number.
	regLatency *metrics.Histogram
}

type regAttempt struct {
	req       *RegRequest
	dst       ip.Addr // where to send; zero means the home agent
	tries     int
	firstSent sim.Time
	done      func(error)
	span      *trace.Span // "reg.attempt": first transmission to outcome
}

// NewMobileHost wraps ts's host with mobility support: it installs the
// route-resolution hook, the VIF/IPIP tunnel endpoints, and registers the
// home address as always-local (tunneled packets arrive addressed to it).
func NewMobileHost(ts *transport.Stack, cfg MobileHostConfig) *MobileHost {
	m := &MobileHost{
		host:   ts.Host(),
		ts:     ts,
		cfg:    cfg.withDefaults(),
		policy: NewPolicyTable(PolicyTunnel),
		regID:  uint64(ts.Host().Loop().Rand().Uint32()) << 16,
	}
	// The endpoints' decap hooks run in VIF-name order and the first one
	// steals every IPIP packet, so inbound tunneled traffic is attributed
	// to vif0, the home-agent tunnel.
	m.tunDirect = tunnel.New(m.host, "vif1",
		m.currentCareOf,
		func(inner *ip.Packet) (ip.Addr, bool) { return inner.Dst, true })
	m.tunHA = tunnel.New(m.host, "vif0",
		m.currentCareOf,
		func(*ip.Packet) (ip.Addr, bool) { return m.cfg.HomeAgent, true })
	m.host.AddLocalAddr(m.cfg.HomeAddr)
	// The paper's modified ip_rt_route(), as a named route-resolution
	// hook. It always resolves (Stolen), consulting the Mobile Policy
	// Table or delegating to the default lookup itself.
	m.host.RouteHooks().Register(pipeline.Hook[*stack.RouteQuery]{
		Name: "mobile-policy", Priority: stack.PriRouteOverride,
		Fn: func(q *stack.RouteQuery) pipeline.Verdict {
			q.Decision, q.Err = m.routeLookup(q.Dst, q.Src)
			return pipeline.Stolen
		},
	})
	// routeLookup's decisions embed Mobile Policy Table verdicts and the
	// current care-of state; both must flush the stack's decision cache
	// the moment they change. Policy edits flow through this hook, and
	// every care-of/mode transition below calls InvalidateRoutes itself.
	m.policy.SetOnChange(m.host.InvalidateRoutes)
	m.registerMetrics(metrics.For(m.host.Loop()))
	return m
}

// registerMetrics exposes the mobile host's counters, the policy table's
// hit rate, and the registration-latency histogram in the loop's registry
// as a single snapshot-time collector (one closure per mobile host instead
// of a 13-entry roster; rows are byte-identical). The histogram is a
// detached handle the mobile host observes into; the collector hands the
// samples to each snapshot.
func (m *MobileHost) registerMetrics(reg *metrics.Registry) {
	m.regLatency = &metrics.Histogram{}
	if reg == nil {
		return
	}
	reg.Collect(func(c *metrics.Collection) {
		host := metrics.L("host", m.host.Name())
		c.Histogram("mip.mh.registration_latency", m.regLatency, host)
		c.Counter("mip.mh.registrations", m.stats.Registrations, host)
		c.Counter("mip.mh.renewals", m.stats.Renewals, host)
		c.Counter("mip.mh.deregistrations", m.stats.Deregistrations, host)
		c.Counter("mip.mh.reg_timeouts", m.stats.RegTimeouts, host)
		c.Counter("mip.mh.reg_requests_sent", m.stats.RegRequestsSent, host)
		c.Counter("mip.mh.reg_retransmits", m.stats.RegRetransmits, host)
		c.Counter("mip.mh.cold_switches", m.stats.ColdSwitches, host)
		c.Counter("mip.mh.hot_switches", m.stats.HotSwitches, host)
		c.Counter("mip.mh.address_switches", m.stats.AddressSwitches, host)
		c.Counter("mip.mh.handoffs",
			m.stats.ColdSwitches+m.stats.HotSwitches+m.stats.AddressSwitches, host)
		c.Counter("mip.policy.lookups", m.policy.Lookups(), host)
		c.Counter("mip.policy.hits", m.policy.Hits(), host)
	})
}

// Host returns the underlying stack host.
func (m *MobileHost) Host() *stack.Host { return m.host }

// Transport returns the host's transport stack.
func (m *MobileHost) Transport() *transport.Stack { return m.ts }

// Policy returns the Mobile Policy Table.
func (m *MobileHost) Policy() *PolicyTable { return m.policy }

// Tunnel returns the home-agent tunnel endpoint (for statistics).
func (m *MobileHost) Tunnel() *tunnel.Endpoint { return m.tunHA }

// Stats returns a snapshot of the counters.
func (m *MobileHost) Stats() MobileHostStats { return m.stats }

// HomeAddr returns the host's permanent home address.
func (m *MobileHost) HomeAddr() ip.Addr { return m.cfg.HomeAddr }

// CareOf returns the current care-of address (zero at home).
func (m *MobileHost) CareOf() ip.Addr { return m.careOf }

// AtHome reports whether the host believes it is on its home subnet.
func (m *MobileHost) AtHome() bool { return m.atHome }

// Registered reports whether a registration is active at the home agent.
func (m *MobileHost) Registered() bool { return m.registered }

// Active returns the active managed interface, or nil.
func (m *MobileHost) Active() *ManagedIface { return m.active }

// currentCareOf is the tunnels' outer-source callback.
func (m *MobileHost) currentCareOf() (ip.Addr, bool) {
	if m.careOf.IsUnspecified() {
		return ip.Addr{}, false
	}
	return m.careOf, true
}

// AddInterface places a device under mobility management. static, if
// non-nil, is the interface's fixed configuration on foreign networks
// (e.g. the radio subnet's preassigned address); when nil, foreign
// attachments acquire a care-of address by DHCP. Attaching to the home
// subnet (ConnectHome, ColdSwitchHome) always uses the home address and
// needs no static config. The device is left down; Connect* operations
// bring it up.
func (m *MobileHost) AddInterface(name string, dev *link.Device, pointToPoint bool, static *StaticConfig) (*ManagedIface, error) {
	ifc := m.host.AddIface(name, dev, ip.Unspecified, ip.Prefix{}, stack.IfaceOpts{PointToPoint: pointToPoint})
	mi := &ManagedIface{m: m, ifc: ifc, static: static}
	if static == nil {
		c, err := dhcp.NewClient(m.ts, ifc, dhcp.ClientConfig{})
		if err != nil {
			return nil, err
		}
		mi.dhcpc = c
	}
	m.ifaces = append(m.ifaces, mi)
	return mi, nil
}

// Interfaces returns the managed interfaces.
func (m *MobileHost) Interfaces() []*ManagedIface {
	return append([]*ManagedIface(nil), m.ifaces...)
}

// trace records through the configured tracer.
func (m *MobileHost) trace(kind, format string, args ...any) {
	m.cfg.Tracer.Record(m.host.Name(), kind, format, args...)
}

// startSpan opens a span under the host's ambient span context (nil-safe,
// like trace).
func (m *MobileHost) startSpan(kind string) *trace.Span {
	return m.cfg.Tracer.StartSpan(m.host.Name(), kind)
}

// --- Connectivity operations -------------------------------------------

// ConnectHome brings mi up on the home subnet: the home address goes on
// the interface, routes are installed, any registration is cleared with
// the home agent, and a gratuitous ARP reclaims the address from the
// agent's proxy. done receives the deregistration outcome.
func (m *MobileHost) ConnectHome(mi *ManagedIface, gateway ip.Addr, done func(error)) {
	sp := m.startSpan(kSpanHomeAttach)
	sp.SetAttr("iface", mi.Name())
	finish := func(err error) {
		sp.Fail(err)
		if done != nil {
			done(err)
		}
	}
	m.trace(kHomeAttachStart, "iface=%s", mi.Name())
	bu := m.startSpan(kSpanBringup)
	bu.SetAttr("iface", mi.Name())
	mi.ifc.Device().BringUp(func() {
		bu.Done()
		cs := m.startSpan(kSpanConfigure)
		m.host.Loop().Schedule(m.jit(m.cfg.ConfigureDelay), func() {
			mi.ifc.SetAddr(m.cfg.HomeAddr, m.cfg.HomePrefix)
			mi.addr, mi.prefix, mi.gateway = m.cfg.HomeAddr, m.cfg.HomePrefix, gateway
			cs.SetAttr("addr", m.cfg.HomeAddr.String())
			cs.Done()
			rs := m.startSpan(kSpanRoute)
			m.host.Loop().Schedule(m.jit(m.cfg.RouteChangeDelay), func() {
				m.installRoutes(mi)
				mi.ready = true
				m.active = mi
				m.atHome = true
				m.careOf = ip.Addr{}
				m.host.InvalidateRoutes()
				rs.Done()
				if arp := mi.ifc.ARP(); arp != nil {
					arp.Gratuitous(m.cfg.HomeAddr, mi.ifc.Device().HW())
				}
				m.notifyLink(mi)
				m.trace(kHomeAttachDone, "addr=%v", m.cfg.HomeAddr)
				if m.registered {
					m.deregister(finish)
				} else {
					finish(nil)
				}
			})
		})
	})
}

// ConnectForeign brings mi up on a foreign network: the device comes up,
// a care-of address is acquired (DHCP unless static), routes are
// installed, and the care-of address is registered with the home agent.
// done receives the registration outcome.
func (m *MobileHost) ConnectForeign(mi *ManagedIface, done func(error)) {
	sp := m.startSpan(kSpanConnect)
	sp.SetAttr("iface", mi.Name())
	finish := func(err error) {
		sp.Fail(err)
		if done != nil {
			done(err)
		}
	}
	m.trace(kBringupStart, "iface=%s", mi.Name())
	bu := m.startSpan(kSpanBringup)
	bu.SetAttr("iface", mi.Name())
	mi.ifc.Device().BringUp(func() {
		bu.Done()
		m.trace(kBringupDone, "iface=%s", mi.Name())
		m.Prepare(mi, func(err error) {
			if err != nil {
				finish(err)
				return
			}
			m.Activate(mi, finish)
		})
	})
}

// Prepare acquires an address and installs routes on an already-up
// interface without making it active — the staging step of a hot switch.
func (m *MobileHost) Prepare(mi *ManagedIface, done func(error)) {
	finish := func(addr ip.Addr, prefix ip.Prefix, gw ip.Addr) {
		cs := m.startSpan(kSpanConfigure)
		cs.SetAttr("iface", mi.Name())
		m.host.Loop().Schedule(m.jit(m.cfg.ConfigureDelay), func() {
			mi.ifc.SetAddr(addr, prefix)
			mi.addr, mi.prefix, mi.gateway = addr, prefix, gw
			cs.SetAttr("addr", addr.String())
			cs.Done()
			m.trace(kConfigureDone, "iface=%s addr=%v", mi.Name(), addr)
			rs := m.startSpan(kSpanRoute)
			m.host.Loop().Schedule(m.jit(m.cfg.RouteChangeDelay), func() {
				m.host.Routes().Add(stack.Route{Dst: prefix, Iface: mi.ifc, Metric: 10})
				mi.ready = true
				rs.Done()
				m.trace(kRouteStaged, "iface=%s", mi.Name())
				if done != nil {
					done(nil)
				}
			})
		})
	}
	if mi.static != nil {
		finish(mi.static.Addr, mi.static.Prefix, mi.static.Gateway)
		return
	}
	m.trace(kDHCPStart, "iface=%s", mi.Name())
	ds := m.startSpan(kSpanDHCP)
	ds.SetAttr("iface", mi.Name())
	err := mi.dhcpc.Acquire(func(l dhcp.Lease, err error) {
		if err != nil {
			ds.Fail(err)
			if done != nil {
				done(fmt.Errorf("mip: acquiring care-of address: %w", err))
			}
			return
		}
		ds.SetAttr("addr", l.Addr.String())
		ds.Done()
		m.trace(kDHCPDone, "iface=%s addr=%v", mi.Name(), l.Addr)
		finish(l.Addr, l.Prefix, l.Gateway)
	})
	if err != nil {
		ds.Fail(err)
		if done != nil {
			done(err)
		}
	}
}

// Activate makes a prepared interface the active one — "merely changes
// its route and registers the new address with its home agent", the
// paper's hot-switch step — and registers its address as the care-of.
func (m *MobileHost) Activate(mi *ManagedIface, done func(error)) {
	if !mi.ready || !mi.ifc.Up() {
		if done != nil {
			done(ErrIfaceNotReady)
		}
		return
	}
	rs := m.startSpan(kSpanRoute)
	rs.SetAttr("iface", mi.Name())
	m.host.Loop().Schedule(m.jit(m.cfg.RouteChangeDelay), func() {
		m.active = mi
		m.atHome = m.cfg.HomePrefix.Contains(mi.addr) && mi.addr == m.cfg.HomeAddr
		m.host.InvalidateRoutes()
		m.switchDefaultRoute(mi)
		rs.Done()
		m.trace(kRouteSwitched, "iface=%s", mi.Name())
		m.notifyLink(mi)
		if m.atHome {
			m.careOf = ip.Addr{}
			if m.registered {
				m.deregister(done)
				return
			}
			if done != nil {
				done(nil)
			}
			return
		}
		m.register(mi.addr, m.cfg.Lifetime, done)
	})
}

// SwitchAddress changes the care-of address on the active interface to a
// new address on the same subnet — the paper's first experiment, measuring
// the minimal software overhead of a switch.
func (m *MobileHost) SwitchAddress(newAddr ip.Addr, done func(error)) {
	mi := m.active
	if mi == nil {
		if done != nil {
			done(ErrNoActiveIface)
		}
		return
	}
	m.stats.AddressSwitches++
	sp := m.startSpan(kSpanAddrSwitch)
	sp.SetAttr("old", mi.addr.String())
	sp.SetAttr("new", newAddr.String())
	finish := func(err error) {
		sp.Fail(err)
		if done != nil {
			done(err)
		}
	}
	m.trace(kAddrSwitchStart, "old=%v new=%v", mi.addr, newAddr)
	cs := m.startSpan(kSpanConfigure)
	m.host.Loop().Schedule(m.jit(m.cfg.ConfigureDelay), func() {
		mi.ifc.SetAddr(newAddr, mi.prefix) // the old address stops receiving here
		mi.addr = newAddr
		cs.Done()
		m.trace(kAddrSwitchConfig, "addr=%v", newAddr)
		rs := m.startSpan(kSpanRoute)
		m.host.Loop().Schedule(m.jit(m.cfg.RouteChangeDelay), func() {
			rs.Done()
			m.trace(kAddrSwitchRoute, "")
			m.register(newAddr, m.cfg.Lifetime, finish)
		})
	})
}

// ColdSwitch tears down the active interface before bringing up the new
// one on a foreign network: delete the old routes, take the device down,
// bring the new device up, address and route it, and register — the
// paper's cold-switch sequence, with its full loss window.
func (m *MobileHost) ColdSwitch(to *ManagedIface, done func(error)) {
	m.coldSwitch(to, done, func(hdone func(error)) { m.ConnectForeign(to, hdone) })
}

// ColdSwitchHome is ColdSwitch toward the home subnet: the new interface
// comes up with the home address and the host deregisters.
func (m *MobileHost) ColdSwitchHome(to *ManagedIface, gateway ip.Addr, done func(error)) {
	m.coldSwitch(to, done, func(hdone func(error)) { m.ConnectHome(to, gateway, hdone) })
}

func (m *MobileHost) coldSwitch(to *ManagedIface, done func(error), connect func(func(error))) {
	from := m.active
	m.stats.ColdSwitches++
	sp := m.startSpan(kSpanHandoffCold)
	sp.SetAttr("from", nameOf(from))
	sp.SetAttr("to", to.Name())
	m.trace(kColdStart, "from=%s to=%s", nameOf(from), to.Name())
	m.host.Loop().Schedule(m.jit(m.cfg.RouteChangeDelay), func() {
		if from != nil {
			m.teardown(from)
		}
		connect(func(err error) {
			sp.Fail(err)
			m.trace(kColdDone, "err=%v", err)
			if done != nil {
				done(err)
			}
		})
	})
}

// HotSwitch moves the active role to an interface that is already up and
// prepared, keeping the old interface up until the switch completes.
func (m *MobileHost) HotSwitch(to *ManagedIface, done func(error)) {
	m.stats.HotSwitches++
	sp := m.startSpan(kSpanHandoffHot)
	sp.SetAttr("from", nameOf(m.active))
	sp.SetAttr("to", to.Name())
	m.trace(kHotStart, "from=%s to=%s", nameOf(m.active), to.Name())
	m.Activate(to, func(err error) {
		sp.Fail(err)
		m.trace(kHotDone, "err=%v", err)
		if done != nil {
			done(err)
		}
	})
}

// Disconnect takes an interface down (out of coverage, card ejected).
func (m *MobileHost) Disconnect(mi *ManagedIface) {
	m.teardown(mi)
	if m.active == mi {
		m.active = nil
	}
}

func (m *MobileHost) teardown(mi *ManagedIface) {
	if mi.dhcpc != nil {
		mi.dhcpc.Stop()
	}
	if arp := mi.ifc.ARP(); arp != nil {
		arp.Unpublish(m.cfg.HomeAddr) // foreign-agent mode publication
	}
	if m.active == mi {
		m.faAddr = ip.Addr{}
		m.host.InvalidateRoutes()
	}
	m.host.Routes().DeleteIface(mi.ifc)
	mi.ifc.Device().BringDown()
	mi.ifc.SetAddr(ip.Unspecified, ip.Prefix{})
	mi.addr = ip.Addr{}
	mi.ready = false
	m.trace(kIfaceDown, "iface=%s", mi.Name())
}

// installRoutes installs connected + default routes for the active iface.
func (m *MobileHost) installRoutes(mi *ManagedIface) {
	m.host.Routes().Add(stack.Route{Dst: mi.prefix, Iface: mi.ifc, Metric: 10})
	m.switchDefaultRoute(mi)
}

// switchDefaultRoute points the default route at mi.
func (m *MobileHost) switchDefaultRoute(mi *ManagedIface) {
	m.host.Routes().Delete(ip.Prefix{})
	if !mi.gateway.IsUnspecified() {
		m.host.AddDefaultRoute(mi.gateway, mi.ifc)
	} else {
		m.host.Routes().Add(stack.Route{Dst: ip.Prefix{}, Iface: mi.ifc})
	}
}

func nameOf(mi *ManagedIface) string {
	if mi == nil {
		return "<none>"
	}
	return mi.Name()
}

// notifyLink delivers a LinkChange to the upper layers.
func (m *MobileHost) notifyLink(mi *ManagedIface) {
	if m.OnLinkChange == nil {
		return
	}
	var medium link.Medium
	if dev := mi.ifc.Device(); dev != nil && dev.Network() != nil {
		medium = dev.Network().Medium()
	}
	m.OnLinkChange(LinkChange{Iface: mi.Name(), Medium: medium, CareOf: mi.addr, AtHome: m.atHome})
}

// --- Registration -------------------------------------------------------

// register sends a registration request for careOf and retries until a
// reply arrives or the attempt times out.
func (m *MobileHost) register(careOf ip.Addr, lifetime time.Duration, done func(error)) {
	m.cancelPending()
	m.careOf = careOf
	m.atHome = false
	m.faAddr = ip.Addr{} // collocated care-of mode
	m.host.InvalidateRoutes()
	m.rebindRegSock(careOf)
	m.regID++
	req := &RegRequest{
		Lifetime:  uint16(lifetime / time.Second),
		HomeAddr:  m.cfg.HomeAddr,
		HomeAgent: m.cfg.HomeAgent,
		CareOf:    careOf,
		ID:        m.regID,
	}
	m.pending = &regAttempt{req: req, done: done, span: m.startSpan(kSpanRegAttempt)}
	m.pending.span.SetAttr("careof", careOf.String())
	m.sendPending()
}

// deregister clears the binding at the home agent (lifetime zero).
func (m *MobileHost) deregister(done func(error)) {
	m.cancelPending()
	m.rebindRegSock(m.cfg.HomeAddr)
	m.regID++
	req := &RegRequest{
		Lifetime:  0,
		HomeAddr:  m.cfg.HomeAddr,
		HomeAgent: m.cfg.HomeAgent,
		CareOf:    m.cfg.HomeAddr,
		ID:        m.regID,
	}
	m.pending = &regAttempt{req: req, done: done, span: m.startSpan(kSpanRegAttempt)}
	m.pending.span.SetAttr("dereg", "true")
	m.sendPending()
}

func (m *MobileHost) cancelPending() {
	m.regTimer.Stop()
	m.reregT.Stop()
	if m.pending != nil && m.pending.span.Open() {
		m.pending.span.SetAttr("result", "cancelled")
		m.pending.span.Done()
	}
	m.pending = nil
}

// rebindRegSock binds the registration socket to the current (care-of or
// home) address so requests go out in the local role and replies come
// straight back, never through the tunnel.
func (m *MobileHost) rebindRegSock(addr ip.Addr) {
	if m.regSock != nil {
		m.regSock.Close()
		m.regSock = nil
	}
	sock, err := m.ts.UDP(addr, Port, m.regInput)
	if err == nil {
		m.regSock = sock
	}
}

func (m *MobileHost) sendPending() {
	p := m.pending
	if p == nil || m.regSock == nil {
		return
	}
	p.tries++
	if p.tries > m.cfg.RegMaxRetries {
		m.stats.RegTimeouts++
		m.trace(kRegTimeout, "id=%d", p.req.ID)
		p.span.SetAttr("result", "timeout")
		p.span.Done()
		m.pending = nil
		if p.done != nil {
			p.done(ErrRegistrationTimeout)
		}
		return
	}
	// Every transmission carries a fresh identification: if a reply is
	// lost, the retransmission must not look like a replay to the home
	// agent's identification check.
	if p.tries > 1 {
		m.regID++
		p.req.ID = m.regID
		m.stats.RegRetransmits++
	} else {
		p.firstSent = m.host.Loop().Now()
	}
	m.stats.RegRequestsSent++
	kind := kRegRequestSent
	if p.req.IsDeregistration() {
		kind = kRegDeregSent
	}
	p.span.Attrf("tries", "%d", p.tries)
	m.trace(kind, "careof=%v id=%d try=%d", p.req.CareOf, p.req.ID, p.tries)
	dst := p.dst
	if dst.IsUnspecified() {
		dst = m.cfg.HomeAgent
	}
	m.regSock.SendTo(dst, Port, p.req.Marshal())
	m.regTimer = m.host.Loop().Schedule(m.cfg.RegRetryInterval, func() {
		if m.pending == p {
			m.sendPending()
		}
	})
}

func (m *MobileHost) regInput(d transport.Datagram) {
	typ, err := MessageType(d.Payload)
	if err != nil || typ != TypeRegReply {
		m.stats.DropMalformed++
		return
	}
	reply, err := UnmarshalRegReply(d.Payload)
	if err != nil {
		m.stats.DropMalformed++
		return
	}
	p := m.pending
	if p == nil || reply.ID != p.req.ID {
		m.stats.DropStaleReply++
		return
	}
	m.pending = nil
	m.regTimer.Stop()
	m.trace(kRegReplyReceived, "%s lifetime=%ds id=%d", CodeString(reply.Code), reply.Lifetime, reply.ID)
	if !reply.Accepted() {
		m.stats.RegDenied++
		p.span.SetAttr("result", CodeString(reply.Code))
		p.span.Done()
		if p.done != nil {
			p.done(fmt.Errorf("%w: %s", ErrRegistrationDenied, CodeString(reply.Code)))
		}
		return
	}
	if p.req.IsDeregistration() {
		m.registered = false
		m.stats.Deregistrations++
		p.span.SetAttr("result", "deregistered")
		p.span.Done()
		if m.OnDeregistered != nil {
			m.OnDeregistered()
		}
	} else {
		wasRenewal := m.registered
		m.registered = true
		m.stats.Registrations++
		m.regLatency.Observe(m.host.Loop().Now().Sub(p.firstSent))
		if wasRenewal {
			m.stats.Renewals++
		}
		// The accepted binding re-arms the tunnel: mark the instant the
		// datapath to the new care-of address is live.
		ts := m.cfg.Tracer.StartChild(p.span, m.host.Name(), kSpanTunnelUp)
		ts.SetAttr("careof", p.req.CareOf.String())
		ts.Done()
		p.span.SetAttr("result", "accepted")
		p.span.Done()
		m.scheduleRenewal(time.Duration(reply.Lifetime) * time.Second)
		if m.OnRegistered != nil {
			m.OnRegistered(p.req.CareOf)
		}
	}
	if p.done != nil {
		p.done(nil)
	}
}

// scheduleRenewal re-registers at three quarters of the granted lifetime.
func (m *MobileHost) scheduleRenewal(granted time.Duration) {
	m.reregT.Stop()
	if granted == 0 {
		return
	}
	m.reregT = m.host.Loop().Schedule(granted*3/4, func() {
		switch {
		case !m.registered || m.atHome:
		case !m.faAddr.IsUnspecified():
			m.trace(kRegRenew, "via-fa=%v", m.faAddr)
			m.registerViaFA(m.faAddr, nil)
		case !m.careOf.IsUnspecified():
			m.trace(kRegRenew, "careof=%v", m.careOf)
			m.register(m.careOf, m.cfg.Lifetime, nil)
		}
	})
}

// --- Policy probing (dynamic Mobile Policy Table updates) ---------------

// ProbeTriangle tests whether the triangle-route optimization works toward
// ch from the current foreign network — the paper's "failed attempts to
// ping a correspondent host" detection — and caches the result in the
// Mobile Policy Table: PolicyTriangle on success, PolicyTunnel on failure.
func (m *MobileHost) ProbeTriangle(ch ip.Addr, timeout time.Duration, done func(ok bool)) {
	prior := m.policy.Lookup(ch)
	m.policy.SetHost(ch, PolicyTriangle)
	m.trace(kProbeStart, "ch=%v", ch)
	m.host.ICMP().Ping(ch, m.cfg.HomeAddr, 8, timeout, func(r stack.PingResult) {
		ok := !r.TimedOut && !r.Unreachable
		if ok {
			m.policy.SetHost(ch, PolicyTriangle)
		} else {
			// Revert to the safe policy and remember it.
			if prior == PolicyTriangle {
				prior = PolicyTunnel
			}
			m.policy.SetHost(ch, PolicyTunnel)
		}
		m.trace(kProbeDone, "ch=%v ok=%v", ch, ok)
		if done != nil {
			done(ok)
		}
	})
}

// --- The route-lookup override -------------------------------------------

// routeLookup is the paper's modified ip_rt_route(). Packets whose source
// is bound to a specific local address are outside the scope of mobile IP
// and follow the unchanged routing table. Packets with an unspecified
// source, or bound to the home address, are subject to mobile IP: at home
// they route normally (the home address is just the interface address);
// away, the Mobile Policy Table picks tunnel, triangle, encapsulated-
// direct, or plain-direct treatment.
func (m *MobileHost) routeLookup(dst, boundSrc ip.Addr) (stack.RouteDecision, error) {
	if !boundSrc.IsUnspecified() && boundSrc != m.cfg.HomeAddr {
		// Outside the scope of mobile IP (local role, VIF outer packets,
		// mobile-aware applications).
		return m.host.DefaultRouteLookup(dst, boundSrc)
	}
	if m.host.IsLocalAddr(dst) && !dst.IsBroadcast() && !dst.IsMulticast() {
		return m.host.DefaultRouteLookup(dst, boundSrc)
	}
	if dst.IsMulticast() {
		// Multicast is joined via the visited network — the local role
		// (Section 5.2) — never tunneled through the home agent.
		return m.host.DefaultRouteLookup(dst, boundSrc)
	}
	if !m.faAddr.IsUnspecified() && m.active != nil {
		// Foreign-agent mode: the agent is the default router and the
		// mobile host's only connection; packets go out bare with the
		// home source, and the agent handles the rest.
		return stack.RouteDecision{Iface: m.active.ifc, Src: m.cfg.HomeAddr, NextHop: m.faAddr}, nil
	}
	if m.atHome || m.careOf.IsUnspecified() {
		dec, err := m.host.DefaultRouteLookup(dst, boundSrc)
		if err != nil {
			return dec, err
		}
		if boundSrc.IsUnspecified() && m.atHome {
			dec.Src = m.cfg.HomeAddr
		}
		return dec, nil
	}
	switch m.policy.Lookup(dst) {
	case PolicyTriangle:
		dec, err := m.host.DefaultRouteLookup(dst, ip.Unspecified)
		if err != nil {
			return dec, err
		}
		dec.Src = m.cfg.HomeAddr
		return dec, nil
	case PolicyEncapDirect:
		return stack.RouteDecision{Iface: m.tunDirect.Iface(), Src: m.cfg.HomeAddr, NextHop: dst}, nil
	case PolicyDirect:
		return m.host.DefaultRouteLookup(dst, ip.Unspecified)
	default: // PolicyTunnel
		return stack.RouteDecision{Iface: m.tunHA.Iface(), Src: m.cfg.HomeAddr, NextHop: dst}, nil
	}
}

// MakeSmartCorrespondent equips an ordinary host with transparent IP-in-IP
// decapsulation (as "recent Linux development kernels" have, per the
// paper), making the encapsulated-direct optimization usable toward it.
func MakeSmartCorrespondent(h *stack.Host) *tunnel.Endpoint {
	primary := func() (ip.Addr, bool) {
		for _, ifc := range h.Ifaces() {
			if !ifc.IsVirtual() && !ifc.Addr().IsUnspecified() {
				return ifc.Addr(), true
			}
		}
		return ip.Addr{}, false
	}
	return tunnel.New(h, "tunl0", primary, func(*ip.Packet) (ip.Addr, bool) { return ip.Addr{}, false })
}

// jit adds ~8% of calibrated variance to a charged software delay, so
// measured phase durations have realistic (non-degenerate) deviations.
func (m *MobileHost) jit(d time.Duration) time.Duration {
	return m.host.Loop().Jitter(d, d/12)
}

// AddSimultaneousBinding registers an additional care-of address with the
// simultaneous-bindings flag, keeping existing bindings active; the home
// agent then duplicates tunneled packets to every registered address. Used
// with overlapping coverage for smooth handoffs: prepare the new interface,
// add its address as a simultaneous binding, and only then retire the old
// one (a plain registration for the new address drops the extras again).
// The address must already be configured on one of the host's interfaces
// so the reply can arrive.
func (m *MobileHost) AddSimultaneousBinding(careOf ip.Addr, done func(error)) {
	m.regID++
	req := &RegRequest{
		Flags:     FlagSimultaneous,
		Lifetime:  uint16(m.cfg.Lifetime / time.Second),
		HomeAddr:  m.cfg.HomeAddr,
		HomeAgent: m.cfg.HomeAgent,
		CareOf:    careOf,
		ID:        m.regID,
	}
	m.oneShotExchange(req, careOf, done)
}

// oneShotExchange runs a self-contained registration exchange on its own
// socket (bound to the request's care-of address), independent of the main
// pending-registration machinery.
func (m *MobileHost) oneShotExchange(req *RegRequest, bound ip.Addr, done func(error)) {
	var sock *transport.UDPSocket
	var timer sim.Timer
	finished := false
	sp := m.startSpan(kSpanRegAttempt)
	sp.SetAttr("careof", req.CareOf.String())
	if req.Simultaneous() {
		sp.SetAttr("simultaneous", "true")
	}
	finish := func(err error) {
		if finished {
			return
		}
		finished = true
		timer.Stop()
		if sock != nil {
			sock.Close()
		}
		sp.Fail(err)
		if done != nil {
			done(err)
		}
	}
	sock, err := m.ts.UDP(bound, Port, func(d transport.Datagram) {
		typ, err := MessageType(d.Payload)
		if err != nil || typ != TypeRegReply {
			m.stats.DropMalformed++
			return
		}
		reply, err := UnmarshalRegReply(d.Payload)
		if err != nil || reply.ID != req.ID {
			m.stats.DropStaleReply++
			return
		}
		m.trace(kRegReplyReceived, "%s lifetime=%ds id=%d", CodeString(reply.Code), reply.Lifetime, reply.ID)
		if !reply.Accepted() {
			m.stats.RegDenied++
			finish(fmt.Errorf("%w: %s", ErrRegistrationDenied, CodeString(reply.Code)))
			return
		}
		finish(nil)
	})
	if err != nil {
		finish(err)
		return
	}
	tries := 0
	var attempt func()
	attempt = func() {
		if finished {
			return
		}
		tries++
		if tries > m.cfg.RegMaxRetries {
			finish(ErrRegistrationTimeout)
			return
		}
		if tries > 1 {
			// Fresh identification per transmission (see sendPending).
			m.regID++
			req.ID = m.regID
			m.stats.RegRetransmits++
		}
		m.stats.RegRequestsSent++
		sp.Attrf("tries", "%d", tries)
		m.trace(kRegRequestSent, "careof=%v id=%d try=%d simultaneous=%v", req.CareOf, req.ID, tries, req.Simultaneous())
		sock.SendTo(m.cfg.HomeAgent, Port, req.Marshal())
		timer = m.host.Loop().Schedule(m.cfg.RegRetryInterval, attempt)
	}
	attempt()
}
