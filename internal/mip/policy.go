package mip

import (
	"fmt"
	"sort"
	"strings"

	"mosquitonet/internal/ip"
)

// Policy is a Mobile Policy Table verdict for packets a mobile host sends
// while away from home. The paper's Section 3.2 lays out the three
// decisions behind these: tunnel or direct, encapsulated or not, home or
// local source address.
type Policy int

// Policies, from most conservative to most optimized.
const (
	// PolicyTunnel is the basic protocol: reverse-tunnel through the home
	// agent. Simple and always works.
	PolicyTunnel Policy = iota
	// PolicyTriangle sends directly to the correspondent with the home
	// address as source — better route, no encapsulation, but dropped by
	// routers that forbid transit traffic.
	PolicyTriangle
	// PolicyEncapDirect encapsulates directly to a smart correspondent
	// that can decapsulate IP-in-IP: better route, survives transit
	// filters (the outer source is the local care-of address), but keeps
	// the 20-byte overhead.
	PolicyEncapDirect
	// PolicyDirect sends bare packets with the care-of source — the local
	// role; no mobility support at all.
	PolicyDirect
)

func (p Policy) String() string {
	switch p {
	case PolicyTunnel:
		return "tunnel"
	case PolicyTriangle:
		return "triangle"
	case PolicyEncapDirect:
		return "encap-direct"
	case PolicyDirect:
		return "direct"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

type policyEntry struct {
	prefix ip.Prefix
	policy Policy
}

// PolicyTable is the Mobile Policy Table: per-destination-prefix sending
// policies, consulted by the mobile host's route-lookup override alongside
// the ordinary routing table. The kernel routing tables stay untouched.
type PolicyTable struct {
	entries []policyEntry
	def     Policy

	// onChange fires after every mutation (Set, SetDefault, Delete). The
	// mobile host hooks it to invalidate the stack's route-decision
	// cache: cached decisions embed policy verdicts, so a policy edit
	// must take effect before the very next packet.
	onChange func()

	lookups uint64
	hits    uint64 // lookups resolved by an explicit entry (not the default)
}

// SetOnChange installs the mutation callback (nil to remove).
func (t *PolicyTable) SetOnChange(fn func()) { t.onChange = fn }

func (t *PolicyTable) changed() {
	if t.onChange != nil {
		t.onChange()
	}
}

// NewPolicyTable creates a table whose default policy is def.
func NewPolicyTable(def Policy) *PolicyTable {
	return &PolicyTable{def: def}
}

// Default returns the table's default policy.
func (t *PolicyTable) Default() Policy { return t.def }

// SetDefault changes the default policy.
func (t *PolicyTable) SetDefault(p Policy) {
	t.def = p
	t.changed()
}

// Set installs or replaces the policy for a destination prefix.
func (t *PolicyTable) Set(prefix ip.Prefix, p Policy) {
	prefix = prefix.Normalize()
	for i := range t.entries {
		if t.entries[i].prefix == prefix {
			t.entries[i].policy = p
			t.changed()
			return
		}
	}
	t.entries = append(t.entries, policyEntry{prefix, p})
	sort.SliceStable(t.entries, func(i, j int) bool {
		return t.entries[i].prefix.Bits > t.entries[j].prefix.Bits
	})
	t.changed()
}

// SetHost installs a host-specific (/32) policy — how probe results for a
// single correspondent are cached.
func (t *PolicyTable) SetHost(addr ip.Addr, p Policy) {
	t.Set(ip.Prefix{Addr: addr, Bits: 32}, p)
}

// Delete removes the entry for an exact prefix.
func (t *PolicyTable) Delete(prefix ip.Prefix) bool {
	prefix = prefix.Normalize()
	for i := range t.entries {
		if t.entries[i].prefix == prefix {
			t.entries = append(t.entries[:i], t.entries[i+1:]...)
			t.changed()
			return true
		}
	}
	return false
}

// Lookup returns the policy for dst: the longest matching prefix, or the
// default.
func (t *PolicyTable) Lookup(dst ip.Addr) Policy {
	t.lookups++
	for _, e := range t.entries {
		if e.prefix.Contains(dst) {
			t.hits++
			return e.policy
		}
	}
	return t.def
}

// Lookups returns the total number of Lookup calls.
func (t *PolicyTable) Lookups() uint64 { return t.lookups }

// Hits returns how many lookups matched an explicit entry rather than
// falling through to the default policy.
func (t *PolicyTable) Hits() uint64 { return t.hits }

// Len returns the number of explicit entries.
func (t *PolicyTable) Len() int { return len(t.entries) }

// String renders the table, most-specific first.
func (t *PolicyTable) String() string {
	var b strings.Builder
	for _, e := range t.entries {
		fmt.Fprintf(&b, "%v -> %v\n", e.prefix, e.policy)
	}
	fmt.Fprintf(&b, "default -> %v\n", t.def)
	return b.String()
}
