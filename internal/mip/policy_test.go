package mip

import (
	"strings"
	"testing"
	"testing/quick"

	"mosquitonet/internal/ip"
)

func TestPolicyDefault(t *testing.T) {
	pt := NewPolicyTable(PolicyTunnel)
	if pt.Lookup(ip.MustParseAddr("1.2.3.4")) != PolicyTunnel {
		t.Fatal("default not applied")
	}
	pt.SetDefault(PolicyTriangle)
	if pt.Default() != PolicyTriangle || pt.Lookup(ip.MustParseAddr("1.2.3.4")) != PolicyTriangle {
		t.Fatal("SetDefault ineffective")
	}
}

func TestPolicyLongestPrefixWins(t *testing.T) {
	pt := NewPolicyTable(PolicyTunnel)
	pt.Set(ip.MustParsePrefix("36.0.0.0/8"), PolicyTriangle)
	pt.Set(ip.MustParsePrefix("36.8.0.0/16"), PolicyEncapDirect)
	pt.SetHost(ip.MustParseAddr("36.8.0.99"), PolicyDirect)

	cases := map[string]Policy{
		"36.8.0.99":  PolicyDirect,
		"36.8.0.1":   PolicyEncapDirect,
		"36.135.0.1": PolicyTriangle,
		"128.1.1.1":  PolicyTunnel,
	}
	for addr, want := range cases {
		if got := pt.Lookup(ip.MustParseAddr(addr)); got != want {
			t.Errorf("Lookup(%s) = %v, want %v", addr, got, want)
		}
	}
}

func TestPolicyReplaceAndDelete(t *testing.T) {
	pt := NewPolicyTable(PolicyTunnel)
	p := ip.MustParsePrefix("36.8.0.0/16")
	pt.Set(p, PolicyTriangle)
	pt.Set(p, PolicyEncapDirect) // replace
	if pt.Len() != 1 {
		t.Fatalf("Len = %d after replace", pt.Len())
	}
	if pt.Lookup(ip.MustParseAddr("36.8.1.1")) != PolicyEncapDirect {
		t.Fatal("replacement ineffective")
	}
	if !pt.Delete(p) {
		t.Fatal("Delete returned false")
	}
	if pt.Delete(p) {
		t.Fatal("second Delete returned true")
	}
	if pt.Lookup(ip.MustParseAddr("36.8.1.1")) != PolicyTunnel {
		t.Fatal("entry survived Delete")
	}
}

func TestPolicyString(t *testing.T) {
	pt := NewPolicyTable(PolicyTunnel)
	pt.SetHost(ip.MustParseAddr("1.2.3.4"), PolicyTriangle)
	s := pt.String()
	if !strings.Contains(s, "1.2.3.4/32 -> triangle") || !strings.Contains(s, "default -> tunnel") {
		t.Fatalf("String = %q", s)
	}
	for p, want := range map[Policy]string{
		PolicyTunnel: "tunnel", PolicyTriangle: "triangle",
		PolicyEncapDirect: "encap-direct", PolicyDirect: "direct", Policy(9): "policy(9)",
	} {
		if p.String() != want {
			t.Errorf("%d -> %q", p, p.String())
		}
	}
}

// Property: for any set of prefixes covering an address, Lookup returns the
// policy of the longest one.
func TestPropertyPolicyLPM(t *testing.T) {
	f := func(addr ip.Addr, lengths []uint8) bool {
		pt := NewPolicyTable(PolicyTunnel)
		longest := -1
		for _, l := range lengths {
			bits := int(l % 33)
			pt.Set(ip.Prefix{Addr: addr, Bits: bits}, Policy(bits%3+1))
			if bits > longest {
				longest = bits
			}
		}
		if longest < 0 {
			return pt.Lookup(addr) == PolicyTunnel
		}
		return pt.Lookup(addr) == Policy(longest%3+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
