package mip

import (
	"time"

	"mosquitonet/internal/ip"
	"mosquitonet/internal/sim"
	"mosquitonet/internal/stack"
)

// This file implements the paper's Section 6 future-work item: "we plan to
// experiment with techniques for determining when to switch between
// networks". The Roamer watches the active interface's connectivity by
// pinging its first-hop gateway in the local role; after a run of failed
// probes it declares the link dead and fails over to the next candidate
// interface, preferring earlier entries of its candidate list (e.g. wire
// before radio). When a preferred interface later becomes usable again, a
// periodic upgrade probe switches back.

// RoamerConfig tunes the monitor.
type RoamerConfig struct {
	// ProbeInterval is how often the active link is probed (default 2s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe (default: ProbeInterval, capped so
	// probes never overlap).
	ProbeTimeout time.Duration
	// FailThreshold is how many consecutive probe failures declare the
	// link dead (default 3).
	FailThreshold int
	// UpgradeInterval is how often the roamer tries to move back to a
	// higher-preference candidate (0 disables upgrade attempts).
	UpgradeInterval time.Duration
}

func (c RoamerConfig) withDefaults() RoamerConfig {
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.ProbeTimeout == 0 || c.ProbeTimeout > c.ProbeInterval {
		c.ProbeTimeout = c.ProbeInterval
	}
	if c.FailThreshold == 0 {
		c.FailThreshold = 3
	}
	return c
}

// Candidate pairs a managed interface with how to connect it.
type Candidate struct {
	Iface *ManagedIface
	// Home marks the interface that attaches to the home subnet; Gateway
	// is required for it.
	Home    bool
	Gateway ip.Addr
}

// RoamerStats counts monitor activity.
type RoamerStats struct {
	Probes     uint64
	ProbeFails uint64
	Failovers  uint64
	Upgrades   uint64
}

// Roamer automatically fails over between a mobile host's interfaces.
type Roamer struct {
	m          *MobileHost
	cfg        RoamerConfig
	candidates []Candidate

	running   bool
	switching bool
	fails     int
	probeT    sim.Timer
	upgradeT  sim.Timer
	stats     RoamerStats

	// OnFailover and OnUpgrade report automatic switches; optional.
	OnFailover func(from, to *ManagedIface)
	OnUpgrade  func(from, to *ManagedIface)
}

// NewRoamer creates a monitor over the given candidates, ordered
// best-first. It does not start probing until Start.
func NewRoamer(m *MobileHost, cfg RoamerConfig, candidates []Candidate) *Roamer {
	return &Roamer{m: m, cfg: cfg.withDefaults(), candidates: candidates}
}

// Stats returns a snapshot of the counters.
func (r *Roamer) Stats() RoamerStats { return r.stats }

// Start begins monitoring the active interface.
func (r *Roamer) Start() {
	if r.running {
		return
	}
	r.running = true
	r.fails = 0
	r.scheduleProbe()
	r.scheduleUpgrade()
}

// Stop halts monitoring.
func (r *Roamer) Stop() {
	r.running = false
	r.probeT.Stop()
	r.upgradeT.Stop()
}

func (r *Roamer) scheduleProbe() {
	if !r.running {
		return
	}
	r.probeT = r.m.host.Loop().Schedule(r.cfg.ProbeInterval, r.probe)
}

func (r *Roamer) scheduleUpgrade() {
	if !r.running || r.cfg.UpgradeInterval == 0 {
		return
	}
	r.upgradeT = r.m.host.Loop().Schedule(r.cfg.UpgradeInterval, r.tryUpgrade)
}

// probe pings the active interface's gateway in the local role.
func (r *Roamer) probe() {
	defer r.scheduleProbe()
	if r.switching {
		return
	}
	active := r.m.Active()
	if active == nil || !active.ifc.Up() {
		r.noteFailure()
		return
	}
	gw := active.gateway
	if gw.IsUnspecified() {
		return // nothing to probe against (isolated link)
	}
	bound := active.addr
	if bound.IsUnspecified() {
		bound = r.m.cfg.HomeAddr
	}
	r.stats.Probes++
	r.m.host.ICMP().Ping(gw, bound, 8, r.cfg.ProbeTimeout, func(res stack.PingResult) {
		if res.TimedOut || res.Unreachable {
			r.noteFailure()
			return
		}
		r.fails = 0
	})
}

func (r *Roamer) noteFailure() {
	r.stats.ProbeFails++
	r.fails++
	r.m.trace(kRoamerProbeFailed, "consecutive=%d", r.fails)
	if r.fails >= r.cfg.FailThreshold {
		r.fails = 0
		r.failover()
	}
}

// failover switches to the best candidate other than the (dead) active
// interface.
func (r *Roamer) failover() {
	from := r.m.Active()
	for _, c := range r.candidates {
		if c.Iface == from {
			continue
		}
		r.stats.Failovers++
		r.m.trace(kRoamerFailover, "from=%s to=%s", nameOf(from), c.Iface.Name())
		r.connect(c, func(err error) {
			if err == nil && r.OnFailover != nil {
				r.OnFailover(from, c.Iface)
			}
		})
		return
	}
	r.m.trace(kRoamerFailover, "no alternative candidate")
}

// tryUpgrade attempts to move back to a higher-preference candidate than
// the active one by preparing it in the background (a hot switch, so a
// failed attempt does not disturb connectivity).
func (r *Roamer) tryUpgrade() {
	defer r.scheduleUpgrade()
	if r.switching || !r.running {
		return
	}
	active := r.m.Active()
	best := r.rank(active)
	if best < 0 {
		return
	}
	c := r.candidates[best]
	from := active
	r.switching = true
	c.Iface.ifc.Device().BringUp(func() {
		if c.Home {
			// Upgrading to home is a cold switch; the paper's transparency
			// machinery keeps connections alive through it regardless.
			r.m.ColdSwitchHome(c.Iface, c.Gateway, func(err error) {
				r.finishUpgrade(from, c.Iface, err)
			})
			return
		}
		r.m.Prepare(c.Iface, func(err error) {
			if err != nil {
				r.finishUpgrade(from, c.Iface, err)
				return
			}
			r.m.HotSwitch(c.Iface, func(err error) {
				if err == nil && from != nil {
					r.m.Disconnect(from)
				}
				r.finishUpgrade(from, c.Iface, err)
			})
		})
	})
}

// rank returns the index of the best candidate strictly preferred over the
// active interface whose device could plausibly come up, or -1.
func (r *Roamer) rank(active *ManagedIface) int {
	activeIdx := len(r.candidates)
	for i, c := range r.candidates {
		if c.Iface == active {
			activeIdx = i
			break
		}
	}
	for i, c := range r.candidates {
		if i >= activeIdx {
			return -1
		}
		if c.Iface.ifc.Device().Network() != nil {
			return i
		}
	}
	return -1
}

func (r *Roamer) finishUpgrade(from, to *ManagedIface, err error) {
	r.switching = false
	if err != nil {
		r.m.trace(kRoamerUpgradeFailed, "to=%s err=%v", to.Name(), err)
		return
	}
	r.stats.Upgrades++
	r.m.trace(kRoamerUpgrade, "from=%s to=%s", nameOf(from), to.Name())
	if r.OnUpgrade != nil {
		r.OnUpgrade(from, to)
	}
}

// connect attaches a candidate as appropriate for its kind.
func (r *Roamer) connect(c Candidate, done func(error)) {
	r.switching = true
	finish := func(err error) {
		r.switching = false
		if done != nil {
			done(err)
		}
	}
	if c.Home {
		r.m.ColdSwitchHome(c.Iface, c.Gateway, finish)
		return
	}
	r.m.ColdSwitch(c.Iface, finish)
}
