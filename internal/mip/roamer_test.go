package mip

import (
	"testing"
	"time"

	"mosquitonet/internal/ip"
)

func newRoamerWorld(t *testing.T) (*world, *Roamer) {
	w := newWorld(t, 5)
	r := NewRoamer(w.mh, RoamerConfig{
		ProbeInterval:   500 * time.Millisecond,
		FailThreshold:   2,
		UpgradeInterval: 3 * time.Second,
	}, []Candidate{
		{Iface: w.eth0, Home: true, Gateway: ip.MustParseAddr("10.1.0.1")},
		{Iface: w.eth1},
	})
	return w, r
}

func TestRoamerFailsOverWhenLinkDies(t *testing.T) {
	w, r := newRoamerWorld(t)
	done := false
	w.mh.ConnectHome(w.eth0, ip.MustParseAddr("10.1.0.1"), func(err error) {
		if err != nil {
			t.Fatal(err)
		}
		done = true
	})
	w.run(2 * time.Second)
	if !done {
		t.Fatal("ConnectHome failed")
	}
	var failedFrom, failedTo string
	r.OnFailover = func(from, to *ManagedIface) { failedFrom, failedTo = from.Name(), to.Name() }
	r.Start()
	w.run(3 * time.Second)
	if r.Stats().Failovers != 0 {
		t.Fatal("failover on a healthy link")
	}
	if r.Stats().Probes == 0 {
		t.Fatal("roamer never probed")
	}

	// The home wire dies.
	w.eth0.Iface().Device().Detach()
	w.run(20 * time.Second)

	if r.Stats().Failovers != 1 {
		t.Fatalf("failovers = %d", r.Stats().Failovers)
	}
	if failedFrom != "eth0" || failedTo != "eth1" {
		t.Fatalf("failover %s -> %s", failedFrom, failedTo)
	}
	if w.mh.Active() != w.eth1 || !w.mh.Registered() {
		t.Fatal("not running on the fallback interface")
	}
	if !ip.MustParsePrefix("10.2.0.0/24").Contains(w.mh.CareOf()) {
		t.Fatalf("care-of %v", w.mh.CareOf())
	}

	// Traffic still flows end to end after the automatic switch.
	served, _ := w.udpEchoServer(7)
	cli, _ := w.mhTS.UDP(ip.Unspecified, 0, nil)
	cli.SendTo(ip.MustParseAddr(wCHAddr), 7, []byte("auto-switched"))
	w.run(3 * time.Second)
	if *served != 1 {
		t.Fatal("traffic dead after failover")
	}
	r.Stop()
}

func TestRoamerUpgradesWhenPreferredReturns(t *testing.T) {
	w, r := newRoamerWorld(t)
	done := false
	w.mh.ConnectHome(w.eth0, ip.MustParseAddr("10.1.0.1"), func(error) { done = true })
	w.run(2 * time.Second)
	if !done {
		t.Fatal("setup failed")
	}
	upgraded := false
	r.OnUpgrade = func(from, to *ManagedIface) { upgraded = true }
	r.Start()

	// Kill the wire, fail over to eth1.
	w.eth0.Iface().Device().Detach()
	w.run(20 * time.Second)
	if w.mh.Active() != w.eth1 {
		t.Fatal("failover did not happen")
	}

	// The wire comes back; the upgrade probe should move us home.
	w.eth0.Iface().Device().Attach(w.homeNet)
	w.run(30 * time.Second)
	if !upgraded || r.Stats().Upgrades == 0 {
		t.Fatalf("no upgrade: %+v", r.Stats())
	}
	if w.mh.Active() != w.eth0 || !w.mh.AtHome() {
		t.Fatalf("active=%s atHome=%v after upgrade", w.mh.Active().Name(), w.mh.AtHome())
	}
	if w.mh.Registered() {
		t.Fatal("still registered after returning home")
	}
	r.Stop()
}

func TestRoamerStopHaltsProbing(t *testing.T) {
	w, r := newRoamerWorld(t)
	w.mh.ConnectHome(w.eth0, ip.MustParseAddr("10.1.0.1"), nil)
	w.run(2 * time.Second)
	r.Start()
	w.run(2 * time.Second)
	r.Stop()
	before := r.Stats().Probes
	w.eth0.Iface().Device().Detach() // would trigger failover if running
	w.run(10 * time.Second)
	if r.Stats().Probes != before {
		t.Fatal("probing continued after Stop")
	}
	if r.Stats().Failovers != 0 {
		t.Fatal("failover after Stop")
	}
}

func TestRoamerNoAlternativeStaysPut(t *testing.T) {
	w := newWorld(t, 5)
	r := NewRoamer(w.mh, RoamerConfig{ProbeInterval: 300 * time.Millisecond, FailThreshold: 2},
		[]Candidate{{Iface: w.eth0, Home: true, Gateway: ip.MustParseAddr("10.1.0.1")}})
	done := false
	w.mh.ConnectHome(w.eth0, ip.MustParseAddr("10.1.0.1"), func(error) { done = true })
	w.run(2 * time.Second)
	if !done {
		t.Fatal("setup failed")
	}
	r.Start()
	w.eth0.Iface().Device().Detach()
	w.run(10 * time.Second)
	if r.Stats().Failovers != 0 {
		t.Fatal("failover with no alternative candidate")
	}
	if r.Stats().ProbeFails == 0 {
		t.Fatal("failures not observed")
	}
	r.Stop()
}
