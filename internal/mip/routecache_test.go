package mip

import (
	"testing"
	"time"

	"mosquitonet/internal/ip"
	"mosquitonet/internal/transport"
)

// TestPolicyChangeInvalidatesRouteCache is the stale-decision regression
// test: with the stack's route-decision cache warm on a tunneled flow, a
// Mobile Policy Table change must take effect on the very next packet —
// the cached decision may not serve even one more send.
func TestPolicyChangeInvalidatesRouteCache(t *testing.T) {
	w := newWorld(t, 77)
	served, lastFrom := w.udpEchoServer(9000)
	w.goForeign()
	careOf := w.mh.CareOf()
	if careOf.IsUnspecified() {
		t.Fatal("no care-of address after ConnectForeign")
	}

	sock, err := w.mhTS.UDP(ip.Unspecified, 0, func(transport.Datagram) {})
	if err != nil {
		t.Fatal(err)
	}
	chAddr := ip.MustParseAddr(wCHAddr)

	// Warm the cache: several tunneled sends, all hitting after the first.
	for i := 0; i < 4; i++ {
		if err := sock.SendTo(chAddr, 9000, []byte("warm")); err != nil {
			t.Fatal(err)
		}
		w.run(2 * time.Second)
	}
	if *served != 4 {
		t.Fatalf("served %d warmup probes, want 4", *served)
	}
	if *lastFrom != w.mh.HomeAddr() {
		t.Fatalf("tunneled probe arrived from %v, want home address %v", *lastFrom, w.mh.HomeAddr())
	}
	encapBefore := w.mh.Tunnel().Stats().Encapsulated
	if encapBefore == 0 {
		t.Fatal("warmup traffic did not use the reverse tunnel")
	}
	st := w.mh.Host().RouteCacheStats()
	if st.Hits == 0 {
		t.Fatalf("route cache never hit during warmup: %+v", st)
	}

	// Mid-flow policy change: this correspondent is now local-role
	// (PolicyDirect — bare packets, care-of source, no tunnel).
	w.mh.Policy().SetHost(chAddr, PolicyDirect)

	// The very next packet must reflect the new policy.
	if err := sock.SendTo(chAddr, 9000, []byte("direct")); err != nil {
		t.Fatal(err)
	}
	w.run(2 * time.Second)
	if *served != 5 {
		t.Fatalf("served %d probes after policy change, want 5", *served)
	}
	if *lastFrom != careOf {
		t.Fatalf("post-change probe arrived from %v, want care-of %v — stale cached route decision", *lastFrom, careOf)
	}
	if got := w.mh.Tunnel().Stats().Encapsulated; got != encapBefore {
		t.Fatalf("post-change probe was still tunneled (encapsulated %d -> %d)", encapBefore, got)
	}
}

func TestHomeAgentBindingsMemoized(t *testing.T) {
	w := newWorld(t, 78)
	w.goForeign()

	s1 := w.ha.Bindings()
	s2 := w.ha.Bindings()
	if len(s1) != 1 || &s1[0] != &s2[0] {
		t.Fatal("unchanged binding set must return the identical memoized snapshot")
	}
	gen := w.ha.BindingsGen()

	// A re-registration (renewal) replaces the binding record and must
	// rebuild the snapshot, leaving the old slice intact.
	careOf := s1[0].CareOf
	w.goHome() // deregisters: binding removed
	if w.ha.BindingsGen() == gen {
		t.Fatal("deregistration did not bump the bindings generation")
	}
	s3 := w.ha.Bindings()
	if len(s3) != 0 {
		t.Fatalf("bindings after deregistration: %v", s3)
	}
	if len(s1) != 1 || s1[0].CareOf != careOf {
		t.Fatalf("earlier snapshot mutated: %v", s1)
	}
}
