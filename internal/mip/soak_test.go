package mip

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"mosquitonet/internal/ip"
	"mosquitonet/internal/transport"
)

// TestSoakRandomMovement drives the mobility state machine through a long
// random walk — cold switches, hot switches, same-subnet address changes,
// returns home, connectivity drops — while a TCP-like stream and a UDP
// stream run continuously, checking protocol invariants after every step:
//
//   - away and settled => exactly one binding, matching the care-of address;
//   - at home          => no binding;
//   - the byte stream stays intact and ordered;
//   - the reassembler holds no leaked fragments at quiescence.
func TestSoakRandomMovement(t *testing.T) {
	for _, seed := range []int64{7, 99, 2024} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) { soak(t, seed) })
	}
}

func soak(t *testing.T, seed int64) {
	w := newWorld(t, seed)
	rng := w.loop.Rand()
	home := ip.MustParseAddr(wHomeAddr)

	// Continuous TCP-like stream MH -> CH, written to in bursts.
	var rcvd bytes.Buffer
	w.ch.Listen(ip.Unspecified, 5001, func(c *transport.Conn) {
		c.OnData = func(b []byte) { rcvd.Write(b) }
	})
	var sent bytes.Buffer

	// Start at home so the stream can establish.
	done := false
	w.mh.ConnectHome(w.eth0, ip.MustParseAddr("10.1.0.1"), func(err error) {
		if err != nil {
			t.Fatal(err)
		}
		done = true
	})
	w.run(5 * time.Second)
	if !done {
		t.Fatal("initial home attach failed")
	}
	conn, err := w.mhTS.Connect(ip.Unspecified, ip.MustParseAddr(wCHAddr), 5001)
	if err != nil {
		t.Fatal(err)
	}
	var connErr error
	conn.OnError = func(e error) { connErr = e }
	w.run(3 * time.Second)
	if !conn.Established() {
		t.Fatal("stream not established")
	}

	write := func() {
		chunk := make([]byte, rng.Intn(1200)+1)
		for i := range chunk {
			chunk[i] = byte(rng.Intn(256))
		}
		sent.Write(chunk)
		conn.Write(chunk)
	}

	// The movement schedule: each step picks a random operation.
	nets := []struct {
		name string
		net  string
	}{{"forA", "10.2.0.0/24"}, {"forB", "10.3.0.0/24"}}
	attach := func(i int) {
		w.eth1.Iface().Device().Detach()
		if i == 0 {
			w.eth1.Iface().Device().Attach(w.forA)
		} else {
			w.eth1.Iface().Device().Attach(w.forB)
		}
	}
	settled := true
	for step := 0; step < 40; step++ {
		write()
		op := rng.Intn(5)
		opDone := false
		finish := func(err error) { opDone = true; _ = err }
		var opName string
		switch op {
		case 0: // cold switch to a random foreign net
			i := rng.Intn(2)
			opName = "cold->" + nets[i].name
			attach(i)
			w.mh.ColdSwitch(w.eth1, finish)
		case 1: // return home
			opName = "home"
			w.mh.ColdSwitchHome(w.eth0, ip.MustParseAddr("10.1.0.1"), finish)
		case 2: // same-subnet address switch (only while away and settled)
			if w.mh.AtHome() || !w.mh.Registered() {
				continue
			}
			cur := w.mh.CareOf()
			next := ip.Addr{cur[0], cur[1], cur[2], byte(200 + rng.Intn(50))}
			opName = "addr->" + next.String()
			w.mh.SwitchAddress(next, finish)
		case 3: // brief total connectivity loss, then recover
			opName = "blackout"
			active := w.mh.Active()
			if active == nil {
				continue
			}
			dev := active.Iface().Device()
			dev.BringDown()
			w.run(time.Duration(rng.Intn(2000)) * time.Millisecond)
			if active == w.eth0 {
				w.mh.ColdSwitchHome(w.eth0, ip.MustParseAddr("10.1.0.1"), finish)
			} else {
				w.mh.ColdSwitch(w.eth1, finish)
			}
		case 4: // just run traffic for a while
			opName = "dwell"
			opDone = true
		}
		deadline := w.loop.Now().Add(60 * time.Second)
		for !opDone && w.loop.Now() < deadline {
			w.run(100 * time.Millisecond)
		}
		if !opDone {
			t.Fatalf("step %d (%s): operation stalled", step, opName)
		}
		write()
		w.run(time.Duration(rng.Intn(1500)+200) * time.Millisecond)

		// Invariants at every settled point.
		settled = w.mh.Registered() || w.mh.AtHome()
		if w.mh.AtHome() {
			if _, ok := w.ha.Binding(home); ok && !w.mh.Registered() {
				t.Fatalf("step %d (%s): binding present while at home", step, opName)
			}
		} else if w.mh.Registered() {
			b, ok := w.ha.Binding(home)
			if !ok {
				t.Fatalf("step %d (%s): registered but no binding", step, opName)
			}
			if b.CareOf != w.mh.CareOf() {
				t.Fatalf("step %d (%s): binding %v vs care-of %v", step, opName, b.CareOf, w.mh.CareOf())
			}
		}
	}
	_ = settled

	// A step is allowed to end in a failed state (registration timed out
	// mid-blackout, DHCP unreachable, ...); finish the walk by returning
	// home deterministically, retrying until connectivity is restored.
	recovered := false
	for attempt := 0; attempt < 5 && !recovered; attempt++ {
		homeDone := false
		w.mh.ColdSwitchHome(w.eth0, ip.MustParseAddr("10.1.0.1"), func(err error) {
			homeDone = true
			recovered = err == nil
		})
		deadline := w.loop.Now().Add(60 * time.Second)
		for !homeDone && w.loop.Now() < deadline {
			w.run(100 * time.Millisecond)
		}
	}
	if !recovered {
		t.Fatal("could not recover connectivity at walk end")
	}

	// Drain: the backed-off RTO can be up to 60s after a long blackout;
	// once the first retransmission lands, ACK-clocked recovery finishes
	// the rest within round trips.
	for i := 0; i < 4 && conn.Unacked() > 0; i++ {
		w.run(time.Minute)
	}
	if !bytes.Equal(rcvd.Bytes(), sent.Bytes()) {
		prefix := bytes.HasPrefix(sent.Bytes(), rcvd.Bytes())
		t.Fatalf("stream corrupted: sent %d bytes, received %d, prefix=%v state=%v stats=%+v connErr=%v",
			sent.Len(), rcvd.Len(), prefix, conn.State(), conn.Stats(), connErr)
	}
	if p := w.mh.Host().Reassembler().Pending(); p != 0 {
		t.Fatalf("reassembler leaked %d partial packets", p)
	}
	if conn.Unacked() != 0 {
		t.Fatalf("unacked bytes after drain: %d", conn.Unacked())
	}
}
