package mip

import (
	"testing"
	"time"

	"mosquitonet/internal/dhcp"
	"mosquitonet/internal/ip"
	"mosquitonet/internal/link"
	"mosquitonet/internal/sim"
	"mosquitonet/internal/stack"
	"mosquitonet/internal/trace"
	"mosquitonet/internal/transport"
)

// world is the integration fixture: four subnets joined by one router.
//
//	home 10.1.0.0/24:     router .1, home agent .2, MH home address .7, neighbor .9
//	foreignA 10.2.0.0/24: router .1, DHCP server .2, pool .100+
//	foreignB 10.3.0.0/24: router .1, DHCP server .2, pool .100+
//	chNet 10.4.0.0/24:    router .1, correspondent host .2
type world struct {
	t    *testing.T
	loop *sim.Loop
	tr   *trace.Tracer

	homeNet, forA, forB, chNet *link.Network
	router                     *stack.Host

	ha   *HomeAgent
	ch   *transport.Stack
	mh   *MobileHost
	mhTS *transport.Stack

	eth0 *ManagedIface // static home configuration, wired
	eth1 *ManagedIface // DHCP, wired; attach to forA/forB as tests move it
}

const (
	wHomeAddr = "10.1.0.7"
	wHAAddr   = "10.1.0.2"
	wCHAddr   = "10.4.0.2"
)

// mkHost builds a host with one interface on n.
func mkHost(loop *sim.Loop, n *link.Network, name, cidr, gw string) (*transport.Stack, *stack.Iface) {
	h := stack.NewHost(loop, name, stack.Config{})
	d := link.NewDevice(loop, name+"-eth0", 0, 0)
	d.Attach(n)
	d.BringUp(nil)
	pfx := ip.MustParsePrefix(cidr)
	slash := len(cidr) - 3
	ifc := h.AddIface("eth0", d, ip.MustParseAddr(cidr[:slash]), pfx, stack.IfaceOpts{})
	h.ConnectRoute(ifc)
	if gw != "" {
		h.AddDefaultRoute(ip.MustParseAddr(gw), ifc)
	}
	loop.RunFor(0) // complete the device bring-up event
	return transport.NewStack(h), ifc
}

func newWorld(t *testing.T, seed int64) *world {
	t.Helper()
	loop := sim.New(seed)
	w := &world{t: t, loop: loop, tr: trace.New(loop)}
	w.homeNet = link.NewNetwork(loop, "home", link.Ethernet())
	w.forA = link.NewNetwork(loop, "foreignA", link.Ethernet())
	w.forB = link.NewNetwork(loop, "foreignB", link.Ethernet())
	w.chNet = link.NewNetwork(loop, "chNet", link.Ethernet())

	// Router with one interface per subnet.
	w.router = stack.NewHost(loop, "router", stack.Config{})
	for _, x := range []struct {
		n    *link.Network
		cidr string
	}{
		{w.homeNet, "10.1.0.1/24"},
		{w.forA, "10.2.0.1/24"},
		{w.forB, "10.3.0.1/24"},
		{w.chNet, "10.4.0.1/24"},
	} {
		d := link.NewDevice(loop, "r-"+x.n.Name(), 0, 0)
		d.Attach(x.n)
		d.BringUp(nil)
		pfx := ip.MustParsePrefix(x.cidr)
		ifc := w.router.AddIface("r-"+x.n.Name(), d, ip.MustParseAddr(x.cidr[:len(x.cidr)-3]), pfx, stack.IfaceOpts{})
		w.router.ConnectRoute(ifc)
	}
	w.router.SetForwarding(true)

	// Home agent.
	haTS, haIfc := mkHost(loop, w.homeNet, "ha", wHAAddr+"/24", "10.1.0.1")
	ha, err := NewHomeAgent(haTS, HomeAgentConfig{
		HomeIface:  haIfc,
		HomePrefix: ip.MustParsePrefix("10.1.0.0/24"),
		Tracer:     w.tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	w.ha = ha

	// Correspondent host.
	w.ch, _ = mkHost(loop, w.chNet, "ch", wCHAddr+"/24", "10.4.0.1")

	// DHCP servers on the foreign nets.
	dhcpA, _ := mkHost(loop, w.forA, "dhcpA", "10.2.0.2/24", "10.2.0.1")
	if _, err := dhcp.NewServer(dhcpA, dhcp.ServerConfig{
		Pool: ip.MustParsePrefix("10.2.0.0/24"), FirstHost: 100, LastHost: 150,
		Gateway: ip.MustParseAddr("10.2.0.1"),
	}); err != nil {
		t.Fatal(err)
	}
	dhcpB, _ := mkHost(loop, w.forB, "dhcpB", "10.3.0.2/24", "10.3.0.1")
	if _, err := dhcp.NewServer(dhcpB, dhcp.ServerConfig{
		Pool: ip.MustParsePrefix("10.3.0.0/24"), FirstHost: 100, LastHost: 150,
		Gateway: ip.MustParseAddr("10.3.0.1"),
	}); err != nil {
		t.Fatal(err)
	}

	// Mobile host with two managed interfaces.
	mhHost := stack.NewHost(loop, "mh", stack.Config{})
	w.mhTS = transport.NewStack(mhHost)
	w.mh = NewMobileHost(w.mhTS, MobileHostConfig{
		HomeAddr:   ip.MustParseAddr(wHomeAddr),
		HomePrefix: ip.MustParsePrefix("10.1.0.0/24"),
		HomeAgent:  ip.MustParseAddr(wHAAddr),
		Lifetime:   time.Minute,
		Tracer:     w.tr,
	})
	eth0dev := link.NewDevice(loop, "mh-eth0", 0, 0)
	eth0dev.Attach(w.homeNet)
	eth0, err := w.mh.AddInterface("eth0", eth0dev, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	w.eth0 = eth0
	eth1dev := link.NewDevice(loop, "mh-eth1", 0, 0)
	eth1dev.Attach(w.forA)
	eth1, err := w.mh.AddInterface("eth1", eth1dev, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	w.eth1 = eth1

	loop.RunFor(0)
	return w
}

// run advances the simulation.
func (w *world) run(d time.Duration) { w.loop.RunFor(d) }

// goForeign connects eth1 to the currently attached foreign net and waits
// for registration.
func (w *world) goForeign() {
	w.t.Helper()
	var regErr error
	done := false
	w.mh.ConnectForeign(w.eth1, func(err error) { regErr, done = err, true })
	w.run(10 * time.Second)
	if !done || regErr != nil {
		w.t.Fatalf("ConnectForeign: done=%v err=%v", done, regErr)
	}
	if !w.mh.Registered() {
		w.t.Fatal("not registered after ConnectForeign")
	}
}

// goHome cold-switches back to the home interface.
func (w *world) goHome() {
	w.t.Helper()
	var err error
	done := false
	w.mh.ColdSwitchHome(w.eth0, ip.MustParseAddr("10.1.0.1"), func(e error) { err, done = e, true })
	w.run(10 * time.Second)
	if !done || err != nil {
		w.t.Fatalf("ColdSwitchHome: done=%v err=%v", done, err)
	}
}

// udpEchoServer starts an echo server on the correspondent host and
// returns a pointer to the count of requests it served, plus the last
// source address seen.
func (w *world) udpEchoServer(port uint16) (served *int, lastFrom *ip.Addr) {
	w.t.Helper()
	count := 0
	var from ip.Addr
	var srv *transport.UDPSocket
	srv, err := w.ch.UDP(ip.Unspecified, port, func(d transport.Datagram) {
		count++
		from = d.From
		srv.SendTo(d.From, d.FromPort, d.Payload)
	})
	if err != nil {
		w.t.Fatal(err)
	}
	return &count, &from
}
