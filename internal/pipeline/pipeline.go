// Package pipeline implements netfilter-style hook chains: the composable
// splice points the per-host datapath is built from.
//
// The paper's entire mobility mechanism is three interception points in
// the kernel datapath — an overridden ip_rt_route(), a Mobile Policy
// Table consulted beside the routing table, and a VIF fused with IPIP
// decapsulation. This package generalizes the pattern: a Chain is an
// ordered list of named, prioritized hooks at one of the five classic
// stages (PREROUTING, INPUT, FORWARD, OUTPUT, POSTROUTING), each hook
// returns ACCEPT (continue traversal), DROP (discard; the chain's
// observer does the accounting), or STOLEN (the hook took ownership:
// re-injected, queued, or consumed the packet), and traversal stops at
// the first non-ACCEPT verdict.
//
// Determinism is a first-class contract here, not a courtesy: hooks run
// in (priority, name) order regardless of registration order, so two
// same-seed runs — or one run sharded across any number of workers —
// traverse every chain identically and produce byte-identical traces.
// The hookorder mnetlint analyzer enforces the registration discipline
// statically (explicit priorities, no duplicate (stage, priority, name)
// keys); this package enforces it dynamically (registration sorts, same
// name replaces).
package pipeline

import (
	"fmt"
	"sort"
	"strings"
)

// Verdict is a hook's decision about the packet it was shown.
type Verdict int

const (
	// Accept continues chain traversal; the stage's default action runs
	// if every hook accepts.
	Accept Verdict = iota
	// Drop discards the packet. Hooks attach the drop reason and counter
	// to the stage context; the chain's observer (the tracing/accounting
	// middleware) performs the bookkeeping exactly once.
	Drop
	// Stolen means the hook took ownership: the packet was re-injected
	// elsewhere (decapsulation), consumed (local delivery), or queued.
	// Nothing further runs and nothing is accounted — the hook is now
	// responsible for the packet's fate.
	Stolen
)

func (v Verdict) String() string {
	switch v {
	case Accept:
		return "ACCEPT"
	case Drop:
		return "DROP"
	case Stolen:
		return "STOLEN"
	default:
		return fmt.Sprintf("verdict(%d)", int(v))
	}
}

// Stage names one of the five classic datapath interception points.
type Stage int

const (
	Prerouting Stage = iota // packet arrived on an interface, before the local/forward decision
	Input                   // packet is being delivered locally (after reassembly slots in)
	Forward                 // packet is transiting this host
	Output                  // locally originated packet, after the route decision
	Postrouting             // any packet about to be handed to an interface
	NumStages               // sentinel: number of stages
)

func (s Stage) String() string {
	switch s {
	case Prerouting:
		return "PREROUTING"
	case Input:
		return "INPUT"
	case Forward:
		return "FORWARD"
	case Output:
		return "OUTPUT"
	case Postrouting:
		return "POSTROUTING"
	default:
		return fmt.Sprintf("stage(%d)", int(s))
	}
}

// Hook is one named, prioritized function on a chain. Lower priorities run
// first; ties break on name (bytewise), so ordering never depends on
// registration order. Names identify hooks for deregistration and
// introspection; registering a hook whose name is already on the chain
// replaces the previous one (the single-slot override semantics the
// legacy SetRouteLookup splice had, generalized).
type Hook[C any] struct {
	Name     string
	Priority int
	Fn       func(C) Verdict
}

// Observer sees the outcome of every chain run: the context and the final
// verdict. The stack installs one observer per chain — the uniform
// tracing, metrics, and drop-accounting middleware — so no hook has to
// remember the bookkeeping.
type Observer[C any] func(ctx C, v Verdict)

// Chain is an ordered hook list for one stage of one host. The zero value
// is an empty, runnable chain.
type Chain[C any] struct {
	stage    Stage
	hooks    []Hook[C]
	observer Observer[C]
	onChange func()
	gen      uint64
}

// NewChain creates an empty chain for stage (the stage is carried for
// introspection and error text only).
func NewChain[C any](stage Stage) *Chain[C] { return &Chain[C]{stage: stage} }

// Stage returns the stage this chain runs at.
func (c *Chain[C]) Stage() Stage { return c.stage }

// Gen returns the chain's mutation generation: it increases on every
// Register/Deregister that changes the hook list. Route-decision caches
// guard themselves against it.
func (c *Chain[C]) Gen() uint64 { return c.gen }

// Len returns the number of registered hooks.
func (c *Chain[C]) Len() int { return len(c.hooks) }

// SetObserver installs the chain's middleware, replacing any previous one.
func (c *Chain[C]) SetObserver(obs Observer[C]) { c.observer = obs }

// SetOnChange installs a callback invoked after every successful
// Register/Deregister — the seam route-decision caches hang their
// invalidation on, so a hook registered after host start can never be
// shadowed by a stale cached decision.
func (c *Chain[C]) SetOnChange(fn func()) { c.onChange = fn }

// Register adds h to the chain, keeping hooks sorted by (priority, name).
// A hook with h.Name already present is replaced (and re-sorted under its
// new priority). Empty names and nil functions are programming errors.
func (c *Chain[C]) Register(h Hook[C]) {
	if h.Name == "" {
		panic(fmt.Sprintf("pipeline: %v hook with empty name", c.stage))
	}
	if h.Fn == nil {
		panic(fmt.Sprintf("pipeline: %v hook %q with nil function", c.stage, h.Name))
	}
	for i := range c.hooks {
		if c.hooks[i].Name == h.Name {
			c.hooks[i] = h
			c.resort()
			c.changed()
			return
		}
	}
	c.hooks = append(c.hooks, h)
	c.resort()
	c.changed()
}

// Deregister removes the named hook, reporting whether it was present.
func (c *Chain[C]) Deregister(name string) bool {
	for i := range c.hooks {
		if c.hooks[i].Name == name {
			c.hooks = append(c.hooks[:i], c.hooks[i+1:]...)
			c.changed()
			return true
		}
	}
	return false
}

func (c *Chain[C]) resort() {
	sort.SliceStable(c.hooks, func(i, j int) bool {
		if c.hooks[i].Priority != c.hooks[j].Priority {
			return c.hooks[i].Priority < c.hooks[j].Priority
		}
		return c.hooks[i].Name < c.hooks[j].Name
	})
}

func (c *Chain[C]) changed() {
	c.gen++
	if c.onChange != nil {
		c.onChange()
	}
}

// Run traverses the chain in (priority, name) order, stopping at the
// first non-Accept verdict, then hands the context and final verdict to
// the observer. An empty chain accepts.
func (c *Chain[C]) Run(ctx C) Verdict {
	v := Accept
	for i := range c.hooks {
		if v = c.hooks[i].Fn(ctx); v != Accept {
			break
		}
	}
	if c.observer != nil {
		c.observer(ctx, v)
	}
	return v
}

// Names returns the registered hook names in traversal order.
func (c *Chain[C]) Names() []string {
	out := make([]string, len(c.hooks))
	for i, h := range c.hooks {
		out[i] = h.Name
	}
	return out
}

// String renders the chain one hook per line, iptables -L style.
func (c *Chain[C]) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Chain %v (%d hooks)\n", c.stage, len(c.hooks))
	for _, h := range c.hooks {
		fmt.Fprintf(&b, "  %6d  %s\n", h.Priority, h.Name)
	}
	return b.String()
}
