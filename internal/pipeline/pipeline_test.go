package pipeline

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

type ctx struct {
	path []string
}

func hook(name string, pri int, v Verdict) Hook[*ctx] {
	return Hook[*ctx]{Name: name, Priority: pri, Fn: func(c *ctx) Verdict {
		c.path = append(c.path, name)
		return v
	}}
}

// TestOrderingDeterminism registers the same hook set in many shuffled
// orders and asserts the traversal order is always (priority, name) —
// the chain-level half of the trace byte-identicality argument.
func TestOrderingDeterminism(t *testing.T) {
	hooks := []Hook[*ctx]{
		hook("route", -200, Accept),
		hook("ttl", -300, Accept),
		hook("filter#00", 0, Accept),
		hook("filter#01", 0, Accept),
		hook("mtu", 100, Accept),
		hook("redirect", 200, Accept),
	}
	want := []string{"ttl", "route", "filter#00", "filter#01", "mtu", "redirect"}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		c := NewChain[*ctx](Forward)
		perm := rng.Perm(len(hooks))
		for _, i := range perm {
			c.Register(hooks[i])
		}
		if got := c.Names(); !reflect.DeepEqual(got, want) {
			t.Fatalf("perm %v: order %v, want %v", perm, got, want)
		}
		run := &ctx{}
		if v := c.Run(run); v != Accept {
			t.Fatalf("verdict %v", v)
		}
		if !reflect.DeepEqual(run.path, want) {
			t.Fatalf("perm %v: traversal %v, want %v", perm, run.path, want)
		}
	}
}

// TestVerdictShortCircuit asserts Drop and Stolen stop traversal where
// they occur, and that Accept from every hook falls through.
func TestVerdictShortCircuit(t *testing.T) {
	for _, stop := range []Verdict{Drop, Stolen} {
		c := NewChain[*ctx](Input)
		c.Register(hook("a", 1, Accept))
		c.Register(hook("b", 2, stop))
		c.Register(hook("c", 3, Accept))
		run := &ctx{}
		if v := c.Run(run); v != stop {
			t.Fatalf("verdict %v, want %v", v, stop)
		}
		if want := []string{"a", "b"}; !reflect.DeepEqual(run.path, want) {
			t.Fatalf("traversal %v, want %v", run.path, want)
		}
	}
	if v := NewChain[*ctx](Input).Run(&ctx{}); v != Accept {
		t.Fatalf("empty chain verdict %v, want ACCEPT", v)
	}
}

// TestReplaceByName asserts same-name registration replaces (the
// generalized single-slot override), including a priority move.
func TestReplaceByName(t *testing.T) {
	c := NewChain[*ctx](Output)
	c.Register(hook("override", -100, Drop))
	c.Register(hook("fallback", 0, Accept))
	c.Register(hook("override", 50, Accept)) // replace, and move after fallback
	if got, want := c.Names(), []string{"fallback", "override"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("order %v, want %v", got, want)
	}
	if c.Len() != 2 {
		t.Fatalf("len %d, want 2", c.Len())
	}
	run := &ctx{}
	if v := c.Run(run); v != Accept {
		t.Fatalf("replaced hook's old Drop verdict survived: %v", v)
	}
}

// TestDeregister asserts removal and its change notification.
func TestDeregister(t *testing.T) {
	c := NewChain[*ctx](Forward)
	changes := 0
	c.SetOnChange(func() { changes++ })
	c.Register(hook("a", 0, Accept))
	gen := c.Gen()
	if !c.Deregister("a") {
		t.Fatal("Deregister(a) = false")
	}
	if c.Deregister("a") {
		t.Fatal("second Deregister(a) = true")
	}
	if c.Gen() == gen {
		t.Fatal("Gen unchanged by deregistration")
	}
	if changes != 2 { // register + deregister
		t.Fatalf("onChange ran %d times, want 2", changes)
	}
}

// TestObserver asserts the middleware sees every run's final verdict,
// including the empty-chain Accept.
func TestObserver(t *testing.T) {
	c := NewChain[*ctx](Prerouting)
	var got []Verdict
	c.SetObserver(func(_ *ctx, v Verdict) { got = append(got, v) })
	c.Run(&ctx{})
	c.Register(hook("drop", 0, Drop))
	c.Run(&ctx{})
	want := []Verdict{Accept, Drop}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("observer saw %v, want %v", got, want)
	}
}

func TestStrings(t *testing.T) {
	for s, want := range map[Stage]string{
		Prerouting: "PREROUTING", Input: "INPUT", Forward: "FORWARD",
		Output: "OUTPUT", Postrouting: "POSTROUTING",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), want)
		}
	}
	for v, want := range map[Verdict]string{Accept: "ACCEPT", Drop: "DROP", Stolen: "STOLEN"} {
		if v.String() != want {
			t.Errorf("verdict string %q, want %q", v.String(), want)
		}
	}
	c := NewChain[*ctx](Forward)
	c.Register(hook("mtu", 100, Accept))
	if s := c.String(); !strings.Contains(s, "FORWARD") || !strings.Contains(s, "mtu") {
		t.Errorf("String() = %q", s)
	}
}

func TestRegisterPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	expectPanic("empty name", func() {
		NewChain[*ctx](Input).Register(Hook[*ctx]{Fn: func(*ctx) Verdict { return Accept }})
	})
	expectPanic("nil fn", func() {
		NewChain[*ctx](Input).Register(Hook[*ctx]{Name: "x"})
	})
}
