package scenario

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"mosquitonet/internal/ip"
	"mosquitonet/internal/pipeline"
	"mosquitonet/internal/stack"
)

// Console is a line-oriented admin interface over a compiled world:
// inspect and mutate routes, bindings, and hook chains, and inject
// faults, either immediately or scheduled at a virtual-time offset
// ("at 3s fault ha-crash router 1s"). cmd/mnet wires it to -admin so a
// run can be steered from a script or stdin; tests drive Exec directly.
// Every mutation goes through the same seams the scenario schema uses,
// so an admin session is exactly as deterministic as a spec — replaying
// the same script against the same seed reproduces the run.
type Console struct {
	w   *World
	out io.Writer
}

// NewConsole attaches a console to a compiled world, writing command
// output to out.
func NewConsole(w *World, out io.Writer) *Console {
	return &Console{w: w, out: out}
}

// Load reads a command script: one command per line, '#' comments and
// blank lines ignored. Lines of the form "at <offset> <command...>" are
// scheduled at that virtual-time offset from now; all other lines
// execute immediately. A parse or resolution error stops the load.
func (c *Console) Load(r io.Reader) error {
	sc := bufio.NewScanner(r)
	for n := 1; sc.Scan(); n++ {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if fields[0] == "at" {
			if len(fields) < 3 {
				return fmt.Errorf("admin line %d: at needs an offset and a command", n)
			}
			offset, err := time.ParseDuration(fields[1])
			if err != nil {
				return fmt.Errorf("admin line %d: %w", n, err)
			}
			rest := strings.Join(fields[2:], " ")
			c.w.Loop.Schedule(offset, func() {
				if err := c.Exec(rest); err != nil {
					fmt.Fprintf(c.out, "admin [%v] %s: %v\n", c.w.Loop.Now(), rest, err)
				}
			})
			continue
		}
		if err := c.Exec(line); err != nil {
			return fmt.Errorf("admin line %d: %w", n, err)
		}
	}
	return sc.Err()
}

// Exec runs one console command.
func (c *Console) Exec(line string) error {
	f := strings.Fields(line)
	if len(f) == 0 {
		return nil
	}
	switch f[0] {
	case "help":
		fmt.Fprint(c.out, adminHelp)
		return nil
	case "show":
		return c.show(f[1:])
	case "add-route":
		return c.addRoute(f[1:])
	case "del-route":
		return c.delRoute(f[1:])
	case "del-hook":
		return c.delHook(f[1:])
	case "fault":
		return c.fault(f[1:])
	default:
		return fmt.Errorf("unknown command %q (try help)", f[0])
	}
}

const adminHelp = `commands:
  show hosts | faults | metrics
  show routes <host> | hooks <host> | bindings [<router>]
  add-route <host> <prefix> <gateway> <iface>
  del-route <host> <prefix>
  del-hook <host> <stage|route> <name>
  fault link-flap <device> <for>
  fault loss-burst <subnet> <prob> <for>
  fault ha-crash <router> <for>
  fault agent-delay <router> <delay> <for>
  at <offset> <command...>   (schedule at virtual-time offset)
`

func (c *Console) host(name string) (*stack.Host, error) {
	h, ok := c.w.Host(name)
	if !ok {
		return nil, fmt.Errorf("unknown host %q (have %s)", name, strings.Join(c.w.HostNames(), ", "))
	}
	return h, nil
}

func (c *Console) show(f []string) error {
	if len(f) == 0 {
		return fmt.Errorf("show what? (try help)")
	}
	switch f[0] {
	case "hosts":
		fmt.Fprintf(c.out, "%s\n", strings.Join(c.w.HostNames(), "\n"))
		return nil
	case "faults":
		fmt.Fprint(c.out, c.w.Faults.String())
		return nil
	case "metrics":
		fmt.Fprint(c.out, c.w.Metrics.Snapshot().Table())
		return nil
	case "routes":
		if len(f) != 2 {
			return fmt.Errorf("show routes <host>")
		}
		h, err := c.host(f[1])
		if err != nil {
			return err
		}
		fmt.Fprint(c.out, h.Routes().String())
		return nil
	case "hooks":
		if len(f) != 2 {
			return fmt.Errorf("show hooks <host>")
		}
		h, err := c.host(f[1])
		if err != nil {
			return err
		}
		for st := pipeline.Stage(0); st < pipeline.NumStages; st++ {
			if ch := h.Hooks(st); ch.Len() > 0 {
				fmt.Fprint(c.out, ch.String())
			}
		}
		if rh := h.RouteHooks(); rh.Len() > 0 {
			fmt.Fprintf(c.out, "route: %s\n", strings.Join(rh.Names(), ", "))
		}
		return nil
	case "bindings":
		names := f[1:]
		if len(names) == 0 {
			for _, r := range c.w.Spec.Topology.Routers {
				if _, ok := c.w.HAs[r.Name]; ok {
					names = append(names, r.Name)
				}
			}
		}
		for _, name := range names {
			ha, ok := c.w.HAs[name]
			if !ok {
				return fmt.Errorf("no home agent on router %q", name)
			}
			bs := ha.Bindings()
			fmt.Fprintf(c.out, "%s: %d binding(s)\n", name, len(bs))
			for _, b := range bs {
				fmt.Fprintf(c.out, "  %v -> %v extras=%v expires=%v id=%d\n",
					b.HomeAddr, b.CareOf, b.Extras, time.Duration(b.Expires), b.ID)
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown show target %q", f[0])
	}
}

func (c *Console) addRoute(f []string) error {
	if len(f) != 4 {
		return fmt.Errorf("add-route <host> <prefix> <gateway> <iface>")
	}
	h, err := c.host(f[0])
	if err != nil {
		return err
	}
	pfx, err := ip.ParsePrefix(f[1])
	if err != nil {
		return err
	}
	gw, err := ip.ParseAddr(f[2])
	if err != nil {
		return err
	}
	ifc := h.IfaceByName(f[3])
	if ifc == nil {
		return fmt.Errorf("host %q has no iface %q", f[0], f[3])
	}
	h.Routes().Add(stack.Route{Dst: pfx, Gateway: gw, Iface: ifc})
	fmt.Fprintf(c.out, "added %v via %v dev %s on %s\n", pfx, gw, f[3], f[0])
	return nil
}

func (c *Console) delRoute(f []string) error {
	if len(f) != 2 {
		return fmt.Errorf("del-route <host> <prefix>")
	}
	h, err := c.host(f[0])
	if err != nil {
		return err
	}
	pfx, err := ip.ParsePrefix(f[1])
	if err != nil {
		return err
	}
	if !h.Routes().Delete(pfx) {
		return fmt.Errorf("host %q has no route to %v", f[0], pfx)
	}
	fmt.Fprintf(c.out, "deleted %v on %s\n", pfx, f[0])
	return nil
}

func (c *Console) delHook(f []string) error {
	if len(f) != 3 {
		return fmt.Errorf("del-hook <host> <stage|route> <name>")
	}
	h, err := c.host(f[0])
	if err != nil {
		return err
	}
	if strings.EqualFold(f[1], "route") {
		if !h.RouteHooks().Deregister(f[2]) {
			return fmt.Errorf("host %q has no route hook %q", f[0], f[2])
		}
		fmt.Fprintf(c.out, "deregistered route hook %s on %s\n", f[2], f[0])
		return nil
	}
	for st := pipeline.Stage(0); st < pipeline.NumStages; st++ {
		if strings.EqualFold(st.String(), f[1]) {
			if !h.Hooks(st).Deregister(f[2]) {
				return fmt.Errorf("host %q has no %v hook %q", f[0], st, f[2])
			}
			fmt.Fprintf(c.out, "deregistered %v hook %s on %s\n", st, f[2], f[0])
			return nil
		}
	}
	return fmt.Errorf("unknown stage %q", f[1])
}

// fault injects one fault, striking now; "at" handles deferred strikes.
func (c *Console) fault(f []string) error {
	if len(f) < 1 {
		return fmt.Errorf("fault <kind> ... (try help)")
	}
	ft := Fault{Kind: f[0]}
	var err error
	parse := func(s string) Duration {
		var d time.Duration
		if err == nil {
			d, err = time.ParseDuration(s)
		}
		return Duration(d)
	}
	switch ft.Kind {
	case "link-flap":
		if len(f) != 3 {
			return fmt.Errorf("fault link-flap <device> <for>")
		}
		ft.Device, ft.For = f[1], parse(f[2])
	case "loss-burst":
		if len(f) != 4 {
			return fmt.Errorf("fault loss-burst <subnet> <prob> <for>")
		}
		ft.Subnet = f[1]
		if err == nil {
			ft.Prob, err = strconv.ParseFloat(f[2], 64)
		}
		ft.For = parse(f[3])
	case "ha-crash":
		if len(f) != 3 {
			return fmt.Errorf("fault ha-crash <router> <for>")
		}
		ft.Router, ft.For = f[1], parse(f[2])
	case "agent-delay":
		if len(f) != 4 {
			return fmt.Errorf("fault agent-delay <router> <delay> <for>")
		}
		ft.Router, ft.Delay, ft.For = f[1], parse(f[2]), parse(f[3])
	default:
		return fmt.Errorf("unknown fault kind %q (want one of %v)", ft.Kind, FaultKinds)
	}
	if err != nil {
		return err
	}
	if err := c.w.Faults.Schedule(ft); err != nil {
		return err
	}
	fmt.Fprintf(c.out, "armed %s at %v\n", ft.Kind, c.w.Loop.Now())
	return nil
}
