package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func adminWorld(t *testing.T) (*World, *Console, *strings.Builder) {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(catalogDir, "faultdemo.json"))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	w, err := Compile(1, spec)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	var out strings.Builder
	return w, NewConsole(w, &out), &out
}

func TestConsoleExec(t *testing.T) {
	w, c, out := adminWorld(t)

	run := func(cmd string) string {
		t.Helper()
		out.Reset()
		if err := c.Exec(cmd); err != nil {
			t.Fatalf("%s: %v", cmd, err)
		}
		return out.String()
	}

	if got := run("show hosts"); !strings.Contains(got, "router") || !strings.Contains(got, "mh") {
		t.Errorf("show hosts missing hosts:\n%s", got)
	}
	if got := run("show routes router"); !strings.Contains(got, "36.135.0.0/16") {
		t.Errorf("show routes missing connected route:\n%s", got)
	}

	run("add-route ch 10.9.0.0/16 36.8.0.1 eth0")
	if got := run("show routes ch"); !strings.Contains(got, "10.9.0.0/16") {
		t.Errorf("added route not visible:\n%s", got)
	}
	run("del-route ch 10.9.0.0/16")
	if got := run("show routes ch"); strings.Contains(got, "10.9.0.0/16") {
		t.Errorf("deleted route still visible:\n%s", got)
	}

	// Faults armed via the console flow through the same injector as
	// scheduled spec faults: span opens on strike, heals on schedule.
	run("fault ha-crash router 500ms")
	w.RunFor(time.Second)
	recs := w.Faults.Records()
	if len(recs) != 1 || recs[0].Kind != "fault.ha.crash" {
		t.Fatalf("fault records = %+v, want one healed fault.ha.crash", recs)
	}
	if got := run("show faults"); !strings.Contains(got, "fault.ha.crash") {
		t.Errorf("show faults missing record:\n%s", got)
	}

	for _, bad := range []string{
		"explode",
		"show routes nobody",
		"del-route ch 10.9.0.0/16",
		"fault ha-crash ghost 1s",
		"fault loss-burst dept 2.0 1s",
		"del-hook mh input no-such-hook",
	} {
		if err := c.Exec(bad); err == nil {
			t.Errorf("%q was accepted", bad)
		}
	}
}

func TestConsoleLoad(t *testing.T) {
	w, c, out := adminWorld(t)
	script := `# comment line

show hosts
at 100ms fault ha-crash router 200ms
`
	if err := c.Load(strings.NewReader(script)); err != nil {
		t.Fatal(err)
	}
	if len(w.Faults.Records()) != 0 {
		t.Error("scheduled fault struck before its offset")
	}
	w.RunFor(time.Second)
	if recs := w.Faults.Records(); len(recs) != 1 || recs[0].Kind != "fault.ha.crash" {
		t.Errorf("fault records = %+v, want one healed fault.ha.crash", recs)
	}
	if err := c.Load(strings.NewReader("at soon show hosts\n")); err == nil {
		t.Error("bad offset accepted")
	}
	if err := c.Load(strings.NewReader("frobnicate\n")); err == nil {
		t.Error("bad immediate command accepted")
	}
	_ = out
}
