package scenario

import (
	"fmt"
	"sort"
	"time"

	"mosquitonet/internal/dhcp"
	"mosquitonet/internal/ip"
	"mosquitonet/internal/link"
	"mosquitonet/internal/metrics"
	"mosquitonet/internal/mip"
	"mosquitonet/internal/sim"
	"mosquitonet/internal/stack"
	"mosquitonet/internal/trace"
	"mosquitonet/internal/transport"
)

// World is a compiled scenario: the simulation loop plus every named
// entity the spec declared, keyed for lookup by the itinerary runner, the
// fault injector, and the admin console. The maps are lookup-only — all
// iteration happens over the spec's ordered slices (or sorted keys), so a
// compiled world stays deterministic.
type World struct {
	Spec    *Spec
	Loop    *sim.Loop
	Tracer  *trace.Tracer
	Metrics *metrics.Registry
	Packets *metrics.PacketLog

	Networks map[string]*link.Network // by subnet name
	Prefixes map[string]ip.Prefix     // by subnet name
	Devices  map[string]*link.Device  // by device name
	Routers  map[string]*stack.Host   // by router name
	RouterTS map[string]*transport.Stack
	HAs      map[string]*mip.HomeAgent // by router name
	DHCPs    map[string]*dhcp.Server   // by router name
	Stacks   map[string]*transport.Stack
	Mobiles  map[string]*mip.MobileHost
	MIfaces  map[string]*mip.ManagedIface // by "mobile/iface"

	// hosts maps every host name (router, end host, mobile) to its
	// stack.Host, for the admin console's route/hook inspection.
	hosts map[string]*stack.Host

	Faults *Injector
}

// Compile lowers a resolved, validated spec onto the simulator builders.
// The lowering walks the spec strictly in order — subnets, then routers
// (interfaces, forwarding, home agent, DHCP), then end hosts, then
// mobiles, then a zero-length run to let bring-ups land — because
// construction order is RNG-consumption order and therefore behavior.
// Fleet specs do not compile here; their sharded lowering lives in the
// testbed package.
func Compile(seed int64, spec *Spec) (*World, error) {
	if spec.Base != "" {
		return nil, fmt.Errorf("scenario %q: unresolved base %q (call ResolveBase)", spec.Name, spec.Base)
	}
	if err := Validate(spec); err != nil {
		return nil, err
	}
	if spec.Topology.Fleet != nil {
		return nil, fmt.Errorf("scenario %q: fleet specs are lowered by the testbed's sharded builder, not Compile", spec.Name)
	}

	loop := sim.New(seed)
	w := &World{
		Spec:     spec,
		Loop:     loop,
		Tracer:   trace.New(loop),
		Metrics:  metrics.Enable(loop),
		Packets:  metrics.TracePackets(loop, 0),
		Networks: map[string]*link.Network{},
		Prefixes: map[string]ip.Prefix{},
		Devices:  map[string]*link.Device{},
		Routers:  map[string]*stack.Host{},
		RouterTS: map[string]*transport.Stack{},
		HAs:      map[string]*mip.HomeAgent{},
		DHCPs:    map[string]*dhcp.Server{},
		Stacks:   map[string]*transport.Stack{},
		Mobiles:  map[string]*mip.MobileHost{},
		MIfaces:  map[string]*mip.ManagedIface{},
		hosts:    map[string]*stack.Host{},
	}

	for i := range spec.Topology.Subnets {
		s := &spec.Topology.Subnets[i]
		w.Networks[s.Name] = link.NewNetwork(loop, s.NetworkName(), medium(s.Medium))
		w.Prefixes[s.Name] = ip.MustParsePrefix(s.Prefix)
	}
	for i := range spec.Topology.Routers {
		if err := w.compileRouter(&spec.Topology.Routers[i]); err != nil {
			return nil, err
		}
	}
	for i := range spec.Topology.Hosts {
		w.compileEndHost(&spec.Topology.Hosts[i])
	}
	for i := range spec.Topology.Mobiles {
		if err := w.compileMobile(&spec.Topology.Mobiles[i]); err != nil {
			return nil, err
		}
	}
	loop.RunFor(0)

	w.Faults = newInjector(w)
	for i := range spec.Faults {
		if err := w.Faults.Schedule(spec.Faults[i]); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// medium lowers a medium spec to the link layer's calibrated media.
func medium(m Medium) link.Medium {
	switch m.Kind {
	case "ethernet":
		return link.Ethernet()
	case "radio":
		return link.Radio()
	case "serial":
		return link.Serial()
	case "backbone":
		return link.Backbone()
	default: // "custom"; Validate rejects anything else
		return link.Medium{
			Name:          m.Name,
			Latency:       m.Latency.D(),
			LatencyJitter: m.LatencyJitter.D(),
			BitRate:       m.BitRate,
			LossProb:      m.LossProb,
			MTU:           m.MTU,
		}
	}
}

func (w *World) compileRouter(r *Router) error {
	h := stack.NewHost(w.Loop, r.Name, stack.Config{
		InputDelay:   r.Delays.Input.D(),
		OutputDelay:  r.Delays.Output.D(),
		ForwardDelay: r.Delays.Forward.D(),
	})
	ifaces := map[string]*stack.Iface{}
	for i := range r.Ifaces {
		ri := &r.Ifaces[i]
		sub := w.subnetSpec(ri.Subnet)
		n := w.Networks[ri.Subnet]
		d := link.NewDevice(w.Loop, "r-"+n.Name(), 0, 0)
		d.Attach(n)
		d.BringUp(nil)
		ifc := h.AddIface("r-"+n.Name(), d, ip.MustParseAddr(ri.Addr), w.Prefixes[ri.Subnet],
			stack.IfaceOpts{PointToPoint: sub.PointToPoint})
		h.ConnectRoute(ifc)
		w.Devices[d.Name()] = d
		ifaces[ri.Subnet] = ifc
	}
	h.SetForwarding(true)
	ts := transport.NewStack(h)
	w.Routers[r.Name] = h
	w.RouterTS[r.Name] = ts
	w.hosts[r.Name] = h

	if has := r.HomeAgent; has != nil {
		ha, err := mip.NewHomeAgent(ts, mip.HomeAgentConfig{
			HomeIface:       ifaces[has.Subnet],
			HomePrefix:      w.Prefixes[has.Subnet],
			ProcessingDelay: has.Processing.D(),
			Tracer:          w.Tracer,
		})
		if err != nil {
			return fmt.Errorf("scenario %q: router %q: home agent: %w", w.Spec.Name, r.Name, err)
		}
		w.HAs[r.Name] = ha
	}
	if ds := r.DHCP; ds != nil {
		srv, err := dhcp.NewServer(ts, dhcp.ServerConfig{
			Pool:            w.Prefixes[ds.Subnet],
			FirstHost:       ds.FirstHost,
			LastHost:        ds.LastHost,
			Gateway:         ip.MustParseAddr(r.ifaceOn(ds.Subnet).Addr),
			ProcessingDelay: ds.Processing.D(),
		})
		if err != nil {
			return fmt.Errorf("scenario %q: router %q: dhcp: %w", w.Spec.Name, r.Name, err)
		}
		w.DHCPs[r.Name] = srv
	}
	return nil
}

func (w *World) compileEndHost(eh *EndHost) {
	sub := w.subnetSpec(eh.Subnet)
	h := stack.NewHost(w.Loop, eh.Name, stack.Config{
		InputDelay:  eh.Delay.D(),
		OutputDelay: eh.Delay.D(),
	})
	d := link.NewDevice(w.Loop, eh.Name+"-eth", 0, 0)
	d.Attach(w.Networks[eh.Subnet])
	d.BringUp(nil)
	ifc := h.AddIface("eth0", d, ip.MustParseAddr(eh.Addr), w.Prefixes[eh.Subnet],
		stack.IfaceOpts{PointToPoint: sub.PointToPoint})
	h.ConnectRoute(ifc)
	h.AddDefaultRoute(ip.MustParseAddr(eh.Gateway), ifc)
	w.Loop.RunFor(0)
	w.Devices[d.Name()] = d
	w.Stacks[eh.Name] = transport.NewStack(h)
	w.hosts[eh.Name] = h
}

func (w *World) compileMobile(m *Mobile) error {
	h := stack.NewHost(w.Loop, m.Name, stack.Config{
		InputDelay:  m.Delay.D(),
		OutputDelay: m.Delay.D(),
	})
	ts := transport.NewStack(h)
	mh := mip.NewMobileHost(ts, mip.MobileHostConfig{
		HomeAddr:         ip.MustParseAddr(m.HomeAddr),
		HomePrefix:       w.Prefixes[m.HomeSubnet],
		HomeAgent:        ip.MustParseAddr(m.HomeAgent),
		Lifetime:         m.Lifetime.D(),
		ConfigureDelay:   m.ConfigureDelay.D(),
		RouteChangeDelay: m.RouteChangeDelay.D(),
		Tracer:           w.Tracer,
	})
	for i := range m.Ifaces {
		ic := &m.Ifaces[i]
		sub := w.subnetSpec(ic.Attach)
		d := link.NewDevice(w.Loop, ic.Device, ic.BringUp.D(), ic.BringUpJitter.D())
		d.Attach(w.Networks[ic.Attach])
		var static *mip.StaticConfig
		if ic.Static != nil {
			static = &mip.StaticConfig{
				Addr:    ip.MustParseAddr(ic.Static.Addr),
				Prefix:  w.Prefixes[ic.Attach],
				Gateway: ip.MustParseAddr(ic.Static.Gateway),
			}
		}
		mi, err := mh.AddInterface(ic.Name, d, sub.PointToPoint, static)
		if err != nil {
			return fmt.Errorf("scenario %q: mobile %q: iface %q: %w", w.Spec.Name, m.Name, ic.Name, err)
		}
		w.Devices[ic.Device] = d
		w.MIfaces[m.Name+"/"+ic.Name] = mi
	}
	w.Stacks[m.Name] = ts
	w.Mobiles[m.Name] = mh
	w.hosts[m.Name] = h
	return nil
}

// subnetSpec returns the subnet spec by name; Compile runs only on
// validated specs, so the name resolves.
func (w *World) subnetSpec(name string) *Subnet {
	for i := range w.Spec.Topology.Subnets {
		if w.Spec.Topology.Subnets[i].Name == name {
			return &w.Spec.Topology.Subnets[i]
		}
	}
	return nil
}

// Host returns any named host's stack.Host (router, end host, or mobile).
func (w *World) Host(name string) (*stack.Host, bool) {
	h, ok := w.hosts[name]
	return h, ok
}

// HostNames returns every host name, sorted.
func (w *World) HostNames() []string {
	names := make([]string, 0, len(w.hosts))
	for n := range w.hosts {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// RunFor advances the simulation.
func (w *World) RunFor(d time.Duration) { w.Loop.RunFor(d) }

// Close releases the world's per-loop global registrations (metrics,
// trace); call it when done with the world.
func (w *World) Close() {
	metrics.Release(w.Loop)
	trace.Release(w.Loop)
}
