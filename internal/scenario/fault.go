package scenario

import (
	"fmt"
	"time"

	"mosquitonet/internal/sim"
	"mosquitonet/internal/stats"
)

// FaultRecord is one injected fault's lifecycle, for the admin console
// and per-scenario reporting.
type FaultRecord struct {
	Kind   string   `json:"kind"`
	Target string   `json:"target"`
	Start  sim.Time `json:"start_ns"`
	End    sim.Time `json:"end_ns"` // 0 while still active
}

// Injector schedules fault events against a compiled world. Each fault
// strikes at its offset, heals after its duration, emits one fault.* root
// span covering the outage, and leaves behind a stats.Window so flow
// trackers can attribute disruption to it — the same mechanism handoff
// root spans use.
type Injector struct {
	w       *World
	windows []stats.Window
	records []FaultRecord
}

func newInjector(w *World) *Injector { return &Injector{w: w} }

// Schedule arms one fault, relative to the current virtual time (zero at
// compile, "now" when issued from the admin console). The fault's
// references are resolved against the world immediately so a bad name
// fails at schedule time, not mid-run.
func (in *Injector) Schedule(f Fault) error {
	if _, ok := faultSpanKinds[f.Kind]; !ok {
		return fmt.Errorf("fault: unknown kind %q (want one of %v)", f.Kind, FaultKinds)
	}
	if f.For <= 0 {
		return fmt.Errorf("fault %s: needs a positive duration", f.Kind)
	}
	switch f.Kind {
	case "link-flap":
		if _, ok := in.w.Devices[f.Device]; !ok {
			return fmt.Errorf("fault link-flap: unknown device %q", f.Device)
		}
	case "loss-burst":
		if _, ok := in.w.Networks[f.Subnet]; !ok {
			return fmt.Errorf("fault loss-burst: unknown subnet %q", f.Subnet)
		}
		if f.Prob <= 0 || f.Prob >= 1 {
			return fmt.Errorf("fault loss-burst: prob %v out of range (0,1)", f.Prob)
		}
	case "ha-crash":
		if _, ok := in.w.HAs[f.Router]; !ok {
			return fmt.Errorf("fault ha-crash: no home agent on router %q", f.Router)
		}
	case "agent-delay":
		if _, ok := in.w.HAs[f.Router]; !ok {
			return fmt.Errorf("fault agent-delay: no home agent on router %q", f.Router)
		}
		if f.Delay <= 0 {
			return fmt.Errorf("fault agent-delay: needs a positive delay")
		}
	}
	in.w.Loop.Schedule(f.At.D(), func() { in.strike(f) })
	return nil
}

// strike applies the fault, opens its span, and schedules the heal.
func (in *Injector) strike(f Fault) {
	loop := in.w.Loop
	kind := faultSpanKinds[f.Kind]
	var target string
	var heal func()
	switch f.Kind {
	case "link-flap":
		d := in.w.Devices[f.Device]
		target = f.Device
		d.BringDown()
		heal = func() { d.BringUp(nil) }
	case "loss-burst":
		n := in.w.Networks[f.Subnet]
		target = n.Name()
		prev := n.SetLossProb(f.Prob)
		heal = func() { n.SetLossProb(prev) }
	case "ha-crash":
		ha := in.w.HAs[f.Router]
		target = f.Router
		ha.Crash()
		heal = func() { ha.Restart() }
	case "agent-delay":
		ha := in.w.HAs[f.Router]
		target = f.Router
		prev := ha.SetProcessingDelay(f.Delay.D())
		heal = func() { ha.SetProcessingDelay(prev) }
	default:
		return // Schedule already rejected unknown kinds
	}

	sp := in.w.Tracer.StartChild(nil, target, kind)
	sp.Attrf("for", "%v", f.For.D())
	if f.Kind == "loss-burst" {
		sp.Attrf("prob", "%g", f.Prob)
	}
	if f.Kind == "agent-delay" {
		sp.Attrf("delay", "%v", f.Delay.D())
	}
	rec := len(in.records)
	in.records = append(in.records, FaultRecord{Kind: kind, Target: target, Start: loop.Now()})

	loop.Schedule(f.For.D(), func() {
		heal()
		sp.Done()
		in.records[rec].End = loop.Now()
		in.windows = append(in.windows, stats.Window{Kind: kind, Start: sp.Start, End: sp.End})
	})
}

// Windows returns the attribution windows of every healed fault, in heal
// order.
func (in *Injector) Windows() []stats.Window {
	return append([]stats.Window(nil), in.windows...)
}

// Records returns every fault's lifecycle record, in strike order.
func (in *Injector) Records() []FaultRecord {
	return append([]FaultRecord(nil), in.records...)
}

// String formats the injector state for the admin console.
func (in *Injector) String() string {
	if len(in.records) == 0 {
		return "no faults struck\n"
	}
	var b []byte
	for _, r := range in.records {
		state := "healed"
		if r.End == 0 {
			state = "active"
		}
		b = fmt.Appendf(b, "%-18s %-14s %s start=%v end=%v\n",
			r.Kind, r.Target, state, time.Duration(r.Start), time.Duration(r.End))
	}
	return string(b)
}
