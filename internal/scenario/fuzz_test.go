package scenario

import (
	"os"
	"reflect"
	"testing"
)

// FuzzScenarioParse pins the parser's two safety properties: it never
// panics on arbitrary input, and any input it accepts round-trips —
// Marshal of the parsed spec parses back to a DeepEqual spec, and the
// canonical form is a marshaling fixed point.
func FuzzScenarioParse(f *testing.F) {
	for _, file := range catalogFiles(f) {
		data, err := os.ReadFile(file)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(minimalSpec))
	f.Add([]byte(`{"version": 1, "name": "x", "topology": {"fleet": {"tiers": [10], "duration": "1s", "switch_period": "1s", "probe_interval": "100ms", "cross_every": 1, "barrier_group_size": 4, "router_delays": {}}}}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`[1, 2`))
	f.Add([]byte(`{"version": 1e99}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := Parse(data)
		if err != nil {
			return
		}
		out, err := Marshal(spec)
		if err != nil {
			t.Fatalf("marshal of accepted spec failed: %v", err)
		}
		spec2, err := Parse(out)
		if err != nil {
			t.Fatalf("canonical form did not re-parse: %v\n%s", err, out)
		}
		if !reflect.DeepEqual(spec, spec2) {
			t.Fatalf("spec changed across marshal/parse round trip:\n%s", out)
		}
		out2, err := Marshal(spec2)
		if err != nil {
			t.Fatal(err)
		}
		if string(out) != string(out2) {
			t.Fatal("canonical form is not a marshaling fixed point")
		}
	})
}
