package scenario

import (
	"fmt"
	"time"

	"mosquitonet/internal/ip"
	"mosquitonet/internal/mip"
)

const (
	// stepChunk is the granularity at which asynchronous steps advance the
	// loop while polling for completion. 20ms matches the hand-written
	// experiment drivers this package replaced — the chunk size quantizes
	// each step's virtual end time, so it is part of the behavior contract.
	stepChunk = 20 * time.Millisecond
	// defaultStepTimeout bounds an asynchronous step without an explicit
	// timeout.
	defaultStepTimeout = 30 * time.Second
)

// RunUntil advances the simulation in stepChunk increments until cond
// holds or maxWait elapses, reporting whether cond was met.
func (w *World) RunUntil(maxWait time.Duration, cond func() bool) bool {
	deadline := w.Loop.Now().Add(maxWait)
	for !cond() && w.Loop.Now() < deadline {
		w.Loop.RunFor(stepChunk)
	}
	return cond()
}

// resolveMobile returns the mobile a step addresses: the named one, or
// the spec's sole mobile.
func (w *World) resolveMobile(st Step) (*Mobile, *mip.MobileHost, error) {
	name := st.Mobile
	if name == "" {
		if len(w.Spec.Topology.Mobiles) != 1 {
			return nil, nil, fmt.Errorf("step %s: mobile must be named", st.Op)
		}
		name = w.Spec.Topology.Mobiles[0].Name
	}
	mh, ok := w.Mobiles[name]
	if !ok {
		return nil, nil, fmt.Errorf("step %s: unknown mobile %q", st.Op, name)
	}
	for i := range w.Spec.Topology.Mobiles {
		if w.Spec.Topology.Mobiles[i].Name == name {
			return &w.Spec.Topology.Mobiles[i], mh, nil
		}
	}
	return nil, nil, fmt.Errorf("step %s: mobile %q not in spec", st.Op, name)
}

// resolveIface returns the managed interface a step addresses.
func (w *World) resolveIface(m *Mobile, st Step) (*mip.ManagedIface, error) {
	mi, ok := w.MIfaces[m.Name+"/"+st.Iface]
	if !ok {
		return nil, fmt.Errorf("step %s: mobile %q has no iface %q", st.Op, m.Name, st.Iface)
	}
	return mi, nil
}

// Step executes one itinerary operation. Synchronous ops ("move",
// "settle") return immediately after their effect; asynchronous ops
// (switches, connects) advance the loop in stepChunk increments until the
// operation completes or the step's timeout (default 30s) elapses.
func (w *World) Step(st Step) error {
	switch st.Op {
	case "settle":
		w.Loop.RunFor(st.For.D())
		return nil
	}
	m, mh, err := w.resolveMobile(st)
	if err != nil {
		return err
	}
	gateway := func() ip.Addr {
		if st.Gateway != "" {
			return ip.MustParseAddr(st.Gateway)
		}
		return ip.MustParseAddr(m.HomeAgent)
	}
	var start func(done func(error))
	switch st.Op {
	case "move":
		mi, err := w.resolveIface(m, st)
		if err != nil {
			return err
		}
		// Carrying the device to another wall jack is instantaneous; the
		// reconnect is the following cold-switch / hot-switch step.
		mi.Iface().Device().Detach()
		mi.Iface().Device().Attach(w.Networks[st.To])
		return nil
	case "connect-home":
		mi, err := w.resolveIface(m, st)
		if err != nil {
			return err
		}
		start = func(done func(error)) { mh.ConnectHome(mi, gateway(), done) }
	case "cold-switch":
		mi, err := w.resolveIface(m, st)
		if err != nil {
			return err
		}
		start = func(done func(error)) { mh.ColdSwitch(mi, done) }
	case "cold-switch-home":
		mi, err := w.resolveIface(m, st)
		if err != nil {
			return err
		}
		start = func(done func(error)) { mh.ColdSwitchHome(mi, gateway(), done) }
	case "hot-switch":
		mi, err := w.resolveIface(m, st)
		if err != nil {
			return err
		}
		// Make-before-break: raise the target device, prepare it in the
		// background while the old interface keeps carrying traffic, then
		// switch over.
		start = func(done func(error)) {
			mi.Iface().Device().BringUp(func() {
				mh.Prepare(mi, func(err error) {
					if err != nil {
						done(err)
						return
					}
					mh.HotSwitch(mi, done)
				})
			})
		}
	case "switch-address":
		start = func(done func(error)) { mh.SwitchAddress(ip.MustParseAddr(st.Addr), done) }
	default:
		return fmt.Errorf("step: unknown op %q", st.Op)
	}

	timeout := st.Timeout.D()
	if timeout == 0 {
		timeout = defaultStepTimeout
	}
	finished, fail := false, error(nil)
	start(func(err error) { fail, finished = err, true })
	if !w.RunUntil(timeout, func() bool { return finished }) || fail != nil {
		return fmt.Errorf("step %s: done=%v err=%v", st.Op, finished, fail)
	}
	return nil
}

// RunItinerary executes steps in order, stopping at the first failure.
func (w *World) RunItinerary(steps []Step) error {
	for i := range steps {
		if err := w.Step(steps[i]); err != nil {
			return fmt.Errorf("itinerary step %d: %w", i, err)
		}
	}
	return nil
}
