package scenario

// Trace kinds emitted by the fault injector. Each scheduled fault is one
// root span covering [strike, heal], so disruption analyzers can use
// fault spans as attribution windows exactly like handoff roots.
const (
	KindFaultLinkFlap   = "fault.link.flap"
	KindFaultLossBurst  = "fault.loss.burst"
	KindFaultHACrash    = "fault.ha.crash"
	KindFaultAgentDelay = "fault.agent.delay"
)

// faultSpanKinds maps a fault spec kind to its span kind.
var faultSpanKinds = map[string]string{
	"link-flap":   KindFaultLinkFlap,
	"loss-burst":  KindFaultLossBurst,
	"ha-crash":    KindFaultHACrash,
	"agent-delay": KindFaultAgentDelay,
}

// FaultRootKinds reports whether a span kind is a fault root span.
func FaultRootKinds(kind string) bool {
	switch kind {
	case KindFaultLinkFlap, KindFaultLossBurst, KindFaultHACrash, KindFaultAgentDelay:
		return true
	}
	return false
}
