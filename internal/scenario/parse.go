package scenario

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Parse decodes and validates one scenario spec. The decode is strict:
// unknown fields are rejected (catching schema drift and typos at load
// time instead of silently ignoring them), and trailing data after the
// spec object is an error. The returned spec has passed Validate, except
// that a spec with Base set still needs ResolveBase before it can be
// compiled.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var spec Spec
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if err := checkTrailing(dec); err != nil {
		return nil, err
	}
	if err := Validate(&spec); err != nil {
		return nil, err
	}
	return &spec, nil
}

// checkTrailing rejects any non-whitespace content after the spec object.
func checkTrailing(dec *json.Decoder) error {
	if _, err := dec.Token(); !errors.Is(err, io.EOF) {
		return fmt.Errorf("scenario: trailing data after spec")
	}
	return nil
}

// Marshal renders a spec in the canonical on-disk form: two-space
// indented JSON with a trailing newline. Marshal(Parse(x)) parses back to
// a spec equal to Parse(x) — the FuzzScenarioParse target pins this.
func Marshal(spec *Spec) ([]byte, error) {
	out, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// ResolveBase fills in a Base-inheriting spec's topology from its base
// scenario, found via lookup (typically the scenario catalog directory).
// Specs without a base are returned unchanged. The returned spec is fully
// validated.
func ResolveBase(spec *Spec, lookup func(name string) (*Spec, error)) (*Spec, error) {
	if spec.Base == "" {
		return spec, nil
	}
	base, err := lookup(spec.Base)
	if err != nil {
		return nil, fmt.Errorf("scenario %q: base %q: %w", spec.Name, spec.Base, err)
	}
	if base.Base != "" {
		return nil, fmt.Errorf("scenario %q: base %q must not itself have a base", spec.Name, spec.Base)
	}
	resolved := *spec
	resolved.Base = ""
	resolved.Topology = base.Topology
	if err := Validate(&resolved); err != nil {
		return nil, err
	}
	return &resolved, nil
}
