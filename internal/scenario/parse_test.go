package scenario

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// catalogDir is the checked-in scenario catalog (embedded by the testbed
// package; read from disk here to avoid an import cycle).
var catalogDir = filepath.Join("..", "testbed", "testdata", "scenarios")

func catalogFiles(t testing.TB) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(catalogDir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatalf("no scenario files in %s", catalogDir)
	}
	return files
}

// minimalSpec is the smallest spec that passes Validate.
const minimalSpec = `{
  "version": 1,
  "name": "minimal",
  "topology": {
    "subnets": [
      {"name": "home", "prefix": "36.135.0.0/16", "medium": {"kind": "ethernet"}}
    ]
  }
}`

func TestParseCatalog(t *testing.T) {
	for _, f := range catalogFiles(t) {
		t.Run(filepath.Base(f), func(t *testing.T) {
			data, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			spec, err := Parse(data)
			if err != nil {
				t.Fatal(err)
			}
			// Canonical form round-trips to an identical spec and
			// identical bytes.
			out, err := Marshal(spec)
			if err != nil {
				t.Fatal(err)
			}
			spec2, err := Parse(out)
			if err != nil {
				t.Fatalf("re-parse of marshaled form: %v", err)
			}
			if !reflect.DeepEqual(spec, spec2) {
				t.Error("spec changed across a marshal/parse round trip")
			}
			out2, err := Marshal(spec2)
			if err != nil {
				t.Fatal(err)
			}
			if string(out) != string(out2) {
				t.Error("marshaled form is not a fixed point")
			}
		})
	}
}

func TestParseStrictness(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"unknown field", `{"version": 1, "name": "x", "topolgy": {}}`, "topolgy"},
		{"trailing data", minimalSpec + `{"again": true}`, "trailing data"},
		{"bad version", `{"version": 2, "name": "x", "topology": {}}`, "version 2 not supported"},
		{"missing name", `{"version": 1, "topology": {}}`, "missing name"},
		{"duration not string", `{"version": 1, "name": "x", "topology": {"fleet": {"duration": 5}}}`, "duration must be a string"},
		{"not json", `nope`, "invalid character"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.in))
			if err == nil {
				t.Fatal("parse accepted an invalid spec")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// mutate parses minimalSpec, applies f, and returns Validate's error.
func validateMutated(t *testing.T, f func(*Spec)) error {
	t.Helper()
	spec, err := Parse([]byte(minimalSpec))
	if err != nil {
		t.Fatal(err)
	}
	f(spec)
	return Validate(spec)
}

func TestValidateReferences(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Spec)
		wantErr string
	}{
		{"empty topology", func(s *Spec) { s.Topology = Topology{} }, "empty topology"},
		{"duplicate subnet", func(s *Spec) {
			s.Topology.Subnets = append(s.Topology.Subnets, s.Topology.Subnets[0])
		}, "duplicate name"},
		{"bad medium", func(s *Spec) { s.Topology.Subnets[0].Medium.Kind = "carrier-pigeon" }, "unknown medium kind"},
		{"medium params without custom", func(s *Spec) { s.Topology.Subnets[0].Medium.MTU = 1500 },
			`only valid with kind "custom"`},
		{"host outside subnet", func(s *Spec) {
			s.Topology.Hosts = []EndHost{{Name: "h", Subnet: "home", Addr: "10.0.0.1", Gateway: "36.135.0.1"}}
		}, "not in subnet"},
		{"host on unknown subnet", func(s *Spec) {
			s.Topology.Hosts = []EndHost{{Name: "h", Subnet: "dept", Addr: "36.8.0.2", Gateway: "36.8.0.1"}}
		}, `unknown subnet "dept"`},
		{"mobile without home agent", func(s *Spec) {
			s.Topology.Mobiles = []Mobile{{
				Name: "mh", HomeAddr: "36.135.0.7", HomeSubnet: "home", HomeAgent: "36.135.0.1",
				Ifaces: []MobileIface{{Name: "eth0", Device: "mh-eth", Attach: "home"}},
			}}
		}, "no home agent at 36.135.0.1"},
		{"probe on unknown host", func(s *Spec) {
			s.Traffic = &Traffic{Probes: []Probe{{
				Name: "p", From: "nobody", To: "nobody", Dst: "36.135.0.7", Port: 9, Interval: Duration(time.Second),
			}}}
		}, `unknown host "nobody"`},
		{"step with unknown op", func(s *Spec) {
			s.Itinerary = []Step{{Op: "teleport"}}
		}, `unknown op "teleport"`},
		{"fault with unknown kind", func(s *Spec) {
			s.Faults = []Fault{{Kind: "meteor", For: Duration(time.Second)}}
		}, `unknown kind "meteor"`},
		{"fault on unknown device", func(s *Spec) {
			s.Faults = []Fault{{Kind: "link-flap", For: Duration(time.Second), Device: "r-net-none"}}
		}, `unknown device "r-net-none"`},
		{"base with topology", func(s *Spec) { s.Base = "figure5" }, "topology is not empty"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateMutated(t, tc.mutate)
			if err == nil {
				t.Fatal("validate accepted an invalid spec")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// Validation errors must be deterministic: same spec, same first-failing
// field, same text.
func TestValidateDeterministicErrors(t *testing.T) {
	bad := strings.Replace(minimalSpec, `"kind": "ethernet"`, `"kind": "x"`, 1)
	_, err1 := Parse([]byte(bad))
	_, err2 := Parse([]byte(bad))
	if err1 == nil || err2 == nil {
		t.Fatal("expected errors")
	}
	if err1.Error() != err2.Error() {
		t.Errorf("error text diverged:\n  %v\n  %v", err1, err2)
	}
}

func TestResolveBase(t *testing.T) {
	base, err := Parse([]byte(minimalSpec))
	if err != nil {
		t.Fatal(err)
	}
	child, err := Parse([]byte(`{"version": 1, "name": "child", "base": "minimal"}`))
	if err != nil {
		t.Fatal(err)
	}
	lookup := func(name string) (*Spec, error) {
		if name != "minimal" {
			t.Fatalf("lookup of %q", name)
		}
		return base, nil
	}
	resolved, err := ResolveBase(child, lookup)
	if err != nil {
		t.Fatal(err)
	}
	if resolved.Base != "" || !reflect.DeepEqual(resolved.Topology, base.Topology) {
		t.Error("resolved spec did not inherit the base topology")
	}
	if resolved.Name != "child" {
		t.Errorf("resolved name = %q, want child", resolved.Name)
	}
	// A base must itself be base-free.
	child2 := *child
	basey := *base
	basey.Base = "deeper"
	if _, err := ResolveBase(&child2, func(string) (*Spec, error) { return &basey, nil }); err == nil {
		t.Error("ResolveBase accepted a base that itself has a base")
	}
	// A base-free spec passes through untouched.
	same, err := ResolveBase(base, nil)
	if err != nil || same != base {
		t.Error("base-free spec was not returned unchanged")
	}
}

func TestDurationJSON(t *testing.T) {
	for _, d := range []time.Duration{0, 50 * time.Millisecond, 1210 * time.Microsecond, 3 * time.Second} {
		b, err := json.Marshal(Duration(d))
		if err != nil {
			t.Fatal(err)
		}
		var got Duration
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatal(err)
		}
		if got.D() != d {
			t.Errorf("%v round-tripped to %v via %s", d, got, b)
		}
	}
	var d Duration
	if err := json.Unmarshal([]byte(`250`), &d); err == nil {
		t.Error("numeric duration accepted")
	}
	if err := json.Unmarshal([]byte(`"fast"`), &d); err == nil {
		t.Error("non-duration string accepted")
	}
}

// Compiling a parsed catalog scenario produces a world whose hosts match
// the spec's topology.
func TestCompileFaultdemo(t *testing.T) {
	data, err := os.ReadFile(filepath.Join(catalogDir, "faultdemo.json"))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	w, err := Compile(1, spec)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for _, name := range []string{"router", "ch", "mh"} {
		if _, ok := w.Host(name); !ok {
			t.Errorf("compiled world has no host %q (have %v)", name, w.HostNames())
		}
	}
	if _, ok := w.HAs["router"]; !ok {
		t.Error("compiled world has no home agent on router")
	}
	if err := w.Faults.Schedule(Fault{Kind: "ha-crash", For: Duration(time.Second), Router: "ghost"}); err == nil {
		t.Error("injector accepted a fault on an unknown router")
	}
}
