// Package scenario makes experiments declarative: a versioned JSON schema
// for topology (subnets, routers, end hosts, mobile hosts, sharded
// fleets), mobility itineraries, traffic mixes (probe flows, MQTT-style
// pub/sub, HTTP-style request/response), and a fault-injection schedule —
// plus the machinery that turns a spec into a running world:
//
//   - Parse / Marshal: a strict parser (unknown fields rejected, trailing
//     data rejected) whose output round-trips byte-stably;
//   - Validate: deterministic reference resolution and bounds checking,
//     reported in spec order so two runs produce identical error text;
//   - Compile: lowering onto the existing sim/link/stack/mip/dhcp/app
//     builders, in strict spec order so a compiled world is byte-identical
//     to the hand-written construction it replaced;
//   - Injector: first-class scheduled fault events (link flaps, home-agent
//     crashes, loss bursts, registration-delay spikes) with fault.* trace
//     spans that double as disruption-attribution windows;
//   - Console: the runtime admin surface (inspect/mutate routes, bindings,
//     policies, hooks and faults mid-run) behind `mnet -admin`;
//   - GenerateSweep: a seeded, deterministic randomized-scenario generator
//     that perturbs itineraries, traffic and fault schedules within schema
//     bounds.
//
// The checked-in experiment scenarios live in
// internal/testbed/testdata/scenarios/ and are validated against the
// current schema by the scenariogolden mnetlint analyzer. See DESIGN.md
// §14 for the schema, the compiler's lowering rules, and the fault-event
// semantics.
package scenario

import (
	"encoding/json"
	"fmt"
	"time"
)

// SchemaVersion is the current scenario schema version. Parse rejects any
// other value, so schema evolution is always an explicit migration.
const SchemaVersion = 1

// Duration is a time.Duration that marshals as its String() form
// ("250ms", "1.21ms") and unmarshals via time.ParseDuration. The string
// form round-trips exactly, which the parser's fuzz target pins.
type Duration time.Duration

// D returns the native duration.
func (d Duration) D() time.Duration { return time.Duration(d) }

func (d Duration) String() string { return time.Duration(d).String() }

// MarshalJSON renders the duration as a JSON string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts only a JSON string in time.ParseDuration syntax.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("duration must be a string like \"250ms\": %w", err)
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return err
	}
	*d = Duration(v)
	return nil
}

// Spec is one complete scenario: what to build, how the mobile host moves,
// what traffic flows, and which faults strike when.
type Spec struct {
	Version     int    `json:"version"`
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`

	// Base names another scenario whose topology this one inherits. A
	// spec with Base set must leave Topology empty; ResolveBase fills it.
	Base string `json:"base,omitempty"`

	Topology  Topology `json:"topology"`
	Traffic   *Traffic `json:"traffic,omitempty"`
	Itinerary []Step   `json:"itinerary,omitempty"`
	Faults    []Fault  `json:"faults,omitempty"`
}

// Topology declares the world: either subnets/routers/hosts/mobiles for a
// single-loop world, or a Fleet for the sharded campus-scale topology.
type Topology struct {
	Subnets []Subnet  `json:"subnets,omitempty"`
	Routers []Router  `json:"routers,omitempty"`
	Hosts   []EndHost `json:"hosts,omitempty"`
	Mobiles []Mobile  `json:"mobiles,omitempty"`
	Fleet   *Fleet    `json:"fleet,omitempty"`
}

// IsZero reports whether the topology declares nothing (a base-inheriting
// spec before resolution).
func (t Topology) IsZero() bool {
	return len(t.Subnets) == 0 && len(t.Routers) == 0 && len(t.Hosts) == 0 &&
		len(t.Mobiles) == 0 && t.Fleet == nil
}

// MediumKinds are the named media a subnet may use; "custom" takes the
// inline latency/bandwidth/loss fields.
var MediumKinds = []string{"ethernet", "radio", "serial", "backbone", "custom"}

// Medium selects a link medium: one of the calibrated named media, or a
// custom one described inline.
type Medium struct {
	Kind string `json:"kind"`
	// The fields below apply only to kind "custom".
	Name          string   `json:"name,omitempty"`
	Latency       Duration `json:"latency,omitempty"`
	LatencyJitter Duration `json:"latency_jitter,omitempty"`
	BitRate       int64    `json:"bit_rate,omitempty"`
	LossProb      float64  `json:"loss_prob,omitempty"`
	MTU           int      `json:"mtu,omitempty"`
}

// Subnet is one broadcast domain.
type Subnet struct {
	Name string `json:"name"`
	// Network is the link.Network name; defaults to "net-<name>".
	Network      string `json:"network,omitempty"`
	Prefix       string `json:"prefix"`
	Medium       Medium `json:"medium"`
	PointToPoint bool   `json:"point_to_point,omitempty"`
}

// NetworkName returns the link-layer network name for the subnet.
func (s Subnet) NetworkName() string {
	if s.Network != "" {
		return s.Network
	}
	return "net-" + s.Name
}

// Delays are a host's per-packet software costs.
type Delays struct {
	Input   Duration `json:"input,omitempty"`
	Output  Duration `json:"output,omitempty"`
	Forward Duration `json:"forward,omitempty"`
}

// Router is a forwarding host with one interface per listed subnet, and
// optionally a collocated home agent and DHCP service.
type Router struct {
	Name      string         `json:"name"`
	Delays    Delays         `json:"delays"`
	Ifaces    []RouterIface  `json:"ifaces"`
	HomeAgent *HomeAgentSpec `json:"home_agent,omitempty"`
	DHCP      *DHCPSpec      `json:"dhcp,omitempty"`
}

// RouterIface is one router attachment.
type RouterIface struct {
	Subnet string `json:"subnet"`
	Addr   string `json:"addr"`
}

// HomeAgentSpec collocates a mobile-IP home agent on a router.
type HomeAgentSpec struct {
	Subnet     string   `json:"subnet"`
	Processing Duration `json:"processing,omitempty"`
}

// DHCPSpec collocates a DHCP server on a router, leasing host numbers
// [FirstHost, LastHost] on the subnet.
type DHCPSpec struct {
	Subnet     string   `json:"subnet"`
	FirstHost  int      `json:"first_host"`
	LastHost   int      `json:"last_host"`
	Processing Duration `json:"processing,omitempty"`
}

// EndHost is an ordinary (non-mobile) host with a default route.
type EndHost struct {
	Name    string   `json:"name"`
	Subnet  string   `json:"subnet"`
	Addr    string   `json:"addr"`
	Gateway string   `json:"gateway"`
	Delay   Duration `json:"delay,omitempty"`
}

// Mobile is a mobile host with managed interfaces.
type Mobile struct {
	Name             string        `json:"name"`
	HomeAddr         string        `json:"home_addr"`
	HomeSubnet       string        `json:"home_subnet"`
	HomeAgent        string        `json:"home_agent"` // the agent's address
	Lifetime         Duration      `json:"lifetime,omitempty"`
	ConfigureDelay   Duration      `json:"configure_delay,omitempty"`
	RouteChangeDelay Duration      `json:"route_change_delay,omitempty"`
	Delay            Duration      `json:"delay,omitempty"`
	Ifaces           []MobileIface `json:"ifaces"`
}

// MobileIface is one interface under mobility management. A nil Static
// means the interface configures itself by DHCP when visiting foreign
// subnets.
type MobileIface struct {
	Name          string      `json:"name"`
	Device        string      `json:"device"`
	Attach        string      `json:"attach"` // initial subnet
	BringUp       Duration    `json:"bring_up,omitempty"`
	BringUpJitter Duration    `json:"bring_up_jitter,omitempty"`
	Static        *StaticAddr `json:"static,omitempty"`
}

// StaticAddr fixes a foreign interface's address and gateway (the prefix
// is the attach subnet's).
type StaticAddr struct {
	Addr    string `json:"addr"`
	Gateway string `json:"gateway"`
}

// Fleet declares the sharded campus-scale roaming topology: N mobile
// hosts partitioned over campus shards joined to a backbone hub by
// point-to-point trunks. The shard count, addressing plan, and barrier
// grouping are pure functions of the tier size (DESIGN.md §14 lowering
// rules), so results are byte-identical at any worker count.
type Fleet struct {
	Tiers            []int    `json:"tiers"`
	Duration         Duration `json:"duration"`
	SwitchPeriod     Duration `json:"switch_period"`
	ProbeInterval    Duration `json:"probe_interval"`
	ProbeStart       Duration `json:"probe_start"`
	CrossEvery       int      `json:"cross_every"`
	BarrierGroupSize int      `json:"barrier_group_size"`
	Stagger          Duration `json:"stagger"`

	RouterDelays Delays   `json:"router_delays"`
	MobileDelay  Duration `json:"mobile_delay,omitempty"`
	HostDelay    Duration `json:"host_delay,omitempty"`
	HAProcessing Duration `json:"ha_processing,omitempty"`
	RegLifetime  Duration `json:"reg_lifetime,omitempty"`
}

// StepOps are the itinerary operations.
var StepOps = []string{
	"connect-home", "settle", "move", "cold-switch", "cold-switch-home",
	"hot-switch", "switch-address",
}

// Step is one itinerary operation. Ops that complete asynchronously
// (switches, connects) run the loop until done or Timeout (default 30s).
type Step struct {
	Op      string   `json:"op"`
	Mobile  string   `json:"mobile,omitempty"` // defaults to the sole mobile
	Iface   string   `json:"iface,omitempty"`
	To      string   `json:"to,omitempty"`   // move: target subnet
	Addr    string   `json:"addr,omitempty"` // switch-address
	Gateway string   `json:"gateway,omitempty"`
	For     Duration `json:"for,omitempty"` // settle duration
	Timeout Duration `json:"timeout,omitempty"`
}

// Traffic declares the workload mix.
type Traffic struct {
	Probes []Probe   `json:"probes,omitempty"`
	MQTT   *MQTTSpec `json:"mqtt,omitempty"`
	HTTP   *HTTPSpec `json:"http,omitempty"`
	// Drain bounds the post-itinerary wait for reliable flows to deliver
	// everything in flight.
	Drain Duration `json:"drain,omitempty"`
}

// Probe is a one-way sequence-numbered UDP flow into a stats.FlowTracker.
type Probe struct {
	Name     string   `json:"name"`
	From     string   `json:"from"` // sending host
	To       string   `json:"to"`   // receiving host (wildcard-bound sink)
	Dst      string   `json:"dst"`  // destination address
	Port     int      `json:"port"`
	Interval Duration `json:"interval"`
}

// Service places a server on a host and port.
type Service struct {
	Host string `json:"host"`
	Port int    `json:"port"`
}

// MQTTSpec is a broker plus clients plus QoS-tracked publications.
type MQTTSpec struct {
	Broker  Service       `json:"broker"`
	Clients []MQTTClient  `json:"clients"`
	Pubs    []Publication `json:"publications"`
}

// MQTTClient is one named client session on a host.
type MQTTClient struct {
	Name string `json:"name"`
	Host string `json:"host"`
}

// Publication is one open-loop QoS-tracked topic flow from one client to
// a subscribing client.
type Publication struct {
	Topic    string   `json:"topic"`
	From     string   `json:"from"` // publishing client name
	To       string   `json:"to"`   // subscribing client name
	QoS      int      `json:"qos"`
	Interval Duration `json:"interval"`
	Size     int      `json:"size"`
}

// HTTPSpec is a request/response server plus client flows.
type HTTPSpec struct {
	Server Service    `json:"server"`
	Flows  []HTTPFlow `json:"flows"`
}

// HTTPFlow is one request flow: open-loop (fixed interval) or closed-loop
// (think time after each response).
type HTTPFlow struct {
	Name     string   `json:"name"`
	Client   string   `json:"client"` // client label, for trace attribution
	Host     string   `json:"host"`
	Path     string   `json:"path"`
	Closed   bool     `json:"closed,omitempty"`
	Interval Duration `json:"interval"`
	Size     int      `json:"size"`
}

// FaultKinds are the schedulable fault-injection primitives.
var FaultKinds = []string{"link-flap", "loss-burst", "ha-crash", "agent-delay"}

// Fault is one scheduled fault event: at At, the fault strikes; after For,
// it heals. Each emits a fault.* span covering [At, At+For].
type Fault struct {
	At   Duration `json:"at"`
	Kind string   `json:"kind"`
	For  Duration `json:"for"`

	Device string   `json:"device,omitempty"` // link-flap: device name
	Subnet string   `json:"subnet,omitempty"` // loss-burst: subnet name
	Prob   float64  `json:"prob,omitempty"`   // loss-burst: loss probability
	Router string   `json:"router,omitempty"` // ha-crash / agent-delay
	Delay  Duration `json:"delay,omitempty"`  // agent-delay: processing delay
}
