package scenario

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// The sweep generator derives randomized-but-valid scenario variants from
// a resolved template: same topology, perturbed probe cadence, a random
// legal roaming walk, and a random fault schedule. All randomness comes
// from one seeded rand.Rand consumed in a fixed order, so a (base, seed,
// n) triple always yields the same variants — the sweep is an experiment,
// not a fuzzer, and its BENCH artifact is byte-stable.

// Sweep perturbation bounds.
var (
	sweepProbeIntervals = []time.Duration{
		25 * time.Millisecond, 50 * time.Millisecond, 75 * time.Millisecond, 100 * time.Millisecond,
	}
	sweepMinMoves    = 2
	sweepMaxMoves    = 4
	sweepBaseSettle  = 3 * time.Second
	sweepSettleStep  = 500 * time.Millisecond
	sweepSettleSteps = 7 // settle in [3s, 6s], 500ms quanta
)

// GenerateSweep derives n variants of base (which must be resolved and
// carry at least one mobile, one router, and one probe). Variant i is
// named "<base>-NNN"; every variant passes Validate before it is
// returned.
func GenerateSweep(base *Spec, seed int64, n int) ([]*Spec, error) {
	if base.Base != "" {
		return nil, fmt.Errorf("sweep: base %q unresolved (call ResolveBase)", base.Name)
	}
	if err := Validate(base); err != nil {
		return nil, fmt.Errorf("sweep: base %q: %w", base.Name, err)
	}
	if len(base.Topology.Mobiles) == 0 || len(base.Topology.Routers) == 0 {
		return nil, fmt.Errorf("sweep: base %q needs a mobile and a router", base.Name)
	}
	if base.Traffic == nil || len(base.Traffic.Probes) == 0 {
		return nil, fmt.Errorf("sweep: base %q needs a probe to score", base.Name)
	}
	if base.Topology.Routers[0].DHCP == nil {
		return nil, fmt.Errorf("sweep: base %q: router %q has no DHCP subnet to roam to", base.Name, base.Topology.Routers[0].Name)
	}

	//lint:allow seededrand generation-time stream seeded by the caller's explicit sweep seed; no sim.Loop exists yet
	rng := rand.New(rand.NewSource(seed))
	variants := make([]*Spec, 0, n)
	for i := 0; i < n; i++ {
		// Deep-copy through the wire format so the variants share nothing
		// with the base or each other.
		data, err := Marshal(base)
		if err != nil {
			return nil, fmt.Errorf("sweep: %w", err)
		}
		sp, err := Parse(data)
		if err != nil {
			return nil, fmt.Errorf("sweep: re-parse: %w", err)
		}
		sp.Name = fmt.Sprintf("%s-%03d", base.Name, i)
		sp.Description = fmt.Sprintf("sweep variant %d of %s (seed %d)", i, base.Name, seed)

		for p := range sp.Traffic.Probes {
			sp.Traffic.Probes[p].Interval = Duration(sweepProbeIntervals[rng.Intn(len(sweepProbeIntervals))])
		}
		totalSettle := perturbItinerary(sp, rng)
		scheduleFaults(sp, rng, totalSettle)

		if err := Validate(sp); err != nil {
			return nil, fmt.Errorf("sweep: generated %s invalid: %w", sp.Name, err)
		}
		variants = append(variants, sp)
	}
	return variants, nil
}

// perturbItinerary appends a random legal roaming walk to the template's
// itinerary (which must end with the mobile attached at home) and returns
// the walk's total settle time, for fault placement. The walk is a state
// machine over the Figure-5 locations: home moves to the department;
// the department offers a same-subnet address switch, a cold switch to
// the radio, or a cold switch home; the radio hot-switches back to the
// department wire.
func perturbItinerary(sp *Spec, rng *rand.Rand) time.Duration {
	m := &sp.Topology.Mobiles[0]
	wired := m.Ifaces[0].Name
	deptSubnet := sp.Topology.Routers[0].DHCP.Subnet

	settle := func() Step {
		d := sweepBaseSettle + time.Duration(rng.Intn(sweepSettleSteps))*sweepSettleStep
		return Step{Op: "settle", For: Duration(d)}
	}

	var total time.Duration
	add := func(steps ...Step) {
		sp.Itinerary = append(sp.Itinerary, steps...)
		for _, st := range steps {
			total += st.For.D()
		}
	}

	loc := "home"
	moves := sweepMinMoves + rng.Intn(sweepMaxMoves-sweepMinMoves+1)
	for mv := 0; mv < moves; mv++ {
		switch loc {
		case "home":
			add(Step{Op: "move", Iface: wired, To: deptSubnet}, Step{Op: "cold-switch", Iface: wired}, settle())
			loc = "dept"
		case "dept":
			switch rng.Intn(3) {
			case 0:
				addr := fmt.Sprintf("36.8.0.%d", 200+rng.Intn(20))
				add(Step{Op: "switch-address", Addr: addr}, settle())
			case 1:
				if len(m.Ifaces) > 1 {
					add(Step{Op: "cold-switch", Iface: m.Ifaces[1].Name}, settle())
					loc = "radio"
				} else {
					add(settle())
				}
			case 2:
				add(Step{Op: "move", Iface: wired, To: m.HomeSubnet}, Step{Op: "cold-switch-home", Iface: wired}, settle())
				loc = "home"
			}
		case "radio":
			add(Step{Op: "hot-switch", Iface: wired}, settle())
			loc = "dept"
		}
	}
	return total
}

// scheduleFaults arms 0-2 random faults inside the walk (strike no
// earlier than 2s in, heal at least a settle before the itinerary's
// settle budget runs out), sorted by strike time.
func scheduleFaults(sp *Spec, rng *rand.Rand, totalSettle time.Duration) {
	r := &sp.Topology.Routers[0]
	deptSubnet := r.DHCP.Subnet
	var flapDevice string
	for i := range sp.Topology.Subnets {
		if sp.Topology.Subnets[i].Name == deptSubnet {
			flapDevice = routerDeviceName(&sp.Topology.Subnets[i])
		}
	}

	lo, hi := 2*time.Second, totalSettle-4*time.Second
	if hi <= lo {
		return
	}
	at := func() Duration {
		return Duration(lo + time.Duration(rng.Int63n(int64(hi-lo))).Round(time.Millisecond))
	}

	var faults []Fault
	for i, count := 0, rng.Intn(3); i < count; i++ {
		switch rng.Intn(3) {
		case 0:
			faults = append(faults, Fault{
				At: at(), Kind: "loss-burst", For: Duration(time.Second + time.Duration(rng.Intn(3))*500*time.Millisecond),
				Subnet: deptSubnet, Prob: 0.1 + 0.1*float64(rng.Intn(4)),
			})
		case 1:
			faults = append(faults, Fault{
				At: at(), Kind: "link-flap", For: Duration(500*time.Millisecond + time.Duration(rng.Intn(3))*500*time.Millisecond),
				Device: flapDevice,
			})
		case 2:
			faults = append(faults, Fault{
				At: at(), Kind: "agent-delay", For: Duration(2*time.Second + time.Duration(rng.Intn(4))*time.Second),
				Router: r.Name, Delay: Duration(2*time.Millisecond + time.Duration(rng.Intn(9))*time.Millisecond),
			})
		}
	}
	sort.SliceStable(faults, func(a, b int) bool { return faults[a].At < faults[b].At })
	sp.Faults = append(sp.Faults, faults...)
}
