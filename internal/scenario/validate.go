package scenario

import (
	"fmt"
	"slices"

	"mosquitonet/internal/ip"
)

// Validate checks a spec for internal consistency: schema version, unique
// names, parseable addresses inside their subnet prefixes, and that every
// cross-reference (subnets, hosts, devices, clients, routers) resolves.
// Errors are reported in spec order — first failing field wins — so the
// same spec always yields the same error text.
func Validate(spec *Spec) error {
	if spec.Version != SchemaVersion {
		return fmt.Errorf("scenario: version %d not supported (want %d)", spec.Version, SchemaVersion)
	}
	if spec.Name == "" {
		return fmt.Errorf("scenario: missing name")
	}
	if spec.Base != "" {
		if !spec.Topology.IsZero() {
			return fmt.Errorf("scenario %q: base %q set but topology is not empty", spec.Name, spec.Base)
		}
		// Topology-dependent checks run after ResolveBase.
		return nil
	}
	v := &validator{spec: spec}
	return v.run()
}

// validator carries the resolved name sets built up while walking the
// spec in order.
type validator struct {
	spec     *Spec
	subnets  map[string]ip.Prefix
	devices  map[string]bool
	routers  map[string]bool
	hosts    map[string]bool // every addressable host: routers, end hosts, mobiles
	mobiles  map[string]*Mobile
	clients  map[string]bool // MQTT client names
	haAddrs  map[string]bool // addresses hosting a home agent
	dhcpNets map[string]bool // subnets served by DHCP
}

func (v *validator) run() error {
	t := &v.spec.Topology
	if t.IsZero() {
		return fmt.Errorf("scenario %q: empty topology (set topology or base)", v.spec.Name)
	}
	if t.Fleet != nil {
		if len(t.Subnets) > 0 || len(t.Routers) > 0 || len(t.Hosts) > 0 || len(t.Mobiles) > 0 {
			return fmt.Errorf("scenario %q: fleet topology must not also declare subnets/routers/hosts/mobiles", v.spec.Name)
		}
		if err := v.fleet(t.Fleet); err != nil {
			return err
		}
		if v.spec.Traffic != nil || len(v.spec.Itinerary) > 0 || len(v.spec.Faults) > 0 {
			return fmt.Errorf("scenario %q: fleet scenarios take no traffic/itinerary/faults (the fleet schedule is self-contained)", v.spec.Name)
		}
		return nil
	}
	v.subnets = map[string]ip.Prefix{}
	v.devices = map[string]bool{}
	v.routers = map[string]bool{}
	v.hosts = map[string]bool{}
	v.mobiles = map[string]*Mobile{}
	v.clients = map[string]bool{}
	v.haAddrs = map[string]bool{}
	v.dhcpNets = map[string]bool{}
	for i := range t.Subnets {
		if err := v.subnet(&t.Subnets[i]); err != nil {
			return err
		}
	}
	if len(t.Subnets) == 0 {
		return fmt.Errorf("scenario %q: no subnets", v.spec.Name)
	}
	for i := range t.Routers {
		if err := v.router(&t.Routers[i]); err != nil {
			return err
		}
	}
	for i := range t.Hosts {
		if err := v.endHost(&t.Hosts[i]); err != nil {
			return err
		}
	}
	for i := range t.Mobiles {
		if err := v.mobile(&t.Mobiles[i]); err != nil {
			return err
		}
	}
	if v.spec.Traffic != nil {
		if err := v.traffic(v.spec.Traffic); err != nil {
			return err
		}
	}
	for i := range v.spec.Itinerary {
		if err := v.step(i, &v.spec.Itinerary[i]); err != nil {
			return err
		}
	}
	for i := range v.spec.Faults {
		if err := v.fault(i, &v.spec.Faults[i]); err != nil {
			return err
		}
	}
	return nil
}

func (v *validator) subnet(s *Subnet) error {
	ctx := fmt.Sprintf("scenario %q: subnet %q", v.spec.Name, s.Name)
	if s.Name == "" {
		return fmt.Errorf("scenario %q: subnet with empty name", v.spec.Name)
	}
	if _, dup := v.subnets[s.Name]; dup {
		return fmt.Errorf("%s: duplicate name", ctx)
	}
	pfx, err := ip.ParsePrefix(s.Prefix)
	if err != nil {
		return fmt.Errorf("%s: %w", ctx, err)
	}
	if !slices.Contains(MediumKinds, s.Medium.Kind) {
		return fmt.Errorf("%s: unknown medium kind %q (want one of %v)", ctx, s.Medium.Kind, MediumKinds)
	}
	if s.Medium.Kind == "custom" {
		m := s.Medium
		if m.BitRate <= 0 || m.MTU <= 0 {
			return fmt.Errorf("%s: custom medium needs positive bit_rate and mtu", ctx)
		}
		if m.LossProb < 0 || m.LossProb >= 1 {
			return fmt.Errorf("%s: loss_prob %v out of range [0,1)", ctx, m.LossProb)
		}
		if m.Latency < 0 || m.LatencyJitter < 0 {
			return fmt.Errorf("%s: negative latency", ctx)
		}
	} else if s.Medium.Name != "" || s.Medium.BitRate != 0 || s.Medium.MTU != 0 ||
		s.Medium.Latency != 0 || s.Medium.LatencyJitter != 0 || s.Medium.LossProb != 0 {
		return fmt.Errorf("%s: medium parameters are only valid with kind \"custom\"", ctx)
	}
	v.subnets[s.Name] = pfx
	return nil
}

// addrIn parses addr and requires it to fall inside the named subnet.
func (v *validator) addrIn(ctx, addr, subnet string) error {
	a, err := ip.ParseAddr(addr)
	if err != nil {
		return fmt.Errorf("%s: %w", ctx, err)
	}
	if pfx, ok := v.subnets[subnet]; ok && !pfx.Contains(a) {
		return fmt.Errorf("%s: address %s not in subnet %q (%s)", ctx, addr, subnet, pfx)
	}
	return nil
}

func (v *validator) hostName(ctx, name string) error {
	if name == "" {
		return fmt.Errorf("%s: empty host name", ctx)
	}
	if v.hosts[name] {
		return fmt.Errorf("%s: duplicate host name %q", ctx, name)
	}
	v.hosts[name] = true
	return nil
}

func (v *validator) deviceName(ctx, name string) error {
	if v.devices[name] {
		return fmt.Errorf("%s: duplicate device name %q", ctx, name)
	}
	v.devices[name] = true
	return nil
}

func (v *validator) router(r *Router) error {
	ctx := fmt.Sprintf("scenario %q: router %q", v.spec.Name, r.Name)
	if err := v.hostName(ctx, r.Name); err != nil {
		return err
	}
	v.routers[r.Name] = true
	if len(r.Ifaces) == 0 {
		return fmt.Errorf("%s: no ifaces", ctx)
	}
	seen := map[string]bool{}
	for i := range r.Ifaces {
		ifc := &r.Ifaces[i]
		if _, ok := v.subnets[ifc.Subnet]; !ok {
			return fmt.Errorf("%s: iface %d: unknown subnet %q", ctx, i, ifc.Subnet)
		}
		if seen[ifc.Subnet] {
			return fmt.Errorf("%s: duplicate iface on subnet %q", ctx, ifc.Subnet)
		}
		seen[ifc.Subnet] = true
		if err := v.addrIn(ctx, ifc.Addr, ifc.Subnet); err != nil {
			return err
		}
		if err := v.deviceName(ctx, routerDeviceName(v.subnetByName(ifc.Subnet))); err != nil {
			return err
		}
	}
	if ha := r.HomeAgent; ha != nil {
		ifc := r.ifaceOn(ha.Subnet)
		if ifc == nil {
			return fmt.Errorf("%s: home_agent subnet %q has no router iface", ctx, ha.Subnet)
		}
		v.haAddrs[ifc.Addr] = true
	}
	if d := r.DHCP; d != nil {
		ifc := r.ifaceOn(d.Subnet)
		if ifc == nil {
			return fmt.Errorf("%s: dhcp subnet %q has no router iface", ctx, d.Subnet)
		}
		pfx := v.subnets[d.Subnet]
		if d.FirstHost < 1 || d.LastHost < d.FirstHost || d.LastHost > pfx.HostCount() {
			return fmt.Errorf("%s: dhcp host range [%d,%d] invalid for %s", ctx, d.FirstHost, d.LastHost, pfx)
		}
		v.dhcpNets[d.Subnet] = true
	}
	return nil
}

// ifaceOn returns the router iface on the named subnet, if any.
func (r *Router) ifaceOn(subnet string) *RouterIface {
	for i := range r.Ifaces {
		if r.Ifaces[i].Subnet == subnet {
			return &r.Ifaces[i]
		}
	}
	return nil
}

// subnetByName returns the subnet spec by name (nil if absent).
func (v *validator) subnetByName(name string) *Subnet {
	for i := range v.spec.Topology.Subnets {
		if v.spec.Topology.Subnets[i].Name == name {
			return &v.spec.Topology.Subnets[i]
		}
	}
	return nil
}

func (v *validator) endHost(h *EndHost) error {
	ctx := fmt.Sprintf("scenario %q: host %q", v.spec.Name, h.Name)
	if err := v.hostName(ctx, h.Name); err != nil {
		return err
	}
	if _, ok := v.subnets[h.Subnet]; !ok {
		return fmt.Errorf("%s: unknown subnet %q", ctx, h.Subnet)
	}
	if err := v.addrIn(ctx, h.Addr, h.Subnet); err != nil {
		return err
	}
	if err := v.addrIn(ctx+" gateway", h.Gateway, h.Subnet); err != nil {
		return err
	}
	return v.deviceName(ctx, h.Name+"-eth")
}

func (v *validator) mobile(m *Mobile) error {
	ctx := fmt.Sprintf("scenario %q: mobile %q", v.spec.Name, m.Name)
	if err := v.hostName(ctx, m.Name); err != nil {
		return err
	}
	if _, ok := v.subnets[m.HomeSubnet]; !ok {
		return fmt.Errorf("%s: unknown home_subnet %q", ctx, m.HomeSubnet)
	}
	if err := v.addrIn(ctx, m.HomeAddr, m.HomeSubnet); err != nil {
		return err
	}
	if err := v.addrIn(ctx+" home_agent", m.HomeAgent, m.HomeSubnet); err != nil {
		return err
	}
	if !v.haAddrs[m.HomeAgent] {
		return fmt.Errorf("%s: no home agent at %s", ctx, m.HomeAgent)
	}
	if len(m.Ifaces) == 0 {
		return fmt.Errorf("%s: no ifaces", ctx)
	}
	seen := map[string]bool{}
	for i := range m.Ifaces {
		ifc := &m.Ifaces[i]
		ictx := fmt.Sprintf("%s: iface %q", ctx, ifc.Name)
		if ifc.Name == "" || ifc.Device == "" {
			return fmt.Errorf("%s: iface %d needs name and device", ctx, i)
		}
		if seen[ifc.Name] {
			return fmt.Errorf("%s: duplicate iface %q", ctx, ifc.Name)
		}
		seen[ifc.Name] = true
		if err := v.deviceName(ictx, ifc.Device); err != nil {
			return err
		}
		if _, ok := v.subnets[ifc.Attach]; !ok {
			return fmt.Errorf("%s: unknown attach subnet %q", ictx, ifc.Attach)
		}
		if st := ifc.Static; st != nil {
			if err := v.addrIn(ictx, st.Addr, ifc.Attach); err != nil {
				return err
			}
			if err := v.addrIn(ictx+" gateway", st.Gateway, ifc.Attach); err != nil {
				return err
			}
		}
	}
	v.mobiles[m.Name] = m
	return nil
}

func (v *validator) fleet(f *Fleet) error {
	ctx := fmt.Sprintf("scenario %q: fleet", v.spec.Name)
	if len(f.Tiers) == 0 {
		return fmt.Errorf("%s: no tiers", ctx)
	}
	for _, n := range f.Tiers {
		if n < 1 || n > 1_000_000 {
			return fmt.Errorf("%s: tier %d out of range [1,1000000] hosts", ctx, n)
		}
	}
	if f.Duration <= 0 || f.SwitchPeriod <= 0 || f.ProbeInterval <= 0 {
		return fmt.Errorf("%s: duration, switch_period and probe_interval must be positive", ctx)
	}
	if f.CrossEvery < 1 {
		return fmt.Errorf("%s: cross_every must be >= 1", ctx)
	}
	if f.BarrierGroupSize < 1 {
		return fmt.Errorf("%s: barrier_group_size must be >= 1", ctx)
	}
	return nil
}

func (v *validator) traffic(t *Traffic) error {
	for i := range t.Probes {
		p := &t.Probes[i]
		ctx := fmt.Sprintf("scenario %q: probe %q", v.spec.Name, p.Name)
		if p.Name == "" {
			return fmt.Errorf("scenario %q: probe %d: empty name", v.spec.Name, i)
		}
		if !v.hosts[p.From] {
			return fmt.Errorf("%s: unknown host %q", ctx, p.From)
		}
		if !v.hosts[p.To] {
			return fmt.Errorf("%s: unknown host %q", ctx, p.To)
		}
		if _, err := ip.ParseAddr(p.Dst); err != nil {
			return fmt.Errorf("%s: %w", ctx, err)
		}
		if p.Port < 1 || p.Port > 65535 {
			return fmt.Errorf("%s: port %d out of range", ctx, p.Port)
		}
		if p.Interval <= 0 {
			return fmt.Errorf("%s: interval must be positive", ctx)
		}
	}
	if m := t.MQTT; m != nil {
		ctx := fmt.Sprintf("scenario %q: mqtt", v.spec.Name)
		if !v.hosts[m.Broker.Host] {
			return fmt.Errorf("%s: broker on unknown host %q", ctx, m.Broker.Host)
		}
		for i := range m.Clients {
			c := &m.Clients[i]
			if c.Name == "" || !v.hosts[c.Host] {
				return fmt.Errorf("%s: client %d needs a name and a known host (got %q on %q)", ctx, i, c.Name, c.Host)
			}
			if v.clients[c.Name] {
				return fmt.Errorf("%s: duplicate client %q", ctx, c.Name)
			}
			v.clients[c.Name] = true
		}
		for i := range m.Pubs {
			p := &m.Pubs[i]
			pctx := fmt.Sprintf("%s: publication %q", ctx, p.Topic)
			if p.Topic == "" {
				return fmt.Errorf("%s: publication %d: empty topic", ctx, i)
			}
			if !v.clients[p.From] {
				return fmt.Errorf("%s: unknown publisher %q", pctx, p.From)
			}
			if !v.clients[p.To] {
				return fmt.Errorf("%s: unknown subscriber %q", pctx, p.To)
			}
			if p.QoS < 0 || p.QoS > 1 {
				return fmt.Errorf("%s: qos %d out of range [0,1]", pctx, p.QoS)
			}
			if p.Interval <= 0 || p.Size < 1 {
				return fmt.Errorf("%s: interval and size must be positive", pctx)
			}
		}
	}
	if h := t.HTTP; h != nil {
		ctx := fmt.Sprintf("scenario %q: http", v.spec.Name)
		if !v.hosts[h.Server.Host] {
			return fmt.Errorf("%s: server on unknown host %q", ctx, h.Server.Host)
		}
		seen := map[string]bool{}
		for i := range h.Flows {
			f := &h.Flows[i]
			fctx := fmt.Sprintf("%s: flow %q", ctx, f.Name)
			if f.Name == "" || f.Client == "" {
				return fmt.Errorf("%s: flow %d needs name and client", ctx, i)
			}
			if seen[f.Name] {
				return fmt.Errorf("%s: duplicate flow", fctx)
			}
			seen[f.Name] = true
			if !v.hosts[f.Host] {
				return fmt.Errorf("%s: unknown host %q", fctx, f.Host)
			}
			if f.Path == "" || f.Path[0] != '/' {
				return fmt.Errorf("%s: path must start with '/'", fctx)
			}
			if f.Interval <= 0 || f.Size < 1 {
				return fmt.Errorf("%s: interval and size must be positive", fctx)
			}
		}
	}
	if t.Drain < 0 {
		return fmt.Errorf("scenario %q: negative drain", v.spec.Name)
	}
	return nil
}

// stepMobile resolves a step's mobile: the named one, or the sole mobile.
func (v *validator) stepMobile(ctx string, st *Step) (*Mobile, error) {
	if st.Mobile != "" {
		m, ok := v.mobiles[st.Mobile]
		if !ok {
			return nil, fmt.Errorf("%s: unknown mobile %q", ctx, st.Mobile)
		}
		return m, nil
	}
	if len(v.spec.Topology.Mobiles) != 1 {
		return nil, fmt.Errorf("%s: mobile must be named when the topology has %d mobiles", ctx, len(v.spec.Topology.Mobiles))
	}
	return &v.spec.Topology.Mobiles[0], nil
}

func (v *validator) step(i int, st *Step) error {
	ctx := fmt.Sprintf("scenario %q: itinerary step %d (%s)", v.spec.Name, i, st.Op)
	if !slices.Contains(StepOps, st.Op) {
		return fmt.Errorf("scenario %q: itinerary step %d: unknown op %q (want one of %v)", v.spec.Name, i, st.Op, StepOps)
	}
	m, err := v.stepMobile(ctx, st)
	if err != nil {
		return err
	}
	ifaceOf := func() (*MobileIface, error) {
		for j := range m.Ifaces {
			if m.Ifaces[j].Name == st.Iface {
				return &m.Ifaces[j], nil
			}
		}
		return nil, fmt.Errorf("%s: mobile %q has no iface %q", ctx, m.Name, st.Iface)
	}
	switch st.Op {
	case "settle":
		if st.For <= 0 {
			return fmt.Errorf("%s: settle needs a positive \"for\"", ctx)
		}
	case "connect-home", "cold-switch-home":
		// Home attachment is implied by the mobile's home subnet.
	case "move":
		if _, err := ifaceOf(); err != nil {
			return err
		}
		if _, ok := v.subnets[st.To]; !ok {
			return fmt.Errorf("%s: unknown subnet %q", ctx, st.To)
		}
		if st.To != m.HomeSubnet && !v.dhcpNets[st.To] {
			ifc, _ := ifaceOf()
			if ifc.Static == nil || ifc.Static.Addr == "" {
				return fmt.Errorf("%s: subnet %q has no DHCP and iface %q no static address", ctx, st.To, st.Iface)
			}
		}
	case "cold-switch", "hot-switch":
		if _, err := ifaceOf(); err != nil {
			return err
		}
	case "switch-address":
		// The switch applies to the active interface; only the new address
		// is named.
		if _, err := ip.ParseAddr(st.Addr); err != nil {
			return fmt.Errorf("%s: %w", ctx, err)
		}
	}
	if st.Timeout < 0 || st.For < 0 {
		return fmt.Errorf("%s: negative duration", ctx)
	}
	return nil
}

func (v *validator) fault(i int, f *Fault) error {
	ctx := fmt.Sprintf("scenario %q: fault %d (%s)", v.spec.Name, i, f.Kind)
	if !slices.Contains(FaultKinds, f.Kind) {
		return fmt.Errorf("scenario %q: fault %d: unknown kind %q (want one of %v)", v.spec.Name, i, f.Kind, FaultKinds)
	}
	if f.At < 0 || f.For <= 0 {
		return fmt.Errorf("%s: needs at >= 0 and for > 0", ctx)
	}
	switch f.Kind {
	case "link-flap":
		if !v.devices[f.Device] {
			return fmt.Errorf("%s: unknown device %q", ctx, f.Device)
		}
	case "loss-burst":
		if _, ok := v.subnets[f.Subnet]; !ok {
			return fmt.Errorf("%s: unknown subnet %q", ctx, f.Subnet)
		}
		if f.Prob <= 0 || f.Prob >= 1 {
			return fmt.Errorf("%s: prob %v out of range (0,1)", ctx, f.Prob)
		}
	case "ha-crash":
		if !v.routers[f.Router] {
			return fmt.Errorf("%s: unknown router %q", ctx, f.Router)
		}
	case "agent-delay":
		if !v.routers[f.Router] {
			return fmt.Errorf("%s: unknown router %q", ctx, f.Router)
		}
		if f.Delay <= 0 {
			return fmt.Errorf("%s: needs a positive delay", ctx)
		}
	}
	return nil
}

// routerDeviceName is the lowering rule for router device names: "r-" plus
// the link network name (historically "r-net-36.135" shortened to the
// network's own name).
func routerDeviceName(s *Subnet) string {
	if s == nil {
		return "r-?"
	}
	return "r-" + s.NetworkName()
}
