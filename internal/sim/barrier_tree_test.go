package sim

import (
	"fmt"
	"testing"
	"time"
)

func TestAdvanceTo(t *testing.T) {
	l := New(1)
	l.AdvanceTo(Time(5 * time.Millisecond))
	if l.Now() != Time(5*time.Millisecond) {
		t.Fatalf("Now() = %v after AdvanceTo(5ms)", l.Now())
	}
	// An event at exactly the target instant may stay pending, matching
	// RunUntil's treatment of work scheduled at the final barrier time.
	l.At(Time(8*time.Millisecond), func() {})
	l.AdvanceTo(Time(8 * time.Millisecond))
	if l.Len() != 1 {
		t.Fatalf("event at the target instant was consumed")
	}
}

func TestAdvanceToPanicsOnPendingWork(t *testing.T) {
	l := New(1)
	l.At(Time(time.Millisecond), func() {})
	defer func() {
		if recover() == nil {
			t.Fatalf("AdvanceTo past a pending event did not panic")
		}
	}()
	l.AdvanceTo(Time(2 * time.Millisecond))
}

func TestAdvanceToPanicsOnPast(t *testing.T) {
	l := New(1)
	l.RunUntil(Time(time.Millisecond))
	defer func() {
		if recover() == nil {
			t.Fatalf("AdvanceTo into the past did not panic")
		}
	}()
	l.AdvanceTo(0)
}

// groupedPingPong is pingPong with two extra silent shards and a caller-
// chosen barrier-tree partition, so grouping can be shown to be pure
// mechanism: any partition must produce the identical transcript.
func groupedPingPong(workers int, seed int64, groups [][]int) ([]string, *ShardSet) {
	const lookahead = 2 * time.Millisecond
	a := New(ShardSeed(seed, 0))
	b := New(ShardSeed(seed, 1))
	c := New(ShardSeed(seed, 2)) // silent: never schedules, never receives
	d := New(ShardSeed(seed, 3)) // silent
	ss := NewShardSet([]*Loop{a, b, c, d}, lookahead)
	ss.SetWorkers(workers)
	if groups != nil {
		ss.SetGroups(groups)
	}

	logs := make([][]string, 2)
	record := func(shard int, loop *Loop, what string) {
		logs[shard] = append(logs[shard], fmt.Sprintf("%v shard%d %s rng=%d", loop.Now(), shard, what, loop.Rand().Intn(1000)))
	}
	var volley func(k int)
	volley = func(k int) {
		record(0, a, fmt.Sprintf("volley%d", k))
		at := a.Now().Add(lookahead)
		ss.Post(0, 1, at, func() {
			record(1, b, fmt.Sprintf("recv%d", k))
		})
		if k < 9 {
			a.Schedule(500*time.Microsecond, func() { volley(k + 1) })
		}
	}
	a.Schedule(0, func() { volley(0) })
	ss.RunFor(50 * time.Millisecond)

	log := append(append([]string(nil), logs[0]...), logs[1]...)
	log = append(log, fmt.Sprintf("epochs=%d cross=%d executed=%d now=%v",
		ss.Epochs(), ss.CrossDelivered(), ss.Executed(), ss.Now()))
	return log, ss
}

// TestSetGroupsPureMechanism runs the same workload under every shape of
// barrier tree (flat default, topology-style grouping, everything in one
// group) across worker counts and requires identical transcripts and an
// identical epoch count — grouping may only change how the epoch-end scan
// is cached, never which epochs run.
func TestSetGroupsPureMechanism(t *testing.T) {
	base, _ := groupedPingPong(1, 42, nil)
	partitions := [][][]int{
		{{0, 1}, {2, 3}},
		{{0}, {1}, {2}, {3}},
		{{0, 1, 2, 3}},
		{{3, 2}, {1, 0}},
	}
	for _, workers := range []int{1, 4} {
		for pi, groups := range partitions {
			got, _ := groupedPingPong(workers, 42, groups)
			if len(got) != len(base) {
				t.Fatalf("workers=%d partition=%d: %d log lines, want %d", workers, pi, len(got), len(base))
			}
			for i := range base {
				if got[i] != base[i] {
					t.Fatalf("workers=%d partition=%d diverges at line %d:\n  base: %s\n  got:  %s",
						workers, pi, i, base[i], got[i])
				}
			}
		}
	}
}

// TestShardStatsSilentShards pins the skip accounting: a shard that never
// has work must skip every epoch, wait at no barrier, and dispatch no
// events, while the busy shards participate.
func TestShardStatsSilentShards(t *testing.T) {
	for _, workers := range []int{1, 4} {
		_, ss := groupedPingPong(workers, 7, [][]int{{0, 1}, {2, 3}})
		for _, silent := range []int{2, 3} {
			st := ss.ShardStats(silent)
			if st.BarrierWaits != 0 || st.EventsDispatched != 0 {
				t.Errorf("workers=%d shard %d: BarrierWaits=%d EventsDispatched=%d, want 0/0",
					workers, silent, st.BarrierWaits, st.EventsDispatched)
			}
			if st.EpochsSkipped != ss.Epochs() {
				t.Errorf("workers=%d shard %d: EpochsSkipped=%d, want every epoch (%d)",
					workers, silent, st.EpochsSkipped, ss.Epochs())
			}
		}
		busy := ss.ShardStats(0)
		if busy.BarrierWaits == 0 || busy.EventsDispatched == 0 {
			t.Errorf("workers=%d shard 0: BarrierWaits=%d EventsDispatched=%d, want both > 0",
				workers, busy.BarrierWaits, busy.EventsDispatched)
		}
		var dispatched uint64
		for i := range ss.Shards() {
			dispatched += ss.ShardStats(i).EventsDispatched
		}
		if dispatched != ss.Executed() {
			t.Errorf("workers=%d: sum of EventsDispatched=%d, Executed=%d", workers, dispatched, ss.Executed())
		}
	}
}

// TestShardStatsDeterministic requires the barrier counters themselves to
// be worker-independent: they are exported as metrics, and metrics rows
// must stay byte-identical across worker counts.
func TestShardStatsDeterministic(t *testing.T) {
	_, base := groupedPingPong(1, 11, [][]int{{0, 1}, {2, 3}})
	for _, workers := range []int{2, 4, 8} {
		_, got := groupedPingPong(workers, 11, [][]int{{0, 1}, {2, 3}})
		for i := range base.Shards() {
			if b, g := base.ShardStats(i), got.ShardStats(i); b != g {
				t.Errorf("workers=%d shard %d stats %+v, workers=1 %+v", workers, i, g, b)
			}
		}
		if base.Epochs() != got.Epochs() {
			t.Errorf("workers=%d epochs=%d, workers=1 epochs=%d", workers, got.Epochs(), base.Epochs())
		}
	}
}

func TestSetGroupsValidation(t *testing.T) {
	mk := func() *ShardSet {
		return NewShardSet([]*Loop{New(1), New(2), New(3)}, time.Millisecond)
	}
	cases := []struct {
		name   string
		groups [][]int
	}{
		{"missing shard", [][]int{{0, 1}}},
		{"duplicate shard", [][]int{{0, 1}, {1, 2}}},
		{"out of range", [][]int{{0, 1, 2, 3}}},
		{"negative", [][]int{{-1, 0, 1, 2}}},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetGroups(%s) did not panic", tc.name)
				}
			}()
			mk().SetGroups(tc.groups)
		}()
	}
	// nil resets to the flat partition rather than panicking.
	ss := mk()
	ss.SetGroups([][]int{{2, 0}, {1}})
	ss.SetGroups(nil)
	ss.RunFor(time.Millisecond)
}
