package sim

import "time"

// Lane is a bucketed timer lane for high-frequency periodic work — ARP
// retransmits, reassembly sweeps, TCP retransmission timeouts — where many
// hosts arm coarse timers on similar cadences. Fire instants are rounded up
// to the lane's granularity, and every callback landing on the same rounded
// instant shares one heap event, so a fleet of N hosts sweeping every few
// seconds costs one queue entry per tick instead of N.
//
// Rounding trades at most one granularity of punctuality for that sharing;
// callers pick a granularity small against their period. Determinism is
// unaffected: bucket membership and firing order depend only on virtual
// time and scheduling order, and callbacks within a bucket run in the order
// they were scheduled — exactly the (time, seq) order the main queue would
// have used for equal fire times.
type Lane struct {
	loop    *Loop
	gran    Time
	buckets map[Time]*laneBucket
}

type laneBucket struct {
	lane  *Lane
	at    Time
	fns   []func()
	live  int
	timer Timer
}

// NewLane returns a lane on loop with the given bucket granularity.
func NewLane(loop *Loop, granularity time.Duration) *Lane {
	if granularity <= 0 {
		panic("sim: lane granularity must be positive")
	}
	return &Lane{loop: loop, gran: Time(granularity), buckets: make(map[Time]*laneBucket)}
}

// Lane returns the loop's shared lane for the given granularity, creating
// it on first use. Sharing one lane per granularity lets unrelated hosts'
// periodic work coalesce into common buckets.
func (l *Loop) Lane(granularity time.Duration) *Lane {
	if ln, ok := l.lanes[granularity]; ok {
		return ln
	}
	if l.lanes == nil {
		l.lanes = make(map[time.Duration]*Lane)
	}
	ln := NewLane(l, granularity)
	l.lanes[granularity] = ln
	return ln
}

// Schedule runs fn after at least d of virtual time, rounded up to the
// lane's granularity. A negative delay is treated as zero.
func (ln *Lane) Schedule(d time.Duration, fn func()) LaneTimer {
	if fn == nil {
		panic("sim: lane Schedule with nil callback")
	}
	if d < 0 {
		d = 0
	}
	at := ln.loop.Now().Add(d)
	if rem := at % ln.gran; rem != 0 {
		at += ln.gran - rem
	}
	b := ln.buckets[at]
	if b == nil {
		b = &laneBucket{lane: ln, at: at}
		ln.buckets[at] = b
		b.timer = ln.loop.At(at, b.fire)
	}
	b.fns = append(b.fns, fn)
	b.live++
	return LaneTimer{b: b, idx: len(b.fns) - 1}
}

// fire runs the bucket's surviving callbacks in scheduling order. The
// bucket leaves the lane's map first so callbacks rescheduling for the same
// instant open a fresh bucket rather than appending to a consumed one.
func (b *laneBucket) fire() {
	delete(b.lane.buckets, b.at)
	for i := 0; i < len(b.fns); i++ {
		fn := b.fns[i]
		b.fns[i] = nil
		if fn != nil {
			b.live--
			fn()
		}
	}
}

// LaneTimer is a cancellation handle for one lane entry. The zero LaneTimer
// is valid and inert.
type LaneTimer struct {
	b   *laneBucket
	idx int
}

// Active reports whether the entry is still scheduled to fire.
func (t LaneTimer) Active() bool {
	return t.b != nil && t.b.fns[t.idx] != nil
}

// Stop cancels the entry, reporting whether the call prevented it from
// firing. Stopping the last live entry of a bucket releases the bucket's
// shared heap event as well.
func (t LaneTimer) Stop() bool {
	b := t.b
	if b == nil || b.fns[t.idx] == nil {
		return false
	}
	b.fns[t.idx] = nil
	b.live--
	if b.live == 0 {
		b.timer.Stop()
		delete(b.lane.buckets, b.at)
	}
	return true
}
