package sim

import (
	"testing"
	"time"
)

func TestLaneRoundsUpToGranularity(t *testing.T) {
	l := New(1)
	var at Time
	l.Lane(10*time.Millisecond).Schedule(7*time.Millisecond, func() { at = l.Now() })
	l.Run()
	if at != Time(10*time.Millisecond) {
		t.Fatalf("fired at %v, want 10ms", at)
	}
}

func TestLaneAlignedDelayNotDelayed(t *testing.T) {
	l := New(1)
	var at Time
	l.Lane(10*time.Millisecond).Schedule(20*time.Millisecond, func() { at = l.Now() })
	l.Run()
	if at != Time(20*time.Millisecond) {
		t.Fatalf("fired at %v, want exactly 20ms", at)
	}
}

// Timers landing in the same bucket share one heap event and run in
// scheduling order.
func TestLaneSharesBucket(t *testing.T) {
	l := New(1)
	ln := l.Lane(10 * time.Millisecond)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		ln.Schedule(time.Duration(i+1)*time.Millisecond, func() { order = append(order, i) })
	}
	if l.Len() != 1 {
		t.Fatalf("Len=%d, want 1 shared bucket event", l.Len())
	}
	l.Run()
	if len(order) != 5 {
		t.Fatalf("fired %d callbacks, want 5", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("bucket ran out of scheduling order: %v", order)
		}
	}
}

func TestLaneTimerStop(t *testing.T) {
	l := New(1)
	ln := l.Lane(10 * time.Millisecond)
	var fired []string
	a := ln.Schedule(time.Millisecond, func() { fired = append(fired, "a") })
	ln.Schedule(2*time.Millisecond, func() { fired = append(fired, "b") })
	if !a.Stop() {
		t.Fatal("Stop on live lane timer returned false")
	}
	if a.Stop() {
		t.Fatal("second Stop returned true")
	}
	l.Run()
	if len(fired) != 1 || fired[0] != "b" {
		t.Fatalf("fired %v, want [b]", fired)
	}
}

// Stopping every entry of a bucket releases its shared heap event.
func TestLaneStopLastEntryReleasesBucket(t *testing.T) {
	l := New(1)
	ln := l.Lane(10 * time.Millisecond)
	a := ln.Schedule(time.Millisecond, func() {})
	b := ln.Schedule(2*time.Millisecond, func() {})
	a.Stop()
	b.Stop()
	if l.Len() != 0 {
		t.Fatalf("Len=%d after stopping the whole bucket, want 0", l.Len())
	}
	// The lane must still work after the bucket was torn down.
	fired := false
	ln.Schedule(time.Millisecond, func() { fired = true })
	l.Run()
	if !fired {
		t.Fatal("lane dead after releasing a bucket")
	}
}

func TestLaneStopAfterFire(t *testing.T) {
	l := New(1)
	tm := l.Lane(time.Millisecond).Schedule(time.Millisecond, func() {})
	l.Run()
	if tm.Stop() {
		t.Fatal("Stop after fire returned true")
	}
	if tm.Active() {
		t.Fatal("fired lane timer reports active")
	}
}

// A callback cancelling a later entry in its own bucket prevents it from
// running.
func TestLaneStopWithinFiringBucket(t *testing.T) {
	l := New(1)
	ln := l.Lane(10 * time.Millisecond)
	var fired []string
	var b LaneTimer
	ln.Schedule(time.Millisecond, func() {
		fired = append(fired, "a")
		b.Stop()
	})
	b = ln.Schedule(2*time.Millisecond, func() { fired = append(fired, "b") })
	l.Run()
	if len(fired) != 1 || fired[0] != "a" {
		t.Fatalf("fired %v, want [a]", fired)
	}
}

// Rescheduling from inside a firing bucket opens a fresh bucket rather than
// appending to the consumed one.
func TestLaneRescheduleFromCallback(t *testing.T) {
	l := New(1)
	ln := l.Lane(10 * time.Millisecond)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 3 {
			ln.Schedule(time.Millisecond, tick)
		}
	}
	ln.Schedule(time.Millisecond, tick)
	l.Run()
	if count != 3 {
		t.Fatalf("ticked %d, want 3", count)
	}
	if l.Now() != Time(30*time.Millisecond) {
		t.Fatalf("finished at %v, want 30ms (one bucket per tick)", l.Now())
	}
}

// Loop.Lane returns one shared lane per granularity.
func TestLoopLaneSharedPerGranularity(t *testing.T) {
	l := New(1)
	if l.Lane(time.Millisecond) != l.Lane(time.Millisecond) {
		t.Fatal("same granularity returned distinct lanes")
	}
	if l.Lane(time.Millisecond) == l.Lane(2*time.Millisecond) {
		t.Fatal("different granularities shared a lane")
	}
}

func TestZeroLaneTimerInert(t *testing.T) {
	var tm LaneTimer
	if tm.Stop() || tm.Active() {
		t.Fatal("zero LaneTimer not inert")
	}
}
