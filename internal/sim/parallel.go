package sim

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// This file implements deterministic shard-parallel execution: several
// independent Loops (shards) advance together in epochs bounded by a
// conservative lookahead, in the style of Chandy–Misra/null-message
// parallel discrete-event simulation and ns-3's distributed scheduler.
//
// The determinism argument, spelled out in DESIGN.md §7, rests on three
// properties:
//
//  1. Shards share no mutable state. Each shard owns its event heap, its
//     free list, and its RNG stream, so the order in which worker
//     goroutines happen to run shards cannot influence any shard's own
//     event order or random draws.
//
//  2. Within an epoch [T, T+L) no shard can affect another: every
//     cross-shard interaction travels over a link whose minimum
//     propagation delay is at least the lookahead L, so an event executed
//     at time t ∈ [T, T+L) produces cross-shard work arriving no earlier
//     than t+L ≥ T+L — beyond the epoch boundary every shard stops at.
//
//  3. Cross-shard work is buffered per source shard (appended in the
//     source's own deterministic execution order) and merged at the epoch
//     barrier in (arrival time, source shard, post order) order before
//     being scheduled on the destination loops. The merge is a sort of
//     per-source sequences whose contents and order are worker-independent,
//     so the destination's event sequence numbers — and therefore its
//     execution order — are too.
//
// The number of worker goroutines is pure mechanism: it changes which OS
// thread runs a shard, never what the shard computes. -workers=N is
// byte-identical to -workers=1 by construction.

// crossRecord is one buffered cross-shard callback.
type crossRecord struct {
	at   Time
	src  int
	idx  int // append order within the source shard's epoch buffer
	dest int
	fn   func()
}

// ShardSet coordinates several Loops advancing in lockstep epochs. All
// methods must be called from the coordinating goroutine; Post is the one
// exception — it is called from shard code while an epoch runs, and is
// safe because each source shard writes only its own buffer.
type ShardSet struct {
	shards    []*Loop
	lookahead time.Duration
	workers   int
	now       Time

	// outbox[i] buffers cross-shard work posted by shard i during the
	// current epoch. Written only by the goroutine running shard i,
	// drained by the coordinator at the barrier; the worker-pool
	// WaitGroup orders the two.
	outbox [][]crossRecord
	merged []crossRecord // reused scratch for the barrier merge

	epochs    uint64
	crossSent uint64
}

// NewShardSet couples shards under a conservative lookahead: no event may
// cause an effect on another shard sooner than lookahead after it runs.
// The caller derives lookahead from the minimum cross-shard link latency
// (see link.Medium.MinLatency). All shards must start at the same virtual
// time (normally zero).
func NewShardSet(shards []*Loop, lookahead time.Duration) *ShardSet {
	if len(shards) == 0 {
		panic("sim: ShardSet with no shards")
	}
	if lookahead <= 0 {
		panic("sim: ShardSet lookahead must be positive")
	}
	for _, sh := range shards[1:] {
		if sh.Now() != shards[0].Now() {
			panic("sim: ShardSet shards disagree on the current time")
		}
	}
	return &ShardSet{
		shards:    shards,
		lookahead: lookahead,
		workers:   1,
		now:       shards[0].Now(),
		outbox:    make([][]crossRecord, len(shards)),
	}
}

// SetWorkers sets the size of the goroutine pool used to run epochs.
// Values below 1 (and 1 itself) select inline sequential execution. The
// choice affects wall-clock time only, never results.
func (s *ShardSet) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	s.workers = n
}

// Workers returns the configured pool size.
func (s *ShardSet) Workers() int { return s.workers }

// Shards returns the coordinated loops in shard-index order.
func (s *ShardSet) Shards() []*Loop { return s.shards }

// Now returns the barrier time every shard has reached.
func (s *ShardSet) Now() Time { return s.now }

// Epochs returns the number of epoch barriers crossed.
func (s *ShardSet) Epochs() uint64 { return s.epochs }

// CrossDelivered returns the number of cross-shard callbacks merged.
func (s *ShardSet) CrossDelivered() uint64 { return s.crossSent }

// Executed returns the total events run across all shards.
func (s *ShardSet) Executed() uint64 {
	var n uint64
	for _, sh := range s.shards {
		n += sh.Executed()
	}
	return n
}

// QueueHighWater returns the largest per-shard queue high-water mark.
func (s *ShardSet) QueueHighWater() int {
	max := 0
	for _, sh := range s.shards {
		if hw := sh.QueueHighWater(); hw > max {
			max = hw
		}
	}
	return max
}

// Post buffers fn to run on shard dest at time at. It must be called from
// code executing on shard src during an epoch (the trunk handoff path);
// at must be at least lookahead after the posting event's time, which the
// barrier verifies. Posting order within one source shard is preserved.
func (s *ShardSet) Post(src, dest int, at Time, fn func()) {
	if fn == nil {
		panic("sim: Post with nil callback")
	}
	buf := s.outbox[src]
	s.outbox[src] = append(buf, crossRecord{at: at, src: src, idx: len(buf), dest: dest, fn: fn})
}

// RunUntil advances every shard to exactly t, executing all events at or
// before t and exchanging cross-shard work at epoch barriers.
func (s *ShardSet) RunUntil(t Time) {
	if t < s.now {
		panic(fmt.Sprintf("sim: ShardSet.RunUntil into the past: now=%v t=%v", s.now, t))
	}
	if s.workers > 1 && len(s.shards) > 1 {
		s.runParallel(t)
	} else {
		s.runSequential(t)
	}
	s.now = t
}

// RunFor advances the shard set by d of virtual time.
func (s *ShardSet) RunFor(d time.Duration) { s.RunUntil(s.now.Add(d)) }

// nextEpochEnd picks the next barrier: the earliest pending event across
// all shards (idle gaps are skipped wholesale — with empty outboxes every
// future effect is already in some shard's heap) plus the lookahead,
// clamped to t. It returns t when no shard has work before t.
func (s *ShardSet) nextEpochEnd(t Time) Time {
	earliest := t
	found := false
	for _, sh := range s.shards {
		if at, ok := sh.NextEventAt(); ok && at < earliest {
			earliest = at
			found = true
		}
	}
	if !found {
		return t
	}
	end := earliest.Add(s.lookahead)
	if end > t {
		end = t
	}
	return end
}

func (s *ShardSet) runSequential(t Time) {
	for cur := s.now; cur < t; {
		end := s.nextEpochEnd(t)
		for _, sh := range s.shards {
			sh.RunUntil(end)
		}
		s.flush(end)
		cur = end
		s.epochs++
	}
}

func (s *ShardSet) runParallel(t Time) {
	n := s.workers
	if n > len(s.shards) {
		n = len(s.shards)
	}
	work := make(chan workItem)
	done := make(chan struct{}, len(s.shards))
	var wg sync.WaitGroup
	wg.Add(n)
	for w := 0; w < n; w++ {
		go func() {
			defer wg.Done()
			for item := range work {
				item.loop.RunUntil(item.end)
				done <- struct{}{}
			}
		}()
	}
	for cur := s.now; cur < t; {
		end := s.nextEpochEnd(t)
		for _, sh := range s.shards {
			work <- workItem{loop: sh, end: end}
		}
		for range s.shards {
			<-done
		}
		s.flush(end)
		cur = end
		s.epochs++
	}
	close(work)
	wg.Wait()
}

type workItem struct {
	loop *Loop
	end  Time
}

// flush merges the epoch's buffered cross-shard work onto the destination
// loops in deterministic (arrival, source shard, post order) order, and
// verifies the lookahead contract.
func (s *ShardSet) flush(end Time) {
	s.merged = s.merged[:0]
	for i := range s.outbox {
		s.merged = append(s.merged, s.outbox[i]...)
		s.outbox[i] = s.outbox[i][:0]
	}
	if len(s.merged) == 0 {
		return
	}
	sort.Slice(s.merged, func(i, j int) bool {
		a, b := s.merged[i], s.merged[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.idx < b.idx
	})
	for i := range s.merged {
		rec := &s.merged[i]
		if rec.at < end {
			panic(fmt.Sprintf(
				"sim: lookahead violation: shard %d posted work for shard %d at %v, before the epoch barrier %v; the cross-shard link latency is below the configured lookahead",
				rec.src, rec.dest, rec.at, end))
		}
		s.shards[rec.dest].At(rec.at, rec.fn)
		rec.fn = nil
		s.crossSent++
	}
}

// ShardSeed derives shard i's RNG seed from the world seed via a
// splitmix64 step, so per-shard random streams are decorrelated but fully
// determined by (seed, shard index) — independent of worker count and of
// every other shard.
func ShardSeed(seed int64, shard int) int64 {
	z := uint64(seed) + 0x9E3779B97F4A7C15*uint64(shard+1)
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}
