package sim

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// This file implements deterministic shard-parallel execution: several
// independent Loops (shards) advance together in epochs bounded by a
// conservative lookahead, in the style of Chandy–Misra/null-message
// parallel discrete-event simulation and ns-3's distributed scheduler.
//
// The determinism argument, spelled out in DESIGN.md §7, rests on three
// properties:
//
//  1. Shards share no mutable state. Each shard owns its event heap, its
//     free list, and its RNG stream, so the order in which worker
//     goroutines happen to run shards cannot influence any shard's own
//     event order or random draws.
//
//  2. Within an epoch [T, T+L) no shard can affect another: every
//     cross-shard interaction travels over a link whose minimum
//     propagation delay is at least the lookahead L, so an event executed
//     at time t ∈ [T, T+L) produces cross-shard work arriving no earlier
//     than t+L ≥ T+L — beyond the epoch boundary every shard stops at.
//
//  3. Cross-shard work is buffered per source shard (appended in the
//     source's own deterministic execution order) and merged at the epoch
//     barrier in (arrival time, source shard, post order) order before
//     being scheduled on the destination loops. The merge is a sort of
//     per-source sequences whose contents and order are worker-independent,
//     so the destination's event sequence numbers — and therefore its
//     execution order — are too.
//
// The number of worker goroutines is pure mechanism: it changes which OS
// thread runs a shard, never what the shard computes. -workers=N is
// byte-identical to -workers=1 by construction.
//
// Two scale mechanisms sit on top of the epoch scheme (DESIGN.md §13):
//
//   - Per-shard skipping. A shard participates in an epoch only if its
//     next event falls at or before the epoch end; a quiet shard is
//     skipped — no RunUntil call, no work item, no barrier wait — and its
//     clock is synchronized once, when RunUntil returns. Skipping cannot
//     change results: a skipped shard had nothing to execute inside the
//     epoch, so running it would only have moved its clock.
//
//   - A two-level barrier tree. Shards are partitioned into groups
//     (SetGroups), and the epoch-end computation reads one cached
//     next-event minimum per group instead of peeking every shard's heap.
//     A group's cache is invalidated exactly when a member's heap can
//     change — the member ran in an epoch, received cross-shard work at a
//     flush, or external code may have scheduled between RunUntil calls —
//     so the cached minimum is always exact and the epoch sequence is
//     identical to a flat scan. A quiet region (campus group with no
//     pending work inside the horizon) costs one cache read per epoch
//     regardless of how many shards it holds.

// crossRecord is one buffered cross-shard callback.
type crossRecord struct {
	at   Time
	src  int
	idx  int // append order within the source shard's epoch buffer
	dest int
	fn   func()
}

// ShardStats counts one shard's barrier-level activity. The counters are
// observability only; nothing in the scheduler reads them back.
type ShardStats struct {
	// EpochsSkipped counts epochs the shard sat out because it had no
	// event inside the epoch window.
	EpochsSkipped uint64
	// BarrierWaits counts epochs the shard participated in — each one is
	// a dispatch to a worker and a wait at the closing barrier.
	BarrierWaits uint64
	// EventsDispatched counts events the shard executed under ShardSet
	// control (events run outside RunUntil are not credited).
	EventsDispatched uint64
}

// ShardSet coordinates several Loops advancing in lockstep epochs. All
// methods must be called from the coordinating goroutine; Post is the one
// exception — it is called from shard code while an epoch runs, and is
// safe because each source shard writes only its own buffer.
type ShardSet struct {
	shards    []*Loop
	lookahead time.Duration
	workers   int
	now       Time

	// outbox[i] buffers cross-shard work posted by shard i during the
	// current epoch. Written only by the goroutine running shard i,
	// drained by the coordinator at the barrier; the worker-pool
	// WaitGroup orders the two.
	outbox [][]crossRecord
	merged []crossRecord // reused scratch for the barrier merge

	// Barrier tree: groups partitions the shard indices; groupOf maps a
	// shard to its group; groupMin/groupHas cache each group's earliest
	// pending event and are trusted only while groupValid holds.
	groups     [][]int
	groupOf    []int
	groupMin   []Time
	groupHas   []bool
	groupValid []bool

	stats    []ShardStats
	lastExec []uint64 // per-shard Executed() at the last barrier credit

	// workerBusy[w] accumulates wall-clock time worker w spent running
	// shard epochs; utilization observability for the parallel path only.
	workerBusy []time.Duration

	epochs    uint64
	crossSent uint64
}

// NewShardSet couples shards under a conservative lookahead: no event may
// cause an effect on another shard sooner than lookahead after it runs.
// The caller derives lookahead from the minimum cross-shard link latency
// (see link.Medium.MinLatency). All shards must start at the same virtual
// time (normally zero).
func NewShardSet(shards []*Loop, lookahead time.Duration) *ShardSet {
	if len(shards) == 0 {
		panic("sim: ShardSet with no shards")
	}
	if lookahead <= 0 {
		panic("sim: ShardSet lookahead must be positive")
	}
	for _, sh := range shards[1:] {
		if sh.Now() != shards[0].Now() {
			panic("sim: ShardSet shards disagree on the current time")
		}
	}
	s := &ShardSet{
		shards:    shards,
		lookahead: lookahead,
		workers:   1,
		now:       shards[0].Now(),
		outbox:    make([][]crossRecord, len(shards)),
		stats:     make([]ShardStats, len(shards)),
		lastExec:  make([]uint64, len(shards)),
	}
	for i, sh := range shards {
		s.lastExec[i] = sh.Executed()
	}
	flat := make([][]int, len(shards))
	for i := range flat {
		flat[i] = []int{i}
	}
	s.installGroups(flat)
	return s
}

// SetWorkers sets the size of the goroutine pool used to run epochs.
// Values below 1 (and 1 itself) select inline sequential execution. The
// choice affects wall-clock time only, never results.
func (s *ShardSet) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	s.workers = n
}

// Workers returns the configured pool size.
func (s *ShardSet) Workers() int { return s.workers }

// Shards returns the coordinated loops in shard-index order.
func (s *ShardSet) Shards() []*Loop { return s.shards }

// Now returns the barrier time every shard has reached.
func (s *ShardSet) Now() Time { return s.now }

// Epochs returns the number of epoch barriers crossed.
func (s *ShardSet) Epochs() uint64 { return s.epochs }

// CrossDelivered returns the number of cross-shard callbacks merged.
func (s *ShardSet) CrossDelivered() uint64 { return s.crossSent }

// ShardStats returns shard i's barrier counters.
func (s *ShardSet) ShardStats(i int) ShardStats { return s.stats[i] }

// WorkerBusy returns, per worker slot, the accumulated wall-clock time
// that worker spent executing shard epochs. It is empty until the
// parallel path has run. Wall-clock here is observability (utilization
// reporting), never simulation input.
func (s *ShardSet) WorkerBusy() []time.Duration {
	return append([]time.Duration(nil), s.workerBusy...)
}

// SetGroups installs the two-level barrier tree: groups must partition
// the shard indices (every shard in exactly one group). Grouping is pure
// mechanism — it changes how the epoch-end scan is cached, never which
// epochs run — so any partition yields byte-identical results; a good one
// mirrors the topology (one group per campus region, the backbone on its
// own) so quiet regions cost one cache read per epoch. Passing nil
// restores the default flat partition (every shard its own group).
func (s *ShardSet) SetGroups(groups [][]int) {
	if groups == nil {
		flat := make([][]int, len(s.shards))
		for i := range flat {
			flat[i] = []int{i}
		}
		s.installGroups(flat)
		return
	}
	seen := make([]bool, len(s.shards))
	count := 0
	for _, g := range groups {
		for _, i := range g {
			if i < 0 || i >= len(s.shards) {
				panic(fmt.Sprintf("sim: SetGroups shard index %d out of range", i))
			}
			if seen[i] {
				panic(fmt.Sprintf("sim: SetGroups shard %d appears in more than one group", i))
			}
			seen[i] = true
			count++
		}
	}
	if count != len(s.shards) {
		panic(fmt.Sprintf("sim: SetGroups covers %d of %d shards", count, len(s.shards)))
	}
	copied := make([][]int, len(groups))
	for gi, g := range groups {
		copied[gi] = append([]int(nil), g...)
	}
	s.installGroups(copied)
}

func (s *ShardSet) installGroups(groups [][]int) {
	s.groups = groups
	s.groupOf = make([]int, len(s.shards))
	for gi, g := range groups {
		for _, i := range g {
			s.groupOf[i] = gi
		}
	}
	s.groupMin = make([]Time, len(groups))
	s.groupHas = make([]bool, len(groups))
	s.groupValid = make([]bool, len(groups))
}

// Executed returns the total events run across all shards.
func (s *ShardSet) Executed() uint64 {
	var n uint64
	for _, sh := range s.shards {
		n += sh.Executed()
	}
	return n
}

// QueueHighWater returns the largest per-shard queue high-water mark.
func (s *ShardSet) QueueHighWater() int {
	max := 0
	for _, sh := range s.shards {
		if hw := sh.QueueHighWater(); hw > max {
			max = hw
		}
	}
	return max
}

// Post buffers fn to run on shard dest at time at. It must be called from
// code executing on shard src during an epoch (the trunk handoff path);
// at must be at least lookahead after the posting event's time, which the
// barrier verifies. Posting order within one source shard is preserved.
func (s *ShardSet) Post(src, dest int, at Time, fn func()) {
	if fn == nil {
		panic("sim: Post with nil callback")
	}
	buf := s.outbox[src]
	s.outbox[src] = append(buf, crossRecord{at: at, src: src, idx: len(buf), dest: dest, fn: fn})
}

// RunUntil advances every shard to exactly t, executing all events at or
// before t and exchanging cross-shard work at epoch barriers.
func (s *ShardSet) RunUntil(t Time) {
	if t < s.now {
		panic(fmt.Sprintf("sim: ShardSet.RunUntil into the past: now=%v t=%v", s.now, t))
	}
	// External code may have scheduled on any loop since the last call;
	// cached group minima cannot be trusted across the boundary.
	for g := range s.groupValid {
		s.groupValid[g] = false
	}
	for i, sh := range s.shards {
		s.lastExec[i] = sh.Executed()
	}
	if s.workers > 1 && len(s.shards) > 1 {
		s.runParallel(t)
	} else {
		s.runSequential(t)
	}
	// Skipped shards' clocks lag behind the final barrier; synchronize
	// once so every loop agrees with the set on the current time.
	for _, sh := range s.shards {
		if sh.Now() < t {
			sh.AdvanceTo(t)
		}
	}
	s.now = t
}

// RunFor advances the shard set by d of virtual time.
func (s *ShardSet) RunFor(d time.Duration) { s.RunUntil(s.now.Add(d)) }

// markDirty invalidates the cached minimum of shard i's group.
func (s *ShardSet) markDirty(i int) { s.groupValid[s.groupOf[i]] = false }

// groupNext returns group g's earliest pending event, serving the cached
// value when valid and recomputing (and re-caching) it otherwise.
func (s *ShardSet) groupNext(g int) (Time, bool) {
	if s.groupValid[g] {
		return s.groupMin[g], s.groupHas[g]
	}
	var min Time
	has := false
	for _, i := range s.groups[g] {
		if at, ok := s.shards[i].NextEventAt(); ok && (!has || at < min) {
			min, has = at, true
		}
	}
	s.groupMin[g], s.groupHas[g], s.groupValid[g] = min, has, true
	return min, has
}

// nextEpochEnd picks the next barrier: the earliest pending event across
// all shards (idle gaps are skipped wholesale — with empty outboxes every
// future effect is already in some shard's heap) plus the lookahead,
// clamped to t. It returns t when no shard has work before t. The scan
// reads one cached minimum per group; because invalidation covers every
// way a heap can change, the result is identical to peeking every shard.
func (s *ShardSet) nextEpochEnd(t Time) Time {
	earliest := t
	found := false
	for g := range s.groups {
		if at, ok := s.groupNext(g); ok && at < earliest {
			earliest = at
			found = true
		}
	}
	if !found {
		return t
	}
	end := earliest.Add(s.lookahead)
	if end > t {
		end = t
	}
	return end
}

// active reports whether shard i must run in an epoch ending at end, and
// updates its barrier counters: a shard participates exactly when its
// next event is at or before the epoch end.
func (s *ShardSet) active(i int, end Time) bool {
	if at, ok := s.shards[i].NextEventAt(); ok && at <= end {
		s.stats[i].BarrierWaits++
		s.markDirty(i)
		return true
	}
	s.stats[i].EpochsSkipped++
	return false
}

// credit folds each shard's newly executed events into its stats after a
// barrier. Only shards that ran can have moved, so skipped shards cost a
// comparison.
func (s *ShardSet) credit() {
	for i, sh := range s.shards {
		if exec := sh.Executed(); exec != s.lastExec[i] {
			s.stats[i].EventsDispatched += exec - s.lastExec[i]
			s.lastExec[i] = exec
		}
	}
}

func (s *ShardSet) runSequential(t Time) {
	for cur := s.now; cur < t; {
		end := s.nextEpochEnd(t)
		for i, sh := range s.shards {
			if s.active(i, end) {
				sh.RunUntil(end)
			}
		}
		s.flush(end)
		s.credit()
		cur = end
		s.epochs++
	}
}

func (s *ShardSet) runParallel(t Time) {
	n := s.workers
	if n > len(s.shards) {
		n = len(s.shards)
	}
	for len(s.workerBusy) < n {
		s.workerBusy = append(s.workerBusy, 0)
	}
	work := make(chan workItem)
	done := make(chan struct{}, len(s.shards))
	var wg sync.WaitGroup
	wg.Add(n)
	for w := 0; w < n; w++ {
		go func(w int) {
			defer wg.Done()
			for item := range work {
				//lint:allow nowallclock worker-utilization accounting; wall time is reported, never fed back into the simulation
				start := time.Now()
				item.loop.RunUntil(item.end)
				//lint:allow nowallclock see above
				s.workerBusy[w] += time.Since(start)
				done <- struct{}{}
			}
		}(w)
	}
	for cur := s.now; cur < t; {
		end := s.nextEpochEnd(t)
		dispatched := 0
		for i, sh := range s.shards {
			if s.active(i, end) {
				dispatched++
				work <- workItem{loop: sh, end: end}
			}
		}
		for j := 0; j < dispatched; j++ {
			<-done
		}
		s.flush(end)
		s.credit()
		cur = end
		s.epochs++
	}
	close(work)
	wg.Wait()
}

type workItem struct {
	loop *Loop
	end  Time
}

// flush merges the epoch's buffered cross-shard work onto the destination
// loops in deterministic (arrival, source shard, post order) order, and
// verifies the lookahead contract.
func (s *ShardSet) flush(end Time) {
	s.merged = s.merged[:0]
	for i := range s.outbox {
		s.merged = append(s.merged, s.outbox[i]...)
		s.outbox[i] = s.outbox[i][:0]
	}
	if len(s.merged) == 0 {
		return
	}
	sort.Slice(s.merged, func(i, j int) bool {
		a, b := s.merged[i], s.merged[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.idx < b.idx
	})
	for i := range s.merged {
		rec := &s.merged[i]
		if rec.at < end {
			panic(fmt.Sprintf(
				"sim: lookahead violation: shard %d posted work for shard %d at %v, before the epoch barrier %v; the cross-shard link latency is below the configured lookahead",
				rec.src, rec.dest, rec.at, end))
		}
		s.shards[rec.dest].At(rec.at, rec.fn)
		s.markDirty(rec.dest)
		rec.fn = nil
		s.crossSent++
	}
}

// ShardSeed derives shard i's RNG seed from the world seed via a
// splitmix64 step, so per-shard random streams are decorrelated but fully
// determined by (seed, shard index) — independent of worker count and of
// every other shard.
func ShardSeed(seed int64, shard int) int64 {
	z := uint64(seed) + 0x9E3779B97F4A7C15*uint64(shard+1)
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}
