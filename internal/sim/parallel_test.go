package sim

import (
	"fmt"
	"testing"
	"time"
)

// pingPong drives two shards exchanging cross-shard callbacks with the
// given worker count and returns a full transcript of what ran where and
// when, plus each shard's RNG draws — the raw material every determinism
// assertion in this file compares.
func pingPong(workers int, seed int64) []string {
	const lookahead = 2 * time.Millisecond
	a := New(ShardSeed(seed, 0))
	b := New(ShardSeed(seed, 1))
	ss := NewShardSet([]*Loop{a, b}, lookahead)
	ss.SetWorkers(workers)

	// One transcript per shard, appended only by that shard's goroutine —
	// the same share-nothing discipline real shard code must follow. The
	// final transcript is the deterministic concatenation in shard order;
	// cross-shard interleaving within an epoch is intentionally not an
	// observable.
	logs := make([][]string, 2)
	record := func(shard int, loop *Loop, what string) {
		logs[shard] = append(logs[shard], fmt.Sprintf("%v shard%d %s rng=%d", loop.Now(), shard, what, loop.Rand().Intn(1000)))
	}

	// Shard 0 fires a volley every 500µs; each volley posts work to shard 1
	// arriving exactly lookahead later; shard 1 echoes back likewise.
	var volley func(k int)
	volley = func(k int) {
		record(0, a, fmt.Sprintf("volley%d", k))
		at := a.Now().Add(lookahead)
		ss.Post(0, 1, at, func() {
			record(1, b, fmt.Sprintf("recv%d", k))
			back := b.Now().Add(lookahead)
			ss.Post(1, 0, back, func() { record(0, a, fmt.Sprintf("echo%d", k)) })
		})
		if k < 9 {
			a.Schedule(500*time.Microsecond, func() { volley(k + 1) })
		}
	}
	a.Schedule(0, func() { volley(0) })

	// Independent local churn on both shards so their heaps stay busy.
	for i := 0; i < 20; i++ {
		i := i
		a.Schedule(time.Duration(i)*333*time.Microsecond, func() { record(0, a, fmt.Sprintf("localA%d", i)) })
		b.Schedule(time.Duration(i)*271*time.Microsecond, func() { record(1, b, fmt.Sprintf("localB%d", i)) })
	}

	ss.RunFor(50 * time.Millisecond)
	log := append(append([]string(nil), logs[0]...), logs[1]...)
	log = append(log, fmt.Sprintf("epochs>0=%v cross=%d executed=%d now=%v",
		ss.Epochs() > 0, ss.CrossDelivered(), ss.Executed(), ss.Now()))
	return log
}

func TestShardSetDeterministicAcrossWorkers(t *testing.T) {
	base := pingPong(1, 42)
	for _, workers := range []int{2, 4, 8} {
		got := pingPong(workers, 42)
		if len(got) != len(base) {
			t.Fatalf("workers=%d produced %d log lines, workers=1 produced %d", workers, len(got), len(base))
		}
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("workers=%d diverges at line %d:\n  workers=1: %s\n  workers=%d: %s",
					workers, i, base[i], workers, got[i])
			}
		}
	}
}

func TestShardSetCrossShardDelivery(t *testing.T) {
	log := pingPong(4, 7)
	var recvs, echoes int
	for _, line := range log {
		for k := 0; k < 10; k++ {
			if contains(line, fmt.Sprintf(" recv%d ", k)) {
				recvs++
			}
			if contains(line, fmt.Sprintf(" echo%d ", k)) {
				echoes++
			}
		}
	}
	if recvs != 10 || echoes != 10 {
		t.Fatalf("expected 10 recv + 10 echo cross-shard callbacks, got %d + %d", recvs, echoes)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestShardSetAdvancesIdleShards(t *testing.T) {
	a := New(1)
	b := New(2)
	ss := NewShardSet([]*Loop{a, b}, time.Millisecond)
	// Only shard 0 has work, early on; shard 1 is idle throughout.
	ran := false
	a.Schedule(100*time.Microsecond, func() { ran = true })
	ss.RunFor(10 * time.Second)
	if !ran {
		t.Fatal("shard 0 event did not run")
	}
	if a.Now() != b.Now() || a.Now() != ss.Now() {
		t.Fatalf("clocks diverged: a=%v b=%v set=%v", a.Now(), b.Now(), ss.Now())
	}
	if want := Time(10 * time.Second); ss.Now() != want {
		t.Fatalf("set time %v, want %v", ss.Now(), want)
	}
	// The idle tail must be skipped, not stepped epoch by epoch: with one
	// event at 100µs and 10s of idle time after it, the epoch count stays
	// tiny instead of ~10s/1ms = 10000.
	if ss.Epochs() > 4 {
		t.Fatalf("idle time was not skipped: %d epochs", ss.Epochs())
	}
}

func TestShardSetLookaheadViolationPanics(t *testing.T) {
	a := New(1)
	b := New(2)
	ss := NewShardSet([]*Loop{a, b}, time.Millisecond)
	a.Schedule(0, func() {
		// Posting work closer than the lookahead is a wiring bug; the
		// barrier must catch it rather than corrupt causality.
		ss.Post(0, 1, a.Now().Add(10*time.Microsecond), func() {})
	})
	defer func() {
		if recover() == nil {
			t.Fatal("expected lookahead-violation panic")
		}
	}()
	ss.RunFor(time.Second)
}

func TestShardSeedDistinct(t *testing.T) {
	seen := map[int64]int{}
	for seed := int64(0); seed < 4; seed++ {
		for shard := 0; shard < 16; shard++ {
			s := ShardSeed(seed, shard)
			if prev, dup := seen[s]; dup {
				t.Fatalf("ShardSeed collision: %d (also produced by case %d)", s, prev)
			}
			seen[s] = int(seed)<<8 | shard
		}
	}
	if ShardSeed(42, 3) != ShardSeed(42, 3) {
		t.Fatal("ShardSeed is not a pure function")
	}
}
