package sim

import (
	"testing"
	"time"
)

// Cancelled timers must leave the queue immediately: Len and
// QueueHighWater report live events only, so the telemetry gauges built on
// them cannot be inflated by dead entries.
func TestCancelledTimersLeaveQueue(t *testing.T) {
	l := New(1)
	timers := make([]Timer, 100)
	for i := range timers {
		timers[i] = l.Schedule(time.Duration(i+1)*time.Millisecond, func() {})
	}
	if l.Len() != 100 {
		t.Fatalf("Len=%d, want 100", l.Len())
	}
	for _, tm := range timers {
		if !tm.Stop() {
			t.Fatal("Stop on a live timer returned false")
		}
	}
	if l.Len() != 0 {
		t.Fatalf("Len=%d after cancelling everything, want 0", l.Len())
	}
	// New work after the mass-cancel must not stack on top of dead entries.
	for i := 0; i < 5; i++ {
		l.Schedule(time.Millisecond, func() {})
	}
	if l.Len() != 5 {
		t.Fatalf("Len=%d, want 5", l.Len())
	}
	if hw := l.QueueHighWater(); hw != 100 {
		t.Fatalf("QueueHighWater=%d, want 100 (the true live maximum)", hw)
	}
	l.Run()
	if l.Executed() != 5 {
		t.Fatalf("Executed=%d, want 5", l.Executed())
	}
}

// A handle from a previous life of a recycled event record must be inert:
// it reports inactive, and Stop must not cancel the record's new timer.
func TestStaleHandleDoesNotCancelRecycledEvent(t *testing.T) {
	l := New(1)
	old := l.Schedule(time.Millisecond, func() {})
	if !old.Stop() {
		t.Fatal("Stop on live timer returned false")
	}
	fired := false
	fresh := l.Schedule(2*time.Millisecond, func() { fired = true })
	if old.Active() {
		t.Fatal("stale handle reports active")
	}
	if old.Stop() {
		t.Fatal("stale handle Stop returned true")
	}
	if !fresh.Active() {
		t.Fatal("stale Stop cancelled the recycled event's new timer")
	}
	l.Run()
	if !fired {
		t.Fatal("recycled event's timer did not fire")
	}
}

// A handle to an event that already fired goes inert even after the record
// is reused.
func TestHandleInertAfterFire(t *testing.T) {
	l := New(1)
	tm := l.Schedule(time.Millisecond, func() {})
	l.Run()
	fired := false
	l.Schedule(time.Millisecond, func() { fired = true })
	if tm.Stop() {
		t.Fatal("Stop after fire returned true")
	}
	l.Run()
	if !fired {
		t.Fatal("reused record's timer was cancelled by a spent handle")
	}
}

// A callback may reschedule from inside its own firing; the freshly
// recycled record is safe to reuse immediately.
func TestRescheduleFromCallbackReusesRecord(t *testing.T) {
	l := New(1)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 10 {
			l.Schedule(time.Millisecond, tick)
		}
	}
	l.Schedule(time.Millisecond, tick)
	l.Run()
	if count != 10 {
		t.Fatalf("ticked %d times, want 10", count)
	}
	// Steady-state periodic work needs exactly one event record.
	if got := len(l.free); got != 1 {
		t.Fatalf("free list holds %d records after a periodic chain, want 1", got)
	}
}

// Steady-state schedule/fire cycles must not allocate: the event records
// come from the loop's free list.
func TestSteadyStateSchedulingDoesNotAllocate(t *testing.T) {
	l := New(1)
	fn := func() {}
	// Warm the free list.
	for i := 0; i < 100; i++ {
		l.Schedule(time.Microsecond, fn)
	}
	l.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		l.Schedule(time.Microsecond, fn)
		l.Step()
	})
	if allocs != 0 {
		t.Fatalf("schedule+fire allocated %.1f objects/op, want 0", allocs)
	}
}

func TestStopTwiceOnSameHandle(t *testing.T) {
	l := New(1)
	tm := l.Schedule(time.Millisecond, func() {})
	if !tm.Stop() || tm.Stop() {
		t.Fatal("Stop/Stop want true,false")
	}
	if l.Len() != 0 {
		t.Fatalf("Len=%d, want 0", l.Len())
	}
}
