// Package sim provides a deterministic discrete-event simulation loop.
//
// All protocol machinery in this repository runs in virtual time: work is
// scheduled as events on a single queue ordered by (time, scheduling
// sequence), and the loop executes events one at a time. Two runs with the
// same seed and the same schedule of external stimuli produce byte-identical
// results, which is what makes the paper's millisecond-scale packet-loss
// experiments reproducible rather than flaky.
//
// The loop is not safe for concurrent use; a simulation is single-threaded
// by design. Code under test interacts with it only from event callbacks or
// from the goroutine driving Run/RunFor.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is an instant in virtual time, expressed as the elapsed duration
// since the start of the simulation.
type Time time.Duration

// Add returns the instant d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration between t and an earlier instant u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Duration converts t to the duration elapsed since the simulation start.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// String formats the instant like a duration, e.g. "1.25s".
func (t Time) String() string { return time.Duration(t).String() }

// event is a scheduled callback. A nil fn marks a cancelled event that the
// heap discards when it reaches the top.
type event struct {
	at  Time
	seq uint64
	fn  func()
	idx int // heap index, -1 once popped or cancelled
}

// Timer is a handle to a scheduled event, allowing cancellation.
type Timer struct {
	ev *event
}

// Stop cancels the timer. It reports whether the call prevented the event
// from firing; it returns false if the event already ran or was stopped.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.fn == nil {
		return false
	}
	t.ev.fn = nil
	return true
}

// At returns the virtual time the timer is (or was) scheduled to fire.
func (t *Timer) At() Time {
	if t == nil || t.ev == nil {
		return 0
	}
	return t.ev.at
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.idx = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.idx = -1
	*h = old[:n-1]
	return ev
}

// Loop is a discrete-event simulation loop with a virtual clock and a
// seeded random number generator.
type Loop struct {
	now      Time
	seq      uint64
	pq       eventHeap
	rng      *rand.Rand
	executed uint64
	stopped  bool
	serial   uint64
	maxQueue int
}

// New returns a loop whose clock reads zero and whose random source is
// seeded with seed.
func New(seed int64) *Loop {
	return &Loop{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (l *Loop) Now() Time { return l.now }

// Rand returns the loop's deterministic random source.
func (l *Loop) Rand() *rand.Rand { return l.rng }

// Len returns the number of scheduled (possibly cancelled) events.
func (l *Loop) Len() int { return len(l.pq) }

// Executed returns the number of events run so far.
func (l *Loop) Executed() uint64 { return l.executed }

// QueueHighWater returns the largest event-queue depth observed so far.
func (l *Loop) QueueHighWater() int { return l.maxQueue }

// NextSerial returns the next value of a monotonic per-loop counter,
// starting at 1. It is the allocator for packet trace IDs: deterministic,
// never zero, and shared by every layer of one simulation.
func (l *Loop) NextSerial() uint64 {
	l.serial++
	return l.serial
}

// Schedule runs fn after delay d of virtual time. A negative delay is
// treated as zero: the event runs at the current instant, after any events
// already scheduled for it.
func (l *Loop) Schedule(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return l.At(l.now.Add(d), fn)
}

// At runs fn at instant t. Scheduling in the past is an error in the
// simulation's logic, so it panics rather than silently reordering history.
func (l *Loop) At(t Time, fn func()) *Timer {
	if fn == nil {
		panic("sim: At with nil callback")
	}
	if t < l.now {
		panic(fmt.Sprintf("sim: scheduling into the past: now=%v at=%v", l.now, t))
	}
	ev := &event{at: t, seq: l.seq, fn: fn}
	l.seq++
	heap.Push(&l.pq, ev)
	if len(l.pq) > l.maxQueue {
		l.maxQueue = len(l.pq)
	}
	return &Timer{ev: ev}
}

// Step executes the single next event, advancing the clock to its time.
// It reports whether an event was executed (false when the queue is empty).
func (l *Loop) Step() bool {
	for len(l.pq) > 0 {
		ev := heap.Pop(&l.pq).(*event)
		if ev.fn == nil {
			continue // cancelled
		}
		l.now = ev.at
		fn := ev.fn
		ev.fn = nil
		l.executed++
		fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty or Stop is called.
func (l *Loop) Run() {
	l.stopped = false
	for !l.stopped && l.Step() {
	}
}

// RunUntil executes every event scheduled at or before t, then advances the
// clock to exactly t. It is the usual way to drive an experiment for a
// fixed window of virtual time.
func (l *Loop) RunUntil(t Time) {
	if t < l.now {
		panic(fmt.Sprintf("sim: RunUntil into the past: now=%v t=%v", l.now, t))
	}
	l.stopped = false
	for !l.stopped {
		next, ok := l.peek()
		if !ok || next > t {
			break
		}
		l.Step()
	}
	if !l.stopped && l.now < t {
		l.now = t
	}
}

// RunFor advances the simulation by d of virtual time, executing all events
// that fall within the window.
func (l *Loop) RunFor(d time.Duration) { l.RunUntil(l.now.Add(d)) }

// Stop makes the innermost Run/RunUntil/RunFor return after the current
// event completes. It is intended to be called from an event callback.
func (l *Loop) Stop() { l.stopped = true }

// peek returns the time of the next live event.
func (l *Loop) peek() (Time, bool) {
	for len(l.pq) > 0 {
		if l.pq[0].fn == nil {
			heap.Pop(&l.pq)
			continue
		}
		return l.pq[0].at, true
	}
	return 0, false
}

// NextEventAt returns the time of the next scheduled live event, if any.
func (l *Loop) NextEventAt() (Time, bool) { return l.peek() }

// Jitter returns a uniformly distributed duration in [d-spread, d+spread],
// clamped at zero, drawn from the loop's deterministic random source. It is
// the standard way device models add calibrated variance.
func (l *Loop) Jitter(d, spread time.Duration) time.Duration {
	if spread <= 0 {
		return d
	}
	off := time.Duration(l.rng.Int63n(int64(2*spread+1))) - spread
	v := d + off
	if v < 0 {
		v = 0
	}
	return v
}
