// Package sim provides a deterministic discrete-event simulation loop.
//
// All protocol machinery in this repository runs in virtual time: work is
// scheduled as events on a single queue ordered by (time, scheduling
// sequence), and the loop executes events one at a time. Two runs with the
// same seed and the same schedule of external stimuli produce byte-identical
// results, which is what makes the paper's millisecond-scale packet-loss
// experiments reproducible rather than flaky.
//
// Event records are pooled: firing or cancelling an event returns its
// record to a per-loop free list, so a steady-state simulation schedules
// millions of timers without allocating. Timer handles stay safe across
// recycling because each handle carries the generation of the event it was
// issued for; a stale handle (its event already fired, was stopped, or was
// recycled into a different timer) is simply inert.
//
// The loop is not safe for concurrent use; a simulation is single-threaded
// by design. Code under test interacts with it only from event callbacks or
// from the goroutine driving Run/RunFor.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is an instant in virtual time, expressed as the elapsed duration
// since the start of the simulation.
type Time time.Duration

// Add returns the instant d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration between t and an earlier instant u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Duration converts t to the duration elapsed since the simulation start.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// String formats the instant like a duration, e.g. "1.25s".
func (t Time) String() string { return time.Duration(t).String() }

// event is a scheduled callback. Records are recycled through the loop's
// free list; gen counts recyclings so stale Timer handles can detect that
// their event is gone.
type event struct {
	at   Time
	seq  uint64
	fn   func()
	idx  int // heap index, -1 while on the free list
	gen  uint64
	loop *Loop
}

// Timer is a handle to a scheduled event, allowing cancellation. The zero
// Timer is valid and inert: Stop reports false and Active reports false.
// Timer is a small value; copy it freely. A handle outlives its event
// harmlessly — once the event fires or is stopped, the handle goes inert
// even if the loop recycles the event record for a new timer.
type Timer struct {
	ev  *event
	gen uint64
}

// Active reports whether the timer is still scheduled to fire.
func (t Timer) Active() bool { return t.ev != nil && t.ev.gen == t.gen }

// Stop cancels the timer, removing its event from the queue immediately so
// cancelled work never lingers in Len or QueueHighWater. It reports whether
// the call prevented the event from firing; it returns false if the event
// already ran or was stopped.
func (t Timer) Stop() bool {
	ev := t.ev
	if ev == nil || ev.gen != t.gen {
		return false
	}
	l := ev.loop
	heap.Remove(&l.pq, ev.idx)
	l.recycle(ev)
	return true
}

// At returns the virtual time the timer is scheduled to fire, or 0 if the
// timer is no longer active.
func (t Timer) At() Time {
	if !t.Active() {
		return 0
	}
	return t.ev.at
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.idx = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.idx = -1
	*h = old[:n-1]
	return ev
}

// Loop is a discrete-event simulation loop with a virtual clock and a
// seeded random number generator.
type Loop struct {
	now      Time
	seq      uint64
	pq       eventHeap
	free     []*event // recycled event records
	rng      *rand.Rand
	executed uint64
	stopped  bool
	serial   uint64
	maxQueue int
	lanes    map[time.Duration]*Lane
}

// New returns a loop whose clock reads zero and whose random source is
// seeded with seed.
func New(seed int64) *Loop {
	return &Loop{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (l *Loop) Now() Time { return l.now }

// Rand returns the loop's deterministic random source.
func (l *Loop) Rand() *rand.Rand { return l.rng }

// Len returns the number of live scheduled events. Stopped timers are
// removed from the queue eagerly, so cancelled work is never counted.
func (l *Loop) Len() int { return len(l.pq) }

// Executed returns the number of events run so far.
func (l *Loop) Executed() uint64 { return l.executed }

// QueueHighWater returns the largest number of live scheduled events
// observed so far.
func (l *Loop) QueueHighWater() int { return l.maxQueue }

// NextSerial returns the next value of a monotonic per-loop counter,
// starting at 1. It is the allocator for packet trace IDs: deterministic,
// never zero, and shared by every layer of one simulation.
func (l *Loop) NextSerial() uint64 {
	l.serial++
	return l.serial
}

// alloc takes an event record from the free list, or makes a new one.
func (l *Loop) alloc() *event {
	if n := len(l.free); n > 0 {
		ev := l.free[n-1]
		l.free[n-1] = nil
		l.free = l.free[:n-1]
		return ev
	}
	return &event{loop: l}
}

// recycle returns an event record to the free list. Bumping gen invalidates
// every Timer handle issued for the record's previous life.
func (l *Loop) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.idx = -1
	l.free = append(l.free, ev)
}

// Schedule runs fn after delay d of virtual time. A negative delay is
// treated as zero: the event runs at the current instant, after any events
// already scheduled for it.
func (l *Loop) Schedule(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return l.At(l.now.Add(d), fn)
}

// At runs fn at instant t. Scheduling in the past is an error in the
// simulation's logic, so it panics rather than silently reordering history.
func (l *Loop) At(t Time, fn func()) Timer {
	if fn == nil {
		panic("sim: At with nil callback")
	}
	if t < l.now {
		panic(fmt.Sprintf("sim: scheduling into the past: now=%v at=%v", l.now, t))
	}
	ev := l.alloc()
	ev.at, ev.seq, ev.fn = t, l.seq, fn
	l.seq++
	heap.Push(&l.pq, ev)
	if len(l.pq) > l.maxQueue {
		l.maxQueue = len(l.pq)
	}
	return Timer{ev: ev, gen: ev.gen}
}

// Step executes the single next event, advancing the clock to its time.
// It reports whether an event was executed (false when the queue is empty).
func (l *Loop) Step() bool {
	if len(l.pq) == 0 {
		return false
	}
	ev := heap.Pop(&l.pq).(*event)
	l.now = ev.at
	fn := ev.fn
	// Recycle before invoking so the callback can schedule into the
	// record it just vacated; the gen bump has already gone inert on
	// every handle to this firing.
	l.recycle(ev)
	l.executed++
	fn()
	return true
}

// Run executes events until the queue is empty or Stop is called.
func (l *Loop) Run() {
	l.stopped = false
	for !l.stopped && l.Step() {
	}
}

// RunUntil executes every event scheduled at or before t, then advances the
// clock to exactly t. It is the usual way to drive an experiment for a
// fixed window of virtual time.
func (l *Loop) RunUntil(t Time) {
	if t < l.now {
		panic(fmt.Sprintf("sim: RunUntil into the past: now=%v t=%v", l.now, t))
	}
	l.stopped = false
	for !l.stopped {
		next, ok := l.peek()
		if !ok || next > t {
			break
		}
		l.Step()
	}
	if !l.stopped && l.now < t {
		l.now = t
	}
}

// RunFor advances the simulation by d of virtual time, executing all events
// that fall within the window.
func (l *Loop) RunFor(d time.Duration) { l.RunUntil(l.now.Add(d)) }

// AdvanceTo moves the clock to t without executing anything. It is the
// barrier-skip fast path for shard-parallel execution: a shard with no
// event inside an epoch has nothing to run, so the coordinator advances
// its clock directly instead of paying a RunUntil call. Skipping is only
// legal when no pending event falls strictly before t — an event at
// exactly t may stay pending, matching RunUntil's handling of work
// scheduled at the final barrier instant — so AdvanceTo panics if the
// queue holds earlier work rather than silently skipping it.
func (l *Loop) AdvanceTo(t Time) {
	if t < l.now {
		panic(fmt.Sprintf("sim: AdvanceTo into the past: now=%v t=%v", l.now, t))
	}
	if next, ok := l.peek(); ok && next < t {
		panic(fmt.Sprintf("sim: AdvanceTo(%v) would skip an event pending at %v", t, next))
	}
	l.now = t
}

// Stop makes the innermost Run/RunUntil/RunFor return after the current
// event completes. It is intended to be called from an event callback.
func (l *Loop) Stop() { l.stopped = true }

// peek returns the time of the next live event. Cancellation removes
// events eagerly, so the heap top is always live.
func (l *Loop) peek() (Time, bool) {
	if len(l.pq) == 0 {
		return 0, false
	}
	return l.pq[0].at, true
}

// NextEventAt returns the time of the next scheduled live event, if any.
func (l *Loop) NextEventAt() (Time, bool) { return l.peek() }

// Jitter returns a uniformly distributed duration in [d-spread, d+spread],
// clamped at zero, drawn from the loop's deterministic random source. It is
// the standard way device models add calibrated variance.
func (l *Loop) Jitter(d, spread time.Duration) time.Duration {
	if spread <= 0 {
		return d
	}
	off := time.Duration(l.rng.Int63n(int64(2*spread+1))) - spread
	v := d + off
	if v < 0 {
		v = 0
	}
	return v
}
