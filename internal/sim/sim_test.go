package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	l := New(1)
	var got []int
	l.Schedule(30*time.Millisecond, func() { got = append(got, 3) })
	l.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	l.Schedule(20*time.Millisecond, func() { got = append(got, 2) })
	l.Run()
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestSameInstantFIFO(t *testing.T) {
	l := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		l.Schedule(5*time.Millisecond, func() { got = append(got, i) })
	}
	l.Run()
	if !sort.IntsAreSorted(got) {
		t.Fatalf("same-instant events ran out of scheduling order: %v", got)
	}
}

func TestClockAdvances(t *testing.T) {
	l := New(1)
	var at Time
	l.Schedule(42*time.Millisecond, func() { at = l.Now() })
	l.Run()
	if at != Time(42*time.Millisecond) {
		t.Fatalf("event saw clock %v, want 42ms", at)
	}
	if l.Now() != Time(42*time.Millisecond) {
		t.Fatalf("final clock %v, want 42ms", l.Now())
	}
}

func TestNegativeDelayClampedToNow(t *testing.T) {
	l := New(1)
	l.Schedule(10*time.Millisecond, func() {
		fired := false
		l.Schedule(-5*time.Millisecond, func() { fired = true })
		l.Schedule(0, func() {
			if !fired {
				t.Error("negative-delay event did not run before later same-instant event")
			}
		})
	})
	l.Run()
	if l.Now() != Time(10*time.Millisecond) {
		t.Fatalf("clock moved backwards: %v", l.Now())
	}
}

func TestAtPastPanics(t *testing.T) {
	l := New(1)
	l.Schedule(10*time.Millisecond, func() {})
	l.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("At in the past did not panic")
		}
	}()
	l.At(Time(5*time.Millisecond), func() {})
}

func TestTimerStop(t *testing.T) {
	l := New(1)
	fired := false
	tm := l.Schedule(10*time.Millisecond, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("first Stop returned false")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	l.Run()
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	l := New(1)
	tm := l.Schedule(time.Millisecond, func() {})
	l.Run()
	if tm.Stop() {
		t.Fatal("Stop after firing returned true")
	}
}

func TestStopZeroTimer(t *testing.T) {
	var tm Timer
	if tm.Stop() {
		t.Fatal("zero timer Stop returned true")
	}
	if tm.Active() {
		t.Fatal("zero timer reported active")
	}
}

func TestRunUntilAdvancesToExactTime(t *testing.T) {
	l := New(1)
	ran := 0
	l.Schedule(10*time.Millisecond, func() { ran++ })
	l.Schedule(30*time.Millisecond, func() { ran++ })
	l.RunUntil(Time(20 * time.Millisecond))
	if ran != 1 {
		t.Fatalf("ran %d events, want 1", ran)
	}
	if l.Now() != Time(20*time.Millisecond) {
		t.Fatalf("clock %v, want 20ms", l.Now())
	}
	l.RunFor(10 * time.Millisecond)
	if ran != 2 {
		t.Fatalf("ran %d events, want 2", ran)
	}
}

func TestRunUntilBoundaryInclusive(t *testing.T) {
	l := New(1)
	ran := false
	l.Schedule(10*time.Millisecond, func() { ran = true })
	l.RunUntil(Time(10 * time.Millisecond))
	if !ran {
		t.Fatal("event at window boundary did not run")
	}
}

func TestStopFromCallback(t *testing.T) {
	l := New(1)
	ran := 0
	l.Schedule(time.Millisecond, func() { ran++; l.Stop() })
	l.Schedule(2*time.Millisecond, func() { ran++ })
	l.Run()
	if ran != 1 {
		t.Fatalf("Stop did not halt Run: ran=%d", ran)
	}
	l.Run() // resumes
	if ran != 2 {
		t.Fatalf("second Run did not resume: ran=%d", ran)
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	l := New(1)
	var order []string
	l.Schedule(time.Millisecond, func() {
		order = append(order, "a")
		l.Schedule(time.Millisecond, func() { order = append(order, "c") })
		l.Schedule(0, func() { order = append(order, "b") })
	})
	l.Run()
	want := []string{"a", "b", "c"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func(seed int64) []int64 {
		l := New(seed)
		var samples []int64
		var tick func()
		tick = func() {
			samples = append(samples, l.Rand().Int63n(1000))
			if len(samples) < 50 {
				l.Schedule(time.Duration(l.Rand().Int63n(int64(time.Millisecond))), tick)
			}
		}
		l.Schedule(0, tick)
		l.Run()
		return samples
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestExecutedCountsOnlyLiveEvents(t *testing.T) {
	l := New(1)
	tm := l.Schedule(time.Millisecond, func() {})
	l.Schedule(2*time.Millisecond, func() {})
	tm.Stop()
	l.Run()
	if l.Executed() != 1 {
		t.Fatalf("Executed=%d, want 1", l.Executed())
	}
}

func TestNextEventAt(t *testing.T) {
	l := New(1)
	if _, ok := l.NextEventAt(); ok {
		t.Fatal("empty loop reported a next event")
	}
	tm := l.Schedule(5*time.Millisecond, func() {})
	l.Schedule(9*time.Millisecond, func() {})
	if at, ok := l.NextEventAt(); !ok || at != Time(5*time.Millisecond) {
		t.Fatalf("next=%v ok=%v, want 5ms", at, ok)
	}
	tm.Stop()
	if at, ok := l.NextEventAt(); !ok || at != Time(9*time.Millisecond) {
		t.Fatalf("next after cancel=%v ok=%v, want 9ms", at, ok)
	}
}

func TestJitterBounds(t *testing.T) {
	l := New(3)
	for i := 0; i < 1000; i++ {
		v := l.Jitter(100*time.Millisecond, 20*time.Millisecond)
		if v < 80*time.Millisecond || v > 120*time.Millisecond {
			t.Fatalf("jitter %v outside [80ms,120ms]", v)
		}
	}
	if v := l.Jitter(time.Millisecond, 0); v != time.Millisecond {
		t.Fatalf("zero-spread jitter changed value: %v", v)
	}
	for i := 0; i < 1000; i++ {
		if v := l.Jitter(time.Millisecond, 10*time.Millisecond); v < 0 {
			t.Fatalf("jitter went negative: %v", v)
		}
	}
}

func TestTimeArithmetic(t *testing.T) {
	a := Time(100 * time.Millisecond)
	if a.Add(50*time.Millisecond) != Time(150*time.Millisecond) {
		t.Fatal("Add wrong")
	}
	if a.Sub(Time(30*time.Millisecond)) != 70*time.Millisecond {
		t.Fatal("Sub wrong")
	}
	if a.Duration() != 100*time.Millisecond {
		t.Fatal("Duration wrong")
	}
	if a.String() != "100ms" {
		t.Fatalf("String = %q", a.String())
	}
}

// Property: for any batch of events with arbitrary non-negative delays, the
// loop executes them in nondecreasing time order, ties broken by
// scheduling order.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		l := New(1)
		type rec struct {
			at  Time
			seq int
		}
		var got []rec
		for i, d := range delays {
			i, at := i, time.Duration(d)*time.Microsecond
			l.Schedule(at, func() { got = append(got, rec{l.Now(), i}) })
		}
		l.Run()
		if len(got) != len(delays) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i].at < got[i-1].at {
				return false
			}
			if got[i].at == got[i-1].at && got[i].seq < got[i-1].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: RunUntil never overshoots and never runs an event scheduled
// after the target time.
func TestPropertyRunUntilWindow(t *testing.T) {
	f := func(delays []uint16, window uint16) bool {
		l := New(1)
		target := Time(time.Duration(window) * time.Microsecond)
		ok := true
		for _, d := range delays {
			at := time.Duration(d) * time.Microsecond
			l.Schedule(at, func() {
				if l.Now() > target {
					ok = false
				}
			})
		}
		l.RunUntil(target)
		return ok && l.Now() == target
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: stopping a random subset of timers means exactly the live ones
// fire.
func TestPropertyTimerStopSubset(t *testing.T) {
	f := func(n uint8, seed int64) bool {
		l := New(1)
		r := rand.New(rand.NewSource(seed))
		fired := make([]bool, n)
		timers := make([]Timer, n)
		for i := 0; i < int(n); i++ {
			i := i
			timers[i] = l.Schedule(time.Duration(i)*time.Microsecond, func() { fired[i] = true })
		}
		stopped := make([]bool, n)
		for i := range timers {
			if r.Intn(2) == 0 {
				stopped[i] = timers[i].Stop()
			}
		}
		l.Run()
		for i := range fired {
			if fired[i] == stopped[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
