package stack

import (
	"errors"
	"fmt"
	"time"

	"mosquitonet/internal/arena"
	"mosquitonet/internal/arp"
	"mosquitonet/internal/ip"
	"mosquitonet/internal/link"
	"mosquitonet/internal/metrics"
	"mosquitonet/internal/pipeline"
	"mosquitonet/internal/sim"
	"mosquitonet/internal/trace"
)

// Config tunes a host's per-packet software costs. The paper's numbers are
// from 40 MHz 486 subnotebooks and a Pentium 90 router, where protocol
// processing is measurable in fractions of a millisecond; the testbed
// package calibrates these so the registration time-line lands on the
// measured values.
type Config struct {
	InputDelay   time.Duration // receive-path processing per packet
	OutputDelay  time.Duration // send-path processing per packet
	ForwardDelay time.Duration // extra cost to forward (routers)
	TTL          uint8         // initial TTL for local packets (default 64)
}

func (c Config) withDefaults() Config {
	if c.TTL == 0 {
		c.TTL = ip.DefaultTTL
	}
	return c
}

// Stats counts a host's IP-layer activity.
type Stats struct {
	Sent          uint64
	Received      uint64
	Delivered     uint64
	Forwarded     uint64
	DropNoRoute   uint64
	DropTTL       uint64
	DropFilter    uint64
	DropBadPacket uint64
	DropNotLocal  uint64
	DropNoHandler uint64
	DropMTU       uint64 // DF packets exceeding an interface MTU
	FragmentsSent uint64
	RedirectsSent uint64
	RedirectsRcvd uint64
}

// ProtocolHandler consumes a locally delivered packet.
type ProtocolHandler func(ifc *Iface, pkt *ip.Packet)

// Verdict is a forwarding filter's decision.
type Verdict int

// Filter verdicts. Reject differs from Drop by sending an ICMP
// administratively-prohibited error back to the source, which is how a
// polite transit-traffic filter behaves.
const (
	Accept Verdict = iota
	Drop
	Reject
)

// FilterFunc inspects a packet being forwarded from in to out.
type FilterFunc func(in, out *Iface, pkt *ip.Packet) Verdict

// ErrNoRoute is returned when no route matches a destination.
var ErrNoRoute = errors.New("stack: no route to host")

// Host is a simulated IP host: interfaces, routing table, input/output/
// forwarding machinery, and protocol handlers.
type Host struct {
	name string
	loop *sim.Loop
	cfg  Config

	ifaces []*Iface
	lo     *Iface
	routes RouteTable

	// The netfilter-style datapath: one hook chain per classic stage
	// (indexed by pipeline.Stage), plus the route-resolution chain that
	// generalizes the paper's single-slot ip_rt_route override. All the
	// legacy splice APIs (SetRouteLookup, AddFilter) delegate here.
	chains     [pipeline.NumStages]*pipeline.Chain[*PacketContext]
	routeHooks *pipeline.Chain[*RouteQuery]
	filterSeq  int

	// Route-decision cache for the ip_rt_route hot path. Decisions are
	// memoized per (dst, boundSrc) for local output and per dst for the
	// forwarding path, and guarded by a combined generation: the route
	// table's own counter plus routeGen, which everything outside the
	// table bumps via InvalidateRoutes (iface/device state, local-address
	// set, mobility policy). Any bump flushes both maps lazily on the
	// next lookup, so a cached decision can never outlive the state it
	// was derived from.
	routeGen      uint64
	routeCacheGen uint64
	routeCache    map[routeCacheKey]RouteDecision
	fwdCache      map[ip.Addr]Route
	cacheStats    RouteCacheStats

	handlers   map[ip.Protocol]ProtocolHandler
	forwarding bool

	// localAddrs holds addresses the host accepts beyond its interface
	// addresses. A mobile host away from home keeps its home address here:
	// tunneled packets arrive addressed to the care-of address, but the
	// decapsulated inner packet is addressed to the home address.
	localAddrs map[ip.Addr]bool

	// groups holds joined multicast groups. Group traffic is link-scoped:
	// it rides link broadcast on the joined interface and routers do not
	// forward it — the paper's "join multicast groups via the foreign
	// network" is a local-role activity.
	groups map[ip.Addr]bool

	installRedirects bool
	icmp             *ICMP
	reasm            *ip.Reassembler
	sweepArmed       bool
	stats            Stats
	idSeq            uint16
	pktlog           *metrics.PacketLog

	// tracer is the loop's span tracer, resolved lazily because hosts may
	// be built before trace.New associates one with the loop. Drop spans
	// are always recorded when a tracer exists; chainSpans additionally
	// records a traversal span per chain run (opt-in, hot).
	tracer     *trace.Tracer
	chainSpans bool
}

// reassemblySweepInterval drives partial-fragment expiry; with MaxAge 2
// this gives incomplete packets 15-30 s, per the classic reassembly
// timeout.
const reassemblySweepInterval = 15 * time.Second

// sweepLaneGranularity buckets sweep timers across hosts: on a fleet every
// host holding partial fragments sweeps on the same cadence, and a 100ms
// rounding is immaterial against a 15s interval and 15-30s expiry window.
const sweepLaneGranularity = 100 * time.Millisecond

// Host and Iface structs come out of process-wide slabs: a 100k-host
// fleet allocates thousands of chunks instead of hundreds of thousands of
// individual objects, which both speeds construction and shrinks GC
// bookkeeping per host. Slab state is allocation-only — handing out a
// pointer to zeroed memory is order-independent, so whichever shard builds
// its topology first cannot affect what any other shard observes.
var (
	//lint:allow nosharedstate allocation-only slab (internally mutex-guarded); Get returns zeroed memory, so cross-shard allocation order is unobservable
	hostSlab = arena.NewSlab[Host](64)
	//lint:allow nosharedstate allocation-only slab (internally mutex-guarded); Get returns zeroed memory, so cross-shard allocation order is unobservable
	ifaceSlab = arena.NewSlab[Iface](128)
)

// NewHost creates a host with a loopback interface and the default route
// lookup installed.
func NewHost(loop *sim.Loop, name string, cfg Config) *Host {
	h := hostSlab.Get()
	h.name = name
	h.loop = loop
	h.cfg = cfg.withDefaults()
	h.lo = ifaceSlab.Get()
	*h.lo = Iface{host: h, name: "lo", addr: ip.MustParseAddr("127.0.0.1"), prefix: ip.MustParsePrefix("127.0.0.0/8")}
	h.lo.transmit = func(pkt *ip.Packet, _ ip.Addr) { h.Input(h.lo, pkt) }
	h.ifaces = append(h.ifaces, h.lo)
	h.icmp = newICMP(h)
	h.reasm = ip.NewReassembler()
	h.pktlog = metrics.PacketsFor(loop)
	h.initPipeline()
	h.registerMetrics(metrics.For(loop))
	return h
}

// spanTracer returns the loop's tracer, caching the first successful
// lookup. Hosts are often built before trace.New runs, so NewHost cannot
// resolve it eagerly; a miss retries on the next call (a cheap registry
// load, and only on already-slow paths like drops).
func (h *Host) spanTracer() *trace.Tracer {
	if h.tracer == nil {
		h.tracer = trace.For(h.loop)
	}
	return h.tracer
}

// EnableChainSpans turns on per-chain traversal spans: every run of every
// stage chain records an instant span ("pipeline.forward", ...) with the
// final verdict attached. Off by default — at scale this is one span per
// packet per stage — it exists for interactive introspection (mnet -spans)
// and targeted tests. Requires a tracer associated with the host's loop.
func (h *Host) EnableChainSpans() { h.chainSpans = true }

// registerMetrics exposes the host's counters in the loop's registry; the
// Stats struct stays the source of truth. A single snapshot-time collector
// replaces a 20-entry roster of CounterFunc registrations: at fleet scale
// the registry cost per host is one closure, not twenty map entries, and
// the snapshot rows are byte-identical.
func (h *Host) registerMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	reg.Collect(func(c *metrics.Collection) {
		host := metrics.L("host", h.name)
		c.Counter("stack.host.sent", h.stats.Sent, host)
		c.Counter("stack.host.received", h.stats.Received, host)
		c.Counter("stack.host.delivered", h.stats.Delivered, host)
		c.Counter("stack.host.forwarded", h.stats.Forwarded, host)
		c.Counter("stack.host.drop_no_route", h.stats.DropNoRoute, host)
		c.Counter("stack.host.drop_ttl", h.stats.DropTTL, host)
		c.Counter("stack.host.drop_filter", h.stats.DropFilter, host)
		c.Counter("stack.host.drop_bad_packet", h.stats.DropBadPacket, host)
		c.Counter("stack.host.drop_not_local", h.stats.DropNotLocal, host)
		c.Counter("stack.host.drop_no_handler", h.stats.DropNoHandler, host)
		c.Counter("stack.host.drop_mtu", h.stats.DropMTU, host)
		c.Counter("stack.host.fragments_sent", h.stats.FragmentsSent, host)
		c.Counter("stack.host.redirects_sent", h.stats.RedirectsSent, host)
		c.Counter("stack.host.redirects_rcvd", h.stats.RedirectsRcvd, host)
		c.Counter("stack.icmp.sent", h.icmp.Sent, host)
		c.Counter("stack.icmp.received", h.icmp.Received, host)
		c.Counter("stack.icmp.echo_requests", h.icmp.EchoRequests, host)
		c.Counter("stack.route_cache.hits", h.cacheStats.Hits, host)
		c.Counter("stack.route_cache.misses", h.cacheStats.Misses, host)
		c.Counter("stack.route_cache.invalidations", h.cacheStats.Invalidations, host)
	})
}

// armSweep keeps a reassembly-expiry sweep scheduled while partial
// fragments are held, and lets the timer die otherwise so an idle host
// leaves the event queue empty.
func (h *Host) armSweep() {
	if h.sweepArmed {
		return
	}
	h.sweepArmed = true
	h.loop.Lane(sweepLaneGranularity).Schedule(reassemblySweepInterval, func() {
		h.sweepArmed = false
		h.reasm.Sweep()
		if h.reasm.Pending() > 0 {
			h.armSweep()
		}
	})
}

// Reassembler exposes fragment-reassembly statistics.
func (h *Host) Reassembler() *ip.Reassembler { return h.reasm }

// Name returns the host name.
func (h *Host) Name() string { return h.name }

// Loop returns the simulation loop the host runs on.
func (h *Host) Loop() *sim.Loop { return h.loop }

// Stats returns a snapshot of the host's counters.
func (h *Host) Stats() Stats { return h.stats }

// Routes returns the host's routing table.
func (h *Host) Routes() *RouteTable { return &h.routes }

// ICMP returns the host's ICMP endpoint (echo, error notifications).
func (h *Host) ICMP() *ICMP { return h.icmp }

// Loopback returns the loopback interface.
func (h *Host) Loopback() *Iface { return h.lo }

// SetForwarding enables or disables IP forwarding (routers, home agents).
func (h *Host) SetForwarding(v bool) { h.forwarding = v }

// Forwarding reports whether the host forwards packets.
func (h *Host) Forwarding() bool { return h.forwarding }

// AddFilter appends a forwarding filter (evaluated in order; first
// non-Accept verdict wins). Filters are adapted onto the FORWARD chain at
// PriForwardFilter — after the route decision, before the path-MTU check,
// exactly where the legacy filter list ran — named filter#NNN in
// insertion order so the (priority, name) sort preserves it.
func (h *Host) AddFilter(f FilterFunc) {
	name := fmt.Sprintf("filter#%03d", h.filterSeq)
	h.filterSeq++
	h.chains[pipeline.Forward].Register(pipeline.Hook[*PacketContext]{
		Name: name, Priority: PriForwardFilter,
		Fn: func(ctx *PacketContext) pipeline.Verdict {
			switch f(ctx.In, ctx.Out, ctx.Pkt) {
			case Drop:
				return ctx.drop("filtered", &h.stats.DropFilter)
			case Reject:
				return ctx.dropICMP("filtered (reject)", &h.stats.DropFilter, ip.ICMPDestUnreach, ip.CodeAdminProhibited)
			}
			return pipeline.Accept
		},
	})
}

// SetInstallRedirects controls whether received ICMP redirects install
// host routes, one of the transparency issues Section 5.2 discusses.
func (h *Host) SetInstallRedirects(v bool) { h.installRedirects = v }

// IfaceOpts configures AddIface.
type IfaceOpts struct {
	// PointToPoint disables ARP; frames go to the link broadcast address
	// and are filtered by IP address on receive, like the STRIP radio
	// driver's Starmode.
	PointToPoint bool
	// ARP tunes the ARP cache on broadcast media.
	ARP arp.Config
}

// AddIface attaches a device-backed interface with the given address and
// connected prefix, and wires the device's receive path into the stack.
// It does not add routes; call ConnectRoute or add them explicitly.
func (h *Host) AddIface(name string, dev *link.Device, addr ip.Addr, prefix ip.Prefix, opts IfaceOpts) *Iface {
	ifc := ifaceSlab.Get()
	*ifc = Iface{
		host:         h,
		name:         name,
		addr:         addr,
		prefix:       prefix.Normalize(),
		dev:          dev,
		pointToPoint: opts.PointToPoint,
	}
	if !opts.PointToPoint {
		ifc.arp = arp.New(h.loop, dev, opts.ARP, func() []ip.Addr {
			if ifc.addr.IsUnspecified() {
				return nil
			}
			return []ip.Addr{ifc.addr}
		})
	}
	// Device reachability feeds Iface.Up(), which route decisions depend
	// on; the decision cache must not survive an up/down/attach change.
	dev.OnChange(h.InvalidateRoutes)
	dev.SetReceiver(func(f *link.Frame) {
		switch f.Type {
		case link.EtherTypeARP:
			if ifc.arp != nil {
				ifc.arp.HandleFrame(f)
			}
		case link.EtherTypeIPv4:
			pkt, err := ip.Unmarshal(f.Payload)
			if err != nil {
				h.stats.DropBadPacket++
				h.pktlog.Record(f.Trace, h.name, "ip.drop", "bad packet")
				return
			}
			pkt.Trace = f.Trace
			h.Input(ifc, pkt)
		}
	})
	h.ifaces = append(h.ifaces, ifc)
	h.InvalidateRoutes()
	return ifc
}

// AddVirtualIface attaches a software interface whose transmit function
// receives routed packets. transmit may be nil when a POSTROUTING hook
// owns the interface's egress instead, as the tunnel package's VIF does:
// the hook steals every packet routed to the interface before send.
func (h *Host) AddVirtualIface(name string, transmit TransmitFunc) *Iface {
	ifc := ifaceSlab.Get()
	*ifc = Iface{host: h, name: name, transmit: transmit}
	h.ifaces = append(h.ifaces, ifc)
	h.InvalidateRoutes()
	return ifc
}

// Ifaces returns the host's interfaces, loopback first.
func (h *Host) Ifaces() []*Iface { return append([]*Iface(nil), h.ifaces...) }

// IfaceByName returns the named interface, or nil.
func (h *Host) IfaceByName(name string) *Iface {
	for _, i := range h.ifaces {
		if i.name == name {
			return i
		}
	}
	return nil
}

// ConnectRoute adds the directly-connected subnet route for ifc.
func (h *Host) ConnectRoute(ifc *Iface) {
	h.routes.Add(Route{Dst: ifc.prefix, Iface: ifc})
}

// AddDefaultRoute adds 0.0.0.0/0 via gw on ifc.
func (h *Host) AddDefaultRoute(gw ip.Addr, ifc *Iface) {
	h.routes.Add(Route{Dst: ip.Prefix{}, Gateway: gw, Iface: ifc})
}

// AddLocalAddr makes the host accept packets addressed to a beyond its
// interface addresses (the mobile host's home address while away).
func (h *Host) AddLocalAddr(a ip.Addr) {
	if h.localAddrs == nil { // maps are lazy: most fleet hosts never need one
		h.localAddrs = make(map[ip.Addr]bool)
	}
	h.localAddrs[a] = true
	h.InvalidateRoutes()
}

// RemoveLocalAddr undoes AddLocalAddr.
func (h *Host) RemoveLocalAddr(a ip.Addr) {
	delete(h.localAddrs, a)
	h.InvalidateRoutes()
}

// JoinGroup subscribes the host to a multicast group; traffic to it is
// accepted and delivered to protocol handlers.
func (h *Host) JoinGroup(g ip.Addr) error {
	if !g.IsMulticast() {
		return fmt.Errorf("stack: %v is not a multicast group", g)
	}
	if h.groups == nil {
		h.groups = make(map[ip.Addr]bool)
	}
	h.groups[g] = true
	h.InvalidateRoutes()
	return nil
}

// LeaveGroup unsubscribes the host from a multicast group.
func (h *Host) LeaveGroup(g ip.Addr) {
	delete(h.groups, g)
	h.InvalidateRoutes()
}

// InGroup reports whether the host has joined g.
func (h *Host) InGroup(g ip.Addr) bool { return h.groups[g] }

// IsLocalAddr reports whether a names this host: an interface address, an
// extra local address, a joined multicast group, loopback, or a broadcast
// form.
func (h *Host) IsLocalAddr(a ip.Addr) bool {
	if a.IsBroadcast() || a.IsLoopback() || h.localAddrs[a] {
		return true
	}
	if a.IsMulticast() {
		return h.groups[a]
	}
	for _, i := range h.ifaces {
		if !i.addr.IsUnspecified() && i.addr == a {
			return true
		}
		if i.dev != nil && i.prefix.Bits > 0 && a == i.prefix.BroadcastAddr() {
			return true
		}
	}
	return false
}

// RegisterHandler installs the protocol handler for locally delivered
// packets of protocol p, replacing any previous handler.
func (h *Host) RegisterHandler(p ip.Protocol, fn ProtocolHandler) {
	if h.handlers == nil {
		h.handlers = make(map[ip.Protocol]ProtocolHandler)
	}
	h.handlers[p] = fn
}

// SetRouteLookup replaces the route-lookup function — the paper's single
// kernel modification, kept as a convenience wrapper over the route-
// resolution chain: fn is registered as the hook named "override" at
// PriRouteOverride (replacing a previous one, the old single-slot
// semantics). Passing nil deregisters it, restoring the default
// longest-prefix match.
func (h *Host) SetRouteLookup(fn RouteLookupFunc) {
	if fn == nil {
		if !h.routeHooks.Deregister("override") {
			h.InvalidateRoutes() // parity with the legacy always-invalidate behavior
		}
		return
	}
	h.routeHooks.Register(pipeline.Hook[*RouteQuery]{
		Name: "override", Priority: PriRouteOverride,
		Fn: func(q *RouteQuery) pipeline.Verdict {
			q.Decision, q.Err = fn(q.Dst, q.Src)
			return pipeline.Stolen
		},
	})
}

// routeCacheKey identifies one memoizable lookup: the paper's
// ip_rt_route() arguments.
type routeCacheKey struct {
	dst, src ip.Addr
}

// RouteCacheStats counts route-decision cache activity. Invalidations is
// the number of cache flushes actually performed (generation bumps while
// the cache is already empty cost, and count, nothing).
type RouteCacheStats struct {
	Hits          uint64
	Misses        uint64
	Invalidations uint64
}

// RouteCacheStats returns a snapshot of the cache counters.
func (h *Host) RouteCacheStats() RouteCacheStats { return h.cacheStats }

// InvalidateRoutes discards every cached route decision. The stack calls
// it on interface and local-address changes; mobility code calls it when
// policy state outside the routing table shifts (care-of address switch,
// Mobile Policy Table edit). Route-table mutations are covered by the
// table's own generation and need no explicit call.
func (h *Host) InvalidateRoutes() { h.routeGen++ }

// syncRouteCache flushes the decision caches if any guarded state moved
// since they were filled. Both generations are monotonic, so their sum
// changes whenever either does.
func (h *Host) syncRouteCache() {
	gen := h.routeGen + h.routes.gen
	if gen == h.routeCacheGen {
		return
	}
	if len(h.routeCache) > 0 || len(h.fwdCache) > 0 {
		clear(h.routeCache)
		clear(h.fwdCache)
		h.cacheStats.Invalidations++
	}
	h.routeCacheGen = gen
}

// RouteLookup answers a route query through the generation-guarded
// decision cache, consulting the route-resolution chain on a miss. Only
// successful decisions are cached; errors always re-run the chain.
func (h *Host) RouteLookup(dst, boundSrc ip.Addr) (RouteDecision, error) {
	h.syncRouteCache()
	key := routeCacheKey{dst: dst, src: boundSrc}
	if dec, ok := h.routeCache[key]; ok {
		h.cacheStats.Hits++
		return dec, nil
	}
	h.cacheStats.Misses++
	dec, err := h.resolveRoute(dst, boundSrc)
	if err == nil {
		if h.routeCache == nil {
			h.routeCache = make(map[routeCacheKey]RouteDecision)
		}
		h.routeCache[key] = dec
	}
	return dec, err
}

// lookupForward is the forwarding path's cached table lookup. The cache
// holds only the matched route; filters, MTU checks, and redirect logic
// still run per packet.
func (h *Host) lookupForward(dst ip.Addr) (Route, bool) {
	h.syncRouteCache()
	if r, ok := h.fwdCache[dst]; ok {
		h.cacheStats.Hits++
		return r, true
	}
	h.cacheStats.Misses++
	r, ok := h.routes.Lookup(dst)
	if ok {
		if h.fwdCache == nil {
			h.fwdCache = make(map[ip.Addr]Route)
		}
		h.fwdCache[dst] = r
	}
	return r, ok
}

// DefaultRouteLookup is the stock lookup: longest-prefix match on the
// routing table, source address defaulting to the outgoing interface's.
func (h *Host) DefaultRouteLookup(dst, boundSrc ip.Addr) (RouteDecision, error) {
	if h.IsLocalAddr(dst) && !dst.IsBroadcast() && !dst.IsMulticast() {
		src := boundSrc
		if src.IsUnspecified() {
			src = dst
		}
		return RouteDecision{Iface: h.lo, Src: src, NextHop: dst}, nil
	}
	r, ok := h.routes.Lookup(dst)
	if !ok {
		return RouteDecision{}, fmt.Errorf("%w: %v", ErrNoRoute, dst)
	}
	src := boundSrc
	if src.IsUnspecified() {
		src = r.Iface.addr
	}
	nh := r.Gateway
	if nh.IsUnspecified() {
		nh = dst
	}
	return RouteDecision{Iface: r.Iface, Src: src, NextHop: nh}, nil
}

// NextID returns a fresh IP identification value.
func (h *Host) NextID() uint16 {
	h.idSeq++
	return h.idSeq
}

// Output routes and transmits a locally originated packet. A zero TTL is
// replaced with the host default; an unspecified source is filled from the
// route decision, exactly as the paper describes: packets with a bound
// source are outside the scope of mobile IP, packets without one get
// whatever source the (possibly overridden) lookup chooses.
func (h *Host) Output(pkt *ip.Packet) error {
	if pkt.TTL == 0 {
		pkt.TTL = h.cfg.TTL
	}
	if pkt.ID == 0 {
		pkt.ID = h.NextID()
	}
	if pkt.Trace == 0 {
		pkt.Trace = h.loop.NextSerial()
	}
	ctx := &PacketContext{Host: h, Pkt: pkt, stage: pipeline.Output}
	dec, err := h.RouteLookup(pkt.Dst, pkt.Src)
	if err != nil {
		// The OUTPUT chain still runs, with RouteErr set: the terminal
		// "unreachable" hook converts the failure into an accounted drop
		// plus an ICMP Destination Unreachable to a bound source.
		ctx.RouteErr = err
		h.chains[pipeline.Output].Run(ctx)
		return err
	}
	ctx.Out, ctx.NextHop, ctx.Routed = dec.Iface, dec.NextHop, true
	if pkt.Src.IsUnspecified() {
		pkt.Src = dec.Src
	}
	if h.chains[pipeline.Output].Run(ctx) != pipeline.Accept {
		//lint:allow dropaccounting verdict bookkeeping is centralized in the chain observer middleware
		return nil
	}
	h.stats.Sent++
	if h.pktlog != nil { // guard: the detail string is costly to format
		h.pktlog.Record(pkt.Trace, h.name, "ip.output", pkt.String()+" via "+ctx.Out.name)
	}
	out, nh := ctx.Out, ctx.NextHop
	h.loop.Schedule(h.cfg.OutputDelay, func() { h.postroute(out, pkt, nh) })
	return nil
}

// OutputVia transmits pkt on a specific interface toward nextHop,
// bypassing route lookup. DHCP clients (which have no routable address
// yet) and other link-scoped senders use it.
func (h *Host) OutputVia(ifc *Iface, pkt *ip.Packet, nextHop ip.Addr) error {
	if pkt.TTL == 0 {
		pkt.TTL = h.cfg.TTL
	}
	if pkt.ID == 0 {
		pkt.ID = h.NextID()
	}
	if pkt.Trace == 0 {
		pkt.Trace = h.loop.NextSerial()
	}
	ctx := &PacketContext{Host: h, Out: ifc, Pkt: pkt, NextHop: nextHop, Routed: true, stage: pipeline.Output}
	if h.chains[pipeline.Output].Run(ctx) != pipeline.Accept {
		//lint:allow dropaccounting verdict bookkeeping is centralized in the chain observer middleware
		return nil
	}
	h.stats.Sent++
	if h.pktlog != nil { // guard: the detail string is costly to format
		h.pktlog.Record(pkt.Trace, h.name, "ip.output", pkt.String()+" via "+ctx.Out.name)
	}
	out, nh := ctx.Out, ctx.NextHop
	h.loop.Schedule(h.cfg.OutputDelay, func() { h.postroute(out, pkt, nh) })
	return nil
}

// Input accepts a packet arriving on ifc. The accept/forward/drop decision
// is made at arrival time — the interrupt path checks the destination
// against the host's current addresses immediately — while the input
// processing delay is charged before the packet reaches protocol handlers
// or the forwarding engine. Decapsulating modules reuse Input to re-inject
// inner packets.
func (h *Host) Input(ifc *Iface, pkt *ip.Packet) {
	if pkt.Trace == 0 {
		pkt.Trace = h.loop.NextSerial()
	}
	h.stats.Received++
	ctx := &PacketContext{Host: h, In: ifc, Pkt: pkt, stage: pipeline.Prerouting}
	h.chains[pipeline.Prerouting].Run(ctx)
}

// deliver runs the INPUT chain: reassembly, any decapsulation hooks, then
// the terminal protocol demux.
func (h *Host) deliver(ifc *Iface, pkt *ip.Packet) {
	ctx := &PacketContext{Host: h, In: ifc, Pkt: pkt, stage: pipeline.Input}
	h.chains[pipeline.Input].Run(ctx)
}

// forward runs the FORWARD chain (TTL, route, filters, MTU, redirect);
// an accepted packet is cloned, decremented, and scheduled out.
func (h *Host) forward(in *Iface, pkt *ip.Packet) {
	ctx := &PacketContext{Host: h, In: in, Pkt: pkt, stage: pipeline.Forward}
	if h.chains[pipeline.Forward].Run(ctx) != pipeline.Accept {
		//lint:allow dropaccounting verdict bookkeeping is centralized in the chain observer middleware
		return
	}
	// The forwarded copy shares the payload: bodies are immutable once in
	// flight, and only the header (TTL) is rewritten here.
	fwd := ctx.Pkt.ShallowClone()
	fwd.TTL--
	h.stats.Forwarded++
	if h.pktlog != nil { // guard: the detail string is costly to format
		h.pktlog.Record(pkt.Trace, h.name, "ip.forward", "next hop "+ctx.NextHop.String()+" via "+ctx.Out.name)
	}
	out, nh := ctx.Out, ctx.NextHop
	h.loop.Schedule(h.cfg.ForwardDelay, func() { h.postroute(out, fwd, nh) })
}
