package stack

import (
	"time"

	"mosquitonet/internal/ip"
	"mosquitonet/internal/sim"
)

// PingResult reports the outcome of one echo exchange.
type PingResult struct {
	Seq      uint16
	From     ip.Addr
	RTT      time.Duration
	TimedOut bool
	// Unreachable is set when an ICMP error arrived instead of a reply,
	// with Code holding the unreachable code. A transit-filtered triangle
	// route surfaces here as CodeAdminProhibited.
	Unreachable bool
	Code        uint8
}

// ICMP is a host's ICMP endpoint. Echo requests addressed to the host are
// answered automatically — the paper's point that a mobile host must keep
// answering foreign-network management pings in its local role. Errors and
// echo replies are matched to outstanding Ping calls.
type ICMP struct {
	host    *Host
	idSeq   uint16
	pending map[uint32]*pingState // key: id<<16|seq

	// ErrorHook, if set, observes every ICMP error delivered to this host.
	// The mobile policy layer uses it to learn that a route choice (e.g.
	// the triangle route through a filtering router) is failing.
	ErrorHook func(m *ip.ICMP, from ip.Addr)

	// EchoStats counts echo requests answered.
	EchoRequests uint64

	// Sent and Received count all ICMP messages originated by and
	// delivered to this endpoint.
	Sent     uint64
	Received uint64
}

type pingState struct {
	cb    func(PingResult)
	sent  sim.Time
	timer sim.Timer
}

func newICMP(h *Host) *ICMP {
	return &ICMP{host: h, pending: make(map[uint32]*pingState)}
}

// input handles a locally delivered ICMP packet.
func (c *ICMP) input(ifc *Iface, pkt *ip.Packet) {
	m, err := ip.UnmarshalICMP(pkt.Payload)
	if err != nil {
		c.host.stats.DropBadPacket++
		return
	}
	c.Received++
	switch m.Type {
	case ip.ICMPEchoRequest:
		c.EchoRequests++
		reply := &ip.ICMP{Type: ip.ICMPEchoReply, ID: m.ID, Seq: m.Seq, Body: m.Body}
		// Reply from the address that was pinged, preserving the
		// requester's view; a bound source keeps this outside mobile IP
		// when the pinged address was a local (care-of) one.
		out := &ip.Packet{
			Header:  ip.Header{Protocol: ip.ProtoICMP, Src: pkt.Dst, Dst: pkt.Src},
			Payload: ip.MarshalICMP(reply),
		}
		if pkt.Dst.IsBroadcast() {
			out.Src = ip.Unspecified // let routing pick for broadcast pings
		}
		c.Sent++
		c.host.Output(out)
	case ip.ICMPEchoReply:
		key := uint32(m.ID)<<16 | uint32(m.Seq)
		if st, ok := c.pending[key]; ok {
			delete(c.pending, key)
			st.timer.Stop()
			st.cb(PingResult{Seq: m.Seq, From: pkt.Src, RTT: c.host.loop.Now().Sub(st.sent)})
		}
	case ip.ICMPDestUnreach, ip.ICMPTimeExceeded:
		if c.ErrorHook != nil {
			c.ErrorHook(m, pkt.Src)
		}
		c.matchError(m, pkt.Src)
	case ip.ICMPRedirect:
		c.host.stats.RedirectsRcvd++
		if c.host.installRedirects {
			if off, err := ip.Unmarshal(paddedHeader(m.Body)); err == nil {
				c.host.routes.Add(Route{
					Dst:     ip.Prefix{Addr: off.Dst, Bits: 32},
					Gateway: m.Gateway(),
					Iface:   ifc,
				})
			}
		}
		if c.ErrorHook != nil {
			c.ErrorHook(m, pkt.Src)
		}
	}
}

// matchError correlates an ICMP error with an outstanding ping by parsing
// the embedded offending header.
func (c *ICMP) matchError(m *ip.ICMP, from ip.Addr) {
	off, err := ip.Unmarshal(paddedHeader(m.Body))
	if err != nil || off.Protocol != ip.ProtoICMP {
		return
	}
	em, err := ip.UnmarshalICMPLoose(off.Payload)
	if err != nil || em.Type != ip.ICMPEchoRequest {
		return
	}
	key := uint32(em.ID)<<16 | uint32(em.Seq)
	if st, ok := c.pending[key]; ok {
		delete(c.pending, key)
		st.timer.Stop()
		st.cb(PingResult{Seq: em.Seq, From: from, Unreachable: true, Code: m.Code})
	}
}

// Ping sends an echo request to dst and invokes cb exactly once: with the
// reply, with an unreachable error, or with a timeout. bound, if not
// unspecified, is used as the source address (local-role pings). A nil cb
// is allowed (fire-and-forget).
func (c *ICMP) Ping(dst, bound ip.Addr, size int, timeout time.Duration, cb func(PingResult)) {
	if cb == nil {
		cb = func(PingResult) {}
	}
	c.idSeq++
	id := c.idSeq
	seq := uint16(1)
	key := uint32(id)<<16 | uint32(seq)
	st := &pingState{cb: cb, sent: c.host.loop.Now()}
	st.timer = c.host.loop.Schedule(timeout, func() {
		if cur, ok := c.pending[key]; ok && cur == st {
			delete(c.pending, key)
			cb(PingResult{Seq: seq, TimedOut: true})
		}
	})
	c.pending[key] = st
	m := &ip.ICMP{Type: ip.ICMPEchoRequest, ID: id, Seq: seq, Body: make([]byte, size)}
	pkt := &ip.Packet{
		Header:  ip.Header{Protocol: ip.ProtoICMP, Src: bound, Dst: dst},
		Payload: ip.MarshalICMP(m),
	}
	c.Sent++
	if err := c.host.Output(pkt); err != nil {
		if cur, ok := c.pending[key]; ok && cur == st {
			delete(c.pending, key)
			st.timer.Stop()
			cb(PingResult{Seq: seq, TimedOut: true})
		}
	}
}

// sendError sends an ICMP error about pkt back to its source, observing
// the usual suppressions (never about ICMP errors, broadcasts, or
// unspecified sources).
func (c *ICMP) sendError(typ ip.ICMPType, code uint8, offender *ip.Packet) {
	if offender.Src.IsUnspecified() || offender.Src.IsBroadcast() || offender.Dst.IsBroadcast() {
		//lint:allow dropaccounting RFC 792 suppression: only the error message is elided, the offender was accounted by the caller
		return
	}
	if offender.Protocol == ip.ProtoICMP {
		if m, err := ip.UnmarshalICMPLoose(offender.Payload); err == nil {
			if m.Type != ip.ICMPEchoRequest && m.Type != ip.ICMPEchoReply {
				//lint:allow dropaccounting never generate errors about ICMP errors; the offender was accounted by the caller
				return
			}
		}
	}
	msg := &ip.ICMP{Type: typ, Code: code, Body: ip.ICMPErrorBody(offender)}
	c.Sent++
	c.host.Output(&ip.Packet{
		Header:  ip.Header{Protocol: ip.ProtoICMP, Dst: offender.Src},
		Payload: ip.MarshalICMP(msg),
	})
}

// sendRedirect tells pkt's source there is a better first hop for Dst.
func (c *ICMP) sendRedirect(pkt *ip.Packet, gateway ip.Addr) {
	c.host.stats.RedirectsSent++
	msg := &ip.ICMP{Type: ip.ICMPRedirect, Code: 1 /* host redirect */, Body: ip.ICMPErrorBody(pkt)}
	msg.SetGateway(gateway)
	c.Sent++
	c.host.Output(&ip.Packet{
		Header:  ip.Header{Protocol: ip.ProtoICMP, Dst: pkt.Src},
		Payload: ip.MarshalICMP(msg),
	})
}

// paddedHeader fixes up a truncated ICMP error body (header + 8 bytes) so
// ip.Unmarshal's total-length check passes: the embedded header's declared
// total length usually exceeds the quoted bytes. The quoted payload bytes
// are preserved; the length field is clamped.
func paddedHeader(b []byte) []byte {
	if len(b) < ip.HeaderLen {
		return b
	}
	fixed := append([]byte(nil), b...)
	fixed[2] = byte(len(fixed) >> 8)
	fixed[3] = byte(len(fixed))
	// Recompute the header checksum for the clamped length.
	fixed[10], fixed[11] = 0, 0
	ck := ip.Checksum(fixed[:ip.HeaderLen])
	fixed[10] = byte(ck >> 8)
	fixed[11] = byte(ck)
	return fixed
}
