package stack

import (
	"fmt"

	"mosquitonet/internal/arp"
	"mosquitonet/internal/bufpool"
	"mosquitonet/internal/ip"
	"mosquitonet/internal/link"
)

// TransmitFunc is the send half of a virtual interface: it receives the
// fully formed packet and the chosen next hop. The tunnel package's VIF is
// the canonical implementation — it encapsulates the packet and feeds the
// result back into the host's output path.
type TransmitFunc func(pkt *ip.Packet, nextHop ip.Addr)

// Iface is a host's network interface: either backed by a link device (with
// an ARP resolver on broadcast media) or virtual (loopback, VIF).
type Iface struct {
	host *Host
	name string

	addr   ip.Addr
	prefix ip.Prefix

	dev      *link.Device
	arp      *arp.Cache
	transmit TransmitFunc // virtual interfaces only

	// pointToPoint marks device-backed interfaces on media without ARP
	// (e.g. the radio's Starmode, where the STRIP driver maps addresses
	// algorithmically). Frames are sent to the link broadcast address and
	// filtered by IP on receive.
	pointToPoint bool
}

// Name returns the interface name, e.g. "eth0", "strip0", "vif0", "lo".
func (i *Iface) Name() string { return i.name }

// Addr returns the interface's IP address (zero if unconfigured).
func (i *Iface) Addr() ip.Addr { return i.addr }

// Prefix returns the connected subnet.
func (i *Iface) Prefix() ip.Prefix { return i.prefix }

// Device returns the backing link device, or nil for virtual interfaces.
func (i *Iface) Device() *link.Device { return i.dev }

// ARP returns the interface's ARP cache, or nil.
func (i *Iface) ARP() *arp.Cache { return i.arp }

// Host returns the owning host.
func (i *Iface) Host() *Host { return i.host }

// Up reports whether the interface can pass traffic.
func (i *Iface) Up() bool {
	if i.dev != nil {
		return i.dev.IsUp()
	}
	return true // virtual interfaces are always up
}

// IsVirtual reports whether the interface has no backing device.
func (i *Iface) IsVirtual() bool { return i.dev == nil }

func (i *Iface) String() string {
	return fmt.Sprintf("%s %v/%d", i.name, i.addr, i.prefix.Bits)
}

// SetAddr reconfigures the interface's address and subnet. This is the
// "configuring the interface" step of the paper's registration time-line;
// the caller (the mobile host) charges the configuration latency.
func (i *Iface) SetAddr(addr ip.Addr, prefix ip.Prefix) {
	i.addr = addr
	i.prefix = prefix.Normalize()
	i.host.InvalidateRoutes()
}

// MTU returns the largest packet the interface carries, or 0 (unlimited)
// for virtual interfaces.
func (i *Iface) MTU() int {
	if i.dev == nil || i.dev.Network() == nil {
		return 0
	}
	return i.dev.Network().Medium().MTU
}

// send emits pkt toward nextHop on this interface, fragmenting when the
// packet exceeds the medium MTU. DF-marked oversized packets are dropped
// here; path-MTU signaling happens in the forwarding engine, which has
// the context to send the ICMP error.
func (i *Iface) send(pkt *ip.Packet, nextHop ip.Addr) error {
	if i.transmit != nil {
		i.transmit(pkt, nextHop)
		return nil
	}
	if mtu := i.MTU(); mtu > 0 && pkt.Len() > mtu {
		frags, err := ip.Fragment(pkt, mtu)
		if err != nil {
			i.host.stats.DropMTU++
			return err
		}
		i.host.stats.FragmentsSent += uint64(len(frags))
		for _, f := range frags {
			f.Trace = pkt.Trace
			if err := i.sendOne(f, nextHop); err != nil {
				return err
			}
		}
		return nil
	}
	return i.sendOne(pkt, nextHop)
}

func (i *Iface) sendOne(pkt *ip.Packet, nextHop ip.Addr) error {
	// Marshal into a pooled scratch buffer; ownership moves down the send
	// path (SendIP/broadcastRaw recycle it once the link layer has taken
	// its own copy or the packet is dropped).
	buf := bufpool.Get(pkt.Len())
	raw, err := pkt.MarshalInto(buf)
	if err != nil {
		bufpool.Put(buf)
		return err
	}
	broadcast := pkt.Dst.IsBroadcast() || pkt.Dst.IsMulticast() ||
		(i.prefix.Bits > 0 && pkt.Dst == i.prefix.BroadcastAddr())
	if broadcast || i.pointToPoint || i.arp == nil {
		i.broadcastRaw(raw, pkt.Trace)
		return nil
	}
	i.arp.SendIP(nextHop, raw, pkt.Trace)
	return nil
}

// broadcastRaw sends an IPv4 payload to the link broadcast address, used
// both for genuine broadcasts and for ARP-less (point-to-point/Starmode)
// media where IP filtering happens at the receiver. It takes ownership of
// raw and recycles it after the synchronous send.
//
//mnet:ownership takes raw
func (i *Iface) broadcastRaw(raw []byte, trace uint64) {
	if i.arp != nil {
		i.arp.SendBroadcastIP(raw, trace)
		return
	}
	i.dev.Send(&link.Frame{Dst: link.BroadcastHW, Type: link.EtherTypeIPv4, Payload: raw, Trace: trace})
	bufpool.Put(raw)
}
