package stack

import "mosquitonet/internal/pipeline"

// Span kinds recorded by the datapath. All kinds are lowercase dotted
// constants (enforced tree-wide by the tracekinds analyzer).
//
// Drop spans are instants: every accounted Drop verdict records one, so
// the flight recorder can trigger on bursts (a roam-induced "drop.noroute"
// storm) without the stack knowing who is watching. Chain-traversal spans
// ("pipeline.*") are opt-in via EnableChainSpans — one instant per chain
// run is too hot for the default path at scale.
const (
	kSpanDropNoRoute   = "drop.noroute"
	kSpanDropNotLocal  = "drop.notlocal"
	kSpanDropTTL       = "drop.ttl"
	kSpanDropMTU       = "drop.mtu"
	kSpanDropNoHandler = "drop.nohandler"
	kSpanDropFilter    = "drop.filter"

	kSpanChainPrerouting  = "pipeline.prerouting"
	kSpanChainInput       = "pipeline.input"
	kSpanChainForward     = "pipeline.forward"
	kSpanChainOutput      = "pipeline.output"
	kSpanChainPostrouting = "pipeline.postrouting"
)

// dropSpanKind maps the staged drop counter back to its span kind by
// pointer identity — the same dispatch observeVerdict already performs
// for accounting, so the two can never disagree.
func (h *Host) dropSpanKind(ctr *uint64) string {
	switch ctr {
	case &h.stats.DropNoRoute:
		return kSpanDropNoRoute
	case &h.stats.DropNotLocal:
		return kSpanDropNotLocal
	case &h.stats.DropTTL:
		return kSpanDropTTL
	case &h.stats.DropMTU:
		return kSpanDropMTU
	case &h.stats.DropNoHandler:
		return kSpanDropNoHandler
	default:
		return kSpanDropFilter
	}
}

// chainSpanKind maps a pipeline stage to its traversal-span kind.
func chainSpanKind(s pipeline.Stage) string {
	switch s {
	case pipeline.Prerouting:
		return kSpanChainPrerouting
	case pipeline.Input:
		return kSpanChainInput
	case pipeline.Forward:
		return kSpanChainForward
	case pipeline.Output:
		return kSpanChainOutput
	default:
		return kSpanChainPostrouting
	}
}
