package stack

import (
	"fmt"

	"mosquitonet/internal/ip"
	"mosquitonet/internal/pipeline"
)

// Built-in hook priorities. The datapath's own steps register at these
// values; external hooks slot in anywhere between PriFirst and PriLast,
// and the (priority, name) sort keeps traversal deterministic no matter
// when or where a hook was registered.
const (
	// PriFirst runs before every built-in step of a chain.
	PriFirst = -1000
	// PriLast is the terminal built-ins' priority: PREROUTING "classify",
	// INPUT "demux", OUTPUT "unreachable". Hooks meaning to intercept must
	// register below it.
	PriLast = 1000

	PriReassemble      = -300 // INPUT: fragment reassembly
	PriForwardTTL      = -300 // FORWARD: TTL check
	PriForwardRoute    = -200 // FORWARD: route-table lookup
	PriDecap           = -100 // INPUT: decapsulation hooks (the tunnel VIF)
	PriRouteOverride   = -100 // route chain: the paper's ip_rt_route override
	PriForwardFilter   = 0    // FORWARD: AddFilter adapters
	PriForwardMTU      = 100  // FORWARD: path-MTU check
	PriForwardRedirect = 200  // FORWARD: same-subnet redirect notification
)

// PacketContext is what every PREROUTING, INPUT, FORWARD, OUTPUT and
// POSTROUTING hook sees: the host, the packet, and the routing state
// accumulated so far. Hooks may rewrite Out/NextHop (steering) or Pkt
// (reassembly swaps in the full datagram); drop bookkeeping is staged on
// the context and performed once by the chain's observer middleware.
type PacketContext struct {
	Host *Host
	In   *Iface // arrival interface; nil for locally originated packets
	Out  *Iface // chosen egress, once routed
	Pkt  *ip.Packet

	// NextHop and Route are valid once Routed is set: after the FORWARD
	// chain's "route" hook, and on OUTPUT/POSTROUTING contexts.
	NextHop ip.Addr
	Route   Route
	Routed  bool

	// RouteErr is set on OUTPUT contexts whose route lookup failed; the
	// terminal "unreachable" hook turns it into an accounted drop.
	RouteErr error

	stage pipeline.Stage

	// Drop bookkeeping staged by drop/dropICMP, consumed by the observer.
	dropReason  string
	dropCounter *uint64
	icmpSend    bool
	icmpType    ip.ICMPType
	icmpCode    uint8
}

// Stage returns the chain stage this context is traversing.
func (c *PacketContext) Stage() pipeline.Stage { return c.stage }

// Logging reports whether packet-lifecycle logging is enabled. Hooks use
// it to skip building costly drop-reason strings on the hot path.
func (c *PacketContext) Logging() bool { return c.Host.pktlog != nil }

// drop stages the bookkeeping for a Drop verdict: the ip.drop reason and
// the stats counter the observer middleware will bump.
func (c *PacketContext) drop(reason string, counter *uint64) pipeline.Verdict {
	c.dropReason, c.dropCounter = reason, counter
	return pipeline.Drop
}

// dropICMP is drop plus an ICMP error (with the usual RFC 792
// suppressions) sent back to the packet's source.
func (c *PacketContext) dropICMP(reason string, counter *uint64, typ ip.ICMPType, code uint8) pipeline.Verdict {
	c.icmpSend, c.icmpType, c.icmpCode = true, typ, code
	return c.drop(reason, counter)
}

// Drop discards the packet with the given trace reason, accounted under
// the host's DropFilter counter — the verdict external policy hooks use.
func (c *PacketContext) Drop(reason string) pipeline.Verdict {
	return c.drop(reason, &c.Host.stats.DropFilter)
}

// Reject is Drop plus an ICMP administratively-prohibited error to the
// source, how a polite policy hook declines transit traffic.
func (c *PacketContext) Reject(reason string) pipeline.Verdict {
	return c.dropICMP(reason, &c.Host.stats.DropFilter, ip.ICMPDestUnreach, ip.CodeAdminProhibited)
}

// MarkDelivered accounts a local delivery performed by a hook that is
// about to return Stolen (a decapsulator consuming the outer packet):
// Delivered is counted and the ip.deliver event recorded, exactly as the
// demux built-in would have done.
func (c *PacketContext) MarkDelivered(detail string) {
	c.Host.stats.Delivered++
	c.Host.pktlog.Record(c.Pkt.Trace, c.Host.name, "ip.deliver", detail)
}

// RouteQuery is the context route-resolver hooks see: the paper's
// ip_rt_route() arguments plus a slot for the answer. A hook that resolves
// (or definitively fails) the query sets Decision/Err and returns Stolen;
// Accept passes the query down-chain, and an empty or all-Accept chain
// falls back to the host's DefaultRouteLookup. Drop means "no route".
type RouteQuery struct {
	Host     *Host
	Dst, Src ip.Addr
	Decision RouteDecision
	Err      error
}

// Hooks returns the host's chain at the given stage, for registering
// packet hooks. Chains belong to one host; registration bumps the chain
// generation and flushes the host's route-decision caches.
func (h *Host) Hooks(stage pipeline.Stage) *pipeline.Chain[*PacketContext] {
	return h.chains[stage]
}

// RouteHooks returns the route-resolution chain — the pluggable form of
// the paper's single kernel modification. SetRouteLookup registers here;
// mobility code can register alongside under its own name and priority.
func (h *Host) RouteHooks() *pipeline.Chain[*RouteQuery] { return h.routeHooks }

// initPipeline wires the five stage chains, the route-resolution chain,
// the uniform accounting observer, and the built-in datapath hooks.
func (h *Host) initPipeline() {
	for s := pipeline.Stage(0); s < pipeline.NumStages; s++ {
		c := pipeline.NewChain[*PacketContext](s)
		c.SetObserver(h.observeVerdict)
		// Conservative invalidation: any hook change might alter where a
		// packet goes, and a stale cached decision must never shadow a
		// newly registered hook. Bumping a generation is nearly free.
		c.SetOnChange(h.InvalidateRoutes)
		h.chains[s] = c
	}
	h.routeHooks = pipeline.NewChain[*RouteQuery](pipeline.Output)
	h.routeHooks.SetOnChange(h.InvalidateRoutes)

	reg := func(s pipeline.Stage, name string, pri int, fn func(*PacketContext) pipeline.Verdict) {
		h.chains[s].Register(pipeline.Hook[*PacketContext]{Name: name, Priority: pri, Fn: fn})
	}
	reg(pipeline.Prerouting, "classify", PriLast, h.hookClassify)
	reg(pipeline.Input, "reassemble", PriReassemble, h.hookReassemble)
	reg(pipeline.Input, "demux", PriLast, h.hookDemux)
	reg(pipeline.Forward, "ttl", PriForwardTTL, h.hookForwardTTL)
	reg(pipeline.Forward, "route", PriForwardRoute, h.hookForwardRoute)
	reg(pipeline.Forward, "mtu", PriForwardMTU, h.hookForwardMTU)
	reg(pipeline.Forward, "redirect", PriForwardRedirect, h.hookForwardRedirect)
	reg(pipeline.Output, "unreachable", PriLast, h.hookOutputUnreachable)
}

// observeVerdict is the uniform tracing/metrics/drop-accounting middleware
// installed on every chain: a Drop verdict bumps the staged counter,
// records the ip.drop event, and sends the staged ICMP error — once, no
// matter which hook decided.
func (h *Host) observeVerdict(ctx *PacketContext, v pipeline.Verdict) {
	if h.chainSpans {
		if t := h.spanTracer(); t != nil {
			// Explicit root: chain runs interleave across packets, so
			// ambient parenting would nest unrelated traversals.
			sp := t.StartChild(nil, h.name, chainSpanKind(ctx.stage))
			sp.SetAttr("verdict", v.String())
			sp.Done()
		}
	}
	if v != pipeline.Drop {
		return
	}
	ctr := ctx.dropCounter
	if ctr == nil {
		ctr = &h.stats.DropFilter
	}
	*ctr++
	h.pktlog.Record(ctx.Pkt.Trace, h.name, "ip.drop", ctx.dropReason)
	if t := h.spanTracer(); t != nil {
		sp := t.StartChild(nil, h.name, h.dropSpanKind(ctr))
		if ctx.dropReason != "" {
			sp.SetAttr("reason", ctx.dropReason)
		}
		sp.Done()
	}
	if ctx.icmpSend {
		h.icmp.sendError(ctx.icmpType, ctx.icmpCode, ctx.Pkt)
	}
}

// hookClassify is PREROUTING's terminal hook: the arrival-time local/
// forward/drop decision. Accepted packets are scheduled past the input
// processing delay into the INPUT or FORWARD chain.
func (h *Host) hookClassify(ctx *PacketContext) pipeline.Verdict {
	ifc, pkt := ctx.In, ctx.Pkt
	switch {
	case h.IsLocalAddr(pkt.Dst):
		h.loop.Schedule(h.cfg.InputDelay, func() { h.deliver(ifc, pkt) })
	case h.forwarding && !pkt.Dst.IsMulticast():
		// Multicast is link-scoped here: unicast routers do not forward
		// group traffic.
		h.loop.Schedule(h.cfg.InputDelay, func() { h.forward(ifc, pkt) })
	default:
		reason := ""
		if ctx.Logging() { // guard: the detail string is costly to format
			reason = "not local: dst=" + pkt.Dst.String()
		}
		return ctx.drop(reason, &h.stats.DropNotLocal)
	}
	return pipeline.Stolen
}

// hookReassemble swaps a completing fragment for its reassembled datagram
// and parks incomplete ones; routers forward fragments untouched, so this
// lives only on the local-delivery (INPUT) chain.
func (h *Host) hookReassemble(ctx *PacketContext) pipeline.Verdict {
	if !ctx.Pkt.IsFragment() {
		return pipeline.Accept
	}
	full, done := h.reasm.Add(ctx.Pkt)
	if !done {
		h.armSweep()
		// Parked in the reassembly buffer, not dropped; sweep expiry is
		// accounted there.
		return pipeline.Stolen
	}
	ctx.Pkt = full
	return pipeline.Accept
}

// hookDemux is INPUT's terminal hook: hand the packet to its protocol
// handler, with ICMP built in as the fallback for its protocol number.
func (h *Host) hookDemux(ctx *PacketContext) pipeline.Verdict {
	ifc, pkt := ctx.In, ctx.Pkt
	handler, ok := h.handlers[pkt.Protocol]
	if !ok {
		if pkt.Protocol == ip.ProtoICMP {
			h.icmp.input(ifc, pkt)
			h.stats.Delivered++
			h.pktlog.Record(pkt.Trace, h.name, "ip.deliver", "icmp")
			return pipeline.Stolen
		}
		reason := ""
		if ctx.Logging() { // guard: the detail string is costly to format
			reason = "no handler for " + pkt.Protocol.String()
		}
		return ctx.drop(reason, &h.stats.DropNoHandler)
	}
	h.stats.Delivered++
	if h.pktlog != nil {
		h.pktlog.Record(pkt.Trace, h.name, "ip.deliver", pkt.Protocol.String())
	}
	handler(ifc, pkt)
	return pipeline.Stolen
}

// hookForwardTTL bounces expiring packets with the traceroute-visible
// ICMP time-exceeded error.
func (h *Host) hookForwardTTL(ctx *PacketContext) pipeline.Verdict {
	if ctx.Pkt.TTL <= 1 {
		return ctx.dropICMP("ttl expired", &h.stats.DropTTL, ip.ICMPTimeExceeded, 0)
	}
	return pipeline.Accept
}

// hookForwardRoute resolves the transit route through the forwarding
// cache, filling Out/NextHop/Route. A hook registered earlier may have
// steered the packet already (Routed set), in which case the table is
// left unconsulted.
func (h *Host) hookForwardRoute(ctx *PacketContext) pipeline.Verdict {
	if ctx.Routed {
		return pipeline.Accept
	}
	r, ok := h.lookupForward(ctx.Pkt.Dst)
	if !ok {
		reason := ""
		if ctx.Logging() { // guard: the detail string is costly to format
			reason = "no route to " + ctx.Pkt.Dst.String()
		}
		return ctx.dropICMP(reason, &h.stats.DropNoRoute, ip.ICMPDestUnreach, ip.CodeNetUnreach)
	}
	nh := r.Gateway
	if nh.IsUnspecified() {
		nh = ctx.Pkt.Dst
	}
	ctx.Route, ctx.Out, ctx.NextHop, ctx.Routed = r, r.Iface, nh, true
	return pipeline.Accept
}

// hookForwardMTU bounces DF packets too big for the chosen egress with
// the ICMP error path-MTU discovery depends on.
func (h *Host) hookForwardMTU(ctx *PacketContext) pipeline.Verdict {
	if mtu := ctx.Out.MTU(); mtu > 0 && ctx.Pkt.Len() > mtu && ctx.Pkt.DontFrag {
		return ctx.dropICMP("df packet exceeds mtu", &h.stats.DropMTU, ip.ICMPDestUnreach, ip.CodeFragNeeded)
	}
	return pipeline.Accept
}

// hookForwardRedirect tells an on-subnet sender about a better first hop
// when the packet leaves the way it came in, still forwarding the packet
// (RFC 792 behaviour).
func (h *Host) hookForwardRedirect(ctx *PacketContext) pipeline.Verdict {
	if ctx.Out == ctx.In && ctx.In.prefix.Contains(ctx.Pkt.Src) && !ctx.In.pointToPoint {
		h.icmp.sendRedirect(ctx.Pkt, ctx.NextHop)
	}
	return pipeline.Accept
}

// hookOutputUnreachable is OUTPUT's terminal hook: a locally originated
// packet whose route lookup failed is dropped with accounting and an ICMP
// Destination Unreachable back to the (bound) source, rather than
// vanishing silently.
func (h *Host) hookOutputUnreachable(ctx *PacketContext) pipeline.Verdict {
	if ctx.RouteErr == nil {
		return pipeline.Accept
	}
	reason := ""
	if ctx.Logging() { // guard: the detail string is costly to format
		reason = "no route to " + ctx.Pkt.Dst.String()
	}
	return ctx.dropICMP(reason, &h.stats.DropNoRoute, ip.ICMPDestUnreach, ip.CodeNetUnreach)
}

// resolveRoute answers one route query through the route-resolution
// chain, falling back to the stock longest-prefix match when no hook
// takes the query.
func (h *Host) resolveRoute(dst, boundSrc ip.Addr) (RouteDecision, error) {
	q := &RouteQuery{Host: h, Dst: dst, Src: boundSrc}
	switch h.routeHooks.Run(q) {
	case pipeline.Stolen:
		return q.Decision, q.Err
	case pipeline.Drop:
		if q.Err == nil {
			q.Err = fmt.Errorf("%w: %v", ErrNoRoute, dst)
		}
		return RouteDecision{}, q.Err
	}
	return h.DefaultRouteLookup(dst, boundSrc)
}

// postroute runs the POSTROUTING chain and hands the packet to the chosen
// interface. Every packet leaving the host — locally originated or
// forwarded — funnels through here; encapsulating hooks steal their VIF's
// packets at this stage.
func (h *Host) postroute(ifc *Iface, pkt *ip.Packet, nextHop ip.Addr) {
	ctx := &PacketContext{Host: h, Out: ifc, Pkt: pkt, NextHop: nextHop, Routed: true, stage: pipeline.Postrouting}
	if h.chains[pipeline.Postrouting].Run(ctx) != pipeline.Accept {
		//lint:allow dropaccounting verdict bookkeeping is centralized in the chain observer middleware
		return
	}
	ctx.Out.send(ctx.Pkt, ctx.NextHop)
}
