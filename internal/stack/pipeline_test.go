package stack

import (
	"testing"
	"time"

	"mosquitonet/internal/ip"
	"mosquitonet/internal/link"
	"mosquitonet/internal/pipeline"
	"mosquitonet/internal/sim"
)

// TestBuiltinChainLayout pins the built-in hook layout: the datapath's own
// steps are ordinary named hooks, visible to introspection, in the classic
// order.
func TestBuiltinChainLayout(t *testing.T) {
	loop := sim.New(1)
	h := NewHost(loop, "h", Config{})
	cases := []struct {
		stage pipeline.Stage
		want  []string
	}{
		{pipeline.Prerouting, []string{"classify"}},
		{pipeline.Input, []string{"reassemble", "demux"}},
		{pipeline.Forward, []string{"ttl", "route", "mtu", "redirect"}},
		{pipeline.Output, []string{"unreachable"}},
		{pipeline.Postrouting, nil},
	}
	for _, c := range cases {
		got := h.Hooks(c.stage).Names()
		if len(got) != len(c.want) {
			t.Fatalf("%v chain: %v, want %v", c.stage, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("%v chain: %v, want %v", c.stage, got, c.want)
			}
		}
	}
	// AddFilter adapters slot between route and mtu, in insertion order.
	h.AddFilter(func(in, out *Iface, pkt *ip.Packet) Verdict { return Accept })
	h.AddFilter(func(in, out *Iface, pkt *ip.Packet) Verdict { return Accept })
	got := h.Hooks(pipeline.Forward).Names()
	want := []string{"ttl", "route", "filter#000", "filter#001", "mtu", "redirect"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FORWARD after AddFilter: %v, want %v", got, want)
		}
	}
	// SetRouteLookup is the single-slot "override" hook; nil removes it.
	h.SetRouteLookup(func(d, s ip.Addr) (RouteDecision, error) { return RouteDecision{}, nil })
	if n := h.RouteHooks().Names(); len(n) != 1 || n[0] != "override" {
		t.Fatalf("route chain: %v", n)
	}
	h.SetRouteLookup(nil)
	if n := h.RouteHooks().Names(); len(n) != 0 {
		t.Fatalf("route chain after SetRouteLookup(nil): %v", n)
	}
}

// TestPreroutingVerdicts exercises ACCEPT/DROP/STOLEN semantics on the
// PREROUTING chain: Drop is accounted by the observer middleware under
// the hook's chosen reason, Stolen is the hook's own responsibility, and
// deregistration restores plain delivery.
func TestPreroutingVerdicts(t *testing.T) {
	loop := sim.New(1)
	net := link.NewNetwork(loop, "n", link.Ethernet())
	a := addNode(t, loop, net, "a", "10.0.0.1/24")
	got := collect(a.host)

	stolen := 0
	a.host.Hooks(pipeline.Prerouting).Register(pipeline.Hook[*PacketContext]{
		Name: "firewall", Priority: 0,
		Fn: func(ctx *PacketContext) pipeline.Verdict {
			switch string(ctx.Pkt.Payload) {
			case "bad":
				return ctx.Drop("blocked by firewall")
			case "mine":
				stolen++
				return pipeline.Stolen
			}
			return pipeline.Accept
		},
	})

	a.host.Input(a.ifc, udpPacket("10.0.0.9", "10.0.0.1", "ok"))
	a.host.Input(a.ifc, udpPacket("10.0.0.9", "10.0.0.1", "bad"))
	a.host.Input(a.ifc, udpPacket("10.0.0.9", "10.0.0.1", "mine"))
	loop.RunFor(time.Second)

	if len(*got) != 1 || string((*got)[0].Payload) != "ok" {
		t.Fatalf("delivered %d packets", len(*got))
	}
	st := a.host.Stats()
	if st.DropFilter != 1 {
		t.Fatalf("DropFilter = %d, want 1", st.DropFilter)
	}
	if stolen != 1 {
		t.Fatalf("stolen = %d", stolen)
	}
	if st.Received != 3 {
		t.Fatalf("Received = %d, want 3 (verdicts happen after accounting arrival)", st.Received)
	}

	if !a.host.Hooks(pipeline.Prerouting).Deregister("firewall") {
		t.Fatal("Deregister(firewall) = false")
	}
	a.host.Input(a.ifc, udpPacket("10.0.0.9", "10.0.0.1", "bad"))
	loop.RunFor(time.Second)
	if len(*got) != 2 {
		t.Fatal("packet still filtered after deregistration")
	}
}

// TestInputHookStealsBeforeDemux mirrors the tunnel's decapsulation
// splice: an INPUT hook at PriDecap consumes its protocol's packets ahead
// of the demux, accounting the delivery itself via MarkDelivered.
func TestInputHookStealsBeforeDemux(t *testing.T) {
	loop := sim.New(1)
	net := link.NewNetwork(loop, "n", link.Ethernet())
	a := addNode(t, loop, net, "a", "10.0.0.1/24")
	got := collect(a.host)

	grabbed := 0
	a.host.Hooks(pipeline.Input).Register(pipeline.Hook[*PacketContext]{
		Name: "grab-udp", Priority: PriDecap,
		Fn: func(ctx *PacketContext) pipeline.Verdict {
			if ctx.Pkt.Protocol != ip.ProtoUDP {
				return pipeline.Accept
			}
			ctx.MarkDelivered("grab-udp")
			grabbed++
			return pipeline.Stolen
		},
	})
	a.host.Input(a.ifc, udpPacket("10.0.0.9", "10.0.0.1", "x"))
	loop.RunFor(time.Second)

	if len(*got) != 0 {
		t.Fatal("demux still ran the UDP handler")
	}
	if grabbed != 1 {
		t.Fatalf("grabbed = %d", grabbed)
	}
	if d := a.host.Stats().Delivered; d != 1 {
		t.Fatalf("Delivered = %d, want 1 (MarkDelivered accounts the steal)", d)
	}
}

// TestForwardSteeringHook registers a FORWARD hook ahead of the route
// built-in that steers transit packets into a virtual interface — the
// home-agent interception pattern — for a destination the routing table
// cannot resolve at all.
func TestForwardSteeringHook(t *testing.T) {
	loop := sim.New(1)
	net := link.NewNetwork(loop, "n", link.Ethernet())
	a := addNode(t, loop, net, "a", "10.0.0.1/24")
	r := addNode(t, loop, net, "r", "10.0.0.254/24")
	r.host.SetForwarding(true)
	a.host.AddDefaultRoute(ip.MustParseAddr("10.0.0.254"), a.ifc)

	var steered []*ip.Packet
	vif := r.host.AddVirtualIface("cap0", func(pkt *ip.Packet, _ ip.Addr) { steered = append(steered, pkt) })
	r.host.Hooks(pipeline.Forward).Register(pipeline.Hook[*PacketContext]{
		Name: "steer", Priority: PriForwardTTL + 50, // after ttl, before route
		Fn: func(ctx *PacketContext) pipeline.Verdict {
			ctx.Out, ctx.NextHop, ctx.Routed = vif, ctx.Pkt.Dst, true
			return pipeline.Accept
		},
	})

	if err := a.host.Output(udpPacket("10.0.0.1", "77.7.7.7", "steer me")); err != nil {
		t.Fatal(err)
	}
	loop.RunFor(time.Second)

	if len(steered) != 1 {
		t.Fatalf("steered %d packets", len(steered))
	}
	if ttl := steered[0].TTL; ttl != ip.DefaultTTL-1 {
		t.Fatalf("TTL = %d, want %d", ttl, ip.DefaultTTL-1)
	}
	st := r.host.Stats()
	if st.Forwarded != 1 || st.DropNoRoute != 0 {
		t.Fatalf("Forwarded = %d, DropNoRoute = %d", st.Forwarded, st.DropNoRoute)
	}
}

// TestOutputAndPostroutingStolen checks the egress stages' STOLEN
// semantics: an OUTPUT steal happens before Sent accounting, a
// POSTROUTING steal after it but before the wire.
func TestOutputAndPostroutingStolen(t *testing.T) {
	loop := sim.New(1)
	net := link.NewNetwork(loop, "n", link.Ethernet())
	a := addNode(t, loop, net, "a", "10.0.0.1/24")
	b := addNode(t, loop, net, "b", "10.0.0.2/24")
	got := collect(b.host)

	a.host.Hooks(pipeline.Output).Register(pipeline.Hook[*PacketContext]{
		Name: "divert", Priority: 0,
		Fn: func(ctx *PacketContext) pipeline.Verdict { return pipeline.Stolen },
	})
	a.host.Output(udpPacket("10.0.0.1", "10.0.0.2", "one"))
	loop.RunFor(time.Second)
	if s := a.host.Stats().Sent; s != 0 {
		t.Fatalf("Sent = %d after OUTPUT steal, want 0", s)
	}
	a.host.Hooks(pipeline.Output).Deregister("divert")

	a.host.Hooks(pipeline.Postrouting).Register(pipeline.Hook[*PacketContext]{
		Name: "blackhole", Priority: 0,
		Fn: func(ctx *PacketContext) pipeline.Verdict { return pipeline.Stolen },
	})
	a.host.Output(udpPacket("10.0.0.1", "10.0.0.2", "two"))
	loop.RunFor(time.Second)
	if s := a.host.Stats().Sent; s != 1 {
		t.Fatalf("Sent = %d after POSTROUTING steal, want 1", s)
	}
	if len(*got) != 0 {
		t.Fatal("stolen packet reached the wire")
	}

	a.host.Hooks(pipeline.Postrouting).Deregister("blackhole")
	a.host.Output(udpPacket("10.0.0.1", "10.0.0.2", "three"))
	loop.RunFor(time.Second)
	if len(*got) != 1 || string((*got)[0].Payload) != "three" {
		t.Fatalf("delivered %d packets after deregistration", len(*got))
	}
}

// TestOutputNoRouteEmitsUnreachable is the satellite behavior change: a
// locally originated packet whose route lookup fails is dropped with
// DropNoRoute accounting AND an ICMP Destination Unreachable back to its
// bound source, instead of vanishing silently. Unspecified sources keep
// the RFC 792 suppression.
func TestOutputNoRouteEmitsUnreachable(t *testing.T) {
	loop := sim.New(1)
	net := link.NewNetwork(loop, "n", link.Ethernet())
	a := addNode(t, loop, net, "a", "10.0.0.1/24")

	var errs []*ip.ICMP
	a.host.ICMP().ErrorHook = func(m *ip.ICMP, from ip.Addr) { errs = append(errs, m) }

	if err := a.host.Output(udpPacket("10.0.0.1", "99.1.1.1", "x")); err == nil {
		t.Fatal("Output succeeded with no route")
	}
	loop.RunFor(time.Second)
	if n := a.host.Stats().DropNoRoute; n != 1 {
		t.Fatalf("DropNoRoute = %d, want 1", n)
	}
	if len(errs) != 1 || errs[0].Type != ip.ICMPDestUnreach || errs[0].Code != ip.CodeNetUnreach {
		t.Fatalf("errors seen: %+v, want one net-unreachable", errs)
	}

	// Unspecified source: the drop is accounted but the error suppressed.
	if err := a.host.Output(&ip.Packet{Header: ip.Header{Protocol: ip.ProtoUDP, Dst: ip.MustParseAddr("99.2.2.2")}}); err == nil {
		t.Fatal("Output succeeded with no route")
	}
	loop.RunFor(time.Second)
	if n := a.host.Stats().DropNoRoute; n != 2 {
		t.Fatalf("DropNoRoute = %d, want 2", n)
	}
	if len(errs) != 1 {
		t.Fatalf("suppression failed: %d errors", len(errs))
	}
}

// TestRouteHookRegistrationInvalidatesRouteCache is the satellite bugfix
// regression test (the stale-decision hazard analogous to
// TestPolicyChangeInvalidatesRouteCache): registering or deregistering a
// route-resolution hook after host start must flush cached decisions.
func TestRouteHookRegistrationInvalidatesRouteCache(t *testing.T) {
	loop := sim.New(1)
	net := link.NewNetwork(loop, "n", link.Ethernet())
	a := addNode(t, loop, net, "a", "10.0.0.1/24")
	dst := ip.MustParseAddr("10.0.0.9")

	def, err := a.host.RouteLookup(dst, ip.Addr{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.host.RouteLookup(dst, ip.Addr{}); err != nil {
		t.Fatal(err)
	}
	if h := a.host.RouteCacheStats().Hits; h == 0 {
		t.Fatal("second lookup did not hit the cache")
	}

	want := RouteDecision{Iface: a.host.Loopback(), Src: dst, NextHop: dst}
	a.host.RouteHooks().Register(pipeline.Hook[*RouteQuery]{
		Name: "pin-lo", Priority: PriFirst,
		Fn: func(q *RouteQuery) pipeline.Verdict {
			q.Decision = want
			return pipeline.Stolen
		},
	})
	if got, err := a.host.RouteLookup(dst, ip.Addr{}); err != nil || got != want {
		t.Fatalf("stale decision survived hook registration: %+v (err %v)", got, err)
	}

	a.host.RouteHooks().Deregister("pin-lo")
	if got, err := a.host.RouteLookup(dst, ip.Addr{}); err != nil || got != def {
		t.Fatalf("stale decision survived hook deregistration: %+v (err %v)", got, err)
	}
}

// TestForwardHookRegistrationInvalidatesForwardCache covers the same
// hazard on the forwarding path's dst-keyed cache.
func TestForwardHookRegistrationInvalidatesForwardCache(t *testing.T) {
	loop := sim.New(1)
	net := link.NewNetwork(loop, "n", link.Ethernet())
	a := addNode(t, loop, net, "a", "10.0.0.1/24")
	dst := ip.MustParseAddr("10.0.0.9")

	if _, ok := a.host.lookupForward(dst); !ok {
		t.Fatal("no connected route")
	}
	if _, ok := a.host.lookupForward(dst); !ok {
		t.Fatal("no connected route")
	}
	before := a.host.RouteCacheStats()
	if before.Hits == 0 {
		t.Fatal("second lookup did not hit the cache")
	}

	a.host.Hooks(pipeline.Forward).Register(pipeline.Hook[*PacketContext]{
		Name: "observer", Priority: PriFirst,
		Fn: func(*PacketContext) pipeline.Verdict { return pipeline.Accept },
	})
	if _, ok := a.host.lookupForward(dst); !ok {
		t.Fatal("no connected route")
	}
	after := a.host.RouteCacheStats()
	if after.Misses != before.Misses+1 || after.Invalidations != before.Invalidations+1 {
		t.Fatalf("cache not flushed by FORWARD hook registration: before %+v, after %+v", before, after)
	}
}

// TestRejectHookSendsAdminProhibited checks the exported Reject helper:
// the packet is dropped under DropFilter and the source learns why.
func TestRejectHookSendsAdminProhibited(t *testing.T) {
	loop := sim.New(1)
	net := link.NewNetwork(loop, "n", link.Ethernet())
	a := addNode(t, loop, net, "a", "10.0.0.1/24")
	r := addNode(t, loop, net, "r", "10.0.0.254/24")
	r.host.SetForwarding(true)
	a.host.AddDefaultRoute(ip.MustParseAddr("10.0.0.254"), a.ifc)
	// The router can resolve the destination; the policy hook, sitting in
	// the filter slot after the route built-in, is what declines it.
	r.host.AddDefaultRoute(ip.MustParseAddr("10.0.0.1"), r.ifc)

	r.host.Hooks(pipeline.Forward).Register(pipeline.Hook[*PacketContext]{
		Name: "no-transit", Priority: PriForwardFilter,
		Fn: func(ctx *PacketContext) pipeline.Verdict {
			return ctx.Reject("transit prohibited")
		},
	})

	var res []PingResult
	a.host.ICMP().Ping(ip.MustParseAddr("77.7.7.7"), ip.MustParseAddr("10.0.0.1"), 8, 5*time.Second,
		func(pr PingResult) { res = append(res, pr) })
	loop.RunFor(10 * time.Second)

	if len(res) != 1 || !res[0].Unreachable || res[0].Code != ip.CodeAdminProhibited {
		t.Fatalf("ping results %+v, want one admin-prohibited unreachable", res)
	}
	if d := r.host.Stats().DropFilter; d != 1 {
		t.Fatalf("DropFilter = %d, want 1", d)
	}
}
