// Package stack implements the per-host IP stack of the simulator: network
// interfaces, a routing table with longest-prefix match, IP input, output
// and forwarding paths, protocol demultiplexing, and ICMP.
//
// Its single most important design point, copied from the paper, is that
// every locally originated packet is routed through one replaceable
// function with the contract of Linux's ip_rt_route(): given a destination
// and the (possibly unspecified) source the application bound to, return
// the interface to use, the source address to use, and the next hop. The
// MosquitoNet mobile-IP layer installs its override of this function — its
// Mobile Policy Table decisions, home-address source selection, and
// encapsulating virtual interface all act through this one seam, and
// nothing else in the stack knows mobility exists.
package stack

import (
	"fmt"
	"sort"
	"strings"

	"mosquitonet/internal/ip"
)

// Route is one routing-table entry. A zero Gateway means the destination
// is directly reachable on Iface's link.
type Route struct {
	Dst     ip.Prefix
	Gateway ip.Addr
	Iface   *Iface
	Metric  int
}

func (r Route) String() string {
	gw := "direct"
	if !r.Gateway.IsUnspecified() {
		gw = "via " + r.Gateway.String()
	}
	return fmt.Sprintf("%v %s dev %s metric %d", r.Dst, gw, r.Iface.Name(), r.Metric)
}

// RouteTable is an ordered routing table with longest-prefix-match lookup.
// It is deliberately separate from mobility policy: the paper keeps the
// kernel routing tables unchanged and layers the Mobile Policy Table
// beside them, and so do we.
type RouteTable struct {
	routes []Route

	// gen counts mutations; it backs both the host's route-decision cache
	// (any bump invalidates cached decisions) and the memoized Routes()
	// snapshot (unchanged tables return the same slice without copying).
	gen     uint64
	snap    []Route
	snapGen uint64
}

// Gen returns the table's mutation generation. It increases on every
// Add/Delete/DeleteIface that changes the table and never decreases.
func (t *RouteTable) Gen() uint64 { return t.gen }

// Add inserts a route. Adding an identical (Dst, Gateway, Iface) tuple
// replaces the previous entry's metric rather than duplicating it.
func (t *RouteTable) Add(r Route) {
	if r.Iface == nil {
		panic("stack: route with nil interface")
	}
	r.Dst = r.Dst.Normalize()
	for i := range t.routes {
		e := &t.routes[i]
		if e.Dst == r.Dst && e.Gateway == r.Gateway && e.Iface == r.Iface {
			if e.Metric != r.Metric {
				e.Metric = r.Metric
				t.gen++
			}
			return
		}
	}
	t.gen++
	t.routes = append(t.routes, r)
	// Keep longest prefixes first, then lowest metric, for a simple
	// first-match scan.
	sort.SliceStable(t.routes, func(i, j int) bool {
		if t.routes[i].Dst.Bits != t.routes[j].Dst.Bits {
			return t.routes[i].Dst.Bits > t.routes[j].Dst.Bits
		}
		return t.routes[i].Metric < t.routes[j].Metric
	})
}

// Delete removes every route exactly matching dst. It reports whether
// anything was removed.
func (t *RouteTable) Delete(dst ip.Prefix) bool {
	dst = dst.Normalize()
	kept := t.routes[:0]
	removed := false
	for _, r := range t.routes {
		if r.Dst == dst {
			removed = true
			continue
		}
		kept = append(kept, r)
	}
	t.routes = kept
	if removed {
		t.gen++
	}
	return removed
}

// DeleteIface removes every route through ifc, as when a device goes down.
func (t *RouteTable) DeleteIface(ifc *Iface) int {
	kept := t.routes[:0]
	n := 0
	for _, r := range t.routes {
		if r.Iface == ifc {
			n++
			continue
		}
		kept = append(kept, r)
	}
	t.routes = kept
	if n > 0 {
		t.gen++
	}
	return n
}

// Lookup returns the best (longest-prefix, lowest-metric, up-interface)
// route for dst.
func (t *RouteTable) Lookup(dst ip.Addr) (Route, bool) {
	for _, r := range t.routes {
		if r.Dst.Contains(dst) && r.Iface.Up() {
			return r, true
		}
	}
	return Route{}, false
}

// Routes returns a snapshot of the table in match order. The snapshot is
// memoized on the generation counter: while the table is unchanged,
// repeated calls return the same slice without allocating. Callers must
// treat the result as read-only; a fresh slice is built after each
// mutation, so snapshots taken earlier are never overwritten.
func (t *RouteTable) Routes() []Route {
	if t.snap == nil || t.snapGen != t.gen {
		t.snap = append(make([]Route, 0, len(t.routes)), t.routes...)
		t.snapGen = t.gen
	}
	return t.snap
}

// Len returns the number of entries.
func (t *RouteTable) Len() int { return len(t.routes) }

// String renders the table one route per line, like "route -n".
func (t *RouteTable) String() string {
	var b strings.Builder
	for _, r := range t.routes {
		fmt.Fprintln(&b, r)
	}
	return b.String()
}

// RouteDecision is the result of the route-lookup function: which interface
// to hand the packet to, the source address to stamp on it, and the
// next-hop address on that interface's link.
type RouteDecision struct {
	Iface   *Iface
	Src     ip.Addr
	NextHop ip.Addr
}

// RouteLookupFunc is the ip_rt_route() seam. dst is the packet's
// destination; boundSrc is the source address the sender bound, or the
// unspecified address if it left the choice to the stack. Implementations
// return ErrNoRoute (possibly wrapped) when the destination is
// unreachable.
type RouteLookupFunc func(dst, boundSrc ip.Addr) (RouteDecision, error)
