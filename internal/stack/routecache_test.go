package stack

import (
	"testing"
	"time"

	"mosquitonet/internal/ip"
	"mosquitonet/internal/link"
	"mosquitonet/internal/sim"
)

func TestRouteCacheHitsAndGenInvalidation(t *testing.T) {
	loop := sim.New(1)
	net := link.NewNetwork(loop, "n", link.Ethernet())
	a := addNode(t, loop, net, "a", "10.0.0.1/24")
	dst := ip.MustParseAddr("10.0.0.2")

	dec1, err := a.host.RouteLookup(dst, ip.Addr{})
	if err != nil {
		t.Fatal(err)
	}
	st := a.host.RouteCacheStats()
	if st.Hits != 0 || st.Misses != 1 {
		t.Fatalf("after first lookup: %+v, want 1 miss", st)
	}
	for i := 0; i < 5; i++ {
		dec2, err := a.host.RouteLookup(dst, ip.Addr{})
		if err != nil || dec2 != dec1 {
			t.Fatalf("cached decision differs: %+v vs %+v (err %v)", dec2, dec1, err)
		}
	}
	st = a.host.RouteCacheStats()
	if st.Hits != 5 || st.Misses != 1 || st.Invalidations != 0 {
		t.Fatalf("after repeats: %+v, want 5 hits / 1 miss / 0 invalidations", st)
	}

	// A route-table mutation must flush the cache via the table's own gen.
	a.host.Routes().Add(Route{Dst: ip.MustParsePrefix("10.9.0.0/16"), Gateway: dst, Iface: a.ifc})
	if _, err := a.host.RouteLookup(dst, ip.Addr{}); err != nil {
		t.Fatal(err)
	}
	st = a.host.RouteCacheStats()
	if st.Misses != 2 || st.Invalidations != 1 {
		t.Fatalf("after table mutation: %+v, want 2 misses / 1 invalidation", st)
	}
}

func TestRouteCacheErrorNotCached(t *testing.T) {
	loop := sim.New(1)
	h := NewHost(loop, "h", Config{})
	dst := ip.MustParseAddr("192.0.2.1")
	for i := 0; i < 3; i++ {
		if _, err := h.RouteLookup(dst, ip.Addr{}); err == nil {
			t.Fatal("expected no-route error")
		}
	}
	st := h.RouteCacheStats()
	if st.Hits != 0 || st.Misses != 3 {
		t.Fatalf("errors must not be cached: %+v", st)
	}
}

func TestRouteCacheInvalidatedByDeviceState(t *testing.T) {
	loop := sim.New(1)
	net := link.NewNetwork(loop, "n", link.Ethernet())
	a := addNode(t, loop, net, "a", "10.0.0.1/24")
	dst := ip.MustParseAddr("10.0.0.9")

	if _, err := a.host.RouteLookup(dst, ip.Addr{}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.host.RouteLookup(dst, ip.Addr{}); err != nil {
		t.Fatal(err)
	}
	if st := a.host.RouteCacheStats(); st.Hits != 1 {
		t.Fatalf("warmup: %+v, want 1 hit", st)
	}

	// Taking the device down must invalidate: the cached decision points
	// at an interface that can no longer pass traffic.
	a.dev.BringDown()
	if _, err := a.host.RouteLookup(dst, ip.Addr{}); err == nil {
		t.Fatal("lookup via downed interface must fail, not serve a stale cached decision")
	}
	st := a.host.RouteCacheStats()
	if st.Invalidations == 0 {
		t.Fatalf("device down did not flush the cache: %+v", st)
	}

	// Back up: invalidated again, then a fresh decision succeeds.
	a.dev.BringUp(nil)
	loop.RunFor(time.Millisecond)
	if _, err := a.host.RouteLookup(dst, ip.Addr{}); err != nil {
		t.Fatalf("lookup after bring-up: %v", err)
	}
}

func TestRouteCacheInvalidatedBySetAddrAndLookupSwap(t *testing.T) {
	loop := sim.New(1)
	net := link.NewNetwork(loop, "n", link.Ethernet())
	a := addNode(t, loop, net, "a", "10.0.0.1/24")
	dst := ip.MustParseAddr("10.0.0.9")

	dec, err := a.host.RouteLookup(dst, ip.Addr{})
	if err != nil {
		t.Fatal(err)
	}
	if got := dec.Src; got != ip.MustParseAddr("10.0.0.1") {
		t.Fatalf("src %v", got)
	}
	a.ifc.SetAddr(ip.MustParseAddr("10.0.0.7"), ip.MustParsePrefix("10.0.0.0/24"))
	dec, err = a.host.RouteLookup(dst, ip.Addr{})
	if err != nil {
		t.Fatal(err)
	}
	if got := dec.Src; got != ip.MustParseAddr("10.0.0.7") {
		t.Fatalf("stale source after SetAddr: %v", got)
	}

	// Swapping the lookup function must take effect immediately.
	want := RouteDecision{Iface: a.host.Loopback(), Src: dst, NextHop: dst}
	a.host.SetRouteLookup(func(d, s ip.Addr) (RouteDecision, error) { return want, nil })
	if got, err := a.host.RouteLookup(dst, ip.Addr{}); err != nil || got != want {
		t.Fatalf("override not visible through cache: %+v (err %v)", got, err)
	}
}

func TestForwardCacheServesRepeatTraffic(t *testing.T) {
	loop := sim.New(1)
	net1 := link.NewNetwork(loop, "n1", link.Ethernet())
	net2 := link.NewNetwork(loop, "n2", link.Ethernet())
	a := addNode(t, loop, net1, "a", "10.1.0.2/24")
	b := addNode(t, loop, net2, "b", "10.2.0.2/24")

	r := NewHost(loop, "r", Config{})
	for i, spec := range []struct {
		net  *link.Network
		cidr string
	}{{net1, "10.1.0.1/24"}, {net2, "10.2.0.1/24"}} {
		d := link.NewDevice(loop, "r-eth", 0, 0)
		d.Attach(spec.net)
		d.BringUp(nil)
		ifc := r.AddIface([]string{"e0", "e1"}[i], d, ip.MustParseAddr(spec.cidr[:len(spec.cidr)-3]), ip.MustParsePrefix(spec.cidr), IfaceOpts{})
		r.ConnectRoute(ifc)
	}
	r.SetForwarding(true)
	a.host.AddDefaultRoute(ip.MustParseAddr("10.1.0.1"), a.ifc)
	b.host.AddDefaultRoute(ip.MustParseAddr("10.2.0.1"), b.ifc)
	got := collect(b.host)
	loop.RunFor(0)

	const n = 8
	for i := 0; i < n; i++ {
		i := i
		loop.Schedule(time.Duration(i)*10*time.Millisecond, func() {
			a.host.Output(udpPacket("10.1.0.2", "10.2.0.2", "fwd"))
		})
	}
	loop.RunFor(time.Second)
	if len(*got) != n {
		t.Fatalf("delivered %d, want %d", len(*got), n)
	}
	st := r.RouteCacheStats()
	// One miss fills the forward cache; every later packet hits.
	if st.Misses != 1 || st.Hits != n-1 {
		t.Fatalf("router cache stats %+v, want 1 miss / %d hits", st, n-1)
	}
}

func TestRoutesSnapshotMemoized(t *testing.T) {
	loop := sim.New(1)
	net := link.NewNetwork(loop, "n", link.Ethernet())
	a := addNode(t, loop, net, "a", "10.0.0.1/24")
	tbl := a.host.Routes()

	s1 := tbl.Routes()
	s2 := tbl.Routes()
	if len(s1) == 0 || &s1[0] != &s2[0] {
		t.Fatal("unchanged table must return the identical memoized snapshot")
	}
	gen := tbl.Gen()
	tbl.Add(Route{Dst: ip.MustParsePrefix("10.9.0.0/16"), Gateway: ip.MustParseAddr("10.0.0.2"), Iface: a.ifc})
	if tbl.Gen() == gen {
		t.Fatal("Add did not bump the generation")
	}
	s3 := tbl.Routes()
	if &s3[0] == &s1[0] {
		t.Fatal("mutation must produce a fresh snapshot slice")
	}
	// The old snapshot must be intact, not overwritten in place.
	if len(s1) != 1 {
		t.Fatalf("earlier snapshot mutated: %v", s1)
	}
	// Re-adding the identical route is a no-op: same gen, same slice.
	gen = tbl.Gen()
	tbl.Add(Route{Dst: ip.MustParsePrefix("10.9.0.0/16"), Gateway: ip.MustParseAddr("10.0.0.2"), Iface: a.ifc})
	if tbl.Gen() != gen {
		t.Fatal("identical re-add must not bump the generation")
	}
	s4 := tbl.Routes()
	if &s4[0] != &s3[0] {
		t.Fatal("identical re-add must not rebuild the snapshot")
	}
}
