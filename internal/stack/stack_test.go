package stack

import (
	"testing"
	"testing/quick"
	"time"

	"mosquitonet/internal/ip"
	"mosquitonet/internal/link"
	"mosquitonet/internal/sim"
)

// node is a host with one device-backed interface for tests.
type node struct {
	host *Host
	dev  *link.Device
	ifc  *Iface
}

func addNode(t *testing.T, loop *sim.Loop, n *link.Network, name, cidr string) *node {
	t.Helper()
	pfx := ip.MustParsePrefix(cidr)
	addr := ip.MustParseAddr(cidr[:len(cidr)-len("/24")])
	h := NewHost(loop, name, Config{})
	d := link.NewDevice(loop, name+"-eth0", 0, 0)
	d.Attach(n)
	d.BringUp(nil)
	ifc := h.AddIface("eth0", d, addr, pfx, IfaceOpts{})
	h.ConnectRoute(ifc)
	loop.RunFor(0)
	return &node{host: h, dev: d, ifc: ifc}
}

// collect registers a UDP-protocol handler that records delivered packets.
func collect(h *Host) *[]*ip.Packet {
	var got []*ip.Packet
	h.RegisterHandler(ip.ProtoUDP, func(_ *Iface, pkt *ip.Packet) { got = append(got, pkt) })
	return &got
}

func udpPacket(src, dst string, payload string) *ip.Packet {
	return &ip.Packet{
		Header:  ip.Header{Protocol: ip.ProtoUDP, Src: ip.MustParseAddr(src), Dst: ip.MustParseAddr(dst)},
		Payload: []byte(payload),
	}
}

func TestRouteTableLPM(t *testing.T) {
	loop := sim.New(1)
	h := NewHost(loop, "h", Config{})
	a := h.AddVirtualIface("a", func(*ip.Packet, ip.Addr) {})
	b := h.AddVirtualIface("b", func(*ip.Packet, ip.Addr) {})
	c := h.AddVirtualIface("c", func(*ip.Packet, ip.Addr) {})

	var rt RouteTable
	rt.Add(Route{Dst: ip.MustParsePrefix("0.0.0.0/0"), Iface: a})
	rt.Add(Route{Dst: ip.MustParsePrefix("36.0.0.0/8"), Iface: b})
	rt.Add(Route{Dst: ip.MustParsePrefix("36.135.0.0/16"), Iface: c})

	cases := map[string]*Iface{
		"36.135.0.1": c,
		"36.8.0.1":   b,
		"128.9.0.1":  a,
	}
	for addr, want := range cases {
		r, ok := rt.Lookup(ip.MustParseAddr(addr))
		if !ok || r.Iface != want {
			t.Errorf("Lookup(%s) -> %v, want iface %s", addr, r.Iface, want.Name())
		}
	}
}

func TestRouteTableMetric(t *testing.T) {
	loop := sim.New(1)
	h := NewHost(loop, "h", Config{})
	a := h.AddVirtualIface("a", func(*ip.Packet, ip.Addr) {})
	b := h.AddVirtualIface("b", func(*ip.Packet, ip.Addr) {})
	var rt RouteTable
	rt.Add(Route{Dst: ip.MustParsePrefix("10.0.0.0/8"), Iface: a, Metric: 10})
	rt.Add(Route{Dst: ip.MustParsePrefix("10.0.0.0/8"), Iface: b, Metric: 1})
	r, _ := rt.Lookup(ip.MustParseAddr("10.1.1.1"))
	if r.Iface != b {
		t.Fatal("lower metric not preferred")
	}
}

func TestRouteTableReplaceAndDelete(t *testing.T) {
	loop := sim.New(1)
	h := NewHost(loop, "h", Config{})
	a := h.AddVirtualIface("a", func(*ip.Packet, ip.Addr) {})
	var rt RouteTable
	rt.Add(Route{Dst: ip.MustParsePrefix("10.0.0.0/8"), Iface: a, Metric: 5})
	rt.Add(Route{Dst: ip.MustParsePrefix("10.0.0.0/8"), Iface: a, Metric: 2}) // replace
	if rt.Len() != 1 {
		t.Fatalf("len = %d after replace", rt.Len())
	}
	if r, _ := rt.Lookup(ip.MustParseAddr("10.1.1.1")); r.Metric != 2 {
		t.Fatalf("metric = %d", r.Metric)
	}
	if !rt.Delete(ip.MustParsePrefix("10.0.0.0/8")) {
		t.Fatal("Delete returned false")
	}
	if _, ok := rt.Lookup(ip.MustParseAddr("10.1.1.1")); ok {
		t.Fatal("route survived Delete")
	}
	if rt.Delete(ip.MustParsePrefix("10.0.0.0/8")) {
		t.Fatal("second Delete returned true")
	}
}

func TestRouteTableDeleteIface(t *testing.T) {
	loop := sim.New(1)
	h := NewHost(loop, "h", Config{})
	a := h.AddVirtualIface("a", func(*ip.Packet, ip.Addr) {})
	b := h.AddVirtualIface("b", func(*ip.Packet, ip.Addr) {})
	var rt RouteTable
	rt.Add(Route{Dst: ip.MustParsePrefix("10.0.0.0/8"), Iface: a})
	rt.Add(Route{Dst: ip.MustParsePrefix("11.0.0.0/8"), Iface: a})
	rt.Add(Route{Dst: ip.MustParsePrefix("12.0.0.0/8"), Iface: b})
	if n := rt.DeleteIface(a); n != 2 {
		t.Fatalf("DeleteIface removed %d", n)
	}
	if rt.Len() != 1 {
		t.Fatalf("len = %d", rt.Len())
	}
}

func TestRouteTableSkipsDownIfaces(t *testing.T) {
	loop := sim.New(1)
	n := link.NewNetwork(loop, "n", link.Ethernet())
	a := addNode(t, loop, n, "a", "10.0.0.1/24")
	// A second, more specific route through a down device must be skipped.
	d2 := link.NewDevice(loop, "eth1", 0, 0)
	ifc2 := a.host.AddIface("eth1", d2, ip.MustParseAddr("10.0.1.1"), ip.MustParsePrefix("10.0.1.0/24"), IfaceOpts{})
	a.host.Routes().Add(Route{Dst: ip.MustParsePrefix("10.0.0.0/16"), Iface: ifc2})
	r, ok := a.host.Routes().Lookup(ip.MustParseAddr("10.0.0.5"))
	if !ok || r.Iface != a.ifc {
		t.Fatalf("lookup chose %v", r)
	}
}

func TestLocalDeliveryViaLoopback(t *testing.T) {
	loop := sim.New(1)
	h := NewHost(loop, "h", Config{})
	got := collect(h)
	pkt := udpPacket("0.0.0.0", "127.0.0.1", "loop")
	if err := h.Output(pkt); err != nil {
		t.Fatal(err)
	}
	loop.Run()
	if len(*got) != 1 {
		t.Fatalf("delivered %d", len(*got))
	}
	if (*got)[0].Src != ip.MustParseAddr("127.0.0.1") {
		t.Fatalf("loopback src = %v", (*got)[0].Src)
	}
}

func TestSelfAddressedDeliveryLocal(t *testing.T) {
	loop := sim.New(1)
	n := link.NewNetwork(loop, "n", link.Ethernet())
	a := addNode(t, loop, n, "a", "10.0.0.1/24")
	got := collect(a.host)
	a.host.Output(udpPacket("0.0.0.0", "10.0.0.1", "self"))
	loop.Run()
	if len(*got) != 1 {
		t.Fatal("self-addressed packet not delivered")
	}
	if a.dev.Stats().Sent != 0 {
		t.Fatal("self-addressed packet hit the wire")
	}
}

func TestTwoHostExchange(t *testing.T) {
	loop := sim.New(1)
	n := link.NewNetwork(loop, "n", link.Ethernet())
	a := addNode(t, loop, n, "a", "10.0.0.1/24")
	b := addNode(t, loop, n, "b", "10.0.0.2/24")
	got := collect(b.host)
	a.host.Output(udpPacket("0.0.0.0", "10.0.0.2", "hello"))
	loop.RunFor(time.Second)
	if len(*got) != 1 || string((*got)[0].Payload) != "hello" {
		t.Fatalf("b got %v", got)
	}
	if (*got)[0].Src != ip.MustParseAddr("10.0.0.1") {
		t.Fatalf("source not filled in: %v", (*got)[0].Src)
	}
}

func TestBoundSourcePreserved(t *testing.T) {
	loop := sim.New(1)
	n := link.NewNetwork(loop, "n", link.Ethernet())
	a := addNode(t, loop, n, "a", "10.0.0.1/24")
	b := addNode(t, loop, n, "b", "10.0.0.2/24")
	got := collect(b.host)
	// Bound to an address that is not the interface's: the stack must not
	// second-guess it (this is how the triangle route keeps the home
	// address as source on a foreign net).
	a.host.Output(udpPacket("36.135.0.7", "10.0.0.2", "x"))
	loop.RunFor(time.Second)
	if len(*got) != 1 || (*got)[0].Src != ip.MustParseAddr("36.135.0.7") {
		t.Fatal("bound source was rewritten")
	}
}

func TestNoRoute(t *testing.T) {
	loop := sim.New(1)
	h := NewHost(loop, "h", Config{})
	err := h.Output(udpPacket("0.0.0.0", "99.99.99.99", "x"))
	if err == nil {
		t.Fatal("Output with no route succeeded")
	}
	if h.Stats().DropNoRoute != 1 {
		t.Fatal("DropNoRoute not counted")
	}
}

// twoSubnetTopology builds: a -- netA -- router -- netB -- b
func twoSubnetTopology(t *testing.T, loop *sim.Loop) (a, b *node, router *Host) {
	t.Helper()
	netA := link.NewNetwork(loop, "netA", link.Ethernet())
	netB := link.NewNetwork(loop, "netB", link.Ethernet())
	a = addNode(t, loop, netA, "a", "10.0.0.2/24")
	b = addNode(t, loop, netB, "b", "10.0.1.2/24")

	router = NewHost(loop, "router", Config{})
	rdA := link.NewDevice(loop, "r-eth0", 0, 0)
	rdA.Attach(netA)
	rdA.BringUp(nil)
	rdB := link.NewDevice(loop, "r-eth1", 0, 0)
	rdB.Attach(netB)
	rdB.BringUp(nil)
	rifA := router.AddIface("eth0", rdA, ip.MustParseAddr("10.0.0.1"), ip.MustParsePrefix("10.0.0.0/24"), IfaceOpts{})
	rifB := router.AddIface("eth1", rdB, ip.MustParseAddr("10.0.1.1"), ip.MustParsePrefix("10.0.1.0/24"), IfaceOpts{})
	router.ConnectRoute(rifA)
	router.ConnectRoute(rifB)
	router.SetForwarding(true)

	a.host.AddDefaultRoute(ip.MustParseAddr("10.0.0.1"), a.ifc)
	b.host.AddDefaultRoute(ip.MustParseAddr("10.0.1.1"), b.ifc)
	loop.RunFor(0)
	return a, b, router
}

func TestForwardingAcrossSubnets(t *testing.T) {
	loop := sim.New(1)
	a, b, router := twoSubnetTopology(t, loop)
	got := collect(b.host)
	a.host.Output(udpPacket("0.0.0.0", "10.0.1.2", "routed"))
	loop.RunFor(time.Second)
	if len(*got) != 1 {
		t.Fatalf("b got %d packets", len(*got))
	}
	if (*got)[0].TTL != ip.DefaultTTL-1 {
		t.Fatalf("TTL = %d, want %d", (*got)[0].TTL, ip.DefaultTTL-1)
	}
	if router.Stats().Forwarded != 1 {
		t.Fatal("router did not count the forward")
	}
}

func TestForwardingDisabledDrops(t *testing.T) {
	loop := sim.New(1)
	a, b, router := twoSubnetTopology(t, loop)
	router.SetForwarding(false)
	got := collect(b.host)
	a.host.Output(udpPacket("0.0.0.0", "10.0.1.2", "x"))
	loop.RunFor(time.Second)
	if len(*got) != 0 {
		t.Fatal("packet crossed a non-forwarding host")
	}
	if router.Stats().DropNotLocal != 1 {
		t.Fatal("DropNotLocal not counted")
	}
}

func TestTTLExpiry(t *testing.T) {
	loop := sim.New(1)
	a, b, router := twoSubnetTopology(t, loop)
	got := collect(b.host)
	pkt := udpPacket("0.0.0.0", "10.0.1.2", "dying")
	pkt.TTL = 1
	a.host.Output(pkt)
	loop.RunFor(time.Second)
	if len(*got) != 0 {
		t.Fatal("TTL=1 packet was forwarded")
	}
	if router.Stats().DropTTL != 1 {
		t.Fatal("DropTTL not counted")
	}
}

func TestFilterDropAndReject(t *testing.T) {
	loop := sim.New(1)
	a, b, router := twoSubnetTopology(t, loop)
	got := collect(b.host)

	// The paper's transit filter: forbid forwarding packets whose source
	// is not local to the ingress subnet.
	router.AddFilter(func(in, out *Iface, pkt *ip.Packet) Verdict {
		if in.Prefix().Bits > 0 && !in.Prefix().Contains(pkt.Src) {
			return Reject
		}
		return Accept
	})

	// Legitimate local traffic passes.
	a.host.Output(udpPacket("0.0.0.0", "10.0.1.2", "ok"))
	loop.RunFor(time.Second)
	if len(*got) != 1 {
		t.Fatal("local-source packet filtered")
	}

	// Transit-looking traffic (foreign source) is rejected.
	a.host.Output(udpPacket("36.135.0.7", "10.0.1.2", "transit"))
	loop.RunFor(time.Second)
	if len(*got) != 1 {
		t.Fatal("transit packet crossed the filter")
	}
	if router.Stats().DropFilter != 1 {
		t.Fatal("DropFilter not counted")
	}
}

func TestPingEcho(t *testing.T) {
	loop := sim.New(1)
	n := link.NewNetwork(loop, "n", link.Ethernet())
	a := addNode(t, loop, n, "a", "10.0.0.1/24")
	b := addNode(t, loop, n, "b", "10.0.0.2/24")
	_ = b
	var res PingResult
	done := false
	a.host.ICMP().Ping(ip.MustParseAddr("10.0.0.2"), ip.Unspecified, 56, time.Second, func(r PingResult) {
		res, done = r, true
	})
	loop.RunFor(2 * time.Second)
	if !done || res.TimedOut || res.Unreachable {
		t.Fatalf("ping failed: %+v", res)
	}
	if res.From != ip.MustParseAddr("10.0.0.2") {
		t.Fatalf("reply from %v", res.From)
	}
	if res.RTT <= 0 || res.RTT > 10*time.Millisecond {
		t.Fatalf("implausible ethernet RTT %v", res.RTT)
	}
}

func TestPingTimeout(t *testing.T) {
	loop := sim.New(1)
	n := link.NewNetwork(loop, "n", link.Ethernet())
	a := addNode(t, loop, n, "a", "10.0.0.1/24")
	var res PingResult
	done := false
	a.host.ICMP().Ping(ip.MustParseAddr("10.0.0.99"), ip.Unspecified, 56, 500*time.Millisecond, func(r PingResult) {
		res, done = r, true
	})
	loop.RunFor(5 * time.Second)
	if !done || !res.TimedOut {
		t.Fatalf("expected timeout: %+v done=%v", res, done)
	}
}

func TestPingRejectedSurfacesUnreachable(t *testing.T) {
	loop := sim.New(1)
	a, b, router := twoSubnetTopology(t, loop)
	_ = b
	// Router administratively blocks the far subnet outright; the error
	// can route straight back to the pinger's own address.
	router.AddFilter(func(in, out *Iface, pkt *ip.Packet) Verdict {
		if out.Prefix().Contains(ip.MustParseAddr("10.0.1.2")) {
			return Reject
		}
		return Accept
	})
	var res PingResult
	done := false
	a.host.ICMP().Ping(ip.MustParseAddr("10.0.1.2"), ip.Unspecified, 8, time.Second, func(r PingResult) {
		res, done = r, true
	})
	loop.RunFor(2 * time.Second)
	if !done || !res.Unreachable {
		t.Fatalf("expected unreachable: %+v done=%v", res, done)
	}
	if res.Code != ip.CodeAdminProhibited {
		t.Fatalf("code = %d, want admin-prohibited", res.Code)
	}
}

// TestTransitFilteredPingTimesOut is the paper's triangle-route failure
// mode: a probe sent with the (foreign) home address as source is dropped
// by a transit filter, and because the ICMP error is addressed to that
// foreign source, the mobile host observes only silence — which is why the
// paper detects the condition "through failed attempts to ping".
func TestTransitFilteredPingTimesOut(t *testing.T) {
	loop := sim.New(1)
	a, b, router := twoSubnetTopology(t, loop)
	_ = b
	router.AddFilter(func(in, out *Iface, pkt *ip.Packet) Verdict {
		if in.Prefix().Bits > 0 && !in.Prefix().Contains(pkt.Src) {
			return Reject
		}
		return Accept
	})
	var res PingResult
	done := false
	a.host.ICMP().Ping(ip.MustParseAddr("10.0.1.2"), ip.MustParseAddr("36.135.0.7"), 8, time.Second, func(r PingResult) {
		res, done = r, true
	})
	loop.RunFor(3 * time.Second)
	if !done || !res.TimedOut {
		t.Fatalf("expected timeout: %+v done=%v", res, done)
	}
}

func TestEchoRepliesWhilePingedOnSecondAddress(t *testing.T) {
	// A host must answer pings to any of its local addresses — the mobile
	// host's "local role" on a foreign network.
	loop := sim.New(1)
	n := link.NewNetwork(loop, "n", link.Ethernet())
	a := addNode(t, loop, n, "a", "10.0.0.1/24")
	b := addNode(t, loop, n, "b", "10.0.0.2/24")
	b.host.AddLocalAddr(ip.MustParseAddr("36.135.0.7"))
	b.ifc.ARP().Publish(ip.MustParseAddr("36.135.0.7")) // answer ARP for the alias
	b.host.Routes().Add(Route{Dst: ip.MustParsePrefix("0.0.0.0/0"), Iface: b.ifc})
	// a needs a route to the foreign-looking address: host route on-link.
	a.host.Routes().Add(Route{Dst: ip.MustParsePrefix("36.135.0.7/32"), Iface: a.ifc})
	var res PingResult
	done := false
	a.host.ICMP().Ping(ip.MustParseAddr("36.135.0.7"), ip.Unspecified, 8, time.Second, func(r PingResult) {
		res, done = r, true
	})
	loop.RunFor(2 * time.Second)
	if !done || res.TimedOut {
		t.Fatalf("no reply to extra local address: %+v", res)
	}
	if res.From != ip.MustParseAddr("36.135.0.7") {
		t.Fatalf("reply source %v, want the pinged address", res.From)
	}
}

func TestRedirectSentAndInstalled(t *testing.T) {
	loop := sim.New(1)
	n := link.NewNetwork(loop, "n", link.Ethernet())
	a := addNode(t, loop, n, "a", "10.0.0.2/24")
	r1 := addNode(t, loop, n, "r1", "10.0.0.1/24")
	r2 := addNode(t, loop, n, "r2", "10.0.0.3/24")

	// r2 owns the far subnet; r1 knows that and forwards out the same
	// interface the packet came in on -> redirect.
	far := link.NewNetwork(loop, "far", link.Ethernet())
	fb := addNode(t, loop, far, "fb", "10.9.0.2/24")
	got := collect(fb.host)
	r2d := link.NewDevice(loop, "r2-eth1", 0, 0)
	r2d.Attach(far)
	r2d.BringUp(nil)
	r2far := r2.host.AddIface("eth1", r2d, ip.MustParseAddr("10.9.0.1"), ip.MustParsePrefix("10.9.0.0/24"), IfaceOpts{})
	r2.host.ConnectRoute(r2far)
	r2.host.SetForwarding(true)
	r1.host.SetForwarding(true)
	r1.host.Routes().Add(Route{Dst: ip.MustParsePrefix("10.9.0.0/24"), Gateway: ip.MustParseAddr("10.0.0.3"), Iface: r1.ifc})
	fb.host.AddDefaultRoute(ip.MustParseAddr("10.9.0.1"), fb.ifc)

	a.host.AddDefaultRoute(ip.MustParseAddr("10.0.0.1"), a.ifc)
	a.host.SetInstallRedirects(true)
	loop.RunFor(0)

	a.host.Output(udpPacket("0.0.0.0", "10.9.0.2", "one"))
	loop.RunFor(time.Second)
	if len(*got) != 1 {
		t.Fatalf("first packet not delivered (got %d)", len(*got))
	}
	if r1.host.Stats().RedirectsSent != 1 {
		t.Fatal("r1 sent no redirect")
	}
	if a.host.Stats().RedirectsRcvd != 1 {
		t.Fatal("a received no redirect")
	}
	// The installed host route must now steer directly via r2.
	dec, err := a.host.RouteLookup(ip.MustParseAddr("10.9.0.2"), ip.Unspecified)
	if err != nil {
		t.Fatal(err)
	}
	if dec.NextHop != ip.MustParseAddr("10.0.0.3") {
		t.Fatalf("next hop after redirect = %v", dec.NextHop)
	}
	before := r1.host.Stats().Forwarded
	a.host.Output(udpPacket("0.0.0.0", "10.9.0.2", "two"))
	loop.RunFor(time.Second)
	if len(*got) != 2 {
		t.Fatal("second packet not delivered")
	}
	if r1.host.Stats().Forwarded != before {
		t.Fatal("second packet still went through r1")
	}
}

func TestBroadcastOutputVia(t *testing.T) {
	loop := sim.New(1)
	n := link.NewNetwork(loop, "n", link.Ethernet())
	a := addNode(t, loop, n, "a", "10.0.0.1/24")
	b := addNode(t, loop, n, "b", "10.0.0.2/24")
	c := addNode(t, loop, n, "c", "10.0.0.3/24")
	gotB := collect(b.host)
	gotC := collect(c.host)
	pkt := udpPacket("0.0.0.0", "255.255.255.255", "discover")
	pkt.Src = ip.Unspecified
	a.host.OutputVia(a.ifc, pkt, ip.Broadcast)
	loop.RunFor(time.Second)
	if len(*gotB) != 1 || len(*gotC) != 1 {
		t.Fatalf("broadcast delivery b=%d c=%d", len(*gotB), len(*gotC))
	}
}

func TestRouteLookupOverrideSeam(t *testing.T) {
	loop := sim.New(1)
	n := link.NewNetwork(loop, "n", link.Ethernet())
	a := addNode(t, loop, n, "a", "10.0.0.1/24")
	var viaVif []*ip.Packet
	vif := a.host.AddVirtualIface("vif0", func(pkt *ip.Packet, _ ip.Addr) {
		viaVif = append(viaVif, pkt)
	})
	home := ip.MustParseAddr("36.135.0.7")
	def := a.host.DefaultRouteLookup
	a.host.SetRouteLookup(func(dst, boundSrc ip.Addr) (RouteDecision, error) {
		if boundSrc.IsUnspecified() || boundSrc == home {
			return RouteDecision{Iface: vif, Src: home, NextHop: dst}, nil
		}
		return def(dst, boundSrc)
	})

	// Unspecified source: mobile IP applies -> VIF, home source.
	a.host.Output(udpPacket("0.0.0.0", "36.8.0.99", "mobile"))
	loop.RunFor(100 * time.Millisecond)
	if len(viaVif) != 1 {
		t.Fatal("packet did not take the VIF")
	}
	if viaVif[0].Src != home {
		t.Fatalf("VIF packet src = %v, want home", viaVif[0].Src)
	}

	// Bound to the local interface: outside mobile IP -> physical route.
	b := addNode(t, loop, n, "b", "10.0.0.2/24")
	got := collect(b.host)
	a.host.Output(udpPacket("10.0.0.1", "10.0.0.2", "local"))
	loop.RunFor(time.Second)
	if len(*got) != 1 {
		t.Fatal("bound-source packet did not use the physical interface")
	}
	if len(viaVif) != 1 {
		t.Fatal("bound-source packet took the VIF")
	}

	a.host.SetRouteLookup(nil) // restore default
	if _, err := a.host.RouteLookup(ip.MustParseAddr("10.0.0.2"), ip.Unspecified); err != nil {
		t.Fatal("default lookup not restored")
	}
}

func TestIsLocalAddr(t *testing.T) {
	loop := sim.New(1)
	n := link.NewNetwork(loop, "n", link.Ethernet())
	a := addNode(t, loop, n, "a", "10.0.0.1/24")
	h := a.host
	cases := map[string]bool{
		"10.0.0.1":        true,  // interface address
		"127.0.0.1":       true,  // loopback
		"255.255.255.255": true,  // limited broadcast
		"10.0.0.255":      true,  // subnet broadcast
		"10.0.0.2":        false, // neighbor
	}
	for addr, want := range cases {
		if got := h.IsLocalAddr(ip.MustParseAddr(addr)); got != want {
			t.Errorf("IsLocalAddr(%s) = %v, want %v", addr, got, want)
		}
	}
	extra := ip.MustParseAddr("36.135.0.7")
	h.AddLocalAddr(extra)
	if !h.IsLocalAddr(extra) {
		t.Fatal("AddLocalAddr ineffective")
	}
	h.RemoveLocalAddr(extra)
	if h.IsLocalAddr(extra) {
		t.Fatal("RemoveLocalAddr ineffective")
	}
}

func TestPointToPointIface(t *testing.T) {
	loop := sim.New(1)
	n := link.NewNetwork(loop, "radio", link.Serial())
	ha := NewHost(loop, "a", Config{})
	hb := NewHost(loop, "b", Config{})
	da := link.NewDevice(loop, "strip0", 0, 0)
	db := link.NewDevice(loop, "strip0", 0, 0)
	da.Attach(n)
	db.Attach(n)
	da.BringUp(nil)
	db.BringUp(nil)
	ia := ha.AddIface("strip0", da, ip.MustParseAddr("10.1.0.1"), ip.MustParsePrefix("10.1.0.0/24"), IfaceOpts{PointToPoint: true})
	ib := hb.AddIface("strip0", db, ip.MustParseAddr("10.1.0.2"), ip.MustParsePrefix("10.1.0.0/24"), IfaceOpts{PointToPoint: true})
	ha.ConnectRoute(ia)
	hb.ConnectRoute(ib)
	loop.RunFor(0)
	got := collect(hb)
	ha.Output(udpPacket("0.0.0.0", "10.1.0.2", "over the air"))
	loop.RunFor(time.Second)
	if len(*got) != 1 {
		t.Fatal("point-to-point delivery failed")
	}
	if ia.ARP() != nil {
		t.Fatal("point-to-point interface has an ARP cache")
	}
}

func TestInputDelayCharged(t *testing.T) {
	loop := sim.New(1)
	n := link.NewNetwork(loop, "n", link.Ethernet())
	a := addNode(t, loop, n, "a", "10.0.0.1/24")
	slow := NewHost(loop, "slow", Config{InputDelay: 5 * time.Millisecond})
	d := link.NewDevice(loop, "eth0", 0, 0)
	d.Attach(n)
	d.BringUp(nil)
	ifc := slow.AddIface("eth0", d, ip.MustParseAddr("10.0.0.2"), ip.MustParsePrefix("10.0.0.0/24"), IfaceOpts{})
	slow.ConnectRoute(ifc)
	loop.RunFor(0)

	var deliveredAt sim.Time
	slow.RegisterHandler(ip.ProtoUDP, func(_ *Iface, _ *ip.Packet) { deliveredAt = loop.Now() })
	start := loop.Now()
	a.host.Output(udpPacket("0.0.0.0", "10.0.0.2", "x"))
	loop.RunFor(time.Second)
	if deliveredAt.Sub(start) < 5*time.Millisecond {
		t.Fatalf("delivery took %v, input delay not charged", deliveredAt.Sub(start))
	}
}

func TestHostStatsDelivered(t *testing.T) {
	loop := sim.New(1)
	n := link.NewNetwork(loop, "n", link.Ethernet())
	a := addNode(t, loop, n, "a", "10.0.0.1/24")
	b := addNode(t, loop, n, "b", "10.0.0.2/24")
	collect(b.host)
	for i := 0; i < 5; i++ {
		a.host.Output(udpPacket("0.0.0.0", "10.0.0.2", "x"))
	}
	loop.RunFor(time.Second)
	if b.host.Stats().Delivered != 5 {
		t.Fatalf("Delivered = %d", b.host.Stats().Delivered)
	}
	if a.host.Stats().Sent != 5 {
		t.Fatalf("Sent = %d", a.host.Stats().Sent)
	}
}

func TestNoHandlerDrop(t *testing.T) {
	loop := sim.New(1)
	n := link.NewNetwork(loop, "n", link.Ethernet())
	a := addNode(t, loop, n, "a", "10.0.0.1/24")
	b := addNode(t, loop, n, "b", "10.0.0.2/24")
	a.host.Output(udpPacket("0.0.0.0", "10.0.0.2", "no one listens"))
	loop.RunFor(time.Second)
	if b.host.Stats().DropNoHandler != 1 {
		t.Fatalf("DropNoHandler = %d", b.host.Stats().DropNoHandler)
	}
}

func TestIfaceByNameAndStrings(t *testing.T) {
	loop := sim.New(1)
	n := link.NewNetwork(loop, "n", link.Ethernet())
	a := addNode(t, loop, n, "a", "10.0.0.1/24")
	if a.host.IfaceByName("eth0") != a.ifc {
		t.Fatal("IfaceByName failed")
	}
	if a.host.IfaceByName("nope") != nil {
		t.Fatal("IfaceByName invented an interface")
	}
	if a.host.Routes().String() == "" {
		t.Fatal("route table String empty")
	}
	if a.ifc.String() == "" || a.host.Loopback().Name() != "lo" {
		t.Fatal("iface naming wrong")
	}
}

// Property: route-table lookup always returns the longest matching prefix
// among up interfaces, regardless of insertion order.
func TestPropertyLPMWins(t *testing.T) {
	loop := sim.New(1)
	h := NewHost(loop, "h", Config{})
	ifaces := make([]*Iface, 33)
	for i := range ifaces {
		ifaces[i] = h.AddVirtualIface("v", func(*ip.Packet, ip.Addr) {})
	}
	f := func(addr ip.Addr, lengths []uint8, order uint8) bool {
		var rt RouteTable
		present := map[int]bool{}
		for _, l := range lengths {
			bits := int(l % 33)
			present[bits] = true
			rt.Add(Route{Dst: ip.Prefix{Addr: addr, Bits: bits}.Normalize(), Iface: ifaces[bits]})
		}
		if len(present) == 0 {
			_, ok := rt.Lookup(addr)
			return !ok
		}
		longest := -1
		for bits := range present {
			if bits > longest {
				longest = bits
			}
		}
		r, ok := rt.Lookup(addr)
		return ok && r.Dst.Bits == longest
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// smallMTU is an Ethernet-like medium with a tight MTU for fragmentation
// tests.
func smallMTU(mtu int) link.Medium {
	m := link.Ethernet()
	m.MTU = mtu
	return m
}

func TestFragmentationEndToEnd(t *testing.T) {
	loop := sim.New(1)
	n := link.NewNetwork(loop, "n", smallMTU(600))
	a := addNode(t, loop, n, "a", "10.0.0.1/24")
	b := addNode(t, loop, n, "b", "10.0.0.2/24")
	got := collect(b.host)

	payload := make([]byte, 2000)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	a.host.Output(udpPacket("0.0.0.0", "10.0.0.2", string(payload)))
	loop.RunFor(time.Second)
	if len(*got) != 1 {
		t.Fatalf("delivered %d packets", len(*got))
	}
	if string((*got)[0].Payload) != string(payload) {
		t.Fatal("payload corrupted across fragmentation")
	}
	if a.host.Stats().FragmentsSent < 4 {
		t.Fatalf("FragmentsSent = %d", a.host.Stats().FragmentsSent)
	}
	if b.host.Reassembler().Stats().Reassembled != 1 {
		t.Fatalf("reassembler stats: %+v", b.host.Reassembler().Stats())
	}
}

func TestFragmentLossTimesOutCleanly(t *testing.T) {
	loop := sim.New(9)
	m := smallMTU(600)
	m.LossProb = 0.3
	n := link.NewNetwork(loop, "n", m)
	a := addNode(t, loop, n, "a", "10.0.0.1/24")
	b := addNode(t, loop, n, "b", "10.0.0.2/24")
	got := collect(b.host)
	for i := 0; i < 20; i++ {
		a.host.Output(udpPacket("0.0.0.0", "10.0.0.2", string(make([]byte, 2000))))
		loop.RunFor(100 * time.Millisecond)
	}
	loop.RunFor(2 * time.Minute) // several sweep intervals
	// Some datagrams died to fragment loss; none may be delivered corrupt,
	// and the reassembler must not leak partial state forever.
	for _, p := range *got {
		if len(p.Payload) != 2000 {
			t.Fatalf("corrupt datagram of %d bytes delivered", len(p.Payload))
		}
	}
	if b.host.Reassembler().Pending() != 0 {
		t.Fatalf("reassembler leaked %d partials", b.host.Reassembler().Pending())
	}
	if b.host.Reassembler().Stats().Expired == 0 {
		t.Fatal("expected some expired partial packets at 30% loss")
	}
}

func TestPathMTUDiscoverySignal(t *testing.T) {
	// a -- (1500) -- router -- (600) -- b : a's DF packet bounces with
	// ICMP frag-needed.
	loop := sim.New(1)
	wide := link.NewNetwork(loop, "wide", link.Ethernet())
	narrow := link.NewNetwork(loop, "narrow", smallMTU(600))
	a := addNode(t, loop, wide, "a", "10.0.0.2/24")
	b := addNode(t, loop, narrow, "b", "10.0.1.2/24")
	router := NewHost(loop, "router", Config{})
	rd1 := link.NewDevice(loop, "r0", 0, 0)
	rd1.Attach(wide)
	rd1.BringUp(nil)
	rd2 := link.NewDevice(loop, "r1", 0, 0)
	rd2.Attach(narrow)
	rd2.BringUp(nil)
	ifc1 := router.AddIface("r0", rd1, ip.MustParseAddr("10.0.0.1"), ip.MustParsePrefix("10.0.0.0/24"), IfaceOpts{})
	ifc2 := router.AddIface("r1", rd2, ip.MustParseAddr("10.0.1.1"), ip.MustParsePrefix("10.0.1.0/24"), IfaceOpts{})
	router.ConnectRoute(ifc1)
	router.ConnectRoute(ifc2)
	router.SetForwarding(true)
	a.host.AddDefaultRoute(ip.MustParseAddr("10.0.0.1"), a.ifc)
	b.host.AddDefaultRoute(ip.MustParseAddr("10.0.1.1"), b.ifc)
	loop.RunFor(0)

	var gotErr *ip.ICMP
	a.host.ICMP().ErrorHook = func(m *ip.ICMP, _ ip.Addr) { gotErr = m }
	gotB := collect(b.host)

	big := udpPacket("0.0.0.0", "10.0.1.2", string(make([]byte, 1200)))
	big.DontFrag = true
	a.host.Output(big)
	loop.RunFor(time.Second)
	if len(*gotB) != 0 {
		t.Fatal("oversized DF packet crossed the narrow link")
	}
	if gotErr == nil || gotErr.Type != ip.ICMPDestUnreach || gotErr.Code != ip.CodeFragNeeded {
		t.Fatalf("expected frag-needed, got %+v", gotErr)
	}
	if router.Stats().DropMTU != 1 {
		t.Fatalf("router DropMTU = %d", router.Stats().DropMTU)
	}

	// Without DF the router fragments and b reassembles.
	small := udpPacket("0.0.0.0", "10.0.1.2", string(make([]byte, 1200)))
	a.host.Output(small)
	loop.RunFor(time.Second)
	if len(*gotB) != 1 {
		t.Fatal("fragmentable packet not delivered")
	}
}

func TestMulticastDelivery(t *testing.T) {
	loop := sim.New(1)
	n := link.NewNetwork(loop, "n", link.Ethernet())
	a := addNode(t, loop, n, "a", "10.0.0.1/24")
	b := addNode(t, loop, n, "b", "10.0.0.2/24")
	c := addNode(t, loop, n, "c", "10.0.0.3/24")

	group := ip.MustParseAddr("224.0.1.50")
	if err := b.host.JoinGroup(group); err != nil {
		t.Fatal(err)
	}
	if err := b.host.JoinGroup(ip.MustParseAddr("10.0.0.9")); err == nil {
		t.Fatal("unicast address accepted as a group")
	}
	if !b.host.InGroup(group) {
		t.Fatal("InGroup false after join")
	}

	gotB := collect(b.host)
	gotC := collect(c.host)
	a.host.Routes().Add(Route{Dst: ip.MustParsePrefix("224.0.0.0/4"), Iface: a.ifc})
	a.host.Output(udpPacket("0.0.0.0", "224.0.1.50", "to the group"))
	loop.RunFor(time.Second)

	if len(*gotB) != 1 {
		t.Fatal("member did not receive group traffic")
	}
	if string((*gotB)[0].Payload) != "to the group" {
		t.Fatal("payload wrong")
	}
	if len(*gotC) != 0 {
		t.Fatal("non-member received group traffic")
	}

	b.host.LeaveGroup(group)
	a.host.Output(udpPacket("0.0.0.0", "224.0.1.50", "after leave"))
	loop.RunFor(time.Second)
	if len(*gotB) != 1 {
		t.Fatal("member still receiving after LeaveGroup")
	}
}

func TestMulticastNotForwardedByRouters(t *testing.T) {
	loop := sim.New(1)
	a, b, router := twoSubnetTopology(t, loop)
	group := ip.MustParseAddr("224.0.1.50")
	b.host.JoinGroup(group)
	got := collect(b.host)
	router.Routes().Add(Route{Dst: ip.MustParsePrefix("224.0.0.0/4"), Iface: router.IfaceByName("eth1")})
	a.host.Routes().Add(Route{Dst: ip.MustParsePrefix("224.0.0.0/4"), Iface: a.ifc})
	a.host.Output(udpPacket("0.0.0.0", "224.0.1.50", "x"))
	loop.RunFor(time.Second)
	if len(*got) != 0 {
		t.Fatal("multicast crossed a router")
	}
}
