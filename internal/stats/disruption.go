package stats

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"mosquitonet/internal/sim"
)

// FlowTracker follows one sequence-numbered probe flow end to end: the
// sender reports every transmission with Sent, the receiver every arrival
// with Received, and the tracker derives the disruption metrics the
// handover literature cares about — loss, latency spikes over the flow's
// baseline, and reordering depth — attributable to specific time windows
// (handoff spans).
//
// Sequence numbers must be unique per flow; duplicate or unknown arrivals
// are counted but otherwise ignored. The tracker assumes Sent and Received
// are called in simulation order (non-decreasing timestamps), which any
// single-loop probe guarantees.
type FlowTracker struct {
	name    string
	packets []flowPacket
	index   map[uint64]int // seq -> packets index

	arrivals  []sim.Time // receive instants in arrival order
	highSeq   uint64     // highest sequence seen by the receiver
	gotAny    bool
	reorders  int
	maxDepth  uint64
	duplicate int
	unknown   int
}

type flowPacket struct {
	seq          uint64
	sentAt       sim.Time
	recvAt       sim.Time
	received     bool
	reorderDepth uint64 // how far behind the highest-seen seq it arrived
}

// NewFlowTracker creates a tracker for the named flow.
func NewFlowTracker(name string) *FlowTracker {
	return &FlowTracker{name: name, index: make(map[uint64]int)}
}

// Name returns the flow name.
func (f *FlowTracker) Name() string { return f.name }

// Sent records a transmission.
func (f *FlowTracker) Sent(seq uint64, at sim.Time) {
	if _, dup := f.index[seq]; dup {
		return
	}
	f.index[seq] = len(f.packets)
	f.packets = append(f.packets, flowPacket{seq: seq, sentAt: at})
}

// Received records an arrival.
func (f *FlowTracker) Received(seq uint64, at sim.Time) {
	i, ok := f.index[seq]
	if !ok {
		f.unknown++
		return
	}
	p := &f.packets[i]
	if p.received {
		f.duplicate++
		return
	}
	p.received = true
	p.recvAt = at
	f.arrivals = append(f.arrivals, at)
	if f.gotAny && seq < f.highSeq {
		f.reorders++
		p.reorderDepth = f.highSeq - seq
		if p.reorderDepth > f.maxDepth {
			f.maxDepth = p.reorderDepth
		}
	} else {
		f.highSeq = seq
	}
	f.gotAny = true
}

// Totals returns flow-wide counts: packets sent, received, lost (sent and
// never received), and received out of order.
func (f *FlowTracker) Totals() (sent, received, lost, reorders int) {
	sent = len(f.packets)
	received = len(f.arrivals)
	return sent, received, sent - received, f.reorders
}

// Baseline returns the flow's undisturbed one-way latency estimate: the
// median over every received packet. Zero when nothing arrived.
func (f *FlowTracker) Baseline() time.Duration {
	lat := make([]time.Duration, 0, len(f.packets))
	for _, p := range f.packets {
		if p.received {
			lat = append(lat, p.recvAt.Sub(p.sentAt))
		}
	}
	if len(lat) == 0 {
		return 0
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return lat[len(lat)/2]
}

// Anomalies returns the arrival-side oddities: duplicate arrivals (a
// sequence number received twice) and unknown arrivals (a sequence number
// never reported sent). Both must be zero for an exactly-once delivery
// claim to hold.
func (f *FlowTracker) Anomalies() (duplicates, unknown int) {
	return f.duplicate, f.unknown
}

// Span returns the flow's active interval — first transmission to last
// arrival. ok is false when nothing was sent or nothing arrived.
func (f *FlowTracker) Span() (first, last sim.Time, ok bool) {
	if len(f.packets) == 0 || len(f.arrivals) == 0 {
		return 0, 0, false
	}
	// Arrivals are recorded in simulation order, so the last is the latest.
	return f.packets[0].sentAt, f.arrivals[len(f.arrivals)-1], true
}

// ReceivedBetween counts arrivals in [lo, hi] — the delivered volume of a
// time slice, which divided by the slice length is the flow's goodput there.
func (f *FlowTracker) ReceivedBetween(lo, hi sim.Time) int {
	n := 0
	for _, at := range f.arrivals {
		if at >= lo && at <= hi {
			n++
		}
	}
	return n
}

// LatencySeries returns the one-way latency of every received packet, in
// send order, as a Series for histogram/percentile reporting.
func (f *FlowTracker) LatencySeries() *Series {
	s := NewSeries(f.name + "/latency")
	for _, p := range f.packets {
		if p.received {
			s.Add(p.recvAt.Sub(p.sentAt))
		}
	}
	return s
}

// Window is one interval to attribute disruption to — in practice a root
// handoff span's [Start, End].
type Window struct {
	Kind  string
	Start sim.Time
	End   sim.Time
}

// DisruptionReport quantifies what one handoff cost the flow.
type DisruptionReport struct {
	Kind       string `json:"kind"`
	StartNS    int64  `json:"start_ns"`
	EndNS      int64  `json:"end_ns"`
	DurationNS int64  `json:"duration_ns"`

	// PacketsSent counts probe packets sent inside the (grace-extended)
	// window; PacketsLost those among them that never arrived.
	PacketsSent int `json:"packets_sent"`
	PacketsLost int `json:"packets_lost"`

	// BlackoutNS is the longest gap between consecutive arrivals
	// overlapping the window — the receiver's dead air.
	BlackoutNS int64 `json:"blackout_ns"`

	// MaxLatencyNS is the worst one-way latency of a packet sent inside
	// the window; MaxLatencySpikeNS is its excess over the flow baseline.
	MaxLatencyNS      int64 `json:"max_latency_ns"`
	MaxLatencySpikeNS int64 `json:"max_latency_spike_ns"`

	// ReorderCount counts packets arriving out of order inside the window,
	// MaxReorderDepth how far (in sequence numbers) the worst one trailed.
	ReorderCount    int    `json:"reorder_count"`
	MaxReorderDepth uint64 `json:"max_reorder_depth"`
}

// Analyze attributes the flow's disruption to the given windows. A packet
// belongs to a window when it was sent within [Start-grace, End+grace]:
// handoff damage starts before the switch completes (packets already in
// flight) and trails after it (retransmission, route convergence), so a
// small grace keeps the attribution honest. Windows are processed in the
// order given; overlapping windows double-count, which is the caller's
// choice to make.
func (f *FlowTracker) Analyze(windows []Window, grace time.Duration) []DisruptionReport {
	baseline := f.Baseline()
	out := make([]DisruptionReport, 0, len(windows))
	for _, w := range windows {
		lo, hi := w.Start.Add(-grace), w.End.Add(grace)
		r := DisruptionReport{
			Kind:       w.Kind,
			StartNS:    int64(w.Start),
			EndNS:      int64(w.End),
			DurationNS: int64(w.End.Sub(w.Start)),
		}
		for _, p := range f.packets {
			if p.sentAt < lo || p.sentAt > hi {
				continue
			}
			r.PacketsSent++
			if !p.received {
				r.PacketsLost++
				continue
			}
			lat := p.recvAt.Sub(p.sentAt)
			if int64(lat) > r.MaxLatencyNS {
				r.MaxLatencyNS = int64(lat)
				if spike := lat - baseline; spike > 0 {
					r.MaxLatencySpikeNS = int64(spike)
				}
			}
			if p.reorderDepth > 0 {
				r.ReorderCount++
				if p.reorderDepth > r.MaxReorderDepth {
					r.MaxReorderDepth = p.reorderDepth
				}
			}
		}
		r.BlackoutNS = int64(f.blackout(w.Start, w.End))
		out = append(out, r)
	}
	return out
}

// blackout returns the longest inter-arrival gap overlapping [start, end].
// The gap before the first arrival is anchored at the first transmission;
// the gap after the last arrival extends to the last transmission, so a
// handoff the flow never recovered from still shows its dead air.
func (f *FlowTracker) blackout(start, end sim.Time) time.Duration {
	if len(f.packets) == 0 {
		return 0
	}
	bounds := make([]sim.Time, 0, len(f.arrivals)+2)
	bounds = append(bounds, f.packets[0].sentAt)
	bounds = append(bounds, f.arrivals...)
	bounds = append(bounds, f.packets[len(f.packets)-1].sentAt)
	var worst time.Duration
	for i := 1; i < len(bounds); i++ {
		gapLo, gapHi := bounds[i-1], bounds[i]
		if gapHi <= gapLo {
			continue
		}
		if gapHi < start || gapLo > end {
			continue // gap does not overlap the window
		}
		if gap := gapHi.Sub(gapLo); gap > worst {
			worst = gap
		}
	}
	return worst
}

// String renders the reports as the fixed-width table experiments print.
func FormatDisruption(reports []DisruptionReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %10s %6s %6s %12s %12s %8s\n",
		"handoff", "start", "sent", "lost", "blackout", "max-spike", "reorder")
	for _, r := range reports {
		fmt.Fprintf(&b, "%-20s %10v %6d %6d %12v %12v %8d\n",
			r.Kind, time.Duration(r.StartNS), r.PacketsSent, r.PacketsLost,
			time.Duration(r.BlackoutNS), time.Duration(r.MaxLatencySpikeNS), r.ReorderCount)
	}
	return b.String()
}
